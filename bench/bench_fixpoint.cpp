//===- bench_fixpoint.cpp - Cross-request fixpoint sharing gate ------------===//
//
// Standalone benchmark (no google-benchmark dependency, built in every
// configuration) for the fixpoint store. The workload is the service
// benchmark's shape: near-duplicate decision problems — one query shape
// instantiated over per-request alphabets — whose leans are isomorphic,
// so with --share-fixpoints every run after the first per shape replays
// the stored iterate sequence instead of recomputing it.
//
// It doubles as the CI regression gate for the sharing engine; the
// process exits nonzero unless all of:
//
//   * sharing is output-invisible: the stable JSON-lines responses are
//     byte-identical with sharing off, sharing on, and sharing on at
//     jobs=4;
//   * the computed iteration count (solver iterations minus replayed
//     ones) drops strictly with sharing on;
//   * a store-warm batch of *unseen* same-shaped queries seeds every
//     solver run;
//   * the strategy matrix (bfs / chaining / saturation, serial and at
//     jobs=4, all cold) produces byte-identical stable output, chaining
//     strictly beats bfs on computed rounds, and chaining or saturation
//     reaches a >= 2x round reduction on the near-duplicate batch;
//   * the backend matrix (serial / parallel BDD backend on one
//     XHTML-scale query, where batch-level --jobs cannot help) produces
//     byte-identical stable output, and on hosts with >= 4 cores the
//     parallel backend wins on wall time.
//
// Results go to BENCH_fixpoint.json; every row carries name, wall_ms,
// cache_hit_rate, solver_iterations, iterations_computed,
// iterations_replayed, solver_substeps, seeded_runs, seed_hit_rate,
// p50_ms and p99_ms (the tail fields come from the engine's
// request-latency histogram, bracketed per run).
//
//===----------------------------------------------------------------------===//

#include "service/Batch.h"
#include "service/Session.h"

#include "BenchJson.h"

#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>

using namespace xsa;

namespace {

/// Near-duplicate workload: \p Groups instances of three query shapes
/// over per-group alphabets, starting at \p Offset (distinct offsets
/// give textually unseen but lean-isomorphic batches).
std::string nearDuplicateBatch(size_t Groups, size_t Offset) {
  std::string In;
  for (size_t I = Offset; I < Offset + Groups; ++I) {
    std::string N = std::to_string(I);
    In += "{\"id\":\"c" + N + "\",\"op\":\"contains\",\"e1\":\"/a" + N +
          "/b" + N + "\",\"e2\":\"//b" + N + "\"}\n";
    In += "{\"id\":\"o" + N + "\",\"op\":\"overlap\",\"e1\":\"//a" + N +
          "/b" + N + "\",\"e2\":\"//b" + N + "[c" + N + "]\"}\n";
    In += "{\"id\":\"e" + N + "\",\"op\":\"empty\",\"e1\":\"a" + N + "/b" +
          N + "[parent::c" + N + "]\"}\n";
  }
  return In;
}

struct RunOutcome {
  std::string StableOut;
  double WallMs = 0;
  SessionStats Stats;
  /// p50/p99 of the requests inside this run (request-latency histogram
  /// delta), appended to the BENCH_fixpoint.json extras.
  std::vector<std::pair<std::string, double>> Quantiles;
};

RunOutcome runBatchOn(AnalysisSession &Session, const std::string &Input) {
  RunOutcome Out;
  std::istringstream In(Input);
  std::ostringstream Os;
  xsa_bench::LatencyProbe Probe(xsa_bench::requestLatencyHistogram());
  auto T0 = std::chrono::steady_clock::now();
  runBatchJsonLines(Session, In, Os, nullptr, /*StableOutput=*/true);
  Out.WallMs = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - T0)
                   .count();
  Out.StableOut = Os.str();
  Out.Stats = Session.stats();
  Out.Quantiles = Probe.quantiles();
  return Out;
}

double seedHitRate(const SessionStats &S) {
  size_t Lookups = S.Fixpoints.Hits + S.Fixpoints.Misses;
  return Lookups ? static_cast<double>(S.Fixpoints.Hits) / Lookups : 0;
}

std::vector<std::pair<std::string, double>>
extras(const SessionStats &S, const RunOutcome &Run) {
  std::vector<std::pair<std::string, double>> E = {
      {"solver_iterations", static_cast<double>(S.SolverIterations)},
      {"iterations_computed",
       static_cast<double>(S.SolverIterations -
                           S.FixpointIterationsReplayed)},
      {"iterations_replayed",
       static_cast<double>(S.FixpointIterationsReplayed)},
      {"solver_substeps", static_cast<double>(S.SolverSubSteps)},
      {"seeded_runs", static_cast<double>(S.FixpointSeededRuns)},
      {"seed_hit_rate", seedHitRate(S)}};
  E.insert(E.end(), Run.Quantiles.begin(), Run.Quantiles.end());
  return E;
}

} // namespace

int main() {
  xsa_bench::BenchJsonWriter Json("BENCH_fixpoint.json");
  constexpr size_t Groups = 12;
  std::string Batch = nearDuplicateBatch(Groups, /*Offset=*/0);
  bool Ok = true;
  auto Fail = [&](const char *Msg) {
    std::fprintf(stderr, "bench_fixpoint: FAIL: %s\n", Msg);
    Ok = false;
  };

  // Baseline: sharing off, everything computed.
  AnalysisSession Off;
  RunOutcome Base = runBatchOn(Off, Batch);
  Json.record("near-dup-batch/share=off", Base.WallMs,
              xsa_bench::sessionHitRate(Off), extras(Base.Stats, Base));

  // Sharing on, serial.
  SessionOptions ShareOpts;
  ShareOpts.ShareFixpoints = true;
  AnalysisSession On(ShareOpts);
  RunOutcome Shared = runBatchOn(On, Batch);
  Json.record("near-dup-batch/share=on", Shared.WallMs,
              xsa_bench::sessionHitRate(On), extras(Shared.Stats, Shared));

  if (Shared.StableOut != Base.StableOut)
    Fail("sharing changed the stable batch output");
  if (Shared.Stats.SolverIterations != Base.Stats.SolverIterations)
    Fail("sharing changed the semantic iteration totals");
  size_t ComputedOff = Base.Stats.SolverIterations;
  size_t ComputedOn =
      Shared.Stats.SolverIterations - Shared.Stats.FixpointIterationsReplayed;
  std::fprintf(stderr,
               "bench_fixpoint: computed iterations %zu -> %zu "
               "(%zu replayed over %zu seeded runs)\n",
               ComputedOff, ComputedOn,
               Shared.Stats.FixpointIterationsReplayed,
               Shared.Stats.FixpointSeededRuns);
  if (ComputedOn >= ComputedOff)
    Fail("sharing did not reduce computed fixpoint iterations");
  if (Shared.Stats.FixpointSeededRuns == 0)
    Fail("no solver run was seeded");

  // Sharing on, 4 workers, cold: byte-identical despite racing seeds.
  SessionOptions ParOpts = ShareOpts;
  ParOpts.Jobs = 4;
  AnalysisSession Par(ParOpts);
  RunOutcome Parallel = runBatchOn(Par, Batch);
  Json.record("near-dup-batch/share=on-jobs=4", Parallel.WallMs,
              xsa_bench::sessionHitRate(Par), extras(Parallel.Stats, Parallel));
  if (Parallel.StableOut != Base.StableOut)
    Fail("jobs=4 seeded output differs from the serial run");

  // Warm-store batch: unseen labels, same shapes — the restarted-service
  // scenario. Every run must seed; this is the warm-batch uplift gate.
  std::string Unseen = nearDuplicateBatch(Groups, /*Offset=*/1000);
  SessionStats Before = On.stats();
  RunOutcome Warm = runBatchOn(On, Unseen);
  SessionStats Delta;
  Delta.SolverIterations =
      Warm.Stats.SolverIterations - Before.SolverIterations;
  Delta.FixpointIterationsReplayed = Warm.Stats.FixpointIterationsReplayed -
                                     Before.FixpointIterationsReplayed;
  Delta.FixpointSeededRuns =
      Warm.Stats.FixpointSeededRuns - Before.FixpointSeededRuns;
  Delta.SolverSubSteps = Warm.Stats.SolverSubSteps - Before.SolverSubSteps;
  Delta.Fixpoints.Hits = Warm.Stats.Fixpoints.Hits - Before.Fixpoints.Hits;
  Delta.Fixpoints.Misses =
      Warm.Stats.Fixpoints.Misses - Before.Fixpoints.Misses;
  Json.record("warm-store-batch/share=on", Warm.WallMs,
              xsa_bench::sessionHitRate(On), extras(Delta, Warm));
  size_t WarmSolves = Warm.Stats.Solves - Before.Solves;
  if (Delta.FixpointSeededRuns < WarmSolves)
    Fail("a warm-store run went unseeded");
  if (Delta.FixpointIterationsReplayed * 2 < Delta.SolverIterations)
    Fail("warm-store batch replayed less than half of its iterations");

  // Reference: what the unseen batch costs with no store at all.
  AnalysisSession OffUnseen;
  RunOutcome UnseenBase = runBatchOn(OffUnseen, Unseen);
  if (Warm.StableOut != UnseenBase.StableOut)
    Fail("warm-store output differs from an unshared session's");

  // Strategy matrix: the cold near-duplicate batch under every fixpoint
  // scheduling strategy, serial and at jobs=4. The least fixpoint is
  // strategy-independent, so each run's stable output must match the
  // baseline byte-for-byte; the scheduling only changes how many
  // relational-image rounds it takes to get there.
  struct StratCase {
    FixpointStrategy S;
    const char *Name;
    bool Parallel;
  };
  const StratCase Cases[] = {
      {FixpointStrategy::Bfs, "bfs", true},
      {FixpointStrategy::Chaining, "chaining", true},
      {FixpointStrategy::Saturation, "saturation", true},
      {FixpointStrategy::Auto, "auto", false},
  };
  size_t RoundsBy[3] = {0, 0, 0};
  double WallBy[3] = {0, 0, 0};
  for (const StratCase &C : Cases) {
    for (size_t Jobs = 1; Jobs <= (C.Parallel ? 4u : 1u); Jobs += 3) {
      SessionOptions SO;
      SO.Solver.Strategy = C.S;
      SO.Jobs = Jobs;
      AnalysisSession S(SO);
      RunOutcome R = runBatchOn(S, Batch);
      Json.record(std::string("near-dup-batch/strategy=") + C.Name +
                      "-jobs=" + std::to_string(Jobs),
                  R.WallMs, xsa_bench::sessionHitRate(S), extras(R.Stats, R));
      if (R.StableOut != Base.StableOut)
        Fail("strategy changed the stable batch output");
      if (Jobs == 1 && C.S != FixpointStrategy::Auto) {
        RoundsBy[static_cast<size_t>(C.S)] =
            R.Stats.SolverIterations - R.Stats.FixpointIterationsReplayed;
        WallBy[static_cast<size_t>(C.S)] = R.WallMs;
      }
    }
  }
  size_t BfsRounds = RoundsBy[static_cast<size_t>(FixpointStrategy::Bfs)];
  size_t ChainRounds =
      RoundsBy[static_cast<size_t>(FixpointStrategy::Chaining)];
  size_t SatRounds =
      RoundsBy[static_cast<size_t>(FixpointStrategy::Saturation)];
  std::fprintf(stderr,
               "bench_fixpoint: computed rounds bfs=%zu chaining=%zu "
               "saturation=%zu\n",
               BfsRounds, ChainRounds, SatRounds);
  // The round reduction is the mechanism; wall time is whether it pays.
  // Reported side by side (each row's wall_ms is also in the JSON) so
  // the chaining-vs-bfs story is measured in time, not rounds alone.
  std::fprintf(stderr,
               "bench_fixpoint: serial wall ms bfs=%.2f chaining=%.2f "
               "saturation=%.2f\n",
               WallBy[static_cast<size_t>(FixpointStrategy::Bfs)],
               WallBy[static_cast<size_t>(FixpointStrategy::Chaining)],
               WallBy[static_cast<size_t>(FixpointStrategy::Saturation)]);
  if (ChainRounds >= BfsRounds)
    Fail("chaining did not reduce computed rounds vs bfs");
  if (ChainRounds * 2 > BfsRounds && SatRounds * 2 > BfsRounds)
    Fail("neither chaining nor saturation reached a 2x round reduction");

  // Backend matrix: one XHTML-scale single query — the intra-query
  // parallelism scenario, where batch-level --jobs cannot help and only
  // the parallel BDD backend has parallelism to offer. Byte-identity of
  // the stable output is gated unconditionally (canonical hash-consing
  // makes it a hard invariant); the wall-time uplift is gated only on
  // hosts with >= 4 cores, since below that the parallel backend
  // legitimately degenerates to its sequential path plus overhead.
  const std::string XhtmlQuery =
      "{\"id\":\"x1\",\"op\":\"contains\",\"e1\":\"/html//p\","
      "\"e2\":\"//p\",\"dtd\":\"xhtml\"}\n";
  const unsigned Cores = std::thread::hardware_concurrency();
  double BackendWall[2] = {0, 0};
  std::string BackendOut[2];
  for (BddBackendKind K : {BddBackendKind::Serial, BddBackendKind::Parallel}) {
    SessionOptions BO;
    BO.Solver.Backend = K;
    AnalysisSession BS(BO);
    RunOutcome R = runBatchOn(BS, XhtmlQuery);
    size_t Idx = static_cast<size_t>(K);
    BackendWall[Idx] = R.WallMs;
    BackendOut[Idx] = R.StableOut;
    Json.record(std::string("xhtml-single-query/backend=") + bddBackendName(K),
                R.WallMs, xsa_bench::sessionHitRate(BS), extras(R.Stats, R));
  }
  double SerialWall = BackendWall[static_cast<size_t>(BddBackendKind::Serial)];
  double ParallelWall =
      BackendWall[static_cast<size_t>(BddBackendKind::Parallel)];
  std::fprintf(stderr,
               "bench_fixpoint: xhtml single query wall ms serial=%.2f "
               "parallel=%.2f (%u cores)\n",
               SerialWall, ParallelWall, Cores);
  if (BackendOut[static_cast<size_t>(BddBackendKind::Parallel)] !=
      BackendOut[static_cast<size_t>(BddBackendKind::Serial)])
    Fail("parallel backend changed the stable single-query output");
  if (Cores >= 4) {
    if (ParallelWall >= SerialWall)
      Fail("parallel backend shows no wall-time uplift on the "
           "large-DTD single query despite >= 4 cores");
  } else {
    std::fprintf(stderr,
                 "bench_fixpoint: uplift gate skipped (%u cores < 4)\n",
                 Cores);
  }

  std::fprintf(stderr, "bench_fixpoint: %s\n", Ok ? "PASS" : "FAIL");
  return Ok ? 0 : 1;
}
