//===- bench_server.cpp - xsolved load generator ---------------------------===//
//
// Load generator for the long-lived analysis server (server/Server.h).
// Runs an in-process XsolvedServer on an ephemeral TCP port and drives
// it over real sockets, so accept/framing/admission/sequencing are all
// on the measured path — only the process boundary is elided.
//
// Rows written to BENCH_server.json (closed loop = one outstanding
// request per client, latency measured per request at the client):
//
//   closed_cold_jobsN   4 clients x 100 mixed requests, fresh server
//   closed_warm_jobsN   the same clients' workload repeated against the
//                       now-warm shared cache (the multi-tenant payoff:
//                       hit rate > 0.5 and a wall-clock speedup)
//   open_burst          one client floods 200 requests into a paused
//                       dispatcher with a small admission bound, then
//                       the dispatcher resumes — exercises the
//                       overloaded backpressure path under load
//
// Each closed-loop row records wall_ms, cache_hit_rate, client-measured
// p50_ms/p99_ms and throughput_rps; open_burst records the admitted /
// rejected split. CI gates on the p50/p99 fields being present and on
// warm beating cold.
//
// Standalone on purpose (no google-benchmark): CI runs it in every
// Release build the way bench_rewrite and bench_fixpoint already run.
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "obs/Trace.h"
#include "server/Client.h"
#include "server/Server.h"
#include "service/Json.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

using namespace xsa;
using xsa_bench::BenchJsonWriter;

namespace {

double msSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - T0)
      .count();
}

/// The bench_service mixed workload as protocol lines: four request
/// shapes over per-index alphabets, so a 100-line pass holds 100
/// distinct decision problems and a repeat pass holds zero new ones.
std::vector<std::string> workloadLines(size_t N) {
  std::vector<std::string> Lines;
  Lines.reserve(N);
  for (size_t I = 0; I < N; ++I) {
    std::string A = "a" + std::to_string(I);
    std::string B = "b" + std::to_string(I);
    std::string C = "c" + std::to_string(I);
    std::string Id = "q" + std::to_string(I);
    switch (I % 4) {
    case 0:
      Lines.push_back("{\"id\":\"" + Id + "\",\"op\":\"contains\",\"e1\":\"/" +
                      A + "/" + B + "\",\"e2\":\"//" + B + "\"}");
      break;
    case 1:
      Lines.push_back("{\"id\":\"" + Id + "\",\"op\":\"contains\",\"e1\":\"//" +
                      B + "\",\"e2\":\"/" + A + "/" + B + "\"}");
      break;
    case 2:
      Lines.push_back("{\"id\":\"" + Id + "\",\"op\":\"overlap\",\"e1\":\"//" +
                      A + "/" + B + "[" + C + "]\",\"e2\":\"//" + B + "\"}");
      break;
    default:
      Lines.push_back("{\"id\":\"" + Id + "\",\"op\":\"empty\",\"e1\":\"/" +
                      A + "[" + B + " and " + C + "]\"}");
      break;
    }
  }
  return Lines;
}

struct ClientResult {
  std::vector<double> LatenciesMs; ///< closed loop: per-request RTT
  size_t Ok = 0;
  size_t Failed = 0;
};

/// Closed loop: send one request, wait for its response, measure the
/// round trip, repeat. One outstanding request per client.
ClientResult runClosedLoop(int Port, const std::vector<std::string> &Lines) {
  ClientResult R;
  LineClient C;
  std::string Error;
  if (!C.connectTcp("127.0.0.1", Port, Error)) {
    std::fprintf(stderr, "bench_server: connect failed: %s\n", Error.c_str());
    return R;
  }
  R.LatenciesMs.reserve(Lines.size());
  std::string Resp;
  for (const std::string &L : Lines) {
    auto T0 = std::chrono::steady_clock::now();
    if (!C.sendLine(L) || !C.recvLine(Resp)) {
      ++R.Failed;
      break;
    }
    R.LatenciesMs.push_back(msSince(T0));
    if (Resp.find("\"ok\":true") != std::string::npos)
      ++R.Ok;
    else
      ++R.Failed;
  }
  return R;
}

double percentile(std::vector<double> &Sorted, double P) {
  if (Sorted.empty())
    return 0;
  size_t Idx = static_cast<size_t>(P * static_cast<double>(Sorted.size() - 1));
  return Sorted[Idx];
}

/// One closed-loop pass: \p Clients threads each run the full workload
/// against the server, latencies merged across clients.
void closedLoopRow(BenchJsonWriter &Out, const std::string &Name,
                   XsolvedServer &Server,
                   const std::vector<std::string> &Lines, size_t Clients) {
  SessionStats Before = Server.session().stats();
  std::vector<ClientResult> Results(Clients);
  auto T0 = std::chrono::steady_clock::now();
  std::vector<std::thread> Threads;
  for (size_t I = 0; I < Clients; ++I)
    Threads.emplace_back([&, I] {
      Results[I] = runClosedLoop(Server.tcpPort(), Lines);
    });
  for (std::thread &T : Threads)
    T.join();
  double WallMs = msSince(T0);

  std::vector<double> All;
  size_t Ok = 0, Failed = 0;
  for (const ClientResult &R : Results) {
    All.insert(All.end(), R.LatenciesMs.begin(), R.LatenciesMs.end());
    Ok += R.Ok;
    Failed += R.Failed;
  }
  std::sort(All.begin(), All.end());

  // Hit rate of THIS pass, not of the session's whole life — the warm
  // row must report warm hits, not an average with its own cold pass.
  SessionStats After = Server.session().stats();
  size_t Hits = After.Cache.Hits - Before.Cache.Hits;
  size_t Lookups = Hits + (After.Cache.Misses - Before.Cache.Misses);
  double HitRate = Lookups ? static_cast<double>(Hits) / Lookups : 0;

  double Rps = WallMs > 0 ? 1000.0 * static_cast<double>(Ok + Failed) / WallMs
                          : 0;
  Out.record(Name, WallMs, HitRate,
             {{"clients", static_cast<double>(Clients)},
              {"requests", static_cast<double>(Ok + Failed)},
              {"failed", static_cast<double>(Failed)},
              {"p50_ms", percentile(All, 0.5)},
              {"p99_ms", percentile(All, 0.99)},
              {"throughput_rps", Rps}});
  std::printf("%-22s wall %8.1f ms  hit %.2f  p50 %6.2f ms  p99 %6.2f ms  "
              "%7.0f req/s\n",
              Name.c_str(), WallMs, HitRate, percentile(All, 0.5),
              percentile(All, 0.99), Rps);
}

/// Open loop: pipeline the whole burst without waiting, against a
/// paused dispatcher and a small admission bound, then resume. The
/// interesting numbers are the admitted/rejected split and that the
/// server stays responsive (every request gets exactly one answer).
void openBurstRow(BenchJsonWriter &Out) {
  ServerOptions Opts;
  Opts.TcpPort = 0;
  Opts.QueueLimit = 16;
  Opts.Session.Jobs = 2;
  XsolvedServer Server(Opts);
  std::string Error;
  if (!Server.start(Error)) {
    std::fprintf(stderr, "bench_server: %s\n", Error.c_str());
    return;
  }
  std::vector<std::string> Lines = workloadLines(200);
  Server.debugPauseDispatch(true);
  LineClient C;
  if (!C.connectTcp("127.0.0.1", Server.tcpPort(), Error)) {
    std::fprintf(stderr, "bench_server: connect failed: %s\n", Error.c_str());
    Server.drainAndWait();
    return;
  }
  auto T0 = std::chrono::steady_clock::now();
  for (const std::string &L : Lines)
    if (!C.sendLine(L))
      break;
  Server.debugPauseDispatch(false);
  size_t Answered = 0, Overloaded = 0;
  std::string Resp;
  for (size_t I = 0; I < Lines.size(); ++I) {
    if (!C.recvLine(Resp))
      break;
    if (Resp.find("\"code\":\"overloaded\"") != std::string::npos)
      ++Overloaded;
    else
      ++Answered;
  }
  double WallMs = msSince(T0);
  Server.drainAndWait();
  Out.record("open_burst", WallMs, 0,
             {{"requests", static_cast<double>(Lines.size())},
              {"answered", static_cast<double>(Answered)},
              {"rejected_overloaded", static_cast<double>(Overloaded)},
              {"queue_limit", static_cast<double>(Opts.QueueLimit)}});
  std::printf("%-22s wall %8.1f ms  answered %zu  overloaded %zu (limit "
              "%zu)\n",
              "open_burst", WallMs, Answered, Overloaded, Opts.QueueLimit);
}

/// Slow-query capture gate: with the threshold at 0 every request is a
/// tail event, so after N requests the slowlog must hold N entries,
/// each carrying its propagated request id and a per-stage breakdown
/// with the "request" row. Nonzero exit on any miss — this is the CI
/// check that tail sampling actually captures.
bool slowlogCaptureCheck() {
  ServerOptions Opts;
  Opts.TcpPort = 0;
  Opts.SlowThresholdMs = 0;
  Opts.Session.Jobs = 2;
  XsolvedServer Server(Opts);
  std::string Error;
  if (!Server.start(Error)) {
    std::fprintf(stderr, "bench_server: %s\n", Error.c_str());
    return false;
  }
  LineClient C;
  if (!C.connectTcp("127.0.0.1", Server.tcpPort(), Error)) {
    std::fprintf(stderr, "bench_server: connect failed: %s\n", Error.c_str());
    Server.drainAndWait();
    return false;
  }
  std::vector<std::string> Lines = workloadLines(16);
  std::string Resp;
  for (const std::string &L : Lines)
    if (!C.sendLine(L) || !C.recvLine(Resp)) {
      Server.drainAndWait();
      return false;
    }
  if (!C.sendLine("{\"op\":\"slowlog\"}") || !C.recvLine(Resp)) {
    Server.drainAndWait();
    return false;
  }
  Server.drainAndWait();

  JsonRef R = parseJson(Resp, Error);
  if (!R || R->type() != JsonValue::Type::Object) {
    std::fprintf(stderr, "bench_server: slowlog response unparsable: %s\n",
                 Error.c_str());
    return false;
  }
  const std::vector<JsonRef> &Entries =
      R->get("slowlog")->get("entries")->items();
  bool Ok = Entries.size() >= Lines.size();
  if (!Ok)
    std::fprintf(stderr,
                 "bench_server: slowlog captured %zu/%zu requests at "
                 "threshold 0\n",
                 Entries.size(), Lines.size());
  for (const JsonRef &E : Entries) {
    if (E->str("rid").empty()) {
      std::fprintf(stderr, "bench_server: slowlog entry without rid\n");
      Ok = false;
    }
    if (!E->get("stages")->has("request")) {
      std::fprintf(stderr,
                   "bench_server: slowlog entry without a request stage\n");
      Ok = false;
    }
  }
  std::printf("%-22s captured %zu/%zu with rid+stages: %s\n",
              "slowlog_capture", Entries.size(), Lines.size(),
              Ok ? "ok" : "FAIL");
  return Ok;
}

/// Overhead report: warm closed-loop p50 with the always-on observability
/// (stage capture + logging) as the server runs it, vs with stage capture
/// forced off — the cost of being able to tail-sample every request.
/// Report only, no gate: a sub-5% delta on sub-ms requests is noise-prone
/// on shared CI runners; the recorded row is the trend line.
void obsOverheadRow(BenchJsonWriter &Out) {
  ServerOptions Opts;
  Opts.TcpPort = 0;
  Opts.Session.Jobs = 1;
  XsolvedServer Server(Opts);
  std::string Error;
  if (!Server.start(Error)) {
    std::fprintf(stderr, "bench_server: %s\n", Error.c_str());
    return;
  }
  std::vector<std::string> Lines = workloadLines(100);
  runClosedLoop(Server.tcpPort(), Lines); // warm the shared cache
  auto WarmP50 = [&] {
    ClientResult R = runClosedLoop(Server.tcpPort(), Lines);
    std::sort(R.LatenciesMs.begin(), R.LatenciesMs.end());
    return percentile(R.LatenciesMs, 0.5);
  };
  double OnMs = WarmP50();
  Tracer::global().setStageCapture(false);
  double OffMs = WarmP50();
  Tracer::global().setStageCapture(true);
  Server.drainAndWait();
  double Pct = OffMs > 0 ? (OnMs - OffMs) / OffMs * 100.0 : 0;
  Out.record("obs_overhead_warm", OnMs, 0,
             {{"p50_capture_on_ms", OnMs},
              {"p50_capture_off_ms", OffMs},
              {"overhead_pct", Pct}});
  std::printf("%-22s p50 on %6.3f ms  off %6.3f ms  overhead %+.1f%%\n",
              "obs_overhead_warm", OnMs, OffMs, Pct);
}

} // namespace

int main() {
  BenchJsonWriter Out("BENCH_server.json");
  const size_t Clients = 4;
  std::vector<std::string> Lines = workloadLines(100);

  for (size_t Jobs : {size_t(1), size_t(4)}) {
    ServerOptions Opts;
    Opts.TcpPort = 0;
    Opts.Session.Jobs = Jobs;
    XsolvedServer Server(Opts);
    std::string Error;
    if (!Server.start(Error)) {
      std::fprintf(stderr, "bench_server: %s\n", Error.c_str());
      return 1;
    }
    std::string Suffix = "_jobs" + std::to_string(Jobs);
    closedLoopRow(Out, "closed_cold" + Suffix, Server, Lines, Clients);
    closedLoopRow(Out, "closed_warm" + Suffix, Server, Lines, Clients);
    Server.drainAndWait();
  }

  openBurstRow(Out);
  obsOverheadRow(Out);
  bool CaptureOk = slowlogCaptureCheck();
  Out.write();
  return CaptureOk ? 0 : 1;
}
