//===- BenchJson.h - Machine-readable benchmark results ---------*- C++ -*-===//
//
// Shared helper for every benchmark: collects per-workload results and
// writes them as a small JSON array (schema: name, wall_ms,
// cache_hit_rate, plus benchmark-specific extra numeric fields) so CI
// and scripts can track throughput, cache-hit-rate uplift and the
// fixpoint-seed hit rate without scraping console tables. Each
// benchmark writes its own BENCH_<name>.json (bench_service,
// bench_rewrite, bench_scaling, bench_ablation, bench_fixpoint).
//
//===----------------------------------------------------------------------===//

#ifndef XSA_BENCH_BENCHJSON_H
#define XSA_BENCH_BENCHJSON_H

#include "service/Json.h"
#include "service/Session.h"

#include <cstdio>
#include <string>
#include <vector>

namespace xsa_bench {

/// The cache_hit_rate both benchmarks report: hit fraction of the
/// session's semantic result cache, in [0, 1].
inline double sessionHitRate(const xsa::AnalysisSession &Session) {
  xsa::SessionStats S = Session.stats();
  size_t Lookups = S.Cache.Hits + S.Cache.Misses;
  return Lookups ? static_cast<double>(S.Cache.Hits) / Lookups : 0;
}

struct BenchResult {
  std::string Name;
  double WallMs = 0;
  double CacheHitRate = 0; ///< in [0, 1]
  /// Benchmark-specific numeric fields (lean size, iteration counts,
  /// seed hit rates, ...), emitted verbatim into the JSON object.
  std::vector<std::pair<std::string, double>> Extra;
};

/// Collects results and writes \p Path on destruction (so it works both
/// from a plain main() and under BENCHMARK_MAIN(), where the writer is
/// a static destructed at process exit). record() overwrites an earlier
/// result of the same name — under google-benchmark each workload runs
/// several times and the last (longest, most-iterated) run wins.
class BenchJsonWriter {
public:
  explicit BenchJsonWriter(std::string Path) : Path(std::move(Path)) {}
  ~BenchJsonWriter() { write(); }

  void record(const std::string &Name, double WallMs, double CacheHitRate,
              std::vector<std::pair<std::string, double>> Extra = {}) {
    for (BenchResult &R : Results)
      if (R.Name == Name) {
        R.WallMs = WallMs;
        R.CacheHitRate = CacheHitRate;
        R.Extra = std::move(Extra);
        return;
      }
    Results.push_back({Name, WallMs, CacheHitRate, std::move(Extra)});
  }

  void write() const {
    std::FILE *F = std::fopen(Path.c_str(), "w");
    if (!F)
      return;
    std::fprintf(F, "[\n");
    for (size_t I = 0; I < Results.size(); ++I) {
      std::fprintf(F,
                   "  {\"name\": %s, \"wall_ms\": %.3f, "
                   "\"cache_hit_rate\": %.4f",
                   xsa::jsonQuote(Results[I].Name).c_str(), Results[I].WallMs,
                   Results[I].CacheHitRate);
      for (const auto &[K, V] : Results[I].Extra)
        std::fprintf(F, ", %s: %.4f", xsa::jsonQuote(K).c_str(), V);
      std::fprintf(F, "}%s\n", I + 1 < Results.size() ? "," : "");
    }
    std::fprintf(F, "]\n");
    std::fclose(F);
  }

private:
  std::string Path;
  std::vector<BenchResult> Results;
};

} // namespace xsa_bench

#endif // XSA_BENCH_BENCHJSON_H
