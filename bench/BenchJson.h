//===- BenchJson.h - Machine-readable benchmark results ---------*- C++ -*-===//
//
// Shared helper for every benchmark: collects per-workload results and
// writes them as a small JSON array (schema: name, wall_ms,
// cache_hit_rate, plus benchmark-specific extra numeric fields) so CI
// and scripts can track throughput, cache-hit-rate uplift and the
// fixpoint-seed hit rate without scraping console tables. Each
// benchmark writes its own BENCH_<name>.json (bench_service,
// bench_rewrite, bench_scaling, bench_ablation, bench_fixpoint).
//
//===----------------------------------------------------------------------===//

#ifndef XSA_BENCH_BENCHJSON_H
#define XSA_BENCH_BENCHJSON_H

#include "obs/Metrics.h"
#include "service/Json.h"
#include "service/Session.h"

#include <cmath>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace xsa_bench {

/// The cache_hit_rate both benchmarks report: hit fraction of the
/// session's semantic result cache, in [0, 1].
inline double sessionHitRate(const xsa::AnalysisSession &Session) {
  xsa::SessionStats S = Session.stats();
  size_t Lookups = S.Cache.Hits + S.Cache.Misses;
  return Lookups ? static_cast<double>(S.Cache.Hits) / Lookups : 0;
}

struct BenchResult {
  std::string Name;
  double WallMs = 0;
  double CacheHitRate = 0; ///< in [0, 1]
  /// Benchmark-specific numeric fields (lean size, iteration counts,
  /// seed hit rates, ...), emitted verbatim into the JSON object.
  std::vector<std::pair<std::string, double>> Extra;
};

/// Collects results and writes \p Path on destruction (so it works both
/// from a plain main() and under BENCHMARK_MAIN(), where the writer is
/// a static destructed at process exit). record() overwrites an earlier
/// result of the same name — under google-benchmark each workload runs
/// several times and the last (longest, most-iterated) run wins.
class BenchJsonWriter {
public:
  explicit BenchJsonWriter(std::string Path) : Path(std::move(Path)) {}
  ~BenchJsonWriter() { write(); }

  void record(const std::string &Name, double WallMs, double CacheHitRate,
              std::vector<std::pair<std::string, double>> Extra = {}) {
    for (BenchResult &R : Results)
      if (R.Name == Name) {
        R.WallMs = WallMs;
        R.CacheHitRate = CacheHitRate;
        R.Extra = std::move(Extra);
        return;
      }
    Results.push_back({Name, WallMs, CacheHitRate, std::move(Extra)});
  }

  /// One result object per line (diff-friendly), each serialized through
  /// the shared JsonValue emitter so names, extra-field keys and numbers
  /// all go through one escaper — no hand-rolled member formatting here.
  void write() const {
    std::FILE *F = std::fopen(Path.c_str(), "w");
    if (!F)
      return;
    std::fprintf(F, "[\n");
    for (size_t I = 0; I < Results.size(); ++I) {
      xsa::JsonRef O = xsa::JsonValue::object();
      O->set("name", xsa::JsonValue::string(Results[I].Name));
      O->set("wall_ms", xsa::JsonValue::number(round4(Results[I].WallMs)));
      O->set("cache_hit_rate",
             xsa::JsonValue::number(round4(Results[I].CacheHitRate)));
      for (const auto &[K, V] : Results[I].Extra)
        O->set(K, xsa::JsonValue::number(round4(V)));
      std::fprintf(F, "  %s%s\n", O->dump().c_str(),
                   I + 1 < Results.size() ? "," : "");
    }
    std::fprintf(F, "]\n");
    std::fclose(F);
  }

private:
  /// Timing noise past 0.1µs is not signal; rounding also keeps the
  /// emitted files free of 17-digit double tails.
  static double round4(double V) { return std::round(V * 1e4) / 1e4; }

  std::string Path;
  std::vector<BenchResult> Results;
};

/// Brackets a measured region over one of the engine's latency
/// histograms (obs/Metrics.h): snapshots at construction, and quantiles()
/// reports p50/p99 of exactly the observations recorded since — which is
/// how BENCH_*.json gains tail-latency fields without the benchmark
/// keeping its own sample vector.
class LatencyProbe {
public:
  explicit LatencyProbe(xsa::Histogram &H) : H(H), Before(H.snapshot()) {}

  /// Extra-field pairs {p50_ms, p99_ms} for BenchJsonWriter::record().
  std::vector<std::pair<std::string, double>> quantiles() const {
    xsa::HistogramSnapshot D = H.snapshot().since(Before);
    return {{"p50_ms", D.quantile(0.5)}, {"p99_ms", D.quantile(0.99)}};
  }

private:
  xsa::Histogram &H;
  xsa::HistogramSnapshot Before;
};

/// The request-latency histogram every AnalysisSession request observes
/// into — the histogram service benches bracket with a LatencyProbe.
inline xsa::Histogram &requestLatencyHistogram() {
  return xsa::MetricRegistry::global().histogram(
      "xsa_request_latency_ms", "End-to-end request latency");
}

/// The solver-run histogram (cache misses only) — what fixpoint/solver
/// benches bracket.
inline xsa::Histogram &solveLatencyHistogram() {
  return xsa::MetricRegistry::global().histogram(
      "xsa_solve_latency_ms", "Full solver-run latency (cache misses only)");
}

} // namespace xsa_bench

#endif // XSA_BENCH_BENCHJSON_H
