//===- bench_rewrite.cpp - Rewrite throughput and pre-pass uplift ----------===//
//
// Measures the solver-verified rewrite engine (src/rewrite/) on two
// axes the ISSUE's acceptance criteria name:
//
//   * optimize throughput — queries/second through the full certified
//     loop (candidate generation, cost ranking, solver obligations),
//     cold on a fresh session and again memoized on a warm one;
//
//   * the batch cache-hit-rate uplift the optimize pre-pass buys on a
//     near-duplicate workload: syntactic variants of the same query
//     compile to different formulas and each pay their own solve, until
//     the pre-pass canonicalizes them onto one cache entry.
//
// Standalone (no google-benchmark dependency) so it builds everywhere
// and can emit BENCH_rewrite.json (name, wall_ms, cache_hit_rate)
// itself; exits nonzero when the pre-pass shows no uplift, so a CI
// smoke run doubles as a regression gate.
//
//===----------------------------------------------------------------------===//

#include "service/Batch.h"
#include "service/Session.h"

#include "BenchJson.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

using namespace xsa;

namespace {

double msSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - T0)
      .count();
}

/// Distinct queries exercising every shipped rule, over per-index
/// alphabets so no two share solver work: the unit of rewrite
/// throughput.
std::vector<AnalysisRequest> optimizeWorkload(size_t Groups = 10) {
  std::vector<AnalysisRequest> Reqs;
  for (size_t I = 0; I < Groups; ++I) {
    std::string A = "a" + std::to_string(I);
    std::string B = "b" + std::to_string(I);
    std::string C = "c" + std::to_string(I);
    for (const std::string &Q : {
             A + "//" + B,                       // fuse-steps
             A + "/self::*/" + B,                // drop-self
             A + "/" + B + "/parent::" + A,      // reverse-axis
             C + "/prec-sibling::" + A,          // reverse-axis (sibling)
             "(" + A + ")+",                     // collapse-iterate (refuted)
             A + " | " + B + "[" + C + "]",      // dead-branch (refuted)
         }) {
      AnalysisRequest R;
      R.Id = "q" + std::to_string(Reqs.size());
      R.Kind = RequestKind::Optimize;
      R.Query1 = Q;
      Reqs.push_back(R);
    }
  }
  return Reqs;
}

/// Near-duplicate emptiness workload: per group, four syntactic
/// variants of `a/descendant::b` that compile to *different* formulas
/// yet all rewrite to the same canonical form. Without the pre-pass
/// each variant pays its own solve; with it, three of four are answered
/// from the first variant's cache entry.
std::vector<AnalysisRequest> nearDuplicateWorkload(size_t Groups = 12) {
  std::vector<AnalysisRequest> Reqs;
  for (size_t I = 0; I < Groups; ++I) {
    std::string A = "a" + std::to_string(I);
    std::string B = "b" + std::to_string(I);
    for (const std::string &Q : {
             A + "/descendant::" + B,
             A + "//" + B,
             A + "/self::*/descendant::" + B,
             A + "/descendant::*/self::" + B,
         }) {
      AnalysisRequest R;
      R.Id = "q" + std::to_string(Reqs.size());
      R.Kind = RequestKind::Emptiness;
      R.Query1 = Q;
      Reqs.push_back(R);
    }
  }
  return Reqs;
}

double responseHitRate(const std::vector<AnalysisResponse> &Resps) {
  size_t Hits = 0;
  for (const AnalysisResponse &R : Resps)
    Hits += R.FromCache;
  return Resps.empty() ? 0 : static_cast<double>(Hits) / Resps.size();
}

} // namespace

int main() {
  xsa_bench::BenchJsonWriter Json("BENCH_rewrite.json");

  // --- Rewrite throughput: cold, then memoized on the same session. ---
  std::vector<AnalysisRequest> Opt = optimizeWorkload();
  AnalysisSession Session;
  xsa_bench::LatencyProbe ColdProbe(xsa_bench::requestLatencyHistogram());
  auto T0 = std::chrono::steady_clock::now();
  std::vector<AnalysisResponse> Cold = runBatch(Session, Opt);
  double ColdMs = msSince(T0);
  size_t Rewrites = 0, Checks = 0;
  for (const AnalysisResponse &R : Cold) {
    if (!R.Ok) {
      std::fprintf(stderr, "optimize failed: %s\n", R.Error.c_str());
      return 1;
    }
    Checks += R.Trace.size();
    for (const RewriteStep &S : R.Trace)
      Rewrites += S.Accepted;
  }
  double ColdRate = xsa_bench::sessionHitRate(Session);
  std::printf("optimize-cold:      %3zu queries  %8.1f ms  "
              "(%.0f q/s, %zu obligations, %zu accepted, "
              "obligation cache-hit rate %.2f)\n",
              Opt.size(), ColdMs, 1e3 * Opt.size() / ColdMs, Checks, Rewrites,
              ColdRate);
  Json.record("optimize-cold", ColdMs, ColdRate, ColdProbe.quantiles());

  SessionStats Before = Session.stats();
  xsa_bench::LatencyProbe WarmProbe(xsa_bench::requestLatencyHistogram());
  T0 = std::chrono::steady_clock::now();
  runBatch(Session, Opt);
  double WarmMs = msSince(T0);
  SessionStats After = Session.stats();
  size_t MemoHits = After.OptimizeCacheHits - Before.OptimizeCacheHits;
  size_t MemoMisses = After.QueriesOptimized - Before.QueriesOptimized;
  double MemoRate = MemoHits + MemoMisses
                        ? static_cast<double>(MemoHits) /
                              (MemoHits + MemoMisses)
                        : 0;
  std::printf("optimize-memoized:  %3zu queries  %8.1f ms  "
              "(%.0f q/s, optimize-memo hit rate %.2f)\n",
              Opt.size(), WarmMs, 1e3 * Opt.size() / WarmMs, MemoRate);
  Json.record("optimize-memoized", WarmMs, MemoRate, WarmProbe.quantiles());

  // --- Pre-pass cache-hit-rate uplift on near-duplicates. ---
  std::vector<AnalysisRequest> Dup = nearDuplicateWorkload();

  AnalysisSession Plain;
  xsa_bench::LatencyProbe OffProbe(xsa_bench::requestLatencyHistogram());
  T0 = std::chrono::steady_clock::now();
  double OffRate = responseHitRate(runBatch(Plain, Dup));
  double OffMs = msSince(T0);
  std::printf("batch-prepass-off:  %3zu requests %8.1f ms  "
              "(response cache-hit rate %.2f)\n",
              Dup.size(), OffMs, OffRate);
  Json.record("batch-prepass-off", OffMs, OffRate, OffProbe.quantiles());

  SessionOptions WithOpt;
  WithOpt.Optimize = true;
  AnalysisSession Optimized(WithOpt);
  xsa_bench::LatencyProbe OnProbe(xsa_bench::requestLatencyHistogram());
  T0 = std::chrono::steady_clock::now();
  double OnRate = responseHitRate(runBatch(Optimized, Dup));
  double OnMs = msSince(T0);
  std::printf("batch-prepass-on:   %3zu requests %8.1f ms  "
              "(response cache-hit rate %.2f)\n",
              Dup.size(), OnMs, OnRate);
  Json.record("batch-prepass-on", OnMs, OnRate, OnProbe.quantiles());

  std::printf("pre-pass uplift:    +%.0f%% cache-hit rate\n",
              100 * (OnRate - OffRate));
  if (OnRate <= OffRate) {
    std::fprintf(stderr,
                 "FAIL: optimize pre-pass shows no cache-hit-rate uplift "
                 "(%.2f -> %.2f)\n",
                 OffRate, OnRate);
    return 1;
  }
  return 0;
}
