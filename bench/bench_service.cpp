//===- bench_service.cpp - Parallel batch throughput -----------------------===//
//
// Measures end-to-end batch throughput (requests/second) of the analysis
// service at different worker counts. The workload is a cold
// 100-request mix — containment, overlap, emptiness and raw Lµ
// satisfiability over distinct element alphabets, roughly half
// satisfiable and half unsatisfiable underlying formulas — so every
// request reaches the BDD fixpoint: this benchmarks the dispatcher and
// the sharded cache under write pressure, not cache hits. A fresh
// session per iteration keeps runs cold; the acceptance target for the
// parallel engine is ≥ 2× throughput at jobs=4 over jobs=1 on
// multi-core hardware.
//
// A second benchmark measures the same batch fully warm (second run on
// the same session), where throughput is bounded by cache lookups and
// response assembly rather than solving.
//
//===----------------------------------------------------------------------===//

#include "service/Batch.h"
#include "service/Session.h"

#include "BenchJson.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <string>
#include <vector>

using namespace xsa;

namespace {

/// BENCH_service.json (name, wall_ms, cache_hit_rate), written at
/// process exit; each google-benchmark rerun of a workload overwrites
/// its entry, so the final (longest) run wins.
xsa_bench::BenchJsonWriter &jsonOut() {
  static xsa_bench::BenchJsonWriter W("BENCH_service.json");
  return W;
}

/// 100 mixed requests over per-index alphabets. Requests are pairwise
/// semantically distinct (labels embed the index), so a cold run pays
/// 100 independent solver fixpoints — the unit of parallel speedup.
std::vector<AnalysisRequest> mixedWorkload(size_t N = 100) {
  std::vector<AnalysisRequest> Reqs;
  Reqs.reserve(N);
  for (size_t I = 0; I < N; ++I) {
    std::string A = "a" + std::to_string(I);
    std::string B = "b" + std::to_string(I);
    std::string C = "c" + std::to_string(I);
    AnalysisRequest R;
    R.Id = "q" + std::to_string(I);
    switch (I % 4) {
    case 0: // holds (underlying formula unsatisfiable)
      R.Kind = RequestKind::Containment;
      R.Query1 = "/" + A + "/" + B;
      R.Query2 = "//" + B;
      break;
    case 1: // fails with a witness model (satisfiable)
      R.Kind = RequestKind::Containment;
      R.Query1 = "//" + B;
      R.Query2 = "/" + A + "/" + B;
      break;
    case 2: // overlapping (satisfiable)
      R.Kind = RequestKind::Overlap;
      R.Query1 = "//" + A + "/" + B;
      R.Query2 = "//" + B + "[" + C + "]";
      break;
    default: // empty (unsatisfiable)
      R.Kind = RequestKind::Emptiness;
      R.Query1 = A + "/" + B + "[parent::" + C + "]";
      break;
    }
    Reqs.push_back(R);
  }
  return Reqs;
}

void BM_ColdBatch(benchmark::State &State) {
  size_t Jobs = static_cast<size_t>(State.range(0));
  std::vector<AnalysisRequest> Reqs = mixedWorkload();
  xsa_bench::LatencyProbe Probe(xsa_bench::requestLatencyHistogram());
  double WallMs = 0, HitRate = 0;
  for (auto _ : State) {
    SessionOptions Opts;
    Opts.Jobs = Jobs;
    AnalysisSession Session(Opts);
    auto T0 = std::chrono::steady_clock::now();
    std::vector<AnalysisResponse> Resps = runBatch(Session, Reqs);
    WallMs = std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - T0)
                 .count();
    HitRate = xsa_bench::sessionHitRate(Session);
    benchmark::DoNotOptimize(Resps.data());
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Reqs.size()));
  State.counters["cache_hit_rate"] = HitRate;
  jsonOut().record("cold-batch/jobs=" + std::to_string(Jobs), WallMs, HitRate,
                   Probe.quantiles());
}

void BM_WarmBatch(benchmark::State &State) {
  size_t Jobs = static_cast<size_t>(State.range(0));
  std::vector<AnalysisRequest> Reqs = mixedWorkload();
  SessionOptions Opts;
  Opts.Jobs = Jobs;
  AnalysisSession Session(Opts);
  runBatch(Session, Reqs); // warm the shared cache once
  xsa_bench::LatencyProbe Probe(xsa_bench::requestLatencyHistogram());
  double WallMs = 0;
  for (auto _ : State) {
    auto T0 = std::chrono::steady_clock::now();
    std::vector<AnalysisResponse> Resps = runBatch(Session, Reqs);
    WallMs = std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - T0)
                 .count();
    benchmark::DoNotOptimize(Resps.data());
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Reqs.size()));
  double HitRate = xsa_bench::sessionHitRate(Session);
  State.counters["cache_hit_rate"] = HitRate;
  jsonOut().record("warm-batch/jobs=" + std::to_string(Jobs), WallMs, HitRate,
                   Probe.quantiles());
}

} // namespace

BENCHMARK(BM_ColdBatch)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

BENCHMARK(BM_WarmBatch)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK_MAIN();
