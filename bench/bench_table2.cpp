//===- bench_table2.cpp - Table 2: decision problems and timings -----------===//
//
// Regenerates Table 2 of the paper. Each row is one decision problem on
// the queries of Figure 21 (reproduced below); the solver must reproduce
// the *verdicts*, and the timing profile should keep the paper's shape:
// untyped rows fast, SMIL row moderate, XHTML rows the most expensive.
//
//   row 1  e1 ⊆ e2 and e2 ⊄ e1            none        353 ms
//   row 2  e4 ⊆ e3 and e3 ⊆ e4            none         45 ms
//   row 3  e6 ⊆ e5 and e5 ⊄ e6            none         41 ms
//   row 4  e7 satisfiable                  SMIL 1.0    157 ms
//   row 5  e8 satisfiable                  XHTML 1.0  2630 ms
//   row 6  e9 ⊆ (e10 ∪ e11 ∪ e12)         XHTML 1.0  2872 ms
//
// Notes on query transcription (see EXPERIMENTS.md): in row 3 the paper's
// e5 = a/c/following::d/e only reproduces the published verdict as
// a//c/following::d/e (with the literal a/c the solver finds a concrete,
// machine-checked counterexample). In rows 5-6 the data model has no
// document node, so e10..e12 are anchored at the root element
// (/self::html/...).
//
//===----------------------------------------------------------------------===//

#include "analysis/Problems.h"
#include "xpath/Compile.h"
#include "xpath/Parser.h"
#include "xtype/BuiltinDtds.h"
#include "xtype/Compile.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

using namespace xsa;

namespace {

ExprRef xp(const char *Src) {
  std::string Error;
  ExprRef E = parseXPath(Src, Error);
  if (!E) {
    std::fprintf(stderr, "parse error: %s\n", Error.c_str());
    std::exit(1);
  }
  return E;
}

struct Row {
  const char *Name;
  const char *PaperMs;
  bool (*Run)(FormulaFactory &FF, Analyzer &An, std::string &Verdict);
};

bool row1(FormulaFactory &FF, Analyzer &An, std::string &Verdict) {
  ExprRef E1 = xp("/a[.//b[c/*//d]/b[c//d]/b[c/d]]");
  ExprRef E2 = xp("/a[.//b[c/*//d]/b[c/d]]");
  bool Fwd = An.containment(E1, FF.trueF(), E2, FF.trueF()).Holds;
  bool Bwd = An.containment(E2, FF.trueF(), E1, FF.trueF()).Holds;
  Verdict = std::string("e1⊆e2:") + (Fwd ? "yes" : "no") +
            " e2⊆e1:" + (Bwd ? "yes" : "no");
  return Fwd && !Bwd; // the paper's verdicts
}

bool row2(FormulaFactory &FF, Analyzer &An, std::string &Verdict) {
  ExprRef E3 = xp("a/b//c/foll-sibling::d/e");
  ExprRef E4 = xp("a/b//d[prec-sibling::c]/e");
  bool Fwd = An.containment(E4, FF.trueF(), E3, FF.trueF()).Holds;
  bool Bwd = An.containment(E3, FF.trueF(), E4, FF.trueF()).Holds;
  Verdict = std::string("e4⊆e3:") + (Fwd ? "yes" : "no") +
            " e3⊆e4:" + (Bwd ? "yes" : "no");
  return Fwd && Bwd;
}

bool row3(FormulaFactory &FF, Analyzer &An, std::string &Verdict) {
  ExprRef E5 = xp("a//c/following::d/e"); // see transcription note
  ExprRef E6 = xp("a/b[//c]/following::d/e & a/d[preceding::c]/e");
  bool Fwd = An.containment(E6, FF.trueF(), E5, FF.trueF()).Holds;
  bool Bwd = An.containment(E5, FF.trueF(), E6, FF.trueF()).Holds;
  Verdict = std::string("e6⊆e5:") + (Fwd ? "yes" : "no") +
            " e5⊆e6:" + (Bwd ? "yes" : "no");
  return Fwd && !Bwd;
}

bool row4(FormulaFactory &FF, Analyzer &An, std::string &Verdict) {
  Formula Smil = FF.conj(compileDtd(FF, smil10Dtd()), rootFormula(FF));
  ExprRef E7 =
      xp("*//switch[ancestor::head]//seq//audio[prec-sibling::video]");
  bool Sat = !An.emptiness(E7, Smil).Holds;
  Verdict = std::string("e7 satisfiable:") + (Sat ? "yes" : "no");
  return Sat;
}

bool row5(FormulaFactory &FF, Analyzer &An, std::string &Verdict) {
  Formula Xhtml =
      FF.conj(compileDtd(FF, xhtml10StrictDtd()), rootFormula(FF));
  ExprRef E8 = xp("descendant::a[ancestor::a]");
  bool Sat = !An.emptiness(E8, Xhtml).Holds;
  Verdict = std::string("e8 satisfiable:") + (Sat ? "yes" : "no");
  return Sat;
}

bool row6(FormulaFactory &FF, Analyzer &An, std::string &Verdict) {
  Formula Xhtml =
      FF.conj(compileDtd(FF, xhtml10StrictDtd()), rootFormula(FF));
  ExprRef E9 = xp("/descendant::*");
  std::vector<ExprRef> Cover = {xp("/self::html/(head | body)"),
                                xp("/self::html/head/descendant::*"),
                                xp("/self::html/body/descendant::*")};
  bool Covered =
      An.coverage(E9, Xhtml, Cover, {Xhtml, Xhtml, Xhtml}).Holds;
  Verdict = std::string("e9⊆e10∪e11∪e12:") + (Covered ? "yes" : "no");
  return Covered;
}

const Row Rows[] = {
    {"row1_MiklauSuciu_containment", "353", row1},
    {"row2_sibling_equivalence", "45", row2},
    {"row3_following_containment", "41", row3},
    {"row4_e7_sat_SMIL", "157", row4},
    {"row5_e8_sat_XHTML", "2630", row5},
    {"row6_e9_coverage_XHTML", "2872", row6},
};

void BM_Table2Row(benchmark::State &State) {
  const Row &R = Rows[State.range(0)];
  std::string Verdict;
  bool AsExpected = true;
  for (auto _ : State) {
    FormulaFactory FF; // fresh factory per run: no cross-run memo reuse
    Analyzer An(FF);
    AsExpected = R.Run(FF, An, Verdict);
  }
  State.SetLabel(Verdict + (AsExpected ? " [verdicts match paper]"
                                       : " [VERDICT MISMATCH]"));
}

} // namespace

BENCHMARK(BM_Table2Row)
    ->DenseRange(0, 5)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

int main(int argc, char **argv) {
  std::printf("=== Table 2: XPath decision problems ===\n");
  std::printf("(paper times: row1 353ms, row2 45ms, row3 41ms, row4 157ms, "
              "row5 2630ms, row6 2872ms on a 2007 Pentium 4 JVM)\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
