//===- bench_bdd.cpp - BDD substrate microbenchmarks -----------------------===//
//
// Not a paper table: exercises the from-scratch BDD package (§7's
// substrate) on standard workloads so regressions in the engine are
// visible independently of the solver — n-queens (construction-heavy),
// a transition-relation image computation (andExists, the §7.3 kernel),
// and variable renaming (the x→y shift used every fixpoint iteration).
//
//===----------------------------------------------------------------------===//

#include "bdd/Bdd.h"

#include <benchmark/benchmark.h>

using namespace xsa;

namespace {

/// Builds the n-queens constraint function and counts solutions.
double queens(unsigned N) {
  SerialBddManager M(N * N);
  auto V = [&](unsigned R, unsigned C) { return M.var(R * N + C); };
  Bdd All = M.one();
  for (unsigned R = 0; R < N; ++R) {
    Bdd RowHasQueen = M.zero();
    for (unsigned C = 0; C < N; ++C)
      RowHasQueen |= V(R, C);
    All &= RowHasQueen;
  }
  for (unsigned R = 0; R < N; ++R)
    for (unsigned C = 0; C < N; ++C) {
      Bdd Q = V(R, C);
      for (unsigned R2 = 0; R2 < N; ++R2)
        if (R2 != R)
          All &= !(Q & V(R2, C));
      for (unsigned C2 = 0; C2 < N; ++C2)
        if (C2 != C)
          All &= !(Q & V(R, C2));
      for (int D = -int(N); D <= int(N); ++D) {
        if (D == 0)
          continue;
        int R2 = int(R) + D, C2 = int(C) + D;
        if (R2 >= 0 && R2 < int(N) && C2 >= 0 && C2 < int(N))
          All &= !(Q & V(R2, C2));
        C2 = int(C) - D;
        if (R2 >= 0 && R2 < int(N) && C2 >= 0 && C2 < int(N))
          All &= !(Q & V(R2, C2));
      }
    }
  return M.satCount(All, N * N);
}

void BM_Queens(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  double Solutions = 0;
  for (auto _ : State)
    Solutions = queens(N);
  State.counters["solutions"] = Solutions;
}
BENCHMARK(BM_Queens)->DenseRange(4, 7)->Unit(benchmark::kMillisecond);

/// Symbolic reachability of a w-bit counter: image computation with
/// andExists over an interleaved transition relation — the same kernel
/// the solver uses for Wita (§7.3).
void BM_CounterReachability(benchmark::State &State) {
  unsigned W = static_cast<unsigned>(State.range(0));
  size_t Steps = 0;
  for (auto _ : State) {
    SerialBddManager M(2 * W);
    auto X = [&](unsigned I) { return M.var(2 * I); };
    auto Y = [&](unsigned I) { return M.var(2 * I + 1); };
    // y = x + 1 (ripple carry).
    Bdd Trans = M.one();
    Bdd Carry = M.one(); // increment injects a carry at bit 0
    for (unsigned I = 0; I < W; ++I) {
      Trans &= Y(I).iff(X(I) ^ Carry);
      Carry = X(I) & Carry;
    }
    std::vector<unsigned> XVars;
    for (unsigned I = 0; I < W; ++I)
      XVars.push_back(2 * I);
    Bdd XCube = M.cube(XVars);
    std::vector<unsigned> Shift(2 * W);
    for (unsigned I = 0; I < W; ++I) {
      Shift[2 * I + 1] = 2 * I; // y -> x
      Shift[2 * I] = 2 * I;
    }
    // Start at 0, iterate image until fixpoint.
    Bdd Reached = M.one();
    for (unsigned I = 0; I < W; ++I)
      Reached &= !X(I);
    Steps = 0;
    for (;;) {
      Bdd ImageY = M.andExists(Reached, Trans, XCube);
      // Rename y to x: the interleaving makes the map order-preserving
      // only downward (2i+1 -> 2i), which remapVars supports.
      Bdd Image = M.remapVars(ImageY, Shift);
      Bdd Next = Reached | Image;
      ++Steps;
      if (Next == Reached)
        break;
      Reached = Next;
    }
    benchmark::DoNotOptimize(Reached);
  }
  State.counters["steps"] = static_cast<double>(Steps);
}
BENCHMARK(BM_CounterReachability)
    ->DenseRange(4, 10, 2)
    ->Unit(benchmark::kMillisecond);

void BM_RemapShift(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  SerialBddManager M(2 * N);
  // A dense function over the even variables.
  Bdd F = M.zero();
  for (unsigned I = 0; I + 1 < N; ++I)
    F |= M.var(2 * I) & !M.var(2 * (I + 1));
  std::vector<unsigned> Map(2 * N);
  for (unsigned I = 0; I < 2 * N; ++I)
    Map[I] = I | 1; // even -> odd neighbor
  for (auto _ : State)
    benchmark::DoNotOptimize(M.remapVars(F, Map));
}
BENCHMARK(BM_RemapShift)->Arg(64)->Arg(256)->Unit(benchmark::kMicrosecond);

} // namespace

BENCHMARK_MAIN();
