//===- bench_scaling.cpp - Lemma 6.7: complexity in the lean size ----------===//
//
// The satisfiability algorithm is 2^O(|Lean(ψ)|) in the worst case
// (Lemma 6.7), but the implicit BDD representation keeps typical growth
// far tamer (§7). This harness sweeps families of growing problems and
// reports time against the lean size:
//
//   * chain(k): containment of two child-chains of length k (UNSAT runs,
//     full fixpoint);
//   * star(k): emptiness of a//x1//x2//...//xk (SAT runs, early exit);
//   * qualifier(k): nested qualifiers a[b[c[...]]] containment.
//
//===----------------------------------------------------------------------===//

#include "logic/Lean.h"
#include "solver/BddSolver.h"
#include "xpath/Compile.h"
#include "xpath/Parser.h"

#include "BenchJson.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>

using namespace xsa;

namespace {

/// BENCH_scaling.json: per-family wall time of the final (longest) run
/// with the lean size alongside, so CI can track growth curves.
xsa_bench::BenchJsonWriter &jsonOut() {
  static xsa_bench::BenchJsonWriter W("BENCH_scaling.json");
  return W;
}

/// Times one State iteration body and records it under \p Name.
template <typename Fn>
void timedRecord(const std::string &Name, benchmark::State &State, Fn Body,
                 size_t *LeanOut, size_t *ItersOut = nullptr) {
  xsa_bench::LatencyProbe Probe(xsa_bench::solveLatencyHistogram());
  double WallMs = 0;
  for (auto _ : State) {
    auto T0 = std::chrono::steady_clock::now();
    Body();
    WallMs = std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - T0)
                 .count();
  }
  std::vector<std::pair<std::string, double>> Extra = {
      {"lean", static_cast<double>(*LeanOut)}};
  if (ItersOut)
    Extra.push_back({"iters", static_cast<double>(*ItersOut)});
  for (auto &Q : Probe.quantiles())
    Extra.push_back(std::move(Q));
  jsonOut().record(Name, WallMs, 0, std::move(Extra));
}

ExprRef xp(const std::string &Src) {
  std::string Error;
  ExprRef E = parseXPath(Src, Error);
  if (!E) {
    std::fprintf(stderr, "parse error: %s\n", Error.c_str());
    std::exit(1);
  }
  return E;
}

std::string chainQuery(int K, const char *Step) {
  std::string Q = "a0";
  for (int I = 1; I <= K; ++I)
    Q += std::string(Step) + "a" + std::to_string(I);
  return Q;
}

/// Containment of a k-chain in itself with the last label changed: UNSAT
/// one way (runs the fixpoint to exhaustion) — the worst case shape.
void BM_ChainContainment(benchmark::State &State) {
  int K = static_cast<int>(State.range(0));
  size_t LeanSize = 0;
  timedRecord("chain/k=" + std::to_string(K), State, [&] {
    FormulaFactory FF;
    Formula F1 = compileXPath(FF, xp(chainQuery(K, "/")), FF.trueF());
    Formula F2 = compileXPath(FF, xp(chainQuery(K, "/")), FF.trueF());
    BddSolver Solver(FF);
    SolverResult R = Solver.solve(FF.conj(F1, FF.negate(F2)));
    if (R.Satisfiable)
      State.SkipWithError("chain ⊆ itself must hold");
    LeanSize = R.Stats.LeanSize;
  }, &LeanSize);
  State.counters["lean"] = static_cast<double>(LeanSize);
}
BENCHMARK(BM_ChainContainment)
    ->DenseRange(1, 13, 2)
    ->Unit(benchmark::kMillisecond);

/// Emptiness of a growing descendant query: satisfiable, so the run
/// stops at the first satisfying iteration (early termination, §6.2).
void BM_DescendantChainSat(benchmark::State &State) {
  int K = static_cast<int>(State.range(0));
  size_t LeanSize = 0, Iterations = 0;
  timedRecord("star/k=" + std::to_string(K), State, [&] {
    FormulaFactory FF;
    Formula F = compileXPath(FF, xp(chainQuery(K, "//")), FF.trueF());
    BddSolver Solver(FF);
    SolverResult R = Solver.solve(F);
    if (!R.Satisfiable)
      State.SkipWithError("descendant chain must be satisfiable");
    LeanSize = R.Stats.LeanSize;
    Iterations = R.Stats.Iterations;
  }, &LeanSize, &Iterations);
  State.counters["lean"] = static_cast<double>(LeanSize);
  State.counters["iters"] = static_cast<double>(Iterations);
}
BENCHMARK(BM_DescendantChainSat)
    ->DenseRange(1, 13, 2)
    ->Unit(benchmark::kMillisecond);

std::string nestedQualifier(int K) {
  std::string Q = "a" + std::to_string(K);
  for (int I = K - 1; I >= 0; --I)
    Q = "a" + std::to_string(I) + "[" + Q + "]";
  return Q;
}

void BM_NestedQualifierContainment(benchmark::State &State) {
  int K = static_cast<int>(State.range(0));
  size_t LeanSize = 0;
  timedRecord("qualifier/k=" + std::to_string(K), State, [&] {
    FormulaFactory FF;
    Formula F1 = compileXPath(FF, xp(nestedQualifier(K)), FF.trueF());
    Formula F2 = compileXPath(FF, xp("a0"), FF.trueF());
    BddSolver Solver(FF);
    SolverResult R = Solver.solve(FF.conj(F1, FF.negate(F2)));
    if (R.Satisfiable)
      State.SkipWithError("a0[...] ⊆ a0 must hold");
    LeanSize = R.Stats.LeanSize;
  }, &LeanSize);
  State.counters["lean"] = static_cast<double>(LeanSize);
}
BENCHMARK(BM_NestedQualifierContainment)
    ->DenseRange(1, 9, 2)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
