//===- bench_ablation.cpp - Ablations of §7's implementation choices -------===//
//
// The paper singles out three implementation techniques as essential for
// practical performance; this harness measures each on representative
// problems:
//
//   * §7.3 conjunctive partitioning + early quantification, vs building
//     the monolithic ∆a relation;
//   * §7.4 BDD variable order: the breadth-first formula traversal, vs
//     depth-first and reversed orders;
//   * §6.2/§9 early termination: stopping as soon as a satisfying root
//     type appears, vs running the fixpoint to completion (the
//     greatest-fixpoint-style behaviour of Tanabe et al. cannot stop
//     early; our least-fixpoint algorithm can);
//   * fixpoint scheduling: breadth-first rounds vs per-program chaining
//     and saturation (solver/Pipeline.cpp), which trade more
//     relational-image sub-steps for fewer rounds.
//
//===----------------------------------------------------------------------===//

#include "solver/BddSolver.h"
#include "xpath/Compile.h"
#include "xpath/Parser.h"
#include "xtype/BuiltinDtds.h"
#include "xtype/Compile.h"

#include "BenchJson.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

using namespace xsa;

namespace {

/// BENCH_ablation.json: per-ablation wall time plus the solver counters
/// (lean, iterations, peak nodes) of the final run.
xsa_bench::BenchJsonWriter &jsonOut() {
  static xsa_bench::BenchJsonWriter W("BENCH_ablation.json");
  return W;
}

ExprRef xp(const char *Src) {
  std::string Error;
  ExprRef E = parseXPath(Src, Error);
  if (!E) {
    std::fprintf(stderr, "parse error: %s\n", Error.c_str());
    std::exit(1);
  }
  return E;
}

/// The Miklau-Suciu containment (Table 2 row 1): UNSAT, so the whole
/// fixpoint runs — a good stress for the relational product.
Formula row1Formula(FormulaFactory &FF) {
  Formula F1 =
      compileXPath(FF, xp("/a[.//b[c/*//d]/b[c//d]/b[c/d]]"), FF.trueF());
  Formula F2 = compileXPath(FF, xp("/a[.//b[c/*//d]/b[c/d]]"), FF.trueF());
  return FF.conj(F1, FF.negate(F2));
}

/// e7 under SMIL (Table 2 row 4): SAT, benefits from early termination.
Formula smilFormula(FormulaFactory &FF) {
  Formula Smil = FF.conj(compileDtd(FF, smil10Dtd()), rootFormula(FF));
  return compileXPath(
      FF, xp("*//switch[ancestor::head]//seq//audio[prec-sibling::video]"),
      Smil);
}

void runWith(const std::string &Name, benchmark::State &State,
             Formula (*Make)(FormulaFactory &), SolverOptions Opts,
             bool ExpectSat) {
  xsa_bench::LatencyProbe Probe(xsa_bench::solveLatencyHistogram());
  size_t Lean = 0, Iters = 0, SubSteps = 0, Peak = 0;
  double WallMs = 0;
  for (auto _ : State) {
    auto T0 = std::chrono::steady_clock::now();
    FormulaFactory FF;
    Formula Psi = Make(FF);
    BddSolver Solver(FF, Opts);
    SolverResult R = Solver.solve(Psi);
    WallMs = std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - T0)
                 .count();
    if (R.Satisfiable != ExpectSat)
      State.SkipWithError("unexpected verdict under ablation");
    Lean = R.Stats.LeanSize;
    Iters = R.Stats.Iterations;
    SubSteps = R.Stats.SubSteps;
    Peak = R.Stats.PeakBddNodes;
  }
  State.counters["lean"] = static_cast<double>(Lean);
  State.counters["iters"] = static_cast<double>(Iters);
  State.counters["substeps"] = static_cast<double>(SubSteps);
  State.counters["peak_nodes"] = static_cast<double>(Peak);
  std::vector<std::pair<std::string, double>> Extra = {
      {"lean", static_cast<double>(Lean)},
      {"iters", static_cast<double>(Iters)},
      {"substeps", static_cast<double>(SubSteps)},
      {"peak_nodes", static_cast<double>(Peak)}};
  for (auto &Q : Probe.quantiles())
    Extra.push_back(std::move(Q));
  jsonOut().record(Name, WallMs, 0, std::move(Extra));
}

SolverOptions baseOpts() {
  SolverOptions O;
  O.ExtractModel = false;
  return O;
}

// --- §7.3: early quantification --------------------------------------------

void BM_Row1_EarlyQuantification(benchmark::State &State) {
  runWith("row1/early-quantification", State, row1Formula, baseOpts(),
          /*ExpectSat=*/false);
}
BENCHMARK(BM_Row1_EarlyQuantification)->Unit(benchmark::kMillisecond);

void BM_Row1_MonolithicDelta(benchmark::State &State) {
  SolverOptions O = baseOpts();
  O.EarlyQuantification = false;
  runWith("row1/monolithic-delta", State, row1Formula, O,
          /*ExpectSat=*/false);
}
BENCHMARK(BM_Row1_MonolithicDelta)->Unit(benchmark::kMillisecond);

// --- §7.4: variable order ---------------------------------------------------

void BM_Row1_OrderBreadthFirst(benchmark::State &State) {
  runWith("row1/order-breadth-first", State, row1Formula, baseOpts(), false);
}
BENCHMARK(BM_Row1_OrderBreadthFirst)->Unit(benchmark::kMillisecond);

void BM_Row1_OrderDepthFirst(benchmark::State &State) {
  SolverOptions O = baseOpts();
  O.Order = LeanOrder::DepthFirst;
  runWith("row1/order-depth-first", State, row1Formula, O, false);
}
BENCHMARK(BM_Row1_OrderDepthFirst)->Unit(benchmark::kMillisecond);

void BM_Row1_OrderReversed(benchmark::State &State) {
  SolverOptions O = baseOpts();
  O.Order = LeanOrder::Reversed;
  runWith("row1/order-reversed", State, row1Formula, O, false);
}
BENCHMARK(BM_Row1_OrderReversed)->Unit(benchmark::kMillisecond);

// --- §6.2: early termination (on a satisfiable problem) ---------------------

void BM_Smil_EarlyTermination(benchmark::State &State) {
  runWith("smil/early-termination", State, smilFormula, baseOpts(),
          /*ExpectSat=*/true);
}
BENCHMARK(BM_Smil_EarlyTermination)->Unit(benchmark::kMillisecond);

void BM_Smil_FullFixpoint(benchmark::State &State) {
  SolverOptions O = baseOpts();
  O.EarlyTermination = false;
  runWith("smil/full-fixpoint", State, smilFormula, O, /*ExpectSat=*/true);
}
BENCHMARK(BM_Smil_FullFixpoint)->Unit(benchmark::kMillisecond);

// --- Fixpoint scheduling strategy -------------------------------------------
// row1/order-breadth-first above doubles as the Bfs baseline (same
// options); these rows measure how round chaining trades sub-steps for
// rounds on the UNSAT stress problem and the SAT early-exit one.

void BM_Row1_StrategyChaining(benchmark::State &State) {
  SolverOptions O = baseOpts();
  O.Strategy = FixpointStrategy::Chaining;
  runWith("row1/strategy-chaining", State, row1Formula, O, false);
}
BENCHMARK(BM_Row1_StrategyChaining)->Unit(benchmark::kMillisecond);

void BM_Row1_StrategySaturation(benchmark::State &State) {
  SolverOptions O = baseOpts();
  O.Strategy = FixpointStrategy::Saturation;
  runWith("row1/strategy-saturation", State, row1Formula, O, false);
}
BENCHMARK(BM_Row1_StrategySaturation)->Unit(benchmark::kMillisecond);

void BM_Smil_StrategyChaining(benchmark::State &State) {
  SolverOptions O = baseOpts();
  O.Strategy = FixpointStrategy::Chaining;
  runWith("smil/strategy-chaining", State, smilFormula, O, /*ExpectSat=*/true);
}
BENCHMARK(BM_Smil_StrategyChaining)->Unit(benchmark::kMillisecond);

void BM_Smil_StrategySaturation(benchmark::State &State) {
  SolverOptions O = baseOpts();
  O.Strategy = FixpointStrategy::Saturation;
  runWith("smil/strategy-saturation", State, smilFormula, O,
          /*ExpectSat=*/true);
}
BENCHMARK(BM_Smil_StrategySaturation)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
