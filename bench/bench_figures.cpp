//===- bench_figures.cpp - Figures 9, 13, 14 and 18 ------------------------===//
//
// Regenerates the paper's worked figures:
//
//   * Fig 9: the Lµ translation of child::a[child::b];
//   * Fig 11: the back-and-forth (yet cycle-free) translation of
//     foll-sibling::a/prec-sibling::b;
//   * Fig 13: the binary tree-type grammar of the Wikipedia DTD;
//   * Fig 14: its Lµ formula;
//   * Fig 18: the run of the algorithm on the containment
//     child::c/prec-sibling::a[b] ⊆? child::c[b], reporting the lean
//     size, the number of bottom-up iterations (the paper finds a
//     depth-3 witness, i.e. three iterations) and the counterexample.
//
//===----------------------------------------------------------------------===//

#include "analysis/Problems.h"
#include "logic/CycleFree.h"
#include "logic/Lean.h"
#include "tree/Xml.h"
#include "xpath/Compile.h"
#include "xpath/Parser.h"
#include "xtype/BuiltinDtds.h"
#include "xtype/Compile.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace xsa;

namespace {

ExprRef xp(const char *Src) {
  std::string Error;
  ExprRef E = parseXPath(Src, Error);
  if (!E) {
    std::fprintf(stderr, "parse error: %s\n", Error.c_str());
    std::exit(1);
  }
  return E;
}

void printFigures() {
  FormulaFactory FF;

  std::printf("=== Figure 9: translation of child::a[child::b] ===\n");
  Formula F9 = compileXPath(FF, xp("child::a[child::b]"), FF.trueF());
  std::printf("%s\n  (size %u, cycle-free: %s)\n\n", FF.toString(F9).c_str(),
              F9->size(), isCycleFree(F9) ? "yes" : "NO");

  std::printf("=== Figure 11: foll-sibling::a/prec-sibling::b ===\n");
  Formula F11 =
      compileXPath(FF, xp("foll-sibling::a/prec-sibling::b"), FF.trueF());
  std::printf("%s\n  (size %u, cycle-free: %s)\n\n", FF.toString(F11).c_str(),
              F11->size(), isCycleFree(F11) ? "yes" : "NO");

  std::printf("=== Figure 13: binary encoding of the Wikipedia DTD ===\n");
  BinaryTypeGrammar G = binarize(wikipediaDtd());
  std::printf("%s%zu type variables, %zu terminals (paper: 9 / 9)\n\n",
              G.toString().c_str(), G.numVars(), G.terminals().size());

  std::printf("=== Figure 14: its Lµ formula ===\n");
  Formula T = compileType(FF, G);
  std::printf("%s\n  (size %u)\n\n", FF.toString(T).c_str(), T->size());

  std::printf("=== Figure 18: child::c/prec-sibling::a[b] ⊆? child::c[b] ===\n");
  Formula F1 =
      compileXPath(FF, xp("child::c/prec-sibling::a[child::b]"), FF.trueF());
  Formula F2 = compileXPath(FF, xp("child::c[child::b]"), FF.trueF());
  Formula Psi = FF.conj(F1, FF.negate(F2));
  Lean L = Lean::compute(FF, plungeFormula(FF, Psi));
  std::printf("Lean(ψ) has %zu members\n", L.size());
  BddSolver Solver(FF);
  SolverResult R = Solver.solve(Psi);
  std::printf("satisfiable: %s after %zu iterations (paper: satisfiable, "
              "satisfying tree of depth 3 found after T^3)\n",
              R.Satisfiable ? "yes" : "no", R.Stats.Iterations);
  if (R.Model)
    std::printf("counterexample:\n%s\n", printXml(*R.Model).c_str());
}

void BM_Fig14WikipediaTranslation(benchmark::State &State) {
  for (auto _ : State) {
    FormulaFactory FF;
    benchmark::DoNotOptimize(compileDtd(FF, wikipediaDtd()));
  }
}
BENCHMARK(BM_Fig14WikipediaTranslation)->Unit(benchmark::kMillisecond);

void BM_Fig18ContainmentRun(benchmark::State &State) {
  for (auto _ : State) {
    FormulaFactory FF;
    Formula F1 = compileXPath(FF, xp("child::c/prec-sibling::a[child::b]"),
                              FF.trueF());
    Formula F2 = compileXPath(FF, xp("child::c[child::b]"), FF.trueF());
    BddSolver Solver(FF);
    benchmark::DoNotOptimize(Solver.solve(FF.conj(F1, FF.negate(F2))));
  }
}
BENCHMARK(BM_Fig18ContainmentRun)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printFigures();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
