//===- bench_table1.cpp - Table 1: types used in experiments ---------------===//
//
// Regenerates Table 1 of the paper:
//
//   DTD                 Symbols   Binary Type Variables
//   SMIL 1.0            19        11
//   XHTML 1.0 Strict    77        325
//
// We print both the raw construction (one variable per Glushkov state of
// each distinct content model — the paper-scale count) and the minimized
// grammar our binarizer produces (an extension; see DESIGN.md), plus the
// Wikipedia DTD of Fig. 12/13 (9 symbols, 9 variables).
//
//===----------------------------------------------------------------------===//

#include "xtype/Binarize.h"
#include "xtype/BuiltinDtds.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace xsa;

namespace {

void printTable1() {
  std::printf("=== Table 1: Types used in experiments ===\n");
  std::printf("%-20s %8s %14s %14s   (paper)\n", "DTD", "Symbols",
              "BinVars(raw)", "BinVars(min)");
  struct Row {
    const char *Name;
    const Dtd &D;
    const char *Paper;
  } Rows[] = {
      {"SMIL 1.0", smil10Dtd(), "19 / 11"},
      {"XHTML 1.0 Strict", xhtml10StrictDtd(), "77 / 325"},
      {"Wikipedia (Fig 12)", wikipediaDtd(), "9 / 9"},
  };
  for (const Row &R : Rows) {
    BinaryTypeGrammar Raw = binarize(R.D, /*Minimize=*/false);
    BinaryTypeGrammar Min = binarize(R.D, /*Minimize=*/true);
    std::printf("%-20s %8zu %14zu %14zu   %s\n", R.Name, R.D.numSymbols(),
                Raw.numVars(), Min.numVars(), R.Paper);
  }
  std::printf("\n");
}

void BM_BinarizeSmil(benchmark::State &State) {
  for (auto _ : State)
    benchmark::DoNotOptimize(binarize(smil10Dtd()));
}
BENCHMARK(BM_BinarizeSmil)->Unit(benchmark::kMillisecond);

void BM_BinarizeXhtml(benchmark::State &State) {
  for (auto _ : State)
    benchmark::DoNotOptimize(binarize(xhtml10StrictDtd()));
}
BENCHMARK(BM_BinarizeXhtml)->Unit(benchmark::kMillisecond);

void BM_BinarizeXhtmlRaw(benchmark::State &State) {
  for (auto _ : State)
    benchmark::DoNotOptimize(binarize(xhtml10StrictDtd(), false));
}
BENCHMARK(BM_BinarizeXhtmlRaw)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printTable1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
