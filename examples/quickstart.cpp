//===- quickstart.cpp - First steps with the xsa library -------------------===//
//
// Decides a classic XPath containment problem — the paper's Figure 18:
//
//   e1 = child::c/preceding-sibling::a[child::b]
//   e2 = child::c[child::b]
//
// e1 is *not* contained in e2; the solver proves it by producing an
// annotated counterexample tree, which we validate by running both
// queries on it with the concrete XPath semantics.
//
//===----------------------------------------------------------------------===//

#include "analysis/Problems.h"
#include "tree/Xml.h"
#include "xpath/Eval.h"
#include "xpath/Parser.h"

#include <cstdio>
#include <iostream>

using namespace xsa;

int main() {
  // 1. Parse the two queries.
  std::string Error;
  ExprRef E1 = parseXPath("child::c/prec-sibling::a[child::b]", Error);
  ExprRef E2 = parseXPath("child::c[child::b]", Error);
  if (!E1 || !E2) {
    std::fprintf(stderr, "parse error: %s\n", Error.c_str());
    return 1;
  }

  // 2. Ask the analyzer whether e1 ⊆ e2 (no type constraint: ⊤).
  FormulaFactory FF;
  Analyzer An(FF);
  AnalysisResult R = An.containment(E1, FF.trueF(), E2, FF.trueF());

  std::printf("e1 = %s\n", toString(E1).c_str());
  std::printf("e2 = %s\n", toString(E2).c_str());
  std::printf("e1 ⊆ e2 : %s   (lean=%zu bits, %zu iterations, %.1f ms)\n",
              R.Holds ? "yes" : "NO", R.Stats.LeanSize, R.Stats.Iterations,
              R.Stats.TimeMs);

  // 3. Inspect the counterexample: a tree with the XPath evaluation
  //    context marked xsa:start and a node selected by e1 but not by e2
  //    marked xsa:target.
  if (!R.Holds && R.Tree) {
    std::printf("\ncounterexample (start mark = evaluation context):\n%s",
                printXml(*R.Tree, R.Target).c_str());
    NodeSet S1 = evalXPath(*R.Tree, E1);
    NodeSet S2 = evalXPath(*R.Tree, E2);
    std::printf("\nconcrete semantics on the counterexample:\n");
    std::printf("  e1 selects %zu node(s), e2 selects %zu node(s)\n",
                S1.size(), S2.size());
  }

  // 4. The reverse direction fails too — and a containment that holds:
  AnalysisResult Rev = An.containment(E2, FF.trueF(), E1, FF.trueF());
  std::printf("\ne2 ⊆ e1 : %s\n", Rev.Holds ? "yes" : "NO");

  ExprRef G1 = parseXPath("a[b]", Error);
  ExprRef G2 = parseXPath("a", Error);
  std::printf("a[b] ⊆ a : %s\n",
              An.containment(G1, FF.trueF(), G2, FF.trueF()).Holds ? "yes"
                                                                   : "NO");
  return 0;
}
