//===- xsolve.cpp - Command-line front end to the solver -------------------===//
//
// A small CLI in the spirit of the system the paper describes (§7-§8):
//
//   xsolve sat '<formula>'                 Lµ satisfiability + model
//   xsolve empty '<xpath>' [dtd-file]      XPath emptiness
//   xsolve contains '<e1>' '<e2>' [dtd]    XPath containment
//   xsolve overlap '<e1>' '<e2>' [dtd]     XPath overlap
//   xsolve compile '<xpath>'               print the Lµ translation
//   xsolve validate <xml-file> <dtd-file>  DTD validation
//   xsolve batch [file|-] [--jobs N] [--cache-file F] [--stable]
//
// All solver-backed commands run through an AnalysisSession, so repeated
// (or α-equivalent) queries within one invocation — typical in batch
// mode — are answered from the session's semantic result cache. Batch
// mode additionally dispatches independent requests across --jobs worker
// threads (responses stay in input order), persists the result cache to
// --cache-file across invocations, and with --stable omits the
// execution-dependent response fields (cache, time_ms) so output is
// byte-identical at any job count.
//
// DTD arguments may be a file path or one of the builtin names
// `wikipedia`, `smil`, `xhtml`.
//
//===----------------------------------------------------------------------===//

#include "analysis/Problems.h"
#include "logic/CycleFree.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "service/Batch.h"
#include "service/Session.h"
#include "logic/Parser.h"
#include "tree/Xml.h"
#include "xpath/Compile.h"
#include "xpath/Parser.h"
#include "xtype/BuiltinDtds.h"
#include "xtype/Validate.h"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace xsa;

namespace {

/// SIGINT/SIGTERM request a graceful batch drain: the stream driver
/// stops reading at the next line boundary, answers everything already
/// read, and the normal exit path (cache save, metrics, stats) runs.
std::atomic<bool> GStopRequested{false};

extern "C" void onStopSignal(int) { GStopRequested.store(true); }

/// Installed without SA_RESTART so a blocking stdin read fails with
/// EINTR instead of resuming — that is what lets the driver notice the
/// flag while parked in a read.
void installStopHandler() {
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = onStopSignal;
  sigemptyset(&SA.sa_mask);
  SA.sa_flags = 0;
  sigaction(SIGINT, &SA, nullptr);
  sigaction(SIGTERM, &SA, nullptr);
}

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  xsolve sat '<formula>'\n"
      "  xsolve compile '<xpath>'\n"
      "  xsolve empty '<xpath>' [dtd]\n"
      "  xsolve contains '<e1>' '<e2>' [dtd]\n"
      "  xsolve overlap '<e1>' '<e2>' [dtd]\n"
      "  xsolve validate <xml-file> <dtd>\n"
      "  xsolve optimize '<xpath>' [dtd]\n"
      "  xsolve batch [file|-] [--jobs N] [--cache-file F] [--stable]\n"
      "               [--optimize] [--share-fixpoints]\n"
      "               [--fixpoint-strategy S] [--bdd-backend B]\n"
      "               [--trace-file F] [--metrics-file F]\n"
      "  xsolve replay <slowlog.json|-> [--out F] [batch flags]\n"
      "where [dtd] is a file path or one of: wikipedia, smil, xhtml.\n"
      "optimize rewrites the query rule by rule, accepting a candidate\n"
      "only when the solver proves it equivalent under the DTD, and\n"
      "prints the optimized query with the per-rule proof trace.\n"
      "batch reads one JSON request per line, e.g.\n"
      "  {\"id\":\"q1\",\"op\":\"contains\",\"e1\":\"/a//b\","
      "\"e2\":\"//b\",\"dtd\":\"xhtml\"}\n"
      "(ops: sat empty contains overlap cover equiv typecheck optimize;\n"
      " {\"op\":\"config\",\"jobs\":N,\"optimize\":B,"
      "\"share_fixpoints\":B,\"fixpoint_strategy\":S,\"bdd_backend\":B}\n"
      " reconfigures mid-stream)\n"
      "replay turns a slow-query log entry (xsolved /slowlog output, one\n"
      "JSON object or a dump array) into a batch run that re-executes the\n"
      "recorded request under its recorded configuration; --out F writes\n"
      "the generated batch file instead of running it.\n"
      "batch flags:\n"
      "  --jobs N        dispatch across N worker threads (0 = all cores)\n"
      "  --cache-file F  load the result cache from F on start (if it\n"
      "                  exists) and save it back on exit\n"
      "  --stable        omit execution-dependent fields (cache, time_ms)\n"
      "                  so output is byte-identical at any job count\n"
      "  --optimize      rewrite every query (solver-verified) before\n"
      "                  analysis, canonicalizing near-duplicates onto\n"
      "                  shared cache entries\n"
      "  --share-fixpoints\n"
      "                  share solver fixpoint sets across requests:\n"
      "                  runs with the same lean replay stored iterates\n"
      "                  instead of recomputing them (output unchanged)\n"
      "  --fixpoint-strategy S\n"
      "                  schedule the fixpoint iteration: bfs (default),\n"
      "                  chaining, saturation, or auto (pick per lean,\n"
      "                  remembered in the cache file); verdicts and\n"
      "                  models are strategy-independent\n"
      "  --bdd-backend B\n"
      "                  symbolic-set backend for the solver: serial\n"
      "                  (default) or parallel (work-stealing BDD\n"
      "                  operations inside one query). Canonical hash\n"
      "                  consing makes all output byte-identical across\n"
      "                  backends; only wall time changes\n"
      "  --bdd-threads N\n"
      "                  worker threads inside one BDD operation\n"
      "                  (parallel backend only; 0 = all cores)\n"
      "  --trace-file F  record spans for every pipeline stage and write\n"
      "                  them as Chrome trace-event JSON to F (open in\n"
      "                  Perfetto / chrome://tracing); response output is\n"
      "                  unchanged\n"
      "  --metrics-file F\n"
      "                  write the process metric registry to F in\n"
      "                  Prometheus text format on exit (see also the\n"
      "                  {\"op\":\"metrics\"} protocol line)\n");
  return 2;
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

const Dtd *loadDtd(const std::string &Arg, Dtd &Storage) {
  if (Arg == "wikipedia")
    return &wikipediaDtd();
  if (Arg == "smil")
    return &smil10Dtd();
  if (Arg == "xhtml")
    return &xhtml10StrictDtd();
  std::string Text, Error;
  if (!readFile(Arg, Text)) {
    std::fprintf(stderr, "error: cannot read DTD %s\n", Arg.c_str());
    return nullptr;
  }
  if (!parseDtd(Text, Storage, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return nullptr;
  }
  return &Storage;
}

ExprRef parseQuery(const char *Src) {
  std::string Error;
  ExprRef E = parseXPath(Src, Error);
  if (!E)
    std::fprintf(stderr, "error: %s\n", Error.c_str());
  return E;
}

/// Collects slowlog record objects from any of the shapes `xsolve
/// replay` accepts: one record object, a /slowlog dump object (its
/// "records" array), or a bare array of either.
void collectSlowlogRecords(const JsonRef &V, std::vector<JsonRef> &Out) {
  if (!V)
    return;
  if (V->type() == JsonValue::Type::Array) {
    for (const JsonRef &E : V->items())
      collectSlowlogRecords(E, Out);
    return;
  }
  if (V->type() != JsonValue::Type::Object)
    return;
  // A dump object: xsolved's /slowlog and {"op":"slowlog"} responses
  // carry "entries"; accept "records" as a synonym for hand-built input.
  for (const char *Key : {"entries", "records"}) {
    JsonRef Recs = V->get(Key);
    if (Recs && Recs->type() == JsonValue::Type::Array) {
      collectSlowlogRecords(Recs, Out);
      return;
    }
  }
  Out.push_back(V);
}

/// Turns slowlog JSON (one record, a /slowlog dump, an array, or
/// JSON-lines of records) into batch text: for each record that carries
/// a reproduction payload, a {"op":"config",...} preamble built from its
/// "config" snapshot followed by its "request" object stripped of
/// server-only fields. Consecutive identical config lines are elided.
bool slowlogToBatch(const std::string &Text, std::string &BatchText,
                    std::string &Error) {
  std::vector<JsonRef> Parsed;
  std::string ParseError;
  if (JsonRef Root = parseJson(Text, ParseError)) {
    Parsed.push_back(Root);
  } else {
    // Not one document — try JSON-lines (e.g. concatenated records).
    std::istringstream In(Text);
    std::string Line;
    size_t LineNo = 0;
    while (std::getline(In, Line)) {
      ++LineNo;
      if (Line.find_first_not_of(" \t\r") == std::string::npos)
        continue;
      std::string LineError;
      JsonRef V = parseJson(Line, LineError);
      if (!V) {
        Error = "line " + std::to_string(LineNo) + ": " + LineError;
        return false;
      }
      Parsed.push_back(V);
    }
    if (Parsed.empty()) {
      Error = ParseError;
      return false;
    }
  }

  std::vector<JsonRef> Records;
  for (const JsonRef &V : Parsed)
    collectSlowlogRecords(V, Records);
  if (Records.empty()) {
    Error = "no slowlog records in input";
    return false;
  }

  size_t Skipped = 0;
  std::string LastConfig;
  for (const JsonRef &R : Records) {
    JsonRef Req = R->get("request");
    if (!Req || Req->type() != JsonValue::Type::Object) {
      // Records captured before request payloads were recorded (or
      // hand-trimmed dumps) cannot be replayed; say so rather than
      // silently shrinking the batch.
      ++Skipped;
      continue;
    }
    JsonRef Cfg = R->get("config");
    if (Cfg && Cfg->type() == JsonValue::Type::Object) {
      JsonRef Line = JsonValue::object();
      Line->set("op", JsonValue::string("config"));
      for (const char *Key :
           {"optimize", "share_fixpoints", "fixpoint_strategy",
            "bdd_backend"}) {
        if (JsonRef V = Cfg->get(Key); V && !V->isNull())
          Line->set(Key, V);
      }
      std::string Dumped = Line->dump();
      if (Dumped != LastConfig) {
        BatchText += Dumped;
        BatchText += '\n';
        LastConfig = Dumped;
      }
    }
    // The admitted request verbatim, minus fields only the server's
    // admission queue interprets.
    JsonRef Clean = JsonValue::object();
    for (const auto &[Key, Val] : Req->members())
      if (Key != "priority" && Key != "deadline_ms")
        Clean->set(Key, Val);
    BatchText += Clean->dump();
    BatchText += '\n';
  }
  if (Skipped)
    std::fprintf(stderr,
                 "warning: skipped %zu record(s) without a request payload\n",
                 Skipped);
  if (BatchText.empty()) {
    Error = "no replayable records (none carry a request payload)";
    return false;
  }
  return true;
}

void report(const AnalysisResult &R, const char *YesMsg, const char *NoMsg) {
  std::printf("%s  (lean=%zu, %zu iterations, %.1f ms%s)\n",
              R.Holds ? YesMsg : NoMsg, R.Stats.LeanSize, R.Stats.Iterations,
              R.Stats.TimeMs, R.FromCache ? ", cached" : "");
  if (R.Tree) {
    std::printf("%s", printXml(*R.Tree, R.Target).c_str());
  }
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2)
    return usage();
  std::string Cmd = argv[1];
  AnalysisSession Session;
  FormulaFactory &FF = Session.factory();

  if (Cmd == "batch" || Cmd == "replay") {
    const bool Replay = Cmd == "replay";
    std::string Path = "-";
    std::string CacheFile;
    std::string TraceFile;
    std::string MetricsFile;
    std::string OutFile;
    bool Stable = false;
    bool HaveJobs = false;
    size_t Jobs = 1;
    for (int I = 2; I < argc; ++I) {
      std::string Arg = argv[I];
      if (Replay && Arg == "--out" && I + 1 < argc) {
        OutFile = argv[++I];
      } else if (Arg == "--jobs" && I + 1 < argc) {
        char *End = nullptr;
        long N = std::strtol(argv[++I], &End, 10);
        if (N < 0 || End == argv[I] || *End != '\0') {
          std::fprintf(stderr, "error: --jobs needs a non-negative integer\n");
          return usage();
        }
        Jobs = static_cast<size_t>(N);
        HaveJobs = true;
      } else if (Arg == "--cache-file" && I + 1 < argc) {
        CacheFile = argv[++I];
      } else if (Arg == "--trace-file" && I + 1 < argc) {
        TraceFile = argv[++I];
      } else if (Arg == "--metrics-file" && I + 1 < argc) {
        MetricsFile = argv[++I];
      } else if (Arg == "--stable") {
        Stable = true;
      } else if (Arg == "--optimize") {
        Session.setOptimize(true);
      } else if (Arg == "--share-fixpoints") {
        Session.setShareFixpoints(true);
      } else if (Arg == "--fixpoint-strategy" && I + 1 < argc) {
        FixpointStrategy S;
        if (!parseFixpointStrategy(argv[++I], S)) {
          std::fprintf(stderr,
                       "error: --fixpoint-strategy needs one of bfs, "
                       "chaining, saturation, auto (got %s)\n",
                       argv[I]);
          return usage();
        }
        Session.setFixpointStrategy(S);
      } else if (Arg == "--bdd-backend" && I + 1 < argc) {
        BddBackendKind K;
        if (!parseBddBackend(argv[++I], K)) {
          std::fprintf(stderr,
                       "error: --bdd-backend needs serial or parallel "
                       "(got %s)\n",
                       argv[I]);
          return usage();
        }
        Session.setBddBackend(K);
      } else if (Arg == "--bdd-threads" && I + 1 < argc) {
        char *End = nullptr;
        long N = std::strtol(argv[++I], &End, 10);
        if (N < 0 || End == argv[I] || *End != '\0') {
          std::fprintf(stderr,
                       "error: --bdd-threads needs a non-negative integer\n");
          return usage();
        }
        Session.setBddThreads(static_cast<unsigned>(N));
      } else if (!Arg.empty() && Arg[0] == '-' && Arg != "-") {
        std::fprintf(stderr, "error: unknown %s flag %s\n", Cmd.c_str(),
                     Arg.c_str());
        return usage();
      } else {
        Path = Arg;
      }
    }
    // Replay preprocessing: turn the slowlog input into batch text
    // before any session state is touched, so --out can exit without
    // side effects. The recorded config rides inside the batch text as
    // {"op":"config"} preambles, overriding any command-line defaults —
    // reproducing the configuration the request actually ran under.
    std::string ReplayBatch;
    if (Replay) {
      std::string Text;
      if (Path == "-") {
        std::ostringstream SS;
        SS << std::cin.rdbuf();
        Text = SS.str();
      } else if (!readFile(Path, Text)) {
        std::fprintf(stderr, "error: cannot read %s\n", Path.c_str());
        return 1;
      }
      std::string Error;
      if (!slowlogToBatch(Text, ReplayBatch, Error)) {
        std::fprintf(stderr, "error: %s\n", Error.c_str());
        return 1;
      }
      if (!OutFile.empty()) {
        std::ofstream Out(OutFile);
        if (!Out) {
          std::fprintf(stderr, "error: cannot write %s\n", OutFile.c_str());
          return 1;
        }
        Out << ReplayBatch;
        return 0;
      }
    }
    if (HaveJobs)
      Session.setJobs(Jobs);
    if (!CacheFile.empty()) {
      std::string Error;
      // A missing cache file just means a cold start; any other load
      // problem is worth a warning but not a refusal to serve.
      std::ifstream Probe(CacheFile);
      if (Probe && !Session.loadCache(CacheFile, Error))
        std::fprintf(stderr, "warning: %s\n", Error.c_str());
    }
    // Tracing starts before the first request and stops (quiescently —
    // runBatchJsonLines has returned, so no spans are in flight) before
    // export. With no --trace-file the tracer stays disabled and every
    // span is a single relaxed load.
    if (!TraceFile.empty())
      Tracer::global().start();
    // An interrupted batch drains instead of aborting: the handler flips
    // the stop flag, the driver answers what it already read, and the
    // cache file is still flushed below.
    installStopHandler();
    BatchStreamOptions StreamOpts;
    StreamOpts.Stable = Stable;
    StreamOpts.Stop = &GStopRequested;
    size_t Failed = 0;
    if (Replay) {
      std::istringstream In(ReplayBatch);
      runBatchJsonLines(Session, In, std::cout, &Failed, StreamOpts);
    } else if (Path == "-") {
      runBatchJsonLines(Session, std::cin, std::cout, &Failed, StreamOpts);
    } else {
      std::ifstream In(Path);
      if (!In) {
        std::fprintf(stderr, "error: cannot read %s\n", Path.c_str());
        return 1;
      }
      runBatchJsonLines(Session, In, std::cout, &Failed, StreamOpts);
    }
    if (GStopRequested.load())
      std::fprintf(stderr,
                   "interrupted: drained in-flight requests; flushing "
                   "cache/metrics before exit\n");
    if (!TraceFile.empty()) {
      Tracer::global().stop();
      if (!Tracer::global().writeChromeTrace(TraceFile))
        std::fprintf(stderr, "warning: cannot write trace file %s\n",
                     TraceFile.c_str());
    }
    if (!MetricsFile.empty()) {
      std::ofstream MOut(MetricsFile);
      if (MOut)
        MOut << MetricRegistry::global().prometheusText();
      else
        std::fprintf(stderr, "warning: cannot write metrics file %s\n",
                     MetricsFile.c_str());
    }
    if (!CacheFile.empty()) {
      std::string Error;
      if (!Session.saveCache(CacheFile, Error))
        std::fprintf(stderr, "warning: %s\n", Error.c_str());
    }
    // Session-wide statistics go to stderr so stdout stays a clean
    // JSON-lines response stream.
    std::fprintf(stderr, "%s\n", statsToJson(Session.stats())->dump().c_str());
    return Failed == 0 ? 0 : 1;
  }

  if (argc < 3)
    return usage();

  if (Cmd == "sat") {
    std::string Error;
    Formula F = parseFormula(FF, argv[2], Error);
    if (!F) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
    if (!isCycleFree(F)) {
      std::fprintf(stderr, "error: formula is not cycle free\n");
      return 1;
    }
    SolverResult R = Session.satisfiable(F);
    std::printf("%s  (lean=%zu, %zu iterations, %.1f ms)\n",
                R.Satisfiable ? "satisfiable" : "unsatisfiable",
                R.Stats.LeanSize, R.Stats.Iterations, R.Stats.TimeMs);
    if (R.Model)
      std::printf("%s", printXml(*R.Model).c_str());
    return R.Satisfiable ? 0 : 1;
  }

  if (Cmd == "compile") {
    ExprRef E = parseQuery(argv[2]);
    if (!E)
      return 1;
    Formula F = compileXPath(FF, E, FF.trueF());
    std::printf("%s\n(size %u, cycle-free: %s)\n", FF.toString(F).c_str(),
                F->size(), isCycleFree(F) ? "yes" : "no");
    return 0;
  }

  if (Cmd == "optimize") {
    std::string Dtd = argc > 3 ? argv[3] : "";
    AnalysisRequest Req;
    Req.Kind = RequestKind::Optimize;
    Req.Query1 = argv[2];
    Req.Dtd1 = Dtd;
    AnalysisResponse R = runRequest(Session, Req);
    if (!R.Ok) {
      std::fprintf(stderr, "error: %s\n", R.Error.c_str());
      return 1;
    }
    std::printf("original:  %s  (cost %.2f)\n", Req.Query1.c_str(),
                R.CostBefore);
    std::printf("optimized: %s  (cost %.2f, %zu proof obligations)\n",
                R.Optimized.c_str(), R.CostAfter, R.Trace.size());
    for (const RewriteStep &S : R.Trace)
      std::printf("  [%s] %-16s %s  =>  %s  (%s, %s%.1f ms)\n",
                  S.Accepted ? "PROVED " : "refuted", S.Rule.c_str(),
                  S.From.c_str(), S.To.c_str(), S.Check,
                  S.FromCache ? "cached, " : "", S.TimeMs);
    return 0;
  }

  if (Cmd == "validate") {
    if (argc < 4)
      return usage();
    std::string Xml;
    if (!readFile(argv[2], Xml)) {
      std::fprintf(stderr, "error: cannot read %s\n", argv[2]);
      return 1;
    }
    Document Doc;
    std::string Error;
    if (!parseXml(Xml, Doc, Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
    Dtd Storage;
    const Dtd *D = loadDtd(argv[3], Storage);
    if (!D)
      return 1;
    std::string Why;
    if (validate(Doc, *D, &Why)) {
      std::printf("valid\n");
      return 0;
    }
    std::printf("invalid: %s\n", Why.c_str());
    return 1;
  }

  // The remaining commands take queries and an optional DTD, resolved
  // through the session's memoizing loader.
  Analyzer &An = Session.analyzer();
  Formula Chi = FF.trueF();
  int DtdArg = Cmd == "empty" ? 3 : 4;
  if (argc > DtdArg) {
    std::string Error;
    Chi = Session.typeContext(argv[DtdArg], Error);
    if (!Chi) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
  }

  if (Cmd == "empty") {
    ExprRef E = parseQuery(argv[2]);
    if (!E)
      return 1;
    report(An.emptiness(E, Chi), "always empty", "satisfiable");
    return 0;
  }
  if (Cmd == "contains" || Cmd == "overlap") {
    if (argc < 4)
      return usage();
    ExprRef E1 = parseQuery(argv[2]);
    ExprRef E2 = parseQuery(argv[3]);
    if (!E1 || !E2)
      return 1;
    if (Cmd == "contains")
      report(An.containment(E1, Chi, E2, Chi), "contained", "NOT contained");
    else
      report(An.overlap(E1, Chi, E2, Chi), "overlapping", "disjoint");
    return 0;
  }
  return usage();
}
