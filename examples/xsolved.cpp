//===- xsolved.cpp - Long-lived analysis server daemon ---------------------===//
//
// The daemon front end to server/Server.h:
//
//   xsolved [--tcp PORT] [--unix PATH] [--jobs N] [--queue-limit N]
//           [--cache-file F] [--stable] [--optimize] [--share-fixpoints]
//           [--fixpoint-strategy S] [--port-file F]
//   xsolved client (--tcp HOST:PORT | --unix PATH) [file|-]
//
// The server wraps ONE shared AnalysisSession: every client's requests
// read through (and warm) the same sharded result cache, fixpoint store
// and strategy-choice store. Protocol: one JSON request per line, one
// JSON response per line, same request schema as `xsolve batch`, plus
// per-request "priority" and "deadline_ms" fields and the ops config
// (with "ns"/"stable"), metrics, stats, ping and drain. An HTTP
// `GET /metrics` on either socket answers the Prometheus text format.
//
// SIGTERM/SIGINT drain gracefully: stop accepting, finish everything
// admitted, deliver the responses, persist --cache-file, exit 0.
//
// The client subcommand pipes a JSON-lines file (or stdin) to a running
// server and prints the responses — what the CI smoke test drives.
//
//===----------------------------------------------------------------------===//

#include "obs/Log.h"
#include "server/Client.h"
#include "server/Server.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

using namespace xsa;

namespace {

std::atomic<bool> GStopRequested{false};

extern "C" void onStopSignal(int) { GStopRequested.store(true); }

void installStopHandler() {
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = onStopSignal;
  sigemptyset(&SA.sa_mask);
  SA.sa_flags = 0;
  sigaction(SIGINT, &SA, nullptr);
  sigaction(SIGTERM, &SA, nullptr);
}

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  xsolved [--tcp PORT] [--unix PATH] [--jobs N] [--queue-limit N]\n"
      "          [--cache-file F] [--stable] [--optimize]\n"
      "          [--share-fixpoints] [--fixpoint-strategy S]\n"
      "          [--bdd-backend B] [--bdd-threads N] [--port-file F]\n"
      "  xsolved client (--tcp HOST:PORT | --unix PATH) [file|-]\n"
      "server flags:\n"
      "  --tcp PORT      listen on 127.0.0.1:PORT (0 = ephemeral port)\n"
      "  --unix PATH     listen on a unix-domain socket at PATH\n"
      "  --jobs N        worker threads of the shared session (0 = cores)\n"
      "  --queue-limit N admission-control bound on queued requests\n"
      "  --cache-file F  load F at start if present; persist on drain\n"
      "  --stable        default connections to the deterministic\n"
      "                  response encoding (clients can override with\n"
      "                  {\"op\":\"config\",\"stable\":...})\n"
      "  --bdd-backend B default symbolic-set backend: serial or parallel\n"
      "                  (per-namespace override: {\"op\":\"config\",\n"
      "                  \"bdd_backend\":...}); output is byte-identical\n"
      "                  across backends\n"
      "  --bdd-threads N worker threads inside one BDD operation\n"
      "                  (parallel backend only; 0 = all cores)\n"
      "  --port-file F   write the bound TCP port to F (for scripts\n"
      "                  using --tcp 0)\n"
      "  --log-file F    append the structured JSON-lines event log to F\n"
      "                  (default: stderr)\n"
      "  --log-level L   minimum level: debug, info, warn, error\n"
      "                  (default: info)\n"
      "  --slow-ms MS    slow-query capture threshold in milliseconds\n"
      "                  (0 captures every request; default 250)\n"
      "  --slowlog-capacity N  slowlog ring size (default 128)\n"
      "protocol: xsolve-batch JSON-lines, plus per-request \"priority\"\n"
      "and \"deadline_ms\", config keys \"ns\"/\"stable\", and the ops\n"
      "metrics, stats, status, slowlog, log, ping, drain. HTTP GETs on\n"
      "either socket answer /metrics (Prometheus text), /healthz,\n"
      "/statusz, /slowlog and /logz with keep-alive.\n");
  return 2;
}

int runClient(int argc, char **argv) {
  std::string TcpHost;
  int TcpPort = -1;
  std::string UnixPath;
  std::string Path = "-";
  for (int I = 2; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--tcp" && I + 1 < argc) {
      std::string HostPort = argv[++I];
      size_t Colon = HostPort.rfind(':');
      if (Colon == std::string::npos) {
        TcpHost = "127.0.0.1";
        TcpPort = std::atoi(HostPort.c_str());
      } else {
        TcpHost = HostPort.substr(0, Colon);
        TcpPort = std::atoi(HostPort.c_str() + Colon + 1);
      }
    } else if (Arg == "--unix" && I + 1 < argc) {
      UnixPath = argv[++I];
    } else if (!Arg.empty() && Arg[0] == '-' && Arg != "-") {
      std::fprintf(stderr, "error: unknown client flag %s\n", Arg.c_str());
      return usage();
    } else {
      Path = Arg;
    }
  }
  if (TcpPort < 0 && UnixPath.empty())
    return usage();

  LineClient Client;
  std::string Error;
  bool Connected = UnixPath.empty() ? Client.connectTcp(TcpHost, TcpPort, Error)
                                    : Client.connectUnix(UnixPath, Error);
  if (!Connected) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }

  std::ifstream FileIn;
  std::istream *In = &std::cin;
  if (Path != "-") {
    FileIn.open(Path);
    if (!FileIn) {
      std::fprintf(stderr, "error: cannot read %s\n", Path.c_str());
      return 1;
    }
    In = &FileIn;
  }

  // Pipelined with a bounded window, interleaving reads with writes.
  // Sending a whole large file before reading anything would let both
  // peers' socket buffers fill against each other (the server bounds
  // its outbound buffer and drops connections that overflow it), and
  // an unbounded flood of admissions would mostly collect "overloaded"
  // rejections — so after each send, drain whatever responses are
  // already readable, and block for one once more than MaxInFlight
  // requests are outstanding (half the server's default --queue-limit,
  // leaving room for other tenants). Responses arrive in request
  // order, so output order is unchanged.
  const size_t MaxInFlight = 128;
  size_t Sent = 0, Received = 0, Failed = 0;
  bool Closed = false;
  auto Consume = [&](const std::string &Resp) {
    std::printf("%s\n", Resp.c_str());
    if (Resp.find("\"ok\":false") != std::string::npos)
      ++Failed;
    ++Received;
  };
  std::string Line, Resp;
  while (!Closed && std::getline(*In, Line)) {
    size_t First = Line.find_first_not_of(" \t\r");
    if (First == std::string::npos || Line[First] == '#')
      continue; // the server assigns no response to blank/comment lines
    if (!Client.sendLine(Line)) {
      std::fprintf(stderr, "error: send failed\n");
      return 1;
    }
    ++Sent;
    while (!Closed && Client.pollLine(Resp, Closed))
      Consume(Resp);
    while (!Closed && Sent - Received > MaxInFlight) {
      if (!Client.recvLine(Resp)) {
        Closed = true;
        break;
      }
      Consume(Resp);
    }
  }
  while (!Closed && Received < Sent) {
    if (!Client.recvLine(Resp))
      break;
    Consume(Resp);
  }
  if (Received < Sent) {
    std::fprintf(stderr, "error: server closed after %zu/%zu responses\n",
                 Received, Sent);
    return 1;
  }
  return Failed == 0 ? 0 : 1;
}

} // namespace

int main(int argc, char **argv) {
  if (argc >= 2 && std::string(argv[1]) == "client")
    return runClient(argc, argv);

  ServerOptions Opts;
  std::string PortFile;
  std::string LogFile;
  LogLevel MinLevel = LogLevel::Info;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--tcp" && I + 1 < argc) {
      Opts.TcpPort = std::atoi(argv[++I]);
    } else if (Arg == "--unix" && I + 1 < argc) {
      Opts.UnixPath = argv[++I];
    } else if (Arg == "--jobs" && I + 1 < argc) {
      char *End = nullptr;
      long N = std::strtol(argv[++I], &End, 10);
      if (N < 0 || End == argv[I] || *End != '\0') {
        std::fprintf(stderr, "error: --jobs needs a non-negative integer\n");
        return usage();
      }
      Opts.Session.Jobs = static_cast<size_t>(N);
    } else if (Arg == "--queue-limit" && I + 1 < argc) {
      char *End = nullptr;
      long N = std::strtol(argv[++I], &End, 10);
      if (N < 1 || End == argv[I] || *End != '\0') {
        // 0 would make admit() reject every request as "overloaded" —
        // a silently useless server — so demand a positive bound.
        std::fprintf(stderr, "error: --queue-limit needs a positive integer\n");
        return usage();
      }
      Opts.QueueLimit = static_cast<size_t>(N);
    } else if (Arg == "--cache-file" && I + 1 < argc) {
      Opts.CacheFile = argv[++I];
    } else if (Arg == "--stable") {
      Opts.DefaultStable = true;
    } else if (Arg == "--optimize") {
      Opts.Session.Optimize = true;
    } else if (Arg == "--share-fixpoints") {
      Opts.Session.ShareFixpoints = true;
    } else if (Arg == "--fixpoint-strategy" && I + 1 < argc) {
      FixpointStrategy S;
      if (!parseFixpointStrategy(argv[++I], S)) {
        std::fprintf(stderr,
                     "error: --fixpoint-strategy needs one of bfs, chaining, "
                     "saturation, auto (got %s)\n",
                     argv[I]);
        return usage();
      }
      Opts.Session.Solver.Strategy = S;
    } else if (Arg == "--bdd-backend" && I + 1 < argc) {
      BddBackendKind K;
      if (!parseBddBackend(argv[++I], K)) {
        std::fprintf(stderr,
                     "error: --bdd-backend needs serial or parallel "
                     "(got %s)\n",
                     argv[I]);
        return usage();
      }
      Opts.Session.Solver.Backend = K;
    } else if (Arg == "--bdd-threads" && I + 1 < argc) {
      char *End = nullptr;
      long N = std::strtol(argv[++I], &End, 10);
      if (N < 0 || End == argv[I] || *End != '\0') {
        std::fprintf(stderr,
                     "error: --bdd-threads needs a non-negative integer\n");
        return usage();
      }
      Opts.Session.Solver.BddThreads = static_cast<unsigned>(N);
    } else if (Arg == "--port-file" && I + 1 < argc) {
      PortFile = argv[++I];
    } else if (Arg == "--log-file" && I + 1 < argc) {
      LogFile = argv[++I];
    } else if (Arg == "--log-level" && I + 1 < argc) {
      if (!parseLogLevel(argv[++I], MinLevel)) {
        std::fprintf(stderr,
                     "error: --log-level needs one of debug, info, warn, "
                     "error (got %s)\n",
                     argv[I]);
        return usage();
      }
    } else if (Arg == "--slow-ms" && I + 1 < argc) {
      char *End = nullptr;
      double Ms = std::strtod(argv[++I], &End);
      if (Ms < 0 || End == argv[I] || *End != '\0') {
        std::fprintf(stderr, "error: --slow-ms needs a non-negative number\n");
        return usage();
      }
      Opts.SlowThresholdMs = Ms;
    } else if (Arg == "--slowlog-capacity" && I + 1 < argc) {
      char *End = nullptr;
      long N = std::strtol(argv[++I], &End, 10);
      if (N < 1 || End == argv[I] || *End != '\0') {
        std::fprintf(stderr,
                     "error: --slowlog-capacity needs a positive integer\n");
        return usage();
      }
      Opts.SlowlogCapacity = static_cast<size_t>(N);
    } else {
      std::fprintf(stderr, "error: unknown flag %s\n", Arg.c_str());
      return usage();
    }
  }
  if (Opts.TcpPort < 0 && Opts.UnixPath.empty())
    return usage();

  // Structured event log: every lifecycle/admission/slow-query message
  // of the daemon is one JSON line here (obs/Log.h), replacing ad-hoc
  // prints. The FILE* outlives the server (threads log during drain),
  // so it is deliberately never closed — process exit flushes it.
  EventLog::Options LogOpts;
  LogOpts.MinLevel = MinLevel;
  if (!LogFile.empty()) {
    std::FILE *F = std::fopen(LogFile.c_str(), "a");
    if (!F) {
      std::fprintf(stderr, "error: cannot open --log-file %s\n",
                   LogFile.c_str());
      return 1;
    }
    LogOpts.Sink = F;
  }
  EventLog::global().configure(LogOpts);

  installStopHandler();
  XsolvedServer Server(Opts);
  std::string Error;
  if (!Server.start(Error)) {
    LogEvent(LogLevel::Error, "server.start_failed").str("error", Error);
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  if (Opts.TcpPort >= 0)
    LogEvent(LogLevel::Info, "server.listening")
        .str("host", Opts.Host)
        .num("port", Server.tcpPort());
  if (!Opts.UnixPath.empty())
    LogEvent(LogLevel::Info, "server.listening").str("unix", Opts.UnixPath);
  if (!PortFile.empty()) {
    std::ofstream PF(PortFile);
    PF << Server.tcpPort() << "\n";
  }

  // Park until SIGTERM/SIGINT or a client {"op":"drain"} stops the
  // server. The signal handler only flips a flag; drain and teardown
  // run here, on a normal thread.
  while (!GStopRequested.load() && !Server.draining()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  Server.drainAndWait();
  return 0;
}
