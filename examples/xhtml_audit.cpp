//===- xhtml_audit.cpp - Static analysis against XHTML 1.0 Strict ----------===//
//
// The paper's two large experiments (§8, Table 2 rows 5-6):
//
//   * e8 = descendant::a[ancestor::a] is satisfiable under the XHTML 1.0
//     Strict DTD: the DTD does not *syntactically* prohibit nested
//     anchors (only direct a-in-a nesting is excluded; a <span> in
//     between defeats it) — the solver produces the offending document;
//   * a coverage audit in the spirit of e9 ⊆ e10 ∪ e11 ∪ e12: every
//     element of a document is in the head, in the body, or is one of
//     html/head/body themselves.
//
//===----------------------------------------------------------------------===//

#include "analysis/Problems.h"
#include "tree/Xml.h"
#include "xpath/Compile.h"
#include "xpath/Parser.h"
#include "xtype/BuiltinDtds.h"
#include "xtype/Compile.h"
#include "xtype/Validate.h"

#include <cstdio>
#include <iostream>

using namespace xsa;

static ExprRef xp(const char *Src) {
  std::string Error;
  ExprRef E = parseXPath(Src, Error);
  if (!E) {
    std::fprintf(stderr, "parse error: %s\n", Error.c_str());
    std::exit(1);
  }
  return E;
}

int main() {
  FormulaFactory FF;
  Analyzer An(FF);
  // Anchor the type at the document root (§5.2's root restriction) so
  // the witnesses are complete XHTML documents.
  Formula Xhtml =
      FF.conj(compileDtd(FF, xhtml10StrictDtd()), rootFormula(FF));

  // Row 5: nested anchors.
  ExprRef E8 = xp("descendant::a[ancestor::a]");
  AnalysisResult R8 = An.emptiness(E8, Xhtml);
  std::printf("e8 = descendant::a[ancestor::a] under XHTML 1.0 Strict: %s "
              "(lean=%zu, %zu iterations, %.0f ms)\n",
              R8.Holds ? "empty (anchors cannot nest)"
                       : "SATISFIABLE (anchors can nest!)",
              R8.Stats.LeanSize, R8.Stats.Iterations, R8.Stats.TimeMs);
  if (R8.Tree) {
    std::printf("offending document:\n%s", printXml(*R8.Tree, R8.Target).c_str());
    std::string Why;
    std::printf("validates against the DTD: %s\n\n",
                validate(*R8.Tree, xhtml10StrictDtd(), &Why) ? "yes"
                                                             : Why.c_str());
  }

  // Row 6 (e9/e10/e11/e12): in the paper's root-element data model the
  // queries read /self::html/...; every descendant of the root is
  // either a child of html (head|body) or below head or below body.
  ExprRef E9 = xp("/descendant::*");
  std::vector<ExprRef> Cover = {
      xp("/self::html/(head | body)"),
      xp("/self::html/head/descendant::*"),
      xp("/self::html/body/descendant::*"),
  };
  AnalysisResult R9 =
      An.coverage(E9, Xhtml, Cover, {Xhtml, Xhtml, Xhtml});
  std::printf("e9 ⊆ e10 ∪ e11 ∪ e12 under XHTML 1.0 Strict: %s "
              "(lean=%zu, %zu iterations, %.0f ms)\n",
              R9.Holds ? "covered" : "NOT covered", R9.Stats.LeanSize,
              R9.Stats.Iterations, R9.Stats.TimeMs);
  if (!R9.Holds && R9.Tree)
    std::printf("counterexample:\n%s", printXml(*R9.Tree, R9.Target).c_str());
  return 0;
}
