//===- wikipedia_typing.cpp - Type-aware analysis on the Wikipedia DTD -----===//
//
// Reproduces the paper's running type example (Figures 12-14): parses the
// Wikipedia DTD fragment, shows its binary tree-type encoding and its Lµ
// translation, then runs type-aware static analyses:
//
//   * dead-query detection (emptiness under the DTD),
//   * containment that holds only thanks to the type,
//   * static type checking of an annotated query.
//
//===----------------------------------------------------------------------===//

#include "analysis/Problems.h"
#include "tree/Xml.h"
#include "xpath/Compile.h"
#include "xpath/Parser.h"
#include "xtype/BuiltinDtds.h"
#include "xtype/Compile.h"

#include <cstdio>
#include <iostream>

using namespace xsa;

static ExprRef xp(const char *Src) {
  std::string Error;
  ExprRef E = parseXPath(Src, Error);
  if (!E) {
    std::fprintf(stderr, "parse error: %s\n", Error.c_str());
    std::exit(1);
  }
  return E;
}

int main() {
  const Dtd &Wiki = wikipediaDtd();

  // Figure 13: the binary tree-type grammar of the DTD.
  BinaryTypeGrammar G = binarize(Wiki);
  std::printf("=== Binary encoding of the Wikipedia DTD (Fig. 13) ===\n%s",
              G.toString().c_str());
  std::printf("%zu type variables, %zu terminals\n\n", G.numVars(),
              G.terminals().size());

  // Figure 14: its Lµ formula.
  FormulaFactory FF;
  Formula T = compileType(FF, G);
  std::printf("=== Lµ translation (Fig. 14), %u AST nodes ===\n%s\n\n",
              T->size(), FF.toString(T).c_str());

  Analyzer An(FF);

  // Dead queries: title never occurs directly under the root article.
  AnalysisResult Dead = An.emptiness(xp("/self::article/title"), T);
  std::printf("/self::article/title is %s under the DTD (%.1f ms)\n",
              Dead.Holds ? "always empty" : "satisfiable", Dead.Stats.TimeMs);
  AnalysisResult Live = An.emptiness(xp("/self::article/meta/title"), T);
  std::printf("/self::article/meta/title is %s under the DTD (%.1f ms)\n",
              Live.Holds ? "always empty" : "satisfiable", Live.Stats.TimeMs);
  if (Live.Tree)
    std::printf("a witness document:\n%s\n",
                printXml(*Live.Tree, Live.Target).c_str());

  // Type-driven containment: every edit's text is below a history
  // element — true only because of the DTD.
  ExprRef EditText = xp("//edit/text");
  ExprRef HistoryText = xp("//history//text");
  AnalysisResult Untyped =
      An.containment(EditText, FF.trueF(), HistoryText, FF.trueF());
  AnalysisResult Typed = An.containment(EditText, T, HistoryText, T);
  std::printf("//edit/text ⊆ //history//text untyped: %s, under DTD: %s "
              "(%.1f ms)\n",
              Untyped.Holds ? "yes" : "NO", Typed.Holds ? "yes" : "NO",
              Typed.Stats.TimeMs);

  // Static type checking: nodes selected by //history are exactly of a
  // local "history" type; check against a hand-written output type.
  Dtd HistoryType;
  std::string Error;
  const char *OutSrc = R"(
    <!ELEMENT history (edit)+>
    <!ELEMENT edit (status?, interwiki*, (text | redirect)?)>
    <!ELEMENT status (#PCDATA)>
    <!ELEMENT interwiki (#PCDATA)>
    <!ELEMENT text (#PCDATA)>
    <!ELEMENT redirect EMPTY>
  )";
  if (!parseDtd(OutSrc, HistoryType, Error)) {
    std::fprintf(stderr, "dtd error: %s\n", Error.c_str());
    return 1;
  }
  HistoryType.setRoot("history");
  Formula Out = compileDtd(FF, HistoryType);
  AnalysisResult Check = An.staticTypeCheck(xp("//history"), T, Out);
  std::printf("//history : history-type under the DTD: %s (%.1f ms)\n",
              Check.Holds ? "well-typed" : "ILL-TYPED", Check.Stats.TimeMs);
  return 0;
}
