//===- query_optimizer.cpp - Logic-based XPath rewriting -------------------===//
//
// §1 of the paper motivates the equivalence problem with query
// reformulation: a rewriter may replace an expression by an operationally
// cheaper one only if the two are semantically equivalent — possibly just
// under the document type in force. This example implements a small
// rule-based rewriter whose every step is *proved* by the solver:
//
//   * descendant-axis introduction: a/desc-or-self::*/b  ⇒  a//b (no-op
//     here, but each candidate is verified, never assumed);
//   * qualifier pruning under a DTD: drop a[q] filters that the type
//     makes vacuous (q holds for every a the DTD admits);
//   * dead-branch elimination: drop union arms that are empty under the
//     DTD;
//   * reverse-axis elimination: replace a query using reverse axes by a
//     candidate forward-only one, accepting only on proved equivalence
//     (the paper notes such rewritings exist but blow up syntactically
//     in general [40] — here the solver simply certifies candidates).
//
//===----------------------------------------------------------------------===//

#include "analysis/Problems.h"
#include "xpath/Compile.h"
#include "xpath/Parser.h"
#include "xtype/BuiltinDtds.h"
#include "xtype/Compile.h"

#include <cstdio>

using namespace xsa;

namespace {

ExprRef xp(const char *Src) {
  std::string Error;
  ExprRef E = parseXPath(Src, Error);
  if (!E) {
    std::fprintf(stderr, "parse error: %s\n", Error.c_str());
    std::exit(1);
  }
  return E;
}

/// Verifies a rewrite candidate and reports.
void tryRewrite(Analyzer &An, const char *What, ExprRef From, ExprRef To,
                Formula Chi) {
  AnalysisResult R = An.equivalence(From, Chi, To, Chi);
  std::printf("%-44s %s ≡ %s : %s (%.1f ms)\n", What, toString(From).c_str(),
              toString(To).c_str(), R.Holds ? "PROVED" : "refuted",
              R.Stats.TimeMs);
}

} // namespace

int main() {
  FormulaFactory FF;
  Analyzer An(FF);
  Formula True = FF.trueF();
  Formula Wiki = compileDtd(FF, wikipediaDtd());

  std::printf("=== Solver-certified query rewriting ===\n\n");

  // 1. Axis algebra (type-free): candidates a rewriter would try.
  tryRewrite(An, "iterated child = descendant", xp("(*)+"),
             xp("descendant::*"), True);
  tryRewrite(An, "descendant of child vs //", xp("*/desc-or-self::*"),
             xp("descendant::*"), True);
  tryRewrite(An, "sibling idempotence", xp("(foll-sibling::*)+"),
             xp("foll-sibling::*"), True);
  tryRewrite(An, "unsound candidate is refuted", xp("descendant::a"),
             xp("(a)+"), True);

  // 2. Qualifier pruning under the DTD: every meta has a title child,
  //    so the filter [title] is vacuous — but only under the type.
  std::printf("\n-- qualifier pruning under the Wikipedia DTD --\n");
  tryRewrite(An, "prune [title] (typed)", xp("//meta[title]"), xp("//meta"),
             Wiki);
  tryRewrite(An, "prune [title] (untyped: refuted)", xp("//meta[title]"),
             xp("//meta"), True);
  // history[edit] is vacuous too ((edit)+ guarantees one)...
  tryRewrite(An, "prune [edit] (typed)", xp("//history[edit]"),
             xp("//history"), Wiki);
  // ...but [status] is a real filter on edit.
  tryRewrite(An, "keep [status] (typed, refuted)", xp("//edit[status]"),
             xp("//edit"), Wiki);

  // 3. Dead-branch elimination: article/title is empty under the DTD,
  //    so a union arm can be dropped.
  std::printf("\n-- dead union arms under the DTD --\n");
  AnalysisResult Dead = An.emptiness(xp("/self::article/title"), Wiki);
  std::printf("arm /self::article/title is %s (%.1f ms)\n",
              Dead.Holds ? "dead" : "live", Dead.Stats.TimeMs);
  tryRewrite(An, "drop the dead arm",
             xp("/self::article/title | /self::article/meta/title"),
             xp("/self::article/meta/title"), Wiki);

  // 4. Reverse-axis elimination, certified per candidate.
  std::printf("\n-- reverse-axis elimination --\n");
  tryRewrite(An, "parent-of-child roundtrip",
             xp("a/b/parent::a"), xp("a[b]"), True);
  tryRewrite(An, "preceding-sibling via document order",
             xp("c/prec-sibling::a"), xp("a[foll-sibling::c]"), True);
  // The classic trap: [ancestor::a] also sees ancestors *above* the
  // evaluation context, which no downward rewriting can reach — the
  // solver refutes the candidate instead of letting the rewriter
  // miscompile (cf. [40] on the cost of reverse-axis elimination).
  tryRewrite(An, "ancestor test as downward walk (unsound)",
             xp("descendant::b[ancestor::a]"),
             xp("descendant::a/descendant::b | a/descendant::b"), True);
  return 0;
}
