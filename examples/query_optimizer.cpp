//===- query_optimizer.cpp - Logic-based XPath rewriting -------------------===//
//
// §1 of the paper motivates the equivalence problem with query
// reformulation: a rewriter may replace an expression by an operationally
// cheaper one only if the two are semantically equivalent — possibly just
// under the document type in force. This example drives the real
// subsystem that grew out of that sketch, src/rewrite/: a rule registry
// (axis fusion, self-step elimination, iteration collapse, qualifier
// pruning, dead-branch elimination, reverse-axis elimination), a cost
// model ranking candidates, and a driver that accepts a candidate only
// once Analyzer::equivalence (or arm emptiness) certifies it under the
// DTD. Every proof obligation — accepted or refuted — lands in the
// response's trace, printed below; the refuted ones are the point: an
// unsound candidate costs a proof, never a wrong answer.
//
// Queries run through the service's "optimize" op (the same path behind
// `xsolve optimize` and the batch {"op":"optimize"} request), so proof
// obligations share the session's semantic result cache and repeated
// queries are memoized.
//
//===----------------------------------------------------------------------===//

#include "service/Batch.h"
#include "service/Session.h"

#include <cstdio>

using namespace xsa;

namespace {

void show(AnalysisSession &Session, const char *Query, const char *Dtd,
          const char *Why) {
  AnalysisRequest Req;
  Req.Kind = RequestKind::Optimize;
  Req.Query1 = Query;
  Req.Dtd1 = Dtd;
  AnalysisResponse R = runRequest(Session, Req);
  if (!R.Ok) {
    std::fprintf(stderr, "error: %s\n", R.Error.c_str());
    std::exit(1);
  }

  std::printf("-- %s%s%s --\n", Why, *Dtd ? ", DTD: " : "", Dtd);
  std::printf("   original:  %-46s (cost %.2f)\n", Query, R.CostBefore);
  std::printf("   optimized: %-46s (cost %.2f)\n", R.Optimized.c_str(),
              R.CostAfter);
  for (const RewriteStep &S : R.Trace)
    std::printf("   [%s] %-16s %s  =>  %s\n"
                "             %s (%s%s, %.1f ms)\n",
                S.Accepted ? "PROVED " : "refuted", S.Rule.c_str(),
                S.From.c_str(), S.To.c_str(), S.Note.c_str(), S.Check,
                S.FromCache ? ", cached" : "", S.TimeMs);
  std::printf("\n");
}

} // namespace

int main() {
  AnalysisSession Session;

  std::printf("=== Solver-certified query rewriting (src/rewrite/) ===\n\n");

  // Axis algebra, no type needed: fusion and iteration collapse hold on
  // every tree; speculative candidates ((a)+ as descendant::a) are
  // proposed anyway and refuted by the solver.
  show(Session, "a/desc-or-self::*/b", "", "axis fusion");
  show(Session, "(child::*)+", "", "iterated child is descendant");
  show(Session, "(a)+", "", "unsound iteration collapse is refuted");

  // Under the Wikipedia DTD: every meta has a title child, so [title]
  // is vacuous — the filter is pruned and the steps fuse. [status] on
  // edit is a real filter; its drop candidate is refuted.
  show(Session, "//meta[title]", "wikipedia", "qualifier pruning");
  show(Session, "//edit[status]", "wikipedia", "a real filter survives");

  // Dead union arm: article's children are meta then text|redirect, so
  // the /self::article/title arm is empty under the DTD — certified by
  // arm emptiness and dropped.
  show(Session, "/self::article/title | /self::article/meta/title",
       "wikipedia", "dead-branch elimination");

  // Reverse-axis elimination: parent-of-child becomes a forward filter;
  // the ancestor variant — the classic unsound shortcut (cf. the
  // syntactic blowup of reverse-axis removal, [40] in the paper) — is
  // refuted instead of miscompiling.
  show(Session, "a/b/parent::a", "", "reverse-axis elimination");
  show(Session, "a/b/ancestor::a", "", "unsound ancestor shortcut refuted");

  SessionStats S = Session.stats();
  std::printf("session: %zu queries optimized, %zu proof obligations, "
              "%zu rewrites accepted, result cache %zu hits / %zu misses\n",
              S.QueriesOptimized, S.RewriteChecks, S.RewritesAccepted,
              S.Cache.Hits, S.Cache.Misses);
  return 0;
}
