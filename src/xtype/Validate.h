//===- Validate.h - DTD validation of documents ------------------*- C++ -*-===//
//
// Part of the xsa project (PLDI 2007 XPath/type analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Direct membership test of a Document in the tree language of a DTD.
/// Serves both as a library feature and as the semantic ground truth for
/// the type-to-Lµ translation of §5.2 (a document is valid iff the
/// compiled type formula holds at its root).
///
//===----------------------------------------------------------------------===//

#ifndef XSA_XTYPE_VALIDATE_H
#define XSA_XTYPE_VALIDATE_H

#include "tree/Document.h"
#include "xtype/Dtd.h"

#include <string>

namespace xsa {

/// Checks that \p Doc has a single root labeled Dtd::root() (unless
/// \p CheckRoot is false) and that every element's child sequence matches
/// its declared content model. On failure returns false and, if \p Why is
/// non-null, stores an explanation.
bool validate(const Document &Doc, const Dtd &D, std::string *Why = nullptr,
              bool CheckRoot = true);

} // namespace xsa

#endif // XSA_XTYPE_VALIDATE_H
