//===- Binarize.h - Unranked DTD to binary tree types (Fig. 13) --*- C++ -*-===//
//
// Part of the xsa project (PLDI 2007 XPath/type analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binary regular tree type expressions (§5.2):
///
///   T ::= ∅ | ε | T₁ ∪ T₂ | σ(X₁, X₂) | let X̄.T̄ in T
///
/// and the standard isomorphism from unranked regular tree grammars
/// (DTDs) to binary ones: X₁ describes the first child's list, X₂ the
/// list of following siblings (first-child / next-sibling encoding).
/// Variables are the states of each content model's Glushkov automaton;
/// a hedge-automaton-style minimization merges equivalent variables,
/// producing grammars of the size reported in the paper (Fig. 13: the
/// Wikipedia DTD yields 9 type variables over 9 terminals).
///
//===----------------------------------------------------------------------===//

#ifndef XSA_XTYPE_BINARIZE_H
#define XSA_XTYPE_BINARIZE_H

#include "xtype/Dtd.h"

#include <string>
#include <vector>

namespace xsa {

/// A binary regular tree type grammar over variables $1..$n.
struct BinaryTypeGrammar {
  /// Reference to $Epsilon (the empty-list type).
  static constexpr int EpsilonVar = -1;

  /// One alternative σ(X1, X2) of a variable's union.
  struct Alt {
    Symbol Label;
    int X1; ///< first-child list variable, or EpsilonVar
    int X2; ///< next-sibling list variable, or EpsilonVar
    bool operator==(const Alt &O) const {
      return Label == O.Label && X1 == O.X1 && X2 == O.X2;
    }
  };

  struct Var {
    std::string Name;
    bool Nullable = false; ///< the union includes ε
    std::vector<Alt> Alts;
  };

  std::vector<Var> Vars;
  int Start = EpsilonVar;

  /// Number of type variables (Table 1's "Binary Type Variables").
  size_t numVars() const { return Vars.size(); }

  /// Terminals (labels) used.
  std::vector<Symbol> terminals() const;

  /// Pretty-prints in the style of Figure 13.
  std::string toString() const;
};

/// Binarizes \p D rooted at Dtd::root(). When \p Minimize is set (the
/// default), equivalent variables are merged by partition refinement.
BinaryTypeGrammar binarize(const Dtd &D, bool Minimize = true);

/// Post-processing shared by the DTD and tree-grammar binarizers:
/// replaces empty nullable variables by $Epsilon and, when \p Minimize
/// is set, merges equivalent variables (partition refinement) and folds
/// the +-loop ε-alternatives into the Fig. 13 shape.
void optimizeBinaryGrammar(BinaryTypeGrammar &G, bool Minimize);

} // namespace xsa

#endif // XSA_XTYPE_BINARIZE_H
