//===- ContentModel.h - DTD content models -----------------------*- C++ -*-===//
//
// Part of the xsa project (PLDI 2007 XPath/type analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regular expressions over element names, as found in DTD content models.
/// `EMPTY` and `#PCDATA` both denote the empty element sequence (the
/// paper's logic abstracts text away, §5.2 / Fig. 13, where title's
/// #PCDATA content becomes the $Epsilon first child).
///
/// The Glushkov (position) automaton built here serves both the validator
/// (§ membership of a document in a type) and the binarization that turns
/// unranked DTDs into binary regular tree types (Fig. 13).
///
//===----------------------------------------------------------------------===//

#ifndef XSA_XTYPE_CONTENTMODEL_H
#define XSA_XTYPE_CONTENTMODEL_H

#include "support/StringInterner.h"

#include <memory>
#include <vector>

namespace xsa {

struct ContentModel;
using ContentRef = std::shared_ptr<const ContentModel>;

/// A regular expression over element symbols.
struct ContentModel {
  enum Kind : uint8_t {
    Eps,    ///< empty sequence (EMPTY, #PCDATA)
    Sym,    ///< an element name
    Seq,    ///< A, B
    Choice, ///< A | B
    Star,   ///< A*
    Plus,   ///< A+
    Opt,    ///< A?
  } K;
  Symbol S = 0;      // Sym
  ContentRef A, B;   // operands

  static ContentRef eps();
  static ContentRef sym(Symbol S);
  static ContentRef sym(std::string_view Name) {
    return sym(internSymbol(Name));
  }
  static ContentRef seq(ContentRef A, ContentRef B);
  static ContentRef choice(ContentRef A, ContentRef B);
  static ContentRef star(ContentRef A);
  static ContentRef plus(ContentRef A);
  static ContentRef opt(ContentRef A);
};

/// Can the expression match the empty sequence?
bool nullable(const ContentRef &C);

/// The symbols occurring in the expression.
std::vector<Symbol> contentSymbols(const ContentRef &C);

/// Glushkov position automaton: state 0 is initial; states 1..n correspond
/// to the symbol positions of the expression.
struct Glushkov {
  std::vector<Symbol> PosSym;            ///< PosSym[p-1] = symbol of position p
  std::vector<int> First;                ///< transitions from state 0
  std::vector<std::vector<int>> Follow;  ///< Follow[p-1] = positions after p
  std::vector<bool> Last;                ///< Last[p-1] = p accepting
  bool NullableRoot = false;             ///< state 0 accepting

  size_t numStates() const { return PosSym.size() + 1; }
  bool accepting(int State) const {
    return State == 0 ? NullableRoot : Last[State - 1];
  }
  /// Transitions out of \p State (positions reachable in one step).
  const std::vector<int> &transitions(int State) const {
    return State == 0 ? First : Follow[State - 1];
  }
  Symbol symbolOf(int Position) const { return PosSym[Position - 1]; }
};

/// Builds the Glushkov automaton of \p C.
Glushkov buildGlushkov(const ContentRef &C);

/// Does the word \p Symbols match the expression (via its automaton)?
bool glushkovMatches(const Glushkov &G, const std::vector<Symbol> &Symbols);

/// Prints in DTD syntax, e.g. "(meta, (text | redirect))".
std::string toString(const ContentRef &C);

} // namespace xsa

#endif // XSA_XTYPE_CONTENTMODEL_H
