//===- Binarize.cpp - Unranked DTD to binary tree types (Fig. 13) ----------===//

#include "xtype/Binarize.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <sstream>
#include <unordered_map>

using namespace xsa;

std::vector<Symbol> BinaryTypeGrammar::terminals() const {
  std::map<Symbol, bool> Seen;
  for (const Var &V : Vars)
    for (const Alt &A : V.Alts)
      Seen.emplace(A.Label, true);
  std::vector<Symbol> R;
  for (auto &[S, _] : Seen)
    R.push_back(S);
  return R;
}

std::string BinaryTypeGrammar::toString() const {
  std::ostringstream OS;
  for (size_t I = 0; I < Vars.size(); ++I) {
    const Var &V = Vars[I];
    OS << "$" << V.Name << " ->";
    bool First = true;
    if (V.Nullable) {
      OS << " EPSILON";
      First = false;
    }
    for (const Alt &A : V.Alts) {
      OS << (First ? " " : "\n    | ") << symbolName(A.Label) << "(";
      OS << (A.X1 == EpsilonVar ? std::string("$Epsilon")
                                : "$" + Vars[A.X1].Name);
      OS << ", ";
      OS << (A.X2 == EpsilonVar ? std::string("$Epsilon")
                                : "$" + Vars[A.X2].Name);
      OS << ")";
      First = false;
    }
    OS << "\n";
  }
  OS << "Start Symbol is $"
     << (Start == EpsilonVar ? std::string("Epsilon") : Vars[Start].Name)
     << "\n";
  return OS.str();
}

namespace {

/// Merges variables with identical (nullable, alternatives) signatures,
/// iterating to a fixpoint — Hopcroft-style partition refinement on the
/// grammar viewed as a deterministic structure over alt multisets.
void minimizeGrammar(BinaryTypeGrammar &G) {
  size_t N = G.Vars.size();
  if (N == 0)
    return;
  // Initial classes: by nullability.
  std::vector<int> Class(N);
  for (size_t I = 0; I < N; ++I)
    Class[I] = G.Vars[I].Nullable ? 1 : 0;
  for (;;) {
    // Signature of a variable under the current partition.
    std::map<std::pair<int, std::vector<std::tuple<Symbol, int, int>>>, int>
        Sig2Class;
    std::vector<int> NewClass(N);
    for (size_t I = 0; I < N; ++I) {
      std::vector<std::tuple<Symbol, int, int>> Alts;
      for (const BinaryTypeGrammar::Alt &A : G.Vars[I].Alts)
        Alts.emplace_back(A.Label,
                          A.X1 == BinaryTypeGrammar::EpsilonVar
                              ? -1
                              : Class[A.X1],
                          A.X2 == BinaryTypeGrammar::EpsilonVar
                              ? -1
                              : Class[A.X2]);
      std::sort(Alts.begin(), Alts.end());
      Alts.erase(std::unique(Alts.begin(), Alts.end()), Alts.end());
      auto Key = std::make_pair(Class[I], Alts);
      auto It = Sig2Class.find(Key);
      if (It == Sig2Class.end())
        It = Sig2Class.emplace(Key, static_cast<int>(Sig2Class.size())).first;
      NewClass[I] = It->second;
    }
    if (NewClass == Class)
      break;
    Class = std::move(NewClass);
  }
  // Rebuild one variable per class, keeping the first representative.
  int NumClasses = 0;
  for (int C : Class)
    NumClasses = std::max(NumClasses, C + 1);
  std::vector<int> Representative(NumClasses, -1);
  for (size_t I = 0; I < N; ++I)
    if (Representative[Class[I]] < 0)
      Representative[Class[I]] = static_cast<int>(I);
  std::vector<BinaryTypeGrammar::Var> NewVars(NumClasses);
  for (int C = 0; C < NumClasses; ++C) {
    const BinaryTypeGrammar::Var &Old = G.Vars[Representative[C]];
    BinaryTypeGrammar::Var V;
    V.Name = std::to_string(C + 1);
    V.Nullable = Old.Nullable;
    for (const BinaryTypeGrammar::Alt &A : Old.Alts) {
      BinaryTypeGrammar::Alt NA = A;
      if (NA.X1 != BinaryTypeGrammar::EpsilonVar)
        NA.X1 = Class[NA.X1];
      if (NA.X2 != BinaryTypeGrammar::EpsilonVar)
        NA.X2 = Class[NA.X2];
      bool Dup = false;
      for (const BinaryTypeGrammar::Alt &Existing : V.Alts)
        if (Existing == NA)
          Dup = true;
      if (!Dup)
        V.Alts.push_back(NA);
    }
    NewVars[C] = std::move(V);
  }
  G.Start = Class[G.Start];
  G.Vars = std::move(NewVars);
}

/// Replaces references to empty nullable variables (no alternatives,
/// matches only ε) by $Epsilon and drops those variables.
void elideEpsilonVars(BinaryTypeGrammar &G) {
  std::vector<int> Remap(G.Vars.size());
  std::vector<BinaryTypeGrammar::Var> Kept;
  for (size_t I = 0; I < G.Vars.size(); ++I) {
    if (G.Vars[I].Alts.empty() && G.Vars[I].Nullable) {
      Remap[I] = BinaryTypeGrammar::EpsilonVar;
    } else {
      Remap[I] = static_cast<int>(Kept.size());
      Kept.push_back(G.Vars[I]);
    }
  }
  for (BinaryTypeGrammar::Var &V : Kept)
    for (BinaryTypeGrammar::Alt &A : V.Alts) {
      if (A.X1 != BinaryTypeGrammar::EpsilonVar)
        A.X1 = Remap[A.X1];
      if (A.X2 != BinaryTypeGrammar::EpsilonVar)
        A.X2 = Remap[A.X2];
    }
  assert(G.Start != BinaryTypeGrammar::EpsilonVar);
  if (Remap[G.Start] == BinaryTypeGrammar::EpsilonVar) {
    // Degenerate: the root matches only ε; keep a start variable so the
    // grammar stays well-formed (no tree satisfies it -- caught upstream).
    G.Vars.clear();
    G.Start = BinaryTypeGrammar::EpsilonVar;
    return;
  }
  G.Start = Remap[G.Start];
  G.Vars = std::move(Kept);
  // Renumber names densely.
  for (size_t I = 0; I < G.Vars.size(); ++I)
    G.Vars[I].Name = std::to_string(I + 1);
}

/// Folds a nullable variable N into a non-nullable variable M that has
/// exactly the same alternatives (the pattern produced by + loops, whose
/// Glushkov start state and position state share transitions): every
/// reference σ(..N..) is expanded into the ε / M alternatives, and N is
/// dropped. This reproduces the shape of the paper's Figure 13, e.g.
/// $5 -> edit($6, $Epsilon) | edit($6, $5) for (edit)+.
bool foldNullableDuplicates(BinaryTypeGrammar &G) {
  for (size_t N = 0; N < G.Vars.size(); ++N) {
    if (!G.Vars[N].Nullable || static_cast<int>(N) == G.Start)
      continue;
    int M = -1;
    for (size_t C = 0; C < G.Vars.size(); ++C)
      if (C != N && !G.Vars[C].Nullable && G.Vars[C].Alts == G.Vars[N].Alts) {
        M = static_cast<int>(C);
        break;
      }
    if (M < 0)
      continue;
    // Rewrite every reference to N (in X1 and X2 positions) into the
    // two-way expansion {ε, M}.
    for (BinaryTypeGrammar::Var &V : G.Vars) {
      std::vector<BinaryTypeGrammar::Alt> NewAlts;
      for (const BinaryTypeGrammar::Alt &A : V.Alts) {
        std::vector<int> X1s{A.X1}, X2s{A.X2};
        if (A.X1 == static_cast<int>(N))
          X1s = {BinaryTypeGrammar::EpsilonVar, M};
        if (A.X2 == static_cast<int>(N))
          X2s = {BinaryTypeGrammar::EpsilonVar, M};
        for (int X1 : X1s)
          for (int X2 : X2s) {
            BinaryTypeGrammar::Alt NA{A.Label, X1, X2};
            bool Dup = false;
            for (const BinaryTypeGrammar::Alt &E : NewAlts)
              if (E == NA)
                Dup = true;
            if (!Dup)
              NewAlts.push_back(NA);
          }
      }
      V.Alts = std::move(NewAlts);
    }
    // Drop N.
    std::vector<int> Remap(G.Vars.size());
    std::vector<BinaryTypeGrammar::Var> Kept;
    for (size_t I = 0; I < G.Vars.size(); ++I) {
      if (I == N) {
        Remap[I] = BinaryTypeGrammar::EpsilonVar; // unreferenced now
        continue;
      }
      Remap[I] = static_cast<int>(Kept.size());
      Kept.push_back(G.Vars[I]);
    }
    for (BinaryTypeGrammar::Var &V : Kept)
      for (BinaryTypeGrammar::Alt &A : V.Alts) {
        if (A.X1 != BinaryTypeGrammar::EpsilonVar)
          A.X1 = Remap[A.X1];
        if (A.X2 != BinaryTypeGrammar::EpsilonVar)
          A.X2 = Remap[A.X2];
      }
    G.Start = Remap[G.Start];
    G.Vars = std::move(Kept);
    for (size_t I = 0; I < G.Vars.size(); ++I)
      G.Vars[I].Name = std::to_string(I + 1);
    return true;
  }
  return false;
}

} // namespace

BinaryTypeGrammar xsa::binarize(const Dtd &D, bool Minimize) {
  BinaryTypeGrammar G;
  // One Glushkov automaton per *distinct* content model (real DTDs —
  // XHTML in particular — repeat the same parameter-entity content over
  // dozens of elements); one variable per automaton state. This sharing
  // is what keeps XHTML at the few-hundred-variable scale of Table 1.
  std::vector<Glushkov> Automata;
  std::vector<int> ModelBase;                  // model -> var of state 0
  std::unordered_map<std::string, int> ModelOf; // content text -> model id
  std::unordered_map<Symbol, int> ElementModel;
  for (Symbol E : D.elements()) {
    std::string Key = toString(D.content(E));
    auto It = ModelOf.find(Key);
    if (It == ModelOf.end()) {
      It = ModelOf.emplace(Key, static_cast<int>(Automata.size())).first;
      Automata.push_back(buildGlushkov(D.content(E)));
      ModelBase.push_back(static_cast<int>(G.Vars.size()));
      const Glushkov &A = Automata.back();
      for (size_t Q = 0; Q < A.numStates(); ++Q) {
        BinaryTypeGrammar::Var V;
        V.Name = std::to_string(G.Vars.size() + 1);
        V.Nullable = A.accepting(static_cast<int>(Q));
        G.Vars.push_back(std::move(V));
      }
    }
    ElementModel[E] = It->second;
  }
  // Fill alternatives: from state q, reading child σ moves to position
  // p; the child's subtree is σ's content start variable, the remaining
  // siblings are state p's variable.
  for (size_t M = 0; M < Automata.size(); ++M) {
    const Glushkov &A = Automata[M];
    int Base = ModelBase[M];
    for (size_t Q = 0; Q < A.numStates(); ++Q) {
      BinaryTypeGrammar::Var &V = G.Vars[Base + Q];
      for (int P : A.transitions(static_cast<int>(Q))) {
        Symbol ChildSym = A.symbolOf(P);
        assert(D.isDeclared(ChildSym) &&
               "content model uses an undeclared element");
        V.Alts.push_back(
            {ChildSym, ModelBase[ElementModel.at(ChildSym)], Base + P});
      }
    }
  }
  // Start variable: root(contentVar(root), ε) — a single root element
  // with no following sibling.
  BinaryTypeGrammar::Var StartVar;
  StartVar.Name = std::to_string(G.Vars.size() + 1);
  StartVar.Nullable = false;
  StartVar.Alts.push_back(
      {D.root(), ModelBase[ElementModel.at(D.root())],
       BinaryTypeGrammar::EpsilonVar});
  G.Start = static_cast<int>(G.Vars.size());
  G.Vars.push_back(std::move(StartVar));

  optimizeBinaryGrammar(G, Minimize);
  return G;
}

void xsa::optimizeBinaryGrammar(BinaryTypeGrammar &G, bool Minimize) {
  elideEpsilonVars(G);
  if (Minimize) {
    minimizeGrammar(G);
    elideEpsilonVars(G);
    while (foldNullableDuplicates(G)) {
      minimizeGrammar(G);
      elideEpsilonVars(G);
    }
  }
}
