//===- Dtd.cpp - DTD parsing -----------------------------------------------===//

#include "xtype/Dtd.h"

#include <cctype>

using namespace xsa;

void Dtd::declare(Symbol Element, ContentRef C) {
  if (!Content.count(Element))
    Elements.push_back(Element);
  Content[Element] = std::move(C);
  if (Root == ~0u)
    Root = Element;
}

namespace {

class DtdParser {
public:
  DtdParser(std::string_view In, Dtd &D, std::string &Error)
      : In(In), D(D), Error(Error) {}

  bool run() {
    for (;;) {
      skipMisc();
      if (Pos >= In.size())
        return true;
      if (startsWith("<!ENTITY")) {
        if (!parseEntity())
          return false;
        continue;
      }
      if (startsWith("<!ELEMENT")) {
        if (!parseElement())
          return false;
        continue;
      }
      if (startsWith("<!ATTLIST")) {
        skipDeclaration();
        continue;
      }
      return fail("unexpected content in DTD");
    }
  }

private:
  bool fail(const std::string &Msg) {
    Error = "dtd parse error at offset " + std::to_string(Pos) + ": " + Msg;
    return false;
  }

  bool startsWith(std::string_view S) const {
    return In.substr(Pos, S.size()) == S;
  }

  void skipWs() {
    while (Pos < In.size() && std::isspace(static_cast<unsigned char>(In[Pos])))
      ++Pos;
  }

  void skipMisc() {
    for (;;) {
      skipWs();
      if (startsWith("<!--")) {
        size_t End = In.find("-->", Pos + 4);
        Pos = End == std::string_view::npos ? In.size() : End + 3;
        continue;
      }
      if (startsWith("<?")) {
        size_t End = In.find("?>", Pos);
        Pos = End == std::string_view::npos ? In.size() : End + 2;
        continue;
      }
      return;
    }
  }

  void skipDeclaration() {
    size_t End = In.find('>', Pos);
    Pos = End == std::string_view::npos ? In.size() : End + 1;
  }

  static bool isNameChar(char C) {
    return std::isalnum(static_cast<unsigned char>(C)) || C == '-' ||
           C == '_' || C == '.' || C == ':';
  }

  std::string parseName() {
    skipWs();
    size_t Start = Pos;
    while (Pos < In.size() && isNameChar(In[Pos]))
      ++Pos;
    return std::string(In.substr(Start, Pos - Start));
  }

  /// <!ENTITY % name "replacement">
  bool parseEntity() {
    Pos += 8; // "<!ENTITY"
    skipWs();
    if (Pos >= In.size() || In[Pos] != '%')
      // General entities are irrelevant for structure: skip.
      return skipDeclaration(), true;
    ++Pos;
    std::string Name = parseName();
    if (Name.empty())
      return fail("expected parameter entity name");
    skipWs();
    if (Pos >= In.size() || (In[Pos] != '"' && In[Pos] != '\''))
      return fail("expected quoted entity value");
    char Quote = In[Pos++];
    size_t Start = Pos;
    while (Pos < In.size() && In[Pos] != Quote)
      ++Pos;
    if (Pos >= In.size())
      return fail("unterminated entity value");
    Entities[Name] = std::string(In.substr(Start, Pos - Start));
    ++Pos;
    skipWs();
    if (Pos < In.size() && In[Pos] == '>')
      ++Pos;
    return true;
  }

  /// Expands %name; references (iteratively, entities may nest).
  bool expandEntities(std::string &S) {
    for (int Guard = 0; Guard < 64; ++Guard) {
      size_t P = S.find('%');
      if (P == std::string::npos)
        return true;
      size_t E = S.find(';', P);
      if (E == std::string::npos)
        return fail("malformed parameter entity reference");
      std::string Name = S.substr(P + 1, E - P - 1);
      auto It = Entities.find(Name);
      if (It == Entities.end())
        return fail("undefined parameter entity %" + Name + ";");
      S = S.substr(0, P) + " " + It->second + " " + S.substr(E + 1);
    }
    return fail("parameter entities nested too deeply");
  }

  /// <!ELEMENT name content>
  bool parseElement() {
    Pos += 9; // "<!ELEMENT"
    skipWs();
    std::string RawName = parseName();
    if (RawName.empty())
      return fail("expected element name");
    // The element name itself may be an entity reference in real DTDs;
    // we only support literal names.
    size_t End = In.find('>', Pos);
    if (End == std::string_view::npos)
      return fail("unterminated <!ELEMENT>");
    std::string Body(In.substr(Pos, End - Pos));
    Pos = End + 1;
    if (!expandEntities(Body))
      return false;
    ContentRef C = parseContentModel(Body);
    if (!C)
      return false;
    D.declare(RawName, C);
    return true;
  }

  //===--------------------------------------------------------------------===//
  // Content model sub-parser (operates on the entity-expanded body).
  //===--------------------------------------------------------------------===//

  struct CMParser {
    std::string_view S;
    size_t P = 0;
    std::string Err;

    void skipWs() {
      while (P < S.size() && std::isspace(static_cast<unsigned char>(S[P])))
        ++P;
    }
    bool starts(std::string_view W) { return S.substr(P, W.size()) == W; }
    std::string name() {
      skipWs();
      size_t Start = P;
      while (P < S.size() && isNameChar(S[P]))
        ++P;
      return std::string(S.substr(Start, P - Start));
    }

    ContentRef postfix(ContentRef C) {
      skipWs();
      if (P < S.size()) {
        if (S[P] == '*') {
          ++P;
          return ContentModel::star(std::move(C));
        }
        if (S[P] == '+') {
          ++P;
          return ContentModel::plus(std::move(C));
        }
        if (S[P] == '?') {
          ++P;
          return ContentModel::opt(std::move(C));
        }
      }
      return C;
    }

    ContentRef primary() {
      skipWs();
      if (P < S.size() && S[P] == '(') {
        ++P;
        ContentRef C = group();
        if (!C)
          return nullptr;
        skipWs();
        if (P >= S.size() || S[P] != ')') {
          Err = "expected ')' in content model";
          return nullptr;
        }
        ++P;
        return postfix(std::move(C));
      }
      if (starts("#PCDATA")) {
        P += 7;
        return ContentModel::eps();
      }
      std::string N = name();
      if (N.empty()) {
        Err = "expected a name in content model";
        return nullptr;
      }
      return postfix(ContentModel::sym(N));
    }

    /// group := item ((',' item)* | ('|' item)*)
    ContentRef group() {
      ContentRef L = primary();
      if (!L)
        return nullptr;
      skipWs();
      if (P < S.size() && S[P] == ',') {
        while (P < S.size() && S[P] == ',') {
          ++P;
          ContentRef R = primary();
          if (!R)
            return nullptr;
          L = ContentModel::seq(std::move(L), std::move(R));
          skipWs();
        }
        return L;
      }
      while (P < S.size() && S[P] == '|') {
        ++P;
        ContentRef R = primary();
        if (!R)
          return nullptr;
        // Mixed content (#PCDATA | a | ...): ε | a ≡ a? at the sequence
        // level; the enclosing * handles repetition. ε as a choice
        // operand is simply dropped in favor of optionality.
        if (L->K == ContentModel::Eps)
          L = ContentModel::opt(std::move(R));
        else if (R->K == ContentModel::Eps)
          L = ContentModel::opt(std::move(L));
        else
          L = ContentModel::choice(std::move(L), std::move(R));
        skipWs();
      }
      return L;
    }

    ContentRef run() {
      skipWs();
      if (starts("EMPTY")) {
        P += 5;
        return ContentModel::eps();
      }
      if (starts("ANY")) {
        P += 3;
        Err = "#ANY"; // resolved by the caller against all elements
        return nullptr;
      }
      ContentRef C = group();
      if (!C)
        return nullptr;
      skipWs();
      if (P != S.size()) {
        Err = "trailing content in content model";
        return nullptr;
      }
      return C;
    }
  };

  ContentRef parseContentModel(const std::string &Body) {
    CMParser CP;
    CP.S = Body;
    ContentRef C = CP.run();
    if (!C) {
      if (CP.Err == "#ANY") {
        // None of the DTDs this project targets (Wikipedia, SMIL 1.0,
        // XHTML 1.0 Strict) uses ANY; reject it with a clear message
        // rather than approximating.
        fail("ANY content models are not supported");
        return nullptr;
      }
      fail(CP.Err);
      return nullptr;
    }
    return C;
  }

  std::string_view In;
  size_t Pos = 0;
  Dtd &D;
  std::string &Error;
  std::unordered_map<std::string, std::string> Entities;
};

} // namespace

bool xsa::parseDtd(std::string_view Input, Dtd &D, std::string &Error) {
  Error.clear();
  DtdParser P(Input, D, Error);
  return P.run();
}
