//===- BuiltinDtds.cpp - DTDs used in the paper's experiments --------------===//

#include "xtype/BuiltinDtds.h"

#include <cstdio>
#include <cstdlib>

using namespace xsa;

namespace {

const Dtd &parseBuiltin(const char *Name, const char *Text, const char *Root) {
  auto *D = new Dtd(); // intentionally immortal (function-local static use)
  std::string Error;
  if (!parseDtd(Text, *D, Error)) {
    std::fprintf(stderr, "internal error: builtin DTD %s: %s\n", Name,
                 Error.c_str());
    std::abort();
  }
  D->setRoot(Root);
  return *D;
}

// Figure 12 of the paper, verbatim.
const char WikipediaDtdText[] = R"dtd(
<!ELEMENT article (meta, (text | redirect))>
<!ELEMENT meta (title, status?, interwiki*, history?)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT interwiki (#PCDATA)>
<!ELEMENT status (#PCDATA)>
<!ELEMENT history (edit)+>
<!ELEMENT edit (status?, interwiki*, (text | redirect)?)>
<!ELEMENT redirect EMPTY>
<!ELEMENT text (#PCDATA)>
)dtd";

// SMIL 1.0 (W3C REC-smil-19980615), structure only. 19 element symbols.
const char Smil10DtdText[] = R"dtd(
<!ENTITY % content-control "(switch)">
<!ENTITY % media-object "(audio | video | text | img | animation | textstream | ref)">
<!ENTITY % schedule "(par | seq | %media-object;)">
<!ENTITY % inline-link "(a)">
<!ENTITY % assoc-link "(anchor)">
<!ENTITY % container-content "(%schedule; | %content-control; | %inline-link;)">

<!ELEMENT smil (head?, body?)>
<!ELEMENT head (meta*, (layout | switch)?, meta*)>
<!ELEMENT layout (region | root-layout)*>
<!ELEMENT region EMPTY>
<!ELEMENT root-layout EMPTY>
<!ELEMENT meta EMPTY>
<!ELEMENT body (%container-content;)*>
<!ELEMENT par (%container-content;)*>
<!ELEMENT seq (%container-content;)*>
<!ELEMENT switch (%container-content; | layout)*>
<!ELEMENT a (%schedule; | %content-control;)*>
<!ELEMENT audio (%assoc-link; | %content-control;)*>
<!ELEMENT video (%assoc-link; | %content-control;)*>
<!ELEMENT text (%assoc-link; | %content-control;)*>
<!ELEMENT img (%assoc-link; | %content-control;)*>
<!ELEMENT animation (%assoc-link; | %content-control;)*>
<!ELEMENT textstream (%assoc-link; | %content-control;)*>
<!ELEMENT ref (%assoc-link; | %content-control;)*>
<!ELEMENT anchor EMPTY>
)dtd";

// XHTML 1.0 Strict (W3C xhtml1-strict.dtd), structure only, parameter
// entities inlined as in the original. 77 element symbols. Note that the
// content of <a> excludes <a> directly (a.content has no %inline;), while
// nested anchors remain expressible through, e.g., <span> — the property
// probed by the paper's query e8 = descendant::a[ancestor::a].
const char Xhtml10StrictDtdText[] = R"dtd(
<!ENTITY % special.pre "br | span | bdo | map">
<!ENTITY % special "%special.pre; | object | img">
<!ENTITY % fontstyle "tt | i | b | big | small">
<!ENTITY % phrase "em | strong | dfn | code | q | samp | kbd | var | cite | abbr | acronym | sub | sup">
<!ENTITY % inline.forms "input | select | textarea | label | button">
<!ENTITY % misc.inline "ins | del | script">
<!ENTITY % misc "noscript | %misc.inline;">
<!ENTITY % inline "a | %special; | %fontstyle; | %phrase; | %inline.forms;">
<!ENTITY % Inline "(#PCDATA | %inline; | %misc.inline;)*">
<!ENTITY % heading "h1|h2|h3|h4|h5|h6">
<!ENTITY % lists "ul | ol | dl">
<!ENTITY % blocktext "pre | hr | blockquote | address">
<!ENTITY % block "p | %heading; | div | %lists; | %blocktext; | fieldset | table">
<!ENTITY % Block "(%block; | form | %misc;)*">
<!ENTITY % Flow "(#PCDATA | %block; | form | %inline; | %misc;)*">
<!ENTITY % a.content "(#PCDATA | %special; | %fontstyle; | %phrase; | %inline.forms; | %misc.inline;)*">
<!ENTITY % pre.content "(#PCDATA | a | %fontstyle; | %phrase; | %special.pre; | %misc.inline; | %inline.forms;)*">
<!ENTITY % form.content "(%block; | %misc;)*">
<!ENTITY % button.content "(#PCDATA | p | %heading; | div | %lists; | %blocktext; | table | %special; | %fontstyle; | %phrase; | %misc;)*">
<!ENTITY % head.misc "(script|style|meta|link|object)*">

<!ELEMENT html (head, body)>
<!ELEMENT head (%head.misc;, ((title, %head.misc;, (base, %head.misc;)?) | (base, %head.misc;, (title, %head.misc;))))>
<!ELEMENT title (#PCDATA)>
<!ELEMENT base EMPTY>
<!ELEMENT meta EMPTY>
<!ELEMENT link EMPTY>
<!ELEMENT style (#PCDATA)>
<!ELEMENT script (#PCDATA)>
<!ELEMENT noscript %Block;>
<!ELEMENT body %Block;>
<!ELEMENT div %Flow;>
<!ELEMENT p %Inline;>
<!ELEMENT h1 %Inline;>
<!ELEMENT h2 %Inline;>
<!ELEMENT h3 %Inline;>
<!ELEMENT h4 %Inline;>
<!ELEMENT h5 %Inline;>
<!ELEMENT h6 %Inline;>
<!ELEMENT ul (li)+>
<!ELEMENT ol (li)+>
<!ELEMENT li %Flow;>
<!ELEMENT dl (dt|dd)+>
<!ELEMENT dt %Inline;>
<!ELEMENT dd %Flow;>
<!ELEMENT address %Inline;>
<!ELEMENT hr EMPTY>
<!ELEMENT pre %pre.content;>
<!ELEMENT blockquote %Block;>
<!ELEMENT ins %Flow;>
<!ELEMENT del %Flow;>
<!ELEMENT a %a.content;>
<!ELEMENT span %Inline;>
<!ELEMENT bdo %Inline;>
<!ELEMENT br EMPTY>
<!ELEMENT em %Inline;>
<!ELEMENT strong %Inline;>
<!ELEMENT dfn %Inline;>
<!ELEMENT code %Inline;>
<!ELEMENT samp %Inline;>
<!ELEMENT kbd %Inline;>
<!ELEMENT var %Inline;>
<!ELEMENT cite %Inline;>
<!ELEMENT abbr %Inline;>
<!ELEMENT acronym %Inline;>
<!ELEMENT q %Inline;>
<!ELEMENT sub %Inline;>
<!ELEMENT sup %Inline;>
<!ELEMENT tt %Inline;>
<!ELEMENT i %Inline;>
<!ELEMENT b %Inline;>
<!ELEMENT big %Inline;>
<!ELEMENT small %Inline;>
<!ELEMENT object (#PCDATA | param | %block; | form | %inline; | %misc;)*>
<!ELEMENT param EMPTY>
<!ELEMENT img EMPTY>
<!ELEMENT map ((%block; | form | %misc;)+ | area+)>
<!ELEMENT area EMPTY>
<!ELEMENT form %form.content;>
<!ELEMENT label %Inline;>
<!ELEMENT input EMPTY>
<!ELEMENT select (optgroup|option)+>
<!ELEMENT optgroup (option)+>
<!ELEMENT option (#PCDATA)>
<!ELEMENT textarea (#PCDATA)>
<!ELEMENT fieldset (#PCDATA | legend | %block; | form | %inline; | %misc;)*>
<!ELEMENT legend %Inline;>
<!ELEMENT button %button.content;>
<!ELEMENT table (caption?, (col*|colgroup*), thead?, tfoot?, (tbody+|tr+))>
<!ELEMENT caption %Inline;>
<!ELEMENT thead (tr)+>
<!ELEMENT tfoot (tr)+>
<!ELEMENT tbody (tr)+>
<!ELEMENT colgroup (col)*>
<!ELEMENT col EMPTY>
<!ELEMENT tr (th|td)+>
<!ELEMENT th %Flow;>
<!ELEMENT td %Flow;>
)dtd";

} // namespace

const Dtd &xsa::wikipediaDtd() {
  static const Dtd &D = parseBuiltin("wikipedia", WikipediaDtdText, "article");
  return D;
}

const Dtd &xsa::smil10Dtd() {
  static const Dtd &D = parseBuiltin("smil-1.0", Smil10DtdText, "smil");
  return D;
}

const Dtd &xsa::xhtml10StrictDtd() {
  static const Dtd &D =
      parseBuiltin("xhtml-1.0-strict", Xhtml10StrictDtdText, "html");
  return D;
}
