//===- ContentModel.cpp - DTD content models -------------------------------===//

#include "xtype/ContentModel.h"

#include <cassert>
#include <set>
#include <sstream>

using namespace xsa;

static ContentRef make(ContentModel::Kind K, Symbol S, ContentRef A,
                       ContentRef B) {
  auto C = std::make_shared<ContentModel>();
  C->K = K;
  C->S = S;
  C->A = std::move(A);
  C->B = std::move(B);
  return C;
}

ContentRef ContentModel::eps() { return make(Eps, 0, nullptr, nullptr); }
ContentRef ContentModel::sym(Symbol S) { return make(Sym, S, nullptr, nullptr); }
ContentRef ContentModel::seq(ContentRef A, ContentRef B) {
  return make(Seq, 0, std::move(A), std::move(B));
}
ContentRef ContentModel::choice(ContentRef A, ContentRef B) {
  return make(Choice, 0, std::move(A), std::move(B));
}
ContentRef ContentModel::star(ContentRef A) {
  return make(Star, 0, std::move(A), nullptr);
}
ContentRef ContentModel::plus(ContentRef A) {
  return make(Plus, 0, std::move(A), nullptr);
}
ContentRef ContentModel::opt(ContentRef A) {
  return make(Opt, 0, std::move(A), nullptr);
}

bool xsa::nullable(const ContentRef &C) {
  switch (C->K) {
  case ContentModel::Eps:
  case ContentModel::Star:
  case ContentModel::Opt:
    return true;
  case ContentModel::Sym:
    return false;
  case ContentModel::Seq:
    return nullable(C->A) && nullable(C->B);
  case ContentModel::Choice:
    return nullable(C->A) || nullable(C->B);
  case ContentModel::Plus:
    return nullable(C->A);
  }
  return false;
}

std::vector<Symbol> xsa::contentSymbols(const ContentRef &C) {
  std::set<Symbol> Set;
  auto Rec = [&](auto &&Self, const ContentRef &R) -> void {
    switch (R->K) {
    case ContentModel::Sym:
      Set.insert(R->S);
      return;
    case ContentModel::Seq:
    case ContentModel::Choice:
      Self(Self, R->A);
      Self(Self, R->B);
      return;
    case ContentModel::Star:
    case ContentModel::Plus:
    case ContentModel::Opt:
      Self(Self, R->A);
      return;
    case ContentModel::Eps:
      return;
    }
  };
  Rec(Rec, C);
  return std::vector<Symbol>(Set.begin(), Set.end());
}

namespace {

/// Classic first/last/follow computation with positions numbered in
/// left-to-right order.
struct GlushkovBuilder {
  Glushkov G;

  struct Info {
    std::vector<int> First, Last;
    bool Nullable;
  };

  Info build(const ContentRef &C) {
    switch (C->K) {
    case ContentModel::Eps:
      return {{}, {}, true};
    case ContentModel::Sym: {
      G.PosSym.push_back(C->S);
      G.Follow.emplace_back();
      int P = static_cast<int>(G.PosSym.size());
      return {{P}, {P}, false};
    }
    case ContentModel::Seq: {
      Info A = build(C->A);
      Info B = build(C->B);
      for (int L : A.Last)
        for (int F : B.First)
          G.Follow[L - 1].push_back(F);
      Info R;
      R.First = A.First;
      if (A.Nullable)
        R.First.insert(R.First.end(), B.First.begin(), B.First.end());
      R.Last = B.Last;
      if (B.Nullable)
        R.Last.insert(R.Last.end(), A.Last.begin(), A.Last.end());
      R.Nullable = A.Nullable && B.Nullable;
      return R;
    }
    case ContentModel::Choice: {
      Info A = build(C->A);
      Info B = build(C->B);
      Info R;
      R.First = A.First;
      R.First.insert(R.First.end(), B.First.begin(), B.First.end());
      R.Last = A.Last;
      R.Last.insert(R.Last.end(), B.Last.begin(), B.Last.end());
      R.Nullable = A.Nullable || B.Nullable;
      return R;
    }
    case ContentModel::Star:
    case ContentModel::Plus: {
      Info A = build(C->A);
      for (int L : A.Last)
        for (int F : A.First)
          G.Follow[L - 1].push_back(F);
      A.Nullable = A.Nullable || C->K == ContentModel::Star;
      return A;
    }
    case ContentModel::Opt: {
      Info A = build(C->A);
      A.Nullable = true;
      return A;
    }
    }
    return {{}, {}, true};
  }
};

void dedupSort(std::vector<int> &V) {
  std::set<int> S(V.begin(), V.end());
  V.assign(S.begin(), S.end());
}

} // namespace

Glushkov xsa::buildGlushkov(const ContentRef &C) {
  GlushkovBuilder B;
  GlushkovBuilder::Info Top = B.build(C);
  B.G.First = Top.First;
  dedupSort(B.G.First);
  B.G.NullableRoot = Top.Nullable;
  B.G.Last.assign(B.G.PosSym.size(), false);
  for (int L : Top.Last)
    B.G.Last[L - 1] = true;
  for (auto &F : B.G.Follow)
    dedupSort(F);
  return B.G;
}

bool xsa::glushkovMatches(const Glushkov &G, const std::vector<Symbol> &Word) {
  std::set<int> States{0};
  for (Symbol S : Word) {
    std::set<int> Next;
    for (int Q : States)
      for (int P : G.transitions(Q))
        if (G.symbolOf(P) == S)
          Next.insert(P);
    if (Next.empty())
      return false;
    States = std::move(Next);
  }
  for (int Q : States)
    if (G.accepting(Q))
      return true;
  return false;
}

namespace {

void printContent(const ContentRef &C, std::ostringstream &OS) {
  switch (C->K) {
  case ContentModel::Eps:
    OS << "EMPTY";
    return;
  case ContentModel::Sym:
    OS << symbolName(C->S);
    return;
  case ContentModel::Seq:
    OS << "(";
    printContent(C->A, OS);
    OS << ", ";
    printContent(C->B, OS);
    OS << ")";
    return;
  case ContentModel::Choice:
    OS << "(";
    printContent(C->A, OS);
    OS << " | ";
    printContent(C->B, OS);
    OS << ")";
    return;
  case ContentModel::Star:
    printContent(C->A, OS);
    OS << "*";
    return;
  case ContentModel::Plus:
    printContent(C->A, OS);
    OS << "+";
    return;
  case ContentModel::Opt:
    printContent(C->A, OS);
    OS << "?";
    return;
  }
}

} // namespace

std::string xsa::toString(const ContentRef &C) {
  std::ostringstream OS;
  printContent(C, OS);
  return OS.str();
}
