//===- Validate.cpp - DTD validation of documents ---------------------------===//

#include "xtype/Validate.h"

#include <unordered_map>

using namespace xsa;

bool xsa::validate(const Document &Doc, const Dtd &D, std::string *Why,
                   bool CheckRoot) {
  auto Fail = [&](const std::string &Msg) {
    if (Why)
      *Why = Msg;
    return false;
  };
  if (Doc.empty())
    return Fail("empty document");
  if (CheckRoot) {
    std::vector<NodeId> Roots = Doc.roots();
    if (Roots.size() != 1)
      return Fail("document must have exactly one root element");
    if (Doc.label(Roots[0]) != D.root())
      return Fail("root element is <" + Doc.labelName(Roots[0]) +
                  ">, expected <" + symbolName(D.root()) + ">");
  }
  // Report undeclared elements first: that is the most actionable error.
  for (NodeId N = 0; N < static_cast<NodeId>(Doc.size()); ++N)
    if (!D.isDeclared(Doc.label(N)))
      return Fail("undeclared element <" + Doc.labelName(N) + ">");
  // Cache one automaton per element.
  std::unordered_map<Symbol, Glushkov> Automata;
  for (NodeId N = 0; N < static_cast<NodeId>(Doc.size()); ++N) {
    Symbol L = Doc.label(N);
    auto It = Automata.find(L);
    if (It == Automata.end())
      It = Automata.emplace(L, buildGlushkov(D.content(L))).first;
    std::vector<Symbol> Children;
    for (NodeId C = Doc.firstChild(N); C != InvalidNodeId;
         C = Doc.nextSibling(C))
      Children.push_back(Doc.label(C));
    if (!glushkovMatches(It->second, Children))
      return Fail("content of <" + symbolName(L) +
                  "> does not match its content model " +
                  toString(D.content(L)));
  }
  return true;
}
