//===- Compile.cpp - Regular tree types to Lµ (§5.2) ------------------------===//

#include "xtype/Compile.h"

#include <cassert>

using namespace xsa;

Formula xsa::compileType(FormulaFactory &FF, const BinaryTypeGrammar &G) {
  if (G.Start == BinaryTypeGrammar::EpsilonVar || G.Vars.empty())
    return FF.falseF(); // only the empty hedge: no focused tree satisfies it
  // One recursion variable per grammar variable.
  std::vector<Symbol> VarSyms;
  VarSyms.reserve(G.Vars.size());
  for (const BinaryTypeGrammar::Var &V : G.Vars)
    VarSyms.push_back(FF.freshVar("T" + V.Name + "_"));

  auto Succ = [&](Program Alpha, int X) -> Formula {
    if (X == BinaryTypeGrammar::EpsilonVar)
      return FF.negDiamondTop(Alpha);
    Formula Step = FF.diamond(Alpha, FF.var(VarSyms[X]));
    if (G.Vars[X].Nullable)
      return FF.disj(FF.negDiamondTop(Alpha), Step);
    return Step;
  };

  std::vector<MuBinding> Bindings;
  Bindings.reserve(G.Vars.size());
  for (size_t I = 0; I < G.Vars.size(); ++I) {
    Formula Def = FF.falseF();
    for (const BinaryTypeGrammar::Alt &A : G.Vars[I].Alts) {
      Formula AltF = FF.conj(
          FF.conj(FF.prop(A.Label), Succ(Program::Child, A.X1)),
          Succ(Program::Sibling, A.X2));
      Def = FF.disj(Def, AltF);
    }
    Bindings.push_back({VarSyms[I], Def});
  }
  return FF.mu(std::move(Bindings), FF.var(VarSyms[G.Start]));
}

Formula xsa::compileDtd(FormulaFactory &FF, const Dtd &D) {
  return compileType(FF, binarize(D));
}
