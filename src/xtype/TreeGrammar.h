//===- TreeGrammar.h - General regular tree grammars -------------*- C++ -*-===//
//
// Part of the xsa project (PLDI 2007 XPath/type analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unranked *regular tree grammars* in normal form: nonterminals
/// N → σ(r) where σ is an element label and r a regular expression over
/// nonterminals. This is the full class the paper's §5.2 embedding
/// targets ("regular tree languages, which gather all of them [DTD, XML
/// Schema, Relax NG]", after Murata et al.): unlike DTDs, the content of
/// an element may depend on its *context* — two nonterminals can carry
/// the same label with different contents (non-local types).
///
/// A grammar in this form binarizes with exactly the Fig. 13
/// construction (one variable per Glushkov state per nonterminal) and is
/// then compiled to Lµ by xtype/Compile.h unchanged.
///
/// A reader for a Relax-NG-compact-inspired syntax is provided:
///
///   start   = element doc { meta, entry* }
///   meta    = element meta { empty }
///   entry   = element entry { text | entry* }
///
/// with `pattern*`, `pattern+`, `pattern?`, `,` sequences, `|` choices,
/// parentheses, inline `element name { ... }` patterns, named pattern
/// references (recursion must cross an element, as in Relax NG), and
/// `empty` / `text` (both structure-empty in the paper's model).
///
//===----------------------------------------------------------------------===//

#ifndef XSA_XTYPE_TREEGRAMMAR_H
#define XSA_XTYPE_TREEGRAMMAR_H

#include "tree/Document.h"
#include "xtype/Binarize.h"
#include "xtype/ContentModel.h"

#include <string>
#include <vector>

namespace xsa {

/// A normal-form regular tree grammar. Nonterminals are dense indices;
/// content models range over nonterminal indices encoded as symbols via
/// nonterminalSymbol().
class TreeGrammar {
public:
  struct NonTerminal {
    std::string Name;   ///< diagnostic name
    Symbol Label;       ///< element label σ
    ContentRef Content; ///< regexp over nonterminal reference symbols
  };

  /// The reference symbol standing for nonterminal \p Index inside
  /// content models (an interned "#nt<index>" name, never a label).
  static Symbol nonterminalSymbol(int Index);
  /// Inverse of nonterminalSymbol; -1 if the symbol is not a reference.
  static int nonterminalIndex(Symbol S);

  int addNonTerminal(std::string Name, Symbol Label, ContentRef Content);
  void setContent(int Index, ContentRef Content) {
    NonTerminals[Index].Content = std::move(Content);
  }

  const std::vector<NonTerminal> &nonTerminals() const {
    return NonTerminals;
  }
  int start() const { return Start; }
  void setStart(int Index) { Start = Index; }

  /// Membership test: does \p Doc (single-rooted) belong to the
  /// grammar's language? Bottom-up set-based matching (non-local
  /// grammars are nondeterministic in general).
  bool accepts(const Document &Doc, std::string *Why = nullptr) const;

  /// The Fig. 13 construction generalized from DTDs to tree grammars.
  BinaryTypeGrammar binarize(bool Minimize = true) const;

private:
  std::vector<NonTerminal> NonTerminals;
  int Start = 0;
};

/// Parses the compact grammar syntax described in the file header.
/// The first definition is the start pattern and must be (or expand to)
/// a single element. Returns false and fills \p Error on failure.
bool parseTreeGrammar(std::string_view Input, TreeGrammar &G,
                      std::string &Error);

} // namespace xsa

#endif // XSA_XTYPE_TREEGRAMMAR_H
