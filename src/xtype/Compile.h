//===- Compile.h - Regular tree types to Lµ (§5.2) ---------------*- C++ -*-===//
//
// Part of the xsa project (PLDI 2007 XPath/type analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The linear translation of binary regular tree types into Lµ (§5.2):
///
///   ⟦σ(X1, X2)⟧ = σ ∧ succ1(X1) ∧ succ2(X2)
///   ⟦T1 ∪ T2⟧  = ⟦T1⟧ ∨ ⟦T2⟧
///   ⟦let X̄.T̄ in T⟧ = µ X̄ = ⟦T̄⟧ in ⟦T⟧
///
/// with the frontier function
///
///   succα(X) = ¬⟨α⟩⊤                 if X is bound to ε
///            = ¬⟨α⟩⊤ ∨ ⟨α⟩X         if nullable(X)
///            = ⟨α⟩X                  otherwise.
///
/// The resulting formula uses only downward modalities and is trivially
/// cycle free; Figure 14 of the paper shows the output for the Wikipedia
/// DTD.
///
//===----------------------------------------------------------------------===//

#ifndef XSA_XTYPE_COMPILE_H
#define XSA_XTYPE_COMPILE_H

#include "logic/Formula.h"
#include "xtype/Binarize.h"

namespace xsa {

/// Compiles a binary tree type grammar to the Lµ formula holding exactly
/// at the roots of trees of the type.
Formula compileType(FormulaFactory &FF, const BinaryTypeGrammar &G);

/// Convenience: binarize + compile.
Formula compileDtd(FormulaFactory &FF, const Dtd &D);

} // namespace xsa

#endif // XSA_XTYPE_COMPILE_H
