//===- Dtd.h - DTD parsing ---------------------------------------*- C++ -*-===//
//
// Part of the xsa project (PLDI 2007 XPath/type analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A DTD as a map from element names to content models, plus a designated
/// root. The parser handles <!ELEMENT> declarations, parameter entities
/// (<!ENTITY % n "...">, needed by real-world DTDs like XHTML), `ANY`,
/// and mixed content; <!ATTLIST>, comments and processing instructions
/// are skipped — the paper's XPath fragment has no attribute axis and no
/// data values.
///
//===----------------------------------------------------------------------===//

#ifndef XSA_XTYPE_DTD_H
#define XSA_XTYPE_DTD_H

#include "xtype/ContentModel.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace xsa {

class Dtd {
public:
  /// Declares (or redeclares) an element.
  void declare(Symbol Element, ContentRef Content);
  void declare(std::string_view Element, ContentRef Content) {
    declare(internSymbol(Element), std::move(Content));
  }

  bool isDeclared(Symbol Element) const { return Content.count(Element); }
  const ContentRef &content(Symbol Element) const {
    return Content.at(Element);
  }

  /// Elements in declaration order.
  const std::vector<Symbol> &elements() const { return Elements; }

  /// Number of declared element symbols (Table 1's "Symbols").
  size_t numSymbols() const { return Elements.size(); }

  /// The root element (defaults to the first declared element).
  Symbol root() const { return Root; }
  void setRoot(Symbol S) { Root = S; }
  void setRoot(std::string_view S) { Root = internSymbol(S); }

private:
  std::vector<Symbol> Elements;
  std::unordered_map<Symbol, ContentRef> Content;
  Symbol Root = ~0u;
};

/// Parses DTD text into \p D. Returns false and fills \p Error on failure.
bool parseDtd(std::string_view Input, Dtd &D, std::string &Error);

} // namespace xsa

#endif // XSA_XTYPE_DTD_H
