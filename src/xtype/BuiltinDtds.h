//===- BuiltinDtds.h - DTDs used in the paper's experiments ------*- C++ -*-===//
//
// Part of the xsa project (PLDI 2007 XPath/type analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three document types used in the paper:
///
///  * the Wikipedia DTD fragment of Figure 12 (verbatim);
///  * SMIL 1.0 (19 element symbols — Table 1), transcribed from the W3C
///    DTD with attribute declarations dropped;
///  * XHTML 1.0 Strict (77 element symbols — Table 1), transcribed from
///    the W3C DTD with parameter entities inlined as entities and
///    attribute declarations dropped. Crucially for the paper's e8
///    experiment, `a` excludes itself *directly* from its content but
///    nested anchors remain reachable through other inline elements.
///
//===----------------------------------------------------------------------===//

#ifndef XSA_XTYPE_BUILTINDTDS_H
#define XSA_XTYPE_BUILTINDTDS_H

#include "xtype/Dtd.h"

namespace xsa {

/// Figure 12: the Wikipedia encyclopedia DTD fragment (root: article).
const Dtd &wikipediaDtd();

/// SMIL 1.0 structure (root: smil).
const Dtd &smil10Dtd();

/// XHTML 1.0 Strict structure (root: html).
const Dtd &xhtml10StrictDtd();

} // namespace xsa

#endif // XSA_XTYPE_BUILTINDTDS_H
