//===- TreeGrammar.cpp - General regular tree grammars ----------------------===//

#include "xtype/TreeGrammar.h"

#include <cassert>
#include <cctype>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>

using namespace xsa;

Symbol TreeGrammar::nonterminalSymbol(int Index) {
  return internSymbol("#nt" + std::to_string(Index));
}

int TreeGrammar::nonterminalIndex(Symbol S) {
  const std::string &Name = symbolName(S);
  if (Name.size() < 4 || Name.compare(0, 3, "#nt") != 0)
    return -1;
  return std::atoi(Name.c_str() + 3);
}

int TreeGrammar::addNonTerminal(std::string Name, Symbol Label,
                                ContentRef Content) {
  NonTerminals.push_back({std::move(Name), Label, std::move(Content)});
  return static_cast<int>(NonTerminals.size() - 1);
}

//===----------------------------------------------------------------------===//
// Membership (bottom-up set-based matching)
//===----------------------------------------------------------------------===//

bool TreeGrammar::accepts(const Document &Doc, std::string *Why) const {
  auto Fail = [&](const std::string &Msg) {
    if (Why)
      *Why = Msg;
    return false;
  };
  if (Doc.roots().size() != 1)
    return Fail("document must have exactly one root element");
  // One automaton per nonterminal.
  std::vector<Glushkov> Automata;
  Automata.reserve(NonTerminals.size());
  for (const NonTerminal &N : NonTerminals)
    Automata.push_back(buildGlushkov(N.Content));
  // Postorder: children before parents.
  std::vector<std::set<int>> Match(Doc.size());
  std::vector<NodeId> Order;
  Order.reserve(Doc.size());
  {
    std::vector<NodeId> Stack = Doc.roots();
    std::vector<NodeId> Rev;
    while (!Stack.empty()) {
      NodeId N = Stack.back();
      Stack.pop_back();
      Rev.push_back(N);
      for (NodeId C = Doc.firstChild(N); C != InvalidNodeId;
           C = Doc.nextSibling(C))
        Stack.push_back(C);
    }
    Order.assign(Rev.rbegin(), Rev.rend());
  }
  for (NodeId N : Order) {
    for (size_t I = 0; I < NonTerminals.size(); ++I) {
      if (NonTerminals[I].Label != Doc.label(N))
        continue;
      // Run the content automaton over the children, where position p
      // (a nonterminal reference) matches child c iff c can be that
      // nonterminal.
      const Glushkov &A = Automata[I];
      std::set<int> States{0};
      bool Dead = false;
      for (NodeId C = Doc.firstChild(N); C != InvalidNodeId;
           C = Doc.nextSibling(C)) {
        std::set<int> Next;
        for (int Q : States)
          for (int P : A.transitions(Q)) {
            int Target = nonterminalIndex(A.symbolOf(P));
            if (Target >= 0 && Match[C].count(Target))
              Next.insert(P);
          }
        if (Next.empty()) {
          Dead = true;
          break;
        }
        States = std::move(Next);
      }
      if (Dead)
        continue;
      for (int Q : States)
        if (A.accepting(Q)) {
          Match[N].insert(static_cast<int>(I));
          break;
        }
    }
  }
  NodeId Root = Doc.roots()[0];
  if (Match[Root].count(Start))
    return true;
  return Fail("root does not match the start nonterminal " +
              NonTerminals[Start].Name);
}

//===----------------------------------------------------------------------===//
// Binarization (Fig. 13 generalized to tree grammars)
//===----------------------------------------------------------------------===//

BinaryTypeGrammar TreeGrammar::binarize(bool Minimize) const {
  BinaryTypeGrammar G;
  std::vector<Glushkov> Automata;
  std::vector<int> Base(NonTerminals.size());
  for (size_t I = 0; I < NonTerminals.size(); ++I) {
    Automata.push_back(buildGlushkov(NonTerminals[I].Content));
    Base[I] = static_cast<int>(G.Vars.size());
    const Glushkov &A = Automata.back();
    for (size_t Q = 0; Q < A.numStates(); ++Q) {
      BinaryTypeGrammar::Var V;
      V.Name = std::to_string(G.Vars.size() + 1);
      V.Nullable = A.accepting(static_cast<int>(Q));
      G.Vars.push_back(std::move(V));
    }
  }
  for (size_t I = 0; I < NonTerminals.size(); ++I) {
    const Glushkov &A = Automata[I];
    for (size_t Q = 0; Q < A.numStates(); ++Q) {
      BinaryTypeGrammar::Var &V = G.Vars[Base[I] + Q];
      for (int P : A.transitions(static_cast<int>(Q))) {
        int Target = nonterminalIndex(A.symbolOf(P));
        assert(Target >= 0 && "content model must range over nonterminals");
        V.Alts.push_back({NonTerminals[Target].Label, Base[Target],
                          Base[I] + P});
      }
    }
  }
  BinaryTypeGrammar::Var StartVar;
  StartVar.Name = std::to_string(G.Vars.size() + 1);
  StartVar.Alts.push_back({NonTerminals[Start].Label, Base[Start],
                           BinaryTypeGrammar::EpsilonVar});
  G.Start = static_cast<int>(G.Vars.size());
  G.Vars.push_back(std::move(StartVar));
  optimizeBinaryGrammar(G, Minimize);
  return G;
}

//===----------------------------------------------------------------------===//
// Compact-syntax reader
//===----------------------------------------------------------------------===//

namespace {

struct Pat {
  enum Kind { Elem, Ref, Empty, Seq, Choice, Star, Plus, Opt } K;
  std::string Name; // Elem label / Ref target
  std::shared_ptr<Pat> A, B;
};
using PatRef = std::shared_ptr<Pat>;

PatRef makePat(Pat::Kind K, std::string Name = "", PatRef A = nullptr,
               PatRef B = nullptr) {
  auto P = std::make_shared<Pat>();
  P->K = K;
  P->Name = std::move(Name);
  P->A = std::move(A);
  P->B = std::move(B);
  return P;
}

class GrammarParser {
public:
  GrammarParser(std::string_view In, TreeGrammar &G, std::string &Error)
      : In(In), G(G), Error(Error) {}

  bool run() {
    // Phase 1: parse all definitions.
    for (;;) {
      skipMisc();
      if (Pos >= In.size())
        break;
      std::string Name = parseName();
      if (Name.empty())
        return fail("expected a definition name");
      if (Defs.count(Name))
        return fail("duplicate definition of " + Name);
      if (!eat('='))
        return fail("expected '=' after " + Name);
      PatRef P = parseChoice();
      if (!P)
        return false;
      Defs.emplace(Name, P);
      DefOrder.push_back(Name);
    }
    if (DefOrder.empty())
      return fail("empty grammar");
    // Phase 2: normalize the start definition (which pulls in the rest),
    // then drain the element worklist.
    ContentRef StartContent = normalizeDef(DefOrder.front());
    if (!StartContent)
      return false;
    while (!Worklist.empty()) {
      auto [Index, Body] = Worklist.back();
      Worklist.pop_back();
      ContentRef C = normalize(Body);
      if (!C)
        return false;
      G.setContent(Index, C);
    }
    // The start pattern must be a single element.
    if (StartContent->K != ContentModel::Sym)
      return fail("the start definition must be a single element");
    int StartNt = TreeGrammar::nonterminalIndex(StartContent->S);
    if (StartNt < 0)
      return fail("the start definition must be a single element");
    G.setStart(StartNt);
    return true;
  }

private:
  bool fail(const std::string &Msg) {
    if (Error.empty())
      Error =
          "grammar parse error at offset " + std::to_string(Pos) + ": " + Msg;
    return false;
  }

  void skipMisc() {
    for (;;) {
      while (Pos < In.size() &&
             std::isspace(static_cast<unsigned char>(In[Pos])))
        ++Pos;
      if (Pos < In.size() && In[Pos] == '#') { // line comment
        while (Pos < In.size() && In[Pos] != '\n')
          ++Pos;
        continue;
      }
      return;
    }
  }

  bool eat(char C) {
    skipMisc();
    if (Pos < In.size() && In[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool peek(char C) {
    skipMisc();
    return Pos < In.size() && In[Pos] == C;
  }

  static bool isNameChar(char C) {
    return std::isalnum(static_cast<unsigned char>(C)) || C == '-' ||
           C == '_' || C == '.';
  }

  std::string peekName() {
    skipMisc();
    size_t P = Pos;
    while (P < In.size() && isNameChar(In[P]))
      ++P;
    return std::string(In.substr(Pos, P - Pos));
  }

  std::string parseName() {
    std::string N = peekName();
    Pos += N.size();
    return N;
  }

  // choice := seq ('|' seq)*
  PatRef parseChoice() {
    PatRef L = parseSeq();
    if (!L)
      return nullptr;
    while (peek('|')) {
      eat('|');
      PatRef R = parseSeq();
      if (!R)
        return nullptr;
      L = makePat(Pat::Choice, "", L, R);
    }
    return L;
  }

  // seq := postfix (',' postfix)*
  PatRef parseSeq() {
    PatRef L = parsePostfix();
    if (!L)
      return nullptr;
    while (peek(',')) {
      eat(',');
      PatRef R = parsePostfix();
      if (!R)
        return nullptr;
      L = makePat(Pat::Seq, "", L, R);
    }
    return L;
  }

  PatRef parsePostfix() {
    PatRef P = parsePrimary();
    if (!P)
      return nullptr;
    skipMisc();
    if (Pos < In.size()) {
      if (In[Pos] == '*') {
        ++Pos;
        return makePat(Pat::Star, "", P);
      }
      if (In[Pos] == '+') {
        ++Pos;
        return makePat(Pat::Plus, "", P);
      }
      if (In[Pos] == '?') {
        ++Pos;
        return makePat(Pat::Opt, "", P);
      }
    }
    return P;
  }

  PatRef parsePrimary() {
    skipMisc();
    if (peek('(')) {
      eat('(');
      PatRef P = parseChoice();
      if (!P)
        return nullptr;
      if (!eat(')')) {
        fail("expected ')'");
        return nullptr;
      }
      return P;
    }
    std::string Name = parseName();
    if (Name.empty()) {
      fail("expected a pattern");
      return nullptr;
    }
    if (Name == "empty" || Name == "text")
      return makePat(Pat::Empty);
    if (Name == "element") {
      std::string Label = parseName();
      if (Label.empty()) {
        fail("expected element name");
        return nullptr;
      }
      if (!eat('{')) {
        fail("expected '{' after element " + Label);
        return nullptr;
      }
      PatRef Body = parseChoice();
      if (!Body)
        return nullptr;
      if (!eat('}')) {
        fail("expected '}' closing element " + Label);
        return nullptr;
      }
      return makePat(Pat::Elem, Label, Body);
    }
    return makePat(Pat::Ref, Name);
  }

  //===--------------------------------------------------------------------===//
  // Normalization to nonterminal form
  //===--------------------------------------------------------------------===//

  ContentRef normalize(const PatRef &P) {
    switch (P->K) {
    case Pat::Empty:
      return ContentModel::eps();
    case Pat::Seq: {
      ContentRef A = normalize(P->A), B = normalize(P->B);
      return A && B ? ContentModel::seq(A, B) : nullptr;
    }
    case Pat::Choice: {
      ContentRef A = normalize(P->A), B = normalize(P->B);
      return A && B ? ContentModel::choice(A, B) : nullptr;
    }
    case Pat::Star: {
      ContentRef A = normalize(P->A);
      return A ? ContentModel::star(A) : nullptr;
    }
    case Pat::Plus: {
      ContentRef A = normalize(P->A);
      return A ? ContentModel::plus(A) : nullptr;
    }
    case Pat::Opt: {
      ContentRef A = normalize(P->A);
      return A ? ContentModel::opt(A) : nullptr;
    }
    case Pat::Elem: {
      int Index = G.addNonTerminal(P->Name, internSymbol(P->Name),
                                   ContentModel::eps());
      Worklist.push_back({Index, P->A});
      return ContentModel::sym(TreeGrammar::nonterminalSymbol(Index));
    }
    case Pat::Ref:
      return normalizeDef(P->Name);
    }
    return nullptr;
  }

  ContentRef normalizeDef(const std::string &Name) {
    auto It = Defs.find(Name);
    if (It == Defs.end()) {
      fail("undefined pattern " + Name);
      return nullptr;
    }
    auto MIt = Memo.find(Name);
    if (MIt != Memo.end())
      return MIt->second;
    if (!InProgress.insert(Name).second) {
      // Recursion that does not cross an element (as in Relax NG, this
      // is ill-formed: the expansion would not terminate).
      fail("recursive reference to " + Name +
           " does not cross an element");
      return nullptr;
    }
    ContentRef R = normalize(It->second);
    InProgress.erase(Name);
    if (R)
      Memo.emplace(Name, R);
    return R;
  }

  std::string_view In;
  size_t Pos = 0;
  TreeGrammar &G;
  std::string &Error;
  std::map<std::string, PatRef> Defs;
  std::vector<std::string> DefOrder;
  std::map<std::string, ContentRef> Memo;
  std::set<std::string> InProgress;
  std::vector<std::pair<int, PatRef>> Worklist;
};

} // namespace

bool xsa::parseTreeGrammar(std::string_view Input, TreeGrammar &G,
                           std::string &Error) {
  Error.clear();
  GrammarParser P(Input, G, Error);
  return P.run();
}
