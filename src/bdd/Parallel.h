//===- Parallel.h - Work-stealing parallel BDD backend -----------*- C++ -*-===//
//
// Part of the xsa project (PLDI 2007 XPath/type analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The intra-query parallel symbolic backend (cf. Sylvan behind LTSmin's
/// vset-lib, the exemplar named in ROADMAP.md). One public operation on a
/// large operand is decomposed into cofactor subproblems that worker
/// threads steal from each other, over three concurrent data structures:
///
///   * a lock-free hash-consing unique table: fixed power-of-two bucket
///     array of chained nodes, insertion by CAS on the bucket head with a
///     re-scan of the newly inserted prefix on failure. Nodes are never
///     deleted (no GC), so there is no ABA and readers never need locks;
///   * a segmented node store: node ids index into fixed-size segments
///     allocated on demand, so node memory never moves and ids stay
///     stable without a global resize lock;
///   * a lossy concurrent operation cache: per-entry seqlock (all fields
///     atomic, even version = stable) storing the *full* operand key, so
///     a collision or a torn read can only miss, never return a wrong
///     result. Writers skip the slot if another writer holds it — lossy
///     by design, exactly like the serial direct-mapped cache.
///
/// apply and andExists (the relational product of §7.3, where the solver
/// spends its time) fork their high-cofactor subproblem as a task onto a
/// per-worker deque and recurse into the low cofactor themselves; the
/// joiner helps steal while waiting. Small top-level operands (below
/// SequentialCutoffNodes reachable nodes) never enter the task machinery.
///
/// Determinism: hash consing is canonical, so the result of every
/// operation is the unique reduced ordered BDD of its function no matter
/// how subproblems interleave — node ids vary across runs, node structure
/// cannot. Everything observable (verdicts, models, snapshots, `--stable`
/// output) is structural, hence byte-identical to the serial backend.
///
/// Threading contract: as for every BddManager, the public API is called
/// from one thread at a time; worker threads live only inside one
/// operation (the manager owns a lazily created WorkerPool — it must not
/// borrow the session's pool, whose parallelFor is exclusive per pool and
/// already carries the solver itself at `--jobs` > 1).
///
//===----------------------------------------------------------------------===//

#ifndef XSA_BDD_PARALLEL_H
#define XSA_BDD_PARALLEL_H

#include "bdd/Bdd.h"

#include <atomic>
#include <mutex>

namespace xsa {

class WorkerPool;

class ParallelBddManager final : public BddManager {
public:
  /// \param InitialVars variables to pre-create.
  /// \param Threads workers for one operation; 0 = hardware concurrency.
  explicit ParallelBddManager(unsigned InitialVars = 0, unsigned Threads = 0);
  ~ParallelBddManager() override;

  BddBackendKind kind() const override { return BddBackendKind::Parallel; }

  /// Resolved worker count (>= 1).
  unsigned threads() const { return ThreadCount; }

  size_t numNodes() const override;
  size_t peakNodes() const override;
  /// No collector: one manager per solver run bounds the store's
  /// lifetime, and immortal nodes are what make the unique table
  /// lock-free (no deletion, no ABA).
  size_t gcRuns() const override { return 0; }
  void gc() override {}

  size_t uniqueLookups() const override;
  size_t uniqueHits() const override;
  size_t opCacheLookups() const override;
  size_t opCacheHits() const override;

  RawNode rawNode(uint32_t N) const override;

  /// Top-level operands whose combined reachable node count stays below
  /// this threshold run sequentially on the calling thread (task overhead
  /// would drown them). Public so tests can straddle it.
  static constexpr size_t SequentialCutoffNodes = 2048;

protected:
  uint32_t mkRaw(uint32_t Var, uint32_t Low, uint32_t High) override;
  uint32_t applyTop(Op O, uint32_t A, uint32_t B) override;
  uint32_t notTop(uint32_t F) override;
  uint32_t iteTop(uint32_t F, uint32_t G, uint32_t H) override;
  uint32_t existsTop(uint32_t F, uint32_t Cube, bool Universal) override;
  uint32_t andExistsTop(uint32_t F, uint32_t G, uint32_t Cube) override;
  uint32_t cofactorTop(uint32_t F, uint32_t Var, bool Val) override;

  // Without GC the external reference counts have no consumer.
  void ref(uint32_t) override {}
  void deref(uint32_t) override {}
  void maybeGc() override {}

private:
  /// One node. Var/Low/High are written by the creating thread before the
  /// node is published (release-CAS on its bucket head or release store
  /// of a cache/task slot) and immutable afterwards; every cross-thread
  /// path to a node id goes through a matching acquire, so plain fields
  /// are race-free. Next is the unique-table chain, traversed while other
  /// threads insert ahead of it.
  struct PNode {
    uint32_t Var;
    uint32_t Low;
    uint32_t High;
    std::atomic<uint32_t> Next;
  };

  static constexpr unsigned SegBits = 16;
  static constexpr uint32_t SegSize = 1u << SegBits;
  static constexpr size_t MaxSegs = 1u << 12; // up to 2^28 nodes
  /// Sized so chains stay short without growth (growth would need a
  /// global rendezvous, defeating the lock-free insert): 2M buckets is
  /// 8 MB and keeps the load factor under 1 up to 2M live nodes — well
  /// past the largest solver runs (XHTML-scale peaks are ~10^5..10^6).
  static constexpr size_t UtBuckets = 1u << 21;
  static constexpr size_t CacheSlotCount = 1u << 18;
  /// Cofactor subproblems fork as stealable tasks only in the top levels
  /// of the recursion; below this depth the branching has already
  /// produced far more tasks than workers.
  static constexpr unsigned MaxForkDepth = 12;

  /// Seqlock'd cache entry (Boehm's seqlock construction: acquire-load of
  /// Ver, relaxed field loads, acquire fence, relaxed re-load of Ver).
  struct CacheSlot {
    std::atomic<uint32_t> Ver{0};   ///< even = stable, odd = being written
    std::atomic<uint64_t> K1{~0ull}; ///< (A << 32) | B — A=~0 marks empty
    std::atomic<uint64_t> K2{0};    ///< (OpTag << 32) | C
    std::atomic<uint32_t> Res{0};
  };

  struct alignas(64) StatShard {
    std::atomic<uint64_t> UniqueLookups{0};
    std::atomic<uint64_t> UniqueHits{0};
    std::atomic<uint64_t> OpLookups{0};
    std::atomic<uint64_t> OpHits{0};
  };
  static constexpr size_t StatShardCount = 16;

  struct Task;
  struct WorkCtx;

  PNode &node(uint32_t N) const;
  void ensureSegment(uint32_t SegIdx);
  uint32_t mkP(uint32_t Var, uint32_t Low, uint32_t High);

  bool cacheGet(uint8_t Tag, uint32_t A, uint32_t B, uint32_t C,
                uint32_t &Result);
  void cachePut(uint8_t Tag, uint32_t A, uint32_t B, uint32_t C,
                uint32_t Result);
  StatShard &statShard();

  uint32_t applyRecP(Op O, uint32_t A, uint32_t B, WorkCtx *W,
                     unsigned Depth);
  uint32_t notRecP(uint32_t F);
  uint32_t iteRecP(uint32_t F, uint32_t G, uint32_t H);
  uint32_t existsRecP(uint32_t F, uint32_t Cube, bool Universal);
  uint32_t andExistsRecP(uint32_t F, uint32_t G, uint32_t Cube, WorkCtx *W,
                         unsigned Depth);
  uint32_t cofactorRecP(uint32_t F, uint32_t Var, bool Val);

  void runTask(Task &T, WorkCtx *W);
  uint32_t joinTask(Task &T, WorkCtx *W);
  Task *stealAny(WorkCtx *Self);
  uint32_t runRoot(Task &Root);
  bool bigEnough(uint32_t A, uint32_t B) const;
  void ensurePool();

  std::unique_ptr<std::atomic<PNode *>[]> Segs;
  std::mutex SegMu; ///< guards segment allocation only
  std::atomic<uint32_t> NextId{2};
  std::atomic<size_t> Published{0}; ///< nodes visible in the unique table
  std::unique_ptr<std::atomic<uint32_t>[]> Heads;
  std::unique_ptr<CacheSlot[]> Cache;
  StatShard Stats[StatShardCount];

  unsigned ThreadCount;
  std::unique_ptr<WorkerPool> Pool; ///< created on first large operation
  std::vector<std::unique_ptr<WorkCtx>> Ctxs;
};

} // namespace xsa

#endif // XSA_BDD_PARALLEL_H
