//===- Bdd.cpp - BDD package: interface + serial backend -------------------===//

#include "bdd/Bdd.h"

#include "bdd/Parallel.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_set>

using namespace xsa;

//===----------------------------------------------------------------------===//
// Backend naming and factory
//===----------------------------------------------------------------------===//

const char *xsa::bddBackendName(BddBackendKind K) {
  switch (K) {
  case BddBackendKind::Serial:
    return "serial";
  case BddBackendKind::Parallel:
    return "parallel";
  }
  return "serial";
}

bool xsa::parseBddBackend(const std::string &Name, BddBackendKind &K) {
  if (Name == "serial") {
    K = BddBackendKind::Serial;
    return true;
  }
  if (Name == "parallel") {
    K = BddBackendKind::Parallel;
    return true;
  }
  return false;
}

std::unique_ptr<BddManager> xsa::makeBddManager(BddBackendKind K,
                                                unsigned InitialVars,
                                                unsigned Threads) {
  if (K == BddBackendKind::Parallel)
    return std::make_unique<ParallelBddManager>(InitialVars, Threads);
  return std::make_unique<SerialBddManager>(InitialVars);
}

//===----------------------------------------------------------------------===//
// Bdd handle
//===----------------------------------------------------------------------===//

Bdd::Bdd(BddManager *Mgr, uint32_t Node, bool AlreadyReferenced)
    : Mgr(Mgr), Node(Node) {
  if (Mgr && !AlreadyReferenced)
    Mgr->ref(Node);
}

Bdd::Bdd(const Bdd &O) : Mgr(O.Mgr), Node(O.Node) {
  if (Mgr)
    Mgr->ref(Node);
}

Bdd::Bdd(Bdd &&O) noexcept : Mgr(O.Mgr), Node(O.Node) { O.Mgr = nullptr; }

Bdd &Bdd::operator=(const Bdd &O) {
  if (this == &O)
    return *this;
  if (O.Mgr)
    O.Mgr->ref(O.Node);
  if (Mgr)
    Mgr->deref(Node);
  Mgr = O.Mgr;
  Node = O.Node;
  return *this;
}

Bdd &Bdd::operator=(Bdd &&O) noexcept {
  if (this == &O)
    return *this;
  if (Mgr)
    Mgr->deref(Node);
  Mgr = O.Mgr;
  Node = O.Node;
  O.Mgr = nullptr;
  return *this;
}

Bdd::~Bdd() {
  if (Mgr)
    Mgr->deref(Node);
}

bool Bdd::isOne() const { return Mgr && Node == 1; }
bool Bdd::isZero() const { return Mgr && Node == 0; }

Bdd Bdd::operator&(const Bdd &O) const {
  assert(Mgr && Mgr == O.Mgr && "operands from different managers");
  Mgr->maybeGc();
  return Bdd(Mgr, Mgr->applyTop(BddManager::Op::And, Node, O.Node), false);
}

Bdd Bdd::operator|(const Bdd &O) const {
  assert(Mgr && Mgr == O.Mgr && "operands from different managers");
  Mgr->maybeGc();
  return Bdd(Mgr, Mgr->applyTop(BddManager::Op::Or, Node, O.Node), false);
}

Bdd Bdd::operator^(const Bdd &O) const {
  assert(Mgr && Mgr == O.Mgr && "operands from different managers");
  Mgr->maybeGc();
  return Bdd(Mgr, Mgr->applyTop(BddManager::Op::Xor, Node, O.Node), false);
}

Bdd Bdd::operator!() const {
  assert(Mgr && "invalid handle");
  Mgr->maybeGc();
  return Bdd(Mgr, Mgr->notTop(Node), false);
}

Bdd Bdd::implies(const Bdd &O) const { return (!*this) | O; }

Bdd Bdd::iff(const Bdd &O) const { return !(*this ^ O); }

size_t Bdd::nodeCount() const {
  if (!Mgr)
    return 0;
  std::unordered_set<uint32_t> Seen;
  std::vector<uint32_t> Stack{Node};
  size_t Internal = 0;
  while (!Stack.empty()) {
    uint32_t N = Stack.back();
    Stack.pop_back();
    if (!Seen.insert(N).second || N <= 1)
      continue;
    ++Internal;
    BddManager::RawNode Nd = Mgr->rawNode(N);
    Stack.push_back(Nd.Low);
    Stack.push_back(Nd.High);
  }
  return Internal + 1; // all terminals count as one
}

//===----------------------------------------------------------------------===//
// BddManager: generic algorithms over the backend seam
//===----------------------------------------------------------------------===//

BddManager::~BddManager() = default;

void BddManager::ensureVars(unsigned NewNumVars) {
  while (NumVars < NewNumVars) {
    VarNodes.push_back(mkRaw(NumVars, ZeroNode, OneNode));
    ++NumVars;
  }
}

uint32_t BddManager::var2Node(unsigned Var) {
  ensureVars(Var + 1);
  return VarNodes[Var];
}

Bdd BddManager::one() { return wrap(OneNode); }
Bdd BddManager::zero() { return wrap(ZeroNode); }
Bdd BddManager::var(unsigned Var) { return wrap(var2Node(Var)); }
Bdd BddManager::nvar(unsigned Var) {
  unsigned V = var2Node(Var);
  return wrap(notTop(V));
}

Bdd BddManager::ite(const Bdd &F, const Bdd &G, const Bdd &H) {
  assert(F.manager() == this && G.manager() == this && H.manager() == this);
  maybeGc();
  return wrap(iteTop(F.node(), G.node(), H.node()));
}

Bdd BddManager::exists(const Bdd &F, const Bdd &Cube) {
  assert(F.manager() == this && Cube.manager() == this);
  maybeGc();
  return wrap(existsTop(F.node(), Cube.node(), /*Universal=*/false));
}

Bdd BddManager::forall(const Bdd &F, const Bdd &Cube) {
  assert(F.manager() == this && Cube.manager() == this);
  maybeGc();
  return wrap(existsTop(F.node(), Cube.node(), /*Universal=*/true));
}

Bdd BddManager::andExists(const Bdd &F, const Bdd &G, const Bdd &Cube) {
  assert(F.manager() == this && G.manager() == this && Cube.manager() == this);
  maybeGc();
  return wrap(andExistsTop(F.node(), G.node(), Cube.node()));
}

Bdd BddManager::cube(const std::vector<unsigned> &Vars) {
  std::vector<unsigned> Sorted(Vars);
  std::sort(Sorted.begin(), Sorted.end());
  Sorted.erase(std::unique(Sorted.begin(), Sorted.end()), Sorted.end());
  uint32_t R = OneNode;
  for (auto It = Sorted.rbegin(); It != Sorted.rend(); ++It) {
    ensureVars(*It + 1);
    R = mkRaw(*It, ZeroNode, R);
  }
  return wrap(R);
}

Bdd BddManager::cofactor(const Bdd &F, unsigned Var, bool Val) {
  assert(F.manager() == this);
  maybeGc();
  return wrap(cofactorTop(F.node(), Var, Val));
}

Bdd BddManager::restrict(
    const Bdd &F, const std::vector<std::pair<unsigned, bool>> &Assignment) {
  assert(F.manager() == this);
  maybeGc();
  uint32_t R = F.node();
  for (const auto &[Var, Val] : Assignment)
    R = cofactorTop(R, Var, Val);
  return wrap(R);
}

Bdd BddManager::remapVars(const Bdd &F, const std::vector<unsigned> &VarMap) {
  assert(F.manager() == this);
  maybeGc();
  std::unordered_map<uint32_t, uint32_t> Memo;
  auto Rec = [&](auto &&Self, uint32_t N) -> uint32_t {
    if (N <= 1)
      return N;
    auto It = Memo.find(N);
    if (It != Memo.end())
      return It->second;
    const RawNode Nd = rawNode(N);
    assert(Nd.Var < VarMap.size() && "remap without a mapping for a var");
    unsigned NewVar = VarMap[Nd.Var];
    ensureVars(NewVar + 1);
    uint32_t R = mkRaw(NewVar, Self(Self, Nd.Low), Self(Self, Nd.High));
    Memo.emplace(N, R);
    return R;
  };
  return wrap(Rec(Rec, F.node()));
}

bool BddManager::satOne(const Bdd &F, std::vector<bool> &Values,
                        std::vector<bool> *DontCare) {
  assert(F.manager() == this);
  Values.assign(NumVars, false);
  if (DontCare)
    DontCare->assign(NumVars, true);
  if (F.node() == 0)
    return false;
  uint32_t N = F.node();
  while (N > 1) {
    const RawNode Nd = rawNode(N);
    // Prefer the low branch: variables default to false, which for the
    // solver's lean encoding means fewer obligations — smaller models
    // (§7.2 asks for minimal satisfying trees).
    bool TakeHigh = Nd.Low == 0;
    Values[Nd.Var] = TakeHigh;
    if (DontCare)
      (*DontCare)[Nd.Var] = false;
    N = TakeHigh ? Nd.High : Nd.Low;
  }
  assert(N == 1 && "reduced BDD path must end in a terminal");
  return true;
}

double BddManager::satCountRec(
    uint32_t F, std::unordered_map<uint32_t, double> &Memo) const {
  if (F == 0)
    return 0.0;
  if (F == 1)
    return 1.0;
  auto It = Memo.find(F);
  if (It != Memo.end())
    return It->second;
  const RawNode Nd = rawNode(F);
  auto VarOf = [&](uint32_t N) {
    return N <= 1 ? NumVars : rawNode(N).Var;
  };
  double CL = satCountRec(Nd.Low, Memo) *
              std::pow(2.0, double(VarOf(Nd.Low)) - Nd.Var - 1);
  double CH = satCountRec(Nd.High, Memo) *
              std::pow(2.0, double(VarOf(Nd.High)) - Nd.Var - 1);
  double C = CL + CH;
  Memo.emplace(F, C);
  return C;
}

double BddManager::satCount(const Bdd &F, unsigned OverVars) {
  assert(F.manager() == this);
  assert(OverVars <= NumVars && "count domain exceeds variable universe");
  // Counting is done over the full universe, then scaled down.
  std::unordered_map<uint32_t, double> Memo;
  uint32_t N = F.node();
  double TopVar = N <= 1 ? NumVars : rawNode(N).Var;
  double C = satCountRec(N, Memo) * std::pow(2.0, TopVar);
  return C / std::pow(2.0, double(NumVars) - OverVars);
}

std::vector<unsigned> BddManager::support(const Bdd &F) {
  std::unordered_set<uint32_t> Seen;
  std::vector<uint32_t> Stack{F.node()};
  std::vector<bool> InSupport(NumVars, false);
  while (!Stack.empty()) {
    uint32_t N = Stack.back();
    Stack.pop_back();
    if (N <= 1 || !Seen.insert(N).second)
      continue;
    const RawNode Nd = rawNode(N);
    InSupport[Nd.Var] = true;
    Stack.push_back(Nd.Low);
    Stack.push_back(Nd.High);
  }
  std::vector<unsigned> Result;
  for (unsigned V = 0; V < NumVars; ++V)
    if (InSupport[V])
      Result.push_back(V);
  return Result;
}

std::string BddManager::toDot(const Bdd &F,
                              const std::vector<std::string> *VarNames) {
  std::ostringstream OS;
  OS << "digraph bdd {\n";
  std::unordered_set<uint32_t> Seen;
  std::vector<uint32_t> Stack{F.node()};
  while (!Stack.empty()) {
    uint32_t N = Stack.back();
    Stack.pop_back();
    if (!Seen.insert(N).second)
      continue;
    if (N <= 1) {
      OS << "  n" << N << " [shape=box,label=\"" << N << "\"];\n";
      continue;
    }
    const RawNode Nd = rawNode(N);
    std::string Label = VarNames && Nd.Var < VarNames->size()
                            ? (*VarNames)[Nd.Var]
                            : "x" + std::to_string(Nd.Var);
    OS << "  n" << N << " [label=\"" << Label << "\"];\n";
    OS << "  n" << N << " -> n" << Nd.Low << " [style=dashed];\n";
    OS << "  n" << N << " -> n" << Nd.High << ";\n";
    Stack.push_back(Nd.Low);
    Stack.push_back(Nd.High);
  }
  OS << "}\n";
  return OS.str();
}

//===----------------------------------------------------------------------===//
// SerialBddManager: node store and unique table
//===----------------------------------------------------------------------===//

static constexpr uint32_t InvalidNode = ~0u;
static constexpr size_t CacheSize = 1u << 18; // direct-mapped entries

SerialBddManager::SerialBddManager(unsigned InitialVars) {
  Nodes.reserve(1 << 14);
  // Terminal nodes 0 (false) and 1 (true); permanently referenced.
  Nodes.push_back({TerminalVar, 0, 0, InvalidNode, 1, false});
  Nodes.push_back({TerminalVar, 1, 1, InvalidNode, 1, false});
  NodeCount = 2;
  PeakNodeCount = 2;
  GcThreshold = 1u << 20;
  UniqueTable.assign(1u << 14, InvalidNode);
  OpCache.resize(CacheSize);
  ensureVars(InitialVars);
}

SerialBddManager::~SerialBddManager() = default;

static inline size_t hash3(uint32_t A, uint32_t B, uint32_t C) {
  uint64_t H = (uint64_t(A) * 0x9e3779b97f4a7c15ull) ^
               (uint64_t(B) * 0xc2b2ae3d27d4eb4full) ^
               (uint64_t(C) * 0x165667b19e3779f9ull);
  H ^= H >> 29;
  return static_cast<size_t>(H);
}

uint32_t SerialBddManager::allocNode() {
  if (FreeList != InvalidNode) {
    uint32_t N = FreeList;
    FreeList = Nodes[N].Next;
    return N;
  }
  Nodes.push_back({});
  return static_cast<uint32_t>(Nodes.size() - 1);
}

void SerialBddManager::growUniqueTable() {
  size_t NewSize = UniqueTable.size() * 2;
  UniqueTable.assign(NewSize, InvalidNode);
  for (uint32_t N = 2; N < Nodes.size(); ++N) {
    Node &Nd = Nodes[N];
    if (Nd.Var == TerminalVar) // terminal or free slot
      continue;
    size_t Bucket = hash3(Nd.Var, Nd.Low, Nd.High) & (NewSize - 1);
    Nd.Next = UniqueTable[Bucket];
    UniqueTable[Bucket] = N;
  }
}

uint32_t SerialBddManager::mk(uint32_t Var, uint32_t Low, uint32_t High) {
  if (Low == High)
    return Low;
  assert(Nodes[Low].Var == TerminalVar || Nodes[Low].Var > Var);
  assert(Nodes[High].Var == TerminalVar || Nodes[High].Var > Var);
  size_t Mask = UniqueTable.size() - 1;
  size_t Bucket = hash3(Var, Low, High) & Mask;
  ++UniqueLookups;
  for (uint32_t N = UniqueTable[Bucket]; N != InvalidNode; N = Nodes[N].Next) {
    const Node &Nd = Nodes[N];
    if (Nd.Var == Var && Nd.Low == Low && Nd.High == High) {
      ++UniqueHits;
      return N;
    }
  }
  uint32_t N = allocNode();
  Nodes[N] = {Var, Low, High, UniqueTable[Bucket], 0, false};
  UniqueTable[Bucket] = N;
  ++NodeCount;
  PeakNodeCount = std::max(PeakNodeCount, NodeCount);
  if (NodeCount > UniqueTable.size() * 3 / 4) {
    growUniqueTable();
  }
  return N;
}

//===----------------------------------------------------------------------===//
// Garbage collection
//===----------------------------------------------------------------------===//

void SerialBddManager::markRecursive(uint32_t N) {
  while (N > 1 && !Nodes[N].Mark) {
    Nodes[N].Mark = true;
    markRecursive(Nodes[N].Low);
    N = Nodes[N].High;
  }
}

void SerialBddManager::gc() {
  ++GcRuns;
  // Mark phase: externally referenced nodes and the variable nodes are roots.
  for (uint32_t N = 2; N < Nodes.size(); ++N)
    if (Nodes[N].Var != TerminalVar && Nodes[N].Refs > 0)
      markRecursive(N);
  for (uint32_t V : VarNodes)
    markRecursive(V);
  // Sweep phase: rebuild the unique table with the surviving nodes only.
  std::fill(UniqueTable.begin(), UniqueTable.end(), InvalidNode);
  FreeList = InvalidNode;
  size_t Mask = UniqueTable.size() - 1;
  NodeCount = 2;
  for (uint32_t N = 2; N < Nodes.size(); ++N) {
    Node &Nd = Nodes[N];
    if (Nd.Var == TerminalVar)
      continue; // already free
    if (!Nd.Mark) {
      Nd.Var = TerminalVar;
      Nd.Next = FreeList;
      FreeList = N;
      continue;
    }
    Nd.Mark = false;
    size_t Bucket = hash3(Nd.Var, Nd.Low, Nd.High) & Mask;
    Nd.Next = UniqueTable[Bucket];
    UniqueTable[Bucket] = N;
    ++NodeCount;
  }
  clearCaches();
}

void SerialBddManager::maybeGc() {
  if (!GcEnabled || NodeCount <= GcThreshold)
    return;
  gc();
  // If most nodes survived, grow the threshold so we do not thrash.
  if (NodeCount > GcThreshold * 4 / 5)
    GcThreshold *= 2;
}

//===----------------------------------------------------------------------===//
// Operation cache
//===----------------------------------------------------------------------===//

SerialBddManager::CacheEntry &
SerialBddManager::cacheSlot(uint8_t OpTag, uint32_t A, uint32_t B,
                            uint32_t C) {
  uint64_t H = hash3(A, B, C) * 0x2545f4914f6cdd1dull + OpTag;
  return OpCache[H & (CacheSize - 1)];
}

void SerialBddManager::clearCaches() {
  std::fill(OpCache.begin(), OpCache.end(), CacheEntry{});
}

namespace {
constexpr uint8_t TagNot = 200;
constexpr uint8_t TagIte = 201;
constexpr uint8_t TagExists = 202;
constexpr uint8_t TagForall = 203;
constexpr uint8_t TagAndExists = 204;
constexpr uint8_t TagCofactor0 = 205;
constexpr uint8_t TagCofactor1 = 206;
} // namespace

//===----------------------------------------------------------------------===//
// Core recursive algorithms
//===----------------------------------------------------------------------===//

uint32_t SerialBddManager::notRec(uint32_t F) {
  if (F <= 1)
    return F ^ 1;
  {
    ++OpCacheLookups;
    CacheEntry &E = cacheSlot(TagNot, F, 0, 0);
    if (E.OpTag == TagNot && E.A == F && E.B == 0 && E.C == 0) {
      ++OpCacheHits;
      return E.Result;
    }
  }
  const Node Nd = Nodes[F];
  uint32_t R = mk(Nd.Var, notRec(Nd.Low), notRec(Nd.High));
  cacheSlot(TagNot, F, 0, 0) = {F, 0, 0, TagNot, R};
  return R;
}

uint32_t SerialBddManager::applyRec(Op O, uint32_t A, uint32_t B) {
  // Terminal cases.
  switch (O) {
  case Op::And:
    if (A == B)
      return A;
    if (A == 0 || B == 0)
      return 0;
    if (A == 1)
      return B;
    if (B == 1)
      return A;
    break;
  case Op::Or:
    if (A == B)
      return A;
    if (A == 1 || B == 1)
      return 1;
    if (A == 0)
      return B;
    if (B == 0)
      return A;
    break;
  case Op::Xor:
    if (A == B)
      return 0;
    if (A == 0)
      return B;
    if (B == 0)
      return A;
    if (A == 1)
      return notRec(B);
    if (B == 1)
      return notRec(A);
    break;
  }
  if (A > B)
    std::swap(A, B); // commutative: canonicalize for the cache
  uint8_t Tag = static_cast<uint8_t>(O);
  {
    ++OpCacheLookups;
    CacheEntry &E = cacheSlot(Tag, A, B, 0);
    if (E.OpTag == Tag && E.A == A && E.B == B && E.C == 0) {
      ++OpCacheHits;
      return E.Result;
    }
  }
  const Node NA = Nodes[A], NB = Nodes[B];
  uint32_t V = std::min(NA.Var, NB.Var);
  uint32_t A0 = NA.Var == V ? NA.Low : A;
  uint32_t A1 = NA.Var == V ? NA.High : A;
  uint32_t B0 = NB.Var == V ? NB.Low : B;
  uint32_t B1 = NB.Var == V ? NB.High : B;
  uint32_t R0 = applyRec(O, A0, B0);
  uint32_t R1 = applyRec(O, A1, B1);
  uint32_t R = mk(V, R0, R1);
  cacheSlot(Tag, A, B, 0) = {A, B, 0, Tag, R};
  return R;
}

uint32_t SerialBddManager::iteRec(uint32_t F, uint32_t G, uint32_t H) {
  if (F == 1)
    return G;
  if (F == 0)
    return H;
  if (G == H)
    return G;
  if (G == 1 && H == 0)
    return F;
  if (G == 0 && H == 1)
    return notRec(F);
  {
    ++OpCacheLookups;
    CacheEntry &E = cacheSlot(TagIte, F, G, H);
    if (E.OpTag == TagIte && E.A == F && E.B == G && E.C == H) {
      ++OpCacheHits;
      return E.Result;
    }
  }
  const Node NF = Nodes[F], NG = Nodes[G], NH = Nodes[H];
  uint32_t V = NF.Var;
  if (NG.Var != TerminalVar)
    V = std::min(V, NG.Var);
  if (NH.Var != TerminalVar)
    V = std::min(V, NH.Var);
  uint32_t F0 = NF.Var == V ? NF.Low : F, F1 = NF.Var == V ? NF.High : F;
  uint32_t G0 = NG.Var == V ? NG.Low : G, G1 = NG.Var == V ? NG.High : G;
  uint32_t H0 = NH.Var == V ? NH.Low : H, H1 = NH.Var == V ? NH.High : H;
  uint32_t R = mk(V, iteRec(F0, G0, H0), iteRec(F1, G1, H1));
  cacheSlot(TagIte, F, G, H) = {F, G, H, TagIte, R};
  return R;
}

uint32_t SerialBddManager::existsRec(uint32_t F, uint32_t Cube,
                                     bool Universal) {
  if (F <= 1)
    return F;
  // Skip quantified variables above F's top variable.
  uint32_t FVar = Nodes[F].Var;
  while (Cube > 1 && Nodes[Cube].Var < FVar)
    Cube = Nodes[Cube].High;
  if (Cube <= 1)
    return F;
  uint8_t Tag = Universal ? TagForall : TagExists;
  {
    ++OpCacheLookups;
    CacheEntry &E = cacheSlot(Tag, F, Cube, 0);
    if (E.OpTag == Tag && E.A == F && E.B == Cube && E.C == 0) {
      ++OpCacheHits;
      return E.Result;
    }
  }
  const Node NF = Nodes[F];
  uint32_t R;
  if (Nodes[Cube].Var == NF.Var) {
    uint32_t NextCube = Nodes[Cube].High;
    uint32_t R0 = existsRec(NF.Low, NextCube, Universal);
    // Short-circuit: OR with 1 (or AND with 0) is absorbing.
    if (!Universal && R0 == 1)
      R = 1;
    else if (Universal && R0 == 0)
      R = 0;
    else {
      uint32_t R1 = existsRec(NF.High, NextCube, Universal);
      R = applyRec(Universal ? Op::And : Op::Or, R0, R1);
    }
  } else {
    R = mk(NF.Var, existsRec(NF.Low, Cube, Universal),
           existsRec(NF.High, Cube, Universal));
  }
  cacheSlot(Tag, F, Cube, 0) = {F, Cube, 0, Tag, R};
  return R;
}

uint32_t SerialBddManager::andExistsRec(uint32_t F, uint32_t G,
                                        uint32_t Cube) {
  if (F == 0 || G == 0)
    return 0;
  if (F == 1)
    return existsRec(G, Cube, false);
  if (G == 1 || F == G)
    return existsRec(F, Cube, false);
  if (Cube <= 1)
    return applyRec(Op::And, F, G);
  if (F > G)
    std::swap(F, G);
  const Node NF = Nodes[F], NG = Nodes[G];
  uint32_t V = std::min(NF.Var, NG.Var);
  while (Cube > 1 && Nodes[Cube].Var < V)
    Cube = Nodes[Cube].High;
  if (Cube <= 1)
    return applyRec(Op::And, F, G);
  {
    ++OpCacheLookups;
    CacheEntry &E = cacheSlot(TagAndExists, F, G, Cube);
    if (E.OpTag == TagAndExists && E.A == F && E.B == G && E.C == Cube) {
      ++OpCacheHits;
      return E.Result;
    }
  }
  uint32_t F0 = NF.Var == V ? NF.Low : F, F1 = NF.Var == V ? NF.High : F;
  uint32_t G0 = NG.Var == V ? NG.Low : G, G1 = NG.Var == V ? NG.High : G;
  uint32_t R;
  if (Nodes[Cube].Var == V) {
    uint32_t NextCube = Nodes[Cube].High;
    uint32_t R0 = andExistsRec(F0, G0, NextCube);
    if (R0 == 1)
      R = 1;
    else
      R = applyRec(Op::Or, R0, andExistsRec(F1, G1, NextCube));
  } else {
    R = mk(V, andExistsRec(F0, G0, Cube), andExistsRec(F1, G1, Cube));
  }
  cacheSlot(TagAndExists, F, G, Cube) = {F, G, Cube, TagAndExists, R};
  return R;
}

uint32_t SerialBddManager::cofactorRec(uint32_t F, uint32_t Var, bool Val) {
  if (F <= 1 || Nodes[F].Var > Var)
    return F;
  const Node NF = Nodes[F];
  if (NF.Var == Var)
    return Val ? NF.High : NF.Low;
  uint8_t Tag = Val ? TagCofactor1 : TagCofactor0;
  {
    ++OpCacheLookups;
    CacheEntry &E = cacheSlot(Tag, F, Var, 0);
    if (E.OpTag == Tag && E.A == F && E.B == Var && E.C == 0) {
      ++OpCacheHits;
      return E.Result;
    }
  }
  uint32_t R = mk(NF.Var, cofactorRec(NF.Low, Var, Val),
                  cofactorRec(NF.High, Var, Val));
  cacheSlot(Tag, F, Var, 0) = {F, Var, 0, Tag, R};
  return R;
}
