//===- Snapshot.h - Portable BDD snapshots -----------------------*- C++ -*-===//
//
// Part of the xsa project (PLDI 2007 XPath/type analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A BddSnapshot is a manager-independent serialization of one BDD: a
/// node table in topological order (children before parents) whose
/// variables carry whatever external numbering the producer chose. The
/// solver exports its fixpoint sets over *lean-member indices* — bit I
/// of the lean, not the manager's interleaved variable 2I — so a
/// snapshot taken in one worker's BddManager can be imported into any
/// other manager whose variables mean the same lean members (identical
/// lean signature). Import rebuilds through the manager's public
/// hash-consing operations, so the result is canonical in the consumer.
///
/// Snapshots also serialize to a compact text line (and back) for the
/// versioned persistent cache, where malformed input must be detected,
/// never trusted.
///
//===----------------------------------------------------------------------===//

#ifndef XSA_BDD_SNAPSHOT_H
#define XSA_BDD_SNAPSHOT_H

#include "bdd/Bdd.h"

#include <cstdint>
#include <string>
#include <vector>

namespace xsa {

struct BddSnapshot {
  /// One internal node. Low/High reference the two terminals (0 = false,
  /// 1 = true) or an *earlier* table entry as index + 2, so the table is
  /// topologically ordered by construction.
  struct Node {
    uint32_t Var;
    uint32_t Low;
    uint32_t High;
  };
  std::vector<Node> Nodes;
  /// Root reference, same encoding as Low/High (0, 1, or index + 2).
  uint32_t Root = 0;

  size_t nodeCount() const { return Nodes.size(); }

  /// Applies \p Map to every variable (e.g. manager var 2I → lean bit I
  /// on export, and back on import). Map must be injective and
  /// monotone on the snapshot's variables, or the table would no longer
  /// describe an ordered BDD.
  template <typename Fn> void mapVars(Fn Map) {
    for (Node &N : Nodes)
      N.Var = Map(N.Var);
  }

  /// Compact single-line text form: "root n var low high var low high
  /// ...". decode() rejects anything that is not a well-formed,
  /// topologically ordered table (untrusted cache-file input).
  std::string encode() const;
  static bool decode(const std::string &Text, BddSnapshot &Out);
};

/// Serializes \p F (which must belong to \p M) as a snapshot. Variables
/// are exported verbatim; use mapVars for an external numbering.
BddSnapshot exportSnapshot(BddManager &M, const Bdd &F);

/// Rebuilds a snapshot inside \p M through its public operations
/// (variables are created as needed). For snapshots produced by
/// exportSnapshot the result is the same function over the same
/// variable numbering. \p MapVar (when set) renumbers variables on the
/// fly — the solver widens stored lean-member indices to its
/// interleaved unprimed copies this way, without cloning the table; it
/// must be injective and monotone like BddSnapshot::mapVars's map.
Bdd importSnapshot(BddManager &M, const BddSnapshot &S,
                   unsigned (*MapVar)(unsigned) = nullptr);

} // namespace xsa

#endif // XSA_BDD_SNAPSHOT_H
