//===- Parallel.cpp - Work-stealing parallel BDD backend -------------------===//

#include "bdd/Parallel.h"

#include "support/WorkerPool.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <unordered_set>

using namespace xsa;

static constexpr uint32_t InvalidNode = ~0u;

namespace {
// Cache tags, shared numbering with the serial backend (apply uses the Op
// value itself, 0..2).
constexpr uint8_t TagNot = 200;
constexpr uint8_t TagIte = 201;
constexpr uint8_t TagExists = 202;
constexpr uint8_t TagForall = 203;
constexpr uint8_t TagAndExists = 204;
constexpr uint8_t TagCofactor0 = 205;
constexpr uint8_t TagCofactor1 = 206;

inline size_t hash3(uint32_t A, uint32_t B, uint32_t C) {
  uint64_t H = (uint64_t(A) * 0x9e3779b97f4a7c15ull) ^
               (uint64_t(B) * 0xc2b2ae3d27d4eb4full) ^
               (uint64_t(C) * 0x165667b19e3779f9ull);
  H ^= H >> 29;
  return static_cast<size_t>(H);
}
} // namespace

//===----------------------------------------------------------------------===//
// Tasks and per-worker deques
//===----------------------------------------------------------------------===//

/// A forked cofactor subproblem. Lives on the forking worker's stack: the
/// forker always joins before its frame returns, so the lifetime is
/// naturally bounded. Result doubles as the done flag (InvalidNode =
/// pending); the release store publishes the nodes the subcomputation
/// created to the acquiring joiner.
struct ParallelBddManager::Task {
  enum Kind : uint8_t { Apply, AndExists } K = Apply;
  uint8_t OpTag = 0; ///< Op value when K == Apply
  uint32_t A = 0;
  uint32_t B = 0;
  uint32_t C = 0; ///< cube when K == AndExists
  uint16_t Depth = 0;
  std::atomic<uint32_t> Result{InvalidNode};
};

/// One worker's task deque. Owner pushes/pops at the back (LIFO, matching
/// the fork/join nesting); thieves take from the front (oldest = biggest
/// subproblems). A plain mutex: forks happen only in the top MaxForkDepth
/// recursion levels, so contention on the deque is not the hot path.
struct alignas(64) ParallelBddManager::WorkCtx {
  unsigned Index = 0;
  std::mutex Mu;
  std::vector<Task *> Dq;

  void push(Task *T) {
    std::lock_guard<std::mutex> L(Mu);
    Dq.push_back(T);
  }
  /// Pops \p T only if it is still the newest entry (the fork/join
  /// discipline guarantees the joined task is at the back unless stolen).
  bool popSpecific(Task *T) {
    std::lock_guard<std::mutex> L(Mu);
    if (!Dq.empty() && Dq.back() == T) {
      Dq.pop_back();
      return true;
    }
    return false;
  }
  Task *stealOldest() {
    std::lock_guard<std::mutex> L(Mu);
    if (Dq.empty())
      return nullptr;
    Task *T = Dq.front();
    Dq.erase(Dq.begin());
    return T;
  }
};

//===----------------------------------------------------------------------===//
// Construction / node store
//===----------------------------------------------------------------------===//

ParallelBddManager::ParallelBddManager(unsigned InitialVars,
                                       unsigned Threads) {
  ThreadCount = Threads ? Threads : std::thread::hardware_concurrency();
  ThreadCount = std::min(std::max(ThreadCount, 1u), 64u);

  Segs = std::make_unique<std::atomic<PNode *>[]>(MaxSegs);
  for (size_t I = 0; I < MaxSegs; ++I)
    Segs[I].store(nullptr, std::memory_order_relaxed);
  Segs[0].store(new PNode[SegSize], std::memory_order_relaxed);

  Heads = std::make_unique<std::atomic<uint32_t>[]>(UtBuckets);
  for (size_t I = 0; I < UtBuckets; ++I)
    Heads[I].store(InvalidNode, std::memory_order_relaxed);

  Cache = std::make_unique<CacheSlot[]>(CacheSlotCount);

  // Terminal nodes 0 (false) and 1 (true).
  PNode *Seg0 = Segs[0].load(std::memory_order_relaxed);
  Seg0[0].Var = TerminalVar;
  Seg0[0].Low = 0;
  Seg0[0].High = 0;
  Seg0[0].Next.store(InvalidNode, std::memory_order_relaxed);
  Seg0[1].Var = TerminalVar;
  Seg0[1].Low = 1;
  Seg0[1].High = 1;
  Seg0[1].Next.store(InvalidNode, std::memory_order_relaxed);

  ensureVars(InitialVars);
}

ParallelBddManager::~ParallelBddManager() {
  Pool.reset(); // joins workers before the store goes away
  for (size_t I = 0; I < MaxSegs; ++I)
    delete[] Segs[I].load(std::memory_order_relaxed);
}

ParallelBddManager::PNode &ParallelBddManager::node(uint32_t N) const {
  PNode *Seg = Segs[N >> SegBits].load(std::memory_order_acquire);
  return Seg[N & (SegSize - 1)];
}

void ParallelBddManager::ensureSegment(uint32_t SegIdx) {
  if (Segs[SegIdx].load(std::memory_order_acquire))
    return;
  std::lock_guard<std::mutex> L(SegMu);
  if (!Segs[SegIdx].load(std::memory_order_relaxed))
    Segs[SegIdx].store(new PNode[SegSize], std::memory_order_release);
}

BddManager::RawNode ParallelBddManager::rawNode(uint32_t N) const {
  const PNode &Nd = node(N);
  return {Nd.Var, Nd.Low, Nd.High};
}

size_t ParallelBddManager::numNodes() const {
  return Published.load(std::memory_order_relaxed) + 2;
}

size_t ParallelBddManager::peakNodes() const { return numNodes(); }

ParallelBddManager::StatShard &ParallelBddManager::statShard() {
  static std::atomic<unsigned> NextSlot{0};
  static thread_local unsigned Slot =
      NextSlot.fetch_add(1, std::memory_order_relaxed);
  return Stats[Slot % StatShardCount];
}

// With <= StatShardCount threads each shard has a single writer, so a
// plain load+store beats the locked RMW of fetch_add on the hottest
// paths (one bump per unique-table probe and per cache probe). More
// threads than shards can lose the odd increment — these are
// diagnostics, not control flow — and it is still no data race: relaxed
// atomic accesses, merely non-atomic as a read-modify-write.
static inline void bump(std::atomic<uint64_t> &C) {
  C.store(C.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
}

#define XSA_SUM_STAT(Field)                                                    \
  size_t Sum = 0;                                                              \
  for (const StatShard &S : Stats)                                             \
    Sum += S.Field.load(std::memory_order_relaxed);                            \
  return Sum

size_t ParallelBddManager::uniqueLookups() const { XSA_SUM_STAT(UniqueLookups); }
size_t ParallelBddManager::uniqueHits() const { XSA_SUM_STAT(UniqueHits); }
size_t ParallelBddManager::opCacheLookups() const { XSA_SUM_STAT(OpLookups); }
size_t ParallelBddManager::opCacheHits() const { XSA_SUM_STAT(OpHits); }

#undef XSA_SUM_STAT

uint32_t ParallelBddManager::mkP(uint32_t Var, uint32_t Low, uint32_t High) {
  if (Low == High)
    return Low;
  assert(node(Low).Var == TerminalVar || node(Low).Var > Var);
  assert(node(High).Var == TerminalVar || node(High).Var > Var);
  std::atomic<uint32_t> &Head = Heads[hash3(Var, Low, High) & (UtBuckets - 1)];
  StatShard &SS = statShard();
  bump(SS.UniqueLookups);

  uint32_t Scanned = Head.load(std::memory_order_acquire);
  for (uint32_t N = Scanned; N != InvalidNode;) {
    PNode &Nd = node(N);
    if (Nd.Var == Var && Nd.Low == Low && Nd.High == High) {
      bump(SS.UniqueHits);
      return N;
    }
    N = Nd.Next.load(std::memory_order_relaxed);
  }

  // Miss: speculatively allocate, then CAS onto the bucket head. Losing
  // a race leaks the speculative id (a hole in the store, never visible
  // through the table) — rare enough that recycling isn't worth a free
  // list.
  uint32_t N = NextId.fetch_add(1, std::memory_order_relaxed);
  if (N >= MaxSegs * SegSize) {
    std::fprintf(stderr, "xsa: parallel BDD node store exhausted\n");
    std::abort();
  }
  ensureSegment(N >> SegBits);
  PNode &Nd = node(N);
  Nd.Var = Var;
  Nd.Low = Low;
  Nd.High = High;
  uint32_t Expected = Scanned;
  Nd.Next.store(Expected, std::memory_order_relaxed);
  while (!Head.compare_exchange_weak(Expected, N, std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
    // Someone inserted ahead of us: re-scan only the new prefix
    // [Expected, Scanned) for a duplicate before retrying.
    for (uint32_t M = Expected; M != Scanned && M != InvalidNode;) {
      PNode &Md = node(M);
      if (Md.Var == Var && Md.Low == Low && Md.High == High) {
        bump(SS.UniqueHits);
        return M;
      }
      M = Md.Next.load(std::memory_order_relaxed);
    }
    Scanned = Expected;
    Nd.Next.store(Expected, std::memory_order_relaxed);
  }
  Published.fetch_add(1, std::memory_order_relaxed);
  return N;
}

uint32_t ParallelBddManager::mkRaw(uint32_t Var, uint32_t Low,
                                   uint32_t High) {
  return mkP(Var, Low, High);
}

//===----------------------------------------------------------------------===//
// Concurrent operation cache (per-slot seqlock)
//===----------------------------------------------------------------------===//

bool ParallelBddManager::cacheGet(uint8_t Tag, uint32_t A, uint32_t B,
                                  uint32_t C, uint32_t &Result) {
  StatShard &SS = statShard();
  bump(SS.OpLookups);
  uint64_t K1 = (uint64_t(A) << 32) | B;
  uint64_t K2 = (uint64_t(Tag) << 32) | C;
  uint64_t H = hash3(A, B, C) * 0x2545f4914f6cdd1dull + Tag;
  CacheSlot &S = Cache[H & (CacheSlotCount - 1)];

  uint32_t V1 = S.Ver.load(std::memory_order_acquire);
  if (V1 & 1)
    return false;
  uint64_t SK1 = S.K1.load(std::memory_order_relaxed);
  uint64_t SK2 = S.K2.load(std::memory_order_relaxed);
  uint32_t R = S.Res.load(std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_acquire);
  if (S.Ver.load(std::memory_order_relaxed) != V1)
    return false;
  if (SK1 != K1 || SK2 != K2)
    return false;
  bump(SS.OpHits);
  Result = R;
  return true;
}

void ParallelBddManager::cachePut(uint8_t Tag, uint32_t A, uint32_t B,
                                  uint32_t C, uint32_t Result) {
  uint64_t K1 = (uint64_t(A) << 32) | B;
  uint64_t K2 = (uint64_t(Tag) << 32) | C;
  uint64_t H = hash3(A, B, C) * 0x2545f4914f6cdd1dull + Tag;
  CacheSlot &S = Cache[H & (CacheSlotCount - 1)];

  uint32_t V = S.Ver.load(std::memory_order_relaxed);
  if (V & 1)
    return; // another writer owns the slot; lossy
  if (!S.Ver.compare_exchange_strong(V, V + 1, std::memory_order_acquire,
                                     std::memory_order_relaxed))
    return;
  S.K1.store(K1, std::memory_order_relaxed);
  S.K2.store(K2, std::memory_order_relaxed);
  S.Res.store(Result, std::memory_order_relaxed);
  S.Ver.store(V + 2, std::memory_order_release);
}

//===----------------------------------------------------------------------===//
// Work stealing
//===----------------------------------------------------------------------===//

void ParallelBddManager::ensurePool() {
  if (Pool)
    return;
  Ctxs.clear();
  Ctxs.reserve(ThreadCount);
  for (unsigned I = 0; I < ThreadCount; ++I) {
    Ctxs.push_back(std::make_unique<WorkCtx>());
    Ctxs.back()->Index = I;
  }
  Pool = std::make_unique<WorkerPool>(ThreadCount);
}

void ParallelBddManager::runTask(Task &T, WorkCtx *W) {
  uint32_t R = T.K == Task::Apply
                   ? applyRecP(static_cast<Op>(T.OpTag), T.A, T.B, W, T.Depth)
                   : andExistsRecP(T.A, T.B, T.C, W, T.Depth);
  T.Result.store(R, std::memory_order_release);
}

ParallelBddManager::Task *ParallelBddManager::stealAny(WorkCtx *Self) {
  size_t N = Ctxs.size();
  for (size_t I = 0; I < N; ++I)
    if (Task *T = Ctxs[(Self->Index + I + 1) % N]->stealOldest())
      return T;
  return nullptr;
}

uint32_t ParallelBddManager::joinTask(Task &T, WorkCtx *W) {
  // Fast path: nobody stole it, run it inline in LIFO order.
  if (W->popSpecific(&T)) {
    runTask(T, W);
    return T.Result.load(std::memory_order_relaxed);
  }
  // Stolen: help run other tasks while the thief finishes ours.
  uint32_t R;
  while ((R = T.Result.load(std::memory_order_acquire)) == InvalidNode) {
    if (Task *S = stealAny(W))
      runTask(*S, W);
    else
      std::this_thread::yield();
  }
  return R;
}

uint32_t ParallelBddManager::runRoot(Task &Root) {
  ensurePool();
  Ctxs[0]->push(&Root);
  // Every pool worker runs the same loop: steal (the root is just the
  // first stealable task) and help until the root resolves. No loop is
  // special, so any scheduling of the parallelFor indices — including all
  // of them landing on one thread — terminates.
  Pool->parallelFor(ThreadCount, [&](size_t I, size_t) {
    WorkCtx *W = Ctxs[I].get();
    while (Root.Result.load(std::memory_order_acquire) == InvalidNode) {
      if (Task *S = stealAny(W))
        runTask(*S, W);
      else
        std::this_thread::yield();
    }
  });
  return Root.Result.load(std::memory_order_relaxed);
}

bool ParallelBddManager::bigEnough(uint32_t A, uint32_t B) const {
  // Phase 1: allocation-free path-bounded walk. Path count >= node count,
  // so exhausting the budget without finishing proves nothing, but
  // finishing under it proves the operands are small.
  {
    uint32_t Stack[2 * 256 + 4];
    size_t Top = 0, Visits = 0;
    Stack[Top++] = A;
    Stack[Top++] = B;
    bool Small = true;
    while (Top) {
      uint32_t N = Stack[--Top];
      if (N <= 1)
        continue;
      if (++Visits >= 256) {
        Small = false;
        break;
      }
      RawNode Nd = rawNode(N);
      Stack[Top++] = Nd.Low;
      Stack[Top++] = Nd.High;
    }
    if (Small)
      return false;
  }
  // Phase 2: exact capped count with dedup.
  std::unordered_set<uint32_t> Seen;
  Seen.reserve(2 * SequentialCutoffNodes);
  std::vector<uint32_t> Stack{A, B};
  while (!Stack.empty()) {
    uint32_t N = Stack.back();
    Stack.pop_back();
    if (N <= 1 || !Seen.insert(N).second)
      continue;
    if (Seen.size() >= SequentialCutoffNodes)
      return true;
    RawNode Nd = rawNode(N);
    Stack.push_back(Nd.Low);
    Stack.push_back(Nd.High);
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Top-level entry points
//===----------------------------------------------------------------------===//

uint32_t ParallelBddManager::applyTop(Op O, uint32_t A, uint32_t B) {
  if (ThreadCount <= 1 || !bigEnough(A, B))
    return applyRecP(O, A, B, nullptr, 0);
  Task Root;
  Root.K = Task::Apply;
  Root.OpTag = static_cast<uint8_t>(O);
  Root.A = A;
  Root.B = B;
  return runRoot(Root);
}

uint32_t ParallelBddManager::andExistsTop(uint32_t F, uint32_t G,
                                          uint32_t Cube) {
  if (ThreadCount <= 1 || !bigEnough(F, G))
    return andExistsRecP(F, G, Cube, nullptr, 0);
  Task Root;
  Root.K = Task::AndExists;
  Root.A = F;
  Root.B = G;
  Root.C = Cube;
  return runRoot(Root);
}

uint32_t ParallelBddManager::notTop(uint32_t F) { return notRecP(F); }

uint32_t ParallelBddManager::iteTop(uint32_t F, uint32_t G, uint32_t H) {
  return iteRecP(F, G, H);
}

uint32_t ParallelBddManager::existsTop(uint32_t F, uint32_t Cube,
                                       bool Universal) {
  return existsRecP(F, Cube, Universal);
}

uint32_t ParallelBddManager::cofactorTop(uint32_t F, uint32_t Var,
                                         bool Val) {
  return cofactorRecP(F, Var, Val);
}

//===----------------------------------------------------------------------===//
// Recursive core (thread-safe; forking variants take a WorkCtx)
//===----------------------------------------------------------------------===//

uint32_t ParallelBddManager::notRecP(uint32_t F) {
  if (F <= 1)
    return F ^ 1;
  uint32_t R;
  if (cacheGet(TagNot, F, 0, 0, R))
    return R;
  const PNode &Nd = node(F);
  uint32_t Low = Nd.Low, High = Nd.High, Var = Nd.Var;
  R = mkP(Var, notRecP(Low), notRecP(High));
  cachePut(TagNot, F, 0, 0, R);
  return R;
}

uint32_t ParallelBddManager::applyRecP(Op O, uint32_t A, uint32_t B,
                                       WorkCtx *W, unsigned Depth) {
  // Terminal cases.
  switch (O) {
  case Op::And:
    if (A == B)
      return A;
    if (A == 0 || B == 0)
      return 0;
    if (A == 1)
      return B;
    if (B == 1)
      return A;
    break;
  case Op::Or:
    if (A == B)
      return A;
    if (A == 1 || B == 1)
      return 1;
    if (A == 0)
      return B;
    if (B == 0)
      return A;
    break;
  case Op::Xor:
    if (A == B)
      return 0;
    if (A == 0)
      return B;
    if (B == 0)
      return A;
    if (A == 1)
      return notRecP(B);
    if (B == 1)
      return notRecP(A);
    break;
  }
  if (A > B)
    std::swap(A, B); // commutative: canonicalize for the cache
  uint8_t Tag = static_cast<uint8_t>(O);
  uint32_t R;
  if (cacheGet(Tag, A, B, 0, R))
    return R;
  const PNode &NA = node(A), &NB = node(B);
  uint32_t V = std::min(NA.Var, NB.Var);
  uint32_t A0 = NA.Var == V ? NA.Low : A;
  uint32_t A1 = NA.Var == V ? NA.High : A;
  uint32_t B0 = NB.Var == V ? NB.Low : B;
  uint32_t B1 = NB.Var == V ? NB.High : B;
  uint32_t R0, R1;
  if (W && Depth < MaxForkDepth && !(A1 <= 1 && B1 <= 1)) {
    Task T;
    T.K = Task::Apply;
    T.OpTag = Tag;
    T.A = A1;
    T.B = B1;
    T.Depth = static_cast<uint16_t>(Depth + 1);
    W->push(&T);
    R0 = applyRecP(O, A0, B0, W, Depth + 1);
    R1 = joinTask(T, W);
  } else {
    R0 = applyRecP(O, A0, B0, W, Depth + 1);
    R1 = applyRecP(O, A1, B1, W, Depth + 1);
  }
  R = mkP(V, R0, R1);
  cachePut(Tag, A, B, 0, R);
  return R;
}

uint32_t ParallelBddManager::iteRecP(uint32_t F, uint32_t G, uint32_t H) {
  if (F == 1)
    return G;
  if (F == 0)
    return H;
  if (G == H)
    return G;
  if (G == 1 && H == 0)
    return F;
  if (G == 0 && H == 1)
    return notRecP(F);
  uint32_t R;
  if (cacheGet(TagIte, F, G, H, R))
    return R;
  const PNode &NF = node(F), &NG = node(G), &NH = node(H);
  uint32_t V = NF.Var;
  if (NG.Var != TerminalVar)
    V = std::min(V, NG.Var);
  if (NH.Var != TerminalVar)
    V = std::min(V, NH.Var);
  uint32_t F0 = NF.Var == V ? NF.Low : F, F1 = NF.Var == V ? NF.High : F;
  uint32_t G0 = NG.Var == V ? NG.Low : G, G1 = NG.Var == V ? NG.High : G;
  uint32_t H0 = NH.Var == V ? NH.Low : H, H1 = NH.Var == V ? NH.High : H;
  R = mkP(V, iteRecP(F0, G0, H0), iteRecP(F1, G1, H1));
  cachePut(TagIte, F, G, H, R);
  return R;
}

uint32_t ParallelBddManager::existsRecP(uint32_t F, uint32_t Cube,
                                        bool Universal) {
  if (F <= 1)
    return F;
  // Skip quantified variables above F's top variable.
  uint32_t FVar = node(F).Var;
  while (Cube > 1 && node(Cube).Var < FVar)
    Cube = node(Cube).High;
  if (Cube <= 1)
    return F;
  uint8_t Tag = Universal ? TagForall : TagExists;
  uint32_t R;
  if (cacheGet(Tag, F, Cube, 0, R))
    return R;
  const PNode &NF = node(F);
  uint32_t Low = NF.Low, High = NF.High, Var = NF.Var;
  if (node(Cube).Var == Var) {
    uint32_t NextCube = node(Cube).High;
    uint32_t R0 = existsRecP(Low, NextCube, Universal);
    // Short-circuit: OR with 1 (or AND with 0) is absorbing.
    if (!Universal && R0 == 1)
      R = 1;
    else if (Universal && R0 == 0)
      R = 0;
    else {
      uint32_t R1 = existsRecP(High, NextCube, Universal);
      R = applyRecP(Universal ? Op::And : Op::Or, R0, R1, nullptr, 0);
    }
  } else {
    R = mkP(Var, existsRecP(Low, Cube, Universal),
            existsRecP(High, Cube, Universal));
  }
  cachePut(Tag, F, Cube, 0, R);
  return R;
}

uint32_t ParallelBddManager::andExistsRecP(uint32_t F, uint32_t G,
                                           uint32_t Cube, WorkCtx *W,
                                           unsigned Depth) {
  if (F == 0 || G == 0)
    return 0;
  if (F == 1)
    return existsRecP(G, Cube, false);
  if (G == 1 || F == G)
    return existsRecP(F, Cube, false);
  if (Cube <= 1)
    return applyRecP(Op::And, F, G, W, Depth);
  if (F > G)
    std::swap(F, G);
  const PNode &NF = node(F), &NG = node(G);
  uint32_t V = std::min(NF.Var, NG.Var);
  while (Cube > 1 && node(Cube).Var < V)
    Cube = node(Cube).High;
  if (Cube <= 1)
    return applyRecP(Op::And, F, G, W, Depth);
  uint32_t R;
  if (cacheGet(TagAndExists, F, G, Cube, R))
    return R;
  uint32_t F0 = NF.Var == V ? NF.Low : F, F1 = NF.Var == V ? NF.High : F;
  uint32_t G0 = NG.Var == V ? NG.Low : G, G1 = NG.Var == V ? NG.High : G;
  bool Fork = W && Depth < MaxForkDepth && !(F1 <= 1 && G1 <= 1);
  if (node(Cube).Var == V) {
    uint32_t NextCube = node(Cube).High;
    uint32_t R0, R1;
    if (Fork) {
      // The serial backend skips R1 when R0 absorbs; forking computes it
      // speculatively. Extra work sometimes, identical (canonical) result
      // always.
      Task T;
      T.K = Task::AndExists;
      T.A = F1;
      T.B = G1;
      T.C = NextCube;
      T.Depth = static_cast<uint16_t>(Depth + 1);
      W->push(&T);
      R0 = andExistsRecP(F0, G0, NextCube, W, Depth + 1);
      R1 = joinTask(T, W);
      R = R0 == 1 ? 1 : applyRecP(Op::Or, R0, R1, W, Depth);
    } else {
      R0 = andExistsRecP(F0, G0, NextCube, W, Depth + 1);
      if (R0 == 1)
        R = 1;
      else {
        R1 = andExistsRecP(F1, G1, NextCube, W, Depth + 1);
        R = applyRecP(Op::Or, R0, R1, W, Depth);
      }
    }
  } else {
    uint32_t R0, R1;
    if (Fork) {
      Task T;
      T.K = Task::AndExists;
      T.A = F1;
      T.B = G1;
      T.C = Cube;
      T.Depth = static_cast<uint16_t>(Depth + 1);
      W->push(&T);
      R0 = andExistsRecP(F0, G0, Cube, W, Depth + 1);
      R1 = joinTask(T, W);
    } else {
      R0 = andExistsRecP(F0, G0, Cube, W, Depth + 1);
      R1 = andExistsRecP(F1, G1, Cube, W, Depth + 1);
    }
    R = mkP(V, R0, R1);
  }
  cachePut(TagAndExists, F, G, Cube, R);
  return R;
}

uint32_t ParallelBddManager::cofactorRecP(uint32_t F, uint32_t Var,
                                          bool Val) {
  if (F <= 1 || node(F).Var > Var)
    return F;
  const PNode &NF = node(F);
  if (NF.Var == Var)
    return Val ? NF.High : NF.Low;
  uint8_t Tag = Val ? TagCofactor1 : TagCofactor0;
  uint32_t R;
  if (cacheGet(Tag, F, Var, 0, R))
    return R;
  uint32_t Low = NF.Low, High = NF.High, NVar = NF.Var;
  R = mkP(NVar, cofactorRecP(Low, Var, Val), cofactorRecP(High, Var, Val));
  cachePut(Tag, F, Var, 0, R);
  return R;
}
