//===- Snapshot.cpp - Portable BDD snapshots -------------------------------===//

#include "bdd/Snapshot.h"

#include <cassert>
#include <charconv>
#include <unordered_map>

using namespace xsa;

BddSnapshot xsa::exportSnapshot(BddManager &M, const Bdd &F) {
  assert(F.manager() == &M && "snapshot of a foreign handle");
  BddSnapshot S;
  if (F.node() <= 1) {
    S.Root = F.node();
    return S;
  }
  // Iterative post-order: a node is emitted only after both children, so
  // the table comes out topologically ordered. The walk goes through the
  // backend-neutral rawNode() accessor, and the emitted order depends
  // only on node *structure* (low child first), never on manager node
  // ids — which is what keeps snapshots byte-identical across backends.
  std::unordered_map<uint32_t, uint32_t> Ref; // manager node -> table ref
  Ref.emplace(0, 0);
  Ref.emplace(1, 1);
  std::vector<std::pair<uint32_t, bool>> Stack{{F.node(), false}};
  while (!Stack.empty()) {
    auto [N, ChildrenDone] = Stack.back();
    Stack.pop_back();
    if (Ref.count(N))
      continue;
    const BddManager::RawNode Nd = M.rawNode(N);
    if (!ChildrenDone) {
      Stack.push_back({N, true});
      Stack.push_back({Nd.High, false});
      Stack.push_back({Nd.Low, false});
      continue;
    }
    S.Nodes.push_back({Nd.Var, Ref.at(Nd.Low), Ref.at(Nd.High)});
    Ref.emplace(N, static_cast<uint32_t>(S.Nodes.size() - 1) + 2);
  }
  S.Root = Ref.at(F.node());
  return S;
}

Bdd xsa::importSnapshot(BddManager &M, const BddSnapshot &S,
                        unsigned (*MapVar)(unsigned)) {
  std::vector<Bdd> Built;
  Built.reserve(S.Nodes.size() + 2);
  Built.push_back(M.zero());
  Built.push_back(M.one());
  for (const BddSnapshot::Node &N : S.Nodes) {
    assert(N.Low < Built.size() && N.High < Built.size() &&
           "snapshot table not topologically ordered");
    // ite(var, high, low) re-derives the canonical node in this manager.
    unsigned Var = MapVar ? MapVar(N.Var) : N.Var;
    Built.push_back(M.ite(M.var(Var), Built[N.High], Built[N.Low]));
  }
  assert(S.Root < Built.size() && "snapshot root out of range");
  return Built[S.Root];
}

std::string BddSnapshot::encode() const {
  std::string Out;
  Out.reserve(12 * (Nodes.size() + 1));
  Out += std::to_string(Root);
  Out += ' ';
  Out += std::to_string(Nodes.size());
  for (const Node &N : Nodes) {
    Out += ' ';
    Out += std::to_string(N.Var);
    Out += ' ';
    Out += std::to_string(N.Low);
    Out += ' ';
    Out += std::to_string(N.High);
  }
  return Out;
}

namespace {

bool readU32(const char *&P, const char *End, uint32_t &Out) {
  while (P != End && *P == ' ')
    ++P;
  auto [Next, Ec] = std::from_chars(P, End, Out);
  if (Ec != std::errc() || Next == P)
    return false;
  P = Next;
  return true;
}

} // namespace

bool BddSnapshot::decode(const std::string &Text, BddSnapshot &Out) {
  Out = BddSnapshot();
  const char *P = Text.data(), *End = Text.data() + Text.size();
  uint32_t Count = 0;
  if (!readU32(P, End, Out.Root) || !readU32(P, End, Count))
    return false;
  // An adversarial count must not translate into an allocation; the
  // table can only be as large as the remaining text.
  if (Count > Text.size())
    return false;
  Out.Nodes.reserve(Count);
  // Variable indices translate into ensureVars allocations on import
  // (and are doubled by the solver's lean widening), so a corrupt index
  // must be rejected here, not discovered as an OOM mid-solve. Real
  // leans are a few thousand bits; 2^20 is far beyond any solvable one.
  constexpr uint32_t MaxVar = 1u << 20;
  for (uint32_t I = 0; I < Count; ++I) {
    Node N;
    if (!readU32(P, End, N.Var) || !readU32(P, End, N.Low) ||
        !readU32(P, End, N.High))
      return false;
    // Children must reference terminals or earlier entries (topological
    // order), or import would read out of range.
    if (N.Var >= MaxVar || N.Low >= I + 2 || N.High >= I + 2 ||
        N.Low == N.High)
      return false;
    Out.Nodes.push_back(N);
  }
  while (P != End && *P == ' ')
    ++P;
  if (P != End || Out.Root >= Count + 2)
    return false;
  return true;
}
