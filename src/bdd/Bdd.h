//===- Bdd.h - Binary decision diagram package -------------------*- C++ -*-===//
//
// Part of the xsa project (PLDI 2007 XPath/type analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A self-contained reduced ordered BDD package. The paper (§7) implements
/// its satisfiability algorithm on top of a BDD library (the implicit
/// representation of sets of ψ-types, the ∆a relations, and the fixpoint
/// computation are all boolean-function manipulations). No third-party BDD
/// library is available offline, so this module provides the substrate from
/// scratch:
///
///   * hash-consed node store with a unique table (canonicity);
///   * apply/ITE with operation caches;
///   * existential quantification and the combined relational product
///     (andExists) needed for the early-quantification scheme of §7.3;
///   * cofactor/restrict, support, satisfying-assignment extraction and
///     model counting (used by model reconstruction, §7.2);
///   * deferred-reclamation mark-and-sweep garbage collection driven by
///     external reference counts on Bdd handles.
///
/// Variables are identified by dense integer indices; the variable order is
/// the index order (the solver chooses indices with the breadth-first
/// heuristic of §7.4).
///
/// The package is split along a narrow symbolic-backend seam in the style
/// of LTSmin's vset-lib: BddManager is the abstract interface the solver
/// pipeline (TransitionSystem / FixpointLoop / ModelExtractor) programs
/// against — mk/apply/ite/exists/andExists/restrict/satCount plus the raw
/// structural accessor snapshots are built from — and concrete backends
/// plug in behind it. Two ship today:
///
///   * SerialBddManager (this header): the original single-threaded
///     manager with mark-and-sweep GC;
///   * ParallelBddManager (bdd/Parallel.h): a work-stealing backend with a
///     lock-free unique table, so one giant query saturates every core.
///
/// Canonical hash-consing makes the two backends produce structurally
/// identical results: every public operation returns the reduced ordered
/// BDD of its boolean function, which is unique per variable order. Node
/// *ids* differ between backends (and between runs of the parallel one);
/// node *structure* cannot. Everything downstream — verdicts, models,
/// snapshots, `--stable` output — consumes structure, never ids.
///
//===----------------------------------------------------------------------===//

#ifndef XSA_BDD_BDD_H
#define XSA_BDD_BDD_H

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace xsa {

class BddManager;
struct BddSnapshot;

/// Which concrete BddManager implementation a solver run uses. The choice
/// never affects results (see file comment) — only how many cores one
/// operation may use — so it is excluded from every cache/snapshot key.
enum class BddBackendKind : uint8_t {
  Serial,   ///< single-threaded manager with mark-and-sweep GC
  Parallel, ///< work-stealing apply/andExists over a lock-free unique table
};

/// Stable lowercase names ("serial" / "parallel") for flags, config ops,
/// span attributes and metric labels.
const char *bddBackendName(BddBackendKind K);

/// Parses a backend name; returns false (leaving \p K untouched) on
/// anything else.
bool parseBddBackend(const std::string &Name, BddBackendKind &K);

/// Constructs a manager of the requested backend. \p Threads is the
/// parallel backend's worker count (0 = hardware concurrency) and is
/// ignored by the serial backend.
std::unique_ptr<BddManager> makeBddManager(BddBackendKind K,
                                           unsigned InitialVars = 0,
                                           unsigned Threads = 0);

/// A reference-counted handle to a BDD node. Copying a handle bumps the
/// external reference count used as GC roots; destroying it drops the count.
/// Handles are cheap (pointer + index) and have value semantics.
class Bdd {
public:
  Bdd() = default;
  Bdd(const Bdd &O);
  Bdd(Bdd &&O) noexcept;
  Bdd &operator=(const Bdd &O);
  Bdd &operator=(Bdd &&O) noexcept;
  ~Bdd();

  /// True if this handle refers to a node (even the constant nodes).
  bool valid() const { return Mgr != nullptr; }

  bool isOne() const;
  bool isZero() const;
  bool isConst() const { return isOne() || isZero(); }

  BddManager *manager() const { return Mgr; }
  uint32_t node() const { return Node; }

  // Logical operations (all go through the manager's caches).
  Bdd operator&(const Bdd &O) const;
  Bdd operator|(const Bdd &O) const;
  Bdd operator^(const Bdd &O) const;
  Bdd operator!() const;
  Bdd implies(const Bdd &O) const;
  Bdd iff(const Bdd &O) const;

  Bdd &operator&=(const Bdd &O) { return *this = *this & O; }
  Bdd &operator|=(const Bdd &O) { return *this = *this | O; }
  Bdd &operator^=(const Bdd &O) { return *this = *this ^ O; }

  /// Structural equality: by canonicity, equal iff same function.
  bool operator==(const Bdd &O) const {
    return Mgr == O.Mgr && Node == O.Node;
  }
  bool operator!=(const Bdd &O) const { return !(*this == O); }

  /// Number of nodes in this BDD (including constants).
  size_t nodeCount() const;

private:
  friend class BddManager;
  Bdd(BddManager *Mgr, uint32_t Node, bool AlreadyReferenced);

  BddManager *Mgr = nullptr;
  uint32_t Node = 0;
};

/// The abstract symbolic backend. Owns a node store, unique table and
/// operation caches; all Bdd handles belong to exactly one manager and
/// mixing managers is a programming error (asserted).
///
/// The public surface is exactly what the solver pipeline consumes. The
/// generic algorithms that only need node *structure* (satOne, satCount,
/// support, cube, restrict, remapVars, toDot, snapshot export) are
/// implemented here once over rawNode()/mkRaw(); the recursive core
/// (apply/ite/exists/andExists/cofactor) is per-backend because that is
/// where caching and parallelism live.
///
/// Threading contract: the public API is called from one thread at a time
/// (the solver owns one manager per run). A backend may use additional
/// worker threads *inside* an operation.
class BddManager {
public:
  BddManager() = default;
  virtual ~BddManager();

  BddManager(const BddManager &) = delete;
  BddManager &operator=(const BddManager &) = delete;

  /// Which backend this is (label for spans, metrics and tests).
  virtual BddBackendKind kind() const = 0;

  /// Constant true / false.
  Bdd one();
  Bdd zero();

  /// The function of variable \p Var (positive literal).
  Bdd var(unsigned Var);
  /// The negative literal of \p Var.
  Bdd nvar(unsigned Var);

  /// Creates variables up to index \p NumVars - 1.
  void ensureVars(unsigned NumVars);
  unsigned numVars() const { return NumVars; }

  /// If-then-else: F ? G : H.
  Bdd ite(const Bdd &F, const Bdd &G, const Bdd &H);

  /// Existentially quantifies the variables of \p Cube (a positive
  /// conjunction of variables) out of \p F.
  Bdd exists(const Bdd &F, const Bdd &Cube);

  /// Universally quantifies the variables of \p Cube out of \p F.
  Bdd forall(const Bdd &F, const Bdd &Cube);

  /// Relational product: exists(Cube, F & G) computed without building
  /// the full conjunction. This is the workhorse of §7.3.
  Bdd andExists(const Bdd &F, const Bdd &G, const Bdd &Cube);

  /// A positive cube over \p Vars (sorted or not).
  Bdd cube(const std::vector<unsigned> &Vars);

  /// Cofactor of F with Var fixed to Val.
  Bdd cofactor(const Bdd &F, unsigned Var, bool Val);

  /// Generalized cofactor: fixes every (var, val) pair in \p Assignment.
  Bdd restrict(const Bdd &F, const std::vector<std::pair<unsigned, bool>> &Assignment);

  /// Renames variables: node with variable v becomes variable VarMap[v].
  /// VarMap must be strictly increasing on the support of F (the variable
  /// order is preserved), which holds for the solver's interleaved
  /// unprimed/primed copies.
  Bdd remapVars(const Bdd &F, const std::vector<unsigned> &VarMap);

  /// Extracts one satisfying assignment of F. Returns false if F is the
  /// zero function. Variables not on the chosen path are reported in
  /// \p DontCare (any value satisfies) and assigned 'false' in \p Values.
  /// \p Values is resized to numVars().
  bool satOne(const Bdd &F, std::vector<bool> &Values,
              std::vector<bool> *DontCare = nullptr);

  /// Number of satisfying assignments over \p OverVars variables.
  double satCount(const Bdd &F, unsigned OverVars);

  /// The set of variables F depends on.
  std::vector<unsigned> support(const Bdd &F);

  /// Live node statistics (excluding dead-but-unswept nodes).
  virtual size_t numNodes() const = 0;
  virtual size_t peakNodes() const = 0;
  virtual size_t gcRuns() const = 0;

  /// Probe statistics for the hash-consing unique table (mk chain walks)
  /// and the operation cache. The solver samples these into
  /// observability gauges at span boundaries (obs/Metrics.h).
  virtual size_t uniqueLookups() const = 0;
  virtual size_t uniqueHits() const = 0;
  virtual size_t opCacheLookups() const = 0;
  virtual size_t opCacheHits() const = 0;

  /// Forces a collection (backends without GC treat this as a no-op).
  virtual void gc() = 0;

  /// Graphviz dump for debugging.
  std::string toDot(const Bdd &F, const std::vector<std::string> *VarNames = nullptr);

  /// Structural view of one node, the currency of the generic algorithms
  /// and of snapshot export. Terminals report Var == TerminalVar.
  struct RawNode {
    uint32_t Var;
    uint32_t Low;
    uint32_t High;
  };
  virtual RawNode rawNode(uint32_t N) const = 0;

  static constexpr uint32_t ZeroNode = 0;
  static constexpr uint32_t OneNode = 1;
  static constexpr uint32_t TerminalVar = ~0u;

protected:
  friend class Bdd;

  enum class Op : uint8_t { And, Or, Xor };

  // The per-backend recursive core. *Top entry points are one virtual
  // dispatch per public operation; recursion stays inside the backend.
  virtual uint32_t mkRaw(uint32_t Var, uint32_t Low, uint32_t High) = 0;
  virtual uint32_t applyTop(Op O, uint32_t A, uint32_t B) = 0;
  virtual uint32_t notTop(uint32_t F) = 0;
  virtual uint32_t iteTop(uint32_t F, uint32_t G, uint32_t H) = 0;
  virtual uint32_t existsTop(uint32_t F, uint32_t Cube, bool Universal) = 0;
  virtual uint32_t andExistsTop(uint32_t F, uint32_t G, uint32_t Cube) = 0;
  virtual uint32_t cofactorTop(uint32_t F, uint32_t Var, bool Val) = 0;

  // External-reference bookkeeping for Bdd handles (GC roots). Backends
  // without GC may make these no-ops.
  virtual void ref(uint32_t N) = 0;
  virtual void deref(uint32_t N) = 0;
  virtual void maybeGc() = 0;

  Bdd wrap(uint32_t N) { return Bdd(this, N, /*AlreadyReferenced=*/false); }

  uint32_t var2Node(unsigned Var);

  double satCountRec(uint32_t F,
                     std::unordered_map<uint32_t, double> &Memo) const;

  unsigned NumVars = 0;
  std::vector<uint32_t> VarNodes; // cached single-variable nodes
};

/// The original single-threaded backend: growable unique table,
/// direct-mapped operation cache, deferred mark-and-sweep GC driven by the
/// external reference counts. One per solver run; no internal threads.
class SerialBddManager final : public BddManager {
public:
  /// \param InitialVars number of variables to pre-create (more can be
  ///        added with ensureVars / var).
  explicit SerialBddManager(unsigned InitialVars = 0);
  ~SerialBddManager() override;

  BddBackendKind kind() const override { return BddBackendKind::Serial; }

  size_t numNodes() const override { return NodeCount; }
  size_t peakNodes() const override { return PeakNodeCount; }
  size_t gcRuns() const override { return GcRuns; }
  size_t uniqueLookups() const override { return UniqueLookups; }
  size_t uniqueHits() const override { return UniqueHits; }
  size_t opCacheLookups() const override { return OpCacheLookups; }
  size_t opCacheHits() const override { return OpCacheHits; }

  /// Forces a mark-and-sweep collection. Called automatically when the
  /// node store grows past an adaptive threshold.
  void gc() override;

  RawNode rawNode(uint32_t N) const override {
    const Node &Nd = Nodes[N];
    return {Nd.Var, Nd.Low, Nd.High};
  }

protected:
  uint32_t mkRaw(uint32_t Var, uint32_t Low, uint32_t High) override {
    return mk(Var, Low, High);
  }
  uint32_t applyTop(Op O, uint32_t A, uint32_t B) override {
    return applyRec(O, A, B);
  }
  uint32_t notTop(uint32_t F) override { return notRec(F); }
  uint32_t iteTop(uint32_t F, uint32_t G, uint32_t H) override {
    return iteRec(F, G, H);
  }
  uint32_t existsTop(uint32_t F, uint32_t Cube, bool Universal) override {
    return existsRec(F, Cube, Universal);
  }
  uint32_t andExistsTop(uint32_t F, uint32_t G, uint32_t Cube) override {
    return andExistsRec(F, G, Cube);
  }
  uint32_t cofactorTop(uint32_t F, uint32_t Var, bool Val) override {
    return cofactorRec(F, Var, Val);
  }
  void ref(uint32_t N) override { ++Nodes[N].Refs; }
  void deref(uint32_t N) override {
    assert(Nodes[N].Refs > 0 && "over-deref of BDD node");
    --Nodes[N].Refs;
  }
  void maybeGc() override;

private:
  struct Node {
    uint32_t Var;  ///< variable index; ~0u marks terminal nodes
    uint32_t Low;  ///< else-branch node id
    uint32_t High; ///< then-branch node id
    uint32_t Next; ///< unique-table chain / free list
    uint32_t Refs; ///< external references (GC roots)
    bool Mark;     ///< GC mark bit
  };

  // Node management.
  uint32_t mk(uint32_t Var, uint32_t Low, uint32_t High);
  uint32_t allocNode();
  void growUniqueTable();
  void markRecursive(uint32_t N);

  // Core recursive algorithms (on raw node ids).
  uint32_t applyRec(Op O, uint32_t A, uint32_t B);
  uint32_t iteRec(uint32_t F, uint32_t G, uint32_t H);
  uint32_t notRec(uint32_t F);
  uint32_t existsRec(uint32_t F, uint32_t Cube, bool Universal);
  uint32_t andExistsRec(uint32_t F, uint32_t G, uint32_t Cube);
  uint32_t cofactorRec(uint32_t F, uint32_t Var, bool Val);

  // Caches. Direct-mapped and lossy; entries store all operands so that a
  // hash collision can never produce a wrong result.
  struct CacheEntry {
    uint32_t A = ~0u;
    uint32_t B = 0;
    uint32_t C = 0;
    uint8_t OpTag = 0;
    uint32_t Result = 0;
  };
  CacheEntry &cacheSlot(uint8_t OpTag, uint32_t A, uint32_t B, uint32_t C);
  void clearCaches();

  std::vector<Node> Nodes;
  std::vector<uint32_t> UniqueTable; // bucket heads
  uint32_t FreeList = ~0u;
  size_t NodeCount = 0;
  size_t PeakNodeCount = 0;
  size_t GcThreshold;
  size_t GcRuns = 0;
  size_t UniqueLookups = 0;
  size_t UniqueHits = 0;
  size_t OpCacheLookups = 0;
  size_t OpCacheHits = 0;
  bool GcEnabled = true;

  std::vector<CacheEntry> OpCache;
};

} // namespace xsa

#endif // XSA_BDD_BDD_H
