//===- Bdd.h - Binary decision diagram package -------------------*- C++ -*-===//
//
// Part of the xsa project (PLDI 2007 XPath/type analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A self-contained reduced ordered BDD package. The paper (§7) implements
/// its satisfiability algorithm on top of a BDD library (the implicit
/// representation of sets of ψ-types, the ∆a relations, and the fixpoint
/// computation are all boolean-function manipulations). No third-party BDD
/// library is available offline, so this module provides the substrate from
/// scratch:
///
///   * hash-consed node store with a unique table (canonicity);
///   * apply/ITE with operation caches;
///   * existential quantification and the combined relational product
///     (andExists) needed for the early-quantification scheme of §7.3;
///   * cofactor/restrict, support, satisfying-assignment extraction and
///     model counting (used by model reconstruction, §7.2);
///   * deferred-reclamation mark-and-sweep garbage collection driven by
///     external reference counts on Bdd handles.
///
/// Variables are identified by dense integer indices; the variable order is
/// the index order (the solver chooses indices with the breadth-first
/// heuristic of §7.4).
///
//===----------------------------------------------------------------------===//

#ifndef XSA_BDD_BDD_H
#define XSA_BDD_BDD_H

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace xsa {

class BddManager;
struct BddSnapshot;

/// A reference-counted handle to a BDD node. Copying a handle bumps the
/// external reference count used as GC roots; destroying it drops the count.
/// Handles are cheap (pointer + index) and have value semantics.
class Bdd {
public:
  Bdd() = default;
  Bdd(const Bdd &O);
  Bdd(Bdd &&O) noexcept;
  Bdd &operator=(const Bdd &O);
  Bdd &operator=(Bdd &&O) noexcept;
  ~Bdd();

  /// True if this handle refers to a node (even the constant nodes).
  bool valid() const { return Mgr != nullptr; }

  bool isOne() const;
  bool isZero() const;
  bool isConst() const { return isOne() || isZero(); }

  BddManager *manager() const { return Mgr; }
  uint32_t node() const { return Node; }

  // Logical operations (all go through the manager's caches).
  Bdd operator&(const Bdd &O) const;
  Bdd operator|(const Bdd &O) const;
  Bdd operator^(const Bdd &O) const;
  Bdd operator!() const;
  Bdd implies(const Bdd &O) const;
  Bdd iff(const Bdd &O) const;

  Bdd &operator&=(const Bdd &O) { return *this = *this & O; }
  Bdd &operator|=(const Bdd &O) { return *this = *this | O; }
  Bdd &operator^=(const Bdd &O) { return *this = *this ^ O; }

  /// Structural equality: by canonicity, equal iff same function.
  bool operator==(const Bdd &O) const {
    return Mgr == O.Mgr && Node == O.Node;
  }
  bool operator!=(const Bdd &O) const { return !(*this == O); }

  /// Number of nodes in this BDD (including constants).
  size_t nodeCount() const;

private:
  friend class BddManager;
  Bdd(BddManager *Mgr, uint32_t Node, bool AlreadyReferenced);

  BddManager *Mgr = nullptr;
  uint32_t Node = 0;
};

/// Owns the node store, unique table, operation caches and garbage
/// collector. All Bdd handles belong to exactly one manager; mixing
/// managers is a programming error (asserted).
class BddManager {
public:
  /// \param InitialVars number of variables to pre-create (more can be
  ///        added with ensureVars / newVar).
  explicit BddManager(unsigned InitialVars = 0);
  ~BddManager();

  BddManager(const BddManager &) = delete;
  BddManager &operator=(const BddManager &) = delete;

  /// Constant true / false.
  Bdd one();
  Bdd zero();

  /// The function of variable \p Var (positive literal).
  Bdd var(unsigned Var);
  /// The negative literal of \p Var.
  Bdd nvar(unsigned Var);

  /// Creates variables up to index \p NumVars - 1.
  void ensureVars(unsigned NumVars);
  unsigned numVars() const { return NumVars; }

  /// If-then-else: F ? G : H.
  Bdd ite(const Bdd &F, const Bdd &G, const Bdd &H);

  /// Existentially quantifies the variables of \p Cube (a positive
  /// conjunction of variables) out of \p F.
  Bdd exists(const Bdd &F, const Bdd &Cube);

  /// Universally quantifies the variables of \p Cube out of \p F.
  Bdd forall(const Bdd &F, const Bdd &Cube);

  /// Relational product: exists(Cube, F & G) computed without building
  /// the full conjunction. This is the workhorse of §7.3.
  Bdd andExists(const Bdd &F, const Bdd &G, const Bdd &Cube);

  /// A positive cube over \p Vars (sorted or not).
  Bdd cube(const std::vector<unsigned> &Vars);

  /// Cofactor of F with Var fixed to Val.
  Bdd cofactor(const Bdd &F, unsigned Var, bool Val);

  /// Generalized cofactor: fixes every (var, val) pair in \p Assignment.
  Bdd restrict(const Bdd &F, const std::vector<std::pair<unsigned, bool>> &Assignment);

  /// Renames variables: node with variable v becomes variable VarMap[v].
  /// VarMap must be strictly increasing on the support of F (the variable
  /// order is preserved), which holds for the solver's interleaved
  /// unprimed/primed copies.
  Bdd remapVars(const Bdd &F, const std::vector<unsigned> &VarMap);

  /// Extracts one satisfying assignment of F. Returns false if F is the
  /// zero function. Variables not on the chosen path are reported in
  /// \p DontCare (any value satisfies) and assigned 'false' in \p Values.
  /// \p Values is resized to numVars().
  bool satOne(const Bdd &F, std::vector<bool> &Values,
              std::vector<bool> *DontCare = nullptr);

  /// Number of satisfying assignments over \p OverVars variables.
  double satCount(const Bdd &F, unsigned OverVars);

  /// The set of variables F depends on.
  std::vector<unsigned> support(const Bdd &F);

  /// Live node statistics (excluding dead-but-unswept nodes).
  size_t numNodes() const { return NodeCount; }
  size_t peakNodes() const { return PeakNodeCount; }
  size_t gcRuns() const { return GcRuns; }

  /// Probe statistics for the hash-consing unique table (mk chain walks)
  /// and the direct-mapped operation cache. Plain counters: the manager
  /// is single-threaded by design (one per solver run), so no atomics.
  /// The solver samples these into observability gauges at span
  /// boundaries (obs/Metrics.h).
  size_t uniqueLookups() const { return UniqueLookups; }
  size_t uniqueHits() const { return UniqueHits; }
  size_t opCacheLookups() const { return OpCacheLookups; }
  size_t opCacheHits() const { return OpCacheHits; }

  /// Forces a mark-and-sweep collection. Called automatically when the
  /// node store grows past an adaptive threshold.
  void gc();

  /// Graphviz dump for debugging.
  std::string toDot(const Bdd &F, const std::vector<std::string> *VarNames = nullptr);

private:
  friend class Bdd;
  /// Snapshot export (bdd/Snapshot.h) walks the node table directly.
  friend BddSnapshot exportSnapshot(BddManager &M, const Bdd &F);

  struct Node {
    uint32_t Var;  ///< variable index; ~0u marks terminal nodes
    uint32_t Low;  ///< else-branch node id
    uint32_t High; ///< then-branch node id
    uint32_t Next; ///< unique-table chain / free list
    uint32_t Refs; ///< external references (GC roots)
    bool Mark;     ///< GC mark bit
  };

  enum class Op : uint8_t { And, Or, Xor, Exists, AndExists, Forall };

  // Node management.
  uint32_t mk(uint32_t Var, uint32_t Low, uint32_t High);
  uint32_t allocNode();
  void growUniqueTable();
  void ref(uint32_t N);
  void deref(uint32_t N);
  void markRecursive(uint32_t N);
  void maybeGc();

  // Core recursive algorithms (on raw node ids).
  uint32_t applyRec(Op O, uint32_t A, uint32_t B);
  uint32_t iteRec(uint32_t F, uint32_t G, uint32_t H);
  uint32_t notRec(uint32_t F);
  uint32_t existsRec(uint32_t F, uint32_t Cube, bool Universal);
  uint32_t andExistsRec(uint32_t F, uint32_t G, uint32_t Cube);
  uint32_t cofactorRec(uint32_t F, uint32_t Var, bool Val);
  double satCountRec(uint32_t F, std::vector<double> &Memo);

  Bdd wrap(uint32_t N) { return Bdd(this, N, /*AlreadyReferenced=*/false); }

  uint32_t var2Node(unsigned Var);

  // Caches. Direct-mapped and lossy; entries store all operands so that a
  // hash collision can never produce a wrong result.
  struct CacheEntry {
    uint32_t A = ~0u;
    uint32_t B = 0;
    uint32_t C = 0;
    uint8_t OpTag = 0;
    uint32_t Result = 0;
  };
  CacheEntry &cacheSlot(uint8_t OpTag, uint32_t A, uint32_t B, uint32_t C);
  void clearCaches();

  std::vector<Node> Nodes;
  std::vector<uint32_t> UniqueTable; // bucket heads
  uint32_t FreeList = ~0u;
  size_t NodeCount = 0;
  size_t PeakNodeCount = 0;
  size_t GcThreshold;
  size_t GcRuns = 0;
  size_t UniqueLookups = 0;
  size_t UniqueHits = 0;
  size_t OpCacheLookups = 0;
  size_t OpCacheHits = 0;
  bool GcEnabled = true;
  unsigned NumVars = 0;
  std::vector<uint32_t> VarNodes; // cached single-variable nodes

  std::vector<CacheEntry> OpCache;

  static constexpr uint32_t ZeroNode = 0;
  static constexpr uint32_t OneNode = 1;
  static constexpr uint32_t TerminalVar = ~0u;
};

} // namespace xsa

#endif // XSA_BDD_BDD_H
