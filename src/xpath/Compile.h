//===- Compile.h - XPath to Lµ translation (Figs. 7, 8, 10) ------*- C++ -*-===//
//
// Part of the xsa project (PLDI 2007 XPath/type analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The linear translation of the XPath fragment into Lµ (§5.1):
///
///  * A→⟦a⟧χ — "navigational" translation of axes: holds at every node
///    reachable through axis a from a node satisfying χ (Fig. 7);
///  * E→⟦e⟧χ, P→⟦p⟧χ — translation of expressions and paths; a relative
///    path marks its initial context with the start proposition s, an
///    absolute path restarts from the root (Fig. 8);
///  * Q←⟦q⟧χ, P←⟦p⟧χ, A←⟦a⟧χ — "filtering" translation for qualifiers,
///    which asserts the existence of a path without moving the focus,
///    using the symmetric axes (Fig. 10).
///
/// The translated formula is cycle free and of size linear in |e| + |χ|
/// (Prop 5.1), which is what keeps the overall decision procedure at
/// 2^O(n).
///
//===----------------------------------------------------------------------===//

#ifndef XSA_XPATH_COMPILE_H
#define XSA_XPATH_COMPILE_H

#include "logic/Formula.h"
#include "xpath/Ast.h"

namespace xsa {

/// A→⟦a⟧χ (Fig. 7).
Formula compileAxis(FormulaFactory &FF, Axis A, Formula Chi);

/// E→⟦e⟧χ (Fig. 8): the formula holding exactly at the nodes selected by
/// \p E when evaluation starts from the (marked) context satisfying
/// \p Chi. Pass FF.trueF() for an unconstrained context, or a type
/// formula for evaluation under a regular tree type (§8).
Formula compileXPath(FormulaFactory &FF, const ExprRef &E, Formula Chi);

/// P→⟦p⟧χ (Fig. 8).
Formula compilePath(FormulaFactory &FF, const PathRef &P, Formula Chi);

/// Q←⟦q⟧χ (Fig. 10).
Formula compileQualif(FormulaFactory &FF, const QualifRef &Q, Formula Chi);

/// µZ.(¬⟨1̄⟩⊤ ∧ (¬⟨2̄⟩⊤ ∨ ⟨2̄⟩Z)): the focus is at the root. This is the
/// restriction §5.2 recommends conjoining to a type formula when the
/// type is used by an absolute XPath expression, so that the query's
/// root and the type's root coincide.
Formula rootFormula(FormulaFactory &FF);

} // namespace xsa

#endif // XSA_XPATH_COMPILE_H
