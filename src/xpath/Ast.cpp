//===- Ast.cpp - XPath AST helpers and printing ----------------------------===//

#include "xpath/Ast.h"

#include <cassert>
#include <cctype>
#include <sstream>

using namespace xsa;

Axis xsa::symmetricAxis(Axis A) {
  switch (A) {
  case Axis::Self:
    return Axis::Self;
  case Axis::Child:
    return Axis::Parent;
  case Axis::Parent:
    return Axis::Child;
  case Axis::Descendant:
    return Axis::Ancestor;
  case Axis::Ancestor:
    return Axis::Descendant;
  case Axis::DescOrSelf:
    return Axis::AncOrSelf;
  case Axis::AncOrSelf:
    return Axis::DescOrSelf;
  case Axis::FollSibling:
    return Axis::PrecSibling;
  case Axis::PrecSibling:
    return Axis::FollSibling;
  case Axis::Following:
    return Axis::Preceding;
  case Axis::Preceding:
    return Axis::Following;
  }
  return Axis::Self;
}

const char *xsa::axisName(Axis A) {
  switch (A) {
  case Axis::Self:
    return "self";
  case Axis::Child:
    return "child";
  case Axis::Parent:
    return "parent";
  case Axis::Descendant:
    return "descendant";
  case Axis::DescOrSelf:
    return "desc-or-self";
  case Axis::Ancestor:
    return "ancestor";
  case Axis::AncOrSelf:
    return "anc-or-self";
  case Axis::FollSibling:
    return "foll-sibling";
  case Axis::PrecSibling:
    return "prec-sibling";
  case Axis::Following:
    return "following";
  case Axis::Preceding:
    return "preceding";
  }
  return "?";
}

PathRef XPathPath::compose(PathRef A, PathRef B) {
  auto P = std::make_shared<XPathPath>();
  P->K = Compose;
  P->P1 = std::move(A);
  P->P2 = std::move(B);
  return P;
}

PathRef XPathPath::qualified(PathRef Base, QualifRef Q) {
  auto P = std::make_shared<XPathPath>();
  P->K = Qualified;
  P->P1 = std::move(Base);
  P->Q = std::move(Q);
  return P;
}

PathRef XPathPath::step(Axis A, std::optional<Symbol> Test) {
  auto P = std::make_shared<XPathPath>();
  P->K = Step;
  P->A = A;
  P->Test = Test;
  return P;
}

PathRef XPathPath::alt(PathRef A, PathRef B) {
  auto P = std::make_shared<XPathPath>();
  P->K = Alt;
  P->P1 = std::move(A);
  P->P2 = std::move(B);
  return P;
}

PathRef XPathPath::iterate(PathRef Inner) {
  auto P = std::make_shared<XPathPath>();
  P->K = Iterate;
  P->P1 = std::move(Inner);
  return P;
}

QualifRef XPathQualif::qand(QualifRef A, QualifRef B) {
  auto Q = std::make_shared<XPathQualif>();
  Q->K = And;
  Q->Q1 = std::move(A);
  Q->Q2 = std::move(B);
  return Q;
}

QualifRef XPathQualif::qor(QualifRef A, QualifRef B) {
  auto Q = std::make_shared<XPathQualif>();
  Q->K = Or;
  Q->Q1 = std::move(A);
  Q->Q2 = std::move(B);
  return Q;
}

QualifRef XPathQualif::qnot(QualifRef Inner) {
  auto Q = std::make_shared<XPathQualif>();
  Q->K = Not;
  Q->Q1 = std::move(Inner);
  return Q;
}

QualifRef XPathQualif::path(PathRef P) {
  auto Q = std::make_shared<XPathQualif>();
  Q->K = Path;
  Q->P = std::move(P);
  return Q;
}

ExprRef XPathExpr::absolute(PathRef P) {
  auto E = std::make_shared<XPathExpr>();
  E->K = Absolute;
  E->P = std::move(P);
  return E;
}

ExprRef XPathExpr::relative(PathRef P) {
  auto E = std::make_shared<XPathExpr>();
  E->K = Relative;
  E->P = std::move(P);
  return E;
}

ExprRef XPathExpr::unite(ExprRef A, ExprRef B) {
  auto E = std::make_shared<XPathExpr>();
  E->K = Union;
  E->E1 = std::move(A);
  E->E2 = std::move(B);
  return E;
}

ExprRef XPathExpr::intersect(ExprRef A, ExprRef B) {
  auto E = std::make_shared<XPathExpr>();
  E->K = Intersect;
  E->E1 = std::move(A);
  E->E2 = std::move(B);
  return E;
}

bool xsa::isXPathNameStart(char C) {
  return std::isalpha(static_cast<unsigned char>(C)) || C == '_';
}

bool xsa::isXPathNameChar(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
         C == '-' || C == '.';
}

std::string xsa::printNodeTest(Symbol Test) {
  const std::string &Name = symbolName(Test);
  bool Plain = !Name.empty() && isXPathNameStart(Name[0]);
  for (size_t I = 1; Plain && I < Name.size(); ++I)
    Plain = isXPathNameChar(Name[I]);
  if (Plain)
    return Name;
  // Quote with whichever delimiter the name does not contain; when it
  // contains both, use '"' and double every occurrence.
  char Quote = Name.find('"') == std::string::npos ? '"' : '\'';
  bool MustDouble = Quote == '\'' && Name.find('\'') != std::string::npos;
  if (MustDouble)
    Quote = '"';
  std::string Out(1, Quote);
  for (char C : Name) {
    Out += C;
    if (C == Quote)
      Out += C;
  }
  Out += Quote;
  return Out;
}

bool xsa::astEquals(const QualifRef &A, const QualifRef &B) {
  if (A == B)
    return true;
  if (!A || !B || A->K != B->K)
    return false;
  switch (A->K) {
  case XPathQualif::And:
  case XPathQualif::Or:
    return astEquals(A->Q1, B->Q1) && astEquals(A->Q2, B->Q2);
  case XPathQualif::Not:
    return astEquals(A->Q1, B->Q1);
  case XPathQualif::Path:
    return astEquals(A->P, B->P);
  }
  return false;
}

bool xsa::astEquals(const PathRef &A, const PathRef &B) {
  if (A == B)
    return true;
  if (!A || !B || A->K != B->K)
    return false;
  switch (A->K) {
  case XPathPath::Compose:
  case XPathPath::Alt:
    return astEquals(A->P1, B->P1) && astEquals(A->P2, B->P2);
  case XPathPath::Qualified:
    return astEquals(A->P1, B->P1) && astEquals(A->Q, B->Q);
  case XPathPath::Step:
    return A->A == B->A && A->Test == B->Test;
  case XPathPath::Iterate:
    return astEquals(A->P1, B->P1);
  }
  return false;
}

bool xsa::astEquals(const ExprRef &A, const ExprRef &B) {
  if (A == B)
    return true;
  if (!A || !B || A->K != B->K)
    return false;
  switch (A->K) {
  case XPathExpr::Absolute:
  case XPathExpr::Relative:
    return astEquals(A->P, B->P);
  case XPathExpr::Union:
  case XPathExpr::Intersect:
    return astEquals(A->E1, B->E1) && astEquals(A->E2, B->E2);
  }
  return false;
}

namespace {

void printPath(const PathRef &P, std::ostringstream &OS) {
  switch (P->K) {
  case XPathPath::Compose:
    printPath(P->P1, OS);
    OS << "/";
    printPath(P->P2, OS);
    return;
  case XPathPath::Qualified: {
    // A composed base must keep its grouping parens: (a/b)[c] printed
    // bare would re-parse as a/(b[c]). Alt and Iterate bases print
    // their own parens; Step and chained-Qualified bases bind tighter
    // than the qualifier already.
    bool Group = P->P1->K == XPathPath::Compose;
    if (Group)
      OS << "(";
    printPath(P->P1, OS);
    if (Group)
      OS << ")";
    OS << "[" << toString(P->Q) << "]";
    return;
  }
  case XPathPath::Step:
    OS << axisName(P->A) << "::";
    if (P->Test)
      OS << printNodeTest(*P->Test);
    else
      OS << "*";
    return;
  case XPathPath::Alt:
    OS << "(";
    printPath(P->P1, OS);
    OS << " | ";
    printPath(P->P2, OS);
    OS << ")";
    return;
  case XPathPath::Iterate:
    OS << "(";
    printPath(P->P1, OS);
    OS << ")+";
    return;
  }
}

void printQualif(const QualifRef &Q, std::ostringstream &OS) {
  switch (Q->K) {
  case XPathQualif::And:
    OS << toString(Q->Q1) << " and " << toString(Q->Q2);
    return;
  case XPathQualif::Or:
    OS << "(" << toString(Q->Q1) << " or " << toString(Q->Q2) << ")";
    return;
  case XPathQualif::Not:
    OS << "not(" << toString(Q->Q1) << ")";
    return;
  case XPathQualif::Path:
    printPath(Q->P, OS);
    return;
  }
}

} // namespace

std::string xsa::toString(const PathRef &P) {
  std::ostringstream OS;
  printPath(P, OS);
  return OS.str();
}

std::string xsa::toString(const QualifRef &Q) {
  std::ostringstream OS;
  printQualif(Q, OS);
  return OS.str();
}

std::string xsa::toString(const ExprRef &E) {
  std::ostringstream OS;
  switch (E->K) {
  case XPathExpr::Absolute:
    OS << "/" << toString(E->P);
    break;
  case XPathExpr::Relative:
    OS << toString(E->P);
    break;
  case XPathExpr::Union:
    OS << toString(E->E1) << " | " << toString(E->E2);
    break;
  case XPathExpr::Intersect:
    // '&' binds tighter than '|' in the concrete syntax; operands built
    // by the parser are never unions, so no parentheses are needed (and
    // the grammar has none for expressions).
    OS << toString(E->E1) << " & " << toString(E->E2);
    break;
  }
  return OS.str();
}
