//===- Ast.cpp - XPath AST helpers and printing ----------------------------===//

#include "xpath/Ast.h"

#include <cassert>
#include <sstream>

using namespace xsa;

Axis xsa::symmetricAxis(Axis A) {
  switch (A) {
  case Axis::Self:
    return Axis::Self;
  case Axis::Child:
    return Axis::Parent;
  case Axis::Parent:
    return Axis::Child;
  case Axis::Descendant:
    return Axis::Ancestor;
  case Axis::Ancestor:
    return Axis::Descendant;
  case Axis::DescOrSelf:
    return Axis::AncOrSelf;
  case Axis::AncOrSelf:
    return Axis::DescOrSelf;
  case Axis::FollSibling:
    return Axis::PrecSibling;
  case Axis::PrecSibling:
    return Axis::FollSibling;
  case Axis::Following:
    return Axis::Preceding;
  case Axis::Preceding:
    return Axis::Following;
  }
  return Axis::Self;
}

const char *xsa::axisName(Axis A) {
  switch (A) {
  case Axis::Self:
    return "self";
  case Axis::Child:
    return "child";
  case Axis::Parent:
    return "parent";
  case Axis::Descendant:
    return "descendant";
  case Axis::DescOrSelf:
    return "desc-or-self";
  case Axis::Ancestor:
    return "ancestor";
  case Axis::AncOrSelf:
    return "anc-or-self";
  case Axis::FollSibling:
    return "foll-sibling";
  case Axis::PrecSibling:
    return "prec-sibling";
  case Axis::Following:
    return "following";
  case Axis::Preceding:
    return "preceding";
  }
  return "?";
}

PathRef XPathPath::compose(PathRef A, PathRef B) {
  auto P = std::make_shared<XPathPath>();
  P->K = Compose;
  P->P1 = std::move(A);
  P->P2 = std::move(B);
  return P;
}

PathRef XPathPath::qualified(PathRef Base, QualifRef Q) {
  auto P = std::make_shared<XPathPath>();
  P->K = Qualified;
  P->P1 = std::move(Base);
  P->Q = std::move(Q);
  return P;
}

PathRef XPathPath::step(Axis A, std::optional<Symbol> Test) {
  auto P = std::make_shared<XPathPath>();
  P->K = Step;
  P->A = A;
  P->Test = Test;
  return P;
}

PathRef XPathPath::alt(PathRef A, PathRef B) {
  auto P = std::make_shared<XPathPath>();
  P->K = Alt;
  P->P1 = std::move(A);
  P->P2 = std::move(B);
  return P;
}

PathRef XPathPath::iterate(PathRef Inner) {
  auto P = std::make_shared<XPathPath>();
  P->K = Iterate;
  P->P1 = std::move(Inner);
  return P;
}

QualifRef XPathQualif::qand(QualifRef A, QualifRef B) {
  auto Q = std::make_shared<XPathQualif>();
  Q->K = And;
  Q->Q1 = std::move(A);
  Q->Q2 = std::move(B);
  return Q;
}

QualifRef XPathQualif::qor(QualifRef A, QualifRef B) {
  auto Q = std::make_shared<XPathQualif>();
  Q->K = Or;
  Q->Q1 = std::move(A);
  Q->Q2 = std::move(B);
  return Q;
}

QualifRef XPathQualif::qnot(QualifRef Inner) {
  auto Q = std::make_shared<XPathQualif>();
  Q->K = Not;
  Q->Q1 = std::move(Inner);
  return Q;
}

QualifRef XPathQualif::path(PathRef P) {
  auto Q = std::make_shared<XPathQualif>();
  Q->K = Path;
  Q->P = std::move(P);
  return Q;
}

ExprRef XPathExpr::absolute(PathRef P) {
  auto E = std::make_shared<XPathExpr>();
  E->K = Absolute;
  E->P = std::move(P);
  return E;
}

ExprRef XPathExpr::relative(PathRef P) {
  auto E = std::make_shared<XPathExpr>();
  E->K = Relative;
  E->P = std::move(P);
  return E;
}

ExprRef XPathExpr::unite(ExprRef A, ExprRef B) {
  auto E = std::make_shared<XPathExpr>();
  E->K = Union;
  E->E1 = std::move(A);
  E->E2 = std::move(B);
  return E;
}

ExprRef XPathExpr::intersect(ExprRef A, ExprRef B) {
  auto E = std::make_shared<XPathExpr>();
  E->K = Intersect;
  E->E1 = std::move(A);
  E->E2 = std::move(B);
  return E;
}

namespace {

void printPath(const PathRef &P, std::ostringstream &OS) {
  switch (P->K) {
  case XPathPath::Compose:
    printPath(P->P1, OS);
    OS << "/";
    printPath(P->P2, OS);
    return;
  case XPathPath::Qualified:
    printPath(P->P1, OS);
    OS << "[" << toString(P->Q) << "]";
    return;
  case XPathPath::Step:
    OS << axisName(P->A) << "::";
    if (P->Test)
      OS << symbolName(*P->Test);
    else
      OS << "*";
    return;
  case XPathPath::Alt:
    OS << "(";
    printPath(P->P1, OS);
    OS << " | ";
    printPath(P->P2, OS);
    OS << ")";
    return;
  case XPathPath::Iterate:
    OS << "(";
    printPath(P->P1, OS);
    OS << ")+";
    return;
  }
}

void printQualif(const QualifRef &Q, std::ostringstream &OS) {
  switch (Q->K) {
  case XPathQualif::And:
    OS << toString(Q->Q1) << " and " << toString(Q->Q2);
    return;
  case XPathQualif::Or:
    OS << "(" << toString(Q->Q1) << " or " << toString(Q->Q2) << ")";
    return;
  case XPathQualif::Not:
    OS << "not(" << toString(Q->Q1) << ")";
    return;
  case XPathQualif::Path:
    printPath(Q->P, OS);
    return;
  }
}

} // namespace

std::string xsa::toString(const PathRef &P) {
  std::ostringstream OS;
  printPath(P, OS);
  return OS.str();
}

std::string xsa::toString(const QualifRef &Q) {
  std::ostringstream OS;
  printQualif(Q, OS);
  return OS.str();
}

std::string xsa::toString(const ExprRef &E) {
  std::ostringstream OS;
  switch (E->K) {
  case XPathExpr::Absolute:
    OS << "/" << toString(E->P);
    break;
  case XPathExpr::Relative:
    OS << toString(E->P);
    break;
  case XPathExpr::Union:
    OS << toString(E->E1) << " | " << toString(E->E2);
    break;
  case XPathExpr::Intersect:
    // '&' binds tighter than '|' in the concrete syntax; operands built
    // by the parser are never unions, so no parentheses are needed (and
    // the grammar has none for expressions).
    OS << toString(E->E1) << " & " << toString(E->E2);
    break;
  }
  return OS.str();
}
