//===- Ast.h - XPath fragment abstract syntax (Fig. 4) -----------*- C++ -*-===//
//
// Part of the xsa project (PLDI 2007 XPath/type analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The XPath fragment of Figure 4 — all major navigational features of
/// XPath 1.0 except counting and data-value comparisons:
///
///   e ::= /p | p | e ∪ e | e ∩ e
///   p ::= p/p | p[q] | a::σ | a::*
///   q ::= q and q | q or q | not q | p
///   a ::= child | self | parent | descendant | desc-or-self | ancestor
///       | anc-or-self | foll-sibling | prec-sibling | following | preceding
///
//===----------------------------------------------------------------------===//

#ifndef XSA_XPATH_AST_H
#define XSA_XPATH_AST_H

#include "support/StringInterner.h"

#include <memory>
#include <optional>
#include <string>

namespace xsa {

enum class Axis : uint8_t {
  Self,
  Child,
  Parent,
  Descendant,
  DescOrSelf,
  Ancestor,
  AncOrSelf,
  FollSibling,
  PrecSibling,
  Following,
  Preceding,
};

/// symmetric(a) of Figure 10: the axis navigating backwards.
Axis symmetricAxis(Axis A);

/// Axis spelling as in the paper ("foll-sibling", ...).
const char *axisName(Axis A);

struct XPathExpr;
struct XPathPath;
struct XPathQualif;

using ExprRef = std::shared_ptr<const XPathExpr>;
using PathRef = std::shared_ptr<const XPathPath>;
using QualifRef = std::shared_ptr<const XPathQualif>;

/// A path: composition, qualified path, step, in-path alternative, or
/// transitive iteration.
///
/// Alt is a small extension of Figure 4 needed by the paper's own
/// benchmark query e10 = html/(head | body): a union nested inside a
/// path. Iterate — written (p)+ — is the *conditional XPath* extension
/// of Marx [34] that the paper's conclusion says the solver supports:
/// one or more repetitions of p. Its translation is the least fixpoint
/// µZ.P→⟦p⟧(χ ∨ Z); cycle-freeness of the result is checked by the
/// solver (a non-progressing p such as (self::*)+ is rejected there).
struct XPathPath {
  enum Kind : uint8_t { Compose, Qualified, Step, Alt, Iterate } K;
  // Compose: P1/P2. Alt: P1 | P2. Iterate: (P1)+.
  PathRef P1, P2;
  // Qualified: P1[Q].
  QualifRef Q;
  // Step: A::Test (nullopt = *).
  Axis A = Axis::Child;
  std::optional<Symbol> Test;

  static PathRef compose(PathRef A, PathRef B);
  static PathRef qualified(PathRef P, QualifRef Q);
  static PathRef step(Axis A, std::optional<Symbol> Test);
  static PathRef alt(PathRef A, PathRef B);
  static PathRef iterate(PathRef P);
};

/// A qualifier (boolean filter).
struct XPathQualif {
  enum Kind : uint8_t { And, Or, Not, Path } K;
  QualifRef Q1, Q2; // And/Or operands; Not operand in Q1
  PathRef P;        // Path

  static QualifRef qand(QualifRef A, QualifRef B);
  static QualifRef qor(QualifRef A, QualifRef B);
  static QualifRef qnot(QualifRef Q);
  static QualifRef path(PathRef P);
};

/// A top-level expression.
struct XPathExpr {
  enum Kind : uint8_t { Absolute, Relative, Union, Intersect } K;
  PathRef P;      // Absolute/Relative
  ExprRef E1, E2; // Union/Intersect operands

  static ExprRef absolute(PathRef P);
  static ExprRef relative(PathRef P);
  static ExprRef unite(ExprRef A, ExprRef B);
  static ExprRef intersect(ExprRef A, ExprRef B);
};

/// Pretty-prints the expression in the concrete syntax accepted by
/// parseXPath. Round-trip guarantee: parseXPath(toString(E)) yields an
/// AST astEquals-equal to E for every E in *parser shape* — the
/// sublanguage parseXPath produces (left-nested unions, compositions
/// and chained qualifiers; in-path alternatives and iterations always
/// parenthesized). Node tests whose names are not plain XPath names
/// (spaces, quotes, a leading digit, ':', …) are emitted as quoted
/// literals, which the parser accepts in node-test position (see
/// printNodeTest), so the guarantee covers arbitrary interned symbols.
std::string toString(const ExprRef &E);
std::string toString(const PathRef &P);
std::string toString(const QualifRef &Q);

/// The name lexing of the concrete syntax, shared by the parser and
/// printNodeTest: the printer's bare-vs-quoted decision must match
/// exactly what parseXPath will lex, or the toString/parseXPath
/// round-trip (and with it the rewrite engine's parse-back guard)
/// breaks silently.
bool isXPathNameStart(char C);
bool isXPathNameChar(char C);

/// Prints \p Test as a node test: the bare name when it lexes as a plain
/// XPath name, otherwise a quoted literal ('…' or "…", preferring the
/// quote kind not contained in the name; a delimiter occurring in the
/// name is doubled, XPath-2.0 style).
std::string printNodeTest(Symbol Test);

/// Structural AST equality (same shape, axes, and interned tests).
/// Shared subtrees compare equal by pointer first, so this is cheap on
/// the rewriter's mostly-shared candidate ASTs.
bool astEquals(const ExprRef &A, const ExprRef &B);
bool astEquals(const PathRef &A, const PathRef &B);
bool astEquals(const QualifRef &A, const QualifRef &B);

} // namespace xsa

#endif // XSA_XPATH_AST_H
