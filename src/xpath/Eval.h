//===- Eval.h - XPath set semantics (Figs. 5-6) ------------------*- C++ -*-===//
//
// Part of the xsa project (PLDI 2007 XPath/type analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The denotational semantics of the XPath fragment (Figures 5 and 6) as
/// functions between sets of nodes of a concrete Document. Used as ground
/// truth for the translation-correctness property (Prop 5.1) and to
/// validate counterexamples produced by the solver.
///
//===----------------------------------------------------------------------===//

#ifndef XSA_XPATH_EVAL_H
#define XSA_XPATH_EVAL_H

#include "tree/Document.h"
#include "xpath/Ast.h"

#include <set>

namespace xsa {

using NodeSet = std::set<NodeId>;

/// S_a: nodes reachable from \p From through axis \p A.
NodeSet evalAxis(const Document &Doc, Axis A, const NodeSet &From);

/// S_p: nodes selected by path \p P from context set \p From.
NodeSet evalPath(const Document &Doc, const PathRef &P, const NodeSet &From);

/// S_q: does qualifier \p Q hold at node \p N?
bool evalQualif(const Document &Doc, const QualifRef &Q, NodeId N);

/// S_e: nodes selected by \p E when evaluation starts at context node
/// \p Ctx (absolute paths restart from Ctx's top-level ancestor).
NodeSet evalXPath(const Document &Doc, const ExprRef &E, NodeId Ctx);

/// Same, using the document's start mark as the context (falls back to
/// the first root if the document has no mark).
NodeSet evalXPath(const Document &Doc, const ExprRef &E);

} // namespace xsa

#endif // XSA_XPATH_EVAL_H
