//===- Eval.cpp - XPath set semantics (Figs. 5-6) ---------------------------===//

#include "xpath/Eval.h"

#include <cassert>

using namespace xsa;

namespace {

NodeSet childrenOf(const Document &Doc, const NodeSet &From) {
  NodeSet R;
  for (NodeId N : From)
    for (NodeId C = Doc.firstChild(N); C != InvalidNodeId;
         C = Doc.nextSibling(C))
      R.insert(C);
  return R;
}

NodeSet parentsOf(const Document &Doc, const NodeSet &From) {
  NodeSet R;
  for (NodeId N : From)
    if (Doc.parent(N) != InvalidNodeId)
      R.insert(Doc.parent(N));
  return R;
}

} // namespace

NodeSet xsa::evalAxis(const Document &Doc, Axis A, const NodeSet &From) {
  NodeSet R;
  switch (A) {
  case Axis::Self:
    return From;
  case Axis::Child:
    return childrenOf(Doc, From);
  case Axis::Parent:
    return parentsOf(Doc, From);
  case Axis::Descendant: {
    NodeSet Frontier = childrenOf(Doc, From);
    while (!Frontier.empty()) {
      R.insert(Frontier.begin(), Frontier.end());
      Frontier = childrenOf(Doc, Frontier);
    }
    return R;
  }
  case Axis::DescOrSelf: {
    R = evalAxis(Doc, Axis::Descendant, From);
    R.insert(From.begin(), From.end());
    return R;
  }
  case Axis::Ancestor: {
    for (NodeId N : From)
      for (NodeId P = Doc.parent(N); P != InvalidNodeId; P = Doc.parent(P))
        R.insert(P);
    return R;
  }
  case Axis::AncOrSelf: {
    R = evalAxis(Doc, Axis::Ancestor, From);
    R.insert(From.begin(), From.end());
    return R;
  }
  case Axis::FollSibling: {
    for (NodeId N : From)
      for (NodeId S = Doc.nextSibling(N); S != InvalidNodeId;
           S = Doc.nextSibling(S))
        R.insert(S);
    return R;
  }
  case Axis::PrecSibling: {
    for (NodeId N : From)
      for (NodeId S = Doc.prevSibling(N); S != InvalidNodeId;
           S = Doc.prevSibling(S))
        R.insert(S);
    return R;
  }
  case Axis::Following:
    // desc-or-self(foll-sibling(anc-or-self(F))) (Fig. 5).
    return evalAxis(Doc, Axis::DescOrSelf,
                    evalAxis(Doc, Axis::FollSibling,
                             evalAxis(Doc, Axis::AncOrSelf, From)));
  case Axis::Preceding:
    return evalAxis(Doc, Axis::DescOrSelf,
                    evalAxis(Doc, Axis::PrecSibling,
                             evalAxis(Doc, Axis::AncOrSelf, From)));
  }
  return R;
}

NodeSet xsa::evalPath(const Document &Doc, const PathRef &P,
                      const NodeSet &From) {
  switch (P->K) {
  case XPathPath::Compose:
    return evalPath(Doc, P->P2, evalPath(Doc, P->P1, From));
  case XPathPath::Qualified: {
    NodeSet Base = evalPath(Doc, P->P1, From);
    NodeSet R;
    for (NodeId N : Base)
      if (evalQualif(Doc, P->Q, N))
        R.insert(N);
    return R;
  }
  case XPathPath::Step: {
    NodeSet Base = evalAxis(Doc, P->A, From);
    if (!P->Test)
      return Base;
    NodeSet R;
    for (NodeId N : Base)
      if (Doc.label(N) == *P->Test)
        R.insert(N);
    return R;
  }
  case XPathPath::Alt: {
    NodeSet R = evalPath(Doc, P->P1, From);
    NodeSet R2 = evalPath(Doc, P->P2, From);
    R.insert(R2.begin(), R2.end());
    return R;
  }
  case XPathPath::Iterate: {
    // One or more repetitions: transitive closure of the step relation.
    NodeSet Acc;
    NodeSet Frontier = evalPath(Doc, P->P1, From);
    while (!Frontier.empty()) {
      NodeSet Next;
      for (NodeId N : Frontier)
        if (Acc.insert(N).second)
          Next.insert(N);
      Frontier = evalPath(Doc, P->P1, Next);
    }
    return Acc;
  }
  }
  return {};
}

bool xsa::evalQualif(const Document &Doc, const QualifRef &Q, NodeId N) {
  switch (Q->K) {
  case XPathQualif::And:
    return evalQualif(Doc, Q->Q1, N) && evalQualif(Doc, Q->Q2, N);
  case XPathQualif::Or:
    return evalQualif(Doc, Q->Q1, N) || evalQualif(Doc, Q->Q2, N);
  case XPathQualif::Not:
    return !evalQualif(Doc, Q->Q1, N);
  case XPathQualif::Path:
    return !evalPath(Doc, Q->P, {N}).empty();
  }
  return false;
}

NodeSet xsa::evalXPath(const Document &Doc, const ExprRef &E, NodeId Ctx) {
  assert(Ctx != InvalidNodeId && "xpath evaluation needs a context node");
  switch (E->K) {
  case XPathExpr::Absolute: {
    // root(F): the top-level ancestor-or-self of the context (Fig. 6).
    NodeId Root = Ctx;
    while (Doc.parent(Root) != InvalidNodeId)
      Root = Doc.parent(Root);
    return evalPath(Doc, E->P, {Root});
  }
  case XPathExpr::Relative:
    return evalPath(Doc, E->P, {Ctx});
  case XPathExpr::Union: {
    NodeSet R = evalXPath(Doc, E->E1, Ctx);
    NodeSet R2 = evalXPath(Doc, E->E2, Ctx);
    R.insert(R2.begin(), R2.end());
    return R;
  }
  case XPathExpr::Intersect: {
    NodeSet A = evalXPath(Doc, E->E1, Ctx);
    NodeSet B = evalXPath(Doc, E->E2, Ctx);
    NodeSet R;
    for (NodeId N : A)
      if (B.count(N))
        R.insert(N);
    return R;
  }
  }
  return {};
}

NodeSet xsa::evalXPath(const Document &Doc, const ExprRef &E) {
  NodeId Ctx = Doc.markedNode();
  if (Ctx == InvalidNodeId)
    Ctx = Doc.firstRoot();
  return evalXPath(Doc, E, Ctx);
}
