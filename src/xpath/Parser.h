//===- Parser.h - XPath concrete syntax --------------------------*- C++ -*-===//
//
// Part of the xsa project (PLDI 2007 XPath/type analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the XPath fragment of Figure 4, with the usual abbreviations:
/// implicit `child::`, `//` for `/desc-or-self::*/`, `.` for `self::*`,
/// `..` for `parent::*`, parenthesized in-path unions `a/(b | c)` (used by
/// the paper's query e10), `|` for union and `&` for intersection of
/// expressions. Both the paper's axis spellings (`foll-sibling`, ...) and
/// the W3C spellings (`following-sibling`, ...) are accepted.
///
//===----------------------------------------------------------------------===//

#ifndef XSA_XPATH_PARSER_H
#define XSA_XPATH_PARSER_H

#include "xpath/Ast.h"

#include <string>
#include <string_view>

namespace xsa {

/// Parses \p Input; returns nullptr and fills \p Error on failure.
ExprRef parseXPath(std::string_view Input, std::string &Error);

} // namespace xsa

#endif // XSA_XPATH_PARSER_H
