//===- Parser.cpp - XPath concrete syntax ----------------------------------===//

#include "xpath/Parser.h"

#include <cctype>
#include <map>

using namespace xsa;

namespace {

const std::map<std::string, Axis, std::less<>> AxisNames = {
    {"self", Axis::Self},
    {"child", Axis::Child},
    {"parent", Axis::Parent},
    {"descendant", Axis::Descendant},
    {"desc-or-self", Axis::DescOrSelf},
    {"descendant-or-self", Axis::DescOrSelf},
    {"ancestor", Axis::Ancestor},
    {"anc-or-self", Axis::AncOrSelf},
    {"ancestor-or-self", Axis::AncOrSelf},
    {"foll-sibling", Axis::FollSibling},
    {"following-sibling", Axis::FollSibling},
    {"prec-sibling", Axis::PrecSibling},
    {"preceding-sibling", Axis::PrecSibling},
    {"following", Axis::Following},
    {"preceding", Axis::Preceding},
};

class XPathParser {
public:
  XPathParser(std::string_view In, std::string &Error) : In(In), Error(Error) {}

  ExprRef run() {
    ExprRef E = parseUnion();
    if (!E)
      return nullptr;
    skipWs();
    if (Pos != In.size()) {
      fail("unexpected trailing input");
      return nullptr;
    }
    return E;
  }

private:
  ExprRef fail(const std::string &Msg) {
    if (Error.empty())
      Error = "xpath parse error at offset " + std::to_string(Pos) + ": " + Msg;
    return nullptr;
  }

  void skipWs() {
    while (Pos < In.size() && std::isspace(static_cast<unsigned char>(In[Pos])))
      ++Pos;
  }

  bool eat(char C) {
    skipWs();
    if (Pos < In.size() && In[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool peek(char C) {
    skipWs();
    return Pos < In.size() && In[Pos] == C;
  }

  bool eatDoubleSlash() {
    skipWs();
    if (In.substr(Pos, 2) == "//") {
      Pos += 2;
      return true;
    }
    return false;
  }

  // One definition with the printer (Ast.h): bare-name lexing and
  // printNodeTest's bare-vs-quoted decision must never diverge.
  static bool isNameStart(char C) { return isXPathNameStart(C); }
  static bool isNameChar(char C) { return isXPathNameChar(C); }

  /// Parses a quoted node-test literal ('…' or "…"); the position is on
  /// the opening delimiter. A doubled delimiter inside the literal
  /// stands for one literal quote (XPath-2.0 style), so names containing
  /// either — or both — quote kinds round-trip through printNodeTest.
  bool parseQuotedName(std::string &Out) {
    char Quote = In[Pos++];
    Out.clear();
    while (Pos < In.size()) {
      char C = In[Pos++];
      if (C == Quote) {
        if (Pos < In.size() && In[Pos] == Quote) {
          Out += Quote;
          ++Pos;
          continue;
        }
        return true;
      }
      // Control characters have no business in element names, and
      // keeping them out of well-formed XPath is what lets service-side
      // keys treat query text as delimiter-free (Batch.cpp's
      // requestSignature note).
      if (static_cast<unsigned char>(C) < 0x20) {
        fail("control character in quoted name");
        return false;
      }
      Out += C;
    }
    fail("unterminated quoted name");
    return false;
  }

  bool peekQuote() {
    skipWs();
    return Pos < In.size() && (In[Pos] == '"' || In[Pos] == '\'');
  }

  std::string peekName() {
    skipWs();
    if (Pos >= In.size() || !isNameStart(In[Pos]))
      return "";
    size_t P = Pos + 1;
    while (P < In.size() && isNameChar(In[P]))
      ++P;
    return std::string(In.substr(Pos, P - Pos));
  }

  std::string parseName() {
    std::string N = peekName();
    Pos += N.size();
    return N;
  }

  bool peekWord(std::string_view W) { return peekName() == W; }

  // expr := intersect ('|' intersect)*
  ExprRef parseUnion() {
    ExprRef L = parseIntersect();
    if (!L)
      return nullptr;
    while (peek('|')) {
      eat('|');
      ExprRef R = parseIntersect();
      if (!R)
        return nullptr;
      L = XPathExpr::unite(L, R);
    }
    return L;
  }

  // intersect := pathExpr ('&' pathExpr)*
  ExprRef parseIntersect() {
    ExprRef L = parsePathExpr();
    if (!L)
      return nullptr;
    while (peek('&')) {
      eat('&');
      ExprRef R = parsePathExpr();
      if (!R)
        return nullptr;
      L = XPathExpr::intersect(L, R);
    }
    return L;
  }

  static PathRef descOrSelfStar() {
    return XPathPath::step(Axis::DescOrSelf, std::nullopt);
  }

  // pathExpr := '//' relpath | '/' relpath | relpath
  ExprRef parsePathExpr() {
    skipWs();
    if (eatDoubleSlash()) {
      // Seed the chain with the desc-or-self step so the whole path
      // stays left-nested — the shape re-parsing the printed expression
      // produces (the printer round-trip guarantee rests on this).
      PathRef P = parseRelPath(descOrSelfStar());
      if (!P)
        return nullptr;
      return XPathExpr::absolute(P);
    }
    if (eat('/')) {
      PathRef P = parseRelPath();
      if (!P)
        return nullptr;
      return XPathExpr::absolute(P);
    }
    PathRef P = parseRelPath();
    if (!P)
      return nullptr;
    return XPathExpr::relative(P);
  }

  // relpath := qualstep (('/'|'//') qualstep)*
  // With \p Seed, the chain starts composed onto it (left-nested).
  PathRef parseRelPath(PathRef Seed = nullptr) {
    PathRef L = parseQualStep();
    if (!L)
      return nullptr;
    if (Seed)
      L = XPathPath::compose(std::move(Seed), L);
    for (;;) {
      skipWs();
      if (eatDoubleSlash()) {
        PathRef R = parseQualStep();
        if (!R)
          return nullptr;
        L = XPathPath::compose(XPathPath::compose(L, descOrSelfStar()), R);
        continue;
      }
      if (peek('/')) {
        eat('/');
        PathRef R = parseQualStep();
        if (!R)
          return nullptr;
        L = XPathPath::compose(L, R);
        continue;
      }
      return L;
    }
  }

  // qualstep := primary ('[' qualifier ']')*
  PathRef parseQualStep() {
    PathRef P = parsePrimaryStep();
    if (!P)
      return nullptr;
    while (peek('[')) {
      eat('[');
      QualifRef Q = parseQualifOr();
      if (!Q)
        return nullptr;
      if (!eat(']')) {
        fail("expected ']' after qualifier");
        return nullptr;
      }
      P = XPathPath::qualified(P, Q);
    }
    return P;
  }

  // primary := '(' relpath ('|' relpath)* ')' '+'? | step
  PathRef parsePrimaryStep() {
    skipWs();
    if (peek('(')) {
      eat('(');
      PathRef L = parseRelPath();
      if (!L)
        return nullptr;
      while (peek('|')) {
        eat('|');
        PathRef R = parseRelPath();
        if (!R)
          return nullptr;
        L = XPathPath::alt(L, R);
      }
      if (!eat(')')) {
        fail("expected ')' in parenthesized path");
        return nullptr;
      }
      // Conditional-XPath iteration (Marx): (p)+.
      if (peek('+')) {
        eat('+');
        return XPathPath::iterate(L);
      }
      return L;
    }
    return parseStep();
  }

  // step := '..' | '.' | '*' | (axis '::')? nodetest
  PathRef parseStep() {
    skipWs();
    if (In.substr(Pos, 2) == "..") {
      Pos += 2;
      return XPathPath::step(Axis::Parent, std::nullopt);
    }
    if (Pos < In.size() && In[Pos] == '.') {
      ++Pos;
      return XPathPath::step(Axis::Self, std::nullopt);
    }
    if (eat('*'))
      return XPathPath::step(Axis::Child, std::nullopt);
    if (peekQuote()) {
      // Quoted node test in abbreviated (child-axis) position.
      std::string Test;
      if (!parseQuotedName(Test))
        return nullptr;
      return XPathPath::step(Axis::Child, internSymbol(Test));
    }
    std::string Name = peekName();
    if (Name.empty()) {
      fail("expected a step");
      return nullptr;
    }
    // Axis prefix?
    Axis A = Axis::Child;
    auto AxIt = AxisNames.find(Name);
    skipWs();
    size_t After = Pos + Name.size();
    if (AxIt != AxisNames.end() && In.substr(After, 2) == "::") {
      A = AxIt->second;
      Pos = After + 2;
      skipWs();
      if (eat('*'))
        return XPathPath::step(A, std::nullopt);
      if (peekQuote()) {
        std::string Quoted;
        if (!parseQuotedName(Quoted))
          return nullptr;
        return XPathPath::step(A, internSymbol(Quoted));
      }
      std::string Test = parseName();
      if (Test.empty()) {
        fail("expected node test after axis");
        return nullptr;
      }
      return XPathPath::step(A, internSymbol(Test));
    }
    // Plain name: abbreviated child step.
    Pos = After;
    return XPathPath::step(Axis::Child, internSymbol(Name));
  }

  // qualifier := qand ('or' qand)*
  QualifRef parseQualifOr() {
    QualifRef L = parseQualifAnd();
    if (!L)
      return nullptr;
    while (peekWord("or")) {
      parseName();
      QualifRef R = parseQualifAnd();
      if (!R)
        return nullptr;
      L = XPathQualif::qor(L, R);
    }
    return L;
  }

  QualifRef parseQualifAnd() {
    QualifRef L = parseQualifPrim();
    if (!L)
      return nullptr;
    while (peekWord("and")) {
      parseName();
      QualifRef R = parseQualifPrim();
      if (!R)
        return nullptr;
      L = XPathQualif::qand(L, R);
    }
    return L;
  }

  QualifRef parseQualifPrim() {
    skipWs();
    if (peekWord("not")) {
      parseName();
      skipWs();
      bool Paren = eat('(');
      QualifRef Q = Paren ? parseQualifOr() : parseQualifPrim();
      if (!Q)
        return nullptr;
      if (Paren && !eat(')')) {
        fail("expected ')' after not(...)");
        return nullptr;
      }
      return XPathQualif::qnot(Q);
    }
    if (peek('(')) {
      eat('(');
      QualifRef Q = parseQualifOr();
      if (!Q)
        return nullptr;
      if (!eat(')')) {
        fail("expected ')'");
        return nullptr;
      }
      return Q;
    }
    PathRef P = parseRelPathInQualif();
    if (!P)
      return nullptr;
    return XPathQualif::path(P);
  }

  /// Paths inside qualifiers may start with '//' or './/' (e.g. the
  /// paper's e1); a leading '//' is relative desc-or-self navigation from
  /// the filtered node (XPath's absolute form is not in the fragment's
  /// qualifier grammar, Fig. 4).
  PathRef parseRelPathInQualif() {
    skipWs();
    if (eatDoubleSlash())
      return parseRelPath(descOrSelfStar()); // left-nested, see above
    return parseRelPath();
  }

  std::string_view In;
  size_t Pos = 0;
  std::string &Error;
};

} // namespace

ExprRef xsa::parseXPath(std::string_view Input, std::string &Error) {
  Error.clear();
  XPathParser P(Input, Error);
  return P.run();
}
