//===- Compile.cpp - XPath to Lµ translation (Figs. 7, 8, 10) --------------===//

#include "xpath/Compile.h"

using namespace xsa;

namespace {

using P = Program;

/// P←⟦p⟧χ of Fig. 10 (forward declaration; mutually recursive with the
/// qualifier translation).
Formula compilePathBack(FormulaFactory &FF, const PathRef &Path, Formula Chi);

} // namespace

Formula xsa::compileAxis(FormulaFactory &FF, Axis A, Formula Chi) {
  switch (A) {
  case Axis::Self:
    return Chi;
  case Axis::Child: {
    // µZ. ⟨1̄⟩χ ∨ ⟨2̄⟩Z.
    Symbol Z = FF.freshVar("Z");
    return FF.mu(Z, FF.disj(FF.diamond(P::ParentInv, Chi),
                            FF.diamond(P::SiblingInv, FF.var(Z))));
  }
  case Axis::FollSibling: {
    // µZ. ⟨2̄⟩χ ∨ ⟨2̄⟩Z.
    Symbol Z = FF.freshVar("Z");
    return FF.mu(Z, FF.disj(FF.diamond(P::SiblingInv, Chi),
                            FF.diamond(P::SiblingInv, FF.var(Z))));
  }
  case Axis::PrecSibling: {
    // µZ. ⟨2⟩χ ∨ ⟨2⟩Z.
    Symbol Z = FF.freshVar("Z");
    return FF.mu(Z, FF.disj(FF.diamond(P::Sibling, Chi),
                            FF.diamond(P::Sibling, FF.var(Z))));
  }
  case Axis::Parent: {
    // ⟨1⟩ µZ. χ ∨ ⟨2⟩Z.
    Symbol Z = FF.freshVar("Z");
    return FF.diamond(
        P::Child, FF.mu(Z, FF.disj(Chi, FF.diamond(P::Sibling, FF.var(Z)))));
  }
  case Axis::Descendant: {
    // µZ. ⟨1̄⟩(χ ∨ Z) ∨ ⟨2̄⟩Z.
    Symbol Z = FF.freshVar("Z");
    return FF.mu(Z, FF.disj(FF.diamond(P::ParentInv, FF.disj(Chi, FF.var(Z))),
                            FF.diamond(P::SiblingInv, FF.var(Z))));
  }
  case Axis::DescOrSelf: {
    // µZ. χ ∨ µY. ⟨1̄⟩(Y ∨ Z) ∨ ⟨2̄⟩Y.
    Symbol Z = FF.freshVar("Z");
    Symbol Y = FF.freshVar("Y");
    Formula Inner = FF.mu(
        Y, FF.disj(FF.diamond(P::ParentInv, FF.disj(FF.var(Y), FF.var(Z))),
                   FF.diamond(P::SiblingInv, FF.var(Y))));
    return FF.mu(Z, FF.disj(Chi, Inner));
  }
  case Axis::Ancestor: {
    // ⟨1⟩ µZ. χ ∨ ⟨1⟩Z ∨ ⟨2⟩Z.
    Symbol Z = FF.freshVar("Z");
    return FF.diamond(
        P::Child,
        FF.mu(Z, FF.disj(FF.disj(Chi, FF.diamond(P::Child, FF.var(Z))),
                         FF.diamond(P::Sibling, FF.var(Z)))));
  }
  case Axis::AncOrSelf: {
    // µZ. χ ∨ ⟨1⟩ µY. Z ∨ ⟨2⟩Y.
    Symbol Z = FF.freshVar("Z");
    Symbol Y = FF.freshVar("Y");
    Formula Inner =
        FF.mu(Y, FF.disj(FF.var(Z), FF.diamond(P::Sibling, FF.var(Y))));
    return FF.mu(Z, FF.disj(Chi, FF.diamond(P::Child, Inner)));
  }
  case Axis::Following:
    // desc-or-self(foll-sibling(anc-or-self χ)).
    return compileAxis(
        FF, Axis::DescOrSelf,
        compileAxis(FF, Axis::FollSibling,
                    compileAxis(FF, Axis::AncOrSelf, Chi)));
  case Axis::Preceding:
    return compileAxis(
        FF, Axis::DescOrSelf,
        compileAxis(FF, Axis::PrecSibling,
                    compileAxis(FF, Axis::AncOrSelf, Chi)));
  }
  return Chi;
}

namespace {

/// A←⟦a⟧χ = A→⟦symmetric(a)⟧χ (Fig. 10).
Formula compileAxisBack(FormulaFactory &FF, Axis A, Formula Chi) {
  return compileAxis(FF, symmetricAxis(A), Chi);
}

/// Q←⟦q⟧χ (Fig. 10).
Formula compileQualifRec(FormulaFactory &FF, const QualifRef &Q, Formula Chi) {
  switch (Q->K) {
  case XPathQualif::And:
    return FF.conj(compileQualifRec(FF, Q->Q1, Chi),
                   compileQualifRec(FF, Q->Q2, Chi));
  case XPathQualif::Or:
    return FF.disj(compileQualifRec(FF, Q->Q1, Chi),
                   compileQualifRec(FF, Q->Q2, Chi));
  case XPathQualif::Not:
    return FF.negate(compileQualifRec(FF, Q->Q1, Chi));
  case XPathQualif::Path:
    return compilePathBack(FF, Q->P, Chi);
  }
  return Chi;
}

Formula compilePathBack(FormulaFactory &FF, const PathRef &Path, Formula Chi) {
  switch (Path->K) {
  case XPathPath::Compose:
    // P←⟦p1/p2⟧χ = P←⟦p1⟧(P←⟦p2⟧χ).
    return compilePathBack(FF, Path->P1, compilePathBack(FF, Path->P2, Chi));
  case XPathPath::Qualified:
    // P←⟦p[q]⟧χ = P←⟦p⟧(χ ∧ Q←⟦q⟧⊤).
    return compilePathBack(
        FF, Path->P1,
        FF.conj(Chi, compileQualifRec(FF, Path->Q, FF.trueF())));
  case XPathPath::Step: {
    // P←⟦a::σ⟧χ = A←⟦a⟧(χ ∧ σ); P←⟦a::*⟧χ = A←⟦a⟧χ.
    Formula Inner =
        Path->Test ? FF.conj(Chi, FF.prop(*Path->Test)) : Chi;
    return compileAxisBack(FF, Path->A, Inner);
  }
  case XPathPath::Alt:
    return FF.disj(compilePathBack(FF, Path->P1, Chi),
                   compilePathBack(FF, Path->P2, Chi));
  case XPathPath::Iterate: {
    // P←⟦(p)+⟧χ = µZ. P←⟦p⟧(χ ∨ Z): there is a 1+-fold p-path to a
    // χ node.
    Symbol Z = FF.freshVar("It");
    return FF.mu(Z, compilePathBack(FF, Path->P1, FF.disj(Chi, FF.var(Z))));
  }
  }
  return Chi;
}

} // namespace

Formula xsa::compileQualif(FormulaFactory &FF, const QualifRef &Q,
                           Formula Chi) {
  return compileQualifRec(FF, Q, Chi);
}

Formula xsa::compilePath(FormulaFactory &FF, const PathRef &Path,
                         Formula Chi) {
  switch (Path->K) {
  case XPathPath::Compose:
    // P→⟦p1/p2⟧χ = P→⟦p2⟧(P→⟦p1⟧χ).
    return compilePath(FF, Path->P2, compilePath(FF, Path->P1, Chi));
  case XPathPath::Qualified:
    // P→⟦p[q]⟧χ = P→⟦p⟧χ ∧ Q←⟦q⟧⊤.
    return FF.conj(compilePath(FF, Path->P1, Chi),
                   compileQualifRec(FF, Path->Q, FF.trueF()));
  case XPathPath::Step: {
    // P→⟦a::σ⟧χ = σ ∧ A→⟦a⟧χ; P→⟦a::*⟧χ = A→⟦a⟧χ.
    Formula Nav = compileAxis(FF, Path->A, Chi);
    return Path->Test ? FF.conj(FF.prop(*Path->Test), Nav) : Nav;
  }
  case XPathPath::Alt:
    return FF.disj(compilePath(FF, Path->P1, Chi),
                   compilePath(FF, Path->P2, Chi));
  case XPathPath::Iterate: {
    // P→⟦(p)+⟧χ = µZ. P→⟦p⟧(χ ∨ Z): reachable from χ by 1+ p-steps
    // (conditional XPath, Marx [34]).
    Symbol Z = FF.freshVar("It");
    return FF.mu(Z, compilePath(FF, Path->P1, FF.disj(Chi, FF.var(Z))));
  }
  }
  return Chi;
}

Formula xsa::rootFormula(FormulaFactory &FF) {
  // Following the previous-sibling chain, the leftmost sibling has no
  // parent. The ⟨1̄⟩ and ⟨2̄⟩ obligations are checked together: a
  // non-leftmost inner child also satisfies ¬⟨1̄⟩⊤ on its own.
  Symbol Z = FF.freshVar("Root");
  return FF.mu(Z, FF.conj(FF.negDiamondTop(P::ParentInv),
                          FF.disj(FF.negDiamondTop(P::SiblingInv),
                                  FF.diamond(P::SiblingInv, FF.var(Z)))));
}

Formula xsa::compileXPath(FormulaFactory &FF, const ExprRef &E, Formula Chi) {
  switch (E->K) {
  case XPathExpr::Absolute: {
    // E→⟦/p⟧χ = P→⟦p⟧((µZ.¬⟨1̄⟩⊤ ∨ ⟨2̄⟩Z) ∧ (µY.(χ∧s) ∨ ⟨1⟩Y ∨ ⟨2⟩Y)):
    // the focus is a root and the marked context lies at or below it in
    // the binary encoding.
    Formula IsRoot = rootFormula(FF);
    Symbol Y = FF.freshVar("Y");
    Formula MarkBelow = FF.mu(
        Y, FF.disj(FF.disj(FF.conj(Chi, FF.start()),
                           FF.diamond(P::Child, FF.var(Y))),
                   FF.diamond(P::Sibling, FF.var(Y))));
    return compilePath(FF, E->P, FF.conj(IsRoot, MarkBelow));
  }
  case XPathExpr::Relative:
    // E→⟦p⟧χ = P→⟦p⟧(χ ∧ s).
    return compilePath(FF, E->P, FF.conj(Chi, FF.start()));
  case XPathExpr::Union:
    return FF.disj(compileXPath(FF, E->E1, Chi),
                   compileXPath(FF, E->E2, Chi));
  case XPathExpr::Intersect:
    return FF.conj(compileXPath(FF, E->E1, Chi),
                   compileXPath(FF, E->E2, Chi));
  }
  return Chi;
}
