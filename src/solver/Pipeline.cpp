//===- Pipeline.cpp - Staged symbolic solver pipeline ----------------------===//

#include "solver/Pipeline.h"

#include "obs/Trace.h"

#include <algorithm>
#include <cassert>

using namespace xsa;

//===----------------------------------------------------------------------===//
// LeanPlan
//===----------------------------------------------------------------------===//

LeanPlan::LeanPlan(FormulaFactory &FF, Formula Phi, LeanOrder Order)
    : FF(FF), L(Lean::compute(FF, Phi, Order)),
      NumBits(static_cast<unsigned>(L.size())) {
  XToY.resize(2 * NumBits);
  for (unsigned I = 0; I < NumBits; ++I)
    XToY[2 * I] = 2 * I + 1;
}

const std::string &LeanPlan::signature() const {
  if (Sig.empty())
    Sig = L.signature(FF);
  return Sig;
}

//===----------------------------------------------------------------------===//
// TransitionSystem
//===----------------------------------------------------------------------===//

TransitionSystem::TransitionSystem(FormulaFactory &FF, const LeanPlan &Plan,
                                   const SolverOptions &Opts, BddManager &M)
    : FF(FF), Plan(Plan), Opts(Opts), M(M) {
  M.ensureVars(2 * Plan.numBits());
}

Bdd TransitionSystem::statusBdd(Formula F, bool YCopy) {
  auto &Memo = StatusMemo[YCopy];
  auto It = Memo.find(F);
  if (It != Memo.end())
    return It->second;
  auto Var = [&](unsigned I) { return YCopy ? y(I) : x(I); };
  const Lean &L = Plan.lean();
  Bdd R;
  switch (F->kind()) {
  case FormulaKind::True:
    R = M.one();
    break;
  case FormulaKind::False:
    R = M.zero();
    break;
  case FormulaKind::Prop:
    R = Var(L.propIndex(F->sym()));
    break;
  case FormulaKind::NegProp:
    R = !Var(L.propIndex(F->sym()));
    break;
  case FormulaKind::Start:
    R = Var(L.startIndex());
    break;
  case FormulaKind::NegStart:
    R = !Var(L.startIndex());
    break;
  case FormulaKind::Var:
    assert(false && "status of an open formula");
    R = M.zero();
    break;
  case FormulaKind::And:
    R = statusBdd(F->lhs(), YCopy) & statusBdd(F->rhs(), YCopy);
    break;
  case FormulaKind::Or:
    R = statusBdd(F->lhs(), YCopy) | statusBdd(F->rhs(), YCopy);
    break;
  case FormulaKind::Exist: {
    unsigned I = L.existIndex(F);
    assert(I != ~0u && "modal formula outside the lean");
    R = Var(I);
    break;
  }
  case FormulaKind::NegExistTop:
    R = !Var(L.diamTopIndex(F->program()));
    break;
  case FormulaKind::Mu:
    R = statusBdd(FF.unfold(F), YCopy);
    break;
  }
  Memo.emplace(F, R);
  return R;
}

Bdd TransitionSystem::typesBdd() {
  if (TypesMemo.valid())
    return TypesMemo;
  const Lean &L = Plan.lean();
  unsigned NumBits = Plan.numBits();
  Bdd T = M.one();
  // Modal consistency: ⟨a⟩φ ⇒ ⟨a⟩⊤.
  for (unsigned I = 0; I < NumBits; ++I) {
    Formula F = L.members()[I];
    if (!F->is(FormulaKind::Exist) || F->lhs() == FF.trueF())
      continue;
    T &= x(I).implies(x(L.diamTopIndex(F->program())));
  }
  // Not both a first child and a second child.
  T &= !(x(L.diamTopIndex(Program::ParentInv)) &
         x(L.diamTopIndex(Program::SiblingInv)));
  // Exactly one atomic proposition.
  Bdd None = M.one(), One = M.zero();
  for (Symbol S : L.props()) {
    Bdd P = x(L.propIndex(S));
    One = (One & !P) | (None & P);
    None &= !P;
  }
  T &= One;
  TypesMemo = T;
  return T;
}

void TransitionSystem::ensureDelta() {
  if (DeltaBuilt)
    return;
  DeltaBuilt = true;
  Span DeltaSpan("solver.delta");
  buildDeltaClauses(Program::Child);
  buildDeltaClauses(Program::Sibling);
  if (DeltaSpan.active())
    DeltaSpan.arg("clauses",
                  static_cast<double>(Delta[0].size() + Delta[1].size()));
}

void TransitionSystem::buildDeltaClauses(Program A) {
  int Idx = A == Program::Child ? 0 : 1;
  const Lean &L = Plan.lean();
  Program ABar = converse(A);
  for (unsigned I = 0; I < Plan.numBits(); ++I) {
    Formula F = L.members()[I];
    if (!F->is(FormulaKind::Exist))
      continue;
    Bdd R;
    if (F->program() == A)
      R = x(I).iff(statusBdd(F->lhs(), /*YCopy=*/true));
    else if (F->program() == ABar)
      R = y(I).iff(statusBdd(F->lhs(), /*YCopy=*/false));
    else
      continue;
    std::vector<unsigned> YDeps;
    for (unsigned V : M.support(R))
      if (V & 1)
        YDeps.push_back(V);
    Delta[Idx].push_back({std::move(R), std::move(YDeps)});
  }
  if (!Opts.EarlyQuantification) {
    Bdd D = M.one();
    for (const Clause &C : Delta[Idx])
      D &= C.R;
    MonolithicDelta[Idx] = D;
  }
}

Bdd TransitionSystem::witness(Program A, const Bdd &TY) {
  ensureDelta();
  Bdd H = Opts.EarlyQuantification ? witnessEarlyQuantified(A, TY)
                                   : witnessMonolithic(A, TY);
  // isparent_a(x) → ∃y [...]: nodes without an a-child need no witness.
  return (!x(Plan.lean().diamTopIndex(A))) | H;
}

Bdd TransitionSystem::witnessMonolithic(Program A, const Bdd &TY) {
  int Idx = A == Program::Child ? 0 : 1;
  std::vector<unsigned> AllY;
  for (unsigned I = 0; I < Plan.numBits(); ++I)
    AllY.push_back(Plan.yVar(I));
  Bdd H = TY & y(Plan.lean().diamTopIndex(converse(A)));
  return M.andExists(H, MonolithicDelta[Idx], M.cube(AllY));
}

Bdd TransitionSystem::witnessEarlyQuantified(Program A, const Bdd &TY) {
  // §7.3: order the clauses R_i so that primed variables can be
  // quantified out as early as possible, choosing at each step the
  // variable of minimum cost (sum of |D_i| over the clauses containing
  // it), then fold with relational products.
  int Idx = A == Program::Child ? 0 : 1;
  const std::vector<Clause> &Clauses = Delta[Idx];
  std::vector<bool> Used(Clauses.size(), false);
  std::vector<size_t> Order;
  for (;;) {
    // Cost of each not-yet-consumed variable.
    std::unordered_map<unsigned, size_t> Cost;
    for (size_t I = 0; I < Clauses.size(); ++I) {
      if (Used[I])
        continue;
      for (unsigned V : Clauses[I].YDeps)
        Cost[V] += Clauses[I].YDeps.size();
    }
    if (Cost.empty()) {
      // Remaining clauses have no primed variables: append them.
      for (size_t I = 0; I < Clauses.size(); ++I)
        if (!Used[I])
          Order.push_back(I);
      break;
    }
    unsigned Best = Cost.begin()->first;
    for (const auto &[V, C] : Cost)
      if (C < Cost[Best] || (C == Cost[Best] && V < Best))
        Best = V;
    for (size_t I = 0; I < Clauses.size(); ++I)
      if (!Used[I] &&
          std::find(Clauses[I].YDeps.begin(), Clauses[I].YDeps.end(), Best) !=
              Clauses[I].YDeps.end()) {
        Used[I] = true;
        Order.push_back(I);
      }
  }
  // E_p = D_ρ(p) \ ∪_{j>p} D_ρ(j).
  std::vector<std::vector<unsigned>> Elim(Order.size());
  std::unordered_map<unsigned, bool> SeenLater;
  for (size_t P = Order.size(); P-- > 0;) {
    for (unsigned V : Clauses[Order[P]].YDeps)
      if (!SeenLater.count(V))
        Elim[P].push_back(V);
    for (unsigned V : Clauses[Order[P]].YDeps)
      SeenLater.emplace(V, true);
  }
  Bdd H = TY & y(Plan.lean().diamTopIndex(converse(A)));
  for (size_t P = 0; P < Order.size(); ++P) {
    const Clause &C = Clauses[Order[P]];
    if (Elim[P].empty())
      H &= C.R;
    else
      H = M.andExists(H, C.R, M.cube(Elim[P]));
  }
  // Quantify primed variables that appear in no clause (e.g. lean bits
  // constrained only by χT).
  std::vector<unsigned> Rest;
  for (unsigned V : M.support(H))
    if (V & 1)
      Rest.push_back(V);
  if (!Rest.empty())
    H = M.exists(H, M.cube(Rest));
  return H;
}

//===----------------------------------------------------------------------===//
// FixpointLoop
//===----------------------------------------------------------------------===//

FixpointLoop::Outcome FixpointLoop::run(const Bdd &FinalCond,
                                        const FixpointSeedData *Seed,
                                        FixpointStrategy Strategy) {
  assert(Strategy != FixpointStrategy::Auto &&
         "BddSolver resolves Auto before the loop runs");
  BddManager &M = TS.manager();
  bool EarlyTermination = TS.options().EarlyTermination;
  Outcome Out;
  Out.Final = M.zero();
  Bdd T = M.zero();
  size_t SeedIdx = 0;
  size_t SeedLen = Seed ? Seed->Snapshots.size() : 0;

  // One sub-step's iterate: while the seed lasts, the stored iterate
  // stands in for the computed one. By lean-determinism of the sub-step
  // operators (each is a function of the lean and the schedule position
  // alone) this is the value \p Compute would have produced, so
  // everything downstream — the early-termination check, the chain and
  // convergence tests, the snapshot record — behaves exactly as in a
  // cold run. Imported lazily: an early exit on replayed iterate i
  // never materializes the tables past i. Stored variables are
  // lean-member indices; the manager's unprimed copy of bit I is
  // variable 2I, remapped on the fly so the shared table is never
  // cloned. RoundReplayed tracks whether the current round came
  // entirely from the seed (Outcome::Replayed counts whole rounds).
  bool RoundReplayed = true;
  auto NextIterate = [&](auto &&Compute) -> Bdd {
    ++Out.SubSteps;
    if (SeedIdx < SeedLen)
      return importSnapshot(M, Seed->Snapshots[SeedIdx++],
                            [](unsigned V) { return 2 * V; });
    RoundReplayed = false;
    return Compute();
  };
  // Records a sub-step's iterate and applies the per-sub-step early-
  // termination check; true means a satisfiable exit.
  auto Record = [&](const Bdd &TNext) -> bool {
    Snapshots.push_back(TNext);
    if (!EarlyTermination)
      return false;
    Out.Final = TNext & FinalCond;
    if (Out.Final.isZero())
      return false;
    Out.Sat = true;
    return true;
  };
  auto Converge = [&](const Bdd &TNext) {
    Out.Converged = true;
    if (!EarlyTermination) {
      Out.Final = TNext & FinalCond;
      Out.Sat = !Out.Final.isZero();
    }
  };

  if (Strategy == FixpointStrategy::Bfs) {
    // §7.1 verbatim: one full Upd image per round.
    for (;;) {
      Span RoundSpan("fixpoint.round");
      if (RoundSpan.active()) {
        RoundSpan.arg("round", static_cast<double>(Out.Iterations));
        RoundSpan.arg("replayed", SeedIdx < SeedLen ? 1 : 0);
        RoundSpan.arg("strategy", "bfs");
      }
      RoundReplayed = true;
      Bdd TNext = NextIterate([&] {
        Bdd TY = TS.shiftToY(T);
        return T | (TS.typesBdd() & TS.witness(Program::Child, TY) &
                    TS.witness(Program::Sibling, TY));
      });
      ++Out.Iterations;
      if (RoundReplayed)
        ++Out.Replayed;
      if (Record(TNext))
        break;
      if (TNext == T) {
        Converge(TNext);
        break;
      }
      T = TNext;
    }
    return Out;
  }

  // Chaining / Saturation. Upd conjoins both programs' witnesses, so a
  // per-label *union* chain (LTSmin's shape) would overshoot the lfp;
  // instead a chain holds one program's witness at the value it had on
  // the chain's base iterate and recomputes only the other. Since the
  // base is ⊆ every later iterate and witnesses are monotone, each
  // sub-step stays ⊆ Upd(current) ⊆ lfp while still ⊇ the sub-step
  // before it — sound and inflationary (DESIGN.md "Strategy
  // soundness"). The held witness is built at most once per chain, so
  // each inner sub-step costs one relational product instead of Bfs's
  // two, and is skipped entirely while the chain replays from a seed.
  Bdd Base;                          // iterate the held witness covers
  Bdd Held;                          // lazy: invalid until first needed
  Program HeldProg = Program::Child; // which program Held is for
  auto Rebase = [&](Program A, const Bdd &NewBase) {
    Base = NewBase;
    Held = Bdd();
    HeldProg = A;
  };
  // The chain product: held witness of HeldProg, fresh witness of the
  // other program, both conjoined with χTypes as in Upd.
  auto ChainStep = [&](Program Chain) -> Bdd {
    return NextIterate([&] {
      if (!Held.valid())
        Held = TS.witness(HeldProg, TS.shiftToY(Base));
      return T | (TS.typesBdd() & Held & TS.witness(Chain, TS.shiftToY(T)));
    });
  };
  // Runs a chain to stabilization. The terminating no-change iterate is
  // recorded like any other: replay decides the chain's exit by
  // comparing consecutive stored iterates, so the duplicate is part of
  // the canonical sequence. Returns true on a satisfiable exit.
  auto Saturate = [&](Program Chain, const char *Label) -> bool {
    for (;;) {
      Span SubSpan("fixpoint.substep");
      if (SubSpan.active()) {
        SubSpan.arg("round", static_cast<double>(Out.Iterations - 1));
        SubSpan.arg("chain", Label);
        SubSpan.arg("replayed", SeedIdx < SeedLen ? 1 : 0);
      }
      Bdd SNext = ChainStep(Chain);
      if (Record(SNext))
        return true;
      bool Changed = SNext != T;
      T = SNext;
      if (!Changed)
        return false;
    }
  };

  const char *StratName =
      Strategy == FixpointStrategy::Chaining ? "chaining" : "saturation";
  for (;;) {
    Span RoundSpan("fixpoint.round");
    if (RoundSpan.active()) {
      RoundSpan.arg("round", static_cast<double>(Out.Iterations));
      RoundSpan.arg("replayed", SeedIdx < SeedLen ? 1 : 0);
      RoundSpan.arg("strategy", StratName);
    }
    RoundReplayed = true;
    ++Out.Iterations;
    // The round opens with a full Upd image (child witness freshly
    // rebased, sibling witness fresh): the convergence probe. A round
    // whose opening image adds nothing has hit Upd's fixpoint — the
    // later chains can only add subsets of Upd's additions.
    Rebase(Program::Child, T);
    Bdd TNext = ChainStep(Program::Sibling);
    bool Exit = Record(TNext);
    if (!Exit && TNext == T) {
      Converge(TNext);
      if (RoundReplayed)
        ++Out.Replayed;
      break;
    }
    T = TNext;
    // Sibling chain: re-apply the ⟨2⟩ product against the freshest
    // iterate, child witness held, until a whole sibling run has been
    // absorbed in this round.
    if (!Exit)
      Exit = Saturate(Program::Sibling, "sibling");
    // Saturation also stabilizes the ⟨1⟩ dimension before re-probing:
    // sibling witness rebased to the sibling-saturated iterate, child
    // witness fresh per sub-step.
    if (Strategy == FixpointStrategy::Saturation && !Exit) {
      Rebase(Program::Sibling, T);
      Exit = Saturate(Program::Child, "child");
    }
    if (RoundReplayed)
      ++Out.Replayed;
    if (Exit)
      break;
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// ModelExtractor
//===----------------------------------------------------------------------===//

/// A single binary tree node of a reconstructed model.
struct ModelExtractor::ModelNode {
  Symbol Label = 0;
  bool Marked = false;
  std::unique_ptr<ModelNode> Child1, Child2;
};

DynBitset ModelExtractor::assignmentToType(const std::vector<bool> &Values,
                                           bool YCopy) {
  const LeanPlan &Plan = TS.plan();
  DynBitset T(Plan.numBits());
  for (unsigned I = 0; I < Plan.numBits(); ++I)
    if (Values[YCopy ? Plan.yVar(I) : Plan.xVar(I)])
      T.set(I);
  return T;
}

Document ModelExtractor::extract(const Bdd &Final) {
  // §7.2: pick a root type, then search successors in the earliest
  // intermediate sets first to minimize model depth.
  std::vector<bool> Values;
  bool Ok = TS.manager().satOne(Final, Values);
  assert(Ok && "final set nonempty but no assignment");
  (void)Ok;
  DynBitset RootType = assignmentToType(Values, /*YCopy=*/false);
  std::unique_ptr<ModelNode> Root =
      rebuildNode(RootType, static_cast<int>(Snapshots.size()) - 1);
  return modelToDocument(*Root);
}

std::unique_ptr<ModelExtractor::ModelNode>
ModelExtractor::rebuildNode(const DynBitset &T, int MaxSnapshot) {
  const Lean &L = TS.plan().lean();
  unsigned NumBits = TS.plan().numBits();
  BddManager &M = TS.manager();
  auto Node = std::make_unique<ModelNode>();
  for (Symbol S : L.props())
    if (T.test(L.propIndex(S))) {
      Node->Label = S;
      break;
    }
  Node->Marked = T.test(L.startIndex());

  for (Program A : {Program::Child, Program::Sibling}) {
    if (!T.test(L.diamTopIndex(A)))
      continue;
    // Constraint on the a-child: ∆a with the parent fixed to T.
    Bdd C = TS.y(L.diamTopIndex(converse(A)));
    Program ABar = converse(A);
    for (unsigned I = 0; I < NumBits; ++I) {
      Formula F = L.members()[I];
      if (!F->is(FormulaKind::Exist))
        continue;
      if (F->program() == A) {
        Bdd S = TS.statusBdd(F->lhs(), /*YCopy=*/true);
        C &= T.test(I) ? S : !S;
      } else if (F->program() == ABar) {
        C &= L.status(TS.factory(), F->lhs(), T) ? TS.y(I) : !TS.y(I);
      }
    }
    // Earliest snapshot containing a compatible child.
    std::unique_ptr<ModelNode> Child;
    for (int J = 0; J < MaxSnapshot; ++J) {
      if (SnapshotsY.size() <= static_cast<size_t>(J))
        SnapshotsY.push_back(TS.shiftToY(Snapshots[J]));
      Bdd D = C & SnapshotsY[J];
      if (D.isZero())
        continue;
      std::vector<bool> Values;
      M.satOne(D, Values);
      DynBitset ChildType = assignmentToType(Values, /*YCopy=*/true);
      Child = rebuildNode(ChildType, J);
      break;
    }
    assert(Child && "missing witness during model reconstruction");
    if (A == Program::Child)
      Node->Child1 = std::move(Child);
    else
      Node->Child2 = std::move(Child);
  }
  return Node;
}

Document ModelExtractor::modelToDocument(const ModelNode &Root) {
  Document Doc;
  Symbol Other = TS.plan().lean().otherProp();
  // Labels σx stand for "any name not in the formula": print as "_any".
  Symbol AnyName = internSymbol("_any");
  auto Emit = [&](auto &&Self, const ModelNode *N, NodeId Parent) -> void {
    for (const ModelNode *Cur = N; Cur; Cur = Cur->Child2.get()) {
      NodeId Id =
          Doc.addNode(Cur->Label == Other ? AnyName : Cur->Label, Parent);
      if (Cur->Marked)
        Doc.setMark(Id);
      if (Cur->Child1)
        Self(Self, Cur->Child1.get(), Id);
    }
  };
  Emit(Emit, &Root, InvalidNodeId);
  return Doc;
}
