//===- BddSolver.h - Symbolic satisfiability solver (§7) ---------*- C++ -*-===//
//
// Part of the xsa project (PLDI 2007 XPath/type analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's satisfiability-testing algorithm (§6.2) in its symbolic
/// implementation (§7):
///
///  * sets of ψ-types are represented implicitly as BDDs over one boolean
///    variable per Lean member (§7.1), with interleaved primed copies for
///    the parent/child relation;
///  * witness bookkeeping is avoided by solving the linear-size "plunging"
///    formula µX.ψ ∨ ⟨1⟩X ∨ ⟨2⟩X at the root (§7.1);
///  * the compatibility relations ∆a are kept as conjunctions of
///    equivalence clauses and the relational products are computed with
///    conjunctive partitioning + early quantification, eliminating primed
///    variables in greedy min-cost order (§7.3);
///  * BDD variables are ordered by breadth-first traversal of the formula
///    (§7.4);
///  * intermediate sets T^i are retained so that a minimal satisfying
///    model (counterexample tree) can be rebuilt top-down (§7.2).
///
/// The main fixpoint is exactly the two-line loop of §7.1:
///
///   χUpd(T)(x) = χT(x) ∨ (χTypes(x) ∧ ∧_{a∈{1,2}} χWita(T)(x))
///
/// with termination as soon as a root type implying the formula appears
/// (the "early exit" that distinguishes this least-fixpoint procedure
/// from the greatest-fixpoint procedure of Tanabe et al., §9).
///
/// Start-mark uniqueness (the four Upd cases of Fig. 16) is enforced by
/// conjoining an Lµ-definable "exactly one mark below the root" formula;
/// see DESIGN.md for the equivalence argument.
///
//===----------------------------------------------------------------------===//

#ifndef XSA_SOLVER_BDDSOLVER_H
#define XSA_SOLVER_BDDSOLVER_H

#include "bdd/Snapshot.h"
#include "logic/Formula.h"
#include "logic/Lean.h"
#include "tree/Document.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace xsa {

struct SolverResult;
struct SolverStats;

/// How FixpointLoop schedules the per-program relational images within
/// the §7.1 iteration (see DESIGN.md "Strategy soundness"):
///
///  * Bfs        — the paper's loop: one full Upd image per round.
///  * Chaining   — per round, compute the ⟨1⟩ (first-child) witness once
///                 and then re-apply the ⟨2⟩ (sibling) product against
///                 the freshest iterate until it stabilizes, so a whole
///                 sibling chain collapses into one round (LTSmin-style
///                 chaining adapted to the conjunction in Upd).
///  * Saturation — chaining's sibling phase followed by a symmetric
///                 child phase (sibling witness held), stabilizing the
///                 "low" sibling dimension before propagating upward.
///  * Auto       — resolve a concrete strategy per lean signature from
///                 the lean's size and label mix (and a StrategyMemo,
///                 when installed) before the run starts. Never reaches
///                 the loop itself.
///
/// Every strategy computes the same least fixpoint and the same verdict
/// and model; only the iterate sequence (and hence the round count)
/// differs, which is why stored sequences are keyed by the resolved
/// strategy (fixpointOptionsKey).
enum class FixpointStrategy : uint8_t { Bfs, Chaining, Saturation, Auto };

/// Stable lowercase name ("bfs", "chaining", "saturation", "auto") used
/// in JSON responses, span labels, CLI flags and the persistent cache.
const char *fixpointStrategyName(FixpointStrategy S);

/// Parses a fixpointStrategyName back; returns false (leaving \p Out
/// untouched) on any other spelling.
bool parseFixpointStrategy(const std::string &Name, FixpointStrategy &Out);

/// Remembered per-lean strategy choices consulted by Auto mode. Keys are
/// lean signatures (the same label-abstracted signature the fixpoint
/// store uses). Implementations live above the solver (see
/// service/Cache.h) and must be safe to call from whatever thread
/// solve() runs on. Stored values are always concrete (never Auto).
class StrategyMemo {
public:
  virtual ~StrategyMemo() = default;
  /// True and sets \p Out when a choice is remembered for \p LeanSig.
  virtual bool lookup(const std::string &LeanSig, FixpointStrategy &Out) = 0;
  virtual void remember(const std::string &LeanSig, FixpointStrategy S) = 0;
};

/// Semantic result cache consulted by BddSolver::solve when installed in
/// SolverOptions. Keys are canonical formulas (FormulaFactory::
/// canonicalize), so α-equivalent queries share an entry, plus the
/// fingerprint of the solver options the entry was produced under
/// (different options can change both the result and the model).
/// Implementations live above the solver (see src/service/Cache.h).
class ResultCache {
public:
  virtual ~ResultCache() = default;
  /// The cached result for \p Canonical under options \p OptsKey, or
  /// nullptr on a miss. The pointer is only valid until the next call.
  virtual const SolverResult *lookup(Formula Canonical, uint32_t OptsKey) = 0;
  virtual void store(Formula Canonical, uint32_t OptsKey,
                     const SolverResult &R) = 0;
};

/// One lean's canonical iterate sequence T^1, T^2, ..., exported as
/// portable snapshots over lean-member indices. The §7.1 update operator
/// Upd is a function of the lean alone (χTypes, the ∆a clauses and the
/// witness conditions never mention the input formula, which enters only
/// through the final condition), so the sequence of iterates from ∅ is
/// the same for every formula with the same lean signature. A stored
/// prefix is therefore replayable verbatim by any such formula's run:
/// replay is output-invisible (same snapshots, same verdict, same model,
/// same iteration count as a cold run) and only skips the expensive
/// image computations. See DESIGN.md for the soundness argument.
struct FixpointSeedData {
  /// T^1 .. T^k in iteration order. A converged sequence carries the
  /// duplicated final iterate, exactly as the solver's loop records it.
  std::vector<BddSnapshot> Snapshots;
  /// True when the sequence ran to Upd's fixpoint (the lfp was reached);
  /// false for the prefix of an early-terminated satisfiable run.
  bool Converged = false;

  size_t totalNodes() const {
    size_t N = 0;
    for (const BddSnapshot &S : Snapshots)
      N += S.nodeCount();
    return N;
  }
};

/// Cross-request fixpoint store consulted by the solver when installed
/// in SolverOptions. Keys are (lean signature, options fingerprint):
/// factory-independent like the result-cache keys, so any worker's run
/// can seed any other's. Implementations live above the solver (see
/// service/FixpointStore.h) and must be safe to call from whatever
/// thread solve() runs on.
class FixpointCache {
public:
  virtual ~FixpointCache() = default;
  /// Cheap dynamic switch: when false the solver skips signature
  /// computation entirely (the session toggles sharing per batch).
  virtual bool enabled() const { return true; }
  /// The best stored sequence for the key, or null. Shared ownership:
  /// entries are immutable once published.
  virtual std::shared_ptr<const FixpointSeedData>
  lookup(const std::string &LeanSig, uint32_t OptsKey) = 0;
  /// Offers a sequence; the store keeps it only if it improves on what
  /// it has (converged beats prefix, longer prefix beats shorter).
  virtual void publish(const std::string &LeanSig, uint32_t OptsKey,
                       std::shared_ptr<const FixpointSeedData> Data) = 0;
};

struct SolverOptions {
  /// Lean member / BDD variable order (§7.4). BreadthFirst is the paper's
  /// choice; the others exist for the ablation benchmarks.
  LeanOrder Order = LeanOrder::BreadthFirst;
  /// Conjunctive partitioning + early quantification (§7.3). When false,
  /// the monolithic ∆a BDD is built up front (ablation).
  bool EarlyQuantification = true;
  /// Enforce that models carry exactly one start mark (Fig. 16's four
  /// Upd cases). Safe to keep on even for formulas not mentioning s.
  bool EnforceSingleMark = true;
  /// Reconstruct a satisfying tree when satisfiable (§7.2).
  bool ExtractModel = true;
  /// Check the final condition after every iteration and stop as soon as
  /// a satisfying root type appears. When false, runs the fixpoint to
  /// completion first (ablation; the Tanabe-style behaviour).
  bool EarlyTermination = true;
  /// Accept only single-rooted models (¬⟨2⟩⊤ at the root in addition to
  /// the ¬⟨1̄⟩⊤/¬⟨2̄⟩⊤ of FinalCheck). The paper's focused trees are
  /// hedges — the root may have top-level siblings — but XML documents
  /// are single-rooted, and on hedges the absolute-path translation
  /// (Fig. 8) lets a top-level node to the left of the mark pose as
  /// "the root". The Analyzer turns this on.
  bool RequireSingleRoot = false;
  /// Optional semantic result cache, not owned. When set, solve()
  /// canonicalizes its input, returns a stored result on a hit (with
  /// FromCache set) and stores the result of every actual run. The
  /// solver calls it from whatever thread solve() runs on; when solver
  /// instances on different threads share underlying storage (the
  /// parallel session does, through per-context adapters), that storage
  /// must be thread-safe — see service/Cache.h.
  ResultCache *Cache = nullptr;
  /// Optional observer invoked with the stats of every *actual* solver
  /// run (cache hits do not fire it). Lets a long-lived session
  /// aggregate cumulative solver work without wrapping every call site.
  /// Like Cache, it runs on the solving thread: hooks installed on
  /// solvers that run concurrently must tally into atomics (the session
  /// uses relaxed counters; see service/Context.h for the memory-order
  /// discussion).
  std::function<void(const SolverStats &)> StatsHook;
  /// Optional cross-request fixpoint store, not owned. When set (and
  /// enabled), every actual run looks up its lean signature, replays a
  /// stored iterate prefix instead of recomputing it, and publishes its
  /// own sequence back at the end. Replay never changes the result —
  /// verdict, model, and the Iterations stat are those of a cold run —
  /// so, like Cache and StatsHook, Fixpoints is excluded from the
  /// options fingerprint.
  FixpointCache *Fixpoints = nullptr;
  /// Fixpoint scheduling strategy. Auto resolves to a concrete strategy
  /// per lean signature before the loop runs (consulting StrategyChoices
  /// when installed, else a pure heuristic over the lean). The verdict
  /// and model are strategy-invariant; the Iterations stat is not.
  FixpointStrategy Strategy = FixpointStrategy::Bfs;
  /// Optional store of remembered per-lean Auto choices, not owned.
  /// Ignored unless Strategy == Auto. Runs on the solving thread, same
  /// thread-safety contract as Cache/Fixpoints. Excluded from the
  /// options fingerprints: a remembered choice only fixes which concrete
  /// strategy Auto resolves to, which is already what the fingerprints
  /// key on.
  StrategyMemo *StrategyChoices = nullptr;
  /// Which BddManager backend a run instantiates (bdd/Bdd.h). Canonical
  /// hash-consing makes every backend produce structurally identical
  /// BDDs, so the verdict, model, snapshots and stats-visible counts are
  /// backend-invariant — which is why Backend (and BddThreads) is
  /// excluded from BOTH option fingerprints: cached results and stored
  /// fixpoint sequences transfer freely across backends.
  BddBackendKind Backend = BddBackendKind::Serial;
  /// Worker threads inside one BDD operation (parallel backend only;
  /// 0 = hardware concurrency). Like Backend, never part of a key.
  unsigned BddThreads = 0;
};

/// Fingerprint of the semantically relevant option bits, used to key
/// cached results. Cache, StatsHook, Fixpoints and StrategyChoices are
/// deliberately excluded. The *configured* Strategy (Auto included, as
/// its own value) is folded in: the verdict and model are
/// strategy-invariant, but the Iterations stat a cached result replays
/// is not, and an Auto run's resolution may differ from any fixed
/// strategy's.
uint32_t solverOptionsKey(const SolverOptions &Opts);

/// Fingerprint used to key fixpoint-store entries: only the bits that
/// could change the iterate sequence itself. Order and EnforceSingleMark
/// already show in the lean signature; RequireSingleRoot, ExtractModel
/// and EarlyTermination only affect the final condition, model
/// reconstruction, and how *far* the sequence is followed — none of
/// which changes an iterate's value — so runs differing in those share
/// sequences freely. EarlyQuantification is kept out of caution (both
/// modes compute the same relational product). The *resolved* strategy
/// IS part of the key: each strategy walks a different iterate sequence
/// to the same fixpoint, so a Bfs seed must never replay into a
/// Chaining run (solve() resolves Auto before computing the key; the
/// one-argument form keys on Opts.Strategy as-is).
uint32_t fixpointOptionsKey(const SolverOptions &Opts);
uint32_t fixpointOptionsKey(const SolverOptions &Opts,
                            FixpointStrategy Resolved);

struct SolverStats {
  size_t LeanSize = 0;
  /// Fixpoint rounds. Under Bfs one round is one Upd image (the §7.1
  /// iteration count); under Chaining/Saturation one round is one pass
  /// of the strategy's sub-step schedule, so the count measures how
  /// often the loop returned to a fresh full image — the number the
  /// strategies exist to reduce.
  size_t Iterations = 0;
  /// Of Iterations, how many rounds were replayed in full from a
  /// fixpoint-store seed rather than computed (0 for an unseeded run; a
  /// round the seed only partially covered counts as computed).
  /// Iterations itself is seed-independent — it always reports the
  /// cold-equivalent count.
  size_t IterationsReplayed = 0;
  /// Relational-image sub-steps across all rounds: equals Iterations
  /// under Bfs, and is larger under Chaining/Saturation (each round
  /// runs several cheaper single-program products).
  size_t SubSteps = 0;
  /// The concrete strategy the run executed (what Auto resolved to;
  /// never FixpointStrategy::Auto).
  FixpointStrategy StrategyUsed = FixpointStrategy::Bfs;
  size_t PeakBddNodes = 0;
  double TimeMs = 0;
};

struct SolverResult {
  bool Satisfiable = false;
  /// A satisfying tree (hedge) with the start mark set, when requested.
  std::optional<Document> Model;
  SolverStats Stats;
  /// True when this result was served from a ResultCache; Stats then
  /// describe the original run that produced the entry.
  bool FromCache = false;
};

/// Decides the satisfiability of closed cycle-free Lµ formulas over
/// finite focused trees (Theorem 6.3), in time 2^O(|Lean(ψ)|)
/// (Lemma 6.7).
class BddSolver {
public:
  explicit BddSolver(FormulaFactory &FF, SolverOptions Opts = {})
      : FF(FF), Opts(Opts) {}

  /// Is JψK non-empty? \p Psi must be closed and cycle free (checked
  /// with assertions).
  SolverResult solve(Formula Psi);

private:
  FormulaFactory &FF;
  SolverOptions Opts;
};

/// µX.ψ ∨ ⟨1⟩X ∨ ⟨2⟩X: ψ holds somewhere at or below the focus (§7.1).
Formula plungeFormula(FormulaFactory &FF, Formula Psi);

/// "Exactly one start mark in the binary subtree of the focus": the
/// Lµ-definable uniqueness constraint used in place of Fig. 16's marked
/// triples. Cycle free (downward modalities only).
Formula singleMarkFormula(FormulaFactory &FF);

} // namespace xsa

#endif // XSA_SOLVER_BDDSOLVER_H
