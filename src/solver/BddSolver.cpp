//===- BddSolver.cpp - Symbolic satisfiability solver (§7) -----------------===//

#include "solver/BddSolver.h"

#include "bdd/Bdd.h"
#include "logic/CycleFree.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <unordered_map>

using namespace xsa;

Formula xsa::plungeFormula(FormulaFactory &FF, Formula Psi) {
  Symbol X = FF.freshVar("Plunge");
  return FF.mu(X, FF.disj(FF.disj(Psi, FF.diamond(Program::Child, FF.var(X))),
                          FF.diamond(Program::Sibling, FF.var(X))));
}

Formula xsa::singleMarkFormula(FormulaFactory &FF) {
  // Z: no mark in the binary subtree of the focus.
  // O: exactly one mark in the binary subtree of the focus.
  Symbol Z = FF.freshVar("NoMark");
  Symbol O = FF.freshVar("OneMark");
  auto NoneBelow = [&](Program A) {
    return FF.disj(FF.negDiamondTop(A), FF.diamond(A, FF.var(Z)));
  };
  Formula ZDef = FF.conj(FF.negStart(),
                         FF.conj(NoneBelow(Program::Child),
                                 NoneBelow(Program::Sibling)));
  Formula Here = FF.conj(FF.start(), FF.conj(NoneBelow(Program::Child),
                                             NoneBelow(Program::Sibling)));
  Formula InFirst =
      FF.conj(FF.negStart(), FF.conj(FF.diamond(Program::Child, FF.var(O)),
                                     NoneBelow(Program::Sibling)));
  Formula InSecond =
      FF.conj(FF.negStart(), FF.conj(NoneBelow(Program::Child),
                                     FF.diamond(Program::Sibling, FF.var(O))));
  Formula ODef = FF.disj(Here, FF.disj(InFirst, InSecond));
  return FF.mu({{Z, ZDef}, {O, ODef}}, FF.var(O));
}

namespace {

/// A single binary tree node of a reconstructed model.
struct ModelNode {
  Symbol Label = 0;
  bool Marked = false;
  std::unique_ptr<ModelNode> Child1, Child2;
};

/// One solver run: owns the BDD manager, the Lean and all derived BDDs.
class SymbolicRun {
public:
  SymbolicRun(FormulaFactory &FF, const SolverOptions &Opts, Formula Phi)
      : FF(FF), Opts(Opts), Phi(Phi),
        L(Lean::compute(FF, Phi, Opts.Order)),
        NumBits(static_cast<unsigned>(L.size())) {
    M.ensureVars(2 * NumBits);
    XToY.resize(2 * NumBits);
    for (unsigned I = 0; I < NumBits; ++I)
      XToY[2 * I] = 2 * I + 1;
  }

  SolverResult run();

  const Lean &lean() const { return L; }

private:
  unsigned xVar(unsigned I) const { return 2 * I; }
  unsigned yVar(unsigned I) const { return 2 * I + 1; }

  Bdd x(unsigned I) { return M.var(xVar(I)); }
  Bdd y(unsigned I) { return M.var(yVar(I)); }

  Bdd shiftToY(const Bdd &F) { return M.remapVars(F, XToY); }

  Bdd statusBdd(Formula F, bool YCopy);
  Bdd typesBdd();
  void buildDeltaClauses(Program A);
  Bdd witness(Program A, const Bdd &TY);
  Bdd witnessEarlyQuantified(Program A, const Bdd &TY);
  Bdd witnessMonolithic(Program A, const Bdd &TY);

  DynBitset assignmentToType(const std::vector<bool> &Values, bool YCopy);
  std::unique_ptr<ModelNode> rebuildNode(const DynBitset &T, int MaxSnapshot);
  Document modelToDocument(const ModelNode &Root);

  FormulaFactory &FF;
  const SolverOptions &Opts;
  Formula Phi;
  Lean L;
  unsigned NumBits;
  BddManager M;
  std::vector<unsigned> XToY;

  std::unordered_map<Formula, Bdd> StatusMemo[2]; // [0]=x copy, [1]=y copy

  // ∆a as equivalence clauses (index 0: program 1, index 1: program 2).
  struct Clause {
    Bdd R;                       ///< the clause over x and y variables
    std::vector<unsigned> YDeps; ///< primed variables it depends on
  };
  std::vector<Clause> Delta[2];
  Bdd MonolithicDelta[2];

  std::vector<Bdd> Snapshots;  ///< T^1, T^2, ... (over x)
  std::vector<Bdd> SnapshotsY; ///< lazily computed y-copies
};

Bdd SymbolicRun::statusBdd(Formula F, bool YCopy) {
  auto &Memo = StatusMemo[YCopy];
  auto It = Memo.find(F);
  if (It != Memo.end())
    return It->second;
  auto Var = [&](unsigned I) { return YCopy ? y(I) : x(I); };
  Bdd R;
  switch (F->kind()) {
  case FormulaKind::True:
    R = M.one();
    break;
  case FormulaKind::False:
    R = M.zero();
    break;
  case FormulaKind::Prop:
    R = Var(L.propIndex(F->sym()));
    break;
  case FormulaKind::NegProp:
    R = !Var(L.propIndex(F->sym()));
    break;
  case FormulaKind::Start:
    R = Var(L.startIndex());
    break;
  case FormulaKind::NegStart:
    R = !Var(L.startIndex());
    break;
  case FormulaKind::Var:
    assert(false && "status of an open formula");
    R = M.zero();
    break;
  case FormulaKind::And:
    R = statusBdd(F->lhs(), YCopy) & statusBdd(F->rhs(), YCopy);
    break;
  case FormulaKind::Or:
    R = statusBdd(F->lhs(), YCopy) | statusBdd(F->rhs(), YCopy);
    break;
  case FormulaKind::Exist: {
    unsigned I = L.existIndex(F);
    assert(I != ~0u && "modal formula outside the lean");
    R = Var(I);
    break;
  }
  case FormulaKind::NegExistTop:
    R = !Var(L.diamTopIndex(F->program()));
    break;
  case FormulaKind::Mu:
    R = statusBdd(FF.unfold(F), YCopy);
    break;
  }
  Memo.emplace(F, R);
  return R;
}

Bdd SymbolicRun::typesBdd() {
  Bdd T = M.one();
  // Modal consistency: ⟨a⟩φ ⇒ ⟨a⟩⊤.
  for (unsigned I = 0; I < NumBits; ++I) {
    Formula F = L.members()[I];
    if (!F->is(FormulaKind::Exist) || F->lhs() == FF.trueF())
      continue;
    T &= x(I).implies(x(L.diamTopIndex(F->program())));
  }
  // Not both a first child and a second child.
  T &= !(x(L.diamTopIndex(Program::ParentInv)) &
         x(L.diamTopIndex(Program::SiblingInv)));
  // Exactly one atomic proposition.
  Bdd None = M.one(), One = M.zero();
  for (Symbol S : L.props()) {
    Bdd P = x(L.propIndex(S));
    One = (One & !P) | (None & P);
    None &= !P;
  }
  T &= One;
  return T;
}

void SymbolicRun::buildDeltaClauses(Program A) {
  int Idx = A == Program::Child ? 0 : 1;
  Program ABar = converse(A);
  for (unsigned I = 0; I < NumBits; ++I) {
    Formula F = L.members()[I];
    if (!F->is(FormulaKind::Exist))
      continue;
    Bdd R;
    if (F->program() == A)
      R = x(I).iff(statusBdd(F->lhs(), /*YCopy=*/true));
    else if (F->program() == ABar)
      R = y(I).iff(statusBdd(F->lhs(), /*YCopy=*/false));
    else
      continue;
    std::vector<unsigned> YDeps;
    for (unsigned V : M.support(R))
      if (V & 1)
        YDeps.push_back(V);
    Delta[Idx].push_back({std::move(R), std::move(YDeps)});
  }
  if (!Opts.EarlyQuantification) {
    Bdd D = M.one();
    for (const Clause &C : Delta[Idx])
      D &= C.R;
    MonolithicDelta[Idx] = D;
  }
}

Bdd SymbolicRun::witness(Program A, const Bdd &TY) {
  Bdd H = Opts.EarlyQuantification ? witnessEarlyQuantified(A, TY)
                                   : witnessMonolithic(A, TY);
  // isparent_a(x) → ∃y [...]: nodes without an a-child need no witness.
  return (!x(L.diamTopIndex(A))) | H;
}

Bdd SymbolicRun::witnessMonolithic(Program A, const Bdd &TY) {
  int Idx = A == Program::Child ? 0 : 1;
  std::vector<unsigned> AllY;
  for (unsigned I = 0; I < NumBits; ++I)
    AllY.push_back(yVar(I));
  Bdd H = TY & y(L.diamTopIndex(converse(A)));
  return M.andExists(H, MonolithicDelta[Idx], M.cube(AllY));
}

Bdd SymbolicRun::witnessEarlyQuantified(Program A, const Bdd &TY) {
  // §7.3: order the clauses R_i so that primed variables can be
  // quantified out as early as possible, choosing at each step the
  // variable of minimum cost (sum of |D_i| over the clauses containing
  // it), then fold with relational products.
  int Idx = A == Program::Child ? 0 : 1;
  const std::vector<Clause> &Clauses = Delta[Idx];
  std::vector<bool> Used(Clauses.size(), false);
  std::vector<size_t> Order;
  for (;;) {
    // Cost of each not-yet-consumed variable.
    std::unordered_map<unsigned, size_t> Cost;
    for (size_t I = 0; I < Clauses.size(); ++I) {
      if (Used[I])
        continue;
      for (unsigned V : Clauses[I].YDeps)
        Cost[V] += Clauses[I].YDeps.size();
    }
    if (Cost.empty()) {
      // Remaining clauses have no primed variables: append them.
      for (size_t I = 0; I < Clauses.size(); ++I)
        if (!Used[I])
          Order.push_back(I);
      break;
    }
    unsigned Best = Cost.begin()->first;
    for (const auto &[V, C] : Cost)
      if (C < Cost[Best] || (C == Cost[Best] && V < Best))
        Best = V;
    for (size_t I = 0; I < Clauses.size(); ++I)
      if (!Used[I] &&
          std::find(Clauses[I].YDeps.begin(), Clauses[I].YDeps.end(), Best) !=
              Clauses[I].YDeps.end()) {
        Used[I] = true;
        Order.push_back(I);
      }
  }
  // E_p = D_ρ(p) \ ∪_{j>p} D_ρ(j).
  std::vector<std::vector<unsigned>> Elim(Order.size());
  std::unordered_map<unsigned, bool> SeenLater;
  for (size_t P = Order.size(); P-- > 0;) {
    for (unsigned V : Clauses[Order[P]].YDeps)
      if (!SeenLater.count(V))
        Elim[P].push_back(V);
    for (unsigned V : Clauses[Order[P]].YDeps)
      SeenLater.emplace(V, true);
  }
  Bdd H = TY & y(L.diamTopIndex(converse(A)));
  for (size_t P = 0; P < Order.size(); ++P) {
    const Clause &C = Clauses[Order[P]];
    if (Elim[P].empty())
      H &= C.R;
    else
      H = M.andExists(H, C.R, M.cube(Elim[P]));
  }
  // Quantify primed variables that appear in no clause (e.g. lean bits
  // constrained only by χT).
  std::vector<unsigned> Rest;
  for (unsigned V : M.support(H))
    if (V & 1)
      Rest.push_back(V);
  if (!Rest.empty())
    H = M.exists(H, M.cube(Rest));
  return H;
}

DynBitset SymbolicRun::assignmentToType(const std::vector<bool> &Values,
                                        bool YCopy) {
  DynBitset T(NumBits);
  for (unsigned I = 0; I < NumBits; ++I)
    if (Values[YCopy ? yVar(I) : xVar(I)])
      T.set(I);
  return T;
}

SolverResult SymbolicRun::run() {
  SolverResult Result;
  Bdd Types = typesBdd();
  buildDeltaClauses(Program::Child);
  buildDeltaClauses(Program::Sibling);
  Bdd RootCond = (!x(L.diamTopIndex(Program::ParentInv))) &
                 (!x(L.diamTopIndex(Program::SiblingInv)));
  if (Opts.RequireSingleRoot)
    RootCond &= !x(L.diamTopIndex(Program::Sibling));
  Bdd StatusPhi = statusBdd(Phi, /*YCopy=*/false);
  Bdd FinalCond = RootCond & StatusPhi;

  Bdd T = M.zero();
  Bdd Final = M.zero();
  bool Sat = false;
  for (;;) {
    Bdd TY = shiftToY(T);
    Bdd TNext =
        T | (Types & witness(Program::Child, TY) &
             witness(Program::Sibling, TY));
    ++Result.Stats.Iterations;
    Snapshots.push_back(TNext);
    if (Opts.EarlyTermination) {
      Final = TNext & FinalCond;
      if (!Final.isZero()) {
        Sat = true;
        break;
      }
    }
    if (TNext == T) {
      if (!Opts.EarlyTermination) {
        Final = TNext & FinalCond;
        Sat = !Final.isZero();
      }
      break;
    }
    T = TNext;
  }
  Result.Satisfiable = Sat;
  Result.Stats.LeanSize = NumBits;
  Result.Stats.PeakBddNodes = M.peakNodes();

  if (Sat && Opts.ExtractModel) {
    // §7.2: pick a root type, then search successors in the earliest
    // intermediate sets first to minimize model depth.
    std::vector<bool> Values;
    bool Ok = M.satOne(Final, Values);
    assert(Ok && "final set nonempty but no assignment");
    (void)Ok;
    DynBitset RootType = assignmentToType(Values, /*YCopy=*/false);
    std::unique_ptr<ModelNode> Root =
        rebuildNode(RootType, static_cast<int>(Snapshots.size()) - 1);
    Result.Model = modelToDocument(*Root);
  }
  return Result;
}

std::unique_ptr<ModelNode> SymbolicRun::rebuildNode(const DynBitset &T,
                                                    int MaxSnapshot) {
  auto Node = std::make_unique<ModelNode>();
  for (Symbol S : L.props())
    if (T.test(L.propIndex(S))) {
      Node->Label = S;
      break;
    }
  Node->Marked = T.test(L.startIndex());

  for (Program A : {Program::Child, Program::Sibling}) {
    if (!T.test(L.diamTopIndex(A)))
      continue;
    // Constraint on the a-child: ∆a with the parent fixed to T.
    Bdd C = y(L.diamTopIndex(converse(A)));
    Program ABar = converse(A);
    for (unsigned I = 0; I < NumBits; ++I) {
      Formula F = L.members()[I];
      if (!F->is(FormulaKind::Exist))
        continue;
      if (F->program() == A) {
        Bdd S = statusBdd(F->lhs(), /*YCopy=*/true);
        C &= T.test(I) ? S : !S;
      } else if (F->program() == ABar) {
        C &= L.status(FF, F->lhs(), T) ? y(I) : !y(I);
      }
    }
    // Earliest snapshot containing a compatible child.
    std::unique_ptr<ModelNode> Child;
    for (int J = 0; J < MaxSnapshot; ++J) {
      if (SnapshotsY.size() <= static_cast<size_t>(J))
        SnapshotsY.push_back(shiftToY(Snapshots[J]));
      Bdd D = C & SnapshotsY[J];
      if (D.isZero())
        continue;
      std::vector<bool> Values;
      M.satOne(D, Values);
      DynBitset ChildType = assignmentToType(Values, /*YCopy=*/true);
      Child = rebuildNode(ChildType, J);
      break;
    }
    assert(Child && "missing witness during model reconstruction");
    if (A == Program::Child)
      Node->Child1 = std::move(Child);
    else
      Node->Child2 = std::move(Child);
  }
  return Node;
}

Document SymbolicRun::modelToDocument(const ModelNode &Root) {
  Document Doc;
  Symbol Other = L.otherProp();
  // Labels σx stand for "any name not in the formula": print as "_any".
  Symbol AnyName = internSymbol("_any");
  auto Emit = [&](auto &&Self, const ModelNode *N, NodeId Parent) -> void {
    for (const ModelNode *Cur = N; Cur; Cur = Cur->Child2.get()) {
      NodeId Id =
          Doc.addNode(Cur->Label == Other ? AnyName : Cur->Label, Parent);
      if (Cur->Marked)
        Doc.setMark(Id);
      if (Cur->Child1)
        Self(Self, Cur->Child1.get(), Id);
    }
  };
  Emit(Emit, &Root, InvalidNodeId);
  return Doc;
}

} // namespace

uint32_t xsa::solverOptionsKey(const SolverOptions &Opts) {
  uint32_t K = static_cast<uint32_t>(Opts.Order);
  K = (K << 1) | Opts.EarlyQuantification;
  K = (K << 1) | Opts.EnforceSingleMark;
  K = (K << 1) | Opts.ExtractModel;
  K = (K << 1) | Opts.EarlyTermination;
  K = (K << 1) | Opts.RequireSingleRoot;
  return K;
}

SolverResult BddSolver::solve(Formula Psi) {
  auto Start = std::chrono::steady_clock::now();
  assert(FF.isClosed(Psi) && "solver input must be closed");
  assert(isCycleFree(Psi) && "solver input must be cycle free");
  Formula Canonical = nullptr;
  if (Opts.Cache) {
    Canonical = FF.canonicalize(Psi);
    if (const SolverResult *Hit =
            Opts.Cache->lookup(Canonical, solverOptionsKey(Opts))) {
      SolverResult R = *Hit;
      R.FromCache = true;
      return R;
    }
  }
  Formula Phi = plungeFormula(FF, Psi);
  if (Opts.EnforceSingleMark)
    Phi = FF.conj(singleMarkFormula(FF), Phi);
  SymbolicRun Run(FF, Opts, Phi);
  SolverResult R = Run.run();
  R.Stats.TimeMs =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - Start)
          .count();
  if (Opts.StatsHook)
    Opts.StatsHook(R.Stats);
  if (Opts.Cache)
    Opts.Cache->store(Canonical, solverOptionsKey(Opts), R);
  return R;
}
