//===- BddSolver.cpp - Symbolic satisfiability solver (§7) -----------------===//
//
// The solver proper is the staged pipeline of Pipeline.h; this file keeps
// the formula-level preprocessing (plunging, the single-mark constraint)
// and the orchestration of one run: result cache, LeanPlan,
// TransitionSystem, fixpoint-store seed lookup, FixpointLoop, model
// extraction, fixpoint-store publish.
//
//===----------------------------------------------------------------------===//

#include "solver/BddSolver.h"

#include "bdd/Bdd.h"
#include "bdd/Snapshot.h"
#include "logic/CycleFree.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "solver/Pipeline.h"

#include <array>
#include <cassert>
#include <chrono>
#include <optional>
#include <utility>

using namespace xsa;

Formula xsa::plungeFormula(FormulaFactory &FF, Formula Psi) {
  Symbol X = FF.freshVar("Plunge");
  return FF.mu(X, FF.disj(FF.disj(Psi, FF.diamond(Program::Child, FF.var(X))),
                          FF.diamond(Program::Sibling, FF.var(X))));
}

Formula xsa::singleMarkFormula(FormulaFactory &FF) {
  // Z: no mark in the binary subtree of the focus.
  // O: exactly one mark in the binary subtree of the focus.
  Symbol Z = FF.freshVar("NoMark");
  Symbol O = FF.freshVar("OneMark");
  auto NoneBelow = [&](Program A) {
    return FF.disj(FF.negDiamondTop(A), FF.diamond(A, FF.var(Z)));
  };
  Formula ZDef = FF.conj(FF.negStart(),
                         FF.conj(NoneBelow(Program::Child),
                                 NoneBelow(Program::Sibling)));
  Formula Here = FF.conj(FF.start(), FF.conj(NoneBelow(Program::Child),
                                             NoneBelow(Program::Sibling)));
  Formula InFirst =
      FF.conj(FF.negStart(), FF.conj(FF.diamond(Program::Child, FF.var(O)),
                                     NoneBelow(Program::Sibling)));
  Formula InSecond =
      FF.conj(FF.negStart(), FF.conj(NoneBelow(Program::Child),
                                     FF.diamond(Program::Sibling, FF.var(O))));
  Formula ODef = FF.disj(Here, FF.disj(InFirst, InSecond));
  return FF.mu({{Z, ZDef}, {O, ODef}}, FF.var(O));
}

const char *xsa::fixpointStrategyName(FixpointStrategy S) {
  switch (S) {
  case FixpointStrategy::Bfs:
    return "bfs";
  case FixpointStrategy::Chaining:
    return "chaining";
  case FixpointStrategy::Saturation:
    return "saturation";
  case FixpointStrategy::Auto:
    return "auto";
  }
  return "bfs";
}

bool xsa::parseFixpointStrategy(const std::string &Name,
                                FixpointStrategy &Out) {
  for (FixpointStrategy S :
       {FixpointStrategy::Bfs, FixpointStrategy::Chaining,
        FixpointStrategy::Saturation, FixpointStrategy::Auto})
    if (Name == fixpointStrategyName(S)) {
      Out = S;
      return true;
    }
  return false;
}

uint32_t xsa::solverOptionsKey(const SolverOptions &Opts) {
  uint32_t K = static_cast<uint32_t>(Opts.Order);
  K = (K << 1) | Opts.EarlyQuantification;
  K = (K << 1) | Opts.EnforceSingleMark;
  K = (K << 1) | Opts.ExtractModel;
  K = (K << 1) | Opts.EarlyTermination;
  K = (K << 1) | Opts.RequireSingleRoot;
  K = (K << 2) | static_cast<uint32_t>(Opts.Strategy);
  return K;
}

uint32_t xsa::fixpointOptionsKey(const SolverOptions &Opts) {
  return fixpointOptionsKey(Opts, Opts.Strategy);
}

uint32_t xsa::fixpointOptionsKey(const SolverOptions &Opts,
                                 FixpointStrategy Resolved) {
  return (static_cast<uint32_t>(Resolved) << 1) | Opts.EarlyQuantification;
}

namespace {

/// Auto mode's pure heuristic: a function of the lean alone, so every
/// worker (and every future session replaying the persistent cache)
/// resolves the same lean to the same strategy. Small leans converge in
/// a handful of rounds under any schedule, so the chains' confirm
/// sub-steps are pure overhead; beyond that, a lean whose modal members
/// skew toward ⟨2⟩ has the long sibling runs chaining collapses (one
/// XML level is one ⟨1⟩ step plus a ⟨2⟩ chain in the binary encoding),
/// while child-heavy leans deserve saturation's second phase.
FixpointStrategy resolveAutoStrategy(const Lean &L) {
  if (L.size() < 16)
    return FixpointStrategy::Bfs;
  size_t Sib = L.existsOfProgram(Program::Sibling).size();
  size_t Chi = L.existsOfProgram(Program::Child).size();
  return Sib >= Chi ? FixpointStrategy::Chaining
                    : FixpointStrategy::Saturation;
}

/// `xsa_fixpoint_rounds_total{strategy=...}` / `..._substeps_total`:
/// cumulative loop work by resolved strategy. Volatile for the same
/// reason as the BDD tallies: at --jobs > 1 which duplicate request wins
/// the result-cache race decides how many runs they cover.
void tallyStrategyMetrics(FixpointStrategy S, size_t Rounds,
                          size_t SubSteps) {
  static const std::array<std::pair<Counter *, Counter *>, 3> ByStrategy =
      [] {
        std::array<std::pair<Counter *, Counter *>, 3> A{};
        MetricRegistry &R = MetricRegistry::global();
        for (size_t I = 0; I < A.size(); ++I) {
          const char *Name =
              fixpointStrategyName(static_cast<FixpointStrategy>(I));
          A[I] = {&R.counter(labeledMetricName("xsa_fixpoint_rounds_total",
                                               "strategy", Name),
                             "Fixpoint rounds run, by strategy",
                             /*Volatile=*/true),
                  &R.counter(labeledMetricName("xsa_fixpoint_substeps_total",
                                               "strategy", Name),
                             "Fixpoint relational-image sub-steps, by strategy",
                             /*Volatile=*/true)};
        }
        return A;
      }();
  auto &[RoundsC, SubStepsC] = ByStrategy[static_cast<size_t>(S)];
  RoundsC->add(Rounds);
  SubStepsC->add(SubSteps);
}

/// Exports a finished run's iterate sequence over lean-member indices.
std::shared_ptr<const FixpointSeedData>
exportSequence(BddManager &M, const std::vector<Bdd> &Snapshots,
               bool Converged) {
  auto Data = std::make_shared<FixpointSeedData>();
  Data->Converged = Converged;
  Data->Snapshots.reserve(Snapshots.size());
  for (const Bdd &T : Snapshots) {
    BddSnapshot S = exportSnapshot(M, T);
    S.mapVars([](unsigned V) { return V / 2; });
    Data->Snapshots.push_back(std::move(S));
  }
  return Data;
}

/// Samples the run's BDD manager statistics into the global gauges and
/// counters at a span boundary (end of solve). Gauges report the last
/// run's state; the counters accumulate across runs so exported hit
/// rates are process-wide.
void sampleBddMetrics(const BddManager &M, Span &S) {
  // Volatile: at --jobs > 1 which duplicate request wins the result-cache
  // race — and therefore how many solver runs these tallies cover — varies
  // with scheduling, so they are excluded from --stable metrics output.
  // One labeled series per backend (like the per-strategy tallies): the
  // serial and parallel managers count probes differently enough that
  // mixing them in one series would hide regressions in either.
  struct BackendSeries {
    Gauge *Live;
    Gauge *Peak;
    Counter *ULook;
    Counter *UHit;
    Counter *OLook;
    Counter *OHit;
  };
  static const std::array<BackendSeries, 2> ByBackend = [] {
    std::array<BackendSeries, 2> A{};
    MetricRegistry &R = MetricRegistry::global();
    for (size_t I = 0; I < A.size(); ++I) {
      const char *Name = bddBackendName(static_cast<BddBackendKind>(I));
      A[I] = {&R.gauge(labeledMetricName("xsa_bdd_live_nodes", "backend",
                                         Name),
                       "Live BDD nodes of the last solver run",
                       /*Volatile=*/true),
              &R.gauge(labeledMetricName("xsa_bdd_peak_nodes", "backend",
                                         Name),
                       "Peak BDD nodes of the last solver run",
                       /*Volatile=*/true),
              &R.counter(labeledMetricName("xsa_bdd_unique_lookups_total",
                                           "backend", Name),
                         "Unique-table (hash-cons) probes",
                         /*Volatile=*/true),
              &R.counter(labeledMetricName("xsa_bdd_unique_hits_total",
                                           "backend", Name),
                         "Unique-table probe hits", /*Volatile=*/true),
              &R.counter(labeledMetricName("xsa_bdd_opcache_lookups_total",
                                           "backend", Name),
                         "BDD operation-cache probes", /*Volatile=*/true),
              &R.counter(labeledMetricName("xsa_bdd_opcache_hits_total",
                                           "backend", Name),
                         "BDD operation-cache hits", /*Volatile=*/true)};
    }
    return A;
  }();
  const BackendSeries &BS = ByBackend[static_cast<size_t>(M.kind())];
  BS.Live->set(static_cast<double>(M.numNodes()));
  BS.Peak->set(static_cast<double>(M.peakNodes()));
  BS.ULook->add(M.uniqueLookups());
  BS.UHit->add(M.uniqueHits());
  BS.OLook->add(M.opCacheLookups());
  BS.OHit->add(M.opCacheHits());
  if (S.active()) {
    S.arg("bdd_peak_nodes", static_cast<double>(M.peakNodes()));
    S.arg("bdd_unique_hit_rate",
          M.uniqueLookups()
              ? static_cast<double>(M.uniqueHits()) / M.uniqueLookups()
              : 0);
    S.arg("bdd_opcache_hit_rate",
          M.opCacheLookups()
              ? static_cast<double>(M.opCacheHits()) / M.opCacheLookups()
              : 0);
  }
}

} // namespace

SolverResult BddSolver::solve(Formula Psi) {
  auto Start = std::chrono::steady_clock::now();
  assert(FF.isClosed(Psi) && "solver input must be closed");
  assert(isCycleFree(Psi) && "solver input must be cycle free");
  Formula Canonical = nullptr;
  if (Opts.Cache) {
    Canonical = FF.canonicalize(Psi);
    if (const SolverResult *Hit =
            Opts.Cache->lookup(Canonical, solverOptionsKey(Opts))) {
      SolverResult R = *Hit;
      R.FromCache = true;
      return R;
    }
  }
  Span SolveSpan("solver.solve");
  Formula Phi = plungeFormula(FF, Psi);
  if (Opts.EnforceSingleMark)
    Phi = FF.conj(singleMarkFormula(FF), Phi);

  // Stage 1: lean, variable order, sharing key.
  Span LeanSpan("solver.lean");
  LeanPlan Plan(FF, Phi, Opts.Order);
  LeanSpan.arg("bits", static_cast<double>(Plan.numBits()));
  LeanSpan.end();

  // Stage 2: the transition system over this run's manager. The backend
  // choice never shows in the result (canonical hash-consing makes every
  // backend structurally identical — see bdd/Bdd.h), only in wall time.
  Span ChiSpan("solver.chi");
  std::unique_ptr<BddManager> MOwner =
      makeBddManager(Opts.Backend, /*InitialVars=*/0, Opts.BddThreads);
  BddManager &M = *MOwner;
  if (SolveSpan.active())
    SolveSpan.arg("backend", bddBackendName(M.kind()));
  TransitionSystem TS(FF, Plan, Opts, M);
  ChiSpan.end();

  // Resolve Auto to a concrete strategy before any fixpoint key is
  // computed: stored sequences and remembered choices are both
  // per-lean, and the resolved strategy is part of the store key (a Bfs
  // seed must never replay into a Chaining run). A remembered choice
  // wins over the heuristic so a session — and, via the persistent
  // cache, a future session — keeps answering a lean the same way.
  FixpointStrategy Strategy = Opts.Strategy;
  if (Strategy == FixpointStrategy::Auto) {
    if (!Opts.StrategyChoices ||
        !Opts.StrategyChoices->lookup(Plan.signature(), Strategy)) {
      Strategy = resolveAutoStrategy(Plan.lean());
      if (Opts.StrategyChoices)
        Opts.StrategyChoices->remember(Plan.signature(), Strategy);
    }
  }

  // Seed lookup: a stored prefix of this lean's iterate sequence under
  // the resolved strategy. The shared_ptr pins the entry for the whole
  // run; the loop imports its snapshots lazily as it replays them.
  FixpointCache *Store =
      Opts.Fixpoints && Opts.Fixpoints->enabled() ? Opts.Fixpoints : nullptr;
  uint32_t FpKey = fixpointOptionsKey(Opts, Strategy);
  std::shared_ptr<const FixpointSeedData> Seed;
  if (Store)
    Seed = Store->lookup(Plan.signature(), FpKey);

  const Lean &L = Plan.lean();
  Bdd RootCond = (!TS.x(L.diamTopIndex(Program::ParentInv))) &
                 (!TS.x(L.diamTopIndex(Program::SiblingInv)));
  if (Opts.RequireSingleRoot)
    RootCond &= !TS.x(L.diamTopIndex(Program::Sibling));
  Bdd FinalCond = RootCond & TS.statusBdd(Phi, /*YCopy=*/false);

  // Stage 3: the Upd iteration under the resolved strategy, replaying
  // the seed first.
  Span FixSpan("solver.fixpoint");
  if (FixSpan.active())
    FixSpan.arg("strategy", fixpointStrategyName(Strategy));
  FixpointLoop Loop(TS);
  FixpointLoop::Outcome Out = Loop.run(FinalCond, Seed.get(), Strategy);
  FixSpan.arg("iterations", static_cast<double>(Out.Iterations));
  FixSpan.arg("substeps", static_cast<double>(Out.SubSteps));
  FixSpan.arg("replayed", static_cast<double>(Out.Replayed));
  FixSpan.end();
  tallyStrategyMetrics(Strategy, Out.Iterations, Out.SubSteps);

  SolverResult Result;
  Result.Satisfiable = Out.Sat;
  Result.Stats.LeanSize = Plan.numBits();
  Result.Stats.Iterations = Out.Iterations;
  Result.Stats.IterationsReplayed = Out.Replayed;
  Result.Stats.SubSteps = Out.SubSteps;
  Result.Stats.StrategyUsed = Strategy;
  Result.Stats.PeakBddNodes = M.peakNodes();

  // Publish when this run extended what the store had (a run fully
  // served by its seed has nothing new to offer).
  if (Store && Out.Iterations > Out.Replayed) {
    Span PubSpan("solver.publish");
    Store->publish(Plan.signature(), FpKey,
                   exportSequence(M, Loop.snapshots(), Out.Converged));
  }

  if (Out.Sat && Opts.ExtractModel) {
    Span ExtractSpan("solver.extract");
    const std::vector<Bdd> *ModelSnaps = &Loop.snapshots();
    Bdd ModelFinal = Out.Final;
    std::optional<FixpointLoop> BfsLoop;
    if (Strategy != FixpointStrategy::Bfs) {
      // The §7.2 reconstruction minimizes model depth against the
      // iterate *history*, which is strategy-dependent even though the
      // verdict and the fixpoint are not. Re-derive the Bfs history
      // (replaying the store's Bfs-keyed sequence when one exists, and
      // publishing it back otherwise) and extract from that, so the
      // model is byte-identical across strategies. Satisfiable runs
      // stop early, so this second loop is short; its rounds are
      // extraction cost, not fixpoint cost, and stay out of Stats.
      uint32_t BfsKey = fixpointOptionsKey(Opts, FixpointStrategy::Bfs);
      std::shared_ptr<const FixpointSeedData> BfsSeed;
      if (Store)
        BfsSeed = Store->lookup(Plan.signature(), BfsKey);
      BfsLoop.emplace(TS);
      FixpointLoop::Outcome BfsOut =
          BfsLoop->run(FinalCond, BfsSeed.get(), FixpointStrategy::Bfs);
      assert(BfsOut.Sat && "verdict is strategy-invariant");
      if (Store && BfsOut.Iterations > BfsOut.Replayed)
        Store->publish(
            Plan.signature(), BfsKey,
            exportSequence(M, BfsLoop->snapshots(), BfsOut.Converged));
      ModelSnaps = &BfsLoop->snapshots();
      ModelFinal = BfsOut.Final;
    }
    ModelExtractor Extractor(TS, *ModelSnaps);
    Result.Model = Extractor.extract(ModelFinal);
  }
  Result.Stats.TimeMs =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - Start)
          .count();
  static Histogram &SolveLatency = MetricRegistry::global().histogram(
      "xsa_solve_latency_ms", "Full solver-run latency (cache misses only)");
  SolveLatency.observe(Result.Stats.TimeMs);
  SolveSpan.arg("sat", Out.Sat ? 1 : 0);
  sampleBddMetrics(M, SolveSpan);
  if (Opts.StatsHook)
    Opts.StatsHook(Result.Stats);
  if (Opts.Cache)
    Opts.Cache->store(Canonical, solverOptionsKey(Opts), Result);
  return Result;
}
