//===- ExplicitSolver.h - Reference solver (Fig. 15/16) ----------*- C++ -*-===//
//
// Part of the xsa project (PLDI 2007 XPath/type analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A literal, explicit-state implementation of the satisfiability
/// algorithm of §6.2 / Figure 16: ψ-types are enumerated as bit vectors
/// over the Lean, the update operation tracks the four start-mark cases
/// of Upd(X) (absent / here / in the first subtree / in the second
/// subtree), and the final check looks for a marked root type implying
/// the plunged formula.
///
/// This solver is exponential in the Lean in the most naive way — it
/// enumerates Types(ψ) — so it is only usable on small formulas. Its job
/// is to be *obviously correct*: it serves as the differential oracle
/// for the symbolic solver of §7 (BddSolver).
///
//===----------------------------------------------------------------------===//

#ifndef XSA_SOLVER_EXPLICITSOLVER_H
#define XSA_SOLVER_EXPLICITSOLVER_H

#include "solver/BddSolver.h"

namespace xsa {

class ExplicitSolver {
public:
  /// \p MaxModalBits bounds the number of modal Lean members (the
  /// enumeration is 2^modal × props × 2); inputs beyond the bound are
  /// rejected with Feasible = false in the result.
  explicit ExplicitSolver(FormulaFactory &FF, unsigned MaxModalBits = 24)
      : FF(FF), MaxModalBits(MaxModalBits) {}

  struct Result {
    bool Feasible = true; ///< false: lean too large for enumeration
    bool Satisfiable = false;
    std::optional<Document> Model;
    SolverStats Stats;
  };

  Result solve(Formula Psi);

private:
  FormulaFactory &FF;
  unsigned MaxModalBits;
};

} // namespace xsa

#endif // XSA_SOLVER_EXPLICITSOLVER_H
