//===- ExplicitSolver.cpp - Reference solver (Fig. 15/16) ------------------===//

#include "solver/ExplicitSolver.h"

#include "logic/CycleFree.h"

#include <array>
#include <cassert>
#include <chrono>
#include <map>

using namespace xsa;

namespace {

struct ExplicitRun {
  FormulaFactory &FF;
  Formula Phi; ///< plunged formula
  Lean L;
  std::vector<DynBitset> Types;            ///< all valid ψ-types
  std::vector<unsigned> ModalBits;         ///< lean indices of ⟨a⟩φ members
  // Presence[t][m]: iteration (1-based) at which (type t, marked m) was
  // added; 0 = absent.
  std::vector<std::array<unsigned, 2>> Presence;

  ExplicitRun(FormulaFactory &FF, Formula Phi)
      : FF(FF), Phi(Phi), L(Lean::compute(FF, Phi)) {}

  void enumerateTypes() {
    for (unsigned I = 0; I < L.size(); ++I)
      if (L.members()[I]->is(FormulaKind::Exist))
        ModalBits.push_back(I);
    size_t K = ModalBits.size();
    for (uint64_t Mask = 0; Mask < (uint64_t(1) << K); ++Mask) {
      DynBitset Base(L.size());
      for (size_t B = 0; B < K; ++B)
        if ((Mask >> B) & 1)
          Base.set(ModalBits[B]);
      for (Symbol P : L.props()) {
        DynBitset T = Base;
        T.set(L.propIndex(P));
        if (!L.isValidType(T))
          continue;
        Types.push_back(T);
        DynBitset TS = T;
        TS.set(L.startIndex());
        Types.push_back(TS); // s may belong to t (§6.1)
      }
    }
    Presence.assign(Types.size(), {0, 0});
  }

  bool delta(Program A, const DynBitset &T, const DynBitset &TChild) const {
    Program ABar = converse(A);
    for (unsigned I : ModalBits) {
      Formula F = L.members()[I];
      if (F->program() == A) {
        if (T.test(I) != L.status(FF, F->lhs(), TChild))
          return false;
      } else if (F->program() == ABar) {
        if (TChild.test(I) != L.status(FF, F->lhs(), T))
          return false;
      }
    }
    return true;
  }

  bool isChild(Program A, const DynBitset &T) const {
    return T.test(L.diamTopIndex(converse(A)));
  }
  bool isParent(Program A, const DynBitset &T) const {
    return T.test(L.diamTopIndex(A));
  }
  bool isRoot(const DynBitset &T) const {
    return !T.test(L.diamTopIndex(Program::ParentInv)) &&
           !T.test(L.diamTopIndex(Program::SiblingInv));
  }

  /// Runs the main loop; returns the index of a satisfying root entry
  /// (type index, marked) or (-1, false).
  std::pair<int, bool> mainLoop(unsigned &Iterations) {
    Iterations = 0;
    for (;;) {
      ++Iterations;
      bool Changed = false;
      for (size_t TI = 0; TI < Types.size(); ++TI) {
        const DynBitset &T = Types[TI];
        bool HasMarkHere = T.test(L.startIndex());
        // Witness availability per program and witness-mark flag, over
        // entries present at the *previous* iterations.
        auto WitnessExists = [&](Program A, bool Marked) {
          for (size_t CI = 0; CI < Types.size(); ++CI) {
            unsigned Added = Presence[CI][Marked];
            if (!Added || Added >= Iterations)
              continue;
            if (!isChild(A, Types[CI]))
              continue;
            if (delta(A, T, Types[CI]))
              return true;
          }
          return false;
        };
        bool Need1 = isParent(Program::Child, T);
        bool Need2 = isParent(Program::Sibling, T);
        // The four cases of Upd(X) in Fig. 16.
        auto TryAdd = [&](bool Marked) {
          if (Presence[TI][Marked])
            return;
          bool Ok = false;
          if (!Marked) {
            Ok = !HasMarkHere && (!Need1 || WitnessExists(Program::Child, false)) &&
                 (!Need2 || WitnessExists(Program::Sibling, false));
          } else if (HasMarkHere) {
            Ok = (!Need1 || WitnessExists(Program::Child, false)) &&
                 (!Need2 || WitnessExists(Program::Sibling, false));
          } else {
            bool MarkIn1 = Need1 && WitnessExists(Program::Child, true) &&
                           (!Need2 || WitnessExists(Program::Sibling, false));
            bool MarkIn2 = Need2 && WitnessExists(Program::Sibling, true) &&
                           (!Need1 || WitnessExists(Program::Child, false));
            Ok = MarkIn1 || MarkIn2;
          }
          if (Ok) {
            Presence[TI][Marked] = Iterations;
            Changed = true;
          }
        };
        TryAdd(false);
        TryAdd(true);
      }
      // FinalCheck: a marked root type that implies the plunged formula.
      for (size_t TI = 0; TI < Types.size(); ++TI)
        if (Presence[TI][1] && isRoot(Types[TI]) &&
            L.status(FF, Phi, Types[TI]))
          return {static_cast<int>(TI), true};
      if (!Changed)
        return {-1, false};
    }
  }

  /// Top-down reconstruction mirroring §7.2.
  void rebuild(Document &Doc, size_t TI, bool Marked, unsigned MaxIter,
               NodeId Parent) {
    const DynBitset &T = Types[TI];
    Symbol Label = 0;
    for (Symbol S : L.props())
      if (T.test(L.propIndex(S))) {
        Label = S == L.otherProp() ? internSymbol("_any") : S;
        break;
      }
    NodeId N = Doc.addNode(Label, Parent);
    if (T.test(L.startIndex()))
      Doc.setMark(N);
    bool Need1 = isParent(Program::Child, T);
    bool Need2 = isParent(Program::Sibling, T);
    // Decompose the mark obligation onto the subtrees.
    bool MarkHere = T.test(L.startIndex());
    auto FindChild = [&](Program A, bool WantMarked, size_t &OutTI,
                         unsigned &OutIter) {
      OutTI = static_cast<size_t>(-1);
      OutIter = ~0u;
      for (size_t CI = 0; CI < Types.size(); ++CI) {
        unsigned Added = Presence[CI][WantMarked];
        if (!Added || Added >= MaxIter)
          continue;
        if (!isChild(A, Types[CI]) || !delta(A, T, Types[CI]))
          continue;
        if (Added < OutIter) {
          OutIter = Added;
          OutTI = CI;
        }
      }
      return OutTI != static_cast<size_t>(-1);
    };
    bool Mark1 = false, Mark2 = false;
    if (Marked && !MarkHere) {
      size_t Dummy;
      unsigned DummyIter;
      if (Need1 && FindChild(Program::Child, true, Dummy, DummyIter) &&
          (!Need2 || FindChild(Program::Sibling, false, Dummy, DummyIter)))
        Mark1 = true;
      else
        Mark2 = true;
    }
    // Children: ⟨1⟩ subtree then ⟨2⟩ sibling continuation. The binary
    // encoding means the ⟨2⟩ child is the *next sibling* of this node:
    // emit it under the same parent.
    if (Need1) {
      size_t CTI;
      unsigned CIter;
      bool Found = FindChild(Program::Child, Mark1, CTI, CIter);
      assert(Found && "missing ⟨1⟩ witness in reconstruction");
      if (Found)
        rebuild(Doc, CTI, Mark1, CIter, N);
    }
    if (Need2) {
      size_t CTI;
      unsigned CIter;
      bool Found = FindChild(Program::Sibling, Mark2, CTI, CIter);
      assert(Found && "missing ⟨2⟩ witness in reconstruction");
      if (Found)
        rebuild(Doc, CTI, Mark2, CIter, Parent);
    }
  }
};

} // namespace

ExplicitSolver::Result ExplicitSolver::solve(Formula Psi) {
  auto Start = std::chrono::steady_clock::now();
  Result R;
  assert(FF.isClosed(Psi) && "solver input must be closed");
  Formula Phi = plungeFormula(FF, Psi);
  ExplicitRun Run(FF, Phi);
  size_t Modal = 0;
  for (Formula F : Run.L.members())
    if (F->is(FormulaKind::Exist))
      ++Modal;
  R.Stats.LeanSize = Run.L.size();
  if (Modal > MaxModalBits) {
    R.Feasible = false;
    return R;
  }
  Run.enumerateTypes();
  unsigned Iterations = 0;
  auto [RootTI, Sat] = Run.mainLoop(Iterations);
  R.Stats.Iterations = Iterations;
  R.Satisfiable = Sat;
  if (Sat) {
    Document Doc;
    Run.rebuild(Doc, static_cast<size_t>(RootTI), /*Marked=*/true,
                Iterations + 1, InvalidNodeId);
    R.Model = std::move(Doc);
  }
  R.Stats.TimeMs = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - Start)
                       .count();
  return R;
}
