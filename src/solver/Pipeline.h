//===- Pipeline.h - Staged symbolic solver pipeline --------------*- C++ -*-===//
//
// Part of the xsa project (PLDI 2007 XPath/type analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The symbolic satisfiability run of §7, split into explicit stages so
/// each can be reasoned about — and shared — independently:
///
///  * LeanPlan (stage 1): the Lean, the interleaved unprimed/primed
///    variable order, and the *canonical lean signature* — the ordered
///    canonical texts of the lean members. No BDD work. The signature is
///    the cross-request sharing key: every quantity the later stages
///    compute up to the final condition is a function of the lean alone.
///
///  * TransitionSystem (stage 2): the status translation χ, the type
///    constraint χTypes, and the ∆a compatibility clauses (§7.3) over a
///    concrete BddManager. Clause construction is lazy: a run whose
///    fixpoint is fully replayed from a seed never builds ∆a at all.
///
///  * FixpointLoop (stage 3): the two-line Upd iteration of §7.1 with
///    seed/snapshot hooks, scheduled by a FixpointStrategy: Bfs runs one
///    full Upd image per round; Chaining and Saturation decompose a
///    round into per-program sub-steps that reuse a held witness so
///    whole sibling (and child) chains collapse into one round. All
///    strategies reach the same least fixpoint (DESIGN.md "Strategy
///    soundness"). A seed is a prefix of the lean's canonical per-
///    strategy iterate sequence T^1, T^2, ...; the loop replays it —
///    checking the final condition against each replayed iterate exactly
///    as a cold run would — before computing further iterates. Replay is
///    output-invisible: snapshots, verdict, model and iteration count
///    are identical to a cold run (DESIGN.md proves why), only the
///    expensive relational products are skipped.
///
///  * ModelExtractor (§7.2): top-down model reconstruction over the
///    retained snapshots.
///
/// BddSolver::solve orchestrates the stages and the fixpoint store
/// (SolverOptions::Fixpoints).
///
//===----------------------------------------------------------------------===//

#ifndef XSA_SOLVER_PIPELINE_H
#define XSA_SOLVER_PIPELINE_H

#include "bdd/Bdd.h"
#include "solver/BddSolver.h"
#include "tree/Document.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace xsa {

/// Stage 1: lean + variable order + canonical lean signature.
class LeanPlan {
public:
  LeanPlan(FormulaFactory &FF, Formula Phi, LeanOrder Order);

  const Lean &lean() const { return L; }
  unsigned numBits() const { return NumBits; }
  unsigned xVar(unsigned I) const { return 2 * I; }
  unsigned yVar(unsigned I) const { return 2 * I + 1; }
  const std::vector<unsigned> &xToY() const { return XToY; }

  /// The canonical lean signature (Lean::signature), computed on first
  /// use — only runs that talk to a fixpoint store pay for it.
  const std::string &signature() const;

private:
  FormulaFactory &FF;
  Lean L;
  unsigned NumBits;
  std::vector<unsigned> XToY;
  mutable std::string Sig;
};

/// Stage 2: χ / χTypes / ∆a over a concrete manager.
class TransitionSystem {
public:
  TransitionSystem(FormulaFactory &FF, const LeanPlan &Plan,
                   const SolverOptions &Opts, BddManager &M);

  FormulaFactory &factory() { return FF; }
  const LeanPlan &plan() const { return Plan; }
  const SolverOptions &options() const { return Opts; }
  BddManager &manager() { return M; }

  Bdd x(unsigned I) { return M.var(Plan.xVar(I)); }
  Bdd y(unsigned I) { return M.var(Plan.yVar(I)); }
  Bdd shiftToY(const Bdd &F) { return M.remapVars(F, Plan.xToY()); }

  /// The truth-status BDD of \p F over the unprimed (x) or primed (y)
  /// copy (Fig. 15 as boolean functions; memoized).
  Bdd statusBdd(Formula F, bool YCopy);

  /// χTypes: the Hintikka conditions of §6.1 (memoized).
  Bdd typesBdd();

  /// χWita: the witness condition for program \p A against the primed
  /// iterate \p TY. Builds the ∆a clauses on first use.
  Bdd witness(Program A, const Bdd &TY);

private:
  void ensureDelta();
  void buildDeltaClauses(Program A);
  Bdd witnessEarlyQuantified(Program A, const Bdd &TY);
  Bdd witnessMonolithic(Program A, const Bdd &TY);

  FormulaFactory &FF;
  const LeanPlan &Plan;
  const SolverOptions &Opts;
  BddManager &M;

  std::unordered_map<Formula, Bdd> StatusMemo[2]; // [0]=x copy, [1]=y copy
  Bdd TypesMemo;

  // ∆a as equivalence clauses (index 0: program 1, index 1: program 2).
  struct Clause {
    Bdd R;                       ///< the clause over x and y variables
    std::vector<unsigned> YDeps; ///< primed variables it depends on
  };
  std::vector<Clause> Delta[2];
  Bdd MonolithicDelta[2];
  bool DeltaBuilt = false;
};

/// Stage 3: the §7.1 Upd iteration with seed/snapshot hooks.
class FixpointLoop {
public:
  explicit FixpointLoop(TransitionSystem &TS) : TS(TS) {}

  struct Outcome {
    bool Sat = false;
    /// TNext ∧ FinalCond of the terminating sub-step (zero when unsat).
    Bdd Final;
    /// Rounds taken — replay included, so this is the count a cold run
    /// reports. One round is one Upd image under Bfs and one pass of
    /// the sub-step schedule under Chaining/Saturation.
    size_t Iterations = 0;
    /// Of Iterations, how many rounds came entirely from the seed.
    size_t Replayed = 0;
    /// Relational-image sub-steps across all rounds (== Iterations
    /// under Bfs).
    size_t SubSteps = 0;
    /// True when the loop ended by reaching Upd's fixpoint (as opposed
    /// to an early satisfiable exit).
    bool Converged = false;
  };

  /// Runs the iteration under \p Strategy (must be a concrete strategy,
  /// not Auto — the solver resolves Auto before the loop). \p Seed (may
  /// be null) is a stored sequence of *sub-step* iterates recorded under
  /// the same strategy; elements are imported into TS's manager lazily —
  /// only when actually replayed, since an early-terminating run may
  /// consume one iterate of a long sequence — and stand in for computed
  /// iterates under the exact cold control flow (every control decision
  /// is a pure function of the iterate values, so replay walks the same
  /// rounds, phases and exits as the cold run; see DESIGN.md "Strategy
  /// soundness"). Early termination follows
  /// TS.options().EarlyTermination and is checked after every sub-step.
  Outcome run(const Bdd &FinalCond, const FixpointSeedData *Seed,
              FixpointStrategy Strategy = FixpointStrategy::Bfs);

  /// T^1, T^2, ... as retained for model reconstruction; identical to a
  /// cold run's sequence whether or not a seed was replayed.
  const std::vector<Bdd> &snapshots() const { return Snapshots; }

private:
  TransitionSystem &TS;
  std::vector<Bdd> Snapshots;
};

/// §7.2: top-down reconstruction of a minimal satisfying tree.
class ModelExtractor {
public:
  ModelExtractor(TransitionSystem &TS, const std::vector<Bdd> &Snapshots)
      : TS(TS), Snapshots(Snapshots) {}

  /// \p Final must be a nonempty set of root types. Returns the rebuilt
  /// document with the start mark set.
  Document extract(const Bdd &Final);

private:
  struct ModelNode;
  DynBitset assignmentToType(const std::vector<bool> &Values, bool YCopy);
  std::unique_ptr<ModelNode> rebuildNode(const DynBitset &T, int MaxSnapshot);
  Document modelToDocument(const ModelNode &Root);

  TransitionSystem &TS;
  const std::vector<Bdd> &Snapshots;
  std::vector<Bdd> SnapshotsY; ///< lazily computed y-copies
};

} // namespace xsa

#endif // XSA_SOLVER_PIPELINE_H
