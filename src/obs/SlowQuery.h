//===- SlowQuery.h - Tail-sampled slow-query recorder ------------*- C++ -*-===//
//
// Part of the xsa project (PLDI 2007 XPath/type analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An always-on, tail-sampled slow-query recorder for the server: every
/// request runs with cheap per-stage accumulation (the tracer's
/// stage-capture mode, see Trace.h — clock reads and thread-local adds,
/// no event buffering), and requests that cross the latency threshold,
/// error, or miss their deadline retroactively persist the full
/// per-stage breakdown (LeanPlan/χ/∆a, fixpoint rounds, model
/// extraction, cache and store probes, queue wait) into a bounded ring.
/// Fast requests leave nothing behind — tail sampling decides AFTER the
/// fact, which is why the accumulation must be on for everyone.
///
/// Retrieval: the server's {"op":"slowlog"} protocol op and /slowlog
/// HTTP endpoint. Determinism: the recorder observes, it never decides —
/// no response content depends on it, so `--stable` output is
/// byte-identical with the recorder on (the breakdown it captures rides
/// only here and on the volatile response side; see DESIGN.md).
///
//===----------------------------------------------------------------------===//

#ifndef XSA_OBS_SLOWQUERY_H
#define XSA_OBS_SLOWQUERY_H

#include "service/Json.h"

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace xsa {

/// One captured request. StageMs is the per-stage breakdown the request
/// accumulated (span name → total ms; entries overlap by design, see
/// StageTotals), plus an explicit queue-wait entry the server adds.
struct SlowQueryRecord {
  uint64_t Seq = 0;    ///< monotonic per recorder (eviction-order tests)
  uint64_t UnixMs = 0; ///< wall-clock capture time
  std::string RequestId; ///< propagated request/trace id (never empty)
  std::string ClientId;  ///< the client's own "id" field ("" if none)
  std::string Ns;
  std::string Op;
  bool Ok = true;
  std::string Code; ///< error code when !Ok ("deadline_exceeded", ...)
  int Priority = 0;
  uint64_t ConnId = 0;
  double QueueWaitMs = 0;
  double TotalMs = 0; ///< queue wait + execution
  bool FromCache = false;
  std::vector<std::pair<std::string, double>> StageMs;
  /// The request as admitted, dumped back to JSON — what `xsolve replay`
  /// turns into a runnable batch line ("" when capture predates it).
  std::string RequestJson;
  /// Effective per-job config snapshot (namespace overrides applied):
  /// what `xsolve replay` turns into the batch's config preamble.
  bool Optimize = false;
  bool Share = false;
  std::string Strategy;  ///< fixpointStrategyName of the effective strategy
  std::string Backend;   ///< bddBackendName of the effective backend
};

class SlowQueryLog {
public:
  struct Options {
    /// Requests at or above this total latency (ms) are captured; 0
    /// captures everything (what the CI smoke and tests use).
    double ThresholdMs = 250;
    size_t Capacity = 128;
  };

  static SlowQueryLog &global();

  void configure(const Options &O);
  double thresholdMs() const {
    return ThresholdMsA.load(std::memory_order_relaxed);
  }
  size_t capacity() const;

  /// The tail-sampling decision: errors and deadline misses always
  /// qualify; successes qualify by latency.
  bool shouldRecord(double TotalMs, bool Ok) const {
    return !Ok || TotalMs >= thresholdMs();
  }

  /// Appends \p R (stamping Seq and UnixMs), evicting the oldest past
  /// capacity. Thread-safe.
  void record(SlowQueryRecord R);

  /// The most recent records, oldest first (\p MaxRecords 0 = all).
  std::vector<SlowQueryRecord> snapshot(size_t MaxRecords = 0) const;

  /// Total captured since start (including evicted).
  uint64_t recorded() const {
    return Recorded.load(std::memory_order_relaxed);
  }

  void clearForTest();

  /// Serializes one record for {"op":"slowlog"} / /slowlog.
  static JsonRef toJson(const SlowQueryRecord &R);

private:
  mutable std::mutex Mu;
  Options Opts; ///< guarded by Mu (threshold mirrored below)
  std::deque<SlowQueryRecord> Ring;
  uint64_t NextSeq = 1;
  std::atomic<double> ThresholdMsA{250};
  std::atomic<uint64_t> Recorded{0};
};

} // namespace xsa

#endif // XSA_OBS_SLOWQUERY_H
