//===- Metrics.cpp - Thread-safe metric registry ---------------------------===//

#include "obs/Metrics.h"

#include "service/Json.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

using namespace xsa;

//===----------------------------------------------------------------------===//
// Counter
//===----------------------------------------------------------------------===//

size_t Counter::slotIndex() {
  // A dense per-thread hint: each thread sticks to one shard, so the
  // fetch_add never contends until more than NumSlots threads share one
  // counter — and even then it degrades to plain atomic contention.
  static std::atomic<size_t> NextSlot{0};
  static thread_local size_t Hint =
      NextSlot.fetch_add(1, std::memory_order_relaxed);
  return Hint & (NumSlots - 1);
}

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

Histogram::Histogram(std::vector<double> BoundsIn) : Bounds(std::move(BoundsIn)) {
  if (Bounds.empty())
    Bounds = defaultLatencyBucketsMs();
  assert(std::is_sorted(Bounds.begin(), Bounds.end()) &&
         "histogram bounds must be increasing");
  Buckets = std::make_unique<std::atomic<uint64_t>[]>(Bounds.size() + 1);
  for (size_t I = 0; I <= Bounds.size(); ++I)
    Buckets[I].store(0, std::memory_order_relaxed);
}

std::vector<double> Histogram::defaultLatencyBucketsMs() {
  return {0.01, 0.025, 0.05, 0.1,  0.25, 0.5,  1,    2.5,
          5,    10,    25,   50,   100,  250,  500,  1000,
          2500, 5000,  10000, 30000, 60000};
}

void Histogram::setExemplar(const std::string &Label, double V) {
  std::lock_guard<std::mutex> Lock(ExMu);
  ExLabel = Label;
  ExVal = V;
  HasEx = true;
}

bool Histogram::exemplar(std::string &Label, double &V) const {
  std::lock_guard<std::mutex> Lock(ExMu);
  if (!HasEx)
    return false;
  Label = ExLabel;
  V = ExVal;
  return true;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot S;
  S.Bounds = Bounds;
  S.Counts.resize(Bounds.size() + 1);
  for (size_t I = 0; I <= Bounds.size(); ++I)
    S.Counts[I] = Buckets[I].load(std::memory_order_relaxed);
  S.Count = Total.load(std::memory_order_relaxed);
  S.Sum = static_cast<double>(SumMicro.load(std::memory_order_relaxed)) / 1e6;
  return S;
}

HistogramSnapshot HistogramSnapshot::since(const HistogramSnapshot &Base) const {
  assert(Bounds == Base.Bounds && "snapshots of different histograms");
  HistogramSnapshot D;
  D.Bounds = Bounds;
  D.Counts.resize(Counts.size());
  for (size_t I = 0; I < Counts.size(); ++I)
    D.Counts[I] = Counts[I] - Base.Counts[I];
  D.Count = Count - Base.Count;
  D.Sum = Sum - Base.Sum;
  return D;
}

double HistogramSnapshot::quantile(double Q) const {
  if (Count == 0)
    return 0;
  // Rank of the target observation (1-based), then walk buckets.
  double Rank = Q * static_cast<double>(Count);
  if (Rank < 1)
    Rank = 1;
  uint64_t Seen = 0;
  for (size_t I = 0; I < Counts.size(); ++I) {
    if (Counts[I] == 0)
      continue;
    double Lo = I == 0 ? 0 : Bounds[I - 1];
    double Hi = I < Bounds.size() ? Bounds[I] : Bounds.back();
    if (Rank <= static_cast<double>(Seen + Counts[I])) {
      if (I >= Bounds.size())
        return Hi; // +Inf bucket: best we can say is the last bound
      double Within = (Rank - static_cast<double>(Seen)) /
                      static_cast<double>(Counts[I]);
      return Lo + (Hi - Lo) * Within;
    }
    Seen += Counts[I];
  }
  return Bounds.empty() ? 0 : Bounds.back();
}

//===----------------------------------------------------------------------===//
// MetricRegistry
//===----------------------------------------------------------------------===//

MetricRegistry &MetricRegistry::global() {
  static MetricRegistry R;
  return R;
}

MetricRegistry::Entry &MetricRegistry::entry(const std::string &Name,
                                             const std::string &Help, Kind K,
                                             bool Volatile,
                                             std::vector<double> *Bounds) {
  std::lock_guard<std::mutex> Lock(Mu);
  for (auto &E : Entries)
    if (E->Name == Name) {
      assert(E->K == K && "metric re-registered with a different kind");
      return *E;
    }
  auto E = std::make_unique<Entry>();
  E->Name = Name;
  E->Help = Help;
  E->K = K;
  E->Volatile = Volatile;
  switch (K) {
  case Kind::Counter:
    E->C = std::make_unique<Counter>();
    break;
  case Kind::Gauge:
    E->G = std::make_unique<Gauge>();
    break;
  case Kind::Histogram:
    E->H = std::make_unique<Histogram>(Bounds ? std::move(*Bounds)
                                              : std::vector<double>{});
    break;
  }
  Entries.push_back(std::move(E));
  return *Entries.back();
}

Counter &MetricRegistry::counter(const std::string &Name,
                                 const std::string &Help, bool Volatile) {
  return *entry(Name, Help, Kind::Counter, Volatile).C;
}

Gauge &MetricRegistry::gauge(const std::string &Name, const std::string &Help,
                             bool Volatile) {
  return *entry(Name, Help, Kind::Gauge, Volatile).G;
}

Histogram &MetricRegistry::histogram(const std::string &Name,
                                     const std::string &Help,
                                     std::vector<double> Bounds) {
  return *entry(Name, Help, Kind::Histogram, /*Volatile=*/true, &Bounds).H;
}

std::string xsa::escapePrometheusLabelValue(const std::string &Value) {
  std::string Escaped;
  Escaped.reserve(Value.size());
  for (char C : Value) {
    if (C == '\\' || C == '"')
      Escaped += '\\';
    if (C == '\n') {
      Escaped += "\\n";
      continue;
    }
    Escaped += C;
  }
  return Escaped;
}

std::string xsa::labeledMetricName(const std::string &Base,
                                   const std::string &Label,
                                   const std::string &Value) {
  return Base + "{" + Label + "=\"" + escapePrometheusLabelValue(Value) +
         "\"}";
}

namespace {

/// Splits `base{labels}` into its parts ("" labels when unlabeled).
void splitName(const std::string &Name, std::string &Base,
               std::string &Labels) {
  size_t Brace = Name.find('{');
  if (Brace == std::string::npos) {
    Base = Name;
    Labels.clear();
    return;
  }
  Base = Name.substr(0, Brace);
  Labels = Name.substr(Brace + 1, Name.size() - Brace - 2); // strip {}
}

/// HELP-line escaping (distinct from label values: only `\` and
/// newline; a raw newline in help text would otherwise end the comment
/// line early and leave garbage the scraper rejects).
std::string escapeHelpText(const std::string &Help) {
  std::string Escaped;
  Escaped.reserve(Help.size());
  for (char C : Help) {
    if (C == '\\') {
      Escaped += "\\\\";
      continue;
    }
    if (C == '\n') {
      Escaped += "\\n";
      continue;
    }
    Escaped += C;
  }
  return Escaped;
}

std::string formatNumber(double V) {
  char Buf[64];
  if (V == static_cast<double>(static_cast<long long>(V)))
    std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(V));
  else
    std::snprintf(Buf, sizeof(Buf), "%.6g", V);
  return Buf;
}

/// `name{labels,extra}` or `name{extra}` or `name` series spelling.
std::string series(const std::string &Base, const std::string &Labels,
                   const std::string &Suffix, const std::string &Extra = "") {
  std::string S = Base + Suffix;
  if (Labels.empty() && Extra.empty())
    return S;
  S += '{';
  S += Labels;
  if (!Labels.empty() && !Extra.empty())
    S += ',';
  S += Extra;
  S += '}';
  return S;
}

} // namespace

std::string MetricRegistry::prometheusText() const {
  return expositionText(/*OpenMetrics=*/false);
}

std::string MetricRegistry::openMetricsText() const {
  return expositionText(/*OpenMetrics=*/true);
}

std::string MetricRegistry::expositionText(bool OpenMetrics) const {
  struct Row {
    std::string Base, Labels, Help;
    Kind K;
    const Entry *E;
  };
  std::vector<Row> Rows;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Rows.reserve(Entries.size());
    for (const auto &E : Entries) {
      Row R;
      splitName(E->Name, R.Base, R.Labels);
      R.Help = E->Help;
      R.K = E->K;
      R.E = E.get();
      Rows.push_back(std::move(R));
    }
  }
  std::sort(Rows.begin(), Rows.end(), [](const Row &A, const Row &B) {
    return A.Base != B.Base ? A.Base < B.Base : A.Labels < B.Labels;
  });

  std::string Out;
  std::string LastBase;
  for (const Row &R : Rows) {
    // OpenMetrics names a counter *family* without the _total suffix;
    // the sample line keeps it. The classic format uses the full name
    // for both.
    std::string Family = R.Base;
    std::string SampleName = R.Base;
    if (R.K == Kind::Counter) {
      constexpr const char *Suffix = "_total";
      constexpr size_t SuffixLen = 6;
      if (OpenMetrics) {
        if (Family.size() > SuffixLen &&
            Family.compare(Family.size() - SuffixLen, SuffixLen, Suffix) ==
                0)
          Family.resize(Family.size() - SuffixLen);
        else
          SampleName += Suffix; // spec: counter samples end in _total
      }
    }
    if (R.Base != LastBase) {
      LastBase = R.Base;
      const char *Type = R.K == Kind::Counter   ? "counter"
                         : R.K == Kind::Gauge   ? "gauge"
                                                : "histogram";
      if (OpenMetrics) {
        // OpenMetrics: TYPE first, HELP after, both on the family name.
        Out += "# TYPE " + Family + " " + Type + "\n";
        if (!R.Help.empty())
          Out += "# HELP " + Family + " " + escapeHelpText(R.Help) + "\n";
      } else {
        if (!R.Help.empty())
          Out += "# HELP " + Family + " " + escapeHelpText(R.Help) + "\n";
        Out += "# TYPE " + Family + " " + Type + "\n";
      }
    }
    switch (R.K) {
    case Kind::Counter:
      Out += series(SampleName, R.Labels, "") + " " +
             formatNumber(static_cast<double>(R.E->C->value())) + "\n";
      break;
    case Kind::Gauge:
      Out += series(R.Base, R.Labels, "") + " " +
             formatNumber(R.E->G->value()) + "\n";
      break;
    case Kind::Histogram: {
      HistogramSnapshot S = R.E->H->snapshot();
      // An exemplar renders on the one bucket whose range contains its
      // value (the spec forbids it elsewhere); classic exposition
      // ignores it entirely.
      std::string ExLabel;
      double ExVal = 0;
      bool HaveEx =
          OpenMetrics && R.E->H->exemplar(ExLabel, ExVal);
      uint64_t Cum = 0;
      for (size_t I = 0; I < S.Counts.size(); ++I) {
        Cum += S.Counts[I];
        bool Last = I >= S.Bounds.size();
        std::string Le = !Last
                             ? "le=\"" + formatNumber(S.Bounds[I]) + "\""
                             : std::string("le=\"+Inf\"");
        Out += series(R.Base, R.Labels, "_bucket", Le) + " " +
               formatNumber(static_cast<double>(Cum));
        if (HaveEx && (Last || ExVal <= S.Bounds[I])) {
          Out += " # {rid=\"" + escapePrometheusLabelValue(ExLabel) +
                 "\"} " + formatNumber(ExVal);
          HaveEx = false; // exactly one bucket carries it
        }
        Out += "\n";
      }
      Out += series(R.Base, R.Labels, "_sum") + " " + formatNumber(S.Sum) +
             "\n";
      Out += series(R.Base, R.Labels, "_count") + " " +
             formatNumber(static_cast<double>(S.Count)) + "\n";
      break;
    }
    }
  }
  if (OpenMetrics)
    Out += "# EOF\n";
  return Out;
}

JsonRef MetricRegistry::toJson(bool IncludeVolatile) const {
  JsonRef O = JsonValue::object();
  O->set("schema", JsonValue::string(SchemaVersion));
  JsonRef Counters = JsonValue::object();
  JsonRef Gauges = JsonValue::object();
  JsonRef Histograms = JsonValue::object();
  std::lock_guard<std::mutex> Lock(Mu);
  for (const auto &E : Entries) {
    if (E->Volatile && !IncludeVolatile)
      continue;
    switch (E->K) {
    case Kind::Counter:
      Counters->set(E->Name,
                    JsonValue::number(static_cast<double>(E->C->value())));
      break;
    case Kind::Gauge:
      Gauges->set(E->Name, JsonValue::number(E->G->value()));
      break;
    case Kind::Histogram: {
      HistogramSnapshot S = E->H->snapshot();
      JsonRef H = JsonValue::object();
      H->set("count", JsonValue::number(static_cast<double>(S.Count)));
      H->set("sum", JsonValue::number(S.Sum));
      H->set("p50", JsonValue::number(S.quantile(0.5)));
      H->set("p99", JsonValue::number(S.quantile(0.99)));
      JsonRef Buckets = JsonValue::array();
      uint64_t Cum = 0;
      for (size_t I = 0; I < S.Counts.size(); ++I) {
        Cum += S.Counts[I];
        JsonRef B = JsonValue::object();
        B->set("le", I < S.Bounds.size()
                         ? JsonValue::number(S.Bounds[I])
                         : JsonValue::string("+Inf"));
        B->set("count", JsonValue::number(static_cast<double>(Cum)));
        Buckets->push(B);
      }
      H->set("buckets", Buckets);
      std::string ExLabel;
      double ExVal = 0;
      if (E->H->exemplar(ExLabel, ExVal)) {
        JsonRef Ex = JsonValue::object();
        Ex->set("rid", JsonValue::string(ExLabel));
        Ex->set("value", JsonValue::number(ExVal));
        H->set("exemplar", Ex);
      }
      Histograms->set(E->Name, H);
      break;
    }
    }
  }
  O->set("counters", Counters);
  O->set("gauges", Gauges);
  if (IncludeVolatile)
    O->set("histograms", Histograms);
  return O;
}
