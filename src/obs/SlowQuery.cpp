//===- SlowQuery.cpp - Tail-sampled slow-query recorder --------------------===//

#include "obs/SlowQuery.h"

#include "obs/Metrics.h"

#include <chrono>

using namespace xsa;

SlowQueryLog &SlowQueryLog::global() {
  static SlowQueryLog L;
  return L;
}

void SlowQueryLog::configure(const Options &O) {
  std::lock_guard<std::mutex> Lock(Mu);
  Opts = O;
  ThresholdMsA.store(O.ThresholdMs, std::memory_order_relaxed);
  while (Ring.size() > Opts.Capacity)
    Ring.pop_front();
}

size_t SlowQueryLog::capacity() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Opts.Capacity;
}

void SlowQueryLog::record(SlowQueryRecord R) {
  static Counter &Total = MetricRegistry::global().counter(
      "xsa_server_slow_queries_total",
      "Requests captured by the tail-sampled slow-query recorder",
      /*Volatile=*/true);
  Total.add();
  Recorded.fetch_add(1, std::memory_order_relaxed);
  R.UnixMs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  std::lock_guard<std::mutex> Lock(Mu);
  R.Seq = NextSeq++;
  Ring.push_back(std::move(R));
  while (Ring.size() > Opts.Capacity)
    Ring.pop_front();
}

std::vector<SlowQueryRecord> SlowQueryLog::snapshot(size_t MaxRecords) const {
  std::lock_guard<std::mutex> Lock(Mu);
  size_t N = Ring.size();
  if (MaxRecords && MaxRecords < N)
    N = MaxRecords;
  std::vector<SlowQueryRecord> Out;
  Out.reserve(N);
  for (size_t I = Ring.size() - N; I < Ring.size(); ++I)
    Out.push_back(Ring[I]);
  return Out;
}

void SlowQueryLog::clearForTest() {
  std::lock_guard<std::mutex> Lock(Mu);
  Ring.clear();
  NextSeq = 1;
  Recorded.store(0, std::memory_order_relaxed);
}

JsonRef SlowQueryLog::toJson(const SlowQueryRecord &R) {
  JsonRef O = JsonValue::object();
  O->set("seq", JsonValue::number(static_cast<double>(R.Seq)));
  O->set("unix_ms", JsonValue::number(static_cast<double>(R.UnixMs)));
  O->set("rid", JsonValue::string(R.RequestId));
  if (!R.ClientId.empty())
    O->set("id", JsonValue::string(R.ClientId));
  O->set("ns", JsonValue::string(R.Ns));
  O->set("op", JsonValue::string(R.Op));
  O->set("ok", JsonValue::boolean(R.Ok));
  if (!R.Code.empty())
    O->set("code", JsonValue::string(R.Code));
  O->set("priority", JsonValue::number(R.Priority));
  O->set("conn", JsonValue::number(static_cast<double>(R.ConnId)));
  O->set("cache", JsonValue::string(R.FromCache ? "hit" : "miss"));
  O->set("queue_wait_ms", JsonValue::number(R.QueueWaitMs));
  O->set("total_ms", JsonValue::number(R.TotalMs));
  JsonRef Stages = JsonValue::object();
  for (const auto &[Name, Ms] : R.StageMs)
    Stages->set(Name, JsonValue::number(Ms));
  O->set("stages", Stages);
  // Reproduction payload: the admitted request (re-parsed so it embeds
  // as an object, not a quoted string) and the effective config it ran
  // under. `xsolve replay` consumes exactly these two fields.
  if (!R.RequestJson.empty()) {
    std::string Err;
    if (JsonRef Req = parseJson(R.RequestJson, Err))
      O->set("request", Req);
  }
  if (!R.Strategy.empty()) {
    JsonRef Cfg = JsonValue::object();
    Cfg->set("optimize", JsonValue::boolean(R.Optimize));
    Cfg->set("share_fixpoints", JsonValue::boolean(R.Share));
    Cfg->set("fixpoint_strategy", JsonValue::string(R.Strategy));
    Cfg->set("bdd_backend", JsonValue::string(R.Backend));
    O->set("config", Cfg);
  }
  return O;
}
