//===- Trace.h - Structured span tracer --------------------------*- C++ -*-===//
//
// Part of the xsa project (PLDI 2007 XPath/type analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A structured span tracer for the request pipeline: RAII Span objects
/// with parent linkage, thread id and nesting, buffered per thread and
/// exported as Chrome trace-event JSON ("X" complete events, loadable in
/// chrome://tracing and Perfetto).
///
/// Zero-cost when disabled: a Span constructor is one relaxed atomic
/// load and a branch — no clock read, no allocation, no lock. When the
/// tracer is enabled, events append to a per-thread buffer (no
/// synchronization on the hot path either; registration of a new thread
/// takes the tracer mutex exactly once).
///
/// Determinism contract: spans observe, they never decide. No solver or
/// service code path may read tracer state to alter control flow, so
/// `--stable` batch output is byte-identical with tracing on or off at
/// any `--jobs` (the per-request "stages" breakdown rides on the
/// volatile side of the response encoder for the same reason). See
/// DESIGN.md "Observability".
///
/// Quiescence contract: start(), stop() and the exporters may only run
/// while no spans are in flight — in practice at batch boundaries, where
/// WorkerPool::parallelFor's completion barrier (a mutex handshake) makes
/// every worker's buffered events happen-before the reader. This is what
/// keeps the tracer TSan-clean without per-event locks.
///
/// Span names must be string literals (the tracer stores the pointer,
/// not a copy).
///
//===----------------------------------------------------------------------===//

#ifndef XSA_OBS_TRACE_H
#define XSA_OBS_TRACE_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace xsa {

/// Per-request aggregation of span durations, keyed by span name. A
/// StageScope installs one for the current thread; every Span that ends
/// under it adds its duration. Nested spans each contribute under their
/// own name ("fixpoint.round" totals live inside the enclosing
/// "solver.fixpoint" total), so entries overlap by design — the
/// breakdown is per stage name, not a partition.
class StageTotals {
public:
  void add(const char *Name, uint64_t Ns);
  /// Name → total milliseconds, in first-recorded order.
  std::vector<std::pair<std::string, double>> toMs() const;
  bool empty() const { return Rows.empty(); }

private:
  /// Names are literals but literal pointers need not be unique across
  /// TUs, so matching compares contents. The vector stays tiny (one row
  /// per distinct stage), linear scan is fine.
  std::vector<std::pair<const char *, uint64_t>> Rows;
};

class Tracer {
public:
  /// One event per completed span. Times are nanoseconds relative to the
  /// tracer's start() call.
  struct Event {
    const char *Name;
    uint64_t StartNs, DurNs;
    uint32_t Tid;          ///< dense tracer-assigned thread id
    uint64_t Id, Parent;   ///< span id and enclosing span id (0 = root)
    struct Arg {
      const char *Key;
      double Num;
    };
    Arg Args[4];
    uint8_t NumArgs = 0;
    /// Up to two string args (the request span carries "op" and the
    /// propagated "rid"); extras are dropped.
    struct StrArg {
      const char *Key;
      std::string Val;
    };
    StrArg Strs[2];
    uint8_t NumStrs = 0;
  };

  static Tracer &global();

  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }

  /// Stage-capture mode: the always-on accumulation path of the server's
  /// tail-sampled slow-query recorder (obs/SlowQuery.h). When set and the
  /// tracer is otherwise DISABLED, a Span still adds its duration to the
  /// installed StageScope — but records no event, takes no lock, touches
  /// no buffer and needs no quiescence (the totals are thread-local to
  /// the request). Cost per span: two clock reads. When both flags are
  /// off the zero-cost contract above is unchanged (one extra relaxed
  /// load); when the tracer is enabled it subsumes this mode.
  bool stageCaptureEnabled() const {
    return StageCapture.load(std::memory_order_relaxed);
  }
  void setStageCapture(bool On) {
    StageCapture.store(On, std::memory_order_relaxed);
  }

  /// Clears all buffered events and enables recording. Quiescent only.
  void start();
  /// Disables recording; buffered events remain for export. Quiescent
  /// only.
  void stop();

  /// Serializes all buffered events as a Chrome trace-event JSON document
  /// ({"traceEvents":[...]}). Quiescent only.
  std::string chromeTraceJson() const;
  /// chromeTraceJson() to a file; false (with errno intact) on failure.
  bool writeChromeTrace(const std::string &Path) const;

  /// Visits every buffered event (registration order per thread).
  /// Quiescent only; for tests.
  void forEachEvent(const std::function<void(const Event &)> &F) const;
  size_t eventCount() const;

  /// Steady-clock nanoseconds — the timebase spans are recorded in. For
  /// call sites that need to stamp a start on one thread and record the
  /// interval on another (queue wait).
  static uint64_t nowNs();

  /// Records a completed interval whose start was stamped earlier (and
  /// possibly on another thread) with nowNs(). No-op when disabled.
  void recordSpanFrom(const char *Name, uint64_t StartNsAbs);

private:
  friend class Span;
  struct ThreadState {
    std::vector<Event> Buf;
    std::vector<uint64_t> Stack; ///< ids of open spans, innermost last
    uint32_t Tid = 0;
    uint64_t NextSeq = 0;
  };

  ThreadState &threadState();
  ThreadState &registerThread();

  /// The thread's slot in Threads, cached after one registration. Raw
  /// pointer: the Tracer owns the state and never frees it (deque slots
  /// are stable), so the cache stays valid for the thread's lifetime.
  static thread_local ThreadState *TLState;

  std::atomic<bool> Enabled{false};
  std::atomic<bool> StageCapture{false};
  mutable std::mutex Mu; ///< guards Threads registration and EpochNs
  /// deque: ThreadState addresses must survive registration of later
  /// threads (each thread caches a raw pointer to its own slot).
  std::deque<std::unique_ptr<ThreadState>> Threads;
  uint64_t EpochNs = 0; ///< steady-clock origin set by start()
};

/// RAII span. Constructing when the tracer is disabled costs one relaxed
/// load; nothing else happens. \p Name must be a string literal.
class Span {
public:
  explicit Span(const char *Name);
  ~Span() {
    if (State || Stages)
      end();
  }
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

  /// Attaches a numeric argument (up to 4; extras are dropped). \p Key
  /// must be a string literal.
  void arg(const char *Key, double V);
  /// Attaches a string argument (up to 2; extras are dropped).
  void arg(const char *Key, std::string V);

  /// Ends the span early (records the event; the destructor becomes a
  /// no-op).
  void end();

  /// True when the tracer was enabled at construction — gate for
  /// optional arg computation at call sites. False in stage-capture
  /// mode: args have nowhere to go when no event is recorded.
  bool active() const { return State != nullptr; }

private:
  Tracer::ThreadState *State = nullptr; ///< null when tracing disabled
  /// Stage-capture mode: the accumulator this span adds to at end().
  /// Mutually exclusive with State (full tracing already feeds the
  /// scope's totals through the event path).
  StageTotals *Stages = nullptr;
  uint64_t StageStartNs = 0;
  Tracer::Event Ev;
};

/// Installs \p T as the current thread's stage accumulator for the
/// scope's lifetime (nesting restores the previous one). Spans ending on
/// this thread add their durations to it. Threads never migrate
/// mid-request in this codebase (a request runs entirely on one worker),
/// so thread-local installation is exact.
class StageScope {
public:
  explicit StageScope(StageTotals &T);
  ~StageScope();
  StageScope(const StageScope &) = delete;
  StageScope &operator=(const StageScope &) = delete;

private:
  StageTotals *Prev;
};

} // namespace xsa

#endif // XSA_OBS_TRACE_H
