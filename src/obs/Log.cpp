//===- Log.cpp - Structured event log --------------------------------------===//

#include "obs/Log.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <chrono>

using namespace xsa;

const char *xsa::logLevelName(LogLevel L) {
  switch (L) {
  case LogLevel::Debug:
    return "debug";
  case LogLevel::Info:
    return "info";
  case LogLevel::Warn:
    return "warn";
  case LogLevel::Error:
    return "error";
  }
  return "info";
}

bool xsa::parseLogLevel(const std::string &Name, LogLevel &L) {
  if (Name == "debug")
    L = LogLevel::Debug;
  else if (Name == "info")
    L = LogLevel::Info;
  else if (Name == "warn" || Name == "warning")
    L = LogLevel::Warn;
  else if (Name == "error")
    L = LogLevel::Error;
  else
    return false;
  return true;
}

namespace {

uint64_t unixMsNow() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

Counter &recordsCounter(LogLevel L) {
  static Counter *ByLevel[4] = {nullptr, nullptr, nullptr, nullptr};
  static std::once_flag Once;
  std::call_once(Once, [] {
    for (int I = 0; I < 4; ++I)
      ByLevel[I] = &MetricRegistry::global().counter(
          labeledMetricName("xsa_log_records_total", "level",
                            logLevelName(static_cast<LogLevel>(I))),
          "Structured log records accepted, by level", /*Volatile=*/true);
  });
  return *ByLevel[static_cast<int>(L)];
}

Counter &sinkDroppedCounter() {
  static Counter &C = MetricRegistry::global().counter(
      "xsa_log_sink_dropped_total",
      "Structured log records withheld from the sink by the rate limiter",
      /*Volatile=*/true);
  return C;
}

} // namespace

EventLog &EventLog::global() {
  static EventLog L;
  return L;
}

void EventLog::configure(const Options &O) {
  std::lock_guard<std::mutex> Lock(Mu);
  Opts = O;
  MinLevel.store(static_cast<int>(O.MinLevel), std::memory_order_relaxed);
  Tokens = O.SinkBurst;
  LastRefillNs = Tracer::nowNs();
}

void EventLog::emit(LogLevel L, const char *Event, const JsonRef &Fields) {
  // Assemble the full record object: ts/level/event first, call-site
  // fields after, in insertion order.
  JsonRef Obj = JsonValue::object();
  uint64_t UnixMs = unixMsNow();
  Obj->set("ts", JsonValue::number(static_cast<double>(UnixMs)));
  Obj->set("level", JsonValue::string(logLevelName(L)));
  Obj->set("event", JsonValue::string(Event));
  if (Fields)
    for (const auto &[K, V] : Fields->members())
      Obj->set(K, V);

  Records.fetch_add(1, std::memory_order_relaxed);
  recordsCounter(L).add();

  std::lock_guard<std::mutex> Lock(Mu);
  Record R;
  R.Seq = NextSeq++;
  R.UnixMs = UnixMs;
  R.Level = L;
  R.Event = Event;
  R.Fields = Obj;
  Ring.push_back(std::move(R));
  while (Ring.size() > Opts.RingCapacity)
    Ring.pop_front();

  if (!Opts.Sink)
    return;
  if (Opts.SinkRatePerSec > 0) {
    uint64_t Now = Tracer::nowNs();
    Tokens += static_cast<double>(Now - LastRefillNs) / 1e9 *
              Opts.SinkRatePerSec;
    if (Tokens > Opts.SinkBurst)
      Tokens = Opts.SinkBurst;
    LastRefillNs = Now;
    if (Tokens < 1) {
      ++DroppedSinceNote;
      SinkDroppedTotal.fetch_add(1, std::memory_order_relaxed);
      sinkDroppedCounter().add();
      return;
    }
    Tokens -= 1;
    if (DroppedSinceNote) {
      // One summary line instead of the suppressed flood, charged to
      // the token just consumed alongside the record that revived us.
      std::fprintf(Opts.Sink,
                   "{\"ts\":%llu,\"level\":\"warn\",\"event\":\"log."
                   "dropped\",\"count\":%llu}\n",
                   static_cast<unsigned long long>(UnixMs),
                   static_cast<unsigned long long>(DroppedSinceNote));
      DroppedSinceNote = 0;
    }
  }
  std::string Line = Obj->dump();
  Line += '\n';
  std::fwrite(Line.data(), 1, Line.size(), Opts.Sink);
  std::fflush(Opts.Sink);
}

std::vector<EventLog::Record> EventLog::ring(size_t MaxRecords) const {
  std::lock_guard<std::mutex> Lock(Mu);
  size_t N = Ring.size();
  if (MaxRecords && MaxRecords < N)
    N = MaxRecords;
  std::vector<Record> Out;
  Out.reserve(N);
  for (size_t I = Ring.size() - N; I < Ring.size(); ++I)
    Out.push_back(Ring[I]);
  return Out;
}

void EventLog::clearForTest() {
  std::lock_guard<std::mutex> Lock(Mu);
  Ring.clear();
  NextSeq = 1;
  Tokens = Opts.SinkBurst;
  LastRefillNs = Tracer::nowNs();
  DroppedSinceNote = 0;
  Records.store(0, std::memory_order_relaxed);
  SinkDroppedTotal.store(0, std::memory_order_relaxed);
}

JsonRef xsa::logRecordJson(const EventLog::Record &R) { return R.Fields; }

//===----------------------------------------------------------------------===//
// LogEvent
//===----------------------------------------------------------------------===//

LogEvent::LogEvent(LogLevel L, const char *Ev) : Level(L), Event(Ev) {
  if (EventLog::global().enabled(L))
    Fields = JsonValue::object();
}

LogEvent::~LogEvent() {
  if (Fields)
    EventLog::global().emit(Level, Event, Fields);
}

LogEvent &LogEvent::str(const char *Key, const std::string &V) {
  if (Fields)
    Fields->set(Key, JsonValue::string(V));
  return *this;
}

LogEvent &LogEvent::num(const char *Key, double V) {
  if (Fields)
    Fields->set(Key, JsonValue::number(V));
  return *this;
}

LogEvent &LogEvent::flag(const char *Key, bool V) {
  if (Fields)
    Fields->set(Key, JsonValue::boolean(V));
  return *this;
}
