//===- Metrics.h - Thread-safe metric registry -------------------*- C++ -*-===//
//
// Part of the xsa project (PLDI 2007 XPath/type analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small metrics substrate for the whole engine: named counters,
/// gauges and fixed-bucket histograms collected in a thread-safe
/// MetricRegistry and exported in two formats — Prometheus text
/// exposition (what a future `xsolved /metrics` endpoint serves, and
/// what `xsolve batch --metrics-file` writes today) and JSON (the
/// `{"op":"metrics"}` protocol line).
///
/// Hot-path discipline: registration (name lookup) takes the registry
/// mutex, so call sites register once — typically through a function-
/// local static — and then touch only the returned handle. The handles
/// themselves are lock-free:
///
///  * Counter is sharded over cache-line-padded relaxed atomics indexed
///    by a per-thread slot hint, so concurrent workers do not bounce one
///    cache line;
///  * Gauge is a single relaxed atomic double (last write wins — it is a
///    sampled instantaneous value, not a tally);
///  * Histogram keeps one relaxed atomic per bucket plus a fixed-point
///    sum; observe() is two relaxed fetch_adds and a branchless-ish
///    bucket search over a small bound array.
///
/// Like every counter bundle in this codebase (see service/Context.h),
/// relaxed ordering is sufficient: metrics are independent monotonic
/// tallies, nothing reads one to decide control flow, and readers that
/// want a consistent snapshot take it after a synchronization point of
/// their own (batch barrier, process exit).
///
/// Metric names follow Prometheus conventions. A name may carry a label
/// set inline — `xsa_requests_total{op="contains"}` — which the
/// exporters understand (the TYPE line is emitted once per base name).
///
//===----------------------------------------------------------------------===//

#ifndef XSA_OBS_METRICS_H
#define XSA_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace xsa {

class JsonValue;
using JsonRef = std::shared_ptr<JsonValue>;

/// Monotonic counter, sharded to keep concurrent increments off one
/// cache line. value() sums the shards (racy-exact: each shard is read
/// atomically; the total is exact once writers are quiescent).
class Counter {
public:
  void add(uint64_t N = 1) {
    Slots[slotIndex()].V.fetch_add(N, std::memory_order_relaxed);
  }
  uint64_t value() const {
    uint64_t Total = 0;
    for (const Slot &S : Slots)
      Total += S.V.load(std::memory_order_relaxed);
    return Total;
  }

private:
  static constexpr size_t NumSlots = 8; ///< power of two
  struct alignas(64) Slot {
    std::atomic<uint64_t> V{0};
  };
  static size_t slotIndex();
  Slot Slots[NumSlots];
};

/// Instantaneous sampled value (BDD node counts, store sizes). Last
/// writer wins; no read-modify-write on the hot path.
class Gauge {
public:
  void set(double V) { Val.store(V, std::memory_order_relaxed); }
  double value() const { return Val.load(std::memory_order_relaxed); }

private:
  std::atomic<double> Val{0};
};

/// A point-in-time copy of a histogram, and the unit of quantile math.
/// Snapshots subtract, so a benchmark can bracket a measured region and
/// compute p50/p99 of exactly the observations inside it.
struct HistogramSnapshot {
  std::vector<double> Bounds;   ///< bucket upper bounds (no +Inf entry)
  std::vector<uint64_t> Counts; ///< per bucket; Bounds.size()+1 long (+Inf last)
  uint64_t Count = 0;
  double Sum = 0;

  /// This snapshot minus an earlier \p Base of the same histogram.
  HistogramSnapshot since(const HistogramSnapshot &Base) const;
  /// The \p Q quantile (0..1) estimated by linear interpolation within
  /// the owning bucket; 0 when empty. Observations past the last finite
  /// bound report that bound (the histogram cannot resolve further).
  double quantile(double Q) const;
};

/// Fixed-bucket histogram. Buckets are cumulative only at export time;
/// internally each bucket counts its own range so observe() touches one
/// bucket atom.
class Histogram {
public:
  /// \p Bounds must be strictly increasing; a terminal +Inf bucket is
  /// implicit. Empty bounds get defaultLatencyBucketsMs().
  explicit Histogram(std::vector<double> Bounds);

  void observe(double V) {
    size_t I = 0, N = Bounds.size();
    while (I < N && V > Bounds[I])
      ++I;
    Buckets[I].fetch_add(1, std::memory_order_relaxed);
    Total.fetch_add(1, std::memory_order_relaxed);
    // Fixed-point micro-units: atomic doubles cannot fetch_add portably.
    SumMicro.fetch_add(static_cast<uint64_t>(V * 1e6 + 0.5),
                       std::memory_order_relaxed);
  }

  HistogramSnapshot snapshot() const;
  const std::vector<double> &bounds() const { return Bounds; }

  /// Attaches/replaces the histogram's exemplar: one labeled
  /// observation a caller singled out (the server labels slow-query
  /// captures with their request id, so the latency histogram links
  /// back to a concrete slowlog entry). Mutex-guarded but OFF the hot
  /// path — observe() never touches it; callers label tail events only.
  void setExemplar(const std::string &Label, double V);
  /// False when no exemplar was ever set.
  bool exemplar(std::string &Label, double &V) const;

  /// Exponential millisecond buckets from 10µs to 60s — wide enough for
  /// a cache hit and a 2^O(n) worst-case solve in one histogram.
  static std::vector<double> defaultLatencyBucketsMs();

private:
  std::vector<double> Bounds;
  std::unique_ptr<std::atomic<uint64_t>[]> Buckets; ///< Bounds.size()+1
  std::atomic<uint64_t> Total{0};
  std::atomic<uint64_t> SumMicro{0}; ///< sum in 1e-6 units of the value
  mutable std::mutex ExMu;
  std::string ExLabel; ///< guarded by ExMu
  double ExVal = 0;    ///< guarded by ExMu
  bool HasEx = false;  ///< guarded by ExMu
};

/// Named metric table. get-or-create by name; handles are stable for the
/// registry's lifetime (entries are never removed). Creating the same
/// name with two different kinds is a programming error (asserted).
class MetricRegistry {
public:
  /// \p Volatile marks a metric whose value depends on scheduling or
  /// wall-clock rather than the workload alone (e.g. BDD node counts at
  /// --jobs > 1, where which duplicate request wins the cache race varies
  /// run to run). Volatile entries are excluded from
  /// toJson(IncludeVolatile=false). Only applies on first creation.
  Counter &counter(const std::string &Name, const std::string &Help = "",
                   bool Volatile = false);
  Gauge &gauge(const std::string &Name, const std::string &Help = "",
               bool Volatile = false);
  /// \p Bounds only applies on first creation. Histograms are always
  /// volatile (they record latency distributions).
  Histogram &histogram(const std::string &Name, const std::string &Help = "",
                       std::vector<double> Bounds = {});

  /// Prometheus text exposition format, sorted by name (one HELP/TYPE
  /// block per base name, label sets as series under it).
  std::string prometheusText() const;

  /// OpenMetrics 1.0 text exposition: the same series, with counter
  /// families named without their `_total` suffix (the sample keeps it,
  /// as the spec requires), histogram exemplars rendered on the
  /// `_bucket` line whose range contains them (`... # {rid="..."} v`),
  /// and the mandatory `# EOF` terminator. Served on /metrics when the
  /// scraper negotiates `Accept: application/openmetrics-text`.
  std::string openMetricsText() const;

  /// JSON export: {"schema":"xsa.metrics/1","counters":{...},
  /// "gauges":{...},"histograms":{name:{count,sum,buckets:[...]}}}.
  /// The schema field versions the shape for protocol clients. With
  /// \p IncludeVolatile false, histograms (wall-clock latency
  /// distributions) and metrics registered Volatile are omitted, leaving
  /// only values that are functions of the workload alone — this is what
  /// keeps `--stable` batch output reproducible when it answers an
  /// {"op":"metrics"} line.
  JsonRef toJson(bool IncludeVolatile = true) const;

  /// Version tag carried by every JSON export and the {"op":"metrics"}
  /// protocol response.
  static constexpr const char *SchemaVersion = "xsa.metrics/1";

  /// The process-wide registry every built-in instrumentation point
  /// tallies into.
  static MetricRegistry &global();

private:
  enum class Kind { Counter, Gauge, Histogram };
  struct Entry {
    std::string Name, Help;
    Kind K;
    bool Volatile = false;
    std::unique_ptr<Counter> C;
    std::unique_ptr<Gauge> G;
    std::unique_ptr<Histogram> H;
  };
  Entry &entry(const std::string &Name, const std::string &Help, Kind K,
               bool Volatile, std::vector<double> *Bounds = nullptr);
  std::string expositionText(bool OpenMetrics) const;

  mutable std::mutex Mu;
  std::vector<std::unique_ptr<Entry>> Entries; ///< registration order
};

/// Escapes \p Value per the Prometheus text format's label-value rules:
/// `\` → `\\`, `"` → `\"`, newline → `\n`. Every other byte passes
/// through verbatim (the format permits arbitrary UTF-8 otherwise).
/// Applied by labeledMetricName at registration, so user-controlled
/// values (namespace names arrive via {"op":"config","ns":...}) can
/// never break the exposition's line framing or quoting.
std::string escapePrometheusLabelValue(const std::string &Value);

/// `base{label="value"}` with the value escaped by
/// escapePrometheusLabelValue.
std::string labeledMetricName(const std::string &Base, const std::string &Label,
                              const std::string &Value);

} // namespace xsa

#endif // XSA_OBS_METRICS_H
