//===- Trace.cpp - Structured span tracer ----------------------------------===//

#include "obs/Trace.h"

#include "service/Json.h"

#include <chrono>
#include <cstdio>
#include <cstring>

using namespace xsa;

//===----------------------------------------------------------------------===//
// StageTotals / StageScope
//===----------------------------------------------------------------------===//

namespace {
thread_local StageTotals *CurrentStages = nullptr;
} // namespace

void StageTotals::add(const char *Name, uint64_t Ns) {
  for (auto &[N, Total] : Rows)
    if (N == Name || std::strcmp(N, Name) == 0) {
      Total += Ns;
      return;
    }
  Rows.emplace_back(Name, Ns);
}

std::vector<std::pair<std::string, double>> StageTotals::toMs() const {
  std::vector<std::pair<std::string, double>> Out;
  Out.reserve(Rows.size());
  for (const auto &[N, Total] : Rows)
    Out.emplace_back(N, static_cast<double>(Total) / 1e6);
  return Out;
}

StageScope::StageScope(StageTotals &T) : Prev(CurrentStages) {
  CurrentStages = &T;
}

StageScope::~StageScope() { CurrentStages = Prev; }

//===----------------------------------------------------------------------===//
// Tracer
//===----------------------------------------------------------------------===//

Tracer &Tracer::global() {
  static Tracer T;
  return T;
}

uint64_t Tracer::nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void Tracer::recordSpanFrom(const char *Name, uint64_t StartNsAbs) {
  if (!enabled()) {
    // Stage-capture mode still feeds the current request's totals (the
    // queue-wait entry of a slowlog breakdown comes through here).
    if (stageCaptureEnabled())
      if (StageTotals *St = CurrentStages) {
        uint64_t Now = nowNs();
        St->add(Name, Now > StartNsAbs ? Now - StartNsAbs : 0);
      }
    return;
  }
  uint64_t Now = nowNs();
  ThreadState &S = threadState();
  Event Ev;
  Ev.Name = Name;
  Ev.Tid = S.Tid;
  Ev.Id = (static_cast<uint64_t>(S.Tid) + 1) << 32 | ++S.NextSeq;
  Ev.Parent = S.Stack.empty() ? 0 : S.Stack.back();
  // A start stamped before the tracer's epoch (enable raced the stamp)
  // clamps to the epoch rather than underflowing.
  Ev.StartNs = StartNsAbs > EpochNs ? StartNsAbs - EpochNs : 0;
  uint64_t RelNow = Now > EpochNs ? Now - EpochNs : 0;
  Ev.DurNs = RelNow > Ev.StartNs ? RelNow - Ev.StartNs : 0;
  if (StageTotals *St = CurrentStages)
    St->add(Ev.Name, Ev.DurNs);
  S.Buf.push_back(std::move(Ev));
}

thread_local Tracer::ThreadState *Tracer::TLState = nullptr;

Tracer::ThreadState &Tracer::threadState() {
  if (TLState)
    return *TLState;
  return registerThread();
}

Tracer::ThreadState &Tracer::registerThread() {
  std::lock_guard<std::mutex> Lock(Mu);
  auto S = std::make_unique<ThreadState>();
  S->Tid = static_cast<uint32_t>(Threads.size());
  Threads.push_back(std::move(S));
  TLState = Threads.back().get();
  return *TLState;
}

void Tracer::start() {
  std::lock_guard<std::mutex> Lock(Mu);
  for (auto &S : Threads) {
    S->Buf.clear();
    S->Stack.clear();
    S->NextSeq = 0;
  }
  EpochNs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  Enabled.store(true, std::memory_order_relaxed);
}

void Tracer::stop() { Enabled.store(false, std::memory_order_relaxed); }

void Tracer::forEachEvent(const std::function<void(const Event &)> &F) const {
  std::lock_guard<std::mutex> Lock(Mu);
  for (const auto &S : Threads)
    for (const Event &E : S->Buf)
      F(E);
}

size_t Tracer::eventCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  size_t N = 0;
  for (const auto &S : Threads)
    N += S->Buf.size();
  return N;
}

std::string Tracer::chromeTraceJson() const {
  // Hand-assembled (not via JsonValue) so a large trace serializes in one
  // pass without building a tree; string values still go through the
  // shared escaper.
  std::string Out = "{\"traceEvents\":[";
  bool First = true;
  auto Emit = [&](const std::string &Line) {
    if (!First)
      Out += ',';
    First = false;
    Out += '\n';
    Out += Line;
  };
  std::lock_guard<std::mutex> Lock(Mu);
  for (const auto &S : Threads) {
    char Buf[128];
    std::snprintf(Buf, sizeof(Buf),
                  "{\"ph\":\"M\",\"pid\":1,\"tid\":%u,\"name\":"
                  "\"thread_name\",\"args\":{\"name\":\"thread-%u\"}}",
                  S->Tid, S->Tid);
    Emit(Buf);
    for (const Event &E : S->Buf) {
      std::string Line = "{\"name\":" + jsonQuote(E.Name) +
                         ",\"cat\":\"xsa\",\"ph\":\"X\"";
      std::snprintf(Buf, sizeof(Buf),
                    ",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%u",
                    static_cast<double>(E.StartNs) / 1e3,
                    static_cast<double>(E.DurNs) / 1e3, E.Tid);
      Line += Buf;
      Line += ",\"args\":{";
      std::snprintf(Buf, sizeof(Buf), "\"span\":%llu,\"parent\":%llu",
                    static_cast<unsigned long long>(E.Id),
                    static_cast<unsigned long long>(E.Parent));
      Line += Buf;
      for (uint8_t I = 0; I < E.NumArgs; ++I) {
        Line += ',';
        Line += jsonQuote(E.Args[I].Key);
        Line += ':';
        double V = E.Args[I].Num;
        if (V == static_cast<double>(static_cast<long long>(V)))
          std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(V));
        else
          std::snprintf(Buf, sizeof(Buf), "%.6g", V);
        Line += Buf;
      }
      for (uint8_t I = 0; I < E.NumStrs; ++I) {
        Line += ',';
        Line += jsonQuote(E.Strs[I].Key);
        Line += ':';
        Line += jsonQuote(E.Strs[I].Val);
      }
      Line += "}}";
      Emit(Line);
    }
  }
  Out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return Out;
}

bool Tracer::writeChromeTrace(const std::string &Path) const {
  std::string Doc = chromeTraceJson();
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  size_t Written = std::fwrite(Doc.data(), 1, Doc.size(), F);
  bool Ok = Written == Doc.size();
  return std::fclose(F) == 0 && Ok;
}

//===----------------------------------------------------------------------===//
// Span
//===----------------------------------------------------------------------===//

Span::Span(const char *Name) {
  Tracer &T = Tracer::global();
  if (!T.enabled()) {
    // Stage-capture mode: accumulate into the installed scope without
    // recording an event. Off and no scope installed: the zero-cost
    // path — two relaxed loads, no clock read.
    if (T.stageCaptureEnabled() && CurrentStages) {
      Stages = CurrentStages;
      Ev.Name = Name;
      StageStartNs = Tracer::nowNs();
    }
    return;
  }
  Tracer::ThreadState &S = T.threadState();
  State = &S;
  Ev.Name = Name;
  Ev.Tid = S.Tid;
  Ev.Id = (static_cast<uint64_t>(S.Tid) + 1) << 32 | ++S.NextSeq;
  Ev.Parent = S.Stack.empty() ? 0 : S.Stack.back();
  S.Stack.push_back(Ev.Id);
  uint64_t Now = T.nowNs();
  // Relative to the epoch start() recorded; a span opened before start()
  // cannot exist (quiescence contract), so this never underflows.
  Ev.StartNs = Now - T.EpochNs;
}

void Span::arg(const char *Key, double V) {
  if (!State || Ev.NumArgs >= 4)
    return;
  Ev.Args[Ev.NumArgs++] = {Key, V};
}

void Span::arg(const char *Key, std::string V) {
  if (!State || Ev.NumStrs >= 2)
    return;
  Ev.Strs[Ev.NumStrs].Key = Key;
  Ev.Strs[Ev.NumStrs].Val = std::move(V);
  ++Ev.NumStrs;
}

void Span::end() {
  if (Stages) {
    Stages->add(Ev.Name, Tracer::nowNs() - StageStartNs);
    Stages = nullptr;
    return;
  }
  if (!State)
    return;
  Tracer &T = Tracer::global();
  Ev.DurNs = (T.nowNs() - T.EpochNs) - Ev.StartNs;
  // Unbalanced end() calls would indicate a structural bug; pop our own
  // id specifically so a stray early end under an open child degrades to
  // a wrong-parent event rather than corrupting the stack.
  if (!State->Stack.empty() && State->Stack.back() == Ev.Id)
    State->Stack.pop_back();
  if (StageTotals *St = CurrentStages)
    St->add(Ev.Name, Ev.DurNs);
  State->Buf.push_back(std::move(Ev));
  State = nullptr;
}
