//===- Log.h - Structured event log ------------------------------*- C++ -*-===//
//
// Part of the xsa project (PLDI 2007 XPath/type analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe structured event log for the service plane: JSON-lines
/// records (one object per line), leveled, rate-limited toward the sink,
/// with a bounded in-memory ring retrievable at runtime (the server's
/// {"op":"log"} and /logz endpoints).
///
/// Discipline mirrors the rest of src/obs/:
///
///  * the disabled path is cheap — LogEvent's constructor is one relaxed
///    atomic load and a branch when the record's level is below the
///    configured minimum, so per-request Debug events cost nothing on a
///    production Info-level server;
///  * the sink (stderr by default, a file under --log-file) is protected
///    from floods by a token bucket: records above the configured rate
///    are counted and summarized ("log.dropped") instead of written. The
///    in-memory ring is bounded by construction, so it always keeps the
///    most recent records regardless of the sink rate;
///  * determinism: nothing in the engine reads the log to decide
///    anything, and no log data rides on a protocol response's stable
///    side — `--stable` output is byte-identical with logging on or off
///    (see DESIGN.md "Observability").
///
/// Records always carry "ts" (unix milliseconds), "level" and "event";
/// call-site fields follow in insertion order. Event names are dotted
/// lowercase ("conn.accept", "drain.begin", "request.slow").
///
//===----------------------------------------------------------------------===//

#ifndef XSA_OBS_LOG_H
#define XSA_OBS_LOG_H

#include "service/Json.h"

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace xsa {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3 };

const char *logLevelName(LogLevel L);
/// Parses "debug", "info", "warn", "error" (what --log-level accepts).
bool parseLogLevel(const std::string &Name, LogLevel &L);

class EventLog {
public:
  struct Options {
    /// Records below this level are discarded at the call site.
    LogLevel MinLevel = LogLevel::Info;
    /// Most records retained in memory for {"op":"log"} / /logz.
    size_t RingCapacity = 256;
    /// Sink rate limit in records/second (token bucket; 0 = unlimited).
    /// Applies to the sink only — the ring keeps every accepted record.
    double SinkRatePerSec = 500;
    /// Token-bucket depth: how large a burst passes at full rate before
    /// the limiter engages.
    double SinkBurst = 200;
    /// Where emitted lines go; nullptr = ring only (what tests use).
    /// The log never closes the stream.
    std::FILE *Sink = stderr;
  };

  /// One accepted record. Fields is the complete serialized object
  /// (immutable once emitted; safe to share across threads by value).
  struct Record {
    uint64_t Seq = 0; ///< monotonic per log, for eviction-order checks
    uint64_t UnixMs = 0;
    LogLevel Level = LogLevel::Info;
    std::string Event;
    JsonRef Fields;
  };

  /// The process-wide log every built-in call site emits into.
  static EventLog &global();

  /// Replaces the configuration (thread-safe; typically called once by
  /// the daemon before start()).
  void configure(const Options &O);

  /// Call-site gate: one relaxed load.
  bool enabled(LogLevel L) const {
    return static_cast<int>(L) >= MinLevel.load(std::memory_order_relaxed);
  }

  /// Accepts one record: stamps ts/seq, appends to the ring (evicting
  /// the oldest past capacity) and writes the line to the sink unless
  /// the token bucket is empty. \p Fields must already carry the
  /// call-site fields; ts/level/event are prepended here.
  void emit(LogLevel L, const char *Event, const JsonRef &Fields);

  /// The most recent records, oldest first (\p MaxRecords 0 = all).
  std::vector<Record> ring(size_t MaxRecords = 0) const;

  uint64_t recordCount() const {
    return Records.load(std::memory_order_relaxed);
  }
  uint64_t sinkDropped() const {
    return SinkDroppedTotal.load(std::memory_order_relaxed);
  }

  /// Test hook: clears the ring, counters and the token bucket (the
  /// configuration stays).
  void clearForTest();

private:
  mutable std::mutex Mu; ///< guards Ring, bucket state and the sink
  Options Opts;          ///< guarded by Mu (MinLevel mirrored below)
  std::deque<Record> Ring;
  uint64_t NextSeq = 1;
  double Tokens = 0;
  uint64_t LastRefillNs = 0;
  uint64_t DroppedSinceNote = 0; ///< pending "log.dropped" summary count

  std::atomic<int> MinLevel{static_cast<int>(LogLevel::Info)};
  std::atomic<uint64_t> Records{0};
  std::atomic<uint64_t> SinkDroppedTotal{0};
};

/// Builder for one record against EventLog::global(). Does nothing —
/// not even a clock read — when the level is below the configured
/// minimum. Emits in the destructor.
///
///   LogEvent(LogLevel::Warn, "admission.rejected")
///       .str("rid", Rid).str("ns", Ns).num("queue", Depth);
class LogEvent {
public:
  LogEvent(LogLevel L, const char *Event);
  ~LogEvent();
  LogEvent(const LogEvent &) = delete;
  LogEvent &operator=(const LogEvent &) = delete;

  LogEvent &str(const char *Key, const std::string &V);
  LogEvent &num(const char *Key, double V);
  LogEvent &flag(const char *Key, bool V);

  /// True when the record will be emitted — gate for expensive field
  /// computation at call sites.
  bool active() const { return Fields != nullptr; }

private:
  LogLevel Level;
  const char *Event;
  JsonRef Fields; ///< null when suppressed by level
};

/// Serializes one ring record as the same JSON object the sink received.
JsonRef logRecordJson(const EventLog::Record &R);

} // namespace xsa

#endif // XSA_OBS_LOG_H
