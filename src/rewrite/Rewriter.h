//===- Rewriter.h - Solver-verified XPath rewrite driver ---------*- C++ -*-===//
//
// Part of the xsa project (PLDI 2007 XPath/type analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The driver of the solver-verified XPath optimizer — the query
/// reformulation application §1 of the paper motivates the whole
/// equivalence machinery with. The loop is the textbook certified
/// rewrite:
///
///   1. every shipped rule (Rule.h) proposes whole-expression
///      candidates for the current query;
///   2. the cost model (Cost.h) ranks them, keeping only candidates
///      strictly cheaper than the current query;
///   3. candidates are tried cheapest-first, and one is accepted only
///      when Analyzer::equivalence (or, for dropped top-level union
///      arms, Analyzer::emptiness) certifies it under the type in
///      force — an unsound candidate costs a refuted proof obligation,
///      never a wrong result;
///   4. repeat to fixpoint (no candidate survives), bounded by
///      MaxPasses/MaxChecks.
///
/// Every proof obligation — accepted or refuted — is recorded in the
/// result's trace (rule, candidate, check kind, verdict, cache hit,
/// time), so a caller can audit exactly why the optimized query is
/// equivalent to the original. When the Analyzer routes through an
/// AnalysisSession cache, repeated obligations (the common case on
/// near-duplicate workloads) are answered from cache.
///
/// Determinism: candidate generation is deterministic, ties in the cost
/// ranking break on the candidate's printed text, and the solver itself
/// is deterministic — so optimize() is a pure function of (query text,
/// type, options).
///
//===----------------------------------------------------------------------===//

#ifndef XSA_REWRITE_REWRITER_H
#define XSA_REWRITE_REWRITER_H

#include "analysis/Problems.h"
#include "rewrite/Cost.h"
#include "rewrite/Rule.h"

#include <string>
#include <vector>

namespace xsa {

/// One solver-checked proof obligation of an optimize() run.
struct RewriteStep {
  std::string Rule;   ///< rule that proposed the candidate
  std::string From;   ///< full query before (concrete syntax)
  std::string To;     ///< full candidate query (concrete syntax)
  std::string Note;   ///< rule-provided site description
  const char *Check = "equivalence"; ///< rewriteCheckName of the obligation
  bool Accepted = false;
  bool FromCache = false; ///< obligation answered from the session cache
  double TimeMs = 0;      ///< solver time of the obligation
};

struct RewriteResult {
  ExprRef Original;
  ExprRef Optimized;
  double OriginalCost = 0;
  double OptimizedCost = 0;
  size_t AcceptedSteps = 0;
  size_t CheckedCandidates = 0;
  /// Proof trace, in the order obligations were discharged.
  std::vector<RewriteStep> Trace;

  bool changed() const { return AcceptedSteps > 0; }
  /// The optimized query in concrete syntax (round-trips through
  /// parseXPath to an astEquals-equal AST).
  std::string text() const { return toString(Optimized); }
};

struct RewriterOptions {
  CostModel Cost;
  /// Fixpoint bound: passes each accepting at most one rewrite.
  size_t MaxPasses = 16;
  /// Global bound on solver-checked candidates per optimize() call.
  size_t MaxChecks = 64;
  /// Only try candidates strictly cheaper than the current query. With
  /// false, equal-cost candidates are tried too (used by tests to force
  /// specific obligations).
  bool RequireCostImprovement = true;
};

class Rewriter {
public:
  explicit Rewriter(Analyzer &An, RewriterOptions Opts = {})
      : An(An), Opts(Opts) {}

  /// Optimizes \p E under the type context \p Chi (FF.trueF() for
  /// none). Pure: \p E is never mutated; the result holds fresh ASTs.
  RewriteResult optimize(const ExprRef &E, Formula Chi);

private:
  Analyzer &An;
  RewriterOptions Opts;
};

} // namespace xsa

#endif // XSA_REWRITE_REWRITER_H
