//===- Cost.h - XPath evaluation cost model ----------------------*- C++ -*-===//
//
// Part of the xsa project (PLDI 2007 XPath/type analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A static cost model for the XPath fragment, used by the rewrite
/// engine to rank candidates and to insist that accepted rewrites are
/// strictly cheaper. The model is deliberately simple — an estimated
/// step count with structural penalties — because its job is to *order*
/// solver-certified equivalent expressions, not to predict wall time:
///
///   * every step costs StepCost;
///   * reverse axes (parent, ancestor, anc-or-self, prec-sibling,
///     preceding) add ReverseAxisPenalty — streaming and index-backed
///     evaluators pay disproportionately for upward/backward navigation,
///     which is why reverse-axis elimination is a classic rewrite
///     target;
///   * transitive iteration (p)+ multiplies the body by IteratePenalty;
///   * qualifier content is discounted by QualifierDiscount per nesting
///     level (a filter existence check prunes early and is cheaper than
///     materializing the same steps on the selection path), while deep
///     predicate nesting still shows up in the total.
///
//===----------------------------------------------------------------------===//

#ifndef XSA_REWRITE_COST_H
#define XSA_REWRITE_COST_H

#include "xpath/Ast.h"

namespace xsa {

/// Reverse axes in the Fig. 4 fragment: navigation against document
/// order / towards the root.
bool isReverseAxis(Axis A);

struct CostModel {
  double StepCost = 1.0;
  double ReverseAxisPenalty = 3.0;
  double IteratePenalty = 2.0;
  double QualifierDiscount = 0.5;

  double cost(const ExprRef &E) const;
  /// \p Scale is the accumulated qualifier discount (1.0 on the
  /// selection path).
  double cost(const PathRef &P, double Scale = 1.0) const;
  double cost(const QualifRef &Q, double Scale = 1.0) const;
};

} // namespace xsa

#endif // XSA_REWRITE_COST_H
