//===- Rules.cpp - Concrete rewrite rules ----------------------------------===//
//
// The shipped rules of the rewrite engine. Each rule pattern-matches the
// AST and proposes candidates; none of them is trusted — the driver
// accepts a candidate only once the solver proves it under the type in
// force. Several rules are deliberately speculative (candidate sound
// only under a DTD, or plain unsound): the refuted obligations double as
// regression tests of the decision procedure and show up in the proof
// trace.
//
//===----------------------------------------------------------------------===//

#include "rewrite/Rule.h"

#include "rewrite/Cost.h"

#include <functional>

using namespace xsa;

const char *xsa::rewriteCheckName(RewriteCheck C) {
  switch (C) {
  case RewriteCheck::Equivalence:
    return "equivalence";
  case RewriteCheck::ArmEmptiness:
    return "emptiness";
  }
  return "?";
}

namespace {

//===----------------------------------------------------------------------===//
// Generic AST traversal with rebuild closures
//===----------------------------------------------------------------------===//

/// Rebuilds the whole expression with one path subterm replaced.
using Rebuild = std::function<ExprRef(PathRef)>;
using QualifRebuild = std::function<ExprRef(QualifRef)>;

/// Visitor over path nodes. \p ComposeRoot is true when the node is not
/// itself an operand of a Compose — i.e. it heads a maximal composition
/// chain (possibly of length one). Chain-scanning rules act only on
/// ComposeRoot Compose nodes so each chain is scanned exactly once.
using PathVisitor =
    std::function<void(const PathRef &, const Rebuild &, bool ComposeRoot)>;

void walkQualif(const QualifRef &Q, const QualifRebuild &RB,
                const PathVisitor &Fn);

void walkPath(const PathRef &P, const Rebuild &RB, bool IsComposeChild,
              const PathVisitor &Fn) {
  Fn(P, RB, !IsComposeChild);
  switch (P->K) {
  case XPathPath::Compose: {
    walkPath(
        P->P1,
        [P, RB](PathRef N) { return RB(XPathPath::compose(N, P->P2)); },
        /*IsComposeChild=*/true, Fn);
    walkPath(
        P->P2,
        [P, RB](PathRef N) { return RB(XPathPath::compose(P->P1, N)); },
        /*IsComposeChild=*/true, Fn);
    return;
  }
  case XPathPath::Qualified: {
    walkPath(
        P->P1,
        [P, RB](PathRef N) { return RB(XPathPath::qualified(N, P->Q)); },
        /*IsComposeChild=*/false, Fn);
    walkQualif(
        P->Q,
        [P, RB](QualifRef NQ) {
          return RB(XPathPath::qualified(P->P1, NQ));
        },
        Fn);
    return;
  }
  case XPathPath::Step:
    return;
  case XPathPath::Alt: {
    walkPath(
        P->P1, [P, RB](PathRef N) { return RB(XPathPath::alt(N, P->P2)); },
        /*IsComposeChild=*/false, Fn);
    walkPath(
        P->P2, [P, RB](PathRef N) { return RB(XPathPath::alt(P->P1, N)); },
        /*IsComposeChild=*/false, Fn);
    return;
  }
  case XPathPath::Iterate:
    walkPath(
        P->P1, [RB](PathRef N) { return RB(XPathPath::iterate(N)); },
        /*IsComposeChild=*/false, Fn);
    return;
  }
}

void walkQualif(const QualifRef &Q, const QualifRebuild &RB,
                const PathVisitor &Fn) {
  switch (Q->K) {
  case XPathQualif::And:
    walkQualif(
        Q->Q1,
        [Q, RB](QualifRef N) { return RB(XPathQualif::qand(N, Q->Q2)); }, Fn);
    walkQualif(
        Q->Q2,
        [Q, RB](QualifRef N) { return RB(XPathQualif::qand(Q->Q1, N)); }, Fn);
    return;
  case XPathQualif::Or:
    walkQualif(
        Q->Q1,
        [Q, RB](QualifRef N) { return RB(XPathQualif::qor(N, Q->Q2)); }, Fn);
    walkQualif(
        Q->Q2,
        [Q, RB](QualifRef N) { return RB(XPathQualif::qor(Q->Q1, N)); }, Fn);
    return;
  case XPathQualif::Not:
    walkQualif(
        Q->Q1, [RB](QualifRef N) { return RB(XPathQualif::qnot(N)); }, Fn);
    return;
  case XPathQualif::Path:
    walkPath(
        Q->P, [RB](PathRef N) { return RB(XPathQualif::path(N)); },
        /*IsComposeChild=*/false, Fn);
    return;
  }
}

/// Visits every path node of \p E with a closure rebuilding the whole
/// expression around a replacement.
void forEachPathSite(const ExprRef &E, const PathVisitor &Fn) {
  std::function<void(const ExprRef &, const std::function<ExprRef(ExprRef)> &)>
      WalkExpr = [&](const ExprRef &Ex,
                     const std::function<ExprRef(ExprRef)> &RB) {
        switch (Ex->K) {
        case XPathExpr::Absolute:
          walkPath(
              Ex->P,
              [RB](PathRef N) { return RB(XPathExpr::absolute(N)); },
              /*IsComposeChild=*/false, Fn);
          return;
        case XPathExpr::Relative:
          walkPath(
              Ex->P,
              [RB](PathRef N) { return RB(XPathExpr::relative(N)); },
              /*IsComposeChild=*/false, Fn);
          return;
        case XPathExpr::Union:
          WalkExpr(Ex->E1, [Ex, RB](ExprRef N) {
            return RB(XPathExpr::unite(N, Ex->E2));
          });
          WalkExpr(Ex->E2, [Ex, RB](ExprRef N) {
            return RB(XPathExpr::unite(Ex->E1, N));
          });
          return;
        case XPathExpr::Intersect:
          WalkExpr(Ex->E1, [Ex, RB](ExprRef N) {
            return RB(XPathExpr::intersect(N, Ex->E2));
          });
          WalkExpr(Ex->E2, [Ex, RB](ExprRef N) {
            return RB(XPathExpr::intersect(Ex->E1, N));
          });
          return;
        }
      };
  WalkExpr(E, [](ExprRef N) { return N; });
}

//===----------------------------------------------------------------------===//
// Composition chains
//===----------------------------------------------------------------------===//

void flattenCompose(const PathRef &P, std::vector<PathRef> &Out) {
  if (P->K == XPathPath::Compose) {
    flattenCompose(P->P1, Out);
    flattenCompose(P->P2, Out);
    return;
  }
  Out.push_back(P);
}

/// Left-nested rebuild, matching the parser's shape.
PathRef rebuildCompose(const std::vector<PathRef> &Steps) {
  PathRef P = Steps.front();
  for (size_t I = 1; I < Steps.size(); ++I)
    P = XPathPath::compose(P, Steps[I]);
  return P;
}

/// Rebuilds the chain with elements [I, I+Removed) replaced by
/// \p Repl (null = removed outright).
PathRef spliceChain(const std::vector<PathRef> &Steps, size_t I,
                    size_t Removed, PathRef Repl) {
  std::vector<PathRef> Out;
  Out.reserve(Steps.size());
  Out.insert(Out.end(), Steps.begin(), Steps.begin() + I);
  if (Repl)
    Out.push_back(std::move(Repl));
  Out.insert(Out.end(), Steps.begin() + I + Removed, Steps.end());
  if (Out.empty())
    return nullptr;
  return rebuildCompose(Out);
}

bool isStep(const PathRef &P, Axis A) {
  return P->K == XPathPath::Step && P->A == A;
}
bool isStarStep(const PathRef &P, Axis A) { return isStep(P, A) && !P->Test; }

/// A "childish" chain element: a child step, possibly qualified
/// (child::a, a[x]). Used by the reverse-axis rule, which rewrites the
/// element onto another axis.
const XPathPath *childishBase(const PathRef &P) {
  const XPathPath *Base = P.get();
  if (Base->K == XPathPath::Qualified)
    Base = Base->P1.get();
  if (Base->K == XPathPath::Step && Base->A == Axis::Child)
    return Base;
  return nullptr;
}

/// The element with its base step moved to \p NewA (child::a[x] →
/// foll-sibling::a[x]).
PathRef withBaseAxis(const PathRef &P, Axis NewA) {
  if (P->K == XPathPath::Step)
    return XPathPath::step(NewA, P->Test);
  return XPathPath::qualified(XPathPath::step(NewA, P->P1->Test), P->Q);
}

/// Scans maximal composition chains of length >= 2.
template <typename F>
void forEachChain(const ExprRef &E, F &&Fn) {
  forEachPathSite(E, [&](const PathRef &P, const Rebuild &RB,
                         bool ComposeRoot) {
    if (!ComposeRoot || P->K != XPathPath::Compose)
      return;
    std::vector<PathRef> Steps;
    flattenCompose(P, Steps);
    Fn(Steps, RB);
  });
}

//===----------------------------------------------------------------------===//
// fuse-steps: axis normalization and adjacent step fusion
//===----------------------------------------------------------------------===//

class FuseStepsRule : public RewriteRule {
public:
  const char *name() const override { return "fuse-steps"; }

  void candidates(const ExprRef &E,
                  std::vector<RewriteCandidate> &Out) const override {
    forEachChain(E, [&](const std::vector<PathRef> &Steps, const Rebuild &RB) {
      for (size_t I = 0; I + 1 < Steps.size(); ++I) {
        const PathRef &S1 = Steps[I];
        const PathRef &S2 = Steps[I + 1];
        if (S1->K != XPathPath::Step)
          continue;
        // a/self::a[q] → a[q]: merge a (possibly qualified) self step
        // into the preceding step, keeping its qualifier.
        if (S2->K == XPathPath::Qualified && isStep(S2->P1, Axis::Self)) {
          std::optional<Symbol> T =
              S1->Test ? S1->Test : S2->P1->Test;
          PathRef Merged = XPathPath::qualified(
              XPathPath::step(S1->A, T), S2->Q);
          Out.push_back({RB(spliceChain(Steps, I, 2, Merged)),
                         RewriteCheck::Equivalence, nullptr,
                         "merge qualified self step into the preceding step"});
          continue;
        }
        // The second element may carry a qualifier (desc-or-self::*/
        // child::a[q] fuses to descendant::a[q] just as well): match on
        // its base step and re-wrap the qualifier around the fusion.
        const XPathPath *B2 = S2.get();
        if (B2->K == XPathPath::Qualified && B2->P1->K == XPathPath::Step)
          B2 = B2->P1.get();
        if (B2->K != XPathPath::Step)
          continue;
        PathRef Fused;
        std::string Note;
        if (isStarStep(S1, Axis::DescOrSelf) && B2->A == Axis::Child) {
          Fused = XPathPath::step(Axis::Descendant, B2->Test);
          Note = "fuse desc-or-self::*/child into descendant";
        } else if (isStarStep(S1, Axis::DescOrSelf) &&
                   B2->A == Axis::Descendant) {
          Fused = XPathPath::step(Axis::Descendant, B2->Test);
          Note = "fuse desc-or-self::*/descendant into descendant";
        } else if (isStarStep(S1, Axis::Descendant) &&
                   B2->A == Axis::DescOrSelf) {
          Fused = XPathPath::step(Axis::Descendant, B2->Test);
          Note = "fuse descendant::*/desc-or-self into descendant";
        } else if (isStarStep(S1, Axis::Child) && B2->A == Axis::DescOrSelf) {
          Fused = XPathPath::step(Axis::Descendant, B2->Test);
          Note = "fuse child::*/desc-or-self into descendant";
        } else if (isStarStep(S1, Axis::DescOrSelf) &&
                   B2->A == Axis::DescOrSelf) {
          Fused = XPathPath::step(Axis::DescOrSelf, B2->Test);
          Note = "fuse repeated desc-or-self";
        } else if (S2->K == XPathPath::Step && isStep(S2, Axis::Self) &&
                   S2->Test) {
          // a/self::a → a; */self::a → a. With two distinct tests the
          // left side is empty and the candidate is refuted — the rule
          // speculates, the solver decides.
          Fused = XPathPath::step(S1->A, S1->Test ? S1->Test : S2->Test);
          Note = "merge self filter into the preceding step";
        } else {
          continue;
        }
        if (S2->K == XPathPath::Qualified)
          Fused = XPathPath::qualified(std::move(Fused), S2->Q);
        Out.push_back({RB(spliceChain(Steps, I, 2, Fused)),
                       RewriteCheck::Equivalence, nullptr, Note});
      }
    });
  }
};

//===----------------------------------------------------------------------===//
// drop-self: self-step elimination
//===----------------------------------------------------------------------===//

class DropSelfRule : public RewriteRule {
public:
  const char *name() const override { return "drop-self"; }

  void candidates(const ExprRef &E,
                  std::vector<RewriteCandidate> &Out) const override {
    forEachChain(E, [&](const std::vector<PathRef> &Steps, const Rebuild &RB) {
      for (size_t I = 0; I < Steps.size(); ++I) {
        if (!isStep(Steps[I], Axis::Self))
          continue;
        // self::* is a no-op anywhere; self::σ only when the type forces
        // the label — the solver arbitrates.
        Out.push_back({RB(spliceChain(Steps, I, 1, nullptr)),
                       RewriteCheck::Equivalence, nullptr,
                       std::string("drop ") + toString(Steps[I])});
      }
    });
  }
};

//===----------------------------------------------------------------------===//
// collapse-iterate: (p)+ normalization (conditional-XPath iteration)
//===----------------------------------------------------------------------===//

class CollapseIterateRule : public RewriteRule {
public:
  const char *name() const override { return "collapse-iterate"; }

  void candidates(const ExprRef &E,
                  std::vector<RewriteCandidate> &Out) const override {
    forEachPathSite(E, [&](const PathRef &P, const Rebuild &RB, bool) {
      if (P->K != XPathPath::Iterate)
        return;
      if (P->P1->K == XPathPath::Iterate) {
        Out.push_back({RB(P->P1), RewriteCheck::Equivalence, nullptr,
                       "collapse nested iteration"});
        return;
      }
      if (P->P1->K != XPathPath::Step)
        return;
      Axis A = P->P1->A;
      std::optional<Symbol> T = P->P1->Test;
      PathRef Repl;
      switch (A) {
      case Axis::Child:
        // (child::*)+ is exactly descendant::*; with a test the
        // candidate is speculative ((a)+ needs every intermediate
        // labeled a) and usually refuted.
        Repl = XPathPath::step(Axis::Descendant, T);
        break;
      case Axis::Parent:
        Repl = XPathPath::step(Axis::Ancestor, T);
        break;
      case Axis::Self:
      case Axis::Descendant:
      case Axis::DescOrSelf:
      case Axis::Ancestor:
      case Axis::AncOrSelf:
      case Axis::FollSibling:
      case Axis::PrecSibling:
      case Axis::Following:
      case Axis::Preceding:
        // Transitive (or reflexive) axes absorb their own iteration.
        Repl = XPathPath::step(A, T);
        break;
      }
      Out.push_back({RB(Repl), RewriteCheck::Equivalence, nullptr,
                     std::string("collapse (") + toString(P->P1) + ")+"});
    });
  }
};

//===----------------------------------------------------------------------===//
// prune-qualifier: drop filters the type makes vacuous
//===----------------------------------------------------------------------===//

class PruneQualifierRule : public RewriteRule {
public:
  const char *name() const override { return "prune-qualifier"; }

  void candidates(const ExprRef &E,
                  std::vector<RewriteCandidate> &Out) const override {
    forEachPathSite(E, [&](const PathRef &P, const Rebuild &RB, bool) {
      if (P->K != XPathPath::Qualified)
        return;
      Out.push_back({RB(P->P1), RewriteCheck::Equivalence, nullptr,
                     std::string("drop [") + toString(P->Q) + "]"});
      // Inside a conjunction, each conjunct is individually droppable.
      if (P->Q->K == XPathQualif::And) {
        Out.push_back({RB(XPathPath::qualified(P->P1, P->Q->Q2)),
                       RewriteCheck::Equivalence, nullptr,
                       std::string("drop conjunct ") + toString(P->Q->Q1)});
        Out.push_back({RB(XPathPath::qualified(P->P1, P->Q->Q1)),
                       RewriteCheck::Equivalence, nullptr,
                       std::string("drop conjunct ") + toString(P->Q->Q2)});
      }
    });
  }
};

//===----------------------------------------------------------------------===//
// dead-branch: union-arm elimination
//===----------------------------------------------------------------------===//

void unionArms(const ExprRef &E, std::vector<ExprRef> &Arms) {
  if (E->K == XPathExpr::Union) {
    unionArms(E->E1, Arms);
    unionArms(E->E2, Arms);
    return;
  }
  Arms.push_back(E);
}

ExprRef rebuildUnion(const std::vector<ExprRef> &Arms) {
  ExprRef E = Arms.front();
  for (size_t I = 1; I < Arms.size(); ++I)
    E = XPathExpr::unite(E, Arms[I]);
  return E;
}

class DeadBranchRule : public RewriteRule {
public:
  const char *name() const override { return "dead-branch"; }

  void candidates(const ExprRef &E,
                  std::vector<RewriteCandidate> &Out) const override {
    // Top-level union arms evaluate in the same context as the whole
    // expression, so arm emptiness directly certifies the drop — and the
    // emptiness obligation shares cache entries with explicit `empty`
    // requests for the same arm.
    if (E->K == XPathExpr::Union) {
      std::vector<ExprRef> Arms;
      unionArms(E, Arms);
      for (size_t I = 0; I < Arms.size(); ++I) {
        std::vector<ExprRef> Rest;
        for (size_t J = 0; J < Arms.size(); ++J)
          if (J != I)
            Rest.push_back(Arms[J]);
        // An arm with a twin anywhere in the union is never empty, yet
        // dropping it is sound: certify by equivalence instead (both
        // drop candidates print identically, and the driver keeps one
        // proof obligation per candidate text, so the emptiness form
        // must not shadow the provable one).
        bool Duplicate = false;
        for (size_t J = 0; J < Arms.size() && !Duplicate; ++J)
          Duplicate = J != I && astEquals(Arms[J], Arms[I]);
        Out.push_back({rebuildUnion(Rest),
                       Duplicate ? RewriteCheck::Equivalence
                                 : RewriteCheck::ArmEmptiness,
                       Arms[I],
                       std::string(Duplicate ? "drop duplicate arm "
                                             : "drop dead arm ") +
                           toString(Arms[I])});
      }
    }
    // In-path alternatives ((a | b) inside a larger path) evaluate in a
    // context the arm-emptiness shortcut cannot see, so these drops are
    // certified by whole-expression equivalence.
    forEachPathSite(E, [&](const PathRef &P, const Rebuild &RB, bool) {
      if (P->K != XPathPath::Alt)
        return;
      Out.push_back({RB(P->P2), RewriteCheck::Equivalence, nullptr,
                     std::string("drop alternative ") + toString(P->P1)});
      Out.push_back({RB(P->P1), RewriteCheck::Equivalence, nullptr,
                     std::string("drop alternative ") + toString(P->P2)});
    });
  }
};

//===----------------------------------------------------------------------===//
// reverse-axis: eliminate upward/backward steps via forward filters
//===----------------------------------------------------------------------===//

class ReverseAxisRule : public RewriteRule {
public:
  const char *name() const override { return "reverse-axis"; }

  void candidates(const ExprRef &E,
                  std::vector<RewriteCandidate> &Out) const override {
    forEachChain(E, [&](const std::vector<PathRef> &Steps, const Rebuild &RB) {
      for (size_t I = 0; I + 1 < Steps.size(); ++I) {
        const PathRef &S1 = Steps[I];
        const PathRef &S2 = Steps[I + 1];
        if (S2->K != XPathPath::Step || !isReverseAxis(S2->A))
          continue;
        const XPathPath *Base = childishBase(S1);
        PathRef Repl;
        std::string Note;
        if (Base && (S2->A == Axis::Parent || S2->A == Axis::Ancestor)) {
          // p/σ/parent::τ ≡ p/self::τ[σ]: the parent of a child of x is
          // x itself. The same candidate is proposed for ancestor::τ —
          // the classic unsound shortcut (ancestors of a child include
          // nodes *above* x, which no downward filter can see) — and
          // the solver refutes it instead of letting the rewriter
          // miscompile (cf. the reverse-axis-elimination blowup of
          // [40] the paper cites).
          Repl = XPathPath::qualified(XPathPath::step(Axis::Self, S2->Test),
                                      XPathQualif::path(S1));
          Note = std::string("turn ") + toString(S2) +
                 " of a child into a self filter";
        } else if (Base && S2->A == Axis::PrecSibling) {
          // p/σ/prec-sibling::τ ≡ p/τ[foll-sibling::σ]: both sides are
          // children of the same node, and the sibling axes are
          // transitive and symmetric.
          Repl = XPathPath::qualified(
              XPathPath::step(Axis::Child, S2->Test),
              XPathQualif::path(withBaseAxis(S1, Axis::FollSibling)));
          Note = "flip prec-sibling into a foll-sibling filter";
        } else if (S1->K == XPathPath::Step && S1->A == Axis::Descendant &&
                   S2->A == Axis::Parent) {
          // p/descendant::σ/parent::τ ≡ p/desc-or-self::τ[σ].
          Repl = XPathPath::qualified(
              XPathPath::step(Axis::DescOrSelf, S2->Test),
              XPathQualif::path(XPathPath::step(Axis::Child, S1->Test)));
          Note = "turn parent of a descendant into a desc-or-self filter";
        } else {
          continue;
        }
        Out.push_back({RB(spliceChain(Steps, I, 2, Repl)),
                       RewriteCheck::Equivalence, nullptr, Note});
      }
    });
  }
};

} // namespace

const std::vector<std::unique_ptr<RewriteRule>> &xsa::rewriteRules() {
  static const std::vector<std::unique_ptr<RewriteRule>> Rules = [] {
    std::vector<std::unique_ptr<RewriteRule>> R;
    R.push_back(std::make_unique<FuseStepsRule>());
    R.push_back(std::make_unique<DropSelfRule>());
    R.push_back(std::make_unique<CollapseIterateRule>());
    R.push_back(std::make_unique<PruneQualifierRule>());
    R.push_back(std::make_unique<DeadBranchRule>());
    R.push_back(std::make_unique<ReverseAxisRule>());
    return R;
  }();
  return Rules;
}
