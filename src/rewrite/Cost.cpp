//===- Cost.cpp - XPath evaluation cost model ------------------------------===//

#include "rewrite/Cost.h"

using namespace xsa;

bool xsa::isReverseAxis(Axis A) {
  switch (A) {
  case Axis::Parent:
  case Axis::Ancestor:
  case Axis::AncOrSelf:
  case Axis::PrecSibling:
  case Axis::Preceding:
    return true;
  case Axis::Self:
  case Axis::Child:
  case Axis::Descendant:
  case Axis::DescOrSelf:
  case Axis::FollSibling:
  case Axis::Following:
    return false;
  }
  return false;
}

double CostModel::cost(const PathRef &P, double Scale) const {
  switch (P->K) {
  case XPathPath::Compose:
    return cost(P->P1, Scale) + cost(P->P2, Scale);
  case XPathPath::Qualified:
    return cost(P->P1, Scale) + cost(P->Q, Scale * QualifierDiscount);
  case XPathPath::Step:
    return Scale * (StepCost + (isReverseAxis(P->A) ? ReverseAxisPenalty : 0));
  case XPathPath::Alt:
    return cost(P->P1, Scale) + cost(P->P2, Scale);
  case XPathPath::Iterate:
    return IteratePenalty * cost(P->P1, Scale);
  }
  return 0;
}

double CostModel::cost(const QualifRef &Q, double Scale) const {
  switch (Q->K) {
  case XPathQualif::And:
  case XPathQualif::Or:
    return cost(Q->Q1, Scale) + cost(Q->Q2, Scale);
  case XPathQualif::Not:
    return cost(Q->Q1, Scale);
  case XPathQualif::Path:
    return cost(Q->P, Scale);
  }
  return 0;
}

double CostModel::cost(const ExprRef &E) const {
  switch (E->K) {
  case XPathExpr::Absolute:
  case XPathExpr::Relative:
    return cost(E->P);
  case XPathExpr::Union:
  case XPathExpr::Intersect:
    return cost(E->E1) + cost(E->E2);
  }
  return 0;
}
