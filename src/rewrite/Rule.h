//===- Rule.h - Rewrite rule interface ---------------------------*- C++ -*-===//
//
// Part of the xsa project (PLDI 2007 XPath/type analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The rule interface of the solver-verified XPath rewrite engine. A
/// RewriteRule pattern-matches the AST and proposes whole-expression
/// *candidates*; it proves nothing. Soundness lives entirely in the
/// driver (Rewriter.h), which accepts a candidate only after the solver
/// certifies it under the type in force — so rules are free to be
/// heuristic, even speculative: an unsound candidate costs one refuted
/// proof obligation, never a wrong answer (§1 of the paper frames query
/// reformulation exactly this way).
///
/// Candidates must stay in *parser shape* — the sublanguage of ASTs that
/// parseXPath produces (left-nested unions and compositions, qualifiers
/// only on steps and parenthesized groups) — so that the optimized query
/// can be emitted as text with toString and re-read to an astEquals-equal
/// AST. The driver enforces this with a parse-back check and skips any
/// candidate that fails it.
///
//===----------------------------------------------------------------------===//

#ifndef XSA_REWRITE_RULE_H
#define XSA_REWRITE_RULE_H

#include "xpath/Ast.h"

#include <memory>
#include <string>
#include <vector>

namespace xsa {

/// How the driver certifies a candidate before accepting it.
enum class RewriteCheck : uint8_t {
  /// Analyzer::equivalence of the whole expression, original vs
  /// candidate, under the session's type context.
  Equivalence,
  /// Analyzer::emptiness of CheckExpr — a dropped top-level union arm.
  /// Sound only when CheckExpr is evaluated in the same context as the
  /// whole expression (the dead-branch rule restricts itself to
  /// top-level arms for exactly this reason).
  ArmEmptiness,
};

const char *rewriteCheckName(RewriteCheck C);

struct RewriteCandidate {
  /// The full rewritten expression (not a subterm).
  ExprRef Replacement;
  RewriteCheck Check = RewriteCheck::Equivalence;
  /// ArmEmptiness only: the dropped arm whose emptiness certifies the
  /// rewrite.
  ExprRef CheckExpr;
  /// Human-readable description of the rewrite site, for the proof
  /// trace ("fused desc-or-self::*/child::b", "dropped arm …").
  std::string Note;
};

class RewriteRule {
public:
  virtual ~RewriteRule() = default;
  virtual const char *name() const = 0;
  /// Appends whole-expression rewrite candidates for \p E to \p Out.
  /// Generation must be deterministic (the driver's candidate order is
  /// part of the engine's reproducibility guarantee).
  virtual void candidates(const ExprRef &E,
                          std::vector<RewriteCandidate> &Out) const = 0;
};

/// The shipped rule registry, constructed once. Order is the tie-break
/// applied after the cost model ranks candidates.
const std::vector<std::unique_ptr<RewriteRule>> &rewriteRules();

} // namespace xsa

#endif // XSA_REWRITE_RULE_H
