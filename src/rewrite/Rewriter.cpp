//===- Rewriter.cpp - Solver-verified XPath rewrite driver -----------------===//

#include "rewrite/Rewriter.h"

#include "support/KeyEncoding.h"
#include "xpath/Parser.h"

#include <algorithm>
#include <unordered_set>

using namespace xsa;

namespace {

struct RankedCandidate {
  double Cost = 0;
  size_t RuleIdx = 0;
  std::string Text;
  RewriteCandidate C;
};

} // namespace

RewriteResult Rewriter::optimize(const ExprRef &E, Formula Chi) {
  RewriteResult R;
  R.Original = E;
  R.Optimized = E;
  R.OriginalCost = Opts.Cost.cost(E);
  R.OptimizedCost = R.OriginalCost;

  const auto &Rules = rewriteRules();
  // (from, to) pairs already discharged, so a refuted obligation is
  // never retried in a later pass (the session cache would answer it,
  // but it would still spam the trace). Only reachable when equal-cost
  // candidates are admitted: under RequireCostImprovement every accepted
  // rewrite strictly lowers the cost, so no From text ever recurs — the
  // bookkeeping is skipped entirely there.
  const bool TrackTried = !Opts.RequireCostImprovement;
  std::unordered_set<std::string> Tried;
  auto triedKey = [](const std::string &From, const std::string &To) {
    return lengthPrefixedKey(From, To);
  };

  for (size_t Pass = 0; Pass < Opts.MaxPasses; ++Pass) {
    const std::string CurText = toString(R.Optimized);
    std::vector<RankedCandidate> Ranked;
    for (size_t RI = 0; RI < Rules.size(); ++RI) {
      std::vector<RewriteCandidate> Cands;
      Rules[RI]->candidates(R.Optimized, Cands);
      for (RewriteCandidate &C : Cands) {
        if (!C.Replacement)
          continue;
        double Cost = Opts.Cost.cost(C.Replacement);
        // Never consider costlier candidates (they could oscillate);
        // equal cost is admitted only when improvement is not required.
        if (Opts.RequireCostImprovement ? Cost >= R.OptimizedCost - 1e-9
                                        : Cost > R.OptimizedCost + 1e-9)
          continue;
        std::string Text = toString(C.Replacement);
        if (Text == CurText || (TrackTried && Tried.count(triedKey(CurText, Text))))
          continue;
        Ranked.push_back({Cost, RI, std::move(Text), std::move(C)});
      }
    }
    std::stable_sort(Ranked.begin(), Ranked.end(),
                     [](const RankedCandidate &A, const RankedCandidate &B) {
                       if (A.Cost != B.Cost)
                         return A.Cost < B.Cost;
                       if (A.RuleIdx != B.RuleIdx)
                         return A.RuleIdx < B.RuleIdx;
                       return A.Text < B.Text;
                     });

    bool AcceptedOne = false;
    std::unordered_set<std::string> SeenText;
    for (RankedCandidate &K : Ranked) {
      if (R.CheckedCandidates >= Opts.MaxChecks)
        break;
      if (!SeenText.insert(K.Text).second)
        continue; // two rules proposed the same text; one proof suffices
      // Parser-shape guard, deferred to here so only candidates actually
      // submitted to the solver pay the print/re-parse: the optimized
      // query is handed around as text, so a candidate must re-read to
      // the same AST. Rules keep this invariant by construction; a
      // violation is skipped rather than risked.
      std::string Err;
      ExprRef Back = parseXPath(K.Text, Err);
      if (!Back || !astEquals(Back, K.C.Replacement))
        continue;
      if (TrackTried)
        Tried.insert(triedKey(CurText, K.Text));
      ++R.CheckedCandidates;

      AnalysisResult AR =
          K.C.Check == RewriteCheck::ArmEmptiness
              ? An.emptiness(K.C.CheckExpr, Chi)
              : An.equivalence(R.Optimized, Chi, K.C.Replacement, Chi);

      RewriteStep Step;
      Step.Rule = Rules[K.RuleIdx]->name();
      Step.From = CurText;
      Step.To = K.Text;
      Step.Note = K.C.Note;
      Step.Check = rewriteCheckName(K.C.Check);
      Step.Accepted = AR.Holds;
      Step.FromCache = AR.FromCache;
      Step.TimeMs = AR.Stats.TimeMs;
      R.Trace.push_back(std::move(Step));

      if (AR.Holds) {
        R.Optimized = K.C.Replacement;
        R.OptimizedCost = K.Cost;
        ++R.AcceptedSteps;
        AcceptedOne = true;
        break; // regenerate candidates against the new query
      }
    }
    if (!AcceptedOne || R.CheckedCandidates >= Opts.MaxChecks)
      break;
  }
  return R;
}
