//===- Problems.cpp - XPath decision problems (§8) -------------------------===//

#include "analysis/Problems.h"

#include "xpath/Compile.h"
#include "xpath/Eval.h"

using namespace xsa;

namespace {

/// Does the expression navigate from the root anywhere in its
/// union/intersection structure?
bool hasAbsoluteComponent(const ExprRef &E) {
  switch (E->K) {
  case XPathExpr::Absolute:
    return true;
  case XPathExpr::Relative:
    return false;
  case XPathExpr::Union:
  case XPathExpr::Intersect:
    return hasAbsoluteComponent(E->E1) || hasAbsoluteComponent(E->E2);
  }
  return false;
}

} // namespace

Formula Analyzer::root() {
  if (!RootF)
    RootF = rootFormula(FF);
  return RootF;
}

/// §5.2: when a type constrains an absolute query, anchor the type's
/// root at the document root so the query cannot navigate above it.
Formula Analyzer::contextFor(const ExprRef &E, Formula Chi) {
  if (Chi == FF.trueF() || !hasAbsoluteComponent(E))
    return Chi;
  return FF.conj(Chi, root());
}

Formula Analyzer::compiled(const ExprRef &E, Formula Chi) {
  CompileKey K{E, Chi};
  auto It = CompileMemo.find(K);
  if (It != CompileMemo.end())
    return It->second;
  Formula F = compileXPath(FF, E, contextFor(E, Chi));
  CompileMemo.emplace(std::move(K), F);
  return F;
}

SolverResult Analyzer::satisfiable(Formula Psi) {
  BddSolver Solver(FF, Opts);
  return Solver.solve(Psi);
}

AnalysisResult Analyzer::fromSolver(SolverResult R, bool HoldsWhenUnsat,
                                    const ExprRef *Selected,
                                    const ExprRef *Excluded) {
  AnalysisResult A;
  A.Stats = R.Stats;
  A.FromCache = R.FromCache;
  A.Holds = HoldsWhenUnsat ? !R.Satisfiable : R.Satisfiable;
  if (R.Model) {
    A.Tree = std::move(R.Model);
    // Annotate a target node by re-running the concrete semantics.
    if (Selected && A.Tree->markedNode() != InvalidNodeId) {
      NodeSet Sel = evalXPath(*A.Tree, *Selected);
      if (Excluded) {
        for (NodeId N : evalXPath(*A.Tree, *Excluded))
          Sel.erase(N);
      }
      if (!Sel.empty())
        A.Target = *Sel.begin();
    }
  }
  return A;
}

AnalysisResult Analyzer::emptiness(const ExprRef &E, Formula Chi) {
  Formula Psi = compiled(E, Chi);
  return fromSolver(satisfiable(Psi), /*HoldsWhenUnsat=*/true, &E, nullptr);
}

AnalysisResult Analyzer::containment(const ExprRef &E1, Formula Chi1,
                                     const ExprRef &E2, Formula Chi2) {
  Formula Psi =
      FF.conj(compiled(E1, Chi1), FF.negate(compiled(E2, Chi2)));
  return fromSolver(satisfiable(Psi), /*HoldsWhenUnsat=*/true, &E1, &E2);
}

AnalysisResult Analyzer::overlap(const ExprRef &E1, Formula Chi1,
                                 const ExprRef &E2, Formula Chi2) {
  Formula Psi = FF.conj(compiled(E1, Chi1), compiled(E2, Chi2));
  return fromSolver(satisfiable(Psi), /*HoldsWhenUnsat=*/false, &E1, nullptr);
}

AnalysisResult Analyzer::coverage(const ExprRef &E, Formula Chi,
                                  const std::vector<ExprRef> &Others,
                                  const std::vector<Formula> &OtherChis) {
  Formula Psi = compiled(E, Chi);
  for (size_t I = 0; I < Others.size(); ++I) {
    Formula ChiI = I < OtherChis.size() ? OtherChis[I] : FF.trueF();
    Psi = FF.conj(Psi, FF.negate(compiled(Others[I], ChiI)));
  }
  return fromSolver(satisfiable(Psi), /*HoldsWhenUnsat=*/true, &E, nullptr);
}

AnalysisResult Analyzer::equivalence(const ExprRef &E1, Formula Chi1,
                                     const ExprRef &E2, Formula Chi2) {
  AnalysisResult Forward = containment(E1, Chi1, E2, Chi2);
  if (!Forward.Holds)
    return Forward;
  AnalysisResult Backward = containment(E2, Chi2, E1, Chi1);
  Backward.Stats.TimeMs += Forward.Stats.TimeMs;
  Backward.Stats.Iterations += Forward.Stats.Iterations;
  Backward.FromCache = Backward.FromCache && Forward.FromCache;
  return Backward;
}

AnalysisResult Analyzer::staticTypeCheck(const ExprRef &E, Formula ChiIn,
                                         Formula OutType) {
  Formula Psi = FF.conj(compiled(E, ChiIn), FF.negate(OutType));
  return fromSolver(satisfiable(Psi), /*HoldsWhenUnsat=*/true, &E, nullptr);
}
