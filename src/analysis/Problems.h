//===- Problems.h - XPath decision problems (§8) -----------------*- C++ -*-===//
//
// Part of the xsa project (PLDI 2007 XPath/type analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The decision problems of §8, each reduced to (un)satisfiability of an
/// Lµ formula built from the XPath and type translations:
///
///   containment      E→⟦e1⟧⟦T1⟧ ∧ ¬E→⟦e2⟧⟦T2⟧ unsatisfiable
///   emptiness        E→⟦e⟧⟦T⟧ unsatisfiable
///   overlap          E→⟦e1⟧⟦T1⟧ ∧ E→⟦e2⟧⟦T2⟧ satisfiable
///   coverage         E→⟦e⟧⟦T⟧ ∧ ∧ᵢ ¬E→⟦eᵢ⟧⟦Tᵢ⟧ unsatisfiable
///   type check       E→⟦e⟧⟦T1⟧ ∧ ¬⟦T2⟧ unsatisfiable
///   equivalence      containment both ways
///
/// Each result carries the counterexample/witness tree extracted by the
/// solver (§7.2), annotated with the start mark, and — when an XPath
/// expression is involved — a target node computed by re-evaluating the
/// expression on the tree with the concrete semantics of Figs. 5-6.
///
//===----------------------------------------------------------------------===//

#ifndef XSA_ANALYSIS_PROBLEMS_H
#define XSA_ANALYSIS_PROBLEMS_H

#include "solver/BddSolver.h"
#include "xpath/Ast.h"
#include "xtype/Dtd.h"

#include <optional>
#include <string>
#include <vector>

namespace xsa {

struct AnalysisResult {
  /// Did the queried property hold (containment holds / expression is
  /// empty / expressions overlap / ...)?
  bool Holds = false;
  /// Witness or counterexample tree when the underlying formula was
  /// satisfiable; carries the start mark.
  std::optional<Document> Tree;
  /// A node of Tree relevant to the property (e.g. selected by e1 and
  /// not by e2 for containment), or InvalidNodeId.
  NodeId Target = InvalidNodeId;
  SolverStats Stats;
  /// True when the underlying satisfiability query (both directions, for
  /// equivalence) was served from a ResultCache (see SolverOptions).
  bool FromCache = false;
};

/// Front end to the solver for the decision problems of §8. A `Chi`
/// parameter is the Lµ context/type constraint for a query — FF.trueF()
/// for none, or a compiled type formula (compileDtd / compileType).
class Analyzer {
public:
  explicit Analyzer(FormulaFactory &FF, SolverOptions Opts = {})
      : FF(FF), Opts(Opts) {
    // XPath decision problems are about XML documents, which are
    // single-rooted (see SolverOptions::RequireSingleRoot).
    this->Opts.RequireSingleRoot = true;
  }

  /// Does \p E select no node whatsoever (under \p Chi)?
  AnalysisResult emptiness(const ExprRef &E, Formula Chi);

  /// Is every node selected by \p E1 (under \p Chi1) also selected by
  /// \p E2 (under \p Chi2)?
  AnalysisResult containment(const ExprRef &E1, Formula Chi1,
                             const ExprRef &E2, Formula Chi2);

  /// Do \p E1 and \p E2 select at least one common node?
  AnalysisResult overlap(const ExprRef &E1, Formula Chi1, const ExprRef &E2,
                         Formula Chi2);

  /// Is every node selected by \p E contained in the union of the
  /// results of \p Others?
  AnalysisResult coverage(const ExprRef &E, Formula Chi,
                          const std::vector<ExprRef> &Others,
                          const std::vector<Formula> &OtherChis);

  /// Are \p E1 and \p E2 equivalent (select the same nodes)?
  AnalysisResult equivalence(const ExprRef &E1, Formula Chi1,
                             const ExprRef &E2, Formula Chi2);

  /// Is every node selected by \p E under input type \p ChiIn the root
  /// of a tree of output type \p OutType (static type checking of an
  /// annotated query)?
  AnalysisResult staticTypeCheck(const ExprRef &E, Formula ChiIn,
                                 Formula OutType);

  /// Raw satisfiability of an arbitrary formula (with model).
  SolverResult satisfiable(Formula Psi);

private:
  FormulaFactory &FF;
  SolverOptions Opts;
  /// rootFormula() mints a fresh µ-variable per call; cache one copy so
  /// repeated queries build pointer-identical contexts (which keeps the
  /// compile memo below and the factory arena from growing per call).
  Formula RootF = nullptr;
  /// E→⟦e⟧χ memo keyed on (expression, original χ). Holding the ExprRef
  /// pins the AST, so the pointer key cannot be reused while cached.
  struct CompileKey {
    ExprRef E;
    Formula Chi;
    bool operator==(const CompileKey &O) const {
      return E == O.E && Chi == O.Chi;
    }
  };
  struct CompileKeyHash {
    size_t operator()(const CompileKey &K) const {
      return std::hash<const void *>()(K.E.get()) * 31 ^
             std::hash<const void *>()(K.Chi);
    }
  };
  std::unordered_map<CompileKey, Formula, CompileKeyHash> CompileMemo;

  Formula root();
  Formula contextFor(const ExprRef &E, Formula Chi);
  /// Memoized compileXPath(FF, E, contextFor(E, Chi)).
  Formula compiled(const ExprRef &E, Formula Chi);

  AnalysisResult fromSolver(SolverResult R, bool HoldsWhenUnsat,
                            const ExprRef *Selected, const ExprRef *Excluded);
};

} // namespace xsa

#endif // XSA_ANALYSIS_PROBLEMS_H
