//===- Xml.cpp - Minimal XML parsing and serialization ---------------------===//

#include "tree/Xml.h"

#include <cctype>
#include <sstream>

using namespace xsa;

namespace {

/// A tiny recursive-descent XML reader sufficient for structure-only
/// documents (elements, optionally attributed, self-closing or not).
class XmlReader {
public:
  XmlReader(std::string_view Input, Document &Doc, std::string &Error)
      : In(Input), Doc(Doc), Error(Error) {}

  bool run() {
    skipMisc();
    while (Pos < In.size() && In[Pos] == '<') {
      if (!parseElement(InvalidNodeId))
        return false;
      skipMisc();
    }
    skipMisc();
    if (Pos != In.size())
      return fail("trailing content after document element");
    if (Doc.empty())
      return fail("no document element found");
    return true;
  }

private:
  bool fail(const std::string &Msg) {
    Error = "xml parse error at offset " + std::to_string(Pos) + ": " + Msg;
    return false;
  }

  void skipWs() {
    while (Pos < In.size() && std::isspace(static_cast<unsigned char>(In[Pos])))
      ++Pos;
  }

  bool startsWith(std::string_view S) const {
    return In.substr(Pos, S.size()) == S;
  }

  /// Skips whitespace, text content, comments, PIs and doctype.
  void skipMisc() {
    for (;;) {
      // Text content (ignored: the model is structure-only).
      while (Pos < In.size() && In[Pos] != '<')
        ++Pos;
      if (startsWith("<!--")) {
        size_t End = In.find("-->", Pos + 4);
        Pos = End == std::string_view::npos ? In.size() : End + 3;
        continue;
      }
      if (startsWith("<?") || startsWith("<!")) {
        size_t End = In.find('>', Pos);
        Pos = End == std::string_view::npos ? In.size() : End + 1;
        continue;
      }
      return;
    }
  }

  static bool isNameChar(char C) {
    return std::isalnum(static_cast<unsigned char>(C)) || C == '-' ||
           C == '_' || C == '.' || C == ':';
  }

  std::string parseName() {
    size_t Start = Pos;
    while (Pos < In.size() && isNameChar(In[Pos]))
      ++Pos;
    return std::string(In.substr(Start, Pos - Start));
  }

  /// Parses attributes up to '>' or '/>'. Returns false on malformed
  /// input; sets \p StartMark when xsa:start="true" is present.
  bool parseAttributes(bool &StartMark, bool &SelfClosing) {
    StartMark = false;
    SelfClosing = false;
    for (;;) {
      skipWs();
      if (Pos >= In.size())
        return fail("unterminated start tag");
      if (In[Pos] == '>') {
        ++Pos;
        return true;
      }
      if (startsWith("/>")) {
        Pos += 2;
        SelfClosing = true;
        return true;
      }
      std::string AttrName = parseName();
      if (AttrName.empty())
        return fail("expected attribute name");
      skipWs();
      if (Pos >= In.size() || In[Pos] != '=')
        return fail("expected '=' in attribute");
      ++Pos;
      skipWs();
      if (Pos >= In.size() || (In[Pos] != '"' && In[Pos] != '\''))
        return fail("expected quoted attribute value");
      char Quote = In[Pos++];
      size_t Start = Pos;
      while (Pos < In.size() && In[Pos] != Quote)
        ++Pos;
      if (Pos >= In.size())
        return fail("unterminated attribute value");
      std::string Value(In.substr(Start, Pos - Start));
      ++Pos;
      if (AttrName == "xsa:start" && Value == "true")
        StartMark = true;
    }
  }

  bool parseElement(NodeId Parent) {
    if (Pos >= In.size() || In[Pos] != '<')
      return fail("expected '<'");
    ++Pos;
    std::string Name = parseName();
    if (Name.empty())
      return fail("expected element name");
    bool StartMark, SelfClosing;
    if (!parseAttributes(StartMark, SelfClosing))
      return false;
    NodeId N = Doc.addNode(Name, Parent);
    if (StartMark) {
      if (Doc.markedNode() != InvalidNodeId)
        return fail("multiple xsa:start marks");
      Doc.setMark(N);
    }
    if (SelfClosing)
      return true;
    // Children until the matching end tag.
    for (;;) {
      skipMisc();
      if (Pos >= In.size())
        return fail("unterminated element <" + Name + ">");
      if (startsWith("</")) {
        Pos += 2;
        std::string End = parseName();
        skipWs();
        if (Pos >= In.size() || In[Pos] != '>')
          return fail("malformed end tag");
        ++Pos;
        if (End != Name)
          return fail("mismatched end tag </" + End + "> for <" + Name + ">");
        return true;
      }
      if (!parseElement(N))
        return false;
    }
  }

  std::string_view In;
  size_t Pos = 0;
  Document &Doc;
  std::string &Error;
};

void printNode(const Document &Doc, NodeId N, NodeId Target, int Indent,
               std::ostringstream &OS) {
  for (int I = 0; I < Indent; ++I)
    OS << "  ";
  OS << '<' << Doc.labelName(N);
  if (Doc.isMarked(N))
    OS << " xsa:start=\"true\"";
  if (N == Target)
    OS << " xsa:target=\"true\"";
  if (Doc.firstChild(N) == InvalidNodeId) {
    OS << "/>\n";
    return;
  }
  OS << ">\n";
  for (NodeId C = Doc.firstChild(N); C != InvalidNodeId; C = Doc.nextSibling(C))
    printNode(Doc, C, Target, Indent + 1, OS);
  for (int I = 0; I < Indent; ++I)
    OS << "  ";
  OS << "</" << Doc.labelName(N) << ">\n";
}

} // namespace

bool xsa::parseXml(std::string_view Input, Document &Doc, std::string &Error) {
  XmlReader Reader(Input, Doc, Error);
  return Reader.run();
}

std::string xsa::printXml(const Document &Doc, NodeId Target) {
  std::ostringstream OS;
  for (NodeId R : Doc.roots())
    printNode(Doc, R, Target, 0, OS);
  return OS.str();
}
