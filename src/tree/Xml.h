//===- Xml.h - Minimal XML parsing and serialization -------------*- C++ -*-===//
//
// Part of the xsa project (PLDI 2007 XPath/type analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// XML input/output for Documents. The paper's logic abstracts XML down to
/// element structure (no data values, no attributes — the fragment under
/// study excludes comparisons on them), so the parser recognizes elements,
/// skips text/comments/processing instructions/doctype, and ignores
/// attributes — except the reserved attribute `xsa:start="true"`, which
/// round-trips the start mark of counterexample trees (§7.2).
///
//===----------------------------------------------------------------------===//

#ifndef XSA_TREE_XML_H
#define XSA_TREE_XML_H

#include "tree/Document.h"

#include <string>
#include <string_view>

namespace xsa {

/// Parses \p Input into \p Doc. On error returns false and stores a
/// human-readable message in \p Error.
bool parseXml(std::string_view Input, Document &Doc, std::string &Error);

/// Serializes the document as indented XML. The marked node (if any) gets
/// the attribute xsa:start="true"; \p Target (if valid) gets
/// xsa:target="true" — this mirrors the annotated counterexamples of §7.2.
std::string printXml(const Document &Doc, NodeId Target = InvalidNodeId);

} // namespace xsa

#endif // XSA_TREE_XML_H
