//===- FocusedTree.h - Trees with focus (§3 of the paper) --------*- C++ -*-===//
//
// Part of the xsa project (PLDI 2007 XPath/type analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Focused trees: the paper's data model (§3), a zipper à la Huet over
/// finite unranked ordered labeled trees, with an optional *start mark* on
/// exactly one node (the context node where XPath evaluation begins).
///
/// A focused tree is a pair (t, c) of the subtree in focus and its context:
///
///   t  ::= σ[tl]                      tree
///   tl ::= ε | t :: tl                list of trees
///   c  ::= (tl, Top, tl)              root of the tree
///        | (tl, c[σ], tl)             context node
///
/// Navigation is in *binary style* with four modalities:
///   ⟨1⟩ first child, ⟨2⟩ next sibling,
///   ⟨1̄⟩ parent (only from a leftmost sibling), ⟨2̄⟩ previous sibling.
///
/// All structures are immutable and shared, so navigation is O(1) and a
/// focused tree value can be freely copied.
///
//===----------------------------------------------------------------------===//

#ifndef XSA_TREE_FOCUSEDTREE_H
#define XSA_TREE_FOCUSEDTREE_H

#include "support/StringInterner.h"

#include <memory>
#include <optional>
#include <vector>

namespace xsa {

struct Tree;
struct TreeList;
struct Context;

using TreeRef = std::shared_ptr<const Tree>;
using TreeListRef = std::shared_ptr<const TreeList>; // nullptr = ε
using ContextRef = std::shared_ptr<const Context>;

/// σ◦[tl]: a node label, an optional start mark, and the list of children.
struct Tree {
  Symbol Label;
  bool Marked;
  TreeListRef Children;

  Tree(Symbol Label, bool Marked, TreeListRef Children)
      : Label(Label), Marked(Marked), Children(std::move(Children)) {}
};

/// A cons cell of a list of trees (ε is the null pointer).
struct TreeList {
  TreeRef Head;
  TreeListRef Tail;

  TreeList(TreeRef Head, TreeListRef Tail)
      : Head(std::move(Head)), Tail(std::move(Tail)) {}
};

/// Builds a cons cell.
inline TreeListRef cons(TreeRef Head, TreeListRef Tail) {
  return std::make_shared<const TreeList>(std::move(Head), std::move(Tail));
}

/// Builds a tree node.
inline TreeRef makeTree(Symbol Label, bool Marked, TreeListRef Children) {
  return std::make_shared<const Tree>(Label, Marked, std::move(Children));
}

/// (tl, Top, tl) or (tl, c[σ◦], tl): the left siblings in reverse order,
/// the enclosing context (null for Top), and the right siblings.
struct Context {
  TreeListRef Left;
  ContextRef Parent;     ///< null when this is the Top context
  Symbol ParentLabel;    ///< meaningful only when Parent context exists
  bool ParentMarked;     ///< start mark on the enclosing element
  TreeListRef Right;

  bool isTop() const { return !HasParent; }
  bool HasParent = false;
};

/// Builds the Top context (tl_left, Top, tl_right).
ContextRef makeTopContext(TreeListRef Left, TreeListRef Right);

/// Builds a context node (tl_left, c[σ◦], tl_right).
ContextRef makeContext(TreeListRef Left, ContextRef Parent, Symbol ParentLabel,
                       bool ParentMarked, TreeListRef Right);

/// A focused tree f = (t, c). Value type; copy is O(1).
class FocusedTree {
public:
  FocusedTree(TreeRef T, ContextRef C) : T(std::move(T)), C(std::move(C)) {}

  /// Convenience: focuses a whole tree at the root with an empty top
  /// context (ε, Top, ε).
  static FocusedTree atRoot(TreeRef T);

  /// nm(f): the label of the node in focus.
  Symbol name() const { return T->Label; }

  /// Whether the node in focus carries the start mark.
  bool marked() const { return T->Marked; }

  const TreeRef &tree() const { return T; }
  const ContextRef &context() const { return C; }

  /// f⟨1⟩: focus on the first child.
  std::optional<FocusedTree> down1() const;
  /// f⟨2⟩: focus on the next sibling.
  std::optional<FocusedTree> down2() const;
  /// f⟨1̄⟩: focus on the parent; defined only from a leftmost sibling.
  std::optional<FocusedTree> up1() const;
  /// f⟨2̄⟩: focus on the previous sibling.
  std::optional<FocusedTree> up2() const;

  /// Follows modality \p A in {0:⟨1⟩, 1:⟨2⟩, 2:⟨1̄⟩, 3:⟨2̄⟩}.
  std::optional<FocusedTree> follow(int A) const;

  /// Structural equality of the whole focused tree (subtree and context).
  bool operator==(const FocusedTree &O) const;
  bool operator!=(const FocusedTree &O) const { return !(*this == O); }

private:
  TreeRef T;
  ContextRef C;
};

/// Structural equality helpers (deep comparison).
bool treeEquals(const TreeRef &A, const TreeRef &B);
bool treeListEquals(const TreeListRef &A, const TreeListRef &B);
bool contextEquals(const ContextRef &A, const ContextRef &B);

/// Number of nodes in a tree / list of trees.
size_t treeSize(const TreeRef &T);
size_t treeListSize(const TreeListRef &L);

} // namespace xsa

#endif // XSA_TREE_FOCUSEDTREE_H
