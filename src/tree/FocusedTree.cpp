//===- FocusedTree.cpp - Zipper navigation (§3) ---------------------------===//

#include "tree/FocusedTree.h"

using namespace xsa;

ContextRef xsa::makeTopContext(TreeListRef Left, TreeListRef Right) {
  auto C = std::make_shared<Context>();
  C->Left = std::move(Left);
  C->Right = std::move(Right);
  C->HasParent = false;
  C->ParentLabel = 0;
  C->ParentMarked = false;
  return C;
}

ContextRef xsa::makeContext(TreeListRef Left, ContextRef Parent,
                            Symbol ParentLabel, bool ParentMarked,
                            TreeListRef Right) {
  auto C = std::make_shared<Context>();
  C->Left = std::move(Left);
  C->Parent = std::move(Parent);
  C->ParentLabel = ParentLabel;
  C->ParentMarked = ParentMarked;
  C->Right = std::move(Right);
  C->HasParent = true;
  return C;
}

FocusedTree FocusedTree::atRoot(TreeRef T) {
  return FocusedTree(std::move(T), makeTopContext(nullptr, nullptr));
}

// (σ◦[t :: tl], c) ⟨1⟩ = (t, (ε, c[σ◦], tl))
std::optional<FocusedTree> FocusedTree::down1() const {
  if (!T->Children)
    return std::nullopt;
  return FocusedTree(T->Children->Head,
                     makeContext(nullptr, C, T->Label, T->Marked,
                                 T->Children->Tail));
}

// (t, (tll, c[σ◦], t′ :: tlr)) ⟨2⟩ = (t′, (t :: tll, c[σ◦], tlr))
std::optional<FocusedTree> FocusedTree::down2() const {
  if (!C->Right)
    return std::nullopt;
  ContextRef NewC;
  if (C->isTop())
    NewC = makeTopContext(cons(T, C->Left), C->Right->Tail);
  else
    NewC = makeContext(cons(T, C->Left), C->Parent, C->ParentLabel,
                       C->ParentMarked, C->Right->Tail);
  return FocusedTree(C->Right->Head, NewC);
}

// (t, (ε, c[σ◦], tl)) ⟨1̄⟩ = (σ◦[t :: tl], c)
std::optional<FocusedTree> FocusedTree::up1() const {
  if (C->Left || C->isTop())
    return std::nullopt;
  TreeRef Parent =
      makeTree(C->ParentLabel, C->ParentMarked, cons(T, C->Right));
  return FocusedTree(Parent, C->Parent);
}

// (t′, (t :: tll, c[σ◦], tlr)) ⟨2̄⟩ = (t, (tll, c[σ◦], t′ :: tlr))
std::optional<FocusedTree> FocusedTree::up2() const {
  if (!C->Left)
    return std::nullopt;
  ContextRef NewC;
  if (C->isTop())
    NewC = makeTopContext(C->Left->Tail, cons(T, C->Right));
  else
    NewC = makeContext(C->Left->Tail, C->Parent, C->ParentLabel,
                       C->ParentMarked, cons(T, C->Right));
  return FocusedTree(C->Left->Head, NewC);
}

std::optional<FocusedTree> FocusedTree::follow(int A) const {
  switch (A) {
  case 0:
    return down1();
  case 1:
    return down2();
  case 2:
    return up1();
  case 3:
    return up2();
  }
  return std::nullopt;
}

bool xsa::treeEquals(const TreeRef &A, const TreeRef &B) {
  if (A == B)
    return true;
  if (!A || !B)
    return false;
  return A->Label == B->Label && A->Marked == B->Marked &&
         treeListEquals(A->Children, B->Children);
}

bool xsa::treeListEquals(const TreeListRef &A, const TreeListRef &B) {
  if (A == B)
    return true;
  if (!A || !B)
    return false;
  return treeEquals(A->Head, B->Head) && treeListEquals(A->Tail, B->Tail);
}

bool xsa::contextEquals(const ContextRef &A, const ContextRef &B) {
  if (A == B)
    return true;
  if (!A || !B)
    return false;
  if (A->isTop() != B->isTop())
    return false;
  if (!treeListEquals(A->Left, B->Left) || !treeListEquals(A->Right, B->Right))
    return false;
  if (A->isTop())
    return true;
  return A->ParentLabel == B->ParentLabel &&
         A->ParentMarked == B->ParentMarked &&
         contextEquals(A->Parent, B->Parent);
}

bool FocusedTree::operator==(const FocusedTree &O) const {
  return treeEquals(T, O.T) && contextEquals(C, O.C);
}

size_t xsa::treeSize(const TreeRef &T) {
  return T ? 1 + treeListSize(T->Children) : 0;
}

size_t xsa::treeListSize(const TreeListRef &L) {
  size_t N = 0;
  for (const TreeList *P = L.get(); P; P = P->Tail.get())
    N += treeSize(P->Head);
  return N;
}
