//===- Document.cpp - Flat tree arena -------------------------------------===//

#include "tree/Document.h"

#include <cassert>

using namespace xsa;

NodeId Document::addNode(Symbol Label, NodeId Parent) {
  NodeId N = static_cast<NodeId>(Nodes.size());
  DocNode Node;
  Node.Label = Label;
  Node.Parent = Parent;
  if (Parent != InvalidNodeId) {
    DocNode &P = Nodes[Parent];
    if (P.FirstChild == InvalidNodeId) {
      P.FirstChild = N;
    } else {
      Nodes[P.LastChild].NextSibling = N;
      Node.PrevSibling = P.LastChild;
    }
    P.LastChild = N;
  } else {
    // Top-level root: link after the last existing root.
    NodeId LastRoot = InvalidNodeId;
    for (NodeId I = static_cast<NodeId>(Nodes.size()) - 1; I >= 0; --I) {
      if (Nodes[I].Parent == InvalidNodeId) {
        LastRoot = I;
        break;
      }
    }
    if (LastRoot != InvalidNodeId) {
      // Find the final sibling in the top-level chain.
      while (Nodes[LastRoot].NextSibling != InvalidNodeId)
        LastRoot = Nodes[LastRoot].NextSibling;
      Nodes[LastRoot].NextSibling = N;
      Node.PrevSibling = LastRoot;
    }
  }
  Nodes.push_back(Node);
  return N;
}

std::vector<NodeId> Document::roots() const {
  std::vector<NodeId> R;
  for (NodeId N = 0; N < static_cast<NodeId>(Nodes.size()); ++N)
    if (Nodes[N].Parent == InvalidNodeId && Nodes[N].PrevSibling == InvalidNodeId) {
      // Walk the top-level sibling chain from its head.
      for (NodeId S = N; S != InvalidNodeId; S = Nodes[S].NextSibling)
        R.push_back(S);
      break;
    }
  return R;
}

NodeId Document::follow(NodeId N, int A) const {
  switch (A) {
  case 0:
    return child1(N);
  case 1:
    return child2(N);
  case 2:
    return up1(N);
  case 3:
    return up2(N);
  }
  return InvalidNodeId;
}

std::vector<NodeId> Document::allNodes() const {
  std::vector<NodeId> All(Nodes.size());
  for (size_t I = 0; I < Nodes.size(); ++I)
    All[I] = static_cast<NodeId>(I);
  return All;
}

TreeRef Document::toTree(NodeId N) const {
  // Build the children list back to front to share cons cells.
  std::vector<NodeId> Children;
  for (NodeId C = firstChild(N); C != InvalidNodeId; C = nextSibling(C))
    Children.push_back(C);
  TreeListRef List = nullptr;
  for (auto It = Children.rbegin(); It != Children.rend(); ++It)
    List = cons(toTree(*It), List);
  return makeTree(Nodes[N].Label, isMarked(N), List);
}

FocusedTree Document::focusAt(NodeId N) const {
  // Left siblings of N in reverse order, right siblings in order.
  auto SiblingLists = [&](NodeId Node, TreeListRef &Left, TreeListRef &Right) {
    Left = nullptr;
    for (NodeId S = prevSibling(Node); S != InvalidNodeId; S = prevSibling(S))
      Left = cons(toTree(S), Left);
    // Reverse: the paper stores left siblings nearest-first.
    TreeListRef Rev = nullptr;
    for (const TreeList *P = Left.get(); P; P = P->Tail.get())
      Rev = cons(P->Head, Rev);
    Left = Rev;
    Right = nullptr;
    std::vector<NodeId> Rs;
    for (NodeId S = nextSibling(Node); S != InvalidNodeId; S = nextSibling(S))
      Rs.push_back(S);
    for (auto It = Rs.rbegin(); It != Rs.rend(); ++It)
      Right = cons(toTree(*It), Right);
  };

  // Build the context chain from N upward.
  std::vector<NodeId> Ancestors; // N's ancestors, nearest first
  for (NodeId A = parent(N); A != InvalidNodeId; A = parent(A))
    Ancestors.push_back(A);

  // Start from the Top context of the outermost ancestor (or of N itself).
  NodeId Outer = Ancestors.empty() ? N : Ancestors.back();
  TreeListRef L, R;
  SiblingLists(Outer, L, R);
  ContextRef C = makeTopContext(L, R);

  // Descend: each ancestor contributes a context node.
  for (size_t I = Ancestors.size(); I-- > 0;) {
    NodeId A = Ancestors[I];
    NodeId ChildTowardN = I == 0 ? N : Ancestors[I - 1];
    TreeListRef CL, CR;
    SiblingLists(ChildTowardN, CL, CR);
    C = makeContext(CL, C, Nodes[A].Label, isMarked(A), CR);
  }
  return FocusedTree(toTree(N), C);
}

NodeId Document::addTree(const TreeRef &T, NodeId Parent) {
  NodeId N = addNode(T->Label, Parent);
  if (T->Marked) {
    assert(Mark == InvalidNodeId && "document already has a start mark");
    Mark = N;
  }
  for (const TreeList *P = T->Children.get(); P; P = P->Tail.get())
    addTree(P->Head, N);
  return N;
}

int Document::depth(NodeId N) const {
  int D = 0;
  for (NodeId A = parent(N); A != InvalidNodeId; A = parent(A))
    ++D;
  return D;
}

bool Document::operator==(const Document &O) const {
  if (Nodes.size() != O.Nodes.size() || Mark != O.Mark)
    return false;
  for (size_t I = 0; I < Nodes.size(); ++I) {
    const DocNode &A = Nodes[I], &B = O.Nodes[I];
    if (A.Label != B.Label || A.Parent != B.Parent ||
        A.FirstChild != B.FirstChild || A.NextSibling != B.NextSibling ||
        A.PrevSibling != B.PrevSibling)
      return false;
  }
  return true;
}
