//===- Document.h - Flat tree arena for evaluation --------------*- C++ -*-===//
//
// Part of the xsa project (PLDI 2007 XPath/type analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A flat, indexed representation of a *hedge* (an ordered sequence of
/// labeled trees). Focused trees (§3) are the paper's formal model; this
/// class is the workhorse used by the XPath evaluator (Figs 5-6), the
/// direct Lµ formula evaluator, the DTD validator, and counterexample
/// output. Navigation maps directly onto the paper's binary modalities:
///
///   ⟨1⟩ = firstChild, ⟨2⟩ = nextSibling,
///   ⟨1̄⟩ = parent (only when the node is a leftmost sibling or a non-first
///          top-level root, where it is undefined),
///   ⟨2̄⟩ = prevSibling.
///
/// At most one node carries the start mark, matching the set F of finite
/// focused trees with a single mark.
///
//===----------------------------------------------------------------------===//

#ifndef XSA_TREE_DOCUMENT_H
#define XSA_TREE_DOCUMENT_H

#include "support/StringInterner.h"
#include "tree/FocusedTree.h"

#include <cstdint>
#include <string>
#include <vector>

namespace xsa {

/// Index of a node within a Document; InvalidNodeId means "undefined".
using NodeId = int32_t;
constexpr NodeId InvalidNodeId = -1;

/// One element node.
struct DocNode {
  Symbol Label = 0;
  NodeId Parent = InvalidNodeId;
  NodeId FirstChild = InvalidNodeId;
  NodeId LastChild = InvalidNodeId;
  NodeId NextSibling = InvalidNodeId;
  NodeId PrevSibling = InvalidNodeId;
};

/// A hedge of element nodes with O(1) navigation in all four directions.
class Document {
public:
  /// Appends a new node labeled \p Label under \p Parent (InvalidNodeId
  /// appends a new top-level root). Returns the node id.
  NodeId addNode(Symbol Label, NodeId Parent);
  NodeId addNode(std::string_view Label, NodeId Parent) {
    return addNode(internSymbol(Label), Parent);
  }

  size_t size() const { return Nodes.size(); }
  bool empty() const { return Nodes.empty(); }

  const DocNode &node(NodeId N) const { return Nodes[N]; }
  Symbol label(NodeId N) const { return Nodes[N].Label; }
  const std::string &labelName(NodeId N) const {
    return symbolName(Nodes[N].Label);
  }

  NodeId firstRoot() const { return Nodes.empty() ? InvalidNodeId : 0; }

  /// All top-level roots in document order.
  std::vector<NodeId> roots() const;

  /// Binary-style navigation (the paper's modalities). Each returns
  /// InvalidNodeId when the move is undefined.
  NodeId child1(NodeId N) const { return Nodes[N].FirstChild; }
  NodeId child2(NodeId N) const { return Nodes[N].NextSibling; }
  NodeId up1(NodeId N) const {
    return Nodes[N].PrevSibling == InvalidNodeId ? Nodes[N].Parent
                                                 : InvalidNodeId;
  }
  NodeId up2(NodeId N) const { return Nodes[N].PrevSibling; }

  /// Follows modality \p A in {0:⟨1⟩, 1:⟨2⟩, 2:⟨1̄⟩, 3:⟨2̄⟩}.
  NodeId follow(NodeId N, int A) const;

  /// Unranked-style navigation helpers used by the XPath evaluator.
  NodeId parent(NodeId N) const { return Nodes[N].Parent; }
  NodeId firstChild(NodeId N) const { return Nodes[N].FirstChild; }
  NodeId nextSibling(NodeId N) const { return Nodes[N].NextSibling; }
  NodeId prevSibling(NodeId N) const { return Nodes[N].PrevSibling; }

  /// The start mark (InvalidNodeId if absent).
  NodeId markedNode() const { return Mark; }
  void setMark(NodeId N) { Mark = N; }
  bool isMarked(NodeId N) const { return Mark == N; }

  /// All node ids in document (pre)order.
  std::vector<NodeId> allNodes() const;

  /// Converts the subtree rooted at \p N into the shared Tree structure.
  TreeRef toTree(NodeId N) const;

  /// Builds the focused tree (t, c) whose focus is node \p N; contexts are
  /// reconstructed up to the Top.
  FocusedTree focusAt(NodeId N) const;

  /// Imports a shared Tree as a new top-level root; returns the id of the
  /// imported root. Marked nodes set the document mark.
  NodeId addTree(const TreeRef &T, NodeId Parent = InvalidNodeId);

  /// Depth of node \p N (roots have depth 0).
  int depth(NodeId N) const;

  bool operator==(const Document &O) const;

private:
  std::vector<DocNode> Nodes;
  NodeId Mark = InvalidNodeId;
};

} // namespace xsa

#endif // XSA_TREE_DOCUMENT_H
