//===- Server.cpp - Long-lived multi-tenant analysis server ----------------===//

#include "server/Server.h"

#include "obs/Log.h"
#include "obs/Metrics.h"
#include "obs/SlowQuery.h"
#include "obs/Trace.h"
#include "service/Batch.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <queue>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace xsa;

namespace xsa {
namespace detail {

/// Incremental bounded line framing over a raw fd. An overlong line is
/// consumed (never buffered past the bound) and reported Truncated.
/// Shared by the JSON-lines reader loop and the HTTP/1.1 keep-alive
/// loop (which is why it lives in xsa::detail, not a TU-local
/// namespace: serveHttpConnection's declaration names it).
struct FdLineReader {
  int Fd;
  size_t MaxBytes;
  std::string Buf;
  size_t Pos = 0;
  bool Eof = false;
  /// When >= 0: before each recv, wait at most this many milliseconds
  /// for the fd to become readable; give up (TimedOut, next() false)
  /// otherwise. The HTTP keep-alive idle timeout. -1 blocks in recv.
  int PollTimeoutMs = -1;
  bool TimedOut = false;

  /// True with one line in \p Line (newline stripped, \r kept for the
  /// caller's trimming); false at EOF/error/idle-timeout with nothing
  /// usable pending.
  bool next(std::string &Line, bool &Truncated) {
    Line.clear();
    Truncated = false;
    TimedOut = false;
    bool Discarding = false;
    while (true) {
      while (Pos < Buf.size()) {
        char C = Buf[Pos++];
        if (C == '\n') {
          if (Discarding)
            return true; // Truncated already set
          return true;
        }
        if (Discarding)
          continue;
        if (MaxBytes && Line.size() >= MaxBytes) {
          Truncated = true;
          Discarding = true;
          continue;
        }
        Line += C;
      }
      Buf.clear();
      Pos = 0;
      if (Eof)
        return !Line.empty() || Truncated;
      if (PollTimeoutMs >= 0) {
        pollfd P{Fd, POLLIN, 0};
        int R = ::poll(&P, 1, PollTimeoutMs);
        if (R < 0 && errno == EINTR)
          continue;
        if (R <= 0) {
          TimedOut = true;
          return false;
        }
      }
      char Chunk[4096];
      ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
      if (N < 0 && errno == EINTR)
        continue;
      if (N <= 0) {
        Eof = true;
        continue;
      }
      Buf.assign(Chunk, static_cast<size_t>(N));
    }
  }
};

} // namespace detail
} // namespace xsa

namespace {

/// All queue timestamps (deadlines, waits) share the tracer's timebase,
/// so the same stamp feeds the deadline check, the wait histogram and
/// the cross-thread "server.queue_wait" span.
uint64_t nowSteadyNs() { return Tracer::nowNs(); }

/// Sends all of \p Data on \p Fd, aborting when \p Alive goes false
/// (forced teardown must be able to interrupt a send to a client that
/// stopped reading, so shutdown never hangs on a full socket buffer).
/// MSG_NOSIGNAL: a peer that closed mid-write must surface as an error
/// on this thread, not kill the process with SIGPIPE; MSG_DONTWAIT so
/// a full buffer parks us in a short poll that re-checks Alive instead
/// of an unbounded blocking send. False on any failure.
bool sendAll(int Fd, const char *Data, size_t Len,
             const std::atomic<bool> &Alive) {
  while (Len > 0) {
    if (!Alive.load())
      return false;
    ssize_t N = ::send(Fd, Data, Len, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (N < 0 && errno == EINTR)
      continue;
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd P{Fd, POLLOUT, 0};
      ::poll(&P, 1, 100); // bounded: loop back to the Alive check
      continue;
    }
    if (N <= 0)
      return false;
    Data += static_cast<size_t>(N);
    Len -= static_cast<size_t>(N);
  }
  return true;
}

Counter &rejectionCounter(const char *Reason) {
  return MetricRegistry::global().counter(
      labeledMetricName("xsa_server_rejections_total", "reason", Reason),
      "Requests rejected at admission, by reason", /*Volatile=*/true);
}

Counter &deadlineMissCounter() {
  return MetricRegistry::global().counter(
      "xsa_server_deadline_misses_total",
      "Admitted requests dropped because their deadline expired in queue",
      /*Volatile=*/true);
}

Gauge &queueDepthGauge() {
  return MetricRegistry::global().gauge(
      "xsa_server_queue_depth", "Analysis requests currently queued",
      /*Volatile=*/true);
}

Histogram &queueWaitHistogram() {
  return MetricRegistry::global().histogram(
      "xsa_server_queue_wait_ms",
      "Admission-to-dispatch wait of analysis requests");
}

} // namespace

NamespaceState::NamespaceState(std::string N) : Name(std::move(N)) {
  RequestsMetric = &MetricRegistry::global().counter(
      labeledMetricName("xsa_server_requests_total", "ns", Name),
      "Analysis requests admitted, by namespace", /*Volatile=*/true);
}

//===----------------------------------------------------------------------===//
// Internal types
//===----------------------------------------------------------------------===//

/// One client connection. The reader thread owns Fd reads and seq
/// assignment; the reorder buffer is guarded by WriteMu and filled by
/// producers (reader thread for control responses, dispatcher thread
/// for analysis responses) — producers only enqueue and notify, they
/// never touch the socket. The writer thread alone sends, so a client
/// that stops reading blocks its own writer and nobody else.
struct XsolvedServer::Connection {
  int Fd = -1;
  uint64_t Id = 0;
  std::thread Reader;
  std::thread Writer;
  std::atomic<bool> Open{true};

  /// Reader-thread-only: next sequence number to assign to a line that
  /// gets a response.
  uint64_t NextSeq = 0;

  std::mutex WriteMu;
  std::condition_variable WriteCv;
  uint64_t NextDeliver = 0;                ///< guarded by WriteMu
  std::map<uint64_t, std::string> Pending; ///< guarded by WriteMu
  size_t PendingBytes = 0;                 ///< guarded by WriteMu
  /// Set by the reader at exit (with FinalSeq = its last NextSeq): no
  /// further sequence numbers will be assigned, so once NextDeliver
  /// reaches FinalSeq the writer has flushed everything and may exit.
  bool InputDone = false;   ///< guarded by WriteMu
  uint64_t FinalSeq = 0;    ///< guarded by WriteMu
  bool WriterExited = false; ///< guarded by WriteMu (teardown handshake)

  /// Per-connection protocol state: current namespace and response
  /// encoding. Written by the reader thread on a config line; the
  /// values a job uses are snapshotted into the job at admission, so
  /// the dispatcher never reads these directly.
  std::shared_ptr<NamespaceState> Ns;
  bool Stable = false;
};

/// An admitted analysis request, carrying everything the dispatcher
/// needs — including the namespace-config snapshot taken at admission,
/// so a later config change never races a queued job.
struct XsolvedServer::Job {
  std::shared_ptr<Connection> Conn;
  std::shared_ptr<NamespaceState> Ns;
  uint64_t Seq = 0;
  AnalysisRequest Req;
  int Priority = 0;
  uint64_t DeadlineNs = 0; ///< absolute steady-clock ns; 0 = none
  uint64_t EnqueueNs = 0;
  uint64_t AdmitSeq = 0;
  /// Request id: the client's "id" when it sent one, else a server-
  /// generated "c<conn>-<seq>". Mirrored into Req.TraceId so it rides
  /// the request span, the volatile "rid" response field, log lines and
  /// any slowlog capture. Generated ids never reach stable output.
  std::string Rid;
  bool Stable = false;
  bool Optimize = false;
  bool Share = false;
  FixpointStrategy Strategy = FixpointStrategy::Bfs;
  BddBackendKind Backend = BddBackendKind::Serial;
  /// The admitted request line dumped back to JSON, carried so a slowlog
  /// capture can reproduce the request verbatim (`xsolve replay`).
  std::string RequestJson;
};

struct XsolvedServer::JobQueue {
  /// Higher priority first; FIFO (admission order) within a priority.
  struct Order {
    bool operator()(const Job &A, const Job &B) const {
      if (A.Priority != B.Priority)
        return A.Priority < B.Priority;
      return A.AdmitSeq > B.AdmitSeq;
    }
  };
  std::priority_queue<Job, std::vector<Job>, Order> Q;
};

//===----------------------------------------------------------------------===//
// Lifecycle
//===----------------------------------------------------------------------===//

XsolvedServer::XsolvedServer(ServerOptions O) : Opts(std::move(O)) {
  Queue = std::make_unique<JobQueue>();
}

XsolvedServer::~XsolvedServer() {
  if (Started.load())
    drainAndWait();
}

bool XsolvedServer::start(std::string &Error) {
  if (Opts.TcpPort < 0 && Opts.UnixPath.empty()) {
    Error = "server needs a TCP port and/or a unix socket path";
    return false;
  }
  // The observability plane of the service: the slow-query recorder's
  // knobs, and the tracer's stage-capture mode so EVERY request
  // accumulates its per-stage breakdown cheaply — tail sampling decides
  // after the fact whether to keep it (see obs/SlowQuery.h).
  SlowQueryLog::global().configure(
      {Opts.SlowThresholdMs, Opts.SlowlogCapacity});
  Tracer::global().setStageCapture(true);
  StartSteadyNs = nowSteadyNs();

  Sess = std::make_unique<AnalysisSession>(Opts.Session);
  if (!Opts.CacheFile.empty()) {
    std::ifstream Probe(Opts.CacheFile);
    if (Probe) {
      Probe.close();
      std::string LoadError;
      if (!Sess->loadCache(Opts.CacheFile, LoadError)) {
        Error = "cache file: " + LoadError;
        LogEvent(LogLevel::Error, "cache.load_failed")
            .str("path", Opts.CacheFile)
            .str("error", LoadError);
        return false;
      }
      LogEvent(LogLevel::Info, "cache.loaded").str("path", Opts.CacheFile);
    }
  }
  // Build the pool (and the per-worker contexts) once, on this thread:
  // AnalysisSession::pool() is not thread-safe and every later caller
  // is the dispatcher alone.
  Sess->pool();

  if (Opts.TcpPort >= 0) {
    TcpFd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (TcpFd < 0) {
      Error = "socket: " + std::string(std::strerror(errno));
      return false;
    }
    int One = 1;
    ::setsockopt(TcpFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
    sockaddr_in Addr{};
    Addr.sin_family = AF_INET;
    Addr.sin_port = htons(static_cast<uint16_t>(Opts.TcpPort));
    if (::inet_pton(AF_INET, Opts.Host.c_str(), &Addr.sin_addr) != 1) {
      Error = "bad host address " + Opts.Host;
      closeListeners();
      return false;
    }
    if (::bind(TcpFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0 ||
        ::listen(TcpFd, 64) < 0) {
      Error = "bind/listen " + Opts.Host + ":" + std::to_string(Opts.TcpPort) +
              ": " + std::strerror(errno);
      closeListeners();
      return false;
    }
    sockaddr_in Bound{};
    socklen_t BoundLen = sizeof(Bound);
    if (::getsockname(TcpFd, reinterpret_cast<sockaddr *>(&Bound),
                      &BoundLen) == 0)
      BoundPort = ntohs(Bound.sin_port);
  }

  if (!Opts.UnixPath.empty()) {
    sockaddr_un Addr{};
    if (Opts.UnixPath.size() >= sizeof(Addr.sun_path)) {
      Error = "unix socket path too long";
      closeListeners();
      return false;
    }
    UnixFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (UnixFd < 0) {
      Error = "socket: " + std::string(std::strerror(errno));
      closeListeners();
      return false;
    }
    Addr.sun_family = AF_UNIX;
    std::strncpy(Addr.sun_path, Opts.UnixPath.c_str(),
                 sizeof(Addr.sun_path) - 1);
    ::unlink(Opts.UnixPath.c_str());
    if (::bind(UnixFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
            0 ||
        ::listen(UnixFd, 64) < 0) {
      Error = "bind/listen " + Opts.UnixPath + ": " + std::strerror(errno);
      closeListeners();
      return false;
    }
  }

  // The default namespace exists from the start so /metrics has its
  // series before the first request.
  namespaceState("default");

  Started.store(true);
  AcceptThread = std::thread([this] { acceptLoop(); });
  DispatchThread = std::thread([this] { dispatchLoop(); });
  {
    LogEvent Ev(LogLevel::Info, "server.start");
    Ev.num("jobs", static_cast<double>(Sess->jobs()))
        .num("queue_limit", static_cast<double>(Opts.QueueLimit))
        .num("slow_ms", Opts.SlowThresholdMs);
    if (TcpFd >= 0)
      Ev.num("tcp_port", BoundPort);
    if (!Opts.UnixPath.empty())
      Ev.str("unix", Opts.UnixPath);
  }
  return true;
}

void XsolvedServer::requestDrain() {
  // Stored under QueueMu so the dispatcher cannot evaluate its wait
  // predicate just before the store and sleep just after the notify —
  // admissions during drain reject without notifying, so a lost wakeup
  // here would hang the drain.
  bool WasDraining;
  {
    std::lock_guard<std::mutex> L(QueueMu);
    WasDraining = Draining.exchange(true);
  }
  QueueCv.notify_all();
  if (!WasDraining)
    LogEvent(LogLevel::Info, "drain.begin")
        .num("uptime_s", StartSteadyNs
                             ? (nowSteadyNs() - StartSteadyNs) / 1e9
                             : 0);
}

void XsolvedServer::drainAndWait() {
  requestDrain();
  wait();
}

void XsolvedServer::wait() {
  std::lock_guard<std::mutex> L(StopMu);
  if (Stopped.load() || !Started.load())
    return;
  if (AcceptThread.joinable())
    AcceptThread.join();
  if (DispatchThread.joinable())
    DispatchThread.join();
  // The dispatcher has sequenced everything admitted. Teardown is two-
  // phase so even connections the final drain sweep accepted get their
  // promised structured answers:
  //
  // Phase 1 — half-close the read sides only. recv() hands the readers
  // whatever the kernel already buffered and then EOF, so pipelined
  // requests are answered ("draining" rejections — the dispatcher is
  // gone but admit() rejects inline) instead of vanishing; Open stays
  // true so the writers keep flushing those answers. Joining happens
  // outside ConnsMu: a reader mid-admit needs that lock to exit.
  std::vector<std::shared_ptr<Connection>> Snapshot;
  {
    std::lock_guard<std::mutex> CL(ConnsMu);
    Snapshot = Conns; // complete: the accept thread has joined
  }
  for (auto &C : Snapshot)
    if (C->Fd >= 0)
      ::shutdown(C->Fd, SHUT_RD);
  for (auto &C : Snapshot)
    if (C->Reader.joinable())
      C->Reader.join();
  // Phase 2 — give each writer a bounded grace to flush to clients
  // that are slow to read, then force-close whatever remains (a client
  // that never reads must not hang the drain) and join.
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(Opts.DrainFlushTimeoutMs);
  for (auto &C : Snapshot) {
    std::unique_lock<std::mutex> WL(C->WriteMu);
    C->WriteCv.wait_until(WL, Deadline, [&] { return C->WriterExited; });
  }
  shutdownConnections();
  for (auto &C : Snapshot) {
    if (C->Writer.joinable())
      C->Writer.join();
    if (C->Fd >= 0) {
      ::close(C->Fd);
      C->Fd = -1;
    }
  }
  {
    std::lock_guard<std::mutex> CL(ConnsMu);
    Conns.clear();
  }
  if (!Opts.CacheFile.empty()) {
    std::string SaveError;
    bool Saved = Sess->saveCache(Opts.CacheFile, SaveError);
    LogEvent Ev(Saved ? LogLevel::Info : LogLevel::Error, "cache.persisted");
    Ev.str("path", Opts.CacheFile).flag("ok", Saved);
    if (!Saved)
      Ev.str("error", SaveError);
  }
  if (!Opts.UnixPath.empty())
    ::unlink(Opts.UnixPath.c_str());
  Stopped.store(true);
  LogEvent(LogLevel::Info, "drain.complete")
      .num("connections", static_cast<double>(Snapshot.size()));
}

void XsolvedServer::debugPauseDispatch(bool P) {
  {
    std::lock_guard<std::mutex> L(QueueMu); // same lost-wakeup guard
    Paused.store(P);
  }
  QueueCv.notify_all();
}

void XsolvedServer::closeListeners() {
  if (TcpFd >= 0) {
    ::close(TcpFd);
    TcpFd = -1;
  }
  if (UnixFd >= 0) {
    ::close(UnixFd);
    UnixFd = -1;
  }
}

void XsolvedServer::shutdownConnections() {
  std::lock_guard<std::mutex> L(ConnsMu);
  for (auto &C : Conns) {
    // Open flips under WriteMu: a writer between its CV predicate (which
    // saw Open) and the actual sleep holds that mutex, so storing under
    // it cannot lose the wakeup.
    {
      std::lock_guard<std::mutex> WL(C->WriteMu);
      C->Open.store(false);
    }
    if (C->Fd >= 0)
      ::shutdown(C->Fd, SHUT_RDWR);
    C->WriteCv.notify_all();
  }
}

//===----------------------------------------------------------------------===//
// Namespaces
//===----------------------------------------------------------------------===//

std::shared_ptr<NamespaceState>
XsolvedServer::namespaceState(const std::string &Name) {
  std::lock_guard<std::mutex> L(NsMu);
  auto It = Namespaces.find(Name);
  if (It != Namespaces.end())
    return It->second;
  auto Ns = std::make_shared<NamespaceState>(Name);
  Namespaces.emplace(Name, Ns);
  return Ns;
}

JsonRef XsolvedServer::namespacesJson() {
  JsonRef O = JsonValue::object();
  std::lock_guard<std::mutex> L(NsMu);
  for (const auto &[Name, Ns] : Namespaces) {
    JsonRef N = JsonValue::object();
    auto Num = [](uint64_t V) {
      return JsonValue::number(static_cast<double>(V));
    };
    N->set("requests", Num(Ns->Requests.load(std::memory_order_relaxed)));
    N->set("errors", Num(Ns->Errors.load(std::memory_order_relaxed)));
    N->set("cache_hits", Num(Ns->CacheHits.load(std::memory_order_relaxed)));
    N->set("cache_misses",
           Num(Ns->CacheMisses.load(std::memory_order_relaxed)));
    N->set("deadline_misses",
           Num(Ns->DeadlineMisses.load(std::memory_order_relaxed)));
    N->set("rejections", Num(Ns->Rejections.load(std::memory_order_relaxed)));
    N->set("slow_queries",
           Num(Ns->SlowQueries.load(std::memory_order_relaxed)));
    N->set("in_flight", Num(Ns->InFlight.load(std::memory_order_relaxed)));
    N->set("solver_time_ms",
           JsonValue::number(
               Ns->SolverTimeUs.load(std::memory_order_relaxed) / 1000.0));
    O->set(Name, N);
  }
  return O;
}

//===----------------------------------------------------------------------===//
// Accept loop
//===----------------------------------------------------------------------===//

bool XsolvedServer::acceptOne(int ListenFd) {
  Span AcceptSpan("server.accept");
  int ClientFd = ::accept(ListenFd, nullptr, nullptr);
  if (ClientFd < 0)
    return false;
  auto Conn = std::make_shared<Connection>();
  Conn->Fd = ClientFd;
  Conn->Ns = namespaceState("default");
  Conn->Stable = Opts.DefaultStable;
  {
    std::lock_guard<std::mutex> L(ConnsMu);
    Conn->Id = NextConnId++;
    Conns.push_back(Conn);
  }
  LogEvent(LogLevel::Debug, "conn.accept")
      .num("conn", static_cast<double>(Conn->Id));
  Conn->Reader = std::thread([this, Conn] { readerLoop(Conn); });
  Conn->Writer = std::thread([this, Conn] { writerLoop(Conn); });
  return true;
}

void XsolvedServer::acceptLoop() {
  while (!Draining.load()) {
    pollfd Fds[2];
    nfds_t N = 0;
    if (TcpFd >= 0)
      Fds[N++] = {TcpFd, POLLIN, 0};
    if (UnixFd >= 0)
      Fds[N++] = {UnixFd, POLLIN, 0};
    int R = ::poll(Fds, N, 200);
    if (R < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (R == 0)
      continue;
    for (nfds_t I = 0; I < N; ++I)
      if (Fds[I].revents & POLLIN)
        acceptOne(Fds[I].fd);
  }
  // Final sweep before the listeners close: a connection the kernel
  // already established (the client's connect() returned and it may
  // have pipelined requests) but this loop never accepted must not be
  // reset by close() — accept it, so its requests get structured
  // "draining" rejections instead of a dead socket.
  for (int Fd : {TcpFd, UnixFd}) {
    if (Fd < 0)
      continue;
    while (true) {
      pollfd P{Fd, POLLIN, 0};
      if (::poll(&P, 1, 0) <= 0 || !(P.revents & POLLIN))
        break;
      if (!acceptOne(Fd))
        break;
    }
  }
  closeListeners();
}

//===----------------------------------------------------------------------===//
// Reader: line framing, control ops, admission
//===----------------------------------------------------------------------===//

void XsolvedServer::readerLoop(std::shared_ptr<Connection> Conn) {
  detail::FdLineReader Reader{Conn->Fd, Opts.MaxLineBytes};
  std::string Line;
  bool Truncated = false;
  size_t LineNo = 0;
  bool FirstLine = true;
  while (Conn->Open.load() && Reader.next(Line, Truncated)) {
    ++LineNo;
    // A browser or Prometheus scraper speaking HTTP switches this
    // connection to the HTTP/1.1 keep-alive loop — detected on the very
    // first line only.
    if (FirstLine && !Truncated && Line.rfind("GET ", 0) == 0) {
      serveHttpConnection(*Conn, Reader, Line);
      break;
    }
    FirstLine = false;
    handleLine(*Conn, Line, LineNo, Truncated);
  }
  LogEvent(LogLevel::Debug, "conn.close")
      .num("conn", static_cast<double>(Conn->Id))
      .num("lines", static_cast<double>(LineNo));
  // Input is over, but responses for requests still in the dispatcher
  // may be outstanding: hand the writer the final sequence number so it
  // can flush everything and only then close the connection. Forcing
  // Open=false or SHUT_WR here would drop responses a pipelined client
  // that half-closed early is still owed.
  {
    std::lock_guard<std::mutex> L(Conn->WriteMu);
    Conn->InputDone = true;
    Conn->FinalSeq = Conn->NextSeq;
  }
  Conn->WriteCv.notify_all();
  // The fd itself is closed at server teardown (wait()), after the
  // writer can no longer deliver to it.
}

/// HTTP/1.1 keep-alive loop on the reader thread. Each iteration parses
/// one "GET <path> HTTP/1.x" request line plus its headers, answers
/// with an explicit Content-Length, and — unless the client asked for
/// close, spoke HTTP/1.0, or the connection cap is exceeded — waits up
/// to HttpIdleTimeoutMs for the next request on the same socket, so a
/// Prometheus scraper pays one connect for its whole lifetime instead
/// of one per scrape. All sends are interruptible (sendAll re-checks
/// Conn.Open), and drain's SHUT_RD surfaces as EOF in the reader, so a
/// parked scraper can never hang shutdown.
void XsolvedServer::serveHttpConnection(Connection &Conn,
                                        detail::FdLineReader &Reader,
                                        const std::string &RequestLine) {
  int Live = HttpConns.fetch_add(1) + 1;
  bool OverCap = Live > static_cast<int>(Opts.HttpMaxConns);
  LogEvent(LogLevel::Debug, "http.accept")
      .num("conn", static_cast<double>(Conn.Id))
      .num("live", Live)
      .flag("over_cap", OverCap);

  std::string Request = RequestLine;
  size_t Served = 0;
  while (Conn.Open.load()) {
    // Request line: "GET /path HTTP/1.1" (anything else ends the
    // connection — this is an introspection endpoint, not a web server).
    size_t PathBegin = Request.find(' ');
    size_t PathEnd =
        PathBegin == std::string::npos ? std::string::npos
                                       : Request.find(' ', PathBegin + 1);
    if (Request.rfind("GET ", 0) != 0 || PathEnd == std::string::npos)
      break;
    std::string Path = Request.substr(PathBegin + 1, PathEnd - PathBegin - 1);
    std::string Version = Request.substr(PathEnd + 1);
    while (!Version.empty() &&
           (Version.back() == '\r' || Version.back() == ' '))
      Version.pop_back();
    bool KeepAlive = Version == "HTTP/1.1"; // 1.0 defaults to close

    // Headers up to the blank line; only Connection: and (for /metrics
    // content negotiation) Accept: matter here.
    std::string HLine;
    bool HTrunc = false;
    bool WantOpenMetrics = false;
    Reader.PollTimeoutMs = -1; // headers follow immediately or not at all
    while (Reader.next(HLine, HTrunc)) {
      while (!HLine.empty() && HLine.back() == '\r')
        HLine.pop_back();
      if (HLine.empty())
        break;
      std::string Lower;
      Lower.reserve(HLine.size());
      for (char C : HLine)
        Lower += static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
      if (Lower.rfind("connection:", 0) == 0) {
        if (Lower.find("close") != std::string::npos)
          KeepAlive = false;
        else if (Lower.find("keep-alive") != std::string::npos)
          KeepAlive = true;
      } else if (Lower.rfind("accept:", 0) == 0 &&
                 Lower.find("application/openmetrics-text") !=
                     std::string::npos) {
        WantOpenMetrics = true;
      }
    }

    std::string Status = "200 OK";
    std::string ContentType = "application/json";
    std::string Body;
    if (OverCap) {
      Status = "503 Service Unavailable";
      ContentType = "text/plain";
      Body = "too many HTTP connections\n";
      KeepAlive = false;
    } else if (Path == "/metrics") {
      // Scrapers that negotiate OpenMetrics get exemplars (slowlog
      // request ids on the latency histogram) and the # EOF terminator;
      // everyone else gets classic Prometheus text.
      if (WantOpenMetrics) {
        ContentType = "application/openmetrics-text; version=1.0.0; "
                      "charset=utf-8";
        Body = MetricRegistry::global().openMetricsText();
      } else {
        ContentType = "text/plain; version=0.0.4";
        Body = MetricRegistry::global().prometheusText();
      }
    } else if (Path == "/healthz") {
      // Orchestrator probe: draining answers 503 so load balancers stop
      // routing here while admitted work finishes.
      ContentType = "text/plain";
      if (Draining.load()) {
        Status = "503 Service Unavailable";
        Body = "draining\n";
      } else {
        Body = "ok\n";
      }
    } else if (Path == "/statusz") {
      Body = statusJson()->dump();
      Body += '\n';
    } else if (Path == "/slowlog") {
      Body = slowlogJson(0)->dump();
      Body += '\n';
    } else if (Path == "/logz") {
      Body = logJson(0)->dump();
      Body += '\n';
    } else {
      Status = "404 Not Found";
      ContentType = "text/plain";
      Body = "not found (try /metrics, /healthz, /statusz, /slowlog, "
             "/logz)\n";
    }

    std::string Resp = "HTTP/1.1 " + Status +
                       "\r\nContent-Type: " + ContentType +
                       "\r\nContent-Length: " + std::to_string(Body.size()) +
                       "\r\nConnection: " +
                       (KeepAlive ? "keep-alive" : "close") + "\r\n\r\n" +
                       Body;
    if (!sendAll(Conn.Fd, Resp.data(), Resp.size(), Conn.Open))
      break;
    ++Served;
    if (!KeepAlive)
      break;
    // Idle wait for the next request line on the same connection.
    Reader.PollTimeoutMs = static_cast<int>(Opts.HttpIdleTimeoutMs);
    bool Trunc = false;
    bool Got = Reader.next(Request, Trunc);
    Reader.PollTimeoutMs = -1;
    if (!Got || Trunc)
      break; // EOF, error or idle timeout
  }
  HttpConns.fetch_sub(1);
  LogEvent(LogLevel::Debug, "http.close")
      .num("conn", static_cast<double>(Conn.Id))
      .num("served", static_cast<double>(Served));
}

void XsolvedServer::handleLine(Connection &Conn, const std::string &Line,
                               size_t LineNo, bool Truncated) {
  if (Truncated) {
    uint64_t Seq = Conn.NextSeq++;
    AnalysisResponse R;
    R.Ok = false;
    R.Error =
        "input line exceeds " + std::to_string(Opts.MaxLineBytes) + " bytes";
    R.ErrorLine = LineNo;
    R.ErrorByte = static_cast<long>(Opts.MaxLineBytes);
    deliver(Conn, Seq,
            responseToJson(R, /*IncludeVolatile=*/!Conn.Stable)->dump());
    return;
  }
  size_t First = Line.find_first_not_of(" \t\r");
  if (First == std::string::npos || Line[First] == '#')
    return; // blank/comment lines get no response and no seq
  std::string Error;
  size_t ErrByte = 0;
  JsonRef Obj = parseJson(Line, Error, &ErrByte);
  uint64_t Seq = Conn.NextSeq++;
  if (!Obj) {
    AnalysisResponse R;
    R.Ok = false;
    R.Error = "bad JSON: " + Error;
    R.ErrorLine = LineNo;
    R.ErrorByte = static_cast<long>(ErrByte);
    deliver(Conn, Seq,
            responseToJson(R, /*IncludeVolatile=*/!Conn.Stable)->dump());
    return;
  }
  std::string Op = Obj->str("op");
  if (Op == "config") {
    handleConfig(Conn, Seq, *Obj);
  } else if (Op == "metrics") {
    handleMetrics(Conn, Seq, *Obj);
  } else if (Op == "stats") {
    handleStats(Conn, Seq, *Obj);
  } else if (Op == "status") {
    handleStatus(Conn, Seq, *Obj);
  } else if (Op == "slowlog") {
    handleSlowlog(Conn, Seq, *Obj);
  } else if (Op == "log") {
    handleLog(Conn, Seq, *Obj);
  } else if (Op == "ping") {
    JsonRef O = JsonValue::object();
    std::string Id = Obj->str("id");
    if (!Id.empty())
      O->set("id", JsonValue::string(Id));
    O->set("ok", JsonValue::boolean(true));
    O->set("op", JsonValue::string("ping"));
    deliver(Conn, Seq, O->dump());
  } else if (Op == "drain") {
    JsonRef O = JsonValue::object();
    std::string Id = Obj->str("id");
    if (!Id.empty())
      O->set("id", JsonValue::string(Id));
    O->set("ok", JsonValue::boolean(true));
    O->set("draining", JsonValue::boolean(true));
    deliver(Conn, Seq, O->dump());
    requestDrain();
  } else {
    admit(Conn, Seq, *Obj, LineNo);
  }
}

void XsolvedServer::handleConfig(Connection &Conn, uint64_t Seq,
                                 const JsonValue &Obj) {
  std::string Id = Obj.str("id");
  auto Reject = [&](const std::string &Code, const std::string &Message,
                    const std::string &Key, const std::string &Value) {
    JsonRef O = JsonValue::object();
    if (!Id.empty())
      O->set("id", JsonValue::string(Id));
    O->set("ok", JsonValue::boolean(false));
    JsonRef E = errorObjectJson(Code, Message);
    if (!Key.empty())
      E->set("key", JsonValue::string(Key));
    if (!Value.empty())
      E->set("value", JsonValue::string(Value));
    O->set("error", E);
    Conn.Ns->Errors.fetch_add(1, std::memory_order_relaxed);
    deliver(Conn, Seq, O->dump());
  };

  static constexpr const char *KnownKeys[] = {
      "op", "id", "ns", "stable", "optimize", "share_fixpoints",
      "fixpoint_strategy", "bdd_backend"};
  for (const auto &[K, V] : Obj.members()) {
    if (K == "jobs") {
      Reject("invalid_config_value",
             "jobs is fixed at server start (the worker pool is shared by "
             "every client)",
             "jobs", "");
      return;
    }
    const std::string &Key = K;
    if (std::find_if(std::begin(KnownKeys), std::end(KnownKeys),
                     [&Key](const char *Known) { return Key == Known; }) ==
        std::end(KnownKeys)) {
      Reject("unknown_config_key", "unknown config key '" + K + "'", K, "");
      return;
    }
  }

  JsonRef NsName = Obj.get("ns");
  if (!NsName->isNull()) {
    if (NsName->type() != JsonValue::Type::String ||
        NsName->asString().empty()) {
      Reject("invalid_config_value", "ns must be a non-empty string", "ns",
             NsName->type() == JsonValue::Type::String ? NsName->asString()
                                                       : NsName->dump());
      return;
    }
    Conn.Ns = namespaceState(NsName->asString());
  }
  JsonRef Stable = Obj.get("stable");
  if (!Stable->isNull()) {
    if (Stable->type() != JsonValue::Type::Bool) {
      Reject("invalid_config_value", "stable must be a boolean", "stable",
             Stable->dump());
      return;
    }
    Conn.Stable = Stable->asBool();
  }
  JsonRef Optimize = Obj.get("optimize");
  if (!Optimize->isNull() && Optimize->type() != JsonValue::Type::Bool) {
    Reject("invalid_config_value", "optimize must be a boolean", "optimize",
           Optimize->dump());
    return;
  }
  JsonRef Share = Obj.get("share_fixpoints");
  if (!Share->isNull() && Share->type() != JsonValue::Type::Bool) {
    Reject("invalid_config_value", "share_fixpoints must be a boolean",
           "share_fixpoints", Share->dump());
    return;
  }
  JsonRef Strat = Obj.get("fixpoint_strategy");
  FixpointStrategy StratVal = FixpointStrategy::Bfs;
  bool HaveStrat = false;
  if (!Strat->isNull()) {
    if (Strat->type() != JsonValue::Type::String ||
        !parseFixpointStrategy(Strat->asString(), StratVal)) {
      std::string Given = Strat->type() == JsonValue::Type::String
                              ? Strat->asString()
                              : Strat->dump();
      Reject("invalid_config_value",
             "invalid fixpoint_strategy '" + Given +
                 "' (expected bfs, chaining, saturation or auto)",
             "fixpoint_strategy", Given);
      return;
    }
    HaveStrat = true;
  }
  JsonRef Backend = Obj.get("bdd_backend");
  BddBackendKind BackendVal = BddBackendKind::Serial;
  bool HaveBackend = false;
  if (!Backend->isNull()) {
    if (Backend->type() != JsonValue::Type::String ||
        !parseBddBackend(Backend->asString(), BackendVal)) {
      std::string Given = Backend->type() == JsonValue::Type::String
                              ? Backend->asString()
                              : Backend->dump();
      Reject("invalid_config_value",
             "invalid bdd_backend '" + Given +
                 "' (expected serial or parallel)",
             "bdd_backend", Given);
      return;
    }
    HaveBackend = true;
  }

  NamespaceState &Ns = *Conn.Ns;
  bool EffOptimize, EffShare;
  FixpointStrategy EffStrategy;
  BddBackendKind EffBackend;
  {
    std::lock_guard<std::mutex> L(Ns.Mu);
    if (!Optimize->isNull()) {
      Ns.HaveOptimize = true;
      Ns.Optimize = Optimize->asBool();
    }
    if (!Share->isNull()) {
      Ns.HaveShare = true;
      Ns.Share = Share->asBool();
    }
    if (HaveStrat) {
      Ns.HaveStrategy = true;
      Ns.Strategy = StratVal;
    }
    if (HaveBackend) {
      Ns.HaveBackend = true;
      Ns.Backend = BackendVal;
    }
    EffOptimize = Ns.HaveOptimize ? Ns.Optimize : Opts.Session.Optimize;
    EffShare = Ns.HaveShare ? Ns.Share : Opts.Session.ShareFixpoints;
    EffStrategy =
        Ns.HaveStrategy ? Ns.Strategy : Opts.Session.Solver.Strategy;
    EffBackend =
        Ns.HaveBackend ? Ns.Backend : Opts.Session.Solver.Backend;
  }

  JsonRef O = JsonValue::object();
  if (!Id.empty())
    O->set("id", JsonValue::string(Id));
  O->set("ok", JsonValue::boolean(true));
  O->set("ns", JsonValue::string(Ns.Name));
  O->set("stable", JsonValue::boolean(Conn.Stable));
  O->set("jobs", JsonValue::number(static_cast<double>(Sess->jobs())));
  O->set("optimize", JsonValue::boolean(EffOptimize));
  O->set("share_fixpoints", JsonValue::boolean(EffShare));
  O->set("fixpoint_strategy",
         JsonValue::string(fixpointStrategyName(EffStrategy)));
  O->set("bdd_backend", JsonValue::string(bddBackendName(EffBackend)));
  deliver(Conn, Seq, O->dump());
}

void XsolvedServer::handleMetrics(Connection &Conn, uint64_t Seq,
                                  const JsonValue &Obj) {
  JsonRef O = JsonValue::object();
  std::string Id = Obj.str("id");
  if (!Id.empty())
    O->set("id", JsonValue::string(Id));
  O->set("ok", JsonValue::boolean(true));
  JsonRef M = MetricRegistry::global().toJson(
      /*IncludeVolatile=*/!Conn.Stable);
  for (const auto &[K, V] : M->members())
    O->set(K, V);
  O->set("namespaces", namespacesJson());
  deliver(Conn, Seq, O->dump());
}

void XsolvedServer::handleStats(Connection &Conn, uint64_t Seq,
                                const JsonValue &Obj) {
  JsonRef O = JsonValue::object();
  std::string Id = Obj.str("id");
  if (!Id.empty())
    O->set("id", JsonValue::string(Id));
  O->set("ok", JsonValue::boolean(true));
  O->set("stats", statsToJson(Sess->stats()));
  O->set("namespaces", namespacesJson());
  deliver(Conn, Seq, O->dump());
}

/// {"op":"status"}, {"op":"slowlog"} and {"op":"log"} are operational
/// introspection ops: their payloads are inherently execution-dependent
/// (uptime, queue depth, captured latencies), so they are not part of
/// the `--stable` byte-identity contract — which covers analysis
/// responses — and serialize the same on any connection.

void XsolvedServer::handleStatus(Connection &Conn, uint64_t Seq,
                                 const JsonValue &Obj) {
  JsonRef O = JsonValue::object();
  std::string Id = Obj.str("id");
  if (!Id.empty())
    O->set("id", JsonValue::string(Id));
  O->set("ok", JsonValue::boolean(true));
  O->set("status", statusJson());
  deliver(Conn, Seq, O->dump());
}

void XsolvedServer::handleSlowlog(Connection &Conn, uint64_t Seq,
                                  const JsonValue &Obj) {
  JsonRef O = JsonValue::object();
  std::string Id = Obj.str("id");
  if (!Id.empty())
    O->set("id", JsonValue::string(Id));
  O->set("ok", JsonValue::boolean(true));
  size_t Max = 0;
  JsonRef N = Obj.get("n");
  if (N->type() == JsonValue::Type::Number && N->asNumber() > 0)
    Max = static_cast<size_t>(N->asNumber());
  O->set("slowlog", slowlogJson(Max));
  deliver(Conn, Seq, O->dump());
}

void XsolvedServer::handleLog(Connection &Conn, uint64_t Seq,
                              const JsonValue &Obj) {
  JsonRef O = JsonValue::object();
  std::string Id = Obj.str("id");
  if (!Id.empty())
    O->set("id", JsonValue::string(Id));
  O->set("ok", JsonValue::boolean(true));
  size_t Max = 0;
  JsonRef N = Obj.get("n");
  if (N->type() == JsonValue::Type::Number && N->asNumber() > 0)
    Max = static_cast<size_t>(N->asNumber());
  O->set("log", logJson(Max));
  deliver(Conn, Seq, O->dump());
}

JsonRef XsolvedServer::statusJson() {
  JsonRef S = JsonValue::object();
  S->set("schema", JsonValue::string("xsa.status/1"));
  S->set("uptime_s",
         JsonValue::number(
             StartSteadyNs ? (nowSteadyNs() - StartSteadyNs) / 1e9 : 0));
  S->set("draining", JsonValue::boolean(Draining.load()));
  size_t Depth;
  {
    std::lock_guard<std::mutex> L(QueueMu);
    Depth = Queue->Q.size();
  }
  S->set("queue_depth", JsonValue::number(static_cast<double>(Depth)));
  S->set("queue_limit",
         JsonValue::number(static_cast<double>(Opts.QueueLimit)));
  S->set("in_flight", JsonValue::number(static_cast<double>(
                          InFlight.load(std::memory_order_relaxed))));
  S->set("jobs", JsonValue::number(static_cast<double>(Sess->jobs())));
  size_t OpenConns = 0;
  {
    std::lock_guard<std::mutex> L(ConnsMu);
    for (const auto &C : Conns)
      if (C->Open.load())
        ++OpenConns;
  }
  S->set("connections", JsonValue::number(static_cast<double>(OpenConns)));
  S->set("http_connections",
         JsonValue::number(static_cast<double>(HttpConns.load())));
  // Same registrations (name/help/volatile) as BddSolver's sampler, so
  // whichever side registers first the series agree.
  MetricRegistry &R = MetricRegistry::global();
  JsonRef Bdd = JsonValue::object();
  // One sub-object per backend, mirroring the labeled gauge series the
  // solver maintains (xsa_bdd_live_nodes{backend="..."}).
  for (BddBackendKind K :
       {BddBackendKind::Serial, BddBackendKind::Parallel}) {
    const char *Name = bddBackendName(K);
    JsonRef B = JsonValue::object();
    B->set("live_nodes",
           JsonValue::number(
               R.gauge(labeledMetricName("xsa_bdd_live_nodes", "backend",
                                         Name),
                       "Live BDD nodes of the last solver run",
                       /*Volatile=*/true)
                   .value()));
    B->set("peak_nodes",
           JsonValue::number(
               R.gauge(labeledMetricName("xsa_bdd_peak_nodes", "backend",
                                         Name),
                       "Peak BDD nodes of the last solver run",
                       /*Volatile=*/true)
                   .value()));
    Bdd->set(Name, B);
  }
  S->set("bdd", Bdd);
  S->set("namespaces", namespacesJson());
  SlowQueryLog &Slow = SlowQueryLog::global();
  JsonRef Sq = JsonValue::object();
  Sq->set("recorded",
          JsonValue::number(static_cast<double>(Slow.recorded())));
  Sq->set("threshold_ms", JsonValue::number(Slow.thresholdMs()));
  Sq->set("capacity",
          JsonValue::number(static_cast<double>(Slow.capacity())));
  S->set("slowlog", Sq);
  EventLog &Log = EventLog::global();
  JsonRef Lg = JsonValue::object();
  Lg->set("records",
          JsonValue::number(static_cast<double>(Log.recordCount())));
  Lg->set("sink_dropped",
          JsonValue::number(static_cast<double>(Log.sinkDropped())));
  S->set("log", Lg);
  return S;
}

JsonRef XsolvedServer::slowlogJson(size_t MaxRecords) {
  SlowQueryLog &Slow = SlowQueryLog::global();
  JsonRef S = JsonValue::object();
  S->set("schema", JsonValue::string("xsa.slowlog/1"));
  S->set("threshold_ms", JsonValue::number(Slow.thresholdMs()));
  S->set("capacity",
         JsonValue::number(static_cast<double>(Slow.capacity())));
  S->set("recorded",
         JsonValue::number(static_cast<double>(Slow.recorded())));
  JsonRef Entries = JsonValue::array();
  for (const SlowQueryRecord &R : Slow.snapshot(MaxRecords))
    Entries->push(SlowQueryLog::toJson(R));
  S->set("entries", Entries);
  return S;
}

JsonRef XsolvedServer::logJson(size_t MaxRecords) {
  EventLog &Log = EventLog::global();
  JsonRef S = JsonValue::object();
  S->set("schema", JsonValue::string("xsa.log/1"));
  S->set("records",
         JsonValue::number(static_cast<double>(Log.recordCount())));
  S->set("sink_dropped",
         JsonValue::number(static_cast<double>(Log.sinkDropped())));
  JsonRef Entries = JsonValue::array();
  for (const EventLog::Record &R : Log.ring(MaxRecords))
    Entries->push(logRecordJson(R));
  S->set("entries", Entries);
  return S;
}

void XsolvedServer::reject(Connection &Conn, uint64_t Seq,
                           const std::string &Id, bool Stable,
                           const std::string &Code, const std::string &Message,
                           const std::string &Rid) {
  AnalysisResponse R;
  R.Id = Id;
  R.Ok = false;
  R.ErrorCode = Code;
  R.Error = Message;
  R.Rid = Rid;
  deliver(Conn, Seq, responseToJson(R, /*IncludeVolatile=*/!Stable)->dump());
}

void XsolvedServer::admit(Connection &Conn, uint64_t Seq, const JsonValue &Obj,
                          size_t LineNo) {
  AnalysisRequest Req;
  std::string Error;
  if (!requestFromJson(Obj, Req, Error)) {
    AnalysisResponse R;
    R.Id = Obj.str("id");
    R.Ok = false;
    R.Error = Error;
    R.ErrorLine = LineNo;
    Conn.Ns->Errors.fetch_add(1, std::memory_order_relaxed);
    deliver(Conn, Seq,
            responseToJson(R, /*IncludeVolatile=*/!Conn.Stable)->dump());
    return;
  }

  Job J;
  J.Seq = Seq;
  J.Req = std::move(Req);
  J.Stable = Conn.Stable;
  J.Ns = Conn.Ns;
  J.Rid = !J.Req.Id.empty()
              ? J.Req.Id
              : "c" + std::to_string(Conn.Id) + "-" + std::to_string(Seq);
  J.Req.TraceId = J.Rid;
  J.RequestJson = Obj.dump();
  JsonRef Priority = Obj.get("priority");
  if (Priority->type() == JsonValue::Type::Number)
    J.Priority = static_cast<int>(Priority->asNumber());
  J.EnqueueNs = nowSteadyNs();
  JsonRef Deadline = Obj.get("deadline_ms");
  if (Deadline->type() == JsonValue::Type::Number &&
      Deadline->asNumber() >= 0)
    J.DeadlineNs =
        J.EnqueueNs + static_cast<uint64_t>(Deadline->asNumber() * 1e6);
  {
    std::lock_guard<std::mutex> L(Conn.Ns->Mu);
    J.Optimize =
        Conn.Ns->HaveOptimize ? Conn.Ns->Optimize : Opts.Session.Optimize;
    J.Share =
        Conn.Ns->HaveShare ? Conn.Ns->Share : Opts.Session.ShareFixpoints;
    J.Strategy = Conn.Ns->HaveStrategy ? Conn.Ns->Strategy
                                       : Opts.Session.Solver.Strategy;
    J.Backend = Conn.Ns->HaveBackend ? Conn.Ns->Backend
                                     : Opts.Session.Solver.Backend;
  }

  // Find this connection's shared_ptr (deliver from the dispatcher needs
  // shared ownership; the reader only has the raw ref).
  {
    std::lock_guard<std::mutex> L(ConnsMu);
    for (const auto &C : Conns)
      if (C.get() == &Conn) {
        J.Conn = C;
        break;
      }
  }
  if (!J.Conn)
    return; // connection already torn down

  std::shared_ptr<NamespaceState> Ns = J.Ns;
  {
    std::unique_lock<std::mutex> L(QueueMu);
    // Checked under QueueMu: once the dispatcher can observe
    // "Draining && queue empty" and exit, every admission afterwards
    // sees Draining here and rejects instead of enqueueing into a queue
    // nobody pops.
    if (Draining.load()) {
      L.unlock();
      Ns->Rejections.fetch_add(1, std::memory_order_relaxed);
      rejectionCounter("draining").add();
      LogEvent(LogLevel::Warn, "request.rejected")
          .str("rid", J.Rid)
          .str("ns", Ns->Name)
          .str("code", "draining")
          .num("conn", static_cast<double>(Conn.Id));
      reject(Conn, Seq, J.Req.Id, Conn.Stable, "draining",
             "server is draining and no longer accepts analysis requests",
             J.Rid);
      return;
    }
    if (Queue->Q.size() >= Opts.QueueLimit) {
      L.unlock();
      Ns->Rejections.fetch_add(1, std::memory_order_relaxed);
      rejectionCounter("overloaded").add();
      LogEvent(LogLevel::Warn, "request.rejected")
          .str("rid", J.Rid)
          .str("ns", Ns->Name)
          .str("code", "overloaded")
          .num("queue_limit", static_cast<double>(Opts.QueueLimit))
          .num("conn", static_cast<double>(Conn.Id));
      reject(Conn, Seq, J.Req.Id, Conn.Stable, "overloaded",
             "request queue is full (limit " +
                 std::to_string(Opts.QueueLimit) + "); retry later",
             J.Rid);
      return;
    }
    J.AdmitSeq = NextAdmitSeq++;
    Queue->Q.push(std::move(J));
    queueDepthGauge().set(static_cast<double>(Queue->Q.size()));
  }
  Ns->Requests.fetch_add(1, std::memory_order_relaxed);
  Ns->RequestsMetric->add();
  QueueCv.notify_one();
}

//===----------------------------------------------------------------------===//
// Dispatcher
//===----------------------------------------------------------------------===//

void XsolvedServer::dispatchLoop() {
  const size_t BatchMax = std::max<size_t>(1, Sess->jobs());
  while (true) {
    std::vector<Job> Batch, Expired;
    {
      std::unique_lock<std::mutex> L(QueueMu);
      // Drain overrides the debug pause: a paused server still finishes
      // its admitted work on shutdown.
      QueueCv.wait(L, [&] {
        return Draining.load() || (!Paused.load() && !Queue->Q.empty());
      });
      if (Queue->Q.empty() && Draining.load())
        break;
      if (Queue->Q.empty())
        continue;
      uint64_t Now = nowSteadyNs();
      while (!Queue->Q.empty() && Batch.size() < BatchMax) {
        Job J = Queue->Q.top();
        Queue->Q.pop();
        if (J.DeadlineNs && Now > J.DeadlineNs)
          Expired.push_back(std::move(J));
        else
          Batch.push_back(std::move(J));
      }
      queueDepthGauge().set(static_cast<double>(Queue->Q.size()));
    }
    for (Job &J : Expired) {
      deadlineMissCounter().add();
      J.Ns->DeadlineMisses.fetch_add(1, std::memory_order_relaxed);
      double WaitMs = (nowSteadyNs() - J.EnqueueNs) / 1e6;
      LogEvent(LogLevel::Warn, "request.deadline_exceeded")
          .str("rid", J.Rid)
          .str("ns", J.Ns->Name)
          .num("queue_wait_ms", WaitMs)
          .num("conn", static_cast<double>(J.Conn->Id));
      // A deadline miss always qualifies for the slowlog (shouldRecord
      // treats any non-Ok outcome as a tail event); the request never
      // ran, so the breakdown is queue wait alone.
      SlowQueryRecord SR;
      SR.RequestId = J.Rid;
      SR.ClientId = J.Req.Id;
      SR.Ns = J.Ns->Name;
      SR.Op = requestKindName(J.Req.Kind);
      SR.Ok = false;
      SR.Code = "deadline_exceeded";
      SR.Priority = J.Priority;
      SR.ConnId = J.Conn->Id;
      SR.QueueWaitMs = WaitMs;
      SR.TotalMs = WaitMs;
      SR.StageMs.emplace_back("server.queue_wait", WaitMs);
      SR.RequestJson = J.RequestJson;
      SR.Optimize = J.Optimize;
      SR.Share = J.Share;
      SR.Strategy = fixpointStrategyName(J.Strategy);
      SR.Backend = bddBackendName(J.Backend);
      J.Ns->SlowQueries.fetch_add(1, std::memory_order_relaxed);
      SlowQueryLog::global().record(std::move(SR));
      // J.Stable is the admission-time snapshot: the dispatcher must
      // not read Conn.Stable, which the reader may be rewriting.
      reject(*J.Conn, J.Seq, J.Req.Id, J.Stable, "deadline_exceeded",
             "deadline expired before the request reached a worker", J.Rid);
    }
    if (!Batch.empty())
      dispatchBatch(Batch);
  }
}

void XsolvedServer::dispatchBatch(std::vector<Job> &Batch) {
  Histogram &QueueWait = queueWaitHistogram();
  uint64_t Now = nowSteadyNs();
  std::vector<double> QueueWaitMs(Batch.size());
  for (size_t I = 0; I < Batch.size(); ++I) {
    const Job &J = Batch[I];
    QueueWaitMs[I] = (Now - J.EnqueueNs) / 1e6;
    QueueWait.observe(QueueWaitMs[I]);
    Tracer::global().recordSpanFrom("server.queue_wait", J.EnqueueNs);
    J.Ns->InFlight.fetch_add(1, std::memory_order_relaxed);
  }
  InFlight.fetch_add(Batch.size(), std::memory_order_relaxed);
  std::vector<AnalysisResponse> Resps(Batch.size());
  Sess->pool().parallelFor(Batch.size(), [&](size_t I, size_t Worker) {
    AnalysisContext &Ctx = Sess->workerContext(Worker);
    // Apply the namespace-config snapshot taken at admission. The
    // setters early-out when the value is unchanged, so a homogeneous
    // stream costs four compares per request.
    Ctx.setOptimizePrePass(Batch[I].Optimize);
    Ctx.setShareFixpoints(Batch[I].Share);
    Ctx.setFixpointStrategy(Batch[I].Strategy);
    Ctx.setBddBackend(Batch[I].Backend);
    Resps[I] = runRequest(Ctx, Batch[I].Req);
  });
  InFlight.fetch_sub(Batch.size(), std::memory_order_relaxed);
  SlowQueryLog &Slow = SlowQueryLog::global();
  EventLog &Log = EventLog::global();
  for (size_t I = 0; I < Batch.size(); ++I) {
    Job &J = Batch[I];
    const AnalysisResponse &R = Resps[I];
    J.Ns->InFlight.fetch_sub(1, std::memory_order_relaxed);
    if (!R.Ok)
      J.Ns->Errors.fetch_add(1, std::memory_order_relaxed);
    else if (R.FromCache)
      J.Ns->CacheHits.fetch_add(1, std::memory_order_relaxed);
    else
      J.Ns->CacheMisses.fetch_add(1, std::memory_order_relaxed);
    J.Ns->SolverTimeUs.fetch_add(
        static_cast<uint64_t>(R.Stats.TimeMs * 1000.0),
        std::memory_order_relaxed);
    // Tail sampling: total latency is queue wait + execution (the
    // "request" stage row when stage capture ran, Stats.TimeMs as the
    // fallback). Decided AFTER the request ran — fast successes leave
    // nothing behind.
    double ExecMs = R.Stats.TimeMs;
    for (const auto &[Name, Ms] : R.StageMs)
      if (Name == "request") {
        ExecMs = Ms;
        break;
      }
    double TotalMs = QueueWaitMs[I] + ExecMs;
    if (Slow.shouldRecord(TotalMs, R.Ok)) {
      SlowQueryRecord SR;
      SR.RequestId = J.Rid;
      SR.ClientId = J.Req.Id;
      SR.Ns = J.Ns->Name;
      SR.Op = requestKindName(J.Req.Kind);
      SR.Ok = R.Ok;
      SR.Code = R.ErrorCode;
      SR.Priority = J.Priority;
      SR.ConnId = J.Conn->Id;
      SR.QueueWaitMs = QueueWaitMs[I];
      SR.TotalMs = TotalMs;
      SR.FromCache = R.FromCache;
      SR.StageMs = R.StageMs;
      SR.StageMs.emplace_back("server.queue_wait", QueueWaitMs[I]);
      SR.RequestJson = J.RequestJson;
      SR.Optimize = J.Optimize;
      SR.Share = J.Share;
      SR.Strategy = fixpointStrategyName(J.Strategy);
      SR.Backend = bddBackendName(J.Backend);
      J.Ns->SlowQueries.fetch_add(1, std::memory_order_relaxed);
      Slow.record(std::move(SR));
      // Link the latency histogram back to this capture.
      MetricRegistry::global()
          .histogram("xsa_request_latency_ms")
          .setExemplar(J.Rid, TotalMs);
      if (R.Ok)
        LogEvent(LogLevel::Warn, "request.slow")
            .str("rid", J.Rid)
            .str("ns", J.Ns->Name)
            .num("total_ms", TotalMs)
            .num("queue_wait_ms", QueueWaitMs[I]);
    }
    if (Log.enabled(LogLevel::Debug))
      LogEvent(LogLevel::Debug, "request.done")
          .str("rid", J.Rid)
          .str("ns", J.Ns->Name)
          .flag("ok", R.Ok)
          .flag("cache", R.FromCache)
          .num("total_ms", TotalMs)
          .num("conn", static_cast<double>(J.Conn->Id));
    deliver(*J.Conn, J.Seq,
            responseToJson(R, /*IncludeVolatile=*/!J.Stable)->dump());
  }
}

//===----------------------------------------------------------------------===//
// Delivery
//===----------------------------------------------------------------------===//

/// Producer side of the per-connection sequencer: parks the response
/// line in the reorder buffer and wakes the writer. Called from the
/// reader (control responses, admission rejections) and the dispatcher
/// (analysis responses) — NEVER performs socket I/O, so neither thread
/// can be stalled by a client that stopped reading. The buffer is
/// bounded: a connection whose client left more than MaxOutboundBytes
/// unread is dropped, not buffered without limit.
void XsolvedServer::deliver(Connection &Conn, uint64_t Seq, std::string Line) {
  Line += '\n';
  {
    std::lock_guard<std::mutex> L(Conn.WriteMu);
    if (!Conn.Open.load())
      return; // connection dropped — discard, the writer is done
    Conn.PendingBytes += Line.size();
    Conn.Pending.emplace(Seq, std::move(Line));
    if (Conn.PendingBytes > Opts.MaxOutboundBytes) {
      Conn.Open.store(false);
      Conn.Pending.clear();
      Conn.PendingBytes = 0;
      if (Conn.Fd >= 0)
        ::shutdown(Conn.Fd, SHUT_RDWR);
    }
  }
  Conn.WriteCv.notify_all();
}

/// Per-connection writer: drains the reorder buffer to the socket in
/// sequence order. The only thread that sends on an analysis
/// connection, and the only one allowed to block on a slow client —
/// bounded by the Alive checks inside sendAll, so forced teardown can
/// always interrupt it.
void XsolvedServer::writerLoop(std::shared_ptr<Connection> Conn) {
  std::unique_lock<std::mutex> L(Conn->WriteMu);
  while (true) {
    Conn->WriteCv.wait(L, [&] {
      return !Conn->Open.load() ||
             (!Conn->Pending.empty() &&
              Conn->Pending.begin()->first == Conn->NextDeliver) ||
             (Conn->InputDone && Conn->NextDeliver == Conn->FinalSeq);
    });
    if (!Conn->Open.load())
      break;
    if (!Conn->Pending.empty() &&
        Conn->Pending.begin()->first == Conn->NextDeliver) {
      std::string Out = std::move(Conn->Pending.begin()->second);
      Conn->Pending.erase(Conn->Pending.begin());
      Conn->PendingBytes -= Out.size();
      ++Conn->NextDeliver;
      L.unlock();
      bool Ok = sendAll(Conn->Fd, Out.data(), Out.size(), Conn->Open);
      L.lock();
      if (!Ok) {
        Conn->Open.store(false);
        Conn->Pending.clear();
        Conn->PendingBytes = 0;
        break;
      }
      continue;
    }
    // InputDone with everything flushed: the reader is gone and no
    // producer will enqueue another sequenced line.
    break;
  }
  // Signal the peer we are done (EOF after the last response) and the
  // teardown in wait() that this connection is fully flushed.
  if (Conn->Fd >= 0)
    ::shutdown(Conn->Fd, SHUT_RDWR);
  Conn->WriterExited = true;
  L.unlock();
  Conn->WriteCv.notify_all();
}
