//===- Server.cpp - Long-lived multi-tenant analysis server ----------------===//

#include "server/Server.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "service/Batch.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <queue>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace xsa;

namespace {

/// All queue timestamps (deadlines, waits) share the tracer's timebase,
/// so the same stamp feeds the deadline check, the wait histogram and
/// the cross-thread "server.queue_wait" span.
uint64_t nowSteadyNs() { return Tracer::nowNs(); }

/// Sends all of \p Data on \p Fd (MSG_NOSIGNAL: a peer that closed mid-
/// write must surface as an error on this thread, not kill the process
/// with SIGPIPE). False on any failure.
bool sendAll(int Fd, const char *Data, size_t Len) {
  while (Len > 0) {
    ssize_t N = ::send(Fd, Data, Len, MSG_NOSIGNAL);
    if (N <= 0) {
      if (N < 0 && errno == EINTR)
        continue;
      return false;
    }
    Data += static_cast<size_t>(N);
    Len -= static_cast<size_t>(N);
  }
  return true;
}

Counter &rejectionCounter(const char *Reason) {
  return MetricRegistry::global().counter(
      labeledMetricName("xsa_server_rejections_total", "reason", Reason),
      "Requests rejected at admission, by reason", /*Volatile=*/true);
}

Counter &deadlineMissCounter() {
  return MetricRegistry::global().counter(
      "xsa_server_deadline_misses_total",
      "Admitted requests dropped because their deadline expired in queue",
      /*Volatile=*/true);
}

Gauge &queueDepthGauge() {
  return MetricRegistry::global().gauge(
      "xsa_server_queue_depth", "Analysis requests currently queued",
      /*Volatile=*/true);
}

Histogram &queueWaitHistogram() {
  return MetricRegistry::global().histogram(
      "xsa_server_queue_wait_ms",
      "Admission-to-dispatch wait of analysis requests");
}

} // namespace

NamespaceState::NamespaceState(std::string N) : Name(std::move(N)) {
  RequestsMetric = &MetricRegistry::global().counter(
      labeledMetricName("xsa_server_requests_total", "ns", Name),
      "Analysis requests admitted, by namespace", /*Volatile=*/true);
}

//===----------------------------------------------------------------------===//
// Internal types
//===----------------------------------------------------------------------===//

/// One client connection. The reader thread owns Fd reads and seq
/// assignment; writes and the reorder buffer are guarded by WriteMu
/// (reader thread for control responses, dispatcher thread for analysis
/// responses).
struct XsolvedServer::Connection {
  int Fd = -1;
  uint64_t Id = 0;
  std::thread Reader;
  std::atomic<bool> Open{true};

  /// Reader-thread-only: next sequence number to assign to a line that
  /// gets a response.
  uint64_t NextSeq = 0;

  std::mutex WriteMu;
  uint64_t NextDeliver = 0;                ///< guarded by WriteMu
  std::map<uint64_t, std::string> Pending; ///< guarded by WriteMu

  /// Per-connection protocol state: current namespace and response
  /// encoding. Written by the reader thread on a config line; the
  /// values a job uses are snapshotted into the job at admission, so
  /// the dispatcher never reads these directly.
  std::shared_ptr<NamespaceState> Ns;
  bool Stable = false;
};

/// An admitted analysis request, carrying everything the dispatcher
/// needs — including the namespace-config snapshot taken at admission,
/// so a later config change never races a queued job.
struct XsolvedServer::Job {
  std::shared_ptr<Connection> Conn;
  std::shared_ptr<NamespaceState> Ns;
  uint64_t Seq = 0;
  AnalysisRequest Req;
  int Priority = 0;
  uint64_t DeadlineNs = 0; ///< absolute steady-clock ns; 0 = none
  uint64_t EnqueueNs = 0;
  uint64_t AdmitSeq = 0;
  bool Stable = false;
  bool Optimize = false;
  bool Share = false;
  FixpointStrategy Strategy = FixpointStrategy::Bfs;
};

struct XsolvedServer::JobQueue {
  /// Higher priority first; FIFO (admission order) within a priority.
  struct Order {
    bool operator()(const Job &A, const Job &B) const {
      if (A.Priority != B.Priority)
        return A.Priority < B.Priority;
      return A.AdmitSeq > B.AdmitSeq;
    }
  };
  std::priority_queue<Job, std::vector<Job>, Order> Q;
};

//===----------------------------------------------------------------------===//
// Lifecycle
//===----------------------------------------------------------------------===//

XsolvedServer::XsolvedServer(ServerOptions O) : Opts(std::move(O)) {
  Queue = std::make_unique<JobQueue>();
}

XsolvedServer::~XsolvedServer() {
  if (Started.load())
    drainAndWait();
}

bool XsolvedServer::start(std::string &Error) {
  if (Opts.TcpPort < 0 && Opts.UnixPath.empty()) {
    Error = "server needs a TCP port and/or a unix socket path";
    return false;
  }
  Sess = std::make_unique<AnalysisSession>(Opts.Session);
  if (!Opts.CacheFile.empty()) {
    std::ifstream Probe(Opts.CacheFile);
    if (Probe) {
      Probe.close();
      std::string LoadError;
      if (!Sess->loadCache(Opts.CacheFile, LoadError)) {
        Error = "cache file: " + LoadError;
        return false;
      }
    }
  }
  // Build the pool (and the per-worker contexts) once, on this thread:
  // AnalysisSession::pool() is not thread-safe and every later caller
  // is the dispatcher alone.
  Sess->pool();

  if (Opts.TcpPort >= 0) {
    TcpFd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (TcpFd < 0) {
      Error = "socket: " + std::string(std::strerror(errno));
      return false;
    }
    int One = 1;
    ::setsockopt(TcpFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
    sockaddr_in Addr{};
    Addr.sin_family = AF_INET;
    Addr.sin_port = htons(static_cast<uint16_t>(Opts.TcpPort));
    if (::inet_pton(AF_INET, Opts.Host.c_str(), &Addr.sin_addr) != 1) {
      Error = "bad host address " + Opts.Host;
      closeListeners();
      return false;
    }
    if (::bind(TcpFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0 ||
        ::listen(TcpFd, 64) < 0) {
      Error = "bind/listen " + Opts.Host + ":" + std::to_string(Opts.TcpPort) +
              ": " + std::strerror(errno);
      closeListeners();
      return false;
    }
    sockaddr_in Bound{};
    socklen_t BoundLen = sizeof(Bound);
    if (::getsockname(TcpFd, reinterpret_cast<sockaddr *>(&Bound),
                      &BoundLen) == 0)
      BoundPort = ntohs(Bound.sin_port);
  }

  if (!Opts.UnixPath.empty()) {
    sockaddr_un Addr{};
    if (Opts.UnixPath.size() >= sizeof(Addr.sun_path)) {
      Error = "unix socket path too long";
      closeListeners();
      return false;
    }
    UnixFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (UnixFd < 0) {
      Error = "socket: " + std::string(std::strerror(errno));
      closeListeners();
      return false;
    }
    Addr.sun_family = AF_UNIX;
    std::strncpy(Addr.sun_path, Opts.UnixPath.c_str(),
                 sizeof(Addr.sun_path) - 1);
    ::unlink(Opts.UnixPath.c_str());
    if (::bind(UnixFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
            0 ||
        ::listen(UnixFd, 64) < 0) {
      Error = "bind/listen " + Opts.UnixPath + ": " + std::strerror(errno);
      closeListeners();
      return false;
    }
  }

  // The default namespace exists from the start so /metrics has its
  // series before the first request.
  namespaceState("default");

  Started.store(true);
  AcceptThread = std::thread([this] { acceptLoop(); });
  DispatchThread = std::thread([this] { dispatchLoop(); });
  return true;
}

void XsolvedServer::requestDrain() {
  Draining.store(true);
  QueueCv.notify_all();
}

void XsolvedServer::drainAndWait() {
  requestDrain();
  wait();
}

void XsolvedServer::wait() {
  std::lock_guard<std::mutex> L(StopMu);
  if (Stopped.load() || !Started.load())
    return;
  if (AcceptThread.joinable())
    AcceptThread.join();
  if (DispatchThread.joinable())
    DispatchThread.join();
  // The dispatcher has delivered everything admitted; now unblock and
  // join the readers (clients holding connections open must not stall
  // the drain).
  shutdownConnections();
  {
    std::lock_guard<std::mutex> CL(ConnsMu);
    for (auto &C : Conns) {
      if (C->Reader.joinable())
        C->Reader.join();
      if (C->Fd >= 0) {
        ::close(C->Fd);
        C->Fd = -1;
      }
    }
    Conns.clear();
  }
  if (!Opts.CacheFile.empty()) {
    std::string SaveError;
    Sess->saveCache(Opts.CacheFile, SaveError);
  }
  if (!Opts.UnixPath.empty())
    ::unlink(Opts.UnixPath.c_str());
  Stopped.store(true);
}

void XsolvedServer::debugPauseDispatch(bool P) {
  Paused.store(P);
  QueueCv.notify_all();
}

void XsolvedServer::closeListeners() {
  if (TcpFd >= 0) {
    ::close(TcpFd);
    TcpFd = -1;
  }
  if (UnixFd >= 0) {
    ::close(UnixFd);
    UnixFd = -1;
  }
}

void XsolvedServer::shutdownConnections() {
  std::lock_guard<std::mutex> L(ConnsMu);
  for (auto &C : Conns) {
    C->Open.store(false);
    if (C->Fd >= 0)
      ::shutdown(C->Fd, SHUT_RDWR);
  }
}

//===----------------------------------------------------------------------===//
// Namespaces
//===----------------------------------------------------------------------===//

std::shared_ptr<NamespaceState>
XsolvedServer::namespaceState(const std::string &Name) {
  std::lock_guard<std::mutex> L(NsMu);
  auto It = Namespaces.find(Name);
  if (It != Namespaces.end())
    return It->second;
  auto Ns = std::make_shared<NamespaceState>(Name);
  Namespaces.emplace(Name, Ns);
  return Ns;
}

JsonRef XsolvedServer::namespacesJson() {
  JsonRef O = JsonValue::object();
  std::lock_guard<std::mutex> L(NsMu);
  for (const auto &[Name, Ns] : Namespaces) {
    JsonRef N = JsonValue::object();
    auto Num = [](uint64_t V) {
      return JsonValue::number(static_cast<double>(V));
    };
    N->set("requests", Num(Ns->Requests.load(std::memory_order_relaxed)));
    N->set("errors", Num(Ns->Errors.load(std::memory_order_relaxed)));
    N->set("cache_hits", Num(Ns->CacheHits.load(std::memory_order_relaxed)));
    N->set("cache_misses",
           Num(Ns->CacheMisses.load(std::memory_order_relaxed)));
    N->set("deadline_misses",
           Num(Ns->DeadlineMisses.load(std::memory_order_relaxed)));
    N->set("rejections", Num(Ns->Rejections.load(std::memory_order_relaxed)));
    N->set("solver_time_ms",
           JsonValue::number(
               Ns->SolverTimeUs.load(std::memory_order_relaxed) / 1000.0));
    O->set(Name, N);
  }
  return O;
}

//===----------------------------------------------------------------------===//
// Accept loop
//===----------------------------------------------------------------------===//

bool XsolvedServer::acceptOne(int ListenFd) {
  Span AcceptSpan("server.accept");
  int ClientFd = ::accept(ListenFd, nullptr, nullptr);
  if (ClientFd < 0)
    return false;
  auto Conn = std::make_shared<Connection>();
  Conn->Fd = ClientFd;
  Conn->Ns = namespaceState("default");
  Conn->Stable = Opts.DefaultStable;
  {
    std::lock_guard<std::mutex> L(ConnsMu);
    Conn->Id = NextConnId++;
    Conns.push_back(Conn);
  }
  Conn->Reader = std::thread([this, Conn] { readerLoop(Conn); });
  return true;
}

void XsolvedServer::acceptLoop() {
  while (!Draining.load()) {
    pollfd Fds[2];
    nfds_t N = 0;
    if (TcpFd >= 0)
      Fds[N++] = {TcpFd, POLLIN, 0};
    if (UnixFd >= 0)
      Fds[N++] = {UnixFd, POLLIN, 0};
    int R = ::poll(Fds, N, 200);
    if (R < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (R == 0)
      continue;
    for (nfds_t I = 0; I < N; ++I)
      if (Fds[I].revents & POLLIN)
        acceptOne(Fds[I].fd);
  }
  // Final sweep before the listeners close: a connection the kernel
  // already established (the client's connect() returned and it may
  // have pipelined requests) but this loop never accepted must not be
  // reset by close() — accept it, so its requests get structured
  // "draining" rejections instead of a dead socket.
  for (int Fd : {TcpFd, UnixFd}) {
    if (Fd < 0)
      continue;
    while (true) {
      pollfd P{Fd, POLLIN, 0};
      if (::poll(&P, 1, 0) <= 0 || !(P.revents & POLLIN))
        break;
      if (!acceptOne(Fd))
        break;
    }
  }
  closeListeners();
}

//===----------------------------------------------------------------------===//
// Reader: line framing, control ops, admission
//===----------------------------------------------------------------------===//

namespace {

/// Incremental bounded line framing over a raw fd. An overlong line is
/// consumed (never buffered past the bound) and reported Truncated.
struct FdLineReader {
  int Fd;
  size_t MaxBytes;
  std::string Buf;
  size_t Pos = 0;
  bool Eof = false;

  /// True with one line in \p Line (newline stripped, \r kept for the
  /// caller's trimming); false at EOF/error with nothing pending.
  bool next(std::string &Line, bool &Truncated) {
    Line.clear();
    Truncated = false;
    bool Discarding = false;
    while (true) {
      while (Pos < Buf.size()) {
        char C = Buf[Pos++];
        if (C == '\n') {
          if (Discarding)
            return true; // Truncated already set
          return true;
        }
        if (Discarding)
          continue;
        if (MaxBytes && Line.size() >= MaxBytes) {
          Truncated = true;
          Discarding = true;
          continue;
        }
        Line += C;
      }
      Buf.clear();
      Pos = 0;
      if (Eof)
        return !Line.empty() || Truncated;
      char Chunk[4096];
      ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
      if (N < 0 && errno == EINTR)
        continue;
      if (N <= 0) {
        Eof = true;
        continue;
      }
      Buf.assign(Chunk, static_cast<size_t>(N));
    }
  }
};

} // namespace

void XsolvedServer::readerLoop(std::shared_ptr<Connection> Conn) {
  FdLineReader Reader{Conn->Fd, Opts.MaxLineBytes};
  std::string Line;
  bool Truncated = false;
  size_t LineNo = 0;
  bool FirstLine = true;
  while (Conn->Open.load() && Reader.next(Line, Truncated)) {
    ++LineNo;
    // A browser or Prometheus scraper speaking HTTP gets the text
    // exposition and a close — detected on the very first line only.
    if (FirstLine && !Truncated && Line.rfind("GET ", 0) == 0) {
      serveHttpMetrics(*Conn);
      break;
    }
    FirstLine = false;
    handleLine(*Conn, Line, LineNo, Truncated);
  }
  Conn->Open.store(false);
  if (Conn->Fd >= 0)
    ::shutdown(Conn->Fd, SHUT_RDWR);
  // The fd itself is closed at server teardown (wait()), after the
  // dispatcher can no longer deliver to it.
}

void XsolvedServer::serveHttpMetrics(Connection &Conn) {
  std::string Body = MetricRegistry::global().prometheusText();
  std::string Resp = "HTTP/1.0 200 OK\r\n"
                     "Content-Type: text/plain; version=0.0.4\r\n"
                     "Content-Length: " +
                     std::to_string(Body.size()) + "\r\n\r\n" + Body;
  std::lock_guard<std::mutex> L(Conn.WriteMu);
  sendAll(Conn.Fd, Resp.data(), Resp.size());
}

void XsolvedServer::handleLine(Connection &Conn, const std::string &Line,
                               size_t LineNo, bool Truncated) {
  if (Truncated) {
    uint64_t Seq = Conn.NextSeq++;
    AnalysisResponse R;
    R.Ok = false;
    R.Error =
        "input line exceeds " + std::to_string(Opts.MaxLineBytes) + " bytes";
    R.ErrorLine = LineNo;
    R.ErrorByte = static_cast<long>(Opts.MaxLineBytes);
    deliver(Conn, Seq,
            responseToJson(R, /*IncludeVolatile=*/!Conn.Stable)->dump());
    return;
  }
  size_t First = Line.find_first_not_of(" \t\r");
  if (First == std::string::npos || Line[First] == '#')
    return; // blank/comment lines get no response and no seq
  std::string Error;
  size_t ErrByte = 0;
  JsonRef Obj = parseJson(Line, Error, &ErrByte);
  uint64_t Seq = Conn.NextSeq++;
  if (!Obj) {
    AnalysisResponse R;
    R.Ok = false;
    R.Error = "bad JSON: " + Error;
    R.ErrorLine = LineNo;
    R.ErrorByte = static_cast<long>(ErrByte);
    deliver(Conn, Seq,
            responseToJson(R, /*IncludeVolatile=*/!Conn.Stable)->dump());
    return;
  }
  std::string Op = Obj->str("op");
  if (Op == "config") {
    handleConfig(Conn, Seq, *Obj);
  } else if (Op == "metrics") {
    handleMetrics(Conn, Seq, *Obj);
  } else if (Op == "stats") {
    handleStats(Conn, Seq, *Obj);
  } else if (Op == "ping") {
    JsonRef O = JsonValue::object();
    std::string Id = Obj->str("id");
    if (!Id.empty())
      O->set("id", JsonValue::string(Id));
    O->set("ok", JsonValue::boolean(true));
    O->set("op", JsonValue::string("ping"));
    deliver(Conn, Seq, O->dump());
  } else if (Op == "drain") {
    JsonRef O = JsonValue::object();
    std::string Id = Obj->str("id");
    if (!Id.empty())
      O->set("id", JsonValue::string(Id));
    O->set("ok", JsonValue::boolean(true));
    O->set("draining", JsonValue::boolean(true));
    deliver(Conn, Seq, O->dump());
    requestDrain();
  } else {
    admit(Conn, Seq, *Obj, LineNo);
  }
}

void XsolvedServer::handleConfig(Connection &Conn, uint64_t Seq,
                                 const JsonValue &Obj) {
  std::string Id = Obj.str("id");
  auto Reject = [&](const std::string &Code, const std::string &Message,
                    const std::string &Key, const std::string &Value) {
    JsonRef O = JsonValue::object();
    if (!Id.empty())
      O->set("id", JsonValue::string(Id));
    O->set("ok", JsonValue::boolean(false));
    JsonRef E = errorObjectJson(Code, Message);
    if (!Key.empty())
      E->set("key", JsonValue::string(Key));
    if (!Value.empty())
      E->set("value", JsonValue::string(Value));
    O->set("error", E);
    Conn.Ns->Errors.fetch_add(1, std::memory_order_relaxed);
    deliver(Conn, Seq, O->dump());
  };

  static constexpr const char *KnownKeys[] = {
      "op", "id", "ns", "stable", "optimize", "share_fixpoints",
      "fixpoint_strategy"};
  for (const auto &[K, V] : Obj.members()) {
    if (K == "jobs") {
      Reject("invalid_config_value",
             "jobs is fixed at server start (the worker pool is shared by "
             "every client)",
             "jobs", "");
      return;
    }
    const std::string &Key = K;
    if (std::find_if(std::begin(KnownKeys), std::end(KnownKeys),
                     [&Key](const char *Known) { return Key == Known; }) ==
        std::end(KnownKeys)) {
      Reject("unknown_config_key", "unknown config key '" + K + "'", K, "");
      return;
    }
  }

  JsonRef NsName = Obj.get("ns");
  if (!NsName->isNull()) {
    if (NsName->type() != JsonValue::Type::String ||
        NsName->asString().empty()) {
      Reject("invalid_config_value", "ns must be a non-empty string", "ns",
             NsName->type() == JsonValue::Type::String ? NsName->asString()
                                                       : NsName->dump());
      return;
    }
    Conn.Ns = namespaceState(NsName->asString());
  }
  JsonRef Stable = Obj.get("stable");
  if (!Stable->isNull()) {
    if (Stable->type() != JsonValue::Type::Bool) {
      Reject("invalid_config_value", "stable must be a boolean", "stable",
             Stable->dump());
      return;
    }
    Conn.Stable = Stable->asBool();
  }
  JsonRef Optimize = Obj.get("optimize");
  if (!Optimize->isNull() && Optimize->type() != JsonValue::Type::Bool) {
    Reject("invalid_config_value", "optimize must be a boolean", "optimize",
           Optimize->dump());
    return;
  }
  JsonRef Share = Obj.get("share_fixpoints");
  if (!Share->isNull() && Share->type() != JsonValue::Type::Bool) {
    Reject("invalid_config_value", "share_fixpoints must be a boolean",
           "share_fixpoints", Share->dump());
    return;
  }
  JsonRef Strat = Obj.get("fixpoint_strategy");
  FixpointStrategy StratVal = FixpointStrategy::Bfs;
  bool HaveStrat = false;
  if (!Strat->isNull()) {
    if (Strat->type() != JsonValue::Type::String ||
        !parseFixpointStrategy(Strat->asString(), StratVal)) {
      std::string Given = Strat->type() == JsonValue::Type::String
                              ? Strat->asString()
                              : Strat->dump();
      Reject("invalid_config_value",
             "invalid fixpoint_strategy '" + Given +
                 "' (expected bfs, chaining, saturation or auto)",
             "fixpoint_strategy", Given);
      return;
    }
    HaveStrat = true;
  }

  NamespaceState &Ns = *Conn.Ns;
  bool EffOptimize, EffShare;
  FixpointStrategy EffStrategy;
  {
    std::lock_guard<std::mutex> L(Ns.Mu);
    if (!Optimize->isNull()) {
      Ns.HaveOptimize = true;
      Ns.Optimize = Optimize->asBool();
    }
    if (!Share->isNull()) {
      Ns.HaveShare = true;
      Ns.Share = Share->asBool();
    }
    if (HaveStrat) {
      Ns.HaveStrategy = true;
      Ns.Strategy = StratVal;
    }
    EffOptimize = Ns.HaveOptimize ? Ns.Optimize : Opts.Session.Optimize;
    EffShare = Ns.HaveShare ? Ns.Share : Opts.Session.ShareFixpoints;
    EffStrategy =
        Ns.HaveStrategy ? Ns.Strategy : Opts.Session.Solver.Strategy;
  }

  JsonRef O = JsonValue::object();
  if (!Id.empty())
    O->set("id", JsonValue::string(Id));
  O->set("ok", JsonValue::boolean(true));
  O->set("ns", JsonValue::string(Ns.Name));
  O->set("stable", JsonValue::boolean(Conn.Stable));
  O->set("jobs", JsonValue::number(static_cast<double>(Sess->jobs())));
  O->set("optimize", JsonValue::boolean(EffOptimize));
  O->set("share_fixpoints", JsonValue::boolean(EffShare));
  O->set("fixpoint_strategy",
         JsonValue::string(fixpointStrategyName(EffStrategy)));
  deliver(Conn, Seq, O->dump());
}

void XsolvedServer::handleMetrics(Connection &Conn, uint64_t Seq,
                                  const JsonValue &Obj) {
  JsonRef O = JsonValue::object();
  std::string Id = Obj.str("id");
  if (!Id.empty())
    O->set("id", JsonValue::string(Id));
  O->set("ok", JsonValue::boolean(true));
  JsonRef M = MetricRegistry::global().toJson(
      /*IncludeVolatile=*/!Conn.Stable);
  for (const auto &[K, V] : M->members())
    O->set(K, V);
  O->set("namespaces", namespacesJson());
  deliver(Conn, Seq, O->dump());
}

void XsolvedServer::handleStats(Connection &Conn, uint64_t Seq,
                                const JsonValue &Obj) {
  JsonRef O = JsonValue::object();
  std::string Id = Obj.str("id");
  if (!Id.empty())
    O->set("id", JsonValue::string(Id));
  O->set("ok", JsonValue::boolean(true));
  O->set("stats", statsToJson(Sess->stats()));
  O->set("namespaces", namespacesJson());
  deliver(Conn, Seq, O->dump());
}

void XsolvedServer::reject(Connection &Conn, uint64_t Seq,
                           const std::string &Id, const std::string &Code,
                           const std::string &Message) {
  AnalysisResponse R;
  R.Id = Id;
  R.Ok = false;
  R.ErrorCode = Code;
  R.Error = Message;
  deliver(Conn, Seq,
          responseToJson(R, /*IncludeVolatile=*/!Conn.Stable)->dump());
}

void XsolvedServer::admit(Connection &Conn, uint64_t Seq, const JsonValue &Obj,
                          size_t LineNo) {
  AnalysisRequest Req;
  std::string Error;
  if (!requestFromJson(Obj, Req, Error)) {
    AnalysisResponse R;
    R.Id = Obj.str("id");
    R.Ok = false;
    R.Error = Error;
    R.ErrorLine = LineNo;
    Conn.Ns->Errors.fetch_add(1, std::memory_order_relaxed);
    deliver(Conn, Seq,
            responseToJson(R, /*IncludeVolatile=*/!Conn.Stable)->dump());
    return;
  }

  Job J;
  J.Seq = Seq;
  J.Req = std::move(Req);
  J.Stable = Conn.Stable;
  J.Ns = Conn.Ns;
  JsonRef Priority = Obj.get("priority");
  if (Priority->type() == JsonValue::Type::Number)
    J.Priority = static_cast<int>(Priority->asNumber());
  J.EnqueueNs = nowSteadyNs();
  JsonRef Deadline = Obj.get("deadline_ms");
  if (Deadline->type() == JsonValue::Type::Number &&
      Deadline->asNumber() >= 0)
    J.DeadlineNs =
        J.EnqueueNs + static_cast<uint64_t>(Deadline->asNumber() * 1e6);
  {
    std::lock_guard<std::mutex> L(Conn.Ns->Mu);
    J.Optimize =
        Conn.Ns->HaveOptimize ? Conn.Ns->Optimize : Opts.Session.Optimize;
    J.Share =
        Conn.Ns->HaveShare ? Conn.Ns->Share : Opts.Session.ShareFixpoints;
    J.Strategy = Conn.Ns->HaveStrategy ? Conn.Ns->Strategy
                                       : Opts.Session.Solver.Strategy;
  }

  // Find this connection's shared_ptr (deliver from the dispatcher needs
  // shared ownership; the reader only has the raw ref).
  {
    std::lock_guard<std::mutex> L(ConnsMu);
    for (const auto &C : Conns)
      if (C.get() == &Conn) {
        J.Conn = C;
        break;
      }
  }
  if (!J.Conn)
    return; // connection already torn down

  std::shared_ptr<NamespaceState> Ns = J.Ns;
  {
    std::unique_lock<std::mutex> L(QueueMu);
    // Checked under QueueMu: once the dispatcher can observe
    // "Draining && queue empty" and exit, every admission afterwards
    // sees Draining here and rejects instead of enqueueing into a queue
    // nobody pops.
    if (Draining.load()) {
      L.unlock();
      Ns->Rejections.fetch_add(1, std::memory_order_relaxed);
      rejectionCounter("draining").add();
      reject(Conn, Seq, J.Req.Id, "draining",
             "server is draining and no longer accepts analysis requests");
      return;
    }
    if (Queue->Q.size() >= Opts.QueueLimit) {
      L.unlock();
      Ns->Rejections.fetch_add(1, std::memory_order_relaxed);
      rejectionCounter("overloaded").add();
      reject(Conn, Seq, J.Req.Id, "overloaded",
             "request queue is full (limit " +
                 std::to_string(Opts.QueueLimit) + "); retry later");
      return;
    }
    J.AdmitSeq = NextAdmitSeq++;
    Queue->Q.push(std::move(J));
    queueDepthGauge().set(static_cast<double>(Queue->Q.size()));
  }
  Ns->Requests.fetch_add(1, std::memory_order_relaxed);
  Ns->RequestsMetric->add();
  QueueCv.notify_one();
}

//===----------------------------------------------------------------------===//
// Dispatcher
//===----------------------------------------------------------------------===//

void XsolvedServer::dispatchLoop() {
  const size_t BatchMax = std::max<size_t>(1, Sess->jobs());
  while (true) {
    std::vector<Job> Batch, Expired;
    {
      std::unique_lock<std::mutex> L(QueueMu);
      // Drain overrides the debug pause: a paused server still finishes
      // its admitted work on shutdown.
      QueueCv.wait(L, [&] {
        return Draining.load() || (!Paused.load() && !Queue->Q.empty());
      });
      if (Queue->Q.empty() && Draining.load())
        break;
      if (Queue->Q.empty())
        continue;
      uint64_t Now = nowSteadyNs();
      while (!Queue->Q.empty() && Batch.size() < BatchMax) {
        Job J = Queue->Q.top();
        Queue->Q.pop();
        if (J.DeadlineNs && Now > J.DeadlineNs)
          Expired.push_back(std::move(J));
        else
          Batch.push_back(std::move(J));
      }
      queueDepthGauge().set(static_cast<double>(Queue->Q.size()));
    }
    for (Job &J : Expired) {
      deadlineMissCounter().add();
      J.Ns->DeadlineMisses.fetch_add(1, std::memory_order_relaxed);
      reject(*J.Conn, J.Seq, J.Req.Id, "deadline_exceeded",
             "deadline expired before the request reached a worker");
    }
    if (!Batch.empty())
      dispatchBatch(Batch);
  }
}

void XsolvedServer::dispatchBatch(std::vector<Job> &Batch) {
  Histogram &QueueWait = queueWaitHistogram();
  uint64_t Now = nowSteadyNs();
  for (const Job &J : Batch) {
    QueueWait.observe((Now - J.EnqueueNs) / 1e6);
    Tracer::global().recordSpanFrom("server.queue_wait", J.EnqueueNs);
  }
  std::vector<AnalysisResponse> Resps(Batch.size());
  Sess->pool().parallelFor(Batch.size(), [&](size_t I, size_t Worker) {
    AnalysisContext &Ctx = Sess->workerContext(Worker);
    // Apply the namespace-config snapshot taken at admission. The
    // setters early-out when the value is unchanged, so a homogeneous
    // stream costs three compares per request.
    Ctx.setOptimizePrePass(Batch[I].Optimize);
    Ctx.setShareFixpoints(Batch[I].Share);
    Ctx.setFixpointStrategy(Batch[I].Strategy);
    Resps[I] = runRequest(Ctx, Batch[I].Req);
  });
  for (size_t I = 0; I < Batch.size(); ++I) {
    Job &J = Batch[I];
    const AnalysisResponse &R = Resps[I];
    if (!R.Ok)
      J.Ns->Errors.fetch_add(1, std::memory_order_relaxed);
    else if (R.FromCache)
      J.Ns->CacheHits.fetch_add(1, std::memory_order_relaxed);
    else
      J.Ns->CacheMisses.fetch_add(1, std::memory_order_relaxed);
    J.Ns->SolverTimeUs.fetch_add(
        static_cast<uint64_t>(R.Stats.TimeMs * 1000.0),
        std::memory_order_relaxed);
    deliver(*J.Conn, J.Seq,
            responseToJson(R, /*IncludeVolatile=*/!J.Stable)->dump());
  }
}

//===----------------------------------------------------------------------===//
// Delivery
//===----------------------------------------------------------------------===//

void XsolvedServer::deliver(Connection &Conn, uint64_t Seq, std::string Line) {
  Line += '\n';
  std::lock_guard<std::mutex> L(Conn.WriteMu);
  Conn.Pending.emplace(Seq, std::move(Line));
  while (!Conn.Pending.empty() &&
         Conn.Pending.begin()->first == Conn.NextDeliver) {
    const std::string &Out = Conn.Pending.begin()->second;
    if (Conn.Open.load()) {
      if (!sendAll(Conn.Fd, Out.data(), Out.size()))
        Conn.Open.store(false); // keep draining the buffer, drop the bytes
    }
    Conn.Pending.erase(Conn.Pending.begin());
    ++Conn.NextDeliver;
  }
}
