//===- Client.cpp - JSON-lines socket client -------------------------------===//

#include "server/Client.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace xsa;

bool LineClient::connectTcp(const std::string &Host, int Port,
                            std::string &Error) {
  closeConn();
  Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    Error = "socket: " + std::string(std::strerror(errno));
    return false;
  }
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(static_cast<uint16_t>(Port));
  if (::inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1) {
    Error = "bad host address " + Host;
    closeConn();
    return false;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    Error = "connect " + Host + ":" + std::to_string(Port) + ": " +
            std::strerror(errno);
    closeConn();
    return false;
  }
  return true;
}

bool LineClient::connectUnix(const std::string &Path, std::string &Error) {
  closeConn();
  sockaddr_un Addr{};
  if (Path.size() >= sizeof(Addr.sun_path)) {
    Error = "unix socket path too long";
    return false;
  }
  Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Error = "socket: " + std::string(std::strerror(errno));
    return false;
  }
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    Error = "connect " + Path + ": " + std::strerror(errno);
    closeConn();
    return false;
  }
  return true;
}

bool LineClient::sendLine(const std::string &Line) {
  if (Fd < 0)
    return false;
  std::string Out = Line;
  Out += '\n';
  const char *Data = Out.data();
  size_t Len = Out.size();
  while (Len > 0) {
    ssize_t N = ::send(Fd, Data, Len, MSG_NOSIGNAL);
    if (N <= 0) {
      if (N < 0 && errno == EINTR)
        continue;
      return false;
    }
    Data += static_cast<size_t>(N);
    Len -= static_cast<size_t>(N);
  }
  return true;
}

bool LineClient::recvLine(std::string &Line) {
  Line.clear();
  if (Fd < 0)
    return false;
  while (true) {
    size_t Nl = Buf.find('\n');
    if (Nl != std::string::npos) {
      Line = Buf.substr(0, Nl);
      Buf.erase(0, Nl + 1);
      return true;
    }
    char Chunk[4096];
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0)
      return false;
    Buf.append(Chunk, static_cast<size_t>(N));
  }
}

bool LineClient::pollLine(std::string &Line, bool &Closed) {
  Line.clear();
  Closed = false;
  if (Fd < 0) {
    Closed = true;
    return false;
  }
  while (true) {
    size_t Nl = Buf.find('\n');
    if (Nl != std::string::npos) {
      Line = Buf.substr(0, Nl);
      Buf.erase(0, Nl + 1);
      return true;
    }
    char Chunk[4096];
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), MSG_DONTWAIT);
    if (N < 0 && errno == EINTR)
      continue;
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      return false; // nothing readable right now; no complete line
    if (N <= 0) {
      Closed = true;
      return false;
    }
    Buf.append(Chunk, static_cast<size_t>(N));
  }
}

void LineClient::closeConn() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  Buf.clear();
}
