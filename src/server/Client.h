//===- Client.h - JSON-lines socket client ------------------------*- C++ -*-===//
//
// Part of the xsa project (PLDI 2007 XPath/type analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small blocking JSON-lines client for xsolved: connect over TCP or
/// a unix-domain socket, send request lines, read response lines. Used
/// by `xsolved client`, bench_server's load generator and the server
/// tests — one framing implementation on the client side, matching the
/// server's one-response-per-line contract.
///
//===----------------------------------------------------------------------===//

#ifndef XSA_SERVER_CLIENT_H
#define XSA_SERVER_CLIENT_H

#include <string>

namespace xsa {

class LineClient {
public:
  LineClient() = default;
  ~LineClient() { closeConn(); }
  LineClient(const LineClient &) = delete;
  LineClient &operator=(const LineClient &) = delete;
  LineClient(LineClient &&O) noexcept : Fd(O.Fd), Buf(std::move(O.Buf)) {
    O.Fd = -1;
  }

  /// False (with \p Error) when the connection cannot be established.
  bool connectTcp(const std::string &Host, int Port, std::string &Error);
  bool connectUnix(const std::string &Path, std::string &Error);
  bool connected() const { return Fd >= 0; }

  /// Sends \p Line plus the terminating newline. False on a send error.
  bool sendLine(const std::string &Line);

  /// Blocks for the next response line (newline stripped). False at
  /// EOF — the server closed the connection.
  bool recvLine(std::string &Line);

  /// Non-blocking variant: true with the next complete response line
  /// when one is already buffered or readable without waiting, false
  /// otherwise. \p Closed is set when the server closed the connection.
  /// Lets a pipelining sender interleave reads with its writes, so the
  /// two peers' socket buffers can never fill up against each other.
  bool pollLine(std::string &Line, bool &Closed);

  void closeConn();

private:
  int Fd = -1;
  std::string Buf; ///< received-but-unconsumed bytes
};

} // namespace xsa

#endif // XSA_SERVER_CLIENT_H
