//===- Server.h - Long-lived multi-tenant analysis server --------*- C++ -*-===//
//
// Part of the xsa project (PLDI 2007 XPath/type analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `xsolved`: a daemon wrapping ONE shared AnalysisSession behind
/// JSON-lines over TCP and/or a unix-domain socket, so concurrent
/// clients share the sharded result cache, the SharedFixpointStore and
/// the StrategyChoiceStore — the second client's containment check is a
/// cache hit even when the first client asked it.
///
/// Concurrency model. The session's BDD machinery is single-threaded by
/// design (see service/Session.h), so the server never runs a request on
/// a socket thread. Instead:
///
///  * one reader thread per connection parses lines, answers control
///    ops inline, and ADMITS analysis requests into a bounded priority
///    queue (admission control: a full queue answers "overloaded"
///    immediately, it never blocks the client or buffers unboundedly);
///  * one dispatcher thread pops admitted jobs (priority desc, FIFO
///    within a priority), drops jobs whose deadline already expired
///    ("deadline_exceeded" — an expired job never occupies a worker),
///    and dispatches the rest across the session's WorkerPool exactly
///    like `xsolve batch --jobs N` does;
///  * responses return to their connection through a per-connection
///    sequencer that restores request order, so every client observes
///    the same stream a serial `xsolve batch` would produce — with the
///    per-connection `stable` encoding, byte-identical to it;
///  * one writer thread per connection drains that sequencer to the
///    socket. The dispatcher only enqueues response lines and never
///    performs socket I/O, so a client that stops reading stalls its
///    own writer thread — not the dispatcher, not other tenants. The
///    outbound buffer is bounded (MaxOutboundBytes); a connection that
///    overflows it is dropped.
///
/// Tenancy. A connection starts in the "default" namespace and may
/// switch with {"op":"config","ns":"team-a"}. A namespace carries its
/// own config overrides (optimize, share_fixpoints, fixpoint_strategy)
/// and its own request statistics; the caches underneath stay shared —
/// namespaces isolate *configuration and accounting*, not results,
/// which is the point of a shared-session server (reads through a
/// shared cache cannot change any verdict; see DESIGN.md).
///
/// Shutdown. SIGTERM (wired in examples/xsolved.cpp) or a client
/// {"op":"drain"} stops accepting connections, answers further analysis
/// requests with "draining", finishes everything already admitted,
/// delivers the responses, persists the cache file, and exits cleanly.
///
//===----------------------------------------------------------------------===//

#ifndef XSA_SERVER_SERVER_H
#define XSA_SERVER_SERVER_H

#include "service/Json.h"
#include "service/Session.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace xsa {

class Counter;

namespace detail {
struct FdLineReader;
} // namespace detail

struct ServerOptions {
  /// TCP listener. Port < 0 disables TCP; port 0 binds an ephemeral
  /// port (read it back with tcpPort() — what the tests and the
  /// --port-file flag use).
  std::string Host = "127.0.0.1";
  int TcpPort = -1;
  /// Unix-domain listener ("" disables). An existing socket file at the
  /// path is unlinked before bind.
  std::string UnixPath;
  /// Admission control: most analysis requests queued (not yet
  /// dispatched) at once, across all connections. A full queue answers
  /// {"error":{"code":"overloaded"}} immediately.
  size_t QueueLimit = 256;
  /// Longest accepted input line (see BatchStreamOptions::MaxLineBytes).
  size_t MaxLineBytes = size_t(1) << 20;
  /// Most response bytes buffered for one connection whose client is
  /// not reading (the kernel socket buffer is full). The dispatcher
  /// never blocks on a socket; it parks response lines here for the
  /// connection's writer thread, and a connection that overflows this
  /// bound is dropped rather than buffered unboundedly.
  size_t MaxOutboundBytes = size_t(32) << 20;
  /// Grace period on shutdown for writer threads to flush responses to
  /// clients that are slow to read; connections still unflushed after
  /// this many milliseconds are force-closed so drain always completes.
  size_t DrainFlushTimeoutMs = 5000;
  /// Tail-sampled slow-query recorder (obs/SlowQuery.h): admitted
  /// requests whose total latency (queue wait + execution) reaches this
  /// many milliseconds — or that error, or miss their deadline — are
  /// captured with their per-stage breakdown. 0 captures everything.
  double SlowThresholdMs = 250;
  /// Most slowlog entries retained ({"op":"slowlog"} / /slowlog).
  size_t SlowlogCapacity = 128;
  /// Most concurrent HTTP (scraper/introspection) connections; above
  /// the cap a connection is answered 503 and closed, so scrapers can
  /// never starve the analysis plane of reader threads.
  size_t HttpMaxConns = 8;
  /// Idle keep-alive timeout for HTTP connections: a scraper that sends
  /// no new request within this many milliseconds is closed.
  size_t HttpIdleTimeoutMs = 5000;
  /// The shared session's knobs (jobs = worker count; fixed for the
  /// server's lifetime — the pool is built once at start()).
  SessionOptions Session;
  /// When non-empty: loaded at start() if present, persisted on drain.
  std::string CacheFile;
  /// Default per-connection response encoding; each connection may
  /// override with {"op":"config","stable":true}.
  bool DefaultStable = false;
};

/// Per-namespace configuration overrides and accounting. Config fields
/// are guarded by Mu and snapshotted into each job at admission;
/// counters are relaxed atomics (independent tallies, read after the
/// dispatcher's barrier or at export time).
struct NamespaceState {
  explicit NamespaceState(std::string Name);

  const std::string Name;

  std::mutex Mu;
  bool HaveOptimize = false, Optimize = false;
  bool HaveShare = false, Share = false;
  bool HaveStrategy = false;
  FixpointStrategy Strategy = FixpointStrategy::Bfs;
  bool HaveBackend = false;
  BddBackendKind Backend = BddBackendKind::Serial;

  std::atomic<uint64_t> Requests{0};
  std::atomic<uint64_t> Errors{0};
  std::atomic<uint64_t> CacheHits{0};
  std::atomic<uint64_t> CacheMisses{0};
  std::atomic<uint64_t> DeadlineMisses{0};
  std::atomic<uint64_t> Rejections{0};
  std::atomic<uint64_t> SolverTimeUs{0};
  std::atomic<uint64_t> SlowQueries{0};
  /// Requests of this namespace currently on a worker (set around the
  /// dispatcher's parallelFor) — the per-tenant in-flight figure of
  /// {"op":"status"} / /statusz.
  std::atomic<uint64_t> InFlight{0};

  /// xsa_server_requests_total{ns="..."} — registered at namespace
  /// creation so /metrics carries a per-tenant series.
  Counter *RequestsMetric = nullptr;
};

class XsolvedServer {
public:
  explicit XsolvedServer(ServerOptions Opts);
  ~XsolvedServer();
  XsolvedServer(const XsolvedServer &) = delete;
  XsolvedServer &operator=(const XsolvedServer &) = delete;

  /// Binds the listeners, loads the cache file (when configured and
  /// present), builds the worker pool and starts the accept and
  /// dispatcher threads. False (with \p Error) on bind/listen failure.
  bool start(std::string &Error);

  /// The bound TCP port (after start(); 0 when TCP is disabled).
  int tcpPort() const { return BoundPort; }

  /// Initiates graceful drain: stop accepting, reject new analysis
  /// requests with "draining", finish and deliver everything admitted.
  /// Idempotent; safe from any thread (including the signal-watching
  /// main loop of xsolved).
  void requestDrain();

  /// Blocks until the server has fully stopped — queue drained,
  /// connections closed, cache persisted. Returns immediately if
  /// already stopped. Call requestDrain() first (or let a client's
  /// {"op":"drain"} do it).
  void wait();

  /// requestDrain() + wait().
  void drainAndWait();

  /// True once a drain was requested (by requestDrain, a SIGTERM
  /// watcher, or a client's {"op":"drain"}) — what the daemon's main
  /// loop polls to know a client asked the server down.
  bool draining() const { return Draining.load(); }

  /// The shared session (for tests and stats endpoints).
  AnalysisSession &session() { return *Sess; }

  /// Test hook: while paused the dispatcher pops nothing, so the queue
  /// fills deterministically (overload tests) and deadlines expire
  /// (deadline tests). Never used outside tests.
  void debugPauseDispatch(bool Paused);

  /// Looks up (or creates) a namespace. Exposed for tests.
  std::shared_ptr<NamespaceState> namespaceState(const std::string &Name);

private:
  struct Connection;
  struct Job;
  struct JobQueue;

  bool acceptOne(int ListenFd);
  void acceptLoop();
  void dispatchLoop();
  void readerLoop(std::shared_ptr<Connection> Conn);
  void writerLoop(std::shared_ptr<Connection> Conn);
  void handleLine(Connection &Conn, const std::string &Line, size_t LineNo,
                  bool Truncated);
  void handleConfig(Connection &Conn, uint64_t Seq, const JsonValue &Obj);
  void handleMetrics(Connection &Conn, uint64_t Seq, const JsonValue &Obj);
  void handleStats(Connection &Conn, uint64_t Seq, const JsonValue &Obj);
  void handleStatus(Connection &Conn, uint64_t Seq, const JsonValue &Obj);
  void handleSlowlog(Connection &Conn, uint64_t Seq, const JsonValue &Obj);
  void handleLog(Connection &Conn, uint64_t Seq, const JsonValue &Obj);
  void admit(Connection &Conn, uint64_t Seq, const JsonValue &Obj,
             size_t LineNo);
  void dispatchBatch(std::vector<Job> &Batch);
  void deliver(Connection &Conn, uint64_t Seq, std::string Line);
  /// \p Stable is the caller's snapshot of the response encoding: the
  /// reader passes the connection's current value, the dispatcher the
  /// job's admission-time snapshot — it must never re-read Conn.Stable,
  /// which only the reader thread may touch.
  void reject(Connection &Conn, uint64_t Seq, const std::string &Id,
              bool Stable, const std::string &Code, const std::string &Message,
              const std::string &Rid = std::string());
  /// HTTP/1.1 side of the listener, entered when a connection's first
  /// line is a GET: serves /metrics, /healthz, /statusz, /slowlog and
  /// /logz with keep-alive (idle timeout, connection cap) on the reader
  /// thread. \p Reader still holds whatever the client pipelined.
  void serveHttpConnection(Connection &Conn, detail::FdLineReader &Reader,
                           const std::string &RequestLine);
  void closeListeners();
  void shutdownConnections();
  JsonRef namespacesJson();
  JsonRef statusJson();
  JsonRef slowlogJson(size_t MaxRecords);
  JsonRef logJson(size_t MaxRecords);

  ServerOptions Opts;
  std::unique_ptr<AnalysisSession> Sess;

  int TcpFd = -1, UnixFd = -1;
  int BoundPort = 0;

  std::thread AcceptThread, DispatchThread;

  std::mutex ConnsMu;
  std::vector<std::shared_ptr<Connection>> Conns;
  uint64_t NextConnId = 1;

  std::mutex NsMu;
  std::map<std::string, std::shared_ptr<NamespaceState>> Namespaces;

  std::mutex QueueMu;
  std::condition_variable QueueCv;
  std::unique_ptr<JobQueue> Queue; ///< guarded by QueueMu
  uint64_t NextAdmitSeq = 0;       ///< guarded by QueueMu

  std::atomic<bool> Draining{false};
  std::atomic<bool> Paused{false};
  std::atomic<bool> Started{false};
  std::atomic<bool> Stopped{false};
  std::mutex StopMu; ///< serializes wait()

  uint64_t StartSteadyNs = 0; ///< set by start(); uptime origin
  std::atomic<uint64_t> InFlight{0}; ///< requests currently on workers
  std::atomic<int> HttpConns{0};     ///< live HTTP connections (cap)
};

} // namespace xsa

#endif // XSA_SERVER_SERVER_H
