//===- Json.cpp - Minimal JSON reader/writer -------------------------------===//

#include "service/Json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>

using namespace xsa;

JsonRef JsonValue::null() { return std::make_shared<JsonValue>(); }

JsonRef JsonValue::boolean(bool B) {
  auto V = std::make_shared<JsonValue>();
  V->Ty = Type::Bool;
  V->B = B;
  return V;
}

JsonRef JsonValue::number(double N) {
  auto V = std::make_shared<JsonValue>();
  V->Ty = Type::Number;
  V->Num = N;
  return V;
}

JsonRef JsonValue::string(std::string S) {
  auto V = std::make_shared<JsonValue>();
  V->Ty = Type::String;
  V->Str = std::move(S);
  return V;
}

JsonRef JsonValue::array() {
  auto V = std::make_shared<JsonValue>();
  V->Ty = Type::Array;
  return V;
}

JsonRef JsonValue::object() {
  auto V = std::make_shared<JsonValue>();
  V->Ty = Type::Object;
  return V;
}

bool JsonValue::asBool(bool Default) const {
  return Ty == Type::Bool ? B : Default;
}

double JsonValue::asNumber(double Default) const {
  return Ty == Type::Number ? Num : Default;
}

const std::string &JsonValue::asString() const {
  static const std::string Empty;
  return Ty == Type::String ? Str : Empty;
}

JsonRef JsonValue::get(const std::string &Key) const {
  for (const auto &[K, V] : Members)
    if (K == Key)
      return V;
  return null();
}

void JsonValue::set(const std::string &Key, JsonRef V) {
  for (auto &[K, Old] : Members)
    if (K == Key) {
      Old = std::move(V);
      return;
    }
  Members.emplace_back(Key, std::move(V));
}

std::string JsonValue::str(const std::string &Key,
                           const std::string &Default) const {
  JsonRef V = get(Key);
  return V->type() == Type::String ? V->asString() : Default;
}

bool JsonValue::has(const std::string &Key) const {
  for (const auto &[K, V] : Members)
    if (K == Key)
      return true;
  return false;
}

std::string xsa::jsonQuote(const std::string &S) {
  std::string Out = "\"";
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        // Remaining control characters get the \u form. Format from the
        // unsigned value: char may be signed, and a sign-extended int
        // would print as 8 hex digits.
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(C)));
        Out += Buf;
      } else {
        // Bytes >= 0x20 — including DEL and non-ASCII (UTF-8) bytes —
        // are legal in JSON strings and pass through verbatim, so
        // multi-byte sequences round-trip untouched.
        Out += C;
      }
    }
  }
  Out += '"';
  return Out;
}

std::string JsonValue::dump() const {
  switch (Ty) {
  case Type::Null:
    return "null";
  case Type::Bool:
    return B ? "true" : "false";
  case Type::Number: {
    // Integers (the common case: counters, ids) print without a point.
    if (Num == static_cast<double>(static_cast<long long>(Num))) {
      std::ostringstream OS;
      OS << static_cast<long long>(Num);
      return OS.str();
    }
    std::ostringstream OS;
    OS << Num;
    return OS.str();
  }
  case Type::String:
    return jsonQuote(Str);
  case Type::Array: {
    std::string Out = "[";
    for (size_t I = 0; I < Items.size(); ++I) {
      if (I)
        Out += ',';
      Out += Items[I]->dump();
    }
    return Out + "]";
  }
  case Type::Object: {
    std::string Out = "{";
    bool First = true;
    for (const auto &[K, V] : Members) {
      if (!First)
        Out += ',';
      First = false;
      Out += jsonQuote(K) + ":" + V->dump();
    }
    return Out + "}";
  }
  }
  return "null";
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace {

class Parser {
public:
  Parser(const std::string &Text, std::string &Error, size_t *ErrorByte)
      : Text(Text), Error(Error), ErrorByte(ErrorByte) {}

  JsonRef parse() {
    JsonRef V = value();
    if (!V)
      return nullptr;
    skipWs();
    if (Pos != Text.size()) {
      fail("trailing characters after JSON value");
      return nullptr;
    }
    return V;
  }

private:
  const std::string &Text;
  std::string &Error;
  size_t *ErrorByte;
  size_t Pos = 0;

  void fail(const std::string &Msg) {
    if (Error.empty()) {
      Error = Msg + " at offset " + std::to_string(Pos);
      if (ErrorByte)
        *ErrorByte = Pos;
    }
  }

  void skipWs() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  bool consume(char C) {
    skipWs();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool literal(const char *Lit) {
    size_t N = std::string(Lit).size();
    if (Text.compare(Pos, N, Lit) == 0) {
      Pos += N;
      return true;
    }
    return false;
  }

  JsonRef value() {
    skipWs();
    if (Pos >= Text.size()) {
      fail("unexpected end of input");
      return nullptr;
    }
    char C = Text[Pos];
    if (C == '{')
      return object();
    if (C == '[')
      return array();
    if (C == '"')
      return string();
    if (C == 't') {
      if (literal("true"))
        return JsonValue::boolean(true);
      fail("invalid literal");
      return nullptr;
    }
    if (C == 'f') {
      if (literal("false"))
        return JsonValue::boolean(false);
      fail("invalid literal");
      return nullptr;
    }
    if (C == 'n') {
      if (literal("null"))
        return JsonValue::null();
      fail("invalid literal");
      return nullptr;
    }
    return number();
  }

  JsonRef object() {
    ++Pos; // '{'
    JsonRef O = JsonValue::object();
    skipWs();
    if (consume('}'))
      return O;
    while (true) {
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != '"') {
        fail("expected object key");
        return nullptr;
      }
      JsonRef K = string();
      if (!K)
        return nullptr;
      if (!consume(':')) {
        fail("expected ':'");
        return nullptr;
      }
      JsonRef V = value();
      if (!V)
        return nullptr;
      O->set(K->asString(), V);
      if (consume(','))
        continue;
      if (consume('}'))
        return O;
      fail("expected ',' or '}'");
      return nullptr;
    }
  }

  JsonRef array() {
    ++Pos; // '['
    JsonRef A = JsonValue::array();
    skipWs();
    if (consume(']'))
      return A;
    while (true) {
      JsonRef V = value();
      if (!V)
        return nullptr;
      A->push(V);
      if (consume(','))
        continue;
      if (consume(']'))
        return A;
      fail("expected ',' or ']'");
      return nullptr;
    }
  }

  JsonRef string() {
    ++Pos; // '"'
    std::string Out;
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return JsonValue::string(std::move(Out));
      if (C == '\\') {
        if (Pos >= Text.size())
          break;
        char E = Text[Pos++];
        switch (E) {
        case '"':
          Out += '"';
          break;
        case '\\':
          Out += '\\';
          break;
        case '/':
          Out += '/';
          break;
        case 'b':
          Out += '\b';
          break;
        case 'f':
          Out += '\f';
          break;
        case 'n':
          Out += '\n';
          break;
        case 'r':
          Out += '\r';
          break;
        case 't':
          Out += '\t';
          break;
        case 'u': {
          if (Pos + 4 > Text.size()) {
            fail("truncated \\u escape");
            return nullptr;
          }
          unsigned Code = 0;
          for (int I = 0; I < 4; ++I) {
            char H = Text[Pos++];
            Code <<= 4;
            if (H >= '0' && H <= '9')
              Code += H - '0';
            else if (H >= 'a' && H <= 'f')
              Code += H - 'a' + 10;
            else if (H >= 'A' && H <= 'F')
              Code += H - 'A' + 10;
            else {
              fail("invalid \\u escape");
              return nullptr;
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are passed
          // through as two separate 3-byte sequences; good enough for
          // the batch protocol, which is ASCII in practice).
          if (Code < 0x80) {
            Out += static_cast<char>(Code);
          } else if (Code < 0x800) {
            Out += static_cast<char>(0xC0 | (Code >> 6));
            Out += static_cast<char>(0x80 | (Code & 0x3F));
          } else {
            Out += static_cast<char>(0xE0 | (Code >> 12));
            Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
            Out += static_cast<char>(0x80 | (Code & 0x3F));
          }
          break;
        }
        default:
          fail("invalid escape");
          return nullptr;
        }
      } else {
        Out += C;
      }
    }
    fail("unterminated string");
    return nullptr;
  }

  JsonRef number() {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-'))
      ++Pos;
    if (Pos == Start) {
      fail("expected a JSON value");
      return nullptr;
    }
    char *End = nullptr;
    std::string Num = Text.substr(Start, Pos - Start);
    double D = std::strtod(Num.c_str(), &End);
    if (!End || *End != '\0') {
      fail("malformed number");
      return nullptr;
    }
    return JsonValue::number(D);
  }
};

} // namespace

JsonRef xsa::parseJson(const std::string &Text, std::string &Error,
                       size_t *ErrorByte) {
  Error.clear();
  Parser P(Text, Error, ErrorByte);
  return P.parse();
}
