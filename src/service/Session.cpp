//===- Session.cpp - Long-lived analysis session ---------------------------===//

#include "service/Session.h"

#include "bdd/Snapshot.h"
#include "service/Json.h"
#include "tree/Xml.h"

#include <algorithm>
#include <array>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <thread>

using namespace xsa;

namespace {

size_t resolveJobs(size_t Jobs) {
  if (Jobs == 0) {
    Jobs = std::thread::hardware_concurrency();
    if (Jobs == 0)
      Jobs = 1;
  }
  // Each job is a thread plus a full solver context; a nonsense value
  // (wrapped negative, typo'd protocol field) must not translate into
  // unbounded thread/arena allocation.
  return std::min(Jobs, AnalysisSession::MaxJobs);
}

} // namespace

AnalysisSession::AnalysisSession(SessionOptions SOpts)
    : Opts(SOpts), Cache(SOpts.CacheCapacity, SOpts.CacheShards),
      Fixpoints(SOpts.FixpointCapacity, SOpts.CacheShards),
      Main(SOpts.Solver, &Cache, &Counters, &Fixpoints, &OptSeeds,
           &StratChoices) {
  Opts.Jobs = resolveJobs(Opts.Jobs);
  Main.setOptimizePrePass(Opts.Optimize);
  Main.setShareFixpoints(Opts.ShareFixpoints);
}

AnalysisSession::AnalysisSession(SolverOptions Opts, size_t CacheCapacity)
    : AnalysisSession(SessionOptions{Opts, CacheCapacity,
                                     /*CacheShards=*/8, /*Jobs=*/1}) {}

void AnalysisSession::setOptimize(bool On) {
  Opts.Optimize = On;
  Main.setOptimizePrePass(On);
  for (auto &W : Workers)
    W->setOptimizePrePass(On);
}

void AnalysisSession::setShareFixpoints(bool On) {
  Opts.ShareFixpoints = On;
  Main.setShareFixpoints(On);
  for (auto &W : Workers)
    W->setShareFixpoints(On);
}

void AnalysisSession::setFixpointStrategy(FixpointStrategy S) {
  Opts.Solver.Strategy = S;
  Main.setFixpointStrategy(S);
  for (auto &W : Workers)
    W->setFixpointStrategy(S);
}

void AnalysisSession::setBddBackend(BddBackendKind K) {
  Opts.Solver.Backend = K;
  Main.setBddBackend(K);
  for (auto &W : Workers)
    W->setBddBackend(K);
}

void AnalysisSession::setBddThreads(unsigned N) {
  Opts.Solver.BddThreads = N;
  Main.setBddThreads(N);
  for (auto &W : Workers)
    W->setBddThreads(N);
}

AnalysisResult AnalysisSession::emptiness(const ExprRef &E, Formula Chi) {
  return analyzer().emptiness(E, Chi);
}

AnalysisResult AnalysisSession::containment(const ExprRef &E1, Formula Chi1,
                                            const ExprRef &E2, Formula Chi2) {
  return analyzer().containment(E1, Chi1, E2, Chi2);
}

AnalysisResult AnalysisSession::overlap(const ExprRef &E1, Formula Chi1,
                                        const ExprRef &E2, Formula Chi2) {
  return analyzer().overlap(E1, Chi1, E2, Chi2);
}

AnalysisResult AnalysisSession::coverage(const ExprRef &E, Formula Chi,
                                         const std::vector<ExprRef> &Others,
                                         const std::vector<Formula> &OtherChis) {
  return analyzer().coverage(E, Chi, Others, OtherChis);
}

AnalysisResult AnalysisSession::equivalence(const ExprRef &E1, Formula Chi1,
                                            const ExprRef &E2, Formula Chi2) {
  return analyzer().equivalence(E1, Chi1, E2, Chi2);
}

AnalysisResult AnalysisSession::staticTypeCheck(const ExprRef &E, Formula ChiIn,
                                                Formula OutType) {
  return analyzer().staticTypeCheck(E, ChiIn, OutType);
}

SolverResult AnalysisSession::satisfiable(Formula Psi) {
  return Main.satisfiable(Psi);
}

ExprRef AnalysisSession::query(const std::string &XPath, std::string &Error) {
  return Main.query(XPath, Error);
}

Formula AnalysisSession::typeFormula(const std::string &Name,
                                     std::string &Error) {
  return Main.typeFormula(Name, Error);
}

Formula AnalysisSession::typeContext(const std::string &Name,
                                     std::string &Error) {
  return Main.typeContext(Name, Error);
}

void AnalysisSession::setJobs(size_t Jobs) {
  Jobs = resolveJobs(Jobs);
  if (Jobs == Opts.Jobs)
    return;
  Opts.Jobs = Jobs;
  // Resize lazily: the pool is rebuilt by the next pool() call. Worker
  // contexts are retained — shrinking and re-growing keeps them warm.
  if (Pool && Pool->threads() != Jobs)
    Pool.reset();
}

WorkerPool &AnalysisSession::pool() {
  if (!Pool)
    Pool = std::make_unique<WorkerPool>(Opts.Jobs);
  while (Workers.size() < Opts.Jobs) {
    Workers.push_back(std::make_unique<AnalysisContext>(
        Opts.Solver, &Cache, &Counters, &Fixpoints, &OptSeeds,
        &StratChoices));
    Workers.back()->setOptimizePrePass(Opts.Optimize);
    Workers.back()->setShareFixpoints(Opts.ShareFixpoints);
  }
  return *Pool;
}

//===----------------------------------------------------------------------===//
// Persistent cache
//===----------------------------------------------------------------------===//

/// Persistent format versions. v1 carried result entries only; v2 adds
/// fixpoint-store sequences ("fx"), optimized query forms ("oq") and —
/// later, without a version bump, since readers skip line shapes they
/// do not recognize — per-lean strategy choices ("st").
/// Bump CacheFormatVersion when a line shape changes incompatibly;
/// loadCache rejects versions it does not know instead of guessing.
static constexpr int CacheFormatVersion = 2;

bool AnalysisSession::saveCache(const std::string &Path,
                                std::string &Error) const {
  std::ofstream Out(Path, std::ios::trunc);
  if (!Out) {
    Error = "cannot write cache file " + Path;
    return false;
  }
  JsonRef Header = JsonValue::object();
  Header->set("xsa_cache", JsonValue::number(CacheFormatVersion));
  Out << Header->dump() << "\n";
  // Collect, then emit least-recently-used first, so loading in file
  // order reproduces each shard's recency order.
  std::vector<JsonRef> Lines;
  Cache.forEachEntry([&](const std::string &Key, uint32_t OptsKey,
                         const SolverResult &R) {
    JsonRef O = JsonValue::object();
    O->set("k", JsonValue::string(Key));
    O->set("o", JsonValue::number(static_cast<double>(OptsKey)));
    O->set("sat", JsonValue::boolean(R.Satisfiable));
    O->set("lean", JsonValue::number(static_cast<double>(R.Stats.LeanSize)));
    O->set("iter", JsonValue::number(static_cast<double>(R.Stats.Iterations)));
    O->set("bdd",
           JsonValue::number(static_cast<double>(R.Stats.PeakBddNodes)));
    O->set("time_ms", JsonValue::number(R.Stats.TimeMs));
    if (R.Model)
      O->set("model", JsonValue::string(printXml(*R.Model)));
    Lines.push_back(O);
  });
  for (auto It = Lines.rbegin(); It != Lines.rend(); ++It)
    Out << (*It)->dump() << "\n";
  // Fixpoint sequences, same LRU treatment.
  std::vector<JsonRef> FxLines;
  Fixpoints.forEachEntry([&](const std::string &Sig, uint32_t OptsKey,
                             const FixpointSeedData &Data) {
    JsonRef O = JsonValue::object();
    O->set("fx", JsonValue::string(Sig));
    O->set("o", JsonValue::number(static_cast<double>(OptsKey)));
    O->set("conv", JsonValue::boolean(Data.Converged));
    JsonRef Snaps = JsonValue::array();
    for (const BddSnapshot &S : Data.Snapshots)
      Snaps->push(JsonValue::string(S.encode()));
    O->set("snaps", Snaps);
    FxLines.push_back(O);
  });
  for (auto It = FxLines.rbegin(); It != FxLines.rend(); ++It)
    Out << (*It)->dump() << "\n";
  // Optimized query forms, sorted so the file is reproducible (the
  // seed store is an unordered map). The DTD fingerprint travels as a
  // hex string: JSON numbers are doubles and would truncate 64 bits.
  std::vector<std::array<std::string, 4>> OptEntries;
  OptSeeds.forEachEntry([&](const std::string &Q, const std::string &D,
                            uint64_t Fp, const std::string &T) {
    char Hex[17];
    std::snprintf(Hex, sizeof(Hex), "%016llx",
                  static_cast<unsigned long long>(Fp));
    OptEntries.push_back({Q, D, Hex, T});
  });
  std::sort(OptEntries.begin(), OptEntries.end());
  for (const auto &[Q, D, Fp, T] : OptEntries) {
    JsonRef O = JsonValue::object();
    O->set("oq", JsonValue::string(Q));
    O->set("dtd", JsonValue::string(D));
    O->set("dfp", JsonValue::string(Fp));
    O->set("opt", JsonValue::string(T));
    Out << O->dump() << "\n";
  }
  // Remembered per-lean Auto strategy choices, sorted for
  // reproducibility like the optimize seeds. Readers predating this
  // line shape skip it (no key they recognize), so the format version
  // stays 2.
  std::vector<std::pair<std::string, FixpointStrategy>> StratEntries;
  StratChoices.forEachEntry([&](const std::string &Sig, FixpointStrategy S) {
    StratEntries.push_back({Sig, S});
  });
  std::sort(StratEntries.begin(), StratEntries.end());
  // Defensive dedupe: the store is keyed by signature so duplicates
  // should be impossible, but a stray repeat (e.g. a hand-edited or
  // concatenated cache file resaved) must not multiply "st" lines on
  // every save/load cycle. The entries were just sorted by (signature,
  // strategy), so a duplicated signature deterministically keeps its
  // smallest strategy value — insertion order is already gone here (the
  // store iterates a hash map), so "first remembered wins" cannot be
  // reconstructed at save time; determinism is what matters for the
  // reproducible-file contract.
  StratEntries.erase(
      std::unique(StratEntries.begin(), StratEntries.end(),
                  [](const auto &A, const auto &B) {
                    return A.first == B.first;
                  }),
      StratEntries.end());
  for (const auto &[Sig, S] : StratEntries) {
    JsonRef O = JsonValue::object();
    O->set("st", JsonValue::string(Sig));
    O->set("strategy", JsonValue::string(fixpointStrategyName(S)));
    Out << O->dump() << "\n";
  }
  if (!Out) {
    Error = "write error on cache file " + Path;
    return false;
  }
  return true;
}

bool AnalysisSession::loadCache(const std::string &Path, std::string &Error) {
  std::ifstream In(Path);
  if (!In) {
    Error = "cannot read cache file " + Path;
    return false;
  }
  std::string Line;
  bool SawHeader = false;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    std::string ParseError;
    JsonRef Obj = parseJson(Line, ParseError);
    if (!Obj || Obj->type() != JsonValue::Type::Object) {
      if (!SawHeader) {
        Error = Path + " is not an xsa cache file";
        return false;
      }
      continue; // skip one corrupt entry, keep the rest
    }
    if (!SawHeader) {
      JsonRef Version = Obj->get("xsa_cache");
      if (Version->type() != JsonValue::Type::Number) {
        Error = Path + " is not an xsa cache file";
        return false;
      }
      double V = Version->asNumber();
      if (V != static_cast<double>(static_cast<int>(V)) || V < 1 ||
          V > CacheFormatVersion) {
        // A future (or corrupt) version would parse as garbage line by
        // line; refuse it outright rather than half-load it.
        Error = Path + ": unsupported cache format version";
        return false;
      }
      SawHeader = true;
      continue;
    }
    // Fixpoint sequence entry (v2). A snapshot that fails to decode
    // poisons its whole entry — a partial sequence prefix would still be
    // sound, but dropping the entry keeps corruption visible in the
    // stats instead of silently degrading.
    std::string FxSig = Obj->str("fx");
    if (!FxSig.empty()) {
      auto Data = std::make_shared<FixpointSeedData>();
      Data->Converged = Obj->get("conv")->asBool();
      JsonRef Snaps = Obj->get("snaps");
      bool Bad = Snaps->type() != JsonValue::Type::Array;
      if (!Bad)
        for (const JsonRef &S : Snaps->items()) {
          BddSnapshot Snap;
          if (S->type() != JsonValue::Type::String ||
              !BddSnapshot::decode(S->asString(), Snap)) {
            Bad = true;
            break;
          }
          Data->Snapshots.push_back(std::move(Snap));
        }
      if (!Bad && !Data->Snapshots.empty())
        Fixpoints.publish(FxSig, static_cast<uint32_t>(
                                     Obj->get("o")->asNumber()),
                          std::move(Data));
      continue;
    }
    // Optimized query form (v2). An entry without a well-formed DTD
    // fingerprint is dropped: it could not be verified against the
    // consumer's DTD content.
    std::string OptQuery = Obj->str("oq");
    if (!OptQuery.empty()) {
      std::string OptText = Obj->str("opt");
      std::string FpHex = Obj->str("dfp");
      uint64_t Fp = 0;
      auto [Ptr, Ec] = std::from_chars(
          FpHex.data(), FpHex.data() + FpHex.size(), Fp, 16);
      if (!OptText.empty() && Ec == std::errc() &&
          Ptr == FpHex.data() + FpHex.size() && Fp)
        OptSeeds.store(OptQuery, Obj->str("dtd"), Fp, OptText);
      continue;
    }
    // Remembered strategy choice. An Auto or unrecognized strategy name
    // is dropped: stored choices must be concrete.
    std::string StratSig = Obj->str("st");
    if (!StratSig.empty()) {
      FixpointStrategy S;
      if (parseFixpointStrategy(Obj->str("strategy"), S) &&
          S != FixpointStrategy::Auto)
        StratChoices.remember(StratSig, S);
      continue;
    }
    std::string Key = Obj->str("k");
    if (Key.empty())
      continue;
    SolverResult R;
    R.Satisfiable = Obj->get("sat")->asBool();
    R.Stats.LeanSize = static_cast<size_t>(Obj->get("lean")->asNumber());
    R.Stats.Iterations = static_cast<size_t>(Obj->get("iter")->asNumber());
    R.Stats.PeakBddNodes = static_cast<size_t>(Obj->get("bdd")->asNumber());
    R.Stats.TimeMs = Obj->get("time_ms")->asNumber();
    std::string ModelXml = Obj->str("model");
    if (!ModelXml.empty()) {
      Document Doc;
      std::string XmlError;
      if (!parseXml(ModelXml, Doc, XmlError))
        continue; // corrupt model: drop the entry rather than lie
      R.Model = std::move(Doc);
    }
    Cache.store(Key, static_cast<uint32_t>(Obj->get("o")->asNumber()), R);
  }
  if (!SawHeader) {
    Error = Path + " is not an xsa cache file";
    return false;
  }
  return true;
}

SessionStats AnalysisSession::stats() const {
  SessionStats S;
  S.Cache = Cache.stats();
  S.Solves = Counters.Solves.load(std::memory_order_relaxed);
  S.SolverIterations =
      Counters.SolverIterations.load(std::memory_order_relaxed);
  S.SolverTimeMs =
      static_cast<double>(Counters.SolverTimeUs.load(
          std::memory_order_relaxed)) /
      1000.0;
  S.QueriesParsed = Counters.QueriesParsed.load(std::memory_order_relaxed);
  S.QueryCacheHits = Counters.QueryCacheHits.load(std::memory_order_relaxed);
  S.DtdCompilations = Counters.DtdCompilations.load(std::memory_order_relaxed);
  S.DtdCacheHits = Counters.DtdCacheHits.load(std::memory_order_relaxed);
  S.QueriesOptimized =
      Counters.QueriesOptimized.load(std::memory_order_relaxed);
  S.OptimizeCacheHits =
      Counters.OptimizeCacheHits.load(std::memory_order_relaxed);
  S.OptimizeSeedHits =
      Counters.OptimizeSeedHits.load(std::memory_order_relaxed);
  S.RewriteChecks = Counters.RewriteChecks.load(std::memory_order_relaxed);
  S.RewritesAccepted =
      Counters.RewritesAccepted.load(std::memory_order_relaxed);
  S.Fixpoints = Fixpoints.stats();
  S.FixpointSeededRuns =
      Counters.FixpointSeededRuns.load(std::memory_order_relaxed);
  S.FixpointIterationsReplayed =
      Counters.FixpointIterationsReplayed.load(std::memory_order_relaxed);
  S.SolverSubSteps = Counters.SolverSubSteps.load(std::memory_order_relaxed);
  for (size_t I = 0; I < Counters.StrategyRuns.size(); ++I)
    S.StrategyRuns[I] = Counters.StrategyRuns[I].load(std::memory_order_relaxed);
  return S;
}
