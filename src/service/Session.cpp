//===- Session.cpp - Long-lived analysis session ---------------------------===//

#include "service/Session.h"

#include "xpath/Compile.h"
#include "xpath/Parser.h"
#include "xtype/BuiltinDtds.h"
#include "xtype/Compile.h"

#include <fstream>
#include <sstream>

using namespace xsa;

AnalysisSession::AnalysisSession(SolverOptions Opts, size_t CacheCapacity)
    : Opts(Opts), Cache(CacheCapacity) {
  this->Opts.Cache = &Cache;
  this->Opts.StatsHook = [this](const SolverStats &S) {
    ++Counters.Solves;
    Counters.SolverIterations += S.Iterations;
    Counters.SolverTimeMs += S.TimeMs;
  };
  // The Analyzer forces RequireSingleRoot for the XPath decision
  // problems; the raw solver keeps the caller's setting. The two run
  // under different option fingerprints, so cache entries never cross.
  An = std::make_unique<Analyzer>(FF, this->Opts);
  RawSolver = std::make_unique<BddSolver>(FF, this->Opts);
}

AnalysisResult AnalysisSession::emptiness(const ExprRef &E, Formula Chi) {
  return An->emptiness(E, Chi);
}

AnalysisResult AnalysisSession::containment(const ExprRef &E1, Formula Chi1,
                                            const ExprRef &E2, Formula Chi2) {
  return An->containment(E1, Chi1, E2, Chi2);
}

AnalysisResult AnalysisSession::overlap(const ExprRef &E1, Formula Chi1,
                                        const ExprRef &E2, Formula Chi2) {
  return An->overlap(E1, Chi1, E2, Chi2);
}

AnalysisResult AnalysisSession::coverage(const ExprRef &E, Formula Chi,
                                         const std::vector<ExprRef> &Others,
                                         const std::vector<Formula> &OtherChis) {
  return An->coverage(E, Chi, Others, OtherChis);
}

AnalysisResult AnalysisSession::equivalence(const ExprRef &E1, Formula Chi1,
                                            const ExprRef &E2, Formula Chi2) {
  return An->equivalence(E1, Chi1, E2, Chi2);
}

AnalysisResult AnalysisSession::staticTypeCheck(const ExprRef &E, Formula ChiIn,
                                                Formula OutType) {
  return An->staticTypeCheck(E, ChiIn, OutType);
}

SolverResult AnalysisSession::satisfiable(Formula Psi) {
  return RawSolver->solve(Psi);
}

ExprRef AnalysisSession::query(const std::string &XPath, std::string &Error) {
  auto It = QueryMemo.find(XPath);
  if (It != QueryMemo.end()) {
    ++Counters.QueryCacheHits;
    Error = It->second.Error;
    return It->second.E;
  }
  QueryEntry Entry;
  Entry.E = parseXPath(XPath, Entry.Error);
  ++Counters.QueriesParsed;
  auto &Stored = QueryMemo.emplace(XPath, std::move(Entry)).first->second;
  Error = Stored.Error;
  return Stored.E;
}

AnalysisSession::DtdEntry &AnalysisSession::loadDtd(const std::string &Name) {
  auto It = DtdMemo.find(Name);
  if (It != DtdMemo.end()) {
    ++Counters.DtdCacheHits;
    return It->second;
  }
  DtdEntry Entry;
  const Dtd *D = nullptr;
  Dtd Parsed;
  if (Name == "wikipedia") {
    D = &wikipediaDtd();
  } else if (Name == "smil") {
    D = &smil10Dtd();
  } else if (Name == "xhtml") {
    D = &xhtml10StrictDtd();
  } else {
    std::ifstream In(Name);
    if (!In) {
      Entry.Error = "cannot read DTD " + Name;
    } else {
      std::ostringstream SS;
      SS << In.rdbuf();
      if (!parseDtd(SS.str(), Parsed, Entry.Error))
        Parsed = Dtd();
      else
        D = &Parsed;
    }
  }
  if (D) {
    Entry.Type = compileDtd(FF, *D);
    ++Counters.DtdCompilations;
  }
  return DtdMemo.emplace(Name, std::move(Entry)).first->second;
}

Formula AnalysisSession::typeFormula(const std::string &Name,
                                     std::string &Error) {
  if (Name.empty())
    return FF.trueF();
  const DtdEntry &Entry = loadDtd(Name);
  Error = Entry.Error;
  return Entry.Type;
}

Formula AnalysisSession::typeContext(const std::string &Name,
                                     std::string &Error) {
  if (Name.empty())
    return FF.trueF();
  DtdEntry &Entry = loadDtd(Name);
  Error = Entry.Error;
  if (!Entry.Type)
    return nullptr;
  // Memoized: rootFormula mints a fresh µ-variable per call, so building
  // the conjunction anew each time would defeat pointer-stable reuse.
  if (!Entry.Context)
    Entry.Context = FF.conj(Entry.Type, rootFormula(FF));
  return Entry.Context;
}

SessionStats AnalysisSession::stats() const {
  SessionStats S = Counters;
  S.Cache = Cache.stats();
  return S;
}
