//===- Session.cpp - Long-lived analysis session ---------------------------===//

#include "service/Session.h"

#include "service/Json.h"
#include "tree/Xml.h"

#include <algorithm>
#include <fstream>
#include <thread>

using namespace xsa;

namespace {

size_t resolveJobs(size_t Jobs) {
  if (Jobs == 0) {
    Jobs = std::thread::hardware_concurrency();
    if (Jobs == 0)
      Jobs = 1;
  }
  // Each job is a thread plus a full solver context; a nonsense value
  // (wrapped negative, typo'd protocol field) must not translate into
  // unbounded thread/arena allocation.
  return std::min(Jobs, AnalysisSession::MaxJobs);
}

} // namespace

AnalysisSession::AnalysisSession(SessionOptions SOpts)
    : Opts(SOpts), Cache(SOpts.CacheCapacity, SOpts.CacheShards),
      Main(SOpts.Solver, &Cache, &Counters) {
  Opts.Jobs = resolveJobs(Opts.Jobs);
  Main.setOptimizePrePass(Opts.Optimize);
}

AnalysisSession::AnalysisSession(SolverOptions Opts, size_t CacheCapacity)
    : AnalysisSession(SessionOptions{Opts, CacheCapacity,
                                     /*CacheShards=*/8, /*Jobs=*/1}) {}

void AnalysisSession::setOptimize(bool On) {
  Opts.Optimize = On;
  Main.setOptimizePrePass(On);
  for (auto &W : Workers)
    W->setOptimizePrePass(On);
}

AnalysisResult AnalysisSession::emptiness(const ExprRef &E, Formula Chi) {
  return analyzer().emptiness(E, Chi);
}

AnalysisResult AnalysisSession::containment(const ExprRef &E1, Formula Chi1,
                                            const ExprRef &E2, Formula Chi2) {
  return analyzer().containment(E1, Chi1, E2, Chi2);
}

AnalysisResult AnalysisSession::overlap(const ExprRef &E1, Formula Chi1,
                                        const ExprRef &E2, Formula Chi2) {
  return analyzer().overlap(E1, Chi1, E2, Chi2);
}

AnalysisResult AnalysisSession::coverage(const ExprRef &E, Formula Chi,
                                         const std::vector<ExprRef> &Others,
                                         const std::vector<Formula> &OtherChis) {
  return analyzer().coverage(E, Chi, Others, OtherChis);
}

AnalysisResult AnalysisSession::equivalence(const ExprRef &E1, Formula Chi1,
                                            const ExprRef &E2, Formula Chi2) {
  return analyzer().equivalence(E1, Chi1, E2, Chi2);
}

AnalysisResult AnalysisSession::staticTypeCheck(const ExprRef &E, Formula ChiIn,
                                                Formula OutType) {
  return analyzer().staticTypeCheck(E, ChiIn, OutType);
}

SolverResult AnalysisSession::satisfiable(Formula Psi) {
  return Main.satisfiable(Psi);
}

ExprRef AnalysisSession::query(const std::string &XPath, std::string &Error) {
  return Main.query(XPath, Error);
}

Formula AnalysisSession::typeFormula(const std::string &Name,
                                     std::string &Error) {
  return Main.typeFormula(Name, Error);
}

Formula AnalysisSession::typeContext(const std::string &Name,
                                     std::string &Error) {
  return Main.typeContext(Name, Error);
}

void AnalysisSession::setJobs(size_t Jobs) {
  Jobs = resolveJobs(Jobs);
  if (Jobs == Opts.Jobs)
    return;
  Opts.Jobs = Jobs;
  // Resize lazily: the pool is rebuilt by the next pool() call. Worker
  // contexts are retained — shrinking and re-growing keeps them warm.
  if (Pool && Pool->threads() != Jobs)
    Pool.reset();
}

WorkerPool &AnalysisSession::pool() {
  if (!Pool)
    Pool = std::make_unique<WorkerPool>(Opts.Jobs);
  while (Workers.size() < Opts.Jobs) {
    Workers.push_back(
        std::make_unique<AnalysisContext>(Opts.Solver, &Cache, &Counters));
    Workers.back()->setOptimizePrePass(Opts.Optimize);
  }
  return *Pool;
}

//===----------------------------------------------------------------------===//
// Persistent cache
//===----------------------------------------------------------------------===//

bool AnalysisSession::saveCache(const std::string &Path,
                                std::string &Error) const {
  std::ofstream Out(Path, std::ios::trunc);
  if (!Out) {
    Error = "cannot write cache file " + Path;
    return false;
  }
  JsonRef Header = JsonValue::object();
  Header->set("xsa_cache", JsonValue::number(1));
  Out << Header->dump() << "\n";
  // Collect, then emit least-recently-used first, so loading in file
  // order reproduces each shard's recency order.
  std::vector<JsonRef> Lines;
  Cache.forEachEntry([&](const std::string &Key, uint32_t OptsKey,
                         const SolverResult &R) {
    JsonRef O = JsonValue::object();
    O->set("k", JsonValue::string(Key));
    O->set("o", JsonValue::number(static_cast<double>(OptsKey)));
    O->set("sat", JsonValue::boolean(R.Satisfiable));
    O->set("lean", JsonValue::number(static_cast<double>(R.Stats.LeanSize)));
    O->set("iter", JsonValue::number(static_cast<double>(R.Stats.Iterations)));
    O->set("bdd",
           JsonValue::number(static_cast<double>(R.Stats.PeakBddNodes)));
    O->set("time_ms", JsonValue::number(R.Stats.TimeMs));
    if (R.Model)
      O->set("model", JsonValue::string(printXml(*R.Model)));
    Lines.push_back(O);
  });
  for (auto It = Lines.rbegin(); It != Lines.rend(); ++It)
    Out << (*It)->dump() << "\n";
  if (!Out) {
    Error = "write error on cache file " + Path;
    return false;
  }
  return true;
}

bool AnalysisSession::loadCache(const std::string &Path, std::string &Error) {
  std::ifstream In(Path);
  if (!In) {
    Error = "cannot read cache file " + Path;
    return false;
  }
  std::string Line;
  bool SawHeader = false;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    std::string ParseError;
    JsonRef Obj = parseJson(Line, ParseError);
    if (!Obj || Obj->type() != JsonValue::Type::Object) {
      if (!SawHeader) {
        Error = Path + " is not an xsa cache file";
        return false;
      }
      continue; // skip one corrupt entry, keep the rest
    }
    if (!SawHeader) {
      if (Obj->get("xsa_cache")->asNumber() != 1) {
        Error = Path + " is not an xsa cache file";
        return false;
      }
      SawHeader = true;
      continue;
    }
    std::string Key = Obj->str("k");
    if (Key.empty())
      continue;
    SolverResult R;
    R.Satisfiable = Obj->get("sat")->asBool();
    R.Stats.LeanSize = static_cast<size_t>(Obj->get("lean")->asNumber());
    R.Stats.Iterations = static_cast<size_t>(Obj->get("iter")->asNumber());
    R.Stats.PeakBddNodes = static_cast<size_t>(Obj->get("bdd")->asNumber());
    R.Stats.TimeMs = Obj->get("time_ms")->asNumber();
    std::string ModelXml = Obj->str("model");
    if (!ModelXml.empty()) {
      Document Doc;
      std::string XmlError;
      if (!parseXml(ModelXml, Doc, XmlError))
        continue; // corrupt model: drop the entry rather than lie
      R.Model = std::move(Doc);
    }
    Cache.store(Key, static_cast<uint32_t>(Obj->get("o")->asNumber()), R);
  }
  if (!SawHeader) {
    Error = Path + " is not an xsa cache file";
    return false;
  }
  return true;
}

SessionStats AnalysisSession::stats() const {
  SessionStats S;
  S.Cache = Cache.stats();
  S.Solves = Counters.Solves.load(std::memory_order_relaxed);
  S.SolverIterations =
      Counters.SolverIterations.load(std::memory_order_relaxed);
  S.SolverTimeMs =
      static_cast<double>(Counters.SolverTimeUs.load(
          std::memory_order_relaxed)) /
      1000.0;
  S.QueriesParsed = Counters.QueriesParsed.load(std::memory_order_relaxed);
  S.QueryCacheHits = Counters.QueryCacheHits.load(std::memory_order_relaxed);
  S.DtdCompilations = Counters.DtdCompilations.load(std::memory_order_relaxed);
  S.DtdCacheHits = Counters.DtdCacheHits.load(std::memory_order_relaxed);
  S.QueriesOptimized =
      Counters.QueriesOptimized.load(std::memory_order_relaxed);
  S.OptimizeCacheHits =
      Counters.OptimizeCacheHits.load(std::memory_order_relaxed);
  S.RewriteChecks = Counters.RewriteChecks.load(std::memory_order_relaxed);
  S.RewritesAccepted =
      Counters.RewritesAccepted.load(std::memory_order_relaxed);
  return S;
}
