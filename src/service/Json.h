//===- Json.h - Minimal JSON reader/writer -----------------------*- C++ -*-===//
//
// Part of the xsa project (PLDI 2007 XPath/type analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, dependency-free JSON value type with a recursive-descent
/// parser and a serializer — just enough for the JSON-lines batch
/// protocol of the service layer (objects, arrays, strings with the
/// standard escapes, numbers, booleans, null). Not a general-purpose
/// library: no comments, no trailing commas, doubles only.
///
//===----------------------------------------------------------------------===//

#ifndef XSA_SERVICE_JSON_H
#define XSA_SERVICE_JSON_H

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace xsa {

class JsonValue;
using JsonRef = std::shared_ptr<JsonValue>;

class JsonValue {
public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Type type() const { return Ty; }
  bool isNull() const { return Ty == Type::Null; }

  static JsonRef null();
  static JsonRef boolean(bool B);
  static JsonRef number(double N);
  static JsonRef string(std::string S);
  static JsonRef array();
  static JsonRef object();

  bool asBool(bool Default = false) const;
  double asNumber(double Default = 0) const;
  const std::string &asString() const; ///< "" unless a String

  /// Array access ([] out of range → null).
  const std::vector<JsonRef> &items() const { return Items; }
  void push(JsonRef V) { Items.push_back(std::move(V)); }

  /// Object access (missing key → null ref, safe to chain).
  JsonRef get(const std::string &Key) const;
  void set(const std::string &Key, JsonRef V);
  const std::vector<std::pair<std::string, JsonRef>> &members() const {
    return Members;
  }

  /// Convenience accessors for the batch protocol.
  std::string str(const std::string &Key,
                  const std::string &Default = "") const;
  bool has(const std::string &Key) const;

  /// Compact single-line serialization.
  std::string dump() const;

private:
  Type Ty = Type::Null;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<JsonRef> Items;
  /// Insertion-ordered, as emitted.
  std::vector<std::pair<std::string, JsonRef>> Members;
};

/// Parses one JSON document from \p Text. Returns null and sets
/// \p Error on malformed input (trailing garbage is an error). When
/// \p ErrorByte is non-null it receives the byte offset into \p Text at
/// which parsing failed — what the batch protocol's structured
/// bad_request responses report alongside the line number.
JsonRef parseJson(const std::string &Text, std::string &Error,
                  size_t *ErrorByte = nullptr);

/// Escapes \p S as a JSON string literal including the quotes.
std::string jsonQuote(const std::string &S);

} // namespace xsa

#endif // XSA_SERVICE_JSON_H
