//===- Batch.cpp - Batch request pipeline ----------------------------------===//

#include "service/Batch.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/KeyEncoding.h"

#include "logic/CycleFree.h"
#include "logic/Parser.h"
#include "tree/Xml.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <istream>
#include <ostream>
#include <unordered_map>

using namespace xsa;

bool xsa::parseRequestKind(const std::string &Name, RequestKind &Kind) {
  if (Name == "sat")
    Kind = RequestKind::Sat;
  else if (Name == "empty")
    Kind = RequestKind::Emptiness;
  else if (Name == "contains")
    Kind = RequestKind::Containment;
  else if (Name == "overlap")
    Kind = RequestKind::Overlap;
  else if (Name == "cover")
    Kind = RequestKind::Coverage;
  else if (Name == "equiv")
    Kind = RequestKind::Equivalence;
  else if (Name == "typecheck")
    Kind = RequestKind::TypeCheck;
  else if (Name == "optimize")
    Kind = RequestKind::Optimize;
  else
    return false;
  return true;
}

const char *xsa::requestKindName(RequestKind K) {
  switch (K) {
  case RequestKind::Sat:
    return "sat";
  case RequestKind::Emptiness:
    return "empty";
  case RequestKind::Containment:
    return "contains";
  case RequestKind::Overlap:
    return "overlap";
  case RequestKind::Coverage:
    return "cover";
  case RequestKind::Equivalence:
    return "equiv";
  case RequestKind::TypeCheck:
    return "typecheck";
  case RequestKind::Optimize:
    return "optimize";
  }
  return "?";
}

namespace {

AnalysisResponse errorResponse(const AnalysisRequest &Req, std::string Msg) {
  AnalysisResponse R;
  R.Kind = Req.Kind;
  R.Id = Req.Id;
  R.Ok = false;
  R.Error = std::move(Msg);
  return R;
}

/// Resolves a query string through the context memo, or fails.
bool resolveQuery(AnalysisContext &Ctx, const std::string &Src,
                  const char *Which, ExprRef &E, std::string &Error) {
  if (Src.empty()) {
    Error = std::string("missing query ") + Which;
    return false;
  }
  std::string ParseError;
  E = Ctx.query(Src, ParseError);
  if (!E) {
    Error = std::string(Which) + ": " + ParseError;
    return false;
  }
  return true;
}

bool resolveContext(AnalysisContext &Ctx, const std::string &Name,
                    Formula &Chi, std::string &Error) {
  std::string DtdError;
  Chi = Ctx.typeContext(Name, DtdError);
  if (!Chi) {
    Error = DtdError;
    return false;
  }
  return true;
}

/// \p HoldsWhenUnsat mirrors Analyzer::fromSolver: for the unsat-style
/// problems the property holds when the underlying formula is
/// unsatisfiable, for overlap when it is satisfiable.
void fillFromAnalysis(AnalysisResponse &R, const AnalysisResult &A,
                      bool HoldsWhenUnsat) {
  R.Ok = true;
  R.Holds = A.Holds;
  R.Satisfiable = HoldsWhenUnsat ? !A.Holds : A.Holds;
  R.FromCache = A.FromCache;
  R.Stats = A.Stats;
  if (A.Tree)
    R.ModelXml = printXml(*A.Tree, A.Target);
}

/// Identity of a request up to textual equality of every field that can
/// influence the answer (everything but Id). Textually identical
/// requests are solved once per batch and the rest reported as cache
/// hits — exactly what a serial run through the semantic cache does.
std::string requestSignature(const AnalysisRequest &Req) {
  // Fields are length-prefixed, so the signature is injective for
  // arbitrary field bytes — even malformed requests (whose text the
  // parser will reject, but which must not collide with a well-formed
  // request's signature before that happens). Well-formed XPath cannot
  // contain control characters (the parser rejects them in quoted
  // names), but the signature does not rely on it.
  std::string S;
  S += static_cast<char>('0' + static_cast<int>(Req.Kind));
  auto Add = [&S](const std::string &F) { appendLengthPrefixed(S, F); };
  Add(Req.Formula);
  Add(Req.Query1);
  Add(Req.Query2);
  Add(Req.Dtd1);
  Add(Req.Dtd2);
  Add(Req.OutDtd);
  for (const std::string &O : Req.Others)
    Add(O);
  return S;
}

/// The uninstrumented request dispatch — the wrapper below brackets it
/// with the request span, stage aggregation, and latency metrics.
AnalysisResponse runRequestImpl(AnalysisContext &Ctx,
                                const AnalysisRequest &Req) {
  AnalysisResponse R;
  R.Kind = Req.Kind;
  R.Id = Req.Id;
  std::string Error;

  if (Req.Kind == RequestKind::Sat) {
    Formula F = parseFormula(Ctx.factory(), Req.Formula, Error);
    if (!F)
      return errorResponse(Req, "formula: " + Error);
    if (!isCycleFree(F))
      return errorResponse(Req, "formula is not cycle free");
    SolverResult SR = Ctx.satisfiable(F);
    R.Ok = true;
    R.Satisfiable = SR.Satisfiable;
    R.Holds = SR.Satisfiable;
    R.FromCache = SR.FromCache;
    R.Stats = SR.Stats;
    if (SR.Model)
      R.ModelXml = printXml(*SR.Model);
    return R;
  }

  // Optimize requests report the solver-verified rewrite itself, so
  // they owe a full proof trace (no seeded forms).
  if (Req.Kind == RequestKind::Optimize) {
    if (Req.Query1.empty())
      return errorResponse(Req, "missing query e1");
    const auto OE = Ctx.optimized(Req.Query1, Req.Dtd1, /*AllowSeed=*/false);
    if (!OE->Ok)
      return errorResponse(Req, OE->Error);
    R.Ok = true;
    R.Optimized = OE->Result.text();
    R.CostBefore = OE->Result.OriginalCost;
    R.CostAfter = OE->Result.OptimizedCost;
    R.Trace = OE->Result.Trace;
    return R;
  }

  ExprRef E1;
  if (!resolveQuery(Ctx, Req.Query1, "e1", E1, Error))
    return errorResponse(Req, Error);
  Formula Chi1;
  if (!resolveContext(Ctx, Req.Dtd1, Chi1, Error))
    return errorResponse(Req, Error);
  // An absent dtd2 inherits dtd1: the common "same schema on both sides"
  // case.
  const std::string &Dtd2 = Req.Dtd2.empty() ? Req.Dtd1 : Req.Dtd2;

  // Optimize pre-pass: substitute the solver-verified rewrite of each
  // query. Verdicts cannot change (each accepted rewrite was proved
  // equivalent under this very DTD); what changes is the compiled
  // formula, which canonicalizes near-duplicate queries onto shared
  // cache entries.
  auto PrePass = [&](ExprRef E, const std::string &Query,
                     const std::string &Dtd) {
    if (!Ctx.optimizePrePass())
      return E;
    // Only the rewritten AST matters here, so a seeded (already-proved)
    // form is taken without re-deriving the rewrite.
    const auto OE = Ctx.optimized(Query, Dtd, /*AllowSeed=*/true);
    return OE->Ok ? OE->Result.Optimized : E;
  };
  E1 = PrePass(E1, Req.Query1, Req.Dtd1);

  Analyzer &An = Ctx.analyzer();
  switch (Req.Kind) {
  case RequestKind::Sat:
  case RequestKind::Optimize:
    break; // handled above
  case RequestKind::Emptiness:
    fillFromAnalysis(R, An.emptiness(E1, Chi1), /*HoldsWhenUnsat=*/true);
    break;
  case RequestKind::Containment:
  case RequestKind::Overlap:
  case RequestKind::Equivalence: {
    ExprRef E2;
    if (!resolveQuery(Ctx, Req.Query2, "e2", E2, Error))
      return errorResponse(Req, Error);
    Formula Chi2;
    if (!resolveContext(Ctx, Dtd2, Chi2, Error))
      return errorResponse(Req, Error);
    E2 = PrePass(E2, Req.Query2, Dtd2);
    if (Req.Kind == RequestKind::Containment)
      fillFromAnalysis(R, An.containment(E1, Chi1, E2, Chi2),
                       /*HoldsWhenUnsat=*/true);
    else if (Req.Kind == RequestKind::Overlap)
      fillFromAnalysis(R, An.overlap(E1, Chi1, E2, Chi2),
                       /*HoldsWhenUnsat=*/false);
    else
      fillFromAnalysis(R, An.equivalence(E1, Chi1, E2, Chi2),
                       /*HoldsWhenUnsat=*/true);
    break;
  }
  case RequestKind::Coverage: {
    if (Req.Others.empty())
      return errorResponse(Req, "cover needs a non-empty 'others' array");
    std::vector<ExprRef> Others;
    std::vector<Formula> OtherChis;
    for (size_t I = 0; I < Req.Others.size(); ++I) {
      ExprRef E;
      if (!resolveQuery(Ctx, Req.Others[I], "others", E, Error))
        return errorResponse(Req, Error);
      Others.push_back(PrePass(E, Req.Others[I], Req.Dtd1));
      OtherChis.push_back(Chi1);
    }
    fillFromAnalysis(R, An.coverage(E1, Chi1, Others, OtherChis),
                     /*HoldsWhenUnsat=*/true);
    break;
  }
  case RequestKind::TypeCheck: {
    if (Req.OutDtd.empty())
      return errorResponse(Req, "typecheck needs an output type 'out'");
    std::string DtdError;
    Formula OutType = Ctx.typeFormula(Req.OutDtd, DtdError);
    if (!OutType)
      return errorResponse(Req, DtdError);
    fillFromAnalysis(R, An.staticTypeCheck(E1, Chi1, OutType),
                     /*HoldsWhenUnsat=*/true);
    break;
  }
  }
  return R;
}

/// Per-kind request tallies: `xsa_requests_total{op="..."}`. Registered
/// once; the per-request path is one relaxed fetch_add.
Counter &requestCounter(RequestKind K) {
  static const std::array<Counter *, 8> ByKind = [] {
    std::array<Counter *, 8> A{};
    for (size_t I = 0; I < A.size(); ++I)
      A[I] = &MetricRegistry::global().counter(
          labeledMetricName("xsa_requests_total", "op",
                            requestKindName(static_cast<RequestKind>(I))),
          "Requests answered, by operation");
    return A;
  }();
  return *ByKind[static_cast<size_t>(K)];
}

} // namespace

AnalysisResponse xsa::runRequest(AnalysisContext &Ctx,
                                 const AnalysisRequest &Req) {
  static Histogram &Latency = MetricRegistry::global().histogram(
      "xsa_request_latency_ms",
      "End-to-end per-request latency including cache hits");
  static Counter &ErrorsTotal = MetricRegistry::global().counter(
      "xsa_request_errors_total", "Requests answered with ok=false");
  auto T0 = std::chrono::steady_clock::now();
  AnalysisResponse R;
  Tracer &T = Tracer::global();
  if (T.enabled() || T.stageCaptureEnabled()) {
    // The request span's own total doubles as the wall-time row of the
    // per-request breakdown; nested spans add their stage rows. In
    // stage-capture mode (the server's always-on slow-query recorder)
    // the same structure accumulates totals without buffering events.
    StageTotals Totals;
    {
      StageScope Scope(Totals);
      Span ReqSpan("request");
      ReqSpan.arg("op", requestKindName(Req.Kind));
      if (!Req.TraceId.empty())
        ReqSpan.arg("rid", Req.TraceId);
      R = runRequestImpl(Ctx, Req);
      ReqSpan.arg("ok", R.Ok ? 1 : 0);
    }
    R.StageMs = Totals.toMs();
  } else {
    R = runRequestImpl(Ctx, Req);
  }
  R.Rid = Req.TraceId;
  Latency.observe(std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - T0)
                      .count());
  requestCounter(Req.Kind).add();
  if (!R.Ok)
    ErrorsTotal.add();
  return R;
}

AnalysisResponse xsa::runRequest(AnalysisSession &Session,
                                 const AnalysisRequest &Req) {
  return runRequest(Session.mainContext(), Req);
}

std::vector<AnalysisResponse>
xsa::runBatch(AnalysisSession &Session,
              const std::vector<AnalysisRequest> &Reqs) {
  std::vector<AnalysisResponse> Out(Reqs.size());
  if (Session.jobs() <= 1 || Reqs.size() < 2) {
    for (size_t I = 0; I < Reqs.size(); ++I)
      Out[I] = runRequest(Session, Reqs[I]);
    return Out;
  }

  // Textual dedup before dispatch: later copies of an identical request
  // become cache-hit replies of the first, which both avoids redundant
  // concurrent solves of the same problem and keeps the reported
  // hit/miss pattern identical to a serial run.
  constexpr size_t NotDup = ~size_t(0);
  std::unordered_map<std::string, size_t> FirstOf;
  std::vector<size_t> Unique;
  std::vector<size_t> DupOf(Reqs.size(), NotDup);
  Unique.reserve(Reqs.size());
  for (size_t I = 0; I < Reqs.size(); ++I) {
    auto [It, Inserted] = FirstOf.emplace(requestSignature(Reqs[I]), I);
    if (Inserted)
      Unique.push_back(I);
    else
      DupOf[I] = It->second;
  }

  // Self-scheduling dispatch: each worker pulls the next unclaimed
  // request and answers it on its own context. Input order of the
  // responses is preserved by construction (slot I belongs to request I).
  WorkerPool &Pool = Session.pool();
  Pool.parallelFor(Unique.size(), [&](size_t U, size_t Worker) {
    size_t I = Unique[U];
    Out[I] = runRequest(Session.workerContext(Worker), Reqs[I]);
  });

  for (size_t I = 0; I < Reqs.size(); ++I) {
    if (DupOf[I] == NotDup)
      continue;
    Out[I] = Out[DupOf[I]];
    Out[I].Id = Reqs[I].Id;
    if (Out[I].Ok)
      Out[I].FromCache = true;
  }
  return Out;
}

bool xsa::requestFromJson(const JsonValue &Obj, AnalysisRequest &Req,
                          std::string &Error) {
  if (Obj.type() != JsonValue::Type::Object) {
    Error = "request must be a JSON object";
    return false;
  }
  Req = AnalysisRequest();
  Req.Id = Obj.str("id");
  std::string Op = Obj.str("op");
  if (Op.empty()) {
    Error = "missing 'op'";
    return false;
  }
  if (!parseRequestKind(Op, Req.Kind)) {
    Error = "unknown op '" + Op + "'";
    return false;
  }
  Req.Formula = Obj.str("f");
  Req.Query1 = Obj.str("e1", Obj.str("e"));
  Req.Query2 = Obj.str("e2");
  Req.Dtd1 = Obj.str("dtd1", Obj.str("dtd"));
  Req.Dtd2 = Obj.str("dtd2");
  Req.OutDtd = Obj.str("out");
  JsonRef Others = Obj.get("others");
  if (!Others->isNull()) {
    if (Others->type() != JsonValue::Type::Array) {
      Error = "'others' must be an array of XPath strings";
      return false;
    }
    for (const JsonRef &V : Others->items()) {
      if (V->type() != JsonValue::Type::String) {
        Error = "'others' must be an array of XPath strings";
        return false;
      }
      Req.Others.push_back(V->asString());
    }
  }
  return true;
}

JsonRef xsa::responseToJson(const AnalysisResponse &Resp,
                            bool IncludeVolatile) {
  JsonRef O = JsonValue::object();
  if (!Resp.Id.empty())
    O->set("id", JsonValue::string(Resp.Id));
  // The propagated request/trace id is volatile: the server generates
  // one when the client sent no "id", and generated ids depend on
  // connection/sequence numbering — not on the workload alone.
  if (IncludeVolatile && !Resp.Rid.empty())
    O->set("rid", JsonValue::string(Resp.Rid));
  O->set("ok", JsonValue::boolean(Resp.Ok));
  // Stage breakdown (populated only under tracing) and everything else
  // execution-dependent rides the volatile side: scheduling, cache and
  // store state vary run to run, and `--stable` promises byte-stable
  // bytes.
  auto EmitStages = [&] {
    if (!IncludeVolatile || Resp.StageMs.empty())
      return;
    JsonRef St = JsonValue::object();
    for (const auto &[Name, Ms] : Resp.StageMs)
      St->set(Name, JsonValue::number(Ms));
    O->set("stages", St);
  };
  if (!Resp.Ok) {
    O->set("error", errorObjectJson(Resp.ErrorCode.empty() ? "bad_request"
                                                           : Resp.ErrorCode,
                                    Resp.Error, Resp.ErrorLine,
                                    Resp.ErrorByte));
    EmitStages();
    return O;
  }
  if (Resp.Kind == RequestKind::Optimize) {
    // Optimize responses: the rewritten query, the cost-model estimate,
    // and the proof trace — one entry per solver-checked candidate.
    O->set("optimized", JsonValue::string(Resp.Optimized));
    O->set("cost_before", JsonValue::number(Resp.CostBefore));
    O->set("cost_after", JsonValue::number(Resp.CostAfter));
    size_t Accepted = 0;
    JsonRef Trace = JsonValue::array();
    for (const RewriteStep &S : Resp.Trace) {
      Accepted += S.Accepted;
      JsonRef T = JsonValue::object();
      T->set("rule", JsonValue::string(S.Rule));
      T->set("from", JsonValue::string(S.From));
      T->set("to", JsonValue::string(S.To));
      T->set("note", JsonValue::string(S.Note));
      T->set("check", JsonValue::string(S.Check));
      T->set("verdict", JsonValue::string(S.Accepted ? "proved" : "refuted"));
      if (IncludeVolatile) {
        T->set("cache", JsonValue::string(S.FromCache ? "hit" : "miss"));
        T->set("time_ms", JsonValue::number(S.TimeMs));
      }
      Trace->push(T);
    }
    O->set("rewrites", JsonValue::number(static_cast<double>(Accepted)));
    O->set("checks",
           JsonValue::number(static_cast<double>(Resp.Trace.size())));
    O->set("trace", Trace);
    EmitStages();
    return O;
  }
  O->set("holds", JsonValue::boolean(Resp.Holds));
  O->set("satisfiable", JsonValue::boolean(Resp.Satisfiable));
  if (IncludeVolatile)
    O->set("cache", JsonValue::string(Resp.FromCache ? "hit" : "miss"));
  O->set("lean", JsonValue::number(static_cast<double>(Resp.Stats.LeanSize)));
  if (IncludeVolatile) {
    // Round counts moved to the volatile side when strategies arrived:
    // an Auto session answers the same request with however many rounds
    // the remembered (possibly persisted) strategy takes, and replay
    // counts depend on what the shared fixpoint store held when this
    // request ran — scheduling-dependent at jobs > 1. The verdict,
    // lean and model above are strategy-invariant and stay stable.
    O->set("iterations",
           JsonValue::number(static_cast<double>(Resp.Stats.Iterations)));
    O->set("iterations_replayed",
           JsonValue::number(
               static_cast<double>(Resp.Stats.IterationsReplayed)));
    O->set("substeps",
           JsonValue::number(static_cast<double>(Resp.Stats.SubSteps)));
    O->set("strategy",
           JsonValue::string(fixpointStrategyName(Resp.Stats.StrategyUsed)));
    O->set("time_ms", JsonValue::number(Resp.Stats.TimeMs));
  }
  if (!Resp.ModelXml.empty())
    O->set("model", JsonValue::string(Resp.ModelXml));
  EmitStages();
  return O;
}

JsonRef xsa::errorObjectJson(const std::string &Code,
                             const std::string &Message, size_t Line,
                             long Byte) {
  JsonRef E = JsonValue::object();
  E->set("code", JsonValue::string(Code));
  E->set("message", JsonValue::string(Message));
  if (Line)
    E->set("line", JsonValue::number(static_cast<double>(Line)));
  if (Byte >= 0)
    E->set("byte", JsonValue::number(static_cast<double>(Byte)));
  return E;
}

JsonRef xsa::statsToJson(const SessionStats &S) {
  JsonRef O = JsonValue::object();
  JsonRef C = JsonValue::object();
  C->set("hits", JsonValue::number(static_cast<double>(S.Cache.Hits)));
  C->set("misses", JsonValue::number(static_cast<double>(S.Cache.Misses)));
  C->set("insertions",
         JsonValue::number(static_cast<double>(S.Cache.Insertions)));
  C->set("evictions",
         JsonValue::number(static_cast<double>(S.Cache.Evictions)));
  C->set("size", JsonValue::number(static_cast<double>(S.Cache.Size)));
  O->set("cache", C);
  O->set("solves", JsonValue::number(static_cast<double>(S.Solves)));
  O->set("solver_iterations",
         JsonValue::number(static_cast<double>(S.SolverIterations)));
  O->set("solver_time_ms", JsonValue::number(S.SolverTimeMs));
  O->set("queries_parsed",
         JsonValue::number(static_cast<double>(S.QueriesParsed)));
  O->set("query_cache_hits",
         JsonValue::number(static_cast<double>(S.QueryCacheHits)));
  O->set("dtd_compilations",
         JsonValue::number(static_cast<double>(S.DtdCompilations)));
  O->set("dtd_cache_hits",
         JsonValue::number(static_cast<double>(S.DtdCacheHits)));
  O->set("queries_optimized",
         JsonValue::number(static_cast<double>(S.QueriesOptimized)));
  O->set("optimize_cache_hits",
         JsonValue::number(static_cast<double>(S.OptimizeCacheHits)));
  O->set("optimize_seed_hits",
         JsonValue::number(static_cast<double>(S.OptimizeSeedHits)));
  O->set("rewrite_checks",
         JsonValue::number(static_cast<double>(S.RewriteChecks)));
  O->set("rewrites_accepted",
         JsonValue::number(static_cast<double>(S.RewritesAccepted)));
  JsonRef F = JsonValue::object();
  F->set("hits", JsonValue::number(static_cast<double>(S.Fixpoints.Hits)));
  F->set("misses", JsonValue::number(static_cast<double>(S.Fixpoints.Misses)));
  F->set("publishes",
         JsonValue::number(static_cast<double>(S.Fixpoints.Insertions)));
  F->set("size", JsonValue::number(static_cast<double>(S.Fixpoints.Size)));
  F->set("seeded_runs",
         JsonValue::number(static_cast<double>(S.FixpointSeededRuns)));
  F->set("iterations_replayed", JsonValue::number(static_cast<double>(
                                    S.FixpointIterationsReplayed)));
  F->set("substeps",
         JsonValue::number(static_cast<double>(S.SolverSubSteps)));
  O->set("fixpoints", F);
  // Actual solver runs by the concrete strategy executed (Auto always
  // resolves before a run, so only the three concrete slots appear).
  JsonRef Strat = JsonValue::object();
  for (FixpointStrategy FS :
       {FixpointStrategy::Bfs, FixpointStrategy::Chaining,
        FixpointStrategy::Saturation})
    Strat->set(fixpointStrategyName(FS),
               JsonValue::number(static_cast<double>(
                   S.StrategyRuns[static_cast<size_t>(FS)])));
  O->set("strategy_runs", Strat);
  return O;
}

namespace {

/// Reads one input line into \p Line, bounded by \p MaxBytes (0 =
/// unbounded). An overlong line is consumed to its newline but only the
/// first MaxBytes land in \p Line, with \p Truncated set — the caller
/// answers it with a structured bad_request instead of buffering an
/// arbitrarily large request. Returns false at end of input (or on a
/// stream error, e.g. a read interrupted by a non-restarting signal
/// handler) with nothing read.
bool readLineBounded(std::istream &In, std::string &Line, size_t MaxBytes,
                     bool &Truncated) {
  Line.clear();
  Truncated = false;
  char C;
  while (In.get(C)) {
    if (C == '\n')
      return true;
    if (MaxBytes && Line.size() >= MaxBytes) {
      Truncated = true;
      while (In.get(C))
        if (C == '\n')
          return true;
      return true;
    }
    Line += C;
  }
  return !Line.empty();
}

} // namespace

size_t xsa::runBatchJsonLines(AnalysisSession &Session, std::istream &In,
                              std::ostream &Out, size_t *Failed,
                              bool StableOutput) {
  BatchStreamOptions Opts;
  Opts.Stable = StableOutput;
  return runBatchJsonLines(Session, In, Out, Failed, Opts);
}

size_t xsa::runBatchJsonLines(AnalysisSession &Session, std::istream &In,
                              std::ostream &Out, size_t *Failed,
                              const BatchStreamOptions &Opts) {
  const bool StableOutput = Opts.Stable;
  size_t Answered = 0, Errors = 0;

  // One buffered segment between config lines. With jobs == 1 the
  // segment is flushed after every line, preserving the historical
  // stream-as-you-go behaviour; with jobs > 1 requests accumulate so a
  // whole segment can be dispatched across the pool at once — bounded
  // by MaxSegment so an arbitrarily large input never buffers
  // unboundedly. Pipelined clients that need a response per request
  // should run jobs == 1 (or send a config line to force a flush).
  constexpr size_t MaxSegment = 4096;
  struct Item {
    size_t ReqIdx = ~size_t(0); ///< index into SegReqs, or none
    AnalysisResponse Resp;      ///< pre-made response when ReqIdx is none
  };
  std::vector<AnalysisRequest> SegReqs;
  std::vector<Item> SegItems;

  auto Emit = [&](const AnalysisResponse &Resp) {
    if (Resp.Ok)
      ++Answered;
    else
      ++Errors;
    Out << responseToJson(Resp, /*IncludeVolatile=*/!StableOutput)->dump()
        << "\n";
  };
  auto Flush = [&] {
    if (!SegReqs.empty()) {
      std::vector<AnalysisResponse> Resps = runBatch(Session, SegReqs);
      for (Item &It : SegItems)
        if (It.ReqIdx != ~size_t(0))
          It.Resp = std::move(Resps[It.ReqIdx]);
    }
    for (const Item &It : SegItems)
      Emit(It.Resp);
    SegReqs.clear();
    SegItems.clear();
  };

  std::string Line;
  size_t LineNo = 0;
  bool Truncated = false;
  while (!(Opts.Stop && Opts.Stop->load(std::memory_order_relaxed)) &&
         readLineBounded(In, Line, Opts.MaxLineBytes, Truncated)) {
    ++LineNo;
    if (Truncated) {
      Item It;
      It.Resp.Ok = false;
      It.Resp.Error = "input line exceeds " +
                      std::to_string(Opts.MaxLineBytes) + " bytes";
      It.Resp.ErrorLine = LineNo;
      It.Resp.ErrorByte = static_cast<long>(Opts.MaxLineBytes);
      SegItems.push_back(std::move(It));
      if (Session.jobs() <= 1 || SegItems.size() >= MaxSegment)
        Flush();
      continue;
    }
    // Skip blank lines and #-comments so hand-written batch files can be
    // annotated.
    size_t First = Line.find_first_not_of(" \t\r");
    if (First == std::string::npos || Line[First] == '#')
      continue;
    std::string Error;
    size_t ErrByte = 0;
    JsonRef Obj = parseJson(Line, Error, &ErrByte);
    if (!Obj) {
      Item It;
      It.Resp.Ok = false;
      It.Resp.Error = "bad JSON: " + Error;
      It.Resp.ErrorLine = LineNo;
      It.Resp.ErrorByte = static_cast<long>(ErrByte);
      SegItems.push_back(std::move(It));
    } else if (Obj->str("op") == "config") {
      // Control line: answer in order, apply to everything after it.
      // Accepts 'jobs' (worker count), 'optimize' (pre-pass switch),
      // 'share_fixpoints' (cross-request fixpoint sharing),
      // 'fixpoint_strategy' (bfs/chaining/saturation/auto) and/or
      // 'bdd_backend' (serial/parallel); at least one must be present.
      Flush();
      AnalysisResponse Resp;
      Resp.Id = Obj->str("id");
      // Unknown keys are rejected with a structured error rather than
      // silently ignored — a misspelled switch ("share_fixpoint") must
      // not read as an applied one.
      static constexpr const char *KnownKeys[] = {"op", "id", "jobs",
                                                  "optimize",
                                                  "share_fixpoints",
                                                  "fixpoint_strategy",
                                                  "bdd_backend"};
      std::string UnknownKey;
      for (const auto &[K, V] : Obj->members())
        if (std::find_if(std::begin(KnownKeys), std::end(KnownKeys),
                         [&](const char *Known) { return K == Known; }) ==
            std::end(KnownKeys)) {
          UnknownKey = K;
          break;
        }
      if (!UnknownKey.empty()) {
        JsonRef O = JsonValue::object();
        if (!Resp.Id.empty())
          O->set("id", JsonValue::string(Resp.Id));
        O->set("ok", JsonValue::boolean(false));
        JsonRef E = errorObjectJson(
            "unknown_config_key", "unknown config key '" + UnknownKey + "'",
            LineNo);
        E->set("key", JsonValue::string(UnknownKey));
        O->set("error", E);
        ++Errors;
        Out << O->dump() << "\n";
        continue;
      }
      JsonRef Jobs = Obj->get("jobs");
      JsonRef Optimize = Obj->get("optimize");
      JsonRef Share = Obj->get("share_fixpoints");
      JsonRef Strat = Obj->get("fixpoint_strategy");
      // An invalid strategy value gets the same structured rejection as
      // an unknown key: a typo ("chainning") must not silently leave
      // the previous strategy in force.
      FixpointStrategy StratVal = FixpointStrategy::Bfs;
      bool HaveStrat = false;
      if (!Strat->isNull()) {
        if (Strat->type() != JsonValue::Type::String ||
            !parseFixpointStrategy(Strat->asString(), StratVal)) {
          std::string Given = Strat->type() == JsonValue::Type::String
                                  ? Strat->asString()
                                  : Strat->dump();
          JsonRef O = JsonValue::object();
          if (!Resp.Id.empty())
            O->set("id", JsonValue::string(Resp.Id));
          O->set("ok", JsonValue::boolean(false));
          JsonRef E = errorObjectJson(
              "invalid_config_value",
              "invalid fixpoint_strategy '" + Given +
                  "' (expected bfs, chaining, saturation or auto)",
              LineNo);
          E->set("key", JsonValue::string("fixpoint_strategy"));
          E->set("value", JsonValue::string(Given));
          O->set("error", E);
          ++Errors;
          Out << O->dump() << "\n";
          continue;
        }
        HaveStrat = true;
      }
      JsonRef Backend = Obj->get("bdd_backend");
      // Same treatment for the backend: a typo ("paralel") must not
      // silently leave the previous backend in force.
      BddBackendKind BackendVal = BddBackendKind::Serial;
      bool HaveBackend = false;
      if (!Backend->isNull()) {
        if (Backend->type() != JsonValue::Type::String ||
            !parseBddBackend(Backend->asString(), BackendVal)) {
          std::string Given = Backend->type() == JsonValue::Type::String
                                  ? Backend->asString()
                                  : Backend->dump();
          JsonRef O = JsonValue::object();
          if (!Resp.Id.empty())
            O->set("id", JsonValue::string(Resp.Id));
          O->set("ok", JsonValue::boolean(false));
          JsonRef E = errorObjectJson(
              "invalid_config_value",
              "invalid bdd_backend '" + Given +
                  "' (expected serial or parallel)",
              LineNo);
          E->set("key", JsonValue::string("bdd_backend"));
          E->set("value", JsonValue::string(Given));
          O->set("error", E);
          ++Errors;
          Out << O->dump() << "\n";
          continue;
        }
        HaveBackend = true;
      }
      bool BadJobs = !Jobs->isNull() &&
                     (Jobs->type() != JsonValue::Type::Number ||
                      Jobs->asNumber() < 0 ||
                      Jobs->asNumber() != static_cast<double>(static_cast<size_t>(
                                              Jobs->asNumber())));
      bool BadOptimize =
          !Optimize->isNull() && Optimize->type() != JsonValue::Type::Bool;
      bool BadShare =
          !Share->isNull() && Share->type() != JsonValue::Type::Bool;
      if (BadJobs || BadOptimize || BadShare ||
          (Jobs->isNull() && Optimize->isNull() && Share->isNull() &&
           !HaveStrat && !HaveBackend)) {
        Resp.Ok = false;
        Resp.ErrorLine = LineNo;
        Resp.Error = "config needs 'jobs' (a non-negative integer), "
                     "'optimize' and/or 'share_fixpoints' (booleans), "
                     "'fixpoint_strategy' (a strategy name), and/or "
                     "'bdd_backend' (serial or parallel)";
        Emit(Resp);
      } else {
        if (!Jobs->isNull())
          Session.setJobs(static_cast<size_t>(Jobs->asNumber()));
        if (!Optimize->isNull())
          Session.setOptimize(Optimize->asBool());
        if (!Share->isNull())
          Session.setShareFixpoints(Share->asBool());
        if (HaveStrat)
          Session.setFixpointStrategy(StratVal);
        if (HaveBackend)
          Session.setBddBackend(BackendVal);
        JsonRef O = JsonValue::object();
        if (!Resp.Id.empty())
          O->set("id", JsonValue::string(Resp.Id));
        O->set("ok", JsonValue::boolean(true));
        O->set("jobs", JsonValue::number(static_cast<double>(Session.jobs())));
        O->set("optimize", JsonValue::boolean(Session.optimizeEnabled()));
        O->set("share_fixpoints",
               JsonValue::boolean(Session.shareFixpointsEnabled()));
        O->set("fixpoint_strategy",
               JsonValue::string(
                   fixpointStrategyName(Session.fixpointStrategy())));
        O->set("bdd_backend",
               JsonValue::string(bddBackendName(Session.bddBackend())));
        ++Answered;
        Out << O->dump() << "\n";
      }
      continue;
    } else if (Obj->str("op") == "metrics") {
      // Control line: the process-wide metric registry as JSON, after a
      // flush so in-flight requests of this segment are counted. The
      // registry's members (schema version first) are spliced into the
      // response object, so clients key on response["schema"].
      Flush();
      JsonRef O = JsonValue::object();
      std::string Id = Obj->str("id");
      if (!Id.empty())
        O->set("id", JsonValue::string(Id));
      O->set("ok", JsonValue::boolean(true));
      JsonRef M = MetricRegistry::global().toJson(
          /*IncludeVolatile=*/!StableOutput);
      for (const auto &[K, V] : M->members())
        O->set(K, V);
      ++Answered;
      Out << O->dump() << "\n";
      continue;
    } else {
      AnalysisRequest Req;
      Item It;
      if (!requestFromJson(*Obj, Req, Error)) {
        It.Resp.Id = Obj->str("id");
        It.Resp.Ok = false;
        It.Resp.Error = Error;
        It.Resp.ErrorLine = LineNo;
      } else {
        It.ReqIdx = SegReqs.size();
        SegReqs.push_back(std::move(Req));
      }
      SegItems.push_back(std::move(It));
    }
    if (Session.jobs() <= 1 || SegItems.size() >= MaxSegment)
      Flush();
  }
  Flush();
  if (Failed)
    *Failed = Errors;
  return Answered;
}
