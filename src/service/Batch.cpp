//===- Batch.cpp - Batch request pipeline ----------------------------------===//

#include "service/Batch.h"

#include "logic/CycleFree.h"
#include "logic/Parser.h"
#include "tree/Xml.h"

#include <istream>
#include <ostream>

using namespace xsa;

bool xsa::parseRequestKind(const std::string &Name, RequestKind &Kind) {
  if (Name == "sat")
    Kind = RequestKind::Sat;
  else if (Name == "empty")
    Kind = RequestKind::Emptiness;
  else if (Name == "contains")
    Kind = RequestKind::Containment;
  else if (Name == "overlap")
    Kind = RequestKind::Overlap;
  else if (Name == "cover")
    Kind = RequestKind::Coverage;
  else if (Name == "equiv")
    Kind = RequestKind::Equivalence;
  else if (Name == "typecheck")
    Kind = RequestKind::TypeCheck;
  else
    return false;
  return true;
}

const char *xsa::requestKindName(RequestKind K) {
  switch (K) {
  case RequestKind::Sat:
    return "sat";
  case RequestKind::Emptiness:
    return "empty";
  case RequestKind::Containment:
    return "contains";
  case RequestKind::Overlap:
    return "overlap";
  case RequestKind::Coverage:
    return "cover";
  case RequestKind::Equivalence:
    return "equiv";
  case RequestKind::TypeCheck:
    return "typecheck";
  }
  return "?";
}

namespace {

AnalysisResponse errorResponse(const AnalysisRequest &Req, std::string Msg) {
  AnalysisResponse R;
  R.Id = Req.Id;
  R.Ok = false;
  R.Error = std::move(Msg);
  return R;
}

/// Resolves a query string through the session memo, or fails.
bool resolveQuery(AnalysisSession &Session, const std::string &Src,
                  const char *Which, ExprRef &E, std::string &Error) {
  if (Src.empty()) {
    Error = std::string("missing query ") + Which;
    return false;
  }
  std::string ParseError;
  E = Session.query(Src, ParseError);
  if (!E) {
    Error = std::string(Which) + ": " + ParseError;
    return false;
  }
  return true;
}

bool resolveContext(AnalysisSession &Session, const std::string &Name,
                    Formula &Chi, std::string &Error) {
  std::string DtdError;
  Chi = Session.typeContext(Name, DtdError);
  if (!Chi) {
    Error = DtdError;
    return false;
  }
  return true;
}

/// \p HoldsWhenUnsat mirrors Analyzer::fromSolver: for the unsat-style
/// problems the property holds when the underlying formula is
/// unsatisfiable, for overlap when it is satisfiable.
void fillFromAnalysis(AnalysisResponse &R, const AnalysisResult &A,
                      bool HoldsWhenUnsat) {
  R.Ok = true;
  R.Holds = A.Holds;
  R.Satisfiable = HoldsWhenUnsat ? !A.Holds : A.Holds;
  R.FromCache = A.FromCache;
  R.Stats = A.Stats;
  if (A.Tree)
    R.ModelXml = printXml(*A.Tree, A.Target);
}

} // namespace

AnalysisResponse xsa::runRequest(AnalysisSession &Session,
                                 const AnalysisRequest &Req) {
  AnalysisResponse R;
  R.Id = Req.Id;
  std::string Error;

  if (Req.Kind == RequestKind::Sat) {
    Formula F = parseFormula(Session.factory(), Req.Formula, Error);
    if (!F)
      return errorResponse(Req, "formula: " + Error);
    if (!isCycleFree(F))
      return errorResponse(Req, "formula is not cycle free");
    SolverResult SR = Session.satisfiable(F);
    R.Ok = true;
    R.Satisfiable = SR.Satisfiable;
    R.Holds = SR.Satisfiable;
    R.FromCache = SR.FromCache;
    R.Stats = SR.Stats;
    if (SR.Model)
      R.ModelXml = printXml(*SR.Model);
    return R;
  }

  ExprRef E1;
  if (!resolveQuery(Session, Req.Query1, "e1", E1, Error))
    return errorResponse(Req, Error);
  Formula Chi1;
  if (!resolveContext(Session, Req.Dtd1, Chi1, Error))
    return errorResponse(Req, Error);
  // An absent dtd2 inherits dtd1: the common "same schema on both sides"
  // case.
  const std::string &Dtd2 = Req.Dtd2.empty() ? Req.Dtd1 : Req.Dtd2;

  switch (Req.Kind) {
  case RequestKind::Sat:
    break; // handled above
  case RequestKind::Emptiness:
    fillFromAnalysis(R, Session.emptiness(E1, Chi1), /*HoldsWhenUnsat=*/true);
    break;
  case RequestKind::Containment:
  case RequestKind::Overlap:
  case RequestKind::Equivalence: {
    ExprRef E2;
    if (!resolveQuery(Session, Req.Query2, "e2", E2, Error))
      return errorResponse(Req, Error);
    Formula Chi2;
    if (!resolveContext(Session, Dtd2, Chi2, Error))
      return errorResponse(Req, Error);
    if (Req.Kind == RequestKind::Containment)
      fillFromAnalysis(R, Session.containment(E1, Chi1, E2, Chi2),
                       /*HoldsWhenUnsat=*/true);
    else if (Req.Kind == RequestKind::Overlap)
      fillFromAnalysis(R, Session.overlap(E1, Chi1, E2, Chi2),
                       /*HoldsWhenUnsat=*/false);
    else
      fillFromAnalysis(R, Session.equivalence(E1, Chi1, E2, Chi2),
                       /*HoldsWhenUnsat=*/true);
    break;
  }
  case RequestKind::Coverage: {
    if (Req.Others.empty())
      return errorResponse(Req, "cover needs a non-empty 'others' array");
    std::vector<ExprRef> Others;
    std::vector<Formula> OtherChis;
    for (size_t I = 0; I < Req.Others.size(); ++I) {
      ExprRef E;
      if (!resolveQuery(Session, Req.Others[I], "others", E, Error))
        return errorResponse(Req, Error);
      Others.push_back(E);
      OtherChis.push_back(Chi1);
    }
    fillFromAnalysis(R, Session.coverage(E1, Chi1, Others, OtherChis),
                     /*HoldsWhenUnsat=*/true);
    break;
  }
  case RequestKind::TypeCheck: {
    if (Req.OutDtd.empty())
      return errorResponse(Req, "typecheck needs an output type 'out'");
    std::string DtdError;
    Formula OutType = Session.typeFormula(Req.OutDtd, DtdError);
    if (!OutType)
      return errorResponse(Req, DtdError);
    fillFromAnalysis(R, Session.staticTypeCheck(E1, Chi1, OutType),
                     /*HoldsWhenUnsat=*/true);
    break;
  }
  }
  return R;
}

std::vector<AnalysisResponse>
xsa::runBatch(AnalysisSession &Session,
              const std::vector<AnalysisRequest> &Reqs) {
  std::vector<AnalysisResponse> Out;
  Out.reserve(Reqs.size());
  for (const AnalysisRequest &Req : Reqs)
    Out.push_back(runRequest(Session, Req));
  return Out;
}

bool xsa::requestFromJson(const JsonValue &Obj, AnalysisRequest &Req,
                          std::string &Error) {
  if (Obj.type() != JsonValue::Type::Object) {
    Error = "request must be a JSON object";
    return false;
  }
  Req = AnalysisRequest();
  Req.Id = Obj.str("id");
  std::string Op = Obj.str("op");
  if (Op.empty()) {
    Error = "missing 'op'";
    return false;
  }
  if (!parseRequestKind(Op, Req.Kind)) {
    Error = "unknown op '" + Op + "'";
    return false;
  }
  Req.Formula = Obj.str("f");
  Req.Query1 = Obj.str("e1", Obj.str("e"));
  Req.Query2 = Obj.str("e2");
  Req.Dtd1 = Obj.str("dtd1", Obj.str("dtd"));
  Req.Dtd2 = Obj.str("dtd2");
  Req.OutDtd = Obj.str("out");
  JsonRef Others = Obj.get("others");
  if (!Others->isNull()) {
    if (Others->type() != JsonValue::Type::Array) {
      Error = "'others' must be an array of XPath strings";
      return false;
    }
    for (const JsonRef &V : Others->items()) {
      if (V->type() != JsonValue::Type::String) {
        Error = "'others' must be an array of XPath strings";
        return false;
      }
      Req.Others.push_back(V->asString());
    }
  }
  return true;
}

JsonRef xsa::responseToJson(const AnalysisResponse &Resp) {
  JsonRef O = JsonValue::object();
  if (!Resp.Id.empty())
    O->set("id", JsonValue::string(Resp.Id));
  O->set("ok", JsonValue::boolean(Resp.Ok));
  if (!Resp.Ok) {
    O->set("error", JsonValue::string(Resp.Error));
    return O;
  }
  O->set("holds", JsonValue::boolean(Resp.Holds));
  O->set("satisfiable", JsonValue::boolean(Resp.Satisfiable));
  O->set("cache", JsonValue::string(Resp.FromCache ? "hit" : "miss"));
  O->set("lean", JsonValue::number(static_cast<double>(Resp.Stats.LeanSize)));
  O->set("iterations",
         JsonValue::number(static_cast<double>(Resp.Stats.Iterations)));
  O->set("time_ms", JsonValue::number(Resp.Stats.TimeMs));
  if (!Resp.ModelXml.empty())
    O->set("model", JsonValue::string(Resp.ModelXml));
  return O;
}

JsonRef xsa::statsToJson(const SessionStats &S) {
  JsonRef O = JsonValue::object();
  JsonRef C = JsonValue::object();
  C->set("hits", JsonValue::number(static_cast<double>(S.Cache.Hits)));
  C->set("misses", JsonValue::number(static_cast<double>(S.Cache.Misses)));
  C->set("insertions",
         JsonValue::number(static_cast<double>(S.Cache.Insertions)));
  C->set("evictions",
         JsonValue::number(static_cast<double>(S.Cache.Evictions)));
  C->set("size", JsonValue::number(static_cast<double>(S.Cache.Size)));
  O->set("cache", C);
  O->set("solves", JsonValue::number(static_cast<double>(S.Solves)));
  O->set("solver_iterations",
         JsonValue::number(static_cast<double>(S.SolverIterations)));
  O->set("solver_time_ms", JsonValue::number(S.SolverTimeMs));
  O->set("queries_parsed",
         JsonValue::number(static_cast<double>(S.QueriesParsed)));
  O->set("query_cache_hits",
         JsonValue::number(static_cast<double>(S.QueryCacheHits)));
  O->set("dtd_compilations",
         JsonValue::number(static_cast<double>(S.DtdCompilations)));
  O->set("dtd_cache_hits",
         JsonValue::number(static_cast<double>(S.DtdCacheHits)));
  return O;
}

size_t xsa::runBatchJsonLines(AnalysisSession &Session, std::istream &In,
                              std::ostream &Out, size_t *Failed) {
  size_t Answered = 0, Errors = 0;
  std::string Line;
  while (std::getline(In, Line)) {
    // Skip blank lines and #-comments so hand-written batch files can be
    // annotated.
    size_t First = Line.find_first_not_of(" \t\r");
    if (First == std::string::npos || Line[First] == '#')
      continue;
    std::string Error;
    JsonRef Obj = parseJson(Line, Error);
    AnalysisRequest Req;
    AnalysisResponse Resp;
    if (!Obj) {
      Resp.Ok = false;
      Resp.Error = "bad JSON: " + Error;
    } else if (!requestFromJson(*Obj, Req, Error)) {
      Resp.Id = Obj->str("id");
      Resp.Ok = false;
      Resp.Error = Error;
    } else {
      Resp = runRequest(Session, Req);
    }
    if (Resp.Ok)
      ++Answered;
    else
      ++Errors;
    Out << responseToJson(Resp)->dump() << "\n";
  }
  if (Failed)
    *Failed = Errors;
  return Answered;
}
