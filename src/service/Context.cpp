//===- Context.cpp - Per-worker analysis context ---------------------------===//

#include "service/Context.h"

#include "obs/Trace.h"
#include "support/KeyEncoding.h"

#include "xpath/Compile.h"
#include "xpath/Parser.h"
#include "xtype/BuiltinDtds.h"
#include "xtype/Compile.h"

#include <fstream>
#include <sstream>

using namespace xsa;

const std::string &
AnalysisContext::SharedCacheAdapter::textFor(Formula Canonical) {
  auto It = TextMemo.find(Canonical);
  if (It != TextMemo.end())
    return It->second;
  if (TextMemo.size() >= MaxTextMemo)
    TextMemo.clear();
  return TextMemo.emplace(Canonical, FF.toString(Canonical)).first->second;
}

const SolverResult *
AnalysisContext::SharedCacheAdapter::lookup(Formula Canonical,
                                            uint32_t OptsKey) {
  if (!Shared.lookup(textFor(Canonical), OptsKey, Hit))
    return nullptr;
  return &Hit;
}

void AnalysisContext::SharedCacheAdapter::store(Formula Canonical,
                                                uint32_t OptsKey,
                                                const SolverResult &R) {
  Shared.store(textFor(Canonical), OptsKey, R);
}

AnalysisContext::AnalysisContext(const SolverOptions &BaseOpts,
                                 ShardedResultCache *SharedCache,
                                 AtomicSessionStats *SharedStats,
                                 SharedFixpointStore *SharedFixpoints,
                                 OptimizeSeedStore *SharedOptimizeSeeds,
                                 StrategyChoiceStore *SharedStrategyChoices)
    : Opts(BaseOpts), Stats(SharedStats), OptimizeSeeds(SharedOptimizeSeeds) {
  if (SharedCache) {
    CacheAdapter = std::make_unique<SharedCacheAdapter>(FF, *SharedCache);
    Opts.Cache = CacheAdapter.get();
  } else {
    Opts.Cache = nullptr;
  }
  if (SharedFixpoints) {
    Fixpoints = std::make_unique<FixpointAdapter>(*SharedFixpoints);
    Opts.Fixpoints = Fixpoints.get();
  } else {
    Opts.Fixpoints = nullptr;
  }
  if (SharedStrategyChoices) {
    StrategyChoices =
        std::make_unique<StrategyMemoAdapter>(*SharedStrategyChoices);
    Opts.StrategyChoices = StrategyChoices.get();
  } else {
    Opts.StrategyChoices = nullptr;
  }
  if (Stats) {
    Opts.StatsHook = [this](const SolverStats &S) {
      // Relaxed tallies; see the memory-order note in the header.
      Stats->Solves.fetch_add(1, std::memory_order_relaxed);
      Stats->SolverIterations.fetch_add(S.Iterations,
                                        std::memory_order_relaxed);
      Stats->SolverSubSteps.fetch_add(S.SubSteps, std::memory_order_relaxed);
      Stats->StrategyRuns[static_cast<size_t>(S.StrategyUsed)].fetch_add(
          1, std::memory_order_relaxed);
      Stats->SolverTimeUs.fetch_add(static_cast<size_t>(S.TimeMs * 1000.0),
                                    std::memory_order_relaxed);
      if (S.IterationsReplayed) {
        Stats->FixpointSeededRuns.fetch_add(1, std::memory_order_relaxed);
        Stats->FixpointIterationsReplayed.fetch_add(
            S.IterationsReplayed, std::memory_order_relaxed);
      }
    };
  } else {
    Opts.StatsHook = nullptr;
  }
  // The Analyzer forces RequireSingleRoot for the XPath decision
  // problems; the raw solver keeps the caller's setting. The two run
  // under different option fingerprints, so cache entries never cross.
  An = std::make_unique<Analyzer>(FF, Opts);
  RawSolver = std::make_unique<BddSolver>(FF, Opts);
}

SolverResult AnalysisContext::satisfiable(Formula Psi) {
  return RawSolver->solve(Psi);
}

bool AnalysisContext::shareFixpoints() const {
  return Fixpoints && Fixpoints->On;
}

void AnalysisContext::setShareFixpoints(bool On) {
  if (Fixpoints)
    Fixpoints->On = On;
}

void AnalysisContext::setFixpointStrategy(FixpointStrategy S) {
  if (Opts.Strategy == S)
    return;
  Opts.Strategy = S;
  // The Analyzer and raw solver copy Opts at construction; rebuild them
  // so the new strategy takes effect. The adapters, memos and shared
  // fronts all live in the context and stay wired through the pointers
  // already in Opts.
  An = std::make_unique<Analyzer>(FF, Opts);
  RawSolver = std::make_unique<BddSolver>(FF, Opts);
}

void AnalysisContext::setBddBackend(BddBackendKind K) {
  if (Opts.Backend == K)
    return;
  Opts.Backend = K;
  // Same rebuild dance as setFixpointStrategy: the Analyzer and raw
  // solver copy Opts at construction.
  An = std::make_unique<Analyzer>(FF, Opts);
  RawSolver = std::make_unique<BddSolver>(FF, Opts);
}

void AnalysisContext::setBddThreads(unsigned N) {
  if (Opts.BddThreads == N)
    return;
  Opts.BddThreads = N;
  An = std::make_unique<Analyzer>(FF, Opts);
  RawSolver = std::make_unique<BddSolver>(FF, Opts);
}

ExprRef AnalysisContext::query(const std::string &XPath, std::string &Error) {
  auto It = QueryMemo.find(XPath);
  if (It != QueryMemo.end()) {
    if (Stats)
      Stats->QueryCacheHits.fetch_add(1, std::memory_order_relaxed);
    Error = It->second.Error;
    return It->second.E;
  }
  QueryEntry Entry;
  {
    Span ParseSpan("parse.query");
    Entry.E = parseXPath(XPath, Entry.Error);
  }
  if (Stats)
    Stats->QueriesParsed.fetch_add(1, std::memory_order_relaxed);
  auto &Stored = QueryMemo.emplace(XPath, std::move(Entry)).first->second;
  Error = Stored.Error;
  return Stored.E;
}

AnalysisContext::DtdEntry &AnalysisContext::loadDtd(const std::string &Name) {
  auto It = DtdMemo.find(Name);
  if (It != DtdMemo.end()) {
    if (Stats)
      Stats->DtdCacheHits.fetch_add(1, std::memory_order_relaxed);
    return It->second;
  }
  DtdEntry Entry;
  Span DtdSpan("parse.dtd");
  DtdSpan.arg("name", Name);
  const Dtd *D = nullptr;
  Dtd Parsed;
  if (Name == "wikipedia") {
    D = &wikipediaDtd();
  } else if (Name == "smil") {
    D = &smil10Dtd();
  } else if (Name == "xhtml") {
    D = &xhtml10StrictDtd();
  } else {
    std::ifstream In(Name);
    if (!In) {
      Entry.Error = "cannot read DTD " + Name;
    } else {
      std::ostringstream SS;
      SS << In.rdbuf();
      if (!parseDtd(SS.str(), Parsed, Entry.Error))
        Parsed = Dtd();
      else
        D = &Parsed;
    }
  }
  if (D) {
    Entry.Type = compileDtd(FF, *D);
    if (Stats)
      Stats->DtdCompilations.fetch_add(1, std::memory_order_relaxed);
  }
  return DtdMemo.emplace(Name, std::move(Entry)).first->second;
}

Formula AnalysisContext::typeFormula(const std::string &Name,
                                     std::string &Error) {
  if (Name.empty())
    return FF.trueF();
  const DtdEntry &Entry = loadDtd(Name);
  Error = Entry.Error;
  return Entry.Type;
}

std::shared_ptr<const AnalysisContext::OptimizeEntry>
AnalysisContext::optimized(const std::string &XPath, const std::string &Dtd,
                           bool AllowSeed) {
  // Length-prefixed so the key stays injective even for query text the
  // parser will reject (error entries are memoized too).
  std::string Key = lengthPrefixedKey(XPath, Dtd);
  auto It = OptimizeMemo.find(Key);
  if (It != OptimizeMemo.end()) {
    // A seeded entry has no proof trace; a caller that owes one (an
    // explicit optimize request) re-derives and replaces it.
    if (!It->second->Seeded || AllowSeed) {
      if (Stats)
        Stats->OptimizeCacheHits.fetch_add(1, std::memory_order_relaxed);
      return It->second;
    }
    OptimizeMemo.erase(It);
  }
  // Pre-pass path: a form someone already proved (this process or a
  // loaded cache file) is taken as-is — no rewriter run, no obligations.
  // Proofs are only as good as the DTD they ran under, and a DTD *file*
  // can change between processes, so the seed must match the compiled
  // content fingerprint, not just the name.
  if (AllowSeed && OptimizeSeeds) {
    std::string SeedText;
    uint64_t DtdFp = typeContextFingerprint(Dtd);
    if (DtdFp && OptimizeSeeds->lookup(XPath, Dtd, DtdFp, SeedText)) {
      auto Entry = std::make_shared<OptimizeEntry>();
      ExprRef E = query(XPath, Entry->Error);
      std::string SeedError;
      ExprRef Opt = E ? parseXPath(SeedText, SeedError) : nullptr;
      if (Opt) {
        Entry->Ok = true;
        Entry->Seeded = true;
        Entry->Result.Original = E;
        Entry->Result.Optimized = Opt;
        CostModel Cost;
        Entry->Result.OriginalCost = Cost.cost(E);
        Entry->Result.OptimizedCost = Cost.cost(Opt);
        if (Stats)
          Stats->OptimizeSeedHits.fetch_add(1, std::memory_order_relaxed);
        if (OptimizeMemo.size() >= MaxOptimizeMemo)
          OptimizeMemo.clear();
        return OptimizeMemo.emplace(std::move(Key), std::move(Entry))
            .first->second;
      }
      // A seed that no longer parses is ignored, not trusted.
    }
  }
  // Epoch flush: entries are heavyweight (a full proof trace each), so
  // unlike the parser/DTD memos this one is bounded. Dropping the whole
  // map is safe — entries are shared_ptr-owned, so a held one outlives
  // the flush — and on a near-duplicate stream (the pre-pass's reason
  // to exist) re-deriving a flushed rewrite is answered from the
  // session's result cache anyway.
  if (OptimizeMemo.size() >= MaxOptimizeMemo)
    OptimizeMemo.clear();
  auto Entry = std::make_shared<OptimizeEntry>();
  ExprRef E = query(XPath, Entry->Error);
  if (E) {
    Formula Chi = typeContext(Dtd, Entry->Error);
    if (Chi) {
      Span RewriteSpan("rewrite.optimize");
      Rewriter RW(*An);
      Entry->Result = RW.optimize(E, Chi);
      RewriteSpan.arg("checked",
                      static_cast<double>(Entry->Result.CheckedCandidates));
      RewriteSpan.arg("accepted",
                      static_cast<double>(Entry->Result.AcceptedSteps));
      RewriteSpan.end();
      Entry->Ok = true;
      if (Stats) {
        Stats->QueriesOptimized.fetch_add(1, std::memory_order_relaxed);
        Stats->RewriteChecks.fetch_add(Entry->Result.CheckedCandidates,
                                       std::memory_order_relaxed);
        Stats->RewritesAccepted.fetch_add(Entry->Result.AcceptedSteps,
                                          std::memory_order_relaxed);
      }
      // Publish the proved form so other contexts — and, through the
      // persistent cache, other processes — skip this derivation. The
      // fingerprint records which DTD content the proofs ran under.
      if (OptimizeSeeds)
        if (uint64_t DtdFp = typeContextFingerprint(Dtd))
          OptimizeSeeds->store(XPath, Dtd, DtdFp, Entry->Result.text());
    }
  }
  return OptimizeMemo.emplace(std::move(Key), std::move(Entry)).first->second;
}

Formula AnalysisContext::typeContext(const std::string &Name,
                                     std::string &Error) {
  if (Name.empty())
    return FF.trueF();
  DtdEntry &Entry = loadDtd(Name);
  Error = Entry.Error;
  if (!Entry.Type)
    return nullptr;
  // Memoized: rootFormula mints a fresh µ-variable per call, so building
  // the conjunction anew each time would defeat pointer-stable reuse.
  if (!Entry.Context)
    Entry.Context = FF.conj(Entry.Type, rootFormula(FF));
  return Entry.Context;
}

uint64_t AnalysisContext::typeContextFingerprint(const std::string &Name) {
  std::string Error;
  Formula Chi = typeContext(Name, Error);
  if (!Chi)
    return 0;
  // The unconstrained context gets the same lazy memoization as named
  // DTDs (its canonical text never changes within a context).
  uint64_t &Fp = Name.empty() ? EmptyContextFp : loadDtd(Name).ContextFp;
  if (!Fp)
    Fp = fingerprintText(FF.toString(FF.canonicalize(Chi)));
  return Fp;
}
