//===- Batch.h - Batch request pipeline --------------------------*- C++ -*-===//
//
// Part of the xsa project (PLDI 2007 XPath/type analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batch entry points of the service layer. A batch is a sequence of
/// AnalysisRequests answered against one AnalysisSession, so shared
/// sub-work is paid once per batch (and per session):
///
///  * each distinct XPath source string is parsed once (session memo);
///  * each distinct DTD is loaded and compiled to Lµ once, no matter how
///    many requests name it as their context;
///  * each semantically distinct satisfiability problem reaches the BDD
///    fixpoint once — repeated or α-equivalent formulas (duplicate
///    requests, shared containment operands, equivalence directions
///    already asked separately) are answered from the LRU result cache.
///
/// The JSON-lines front end maps one request object per input line to
/// one response object per output line; see README.md for the schema.
///
//===----------------------------------------------------------------------===//

#ifndef XSA_SERVICE_BATCH_H
#define XSA_SERVICE_BATCH_H

#include "service/Json.h"
#include "service/Request.h"
#include "service/Session.h"

#include <iosfwd>
#include <vector>

namespace xsa {

/// Answers one request against the session. Never throws; malformed
/// requests come back with Ok == false and an Error.
AnalysisResponse runRequest(AnalysisSession &Session,
                            const AnalysisRequest &Req);

/// Answers a whole batch in order.
std::vector<AnalysisResponse> runBatch(AnalysisSession &Session,
                                       const std::vector<AnalysisRequest> &Reqs);

/// Decodes a JSON request object:
///   {"op":"contains","id":"q1","e1":"/a//b","e2":"//b","dtd":"xhtml"}
/// Fields: op (sat|empty|contains|overlap|cover|equiv|typecheck),
/// id, f (Lµ formula, sat), e1/e2 (XPath), others (array of XPath,
/// cover), dtd/dtd1, dtd2, out (typecheck). Returns false and sets
/// \p Error on an unusable request.
bool requestFromJson(const JsonValue &Obj, AnalysisRequest &Req,
                     std::string &Error);

/// Encodes a response as a JSON object (id, ok, error, holds,
/// satisfiable, cache, lean, iterations, time_ms, model).
JsonRef responseToJson(const AnalysisResponse &Resp);

/// Encodes cumulative session statistics.
JsonRef statsToJson(const SessionStats &S);

/// JSON-lines driver: reads one request object per non-empty line of
/// \p In, writes one response object per line to \p Out. Unparseable
/// lines produce an {"ok":false} response line, not a stop. Returns the
/// number of requests answered successfully; \p Failed (when non-null)
/// receives the number that were not (an empty batch is 0/0).
size_t runBatchJsonLines(AnalysisSession &Session, std::istream &In,
                         std::ostream &Out, size_t *Failed = nullptr);

} // namespace xsa

#endif // XSA_SERVICE_BATCH_H
