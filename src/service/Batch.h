//===- Batch.h - Batch request pipeline --------------------------*- C++ -*-===//
//
// Part of the xsa project (PLDI 2007 XPath/type analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batch entry points of the service layer. A batch is a sequence of
/// AnalysisRequests answered against one AnalysisSession, so shared
/// sub-work is paid once per batch (and per session):
///
///  * each distinct XPath source string is parsed once per context;
///  * each distinct DTD is loaded and compiled to Lµ once per context,
///    no matter how many requests name it;
///  * each semantically distinct satisfiability problem reaches the BDD
///    fixpoint once *per session* — repeated or α-equivalent formulas
///    (duplicate requests, shared containment operands, equivalence
///    directions already asked separately) are answered from the shared
///    sharded result cache, across all workers.
///
/// When the session is configured with jobs > 1, runBatch dispatches
/// requests over the session's WorkerPool, one AnalysisContext per
/// worker. Responses always come back in input order, and the semantic
/// payload of every response (verdict, model, lean size) is
/// deterministic — independent of the worker count and of the dispatch
/// interleaving — because every context derives the same canonical
/// problems and the solver itself is deterministic. The `cache`,
/// `time_ms`, `iterations` and `strategy` fields describe *execution*
/// (who hit the shared cache, how long the winning run took, how the
/// fixpoint was scheduled) and may differ between a parallel and a
/// serial cold run; textually identical requests are
/// deduplicated before dispatch and reported exactly as a serial run
/// would (first one solves, the rest are cache hits). On a warm session
/// every field, timing included, is byte-identical at any job count.
///
/// The JSON-lines front end maps one request object per input line to
/// one response object per output line; see README.md for the schema. A
/// control line {"op":"config","jobs":N} switches the worker count
/// mid-stream.
///
//===----------------------------------------------------------------------===//

#ifndef XSA_SERVICE_BATCH_H
#define XSA_SERVICE_BATCH_H

#include "service/Json.h"
#include "service/Request.h"
#include "service/Session.h"

#include <atomic>
#include <iosfwd>
#include <vector>

namespace xsa {

/// Answers one request against a solver context. Never throws; malformed
/// requests come back with Ok == false and an Error.
AnalysisResponse runRequest(AnalysisContext &Ctx, const AnalysisRequest &Req);

/// Convenience: answers against the session's main (serial) context.
AnalysisResponse runRequest(AnalysisSession &Session,
                            const AnalysisRequest &Req);

/// Answers a whole batch, in input order. With Session.jobs() > 1 the
/// independent requests are dispatched across the session's worker pool
/// (see the file comment for the determinism guarantee); with jobs() == 1
/// they run serially on the main context.
std::vector<AnalysisResponse> runBatch(AnalysisSession &Session,
                                       const std::vector<AnalysisRequest> &Reqs);

/// Decodes a JSON request object:
///   {"op":"contains","id":"q1","e1":"/a//b","e2":"//b","dtd":"xhtml"}
/// Fields: op (sat|empty|contains|overlap|cover|equiv|typecheck|
/// optimize), id, f (Lµ formula, sat), e1/e2 (XPath), others (array of
/// XPath, cover), dtd/dtd1, dtd2, out (typecheck). Returns false and
/// sets \p Error on an unusable request.
bool requestFromJson(const JsonValue &Obj, AnalysisRequest &Req,
                     std::string &Error);

/// Encodes a response as a JSON object (id, ok, error, holds,
/// satisfiable, cache, lean, iterations, iterations_replayed, substeps,
/// strategy, time_ms, model; optimize responses instead carry optimized,
/// cost_before, cost_after, rewrites and the proof trace). `error` —
/// present exactly when ok is false — is a structured object
/// {"code":...,"message":...}, extended with the 1-based input line and
/// byte offset for protocol-level failures (malformed JSON, oversized
/// lines); see errorObjectJson. With
/// \p IncludeVolatile false the execution-dependent fields (cache,
/// iterations, iterations_replayed, substeps, strategy, time_ms — in
/// trace entries too) are omitted — the remaining payload is
/// deterministic, which is what `xsolve batch --stable` uses to make
/// output byte-comparable across job counts, strategies and runs.
JsonRef responseToJson(const AnalysisResponse &Resp,
                       bool IncludeVolatile = true);

/// Encodes cumulative session statistics.
JsonRef statsToJson(const SessionStats &S);

/// Builds the structured error object every ok=false response carries:
/// {"code":C,"message":M} plus the optional input position. Exposed so
/// the socket server builds its protocol-level rejections (overloaded,
/// deadline_exceeded, draining) through the same encoder.
JsonRef errorObjectJson(const std::string &Code, const std::string &Message,
                        size_t Line = 0, long Byte = -1);

/// Knobs of the JSON-lines stream driver beyond the original positional
/// parameters. Defaults reproduce the historical behaviour (apart from
/// the line-length bound, which turns a pathological input line into a
/// structured bad_request instead of unbounded buffering).
struct BatchStreamOptions {
  /// Deterministic response encoding (see responseToJson).
  bool Stable = false;
  /// Longest accepted input line, in bytes. Longer lines are consumed
  /// and discarded, answered by {"error":{"code":"bad_request",...}}
  /// with the line number. 0 means unbounded.
  size_t MaxLineBytes = size_t(1) << 20;
  /// When non-null and set (e.g. by a SIGINT/SIGTERM handler), the
  /// driver stops reading input at the next line boundary, flushes the
  /// buffered segment — every request already read is still answered —
  /// and returns. The caller's normal exit path (cache save, stats)
  /// then runs as usual: an interrupted batch drains, it does not abort.
  const std::atomic<bool> *Stop = nullptr;
};

/// JSON-lines driver: reads one request object per non-empty line of
/// \p In, writes one response object per line to \p Out (in input
/// order). Unparseable lines produce an {"ok":false} response line, not
/// a stop. A {"op":"config","jobs":N} line answers {"ok":true,"jobs":N}
/// and applies to all subsequent requests. With jobs == 1 each response
/// is written as soon as its line is read; with jobs > 1 responses are
/// emitted per dispatched segment (at EOF, at a config line, or every
/// 4096 requests), so a pipelined client that needs a response per
/// request should stay at jobs == 1. Returns the number of requests
/// answered successfully; \p Failed (when non-null) receives the number
/// that were not (an empty batch is 0/0; config lines count as
/// answered). \p StableOutput selects the deterministic response
/// encoding (see responseToJson).
size_t runBatchJsonLines(AnalysisSession &Session, std::istream &In,
                         std::ostream &Out, size_t *Failed = nullptr,
                         bool StableOutput = false);

/// Full-options form: line-length bound and cooperative stop flag on top
/// of the stable switch. The positional overload forwards here.
size_t runBatchJsonLines(AnalysisSession &Session, std::istream &In,
                         std::ostream &Out, size_t *Failed,
                         const BatchStreamOptions &Opts);

} // namespace xsa

#endif // XSA_SERVICE_BATCH_H
