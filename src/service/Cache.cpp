//===- Cache.cpp - LRU semantic result cache -------------------------------===//

#include "service/Cache.h"

using namespace xsa;

const SolverResult *LruResultCache::lookup(Formula Canonical,
                                           uint32_t OptsKey) {
  auto It = Entries.find({Canonical, OptsKey});
  if (It == Entries.end()) {
    ++Stats.Misses;
    return nullptr;
  }
  ++Stats.Hits;
  Lru.splice(Lru.begin(), Lru, It->second);
  return &It->second->Result;
}

void LruResultCache::store(Formula Canonical, uint32_t OptsKey,
                           const SolverResult &R) {
  if (Capacity == 0)
    return;
  Key K{Canonical, OptsKey};
  auto It = Entries.find(K);
  if (It != Entries.end()) {
    It->second->Result = R;
    Lru.splice(Lru.begin(), Lru, It->second);
    return;
  }
  while (Entries.size() >= Capacity) {
    Entries.erase(Lru.back().K);
    Lru.pop_back();
    ++Stats.Evictions;
  }
  Lru.push_front({K, R});
  Entries.emplace(K, Lru.begin());
  ++Stats.Insertions;
  Stats.Size = Entries.size();
}

void LruResultCache::clear() {
  Lru.clear();
  Entries.clear();
  Stats.Size = 0;
}
