//===- Cache.cpp - LRU semantic result caches ------------------------------===//

#include "service/Cache.h"

#include "obs/Trace.h"
#include "support/KeyEncoding.h"

using namespace xsa;

//===----------------------------------------------------------------------===//
// LruResultCache
//===----------------------------------------------------------------------===//

const SolverResult *LruResultCache::lookup(Formula Canonical,
                                           uint32_t OptsKey) {
  auto It = Entries.find({Canonical, OptsKey});
  if (It == Entries.end()) {
    ++Stats.Misses;
    return nullptr;
  }
  ++Stats.Hits;
  Lru.splice(Lru.begin(), Lru, It->second);
  return &It->second->Result;
}

void LruResultCache::store(Formula Canonical, uint32_t OptsKey,
                           const SolverResult &R) {
  if (Capacity == 0)
    return;
  Key K{Canonical, OptsKey};
  auto It = Entries.find(K);
  if (It != Entries.end()) {
    It->second->Result = R;
    Lru.splice(Lru.begin(), Lru, It->second);
    return;
  }
  while (Entries.size() >= Capacity) {
    Entries.erase(Lru.back().K);
    Lru.pop_back();
    ++Stats.Evictions;
  }
  Lru.push_front({K, R});
  Entries.emplace(K, Lru.begin());
  ++Stats.Insertions;
  Stats.Size = Entries.size();
}

void LruResultCache::clear() {
  Lru.clear();
  Entries.clear();
  Stats.Size = 0;
}

//===----------------------------------------------------------------------===//
// ShardedResultCache
//===----------------------------------------------------------------------===//

ShardedResultCache::ShardedResultCache(size_t Capacity, size_t Shards)
    : Capacity(Capacity) {
  // Largest power of two ≤ min(Shards, max(Capacity, 1)): never more
  // shards than entries, so small caches (the eviction tests use
  // capacity 1) keep exact LRU behaviour in a single shard.
  size_t Limit = std::max<size_t>(Capacity, 1);
  size_t N = 1;
  while (N * 2 <= Shards && N * 2 <= Limit)
    N *= 2;
  ShardCapacity = Capacity == 0 ? 0 : std::max<size_t>(1, Capacity / N);
  ShardTable.reserve(N);
  for (size_t I = 0; I < N; ++I)
    ShardTable.push_back(std::make_unique<Shard>());
}

bool ShardedResultCache::lookup(const std::string &KeyText, uint32_t OptsKey,
                                SolverResult &Out) {
  Span ProbeSpan("cache.probe");
  KeyView K{KeyText, OptsKey};
  Shard &S = shardFor(K);
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Entries.find(K);
  if (It == S.Entries.end()) {
    Misses.fetch_add(1, std::memory_order_relaxed);
    ProbeSpan.arg("hit", 0);
    return false;
  }
  Hits.fetch_add(1, std::memory_order_relaxed);
  S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
  Out = It->second->Result;
  ProbeSpan.arg("hit", 1);
  return true;
}

void ShardedResultCache::store(const std::string &KeyText, uint32_t OptsKey,
                               const SolverResult &R) {
  if (Capacity == 0)
    return;
  Span PublishSpan("cache.publish");
  KeyView K{KeyText, OptsKey};
  Shard &S = shardFor(K);
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Entries.find(K);
  if (It != S.Entries.end()) {
    It->second->Result = R;
    S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
    return;
  }
  while (S.Entries.size() >= ShardCapacity) {
    // The map key views the list-owned string: erase before pop.
    const Entry &Victim = S.Lru.back();
    S.Entries.erase(KeyView{Victim.K.first, Victim.K.second});
    S.Lru.pop_back();
    Evictions.fetch_add(1, std::memory_order_relaxed);
    SizeCount.fetch_sub(1, std::memory_order_relaxed);
  }
  S.Lru.push_front({Key{KeyText, OptsKey}, R});
  S.Entries.emplace(KeyView{S.Lru.front().K.first, OptsKey}, S.Lru.begin());
  Insertions.fetch_add(1, std::memory_order_relaxed);
  SizeCount.fetch_add(1, std::memory_order_relaxed);
}

void ShardedResultCache::forEachEntry(
    const std::function<void(const std::string &, uint32_t,
                             const SolverResult &)> &Fn) const {
  for (const std::unique_ptr<Shard> &S : ShardTable) {
    std::lock_guard<std::mutex> Lock(S->M);
    for (const Entry &E : S->Lru)
      Fn(E.K.first, E.K.second, E.Result);
  }
}

CacheStats ShardedResultCache::stats() const {
  CacheStats S;
  S.Hits = Hits.load(std::memory_order_relaxed);
  S.Misses = Misses.load(std::memory_order_relaxed);
  S.Insertions = Insertions.load(std::memory_order_relaxed);
  S.Evictions = Evictions.load(std::memory_order_relaxed);
  S.Size = SizeCount.load(std::memory_order_relaxed);
  return S;
}

size_t ShardedResultCache::size() const {
  return SizeCount.load(std::memory_order_relaxed);
}

void ShardedResultCache::clear() {
  for (const std::unique_ptr<Shard> &S : ShardTable) {
    std::lock_guard<std::mutex> Lock(S->M);
    SizeCount.fetch_sub(S->Entries.size(), std::memory_order_relaxed);
    S->Lru.clear();
    S->Entries.clear();
  }
}

//===----------------------------------------------------------------------===//
// OptimizeSeedStore
//===----------------------------------------------------------------------===//

bool OptimizeSeedStore::lookup(const std::string &Query,
                               const std::string &Dtd, uint64_t DtdFp,
                               std::string &OptimizedOut) const {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Map.find(lengthPrefixedKey(Query, Dtd));
  if (It == Map.end() || It->second.DtdFp != DtdFp)
    return false;
  OptimizedOut = It->second.Optimized;
  return true;
}

void OptimizeSeedStore::store(const std::string &Query, const std::string &Dtd,
                              uint64_t DtdFp, const std::string &Optimized) {
  std::lock_guard<std::mutex> Lock(M);
  if (Map.size() >= MaxEntries)
    Map.clear();
  Map.insert_or_assign(lengthPrefixedKey(Query, Dtd),
                       Entry{Query, Dtd, Optimized, DtdFp});
}

void OptimizeSeedStore::forEachEntry(
    const std::function<void(const std::string &, const std::string &,
                             uint64_t, const std::string &)> &Fn) const {
  std::lock_guard<std::mutex> Lock(M);
  for (const auto &[Key, E] : Map)
    Fn(E.Query, E.Dtd, E.DtdFp, E.Optimized);
}

size_t OptimizeSeedStore::size() const {
  std::lock_guard<std::mutex> Lock(M);
  return Map.size();
}

void OptimizeSeedStore::clear() {
  std::lock_guard<std::mutex> Lock(M);
  Map.clear();
}
