//===- Session.h - Long-lived analysis session -------------------*- C++ -*-===//
//
// Part of the xsa project (PLDI 2007 XPath/type analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A long-lived front end to the decision procedures: an AnalysisSession
/// owns the FormulaFactory, the solver options, an LRU semantic result
/// cache (see Cache.h) and an Analyzer wired through it. Repeated or
/// α-equivalent queries — the common case in query-optimizer and
/// schema-audit workloads — are answered from the cache instead of
/// re-running the exponential fixpoint, and shared sub-work (XPath
/// parsing, DTD loading and compilation) is memoized per session.
/// SessionStats aggregates cache counters and cumulative solver work.
///
/// The session exposes the same §8 decision problems as Analyzer; one-off
/// callers can keep constructing Analyzer directly (they simply run
/// uncached).
///
//===----------------------------------------------------------------------===//

#ifndef XSA_SERVICE_SESSION_H
#define XSA_SERVICE_SESSION_H

#include "analysis/Problems.h"
#include "service/Cache.h"
#include "xtype/Dtd.h"

#include <memory>
#include <string>
#include <unordered_map>

namespace xsa {

struct SessionStats {
  /// Semantic result cache counters (shared by Analyzer queries and raw
  /// satisfiable() calls).
  CacheStats Cache;
  /// Number of actual solver runs (cache misses that went to the BDD
  /// fixpoint) and their cumulative cost.
  size_t Solves = 0;
  size_t SolverIterations = 0;
  double SolverTimeMs = 0;
  /// Memoized front-end work.
  size_t QueriesParsed = 0;
  size_t QueryCacheHits = 0;
  size_t DtdCompilations = 0;
  size_t DtdCacheHits = 0;
};

class AnalysisSession {
public:
  explicit AnalysisSession(SolverOptions Opts = {},
                           size_t CacheCapacity = 1024);
  AnalysisSession(const AnalysisSession &) = delete;
  AnalysisSession &operator=(const AnalysisSession &) = delete;

  FormulaFactory &factory() { return FF; }

  /// The session's Analyzer: every decision problem routed through it
  /// consults the session cache. Callers may use it directly for the
  /// full §8 interface.
  Analyzer &analyzer() { return *An; }

  /// §8 decision problems (thin forwards to analyzer(), kept here so the
  /// batch pipeline and CLI depend only on the session).
  AnalysisResult emptiness(const ExprRef &E, Formula Chi);
  AnalysisResult containment(const ExprRef &E1, Formula Chi1,
                             const ExprRef &E2, Formula Chi2);
  AnalysisResult overlap(const ExprRef &E1, Formula Chi1, const ExprRef &E2,
                         Formula Chi2);
  AnalysisResult coverage(const ExprRef &E, Formula Chi,
                          const std::vector<ExprRef> &Others,
                          const std::vector<Formula> &OtherChis);
  AnalysisResult equivalence(const ExprRef &E1, Formula Chi1,
                             const ExprRef &E2, Formula Chi2);
  AnalysisResult staticTypeCheck(const ExprRef &E, Formula ChiIn,
                                 Formula OutType);

  /// Cached raw satisfiability under the session options (no single-root
  /// restriction, matching a bare BddSolver).
  SolverResult satisfiable(Formula Psi);

  /// Parses an XPath query, memoized on the source string. Returns null
  /// and sets \p Error on a parse failure (failures are memoized too).
  ExprRef query(const std::string &XPath, std::string &Error);

  /// Loads and compiles a DTD to the Lµ formula holding at the roots of
  /// valid documents, memoized on \p Name — a builtin name (wikipedia,
  /// smil, xhtml), a file path, or "" for no constraint (⊤). Compilation
  /// per distinct DTD happens once per session regardless of how many
  /// queries share the constraint.
  Formula typeFormula(const std::string &Name, std::string &Error);

  /// typeFormula conjoined with the root restriction of §5.2 — the form
  /// used as the context χ of a query constrained by a schema. "" → ⊤.
  Formula typeContext(const std::string &Name, std::string &Error);

  SessionStats stats() const;

private:
  FormulaFactory FF;
  SolverOptions Opts;
  LruResultCache Cache;
  std::unique_ptr<Analyzer> An;
  std::unique_ptr<BddSolver> RawSolver;

  struct QueryEntry {
    ExprRef E;
    std::string Error;
  };
  std::unordered_map<std::string, QueryEntry> QueryMemo;
  struct DtdEntry {
    Formula Type = nullptr;    ///< null when loading failed
    Formula Context = nullptr; ///< Type ∧ root restriction, lazily built
    std::string Error;
  };
  std::unordered_map<std::string, DtdEntry> DtdMemo;

  SessionStats Counters;

  DtdEntry &loadDtd(const std::string &Name);
};

} // namespace xsa

#endif // XSA_SERVICE_SESSION_H
