//===- Session.h - Long-lived analysis session -------------------*- C++ -*-===//
//
// Part of the xsa project (PLDI 2007 XPath/type analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A long-lived front end to the decision procedures, split for parallel
/// dispatch into a thread-safe shared front and per-worker solver
/// contexts:
///
///  * the shared front (this class) owns a ShardedResultCache of solver
///    results keyed on canonical formula text + options fingerprint, an
///    AtomicSessionStats bundle, and the WorkerPool used by the batch
///    dispatcher;
///  * each worker owns an AnalysisContext (see Context.h) — its own
///    FormulaFactory, parser memo, DTD memo, Analyzer and BddSolver —
///    because a context is single-threaded by design: the session
///    parallelizes across solver instances. (Orthogonally, the parallel
///    BDD backend — bdd/Parallel.h — parallelizes inside one solver
///    run; its workers stay confined to a single BDD operation.)
///
/// Repeated or α-equivalent queries — the common case in query-optimizer
/// and schema-audit workloads — are answered from the shared cache
/// instead of re-running the exponential fixpoint, no matter which
/// worker (or which earlier process: see loadCache) first solved them.
///
/// The serial convenience API below (§8 decision problems, query/DTD
/// resolution) routes everything through one distinguished "main"
/// context and is NOT thread-safe; concurrency is obtained by handing
/// whole batches to runBatch (service/Batch.h), which dispatches across
/// the worker contexts. One-off callers can keep constructing Analyzer
/// directly (they simply run uncached).
///
//===----------------------------------------------------------------------===//

#ifndef XSA_SERVICE_SESSION_H
#define XSA_SERVICE_SESSION_H

#include "analysis/Problems.h"
#include "service/Cache.h"
#include "service/Context.h"
#include "service/FixpointStore.h"
#include "support/WorkerPool.h"
#include "xtype/Dtd.h"

#include <memory>
#include <string>
#include <vector>

namespace xsa {

struct SessionStats {
  /// Semantic result cache counters (shared by Analyzer queries and raw
  /// satisfiable() calls, across every worker context).
  CacheStats Cache;
  /// Number of actual solver runs (cache misses that went to the BDD
  /// fixpoint) and their cumulative cost.
  size_t Solves = 0;
  size_t SolverIterations = 0;
  double SolverTimeMs = 0;
  /// Memoized front-end work, summed over all contexts.
  size_t QueriesParsed = 0;
  size_t QueryCacheHits = 0;
  size_t DtdCompilations = 0;
  size_t DtdCacheHits = 0;
  /// Rewrite-engine work (optimize requests and the optimize pre-pass).
  size_t QueriesOptimized = 0;
  size_t OptimizeCacheHits = 0;
  size_t OptimizeSeedHits = 0;
  size_t RewriteChecks = 0;
  size_t RewritesAccepted = 0;
  /// Cross-request fixpoint sharing: store counters (Hits/Misses count
  /// solver-side seed lookups, Insertions kept publishes), plus the
  /// solver-side tallies — runs that replayed a stored prefix and the
  /// total Upd iterations that replay skipped.
  CacheStats Fixpoints;
  size_t FixpointSeededRuns = 0;
  size_t FixpointIterationsReplayed = 0;
  /// Fixpoint scheduling: total relational-image sub-steps across all
  /// runs, and actual solver runs by the concrete strategy executed
  /// (indexed by FixpointStrategy; the Auto slot stays zero — Auto
  /// always resolves to a concrete strategy before the run).
  size_t SolverSubSteps = 0;
  size_t StrategyRuns[4] = {0, 0, 0, 0};
};

/// Knobs of an AnalysisSession. Solver options are the per-context
/// baseline; the rest configure the shared front.
struct SessionOptions {
  SolverOptions Solver;
  /// Total result-cache capacity (0 disables caching).
  size_t CacheCapacity = 1024;
  /// Requested shard count (rounded to a power of two, clamped; see
  /// ShardedResultCache).
  size_t CacheShards = 8;
  /// Worker threads used by runBatch. 1 = serial dispatch on the main
  /// context; 0 = hardware concurrency.
  size_t Jobs = 1;
  /// Solver-verified optimize pre-pass (src/rewrite/): every query of a
  /// decision-problem request is rewritten — each accepted rewrite
  /// proved equivalent under the request's DTD — before analysis, so
  /// near-duplicate queries canonicalize to more cache-sharable forms.
  /// Verdicts are unchanged by construction; per-response lean and
  /// iteration stats describe the optimized query's (smaller) formula.
  bool Optimize = false;
  /// Cross-request fixpoint sharing: solver runs seed their §7.1
  /// iteration from the SharedFixpointStore and publish back. Replay is
  /// output-invisible (see solver/Pipeline.h), so responses are
  /// byte-identical with sharing on or off, at any job count — only the
  /// work changes.
  bool ShareFixpoints = false;
  /// Entry budget of the fixpoint store (entries, not bytes; 0 disables
  /// it even when ShareFixpoints is requested).
  size_t FixpointCapacity = 256;
};

class AnalysisSession {
public:
  explicit AnalysisSession(SessionOptions Opts);
  /// Back-compatible convenience form.
  explicit AnalysisSession(SolverOptions Opts = {},
                           size_t CacheCapacity = 1024);
  AnalysisSession(const AnalysisSession &) = delete;
  AnalysisSession &operator=(const AnalysisSession &) = delete;

  FormulaFactory &factory() { return Main.factory(); }

  /// The main context's Analyzer: every decision problem routed through
  /// it consults the session cache. Callers may use it directly for the
  /// full §8 interface. Serial API — see the file comment.
  Analyzer &analyzer() { return Main.analyzer(); }

  /// The distinguished serial context behind the convenience API.
  AnalysisContext &mainContext() { return Main; }

  /// §8 decision problems (thin forwards to analyzer(), kept here so
  /// serial callers and the CLI depend only on the session).
  AnalysisResult emptiness(const ExprRef &E, Formula Chi);
  AnalysisResult containment(const ExprRef &E1, Formula Chi1,
                             const ExprRef &E2, Formula Chi2);
  AnalysisResult overlap(const ExprRef &E1, Formula Chi1, const ExprRef &E2,
                         Formula Chi2);
  AnalysisResult coverage(const ExprRef &E, Formula Chi,
                          const std::vector<ExprRef> &Others,
                          const std::vector<Formula> &OtherChis);
  AnalysisResult equivalence(const ExprRef &E1, Formula Chi1,
                             const ExprRef &E2, Formula Chi2);
  AnalysisResult staticTypeCheck(const ExprRef &E, Formula ChiIn,
                                 Formula OutType);

  /// Cached raw satisfiability under the session options (no single-root
  /// restriction, matching a bare BddSolver).
  SolverResult satisfiable(Formula Psi);

  /// Parses an XPath query, memoized on the source string (main
  /// context). Returns null and sets \p Error on a parse failure.
  ExprRef query(const std::string &XPath, std::string &Error);

  /// Loads and compiles a DTD (main context); see
  /// AnalysisContext::typeFormula.
  Formula typeFormula(const std::string &Name, std::string &Error);
  Formula typeContext(const std::string &Name, std::string &Error);

  //===--------------------------------------------------------------------===//
  // Parallel dispatch (used by runBatch)
  //===--------------------------------------------------------------------===//

  /// Upper bound on jobs: each job costs a thread plus a full solver
  /// context, so requests beyond this are clamped rather than honoured.
  static constexpr size_t MaxJobs = 256;

  /// Effective worker count for batch dispatch (≥ 1, ≤ MaxJobs).
  size_t jobs() const { return Opts.Jobs; }
  /// Changes the worker count (0 = hardware concurrency; clamped to
  /// MaxJobs). Takes effect on the next batch; existing worker contexts
  /// are kept warm, the pool is resized lazily. Not thread-safe against
  /// a running batch.
  void setJobs(size_t Jobs);

  /// The optimize pre-pass switch (SessionOptions::Optimize), applied
  /// to every context. Not thread-safe against a running batch.
  bool optimizeEnabled() const { return Opts.Optimize; }
  void setOptimize(bool On);

  /// The fixpoint-sharing switch (SessionOptions::ShareFixpoints),
  /// applied to every context. Not thread-safe against a running batch.
  bool shareFixpointsEnabled() const { return Opts.ShareFixpoints; }
  void setShareFixpoints(bool On);

  /// The fixpoint scheduling strategy (SolverOptions::Strategy), applied
  /// to every context; Auto resolves per lean through the shared
  /// StrategyChoiceStore. Not thread-safe against a running batch.
  FixpointStrategy fixpointStrategy() const { return Opts.Solver.Strategy; }
  void setFixpointStrategy(FixpointStrategy S);

  /// The BDD backend (SolverOptions::Backend), applied to every context.
  /// Results are backend-invariant (bdd/Bdd.h), so this only moves wall
  /// time. Not thread-safe against a running batch.
  BddBackendKind bddBackend() const { return Opts.Solver.Backend; }
  void setBddBackend(BddBackendKind K);

  /// Worker threads inside one BDD operation (SolverOptions::BddThreads,
  /// parallel backend only; 0 = hardware concurrency).
  unsigned bddThreads() const { return Opts.Solver.BddThreads; }
  void setBddThreads(unsigned N);

  /// The dispatcher's pool, sized to jobs() threads, with one warm
  /// AnalysisContext per worker. Lazily constructed on first use so
  /// jobs=1 sessions never spawn a thread.
  WorkerPool &pool();
  /// Worker \p Worker's context. Only valid after pool(); each context
  /// must be used by one thread at a time (the pool's worker-id
  /// discipline guarantees this during parallelFor).
  AnalysisContext &workerContext(size_t Worker) { return *Workers[Worker]; }

  //===--------------------------------------------------------------------===//
  // Persistent cache (warm-up across processes)
  //===--------------------------------------------------------------------===//

  /// Serializes the session's shared state to \p Path as JSON lines: a
  /// version header {"xsa_cache":2}, then one entry per line — cached
  /// results ("k": canonical-text key, options fingerprint, verdict,
  /// stats, model XML), fixpoint-store sequences ("fx": lean signature,
  /// options fingerprint, encoded snapshots), optimized query forms
  /// ("oq"), and remembered per-lean fixpoint-strategy choices ("st").
  /// Line shapes a reader does not recognize are skipped, so the "st"
  /// lines did not bump the format version — older readers ignore them.
  /// Returns false and sets \p Error on I/O failure.
  bool saveCache(const std::string &Path, std::string &Error) const;

  /// Loads entries saved by saveCache into the shared stores (counted as
  /// insertions, not hits). Format versions: 1 (results only) and 2 are
  /// read; an unknown version is rejected with a clear error instead of
  /// being mis-parsed. Entries that fail to parse are skipped; returns
  /// false and sets \p Error only when the file is unreadable, not a
  /// cache file, or of an unsupported version. Safe to call on a warm
  /// session; existing entries are refreshed.
  bool loadCache(const std::string &Path, std::string &Error);

  /// The shared result cache (exposed for tests and tooling).
  ShardedResultCache &resultCache() { return Cache; }
  /// The shared fixpoint store (exposed for tests and tooling).
  SharedFixpointStore &fixpointStore() { return Fixpoints; }
  /// The shared store of persisted optimized query forms.
  OptimizeSeedStore &optimizeSeeds() { return OptSeeds; }
  /// The shared store of remembered per-lean Auto strategy choices.
  StrategyChoiceStore &strategyChoices() { return StratChoices; }

  SessionStats stats() const;

private:
  SessionOptions Opts;
  ShardedResultCache Cache;
  SharedFixpointStore Fixpoints;
  OptimizeSeedStore OptSeeds;
  StrategyChoiceStore StratChoices;
  AtomicSessionStats Counters;
  AnalysisContext Main;
  std::vector<std::unique_ptr<AnalysisContext>> Workers;
  std::unique_ptr<WorkerPool> Pool;
};

} // namespace xsa

#endif // XSA_SERVICE_SESSION_H
