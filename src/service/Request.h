//===- Request.h - Batch analysis request/response types ---------*- C++ -*-===//
//
// Part of the xsa project (PLDI 2007 XPath/type analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Plain-data request and response types for the batch pipeline: one
/// AnalysisRequest per decision problem of §8 (plus raw Lµ
/// satisfiability), one AnalysisResponse carrying the verdict, the
/// witness/counterexample tree (serialized), and per-request cache and
/// solver statistics. Queries and type constraints are carried as source
/// strings and resolved — memoized — by the AnalysisSession, which is
/// what lets a batch share parsing, DTD compilation, and solver results
/// across requests.
///
//===----------------------------------------------------------------------===//

#ifndef XSA_SERVICE_REQUEST_H
#define XSA_SERVICE_REQUEST_H

#include "rewrite/Rewriter.h"
#include "solver/BddSolver.h"

#include <string>
#include <vector>

namespace xsa {

enum class RequestKind {
  Sat,         ///< raw Lµ satisfiability of `Formula`
  Emptiness,   ///< `Query1` selects no node under `Dtd1`
  Containment, ///< `Query1`/`Dtd1` ⊆ `Query2`/`Dtd2`
  Overlap,     ///< `Query1` and `Query2` share a selected node
  Coverage,    ///< `Query1` ⊆ ∪ `Others` (each under `Dtd1`)
  Equivalence, ///< containment both ways
  TypeCheck,   ///< `Query1` under `Dtd1` selects only roots of `OutDtd`
  Optimize,    ///< solver-verified rewrite of `Query1` under `Dtd1`
};

/// Parses "sat", "empty", "contains", ... Returns false on an unknown
/// name.
bool parseRequestKind(const std::string &Name, RequestKind &Kind);
const char *requestKindName(RequestKind K);

struct AnalysisRequest {
  std::string Id;        ///< echoed in the response; may be empty
  /// Request/trace id assigned by a server front end at admission (the
  /// client's "id" when given, else generated). Not part of the wire
  /// request schema and never affects the answer — it is threaded into
  /// the request span ("rid" arg), the structured log, the slow-query
  /// recorder, and the volatile "rid" response field. Excluded from
  /// requestSignature like Id.
  std::string TraceId;
  RequestKind Kind = RequestKind::Sat;
  std::string Formula;   ///< Lµ source, Sat only
  std::string Query1;    ///< primary XPath
  std::string Query2;    ///< secondary XPath (containment/overlap/equivalence)
  std::vector<std::string> Others; ///< covering queries (coverage)
  std::string Dtd1;      ///< context type of Query1 ("" = unconstrained)
  std::string Dtd2;      ///< context type of Query2 ("" = Dtd1)
  std::string OutDtd;    ///< output type (type check)
};

struct AnalysisResponse {
  /// Kind of the request this answers — serialization dispatches on it
  /// (optimize responses have a different JSON shape).
  RequestKind Kind = RequestKind::Sat;
  std::string Id;
  bool Ok = false;          ///< false: malformed request / parse error
  std::string Error;
  /// Machine-readable error classification, serialized as the "code" of
  /// the structured error object ("" defaults to "bad_request" — the
  /// request itself was unusable). The server front ends add their own
  /// codes: "overloaded", "deadline_exceeded", "draining".
  std::string ErrorCode;
  /// Input position of a protocol-level error (malformed JSON, oversized
  /// line): 1-based input line, and byte offset within that line.
  /// ErrorLine 0 / ErrorByte < 0 mean "not applicable" and are omitted
  /// from the serialized error object.
  size_t ErrorLine = 0;
  long ErrorByte = -1;
  bool Holds = false;       ///< the queried property (decision problems)
  bool Satisfiable = false; ///< raw verdict (Sat requests)
  bool FromCache = false;
  std::string ModelXml;     ///< witness/counterexample, "" when none
  SolverStats Stats;        ///< stats of the (possibly cached) solver run
  /// Optimize requests only: the rewritten query in concrete syntax
  /// (identical to the input when nothing was provably improvable), the
  /// cost-model estimates, and the per-rule proof trace.
  std::string Optimized;
  double CostBefore = 0;
  double CostAfter = 0;
  std::vector<RewriteStep> Trace;
  /// The request/trace id this response answers (TraceId of the
  /// request; "" outside a server). Serialized as "rid" on the volatile
  /// side only, so `--stable` output never depends on server-generated
  /// ids.
  std::string Rid;
  /// Per-stage wall-time breakdown (span name → ms), collected when
  /// tracing OR the tracer's stage-capture mode is enabled (obs/Trace.h
  /// — the server keeps the latter always on for its slow-query
  /// recorder). Serialized on the volatile side of responseToJson so
  /// `--stable` output is identical with either recorder on or off.
  std::vector<std::pair<std::string, double>> StageMs;
};

} // namespace xsa

#endif // XSA_SERVICE_REQUEST_H
