//===- Context.h - Per-worker analysis context -------------------*- C++ -*-===//
//
// Part of the xsa project (PLDI 2007 XPath/type analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One worker's half of the parallel analysis engine. A context is a
/// single-threaded facade — a FormulaFactory's hash-consing arena and the
/// serial BddManager's node table are free of locks by design — so the
/// session parallelizes *across* solver instances: every worker thread
/// owns a full AnalysisContext with its own FormulaFactory, XPath parser
/// memo, DTD compilation memo, Analyzer and raw BddSolver. (The parallel
/// BDD backend additionally parallelizes *inside* one solver run — see
/// bdd/Parallel.h — but its worker threads never escape a single BDD
/// operation, so the contract here is unchanged.)
/// Nothing inside a context is shared, so a context may only ever be used
/// by one thread at a time.
///
/// What *is* shared sits behind two thread-safe fronts wired in at
/// construction:
///
///  * a ShardedResultCache of solver results, keyed on canonical formula
///    text (factory-independent, see Cache.h) — this is how a worker
///    benefits from fixpoints another worker already ran;
///  * an AtomicSessionStats bundle that all contexts tally into.
///
/// Memory order: every AtomicSessionStats member is a relaxed atomic.
/// The counters are independent monotonic tallies — nothing reads one to
/// decide control flow, and no other data is published through them —
/// so the only requirement is freedom from lost updates, which relaxed
/// fetch_add provides. Readers that need a *consistent* snapshot (e.g.
/// asserting exact totals after a batch) get it from the happens-before
/// edge of the dispatcher's barrier (WorkerPool::parallelFor returns
/// only after joining all workers under a mutex), not from the counters
/// themselves.
///
//===----------------------------------------------------------------------===//

#ifndef XSA_SERVICE_CONTEXT_H
#define XSA_SERVICE_CONTEXT_H

#include "analysis/Problems.h"
#include "rewrite/Rewriter.h"
#include "service/Cache.h"
#include "service/FixpointStore.h"
#include "xtype/Dtd.h"

#include <array>
#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>

namespace xsa {

/// Cumulative session counters shared by all contexts of one session.
/// All members are relaxed atomics; see the file comment for the
/// reasoning behind the memory-order choice.
struct AtomicSessionStats {
  /// Number of actual solver runs (cache misses that went to the BDD
  /// fixpoint) and their cumulative cost. Time is tallied in integer
  /// microseconds because atomic floating-point accumulation is not
  /// universally available; SessionStats converts back to milliseconds.
  std::atomic<size_t> Solves{0};
  std::atomic<size_t> SolverIterations{0};
  std::atomic<size_t> SolverTimeUs{0};
  /// Memoized front-end work. Parser and DTD memos are per-context, so
  /// under parallel dispatch these count the sum over all workers (a DTD
  /// may legitimately compile once per worker that needs it).
  std::atomic<size_t> QueriesParsed{0};
  std::atomic<size_t> QueryCacheHits{0};
  std::atomic<size_t> DtdCompilations{0};
  std::atomic<size_t> DtdCacheHits{0};
  /// Rewrite-engine work (optimize requests and the optimize pre-pass).
  /// Optimizations are memoized per context on (query, dtd) text, like
  /// the parser memo above.
  std::atomic<size_t> QueriesOptimized{0};
  std::atomic<size_t> OptimizeCacheHits{0};
  /// Pre-pass optimizations answered from the shared/persisted seed
  /// store instead of a rewriter run (no proof obligations).
  std::atomic<size_t> OptimizeSeedHits{0};
  std::atomic<size_t> RewriteChecks{0};
  std::atomic<size_t> RewritesAccepted{0};
  /// Fixpoint sharing: solver runs that replayed at least one stored
  /// iterate, and the total iterates replayed (Upd images skipped).
  std::atomic<size_t> FixpointSeededRuns{0};
  std::atomic<size_t> FixpointIterationsReplayed{0};
  /// Fixpoint scheduling: total relational-image sub-steps, and actual
  /// solver runs by the concrete strategy the run executed (indexed by
  /// FixpointStrategy; Auto always resolves before the run, so slot 3
  /// stays zero and only exists to make the indexing total).
  std::atomic<size_t> SolverSubSteps{0};
  std::array<std::atomic<size_t>, 4> StrategyRuns{};
};

/// A single-threaded solver context: factory, parser/DTD memos, Analyzer
/// and raw solver, wired through the session's shared cache and stats.
/// AnalysisSession owns one context per worker (plus one for the serial
/// API); it is also usable standalone with both shared fronts null.
class AnalysisContext {
public:
  /// Every shared-front pointer may be null (uncached / untallied
  /// standalone use); when set they must outlive the context.
  explicit AnalysisContext(const SolverOptions &BaseOpts,
                           ShardedResultCache *SharedCache = nullptr,
                           AtomicSessionStats *SharedStats = nullptr,
                           SharedFixpointStore *SharedFixpoints = nullptr,
                           OptimizeSeedStore *SharedOptimizeSeeds = nullptr,
                           StrategyChoiceStore *SharedStrategyChoices =
                               nullptr);
  AnalysisContext(const AnalysisContext &) = delete;
  AnalysisContext &operator=(const AnalysisContext &) = delete;

  FormulaFactory &factory() { return FF; }

  /// The context's Analyzer: every decision problem routed through it
  /// consults the shared session cache. Callers may use it directly for
  /// the full §8 interface.
  Analyzer &analyzer() { return *An; }

  /// Cached raw satisfiability under the context options (no single-root
  /// restriction, matching a bare BddSolver).
  SolverResult satisfiable(Formula Psi);

  /// Parses an XPath query, memoized on the source string. Returns null
  /// and sets \p Error on a parse failure (failures are memoized too).
  ExprRef query(const std::string &XPath, std::string &Error);

  /// Loads and compiles a DTD to the Lµ formula holding at the roots of
  /// valid documents, memoized on \p Name — a builtin name (wikipedia,
  /// smil, xhtml), a file path, or "" for no constraint (⊤).
  Formula typeFormula(const std::string &Name, std::string &Error);

  /// typeFormula conjoined with the root restriction of §5.2 — the form
  /// used as the context χ of a query constrained by a schema. "" → ⊤.
  Formula typeContext(const std::string &Name, std::string &Error);

  /// Deterministic cross-process fingerprint of typeContext(Name)'s
  /// canonical text (0 when the DTD does not load). What optimize seeds
  /// are verified against — see OptimizeSeedStore.
  uint64_t typeContextFingerprint(const std::string &Name);

  /// A memoized solver-verified optimization of \p XPath under \p Dtd
  /// (rewrite/Rewriter.h). Error is set (and Result empty) when the
  /// query does not parse or the DTD does not load; failures are
  /// memoized like everything else here. Every proof obligation runs
  /// through this context's Analyzer, so it hits the shared session
  /// cache. Returned as a shared_ptr (not a reference into the memo)
  /// because the memo is flushed wholesale when full — a caller may
  /// safely hold the entry across later optimized() calls.
  struct OptimizeEntry {
    RewriteResult Result;
    std::string Error;
    bool Ok = false;
    /// Built from the shared seed store: the optimized form is proved
    /// (by whoever published it) but this entry has no local trace.
    bool Seeded = false;
  };
  /// With \p AllowSeed true (the pre-pass path, where only the rewritten
  /// AST matters) a memo miss first consults the shared OptimizeSeedStore
  /// and, on a hit, parses the stored form instead of re-deriving the
  /// rewrite — the seeded entry carries no proof trace. Explicit
  /// optimize requests pass false: they owe the caller a full trace, so
  /// a seeded memo entry is recomputed (and then republished) for them.
  std::shared_ptr<const OptimizeEntry>
  optimized(const std::string &XPath, const std::string &Dtd,
            bool AllowSeed = false);

  /// When true, runRequest rewrites every query through optimized()
  /// before analysis, so near-duplicate queries canonicalize to more
  /// cache-sharable forms (SessionOptions::Optimize).
  bool optimizePrePass() const { return PrePass; }
  void setOptimizePrePass(bool On) { PrePass = On; }

  /// Cross-request fixpoint sharing (SessionOptions::ShareFixpoints):
  /// when on — and a SharedFixpointStore was wired in — every solver run
  /// seeds its fixpoint from the store and publishes back. Off by
  /// default; toggling is not thread-safe against a running batch.
  bool shareFixpoints() const;
  void setShareFixpoints(bool On);

  /// Fixpoint scheduling strategy (SolverOptions::Strategy; see
  /// solver/BddSolver.h). Auto resolves per lean through the shared
  /// StrategyChoiceStore when one was wired in. The Analyzer and the
  /// raw solver copy their options at construction, so changing the
  /// strategy rebuilds both — cheap (the memos and shared fronts live
  /// in the context and survive), but like the other toggles not
  /// thread-safe against a running batch.
  FixpointStrategy fixpointStrategy() const { return Opts.Strategy; }
  void setFixpointStrategy(FixpointStrategy S);

  /// Which BddManager a solver run instantiates (SolverOptions::Backend;
  /// see bdd/Bdd.h). Backend-invariant results mean this is pure
  /// mechanism — never part of a cache key — but the raw solver copies
  /// its options at construction, so flipping it rebuilds like
  /// setFixpointStrategy.
  BddBackendKind bddBackend() const { return Opts.Backend; }
  void setBddBackend(BddBackendKind K);

  /// Worker threads inside one BDD operation (parallel backend only).
  unsigned bddThreads() const { return Opts.BddThreads; }
  void setBddThreads(unsigned N);

private:
  /// Bridges the solver's pointer-keyed ResultCache interface to the
  /// session's text-keyed ShardedResultCache. The canonical text of each
  /// canonical formula is memoized (the solver canonicalizes before every
  /// lookup, so warm requests would otherwise re-print per call). Holds
  /// the copied-out result of the latest hit, satisfying the interface's
  /// "valid until the next call" contract; one adapter exists per
  /// context, so the buffer is single-threaded like everything else here.
  class SharedCacheAdapter : public ResultCache {
  public:
    SharedCacheAdapter(FormulaFactory &FF, ShardedResultCache &Shared)
        : FF(FF), Shared(Shared) {}
    const SolverResult *lookup(Formula Canonical, uint32_t OptsKey) override;
    void store(Formula Canonical, uint32_t OptsKey,
               const SolverResult &R) override;

  private:
    const std::string &textFor(Formula Canonical);

    /// Canonical texts are KBs for DTD-constrained formulas; an
    /// unbounded memo would outlive the LRU-bounded entries it keys.
    /// Past this many entries the memo is dropped wholesale (the next
    /// warm request just re-prints once) rather than LRU-tracked.
    static constexpr size_t MaxTextMemo = 4096;

    FormulaFactory &FF;
    ShardedResultCache &Shared;
    std::unordered_map<Formula, std::string> TextMemo;
    SolverResult Hit;
  };

  /// Bridges the solver's FixpointCache hook to the session's shared
  /// store, with the per-context sharing switch in front: when off the
  /// solver skips signature computation entirely (enabled() gate).
  class FixpointAdapter : public FixpointCache {
  public:
    explicit FixpointAdapter(SharedFixpointStore &Shared) : Shared(Shared) {}
    bool enabled() const override { return On; }
    std::shared_ptr<const FixpointSeedData>
    lookup(const std::string &LeanSig, uint32_t OptsKey) override {
      return Shared.lookup(LeanSig, OptsKey);
    }
    void publish(const std::string &LeanSig, uint32_t OptsKey,
                 std::shared_ptr<const FixpointSeedData> Data) override {
      Shared.publish(LeanSig, OptsKey, std::move(Data));
    }
    bool On = false;

  private:
    SharedFixpointStore &Shared;
  };

  /// Bridges the solver's StrategyMemo hook (Auto-mode per-lean
  /// choices) to the session's shared StrategyChoiceStore.
  class StrategyMemoAdapter : public StrategyMemo {
  public:
    explicit StrategyMemoAdapter(StrategyChoiceStore &Shared)
        : Shared(Shared) {}
    bool lookup(const std::string &LeanSig, FixpointStrategy &Out) override {
      return Shared.lookup(LeanSig, Out);
    }
    void remember(const std::string &LeanSig, FixpointStrategy S) override {
      Shared.remember(LeanSig, S);
    }

  private:
    StrategyChoiceStore &Shared;
  };

  FormulaFactory FF;
  SolverOptions Opts;
  AtomicSessionStats *Stats;            ///< may be null
  OptimizeSeedStore *OptimizeSeeds;     ///< may be null
  std::unique_ptr<SharedCacheAdapter> CacheAdapter;
  std::unique_ptr<FixpointAdapter> Fixpoints;
  std::unique_ptr<StrategyMemoAdapter> StrategyChoices;
  std::unique_ptr<Analyzer> An;
  std::unique_ptr<BddSolver> RawSolver;

  struct QueryEntry {
    ExprRef E;
    std::string Error;
  };
  std::unordered_map<std::string, QueryEntry> QueryMemo;
  struct DtdEntry {
    Formula Type = nullptr;    ///< null when loading failed
    Formula Context = nullptr; ///< Type ∧ root restriction, lazily built
    /// Cross-process fingerprint of the canonical text of Context,
    /// lazily computed; keys persisted optimize seeds to DTD *content*
    /// (a .dtd file may change between runs of the same name). 0 until
    /// computed or when loading failed.
    uint64_t ContextFp = 0;
    std::string Error;
  };
  std::unordered_map<std::string, DtdEntry> DtdMemo;
  /// Memoized typeContextFingerprint("") — the ⊤ context's fingerprint.
  uint64_t EmptyContextFp = 0;
  /// Bounded, unlike the memos above: a RewriteResult carries the full
  /// proof trace, so a long-running mostly-distinct --optimize stream
  /// must not accumulate entries forever. Flushed wholesale when full
  /// (see optimized()).
  static constexpr size_t MaxOptimizeMemo = 4096;
  std::unordered_map<std::string, std::shared_ptr<const OptimizeEntry>>
      OptimizeMemo;
  bool PrePass = false;

  DtdEntry &loadDtd(const std::string &Name);
};

} // namespace xsa

#endif // XSA_SERVICE_CONTEXT_H
