//===- Context.h - Per-worker analysis context -------------------*- C++ -*-===//
//
// Part of the xsa project (PLDI 2007 XPath/type analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One worker's half of the parallel analysis engine. The BDD machinery
/// is inherently single-threaded — a FormulaFactory's hash-consing arena
/// and a BddManager's node table are free of locks by design — so the
/// session parallelizes *across* solver instances, not inside one: every
/// worker thread owns a full AnalysisContext with its own FormulaFactory,
/// XPath parser memo, DTD compilation memo, Analyzer and raw BddSolver.
/// Nothing inside a context is shared, so a context may only ever be used
/// by one thread at a time.
///
/// What *is* shared sits behind two thread-safe fronts wired in at
/// construction:
///
///  * a ShardedResultCache of solver results, keyed on canonical formula
///    text (factory-independent, see Cache.h) — this is how a worker
///    benefits from fixpoints another worker already ran;
///  * an AtomicSessionStats bundle that all contexts tally into.
///
/// Memory order: every AtomicSessionStats member is a relaxed atomic.
/// The counters are independent monotonic tallies — nothing reads one to
/// decide control flow, and no other data is published through them —
/// so the only requirement is freedom from lost updates, which relaxed
/// fetch_add provides. Readers that need a *consistent* snapshot (e.g.
/// asserting exact totals after a batch) get it from the happens-before
/// edge of the dispatcher's barrier (WorkerPool::parallelFor returns
/// only after joining all workers under a mutex), not from the counters
/// themselves.
///
//===----------------------------------------------------------------------===//

#ifndef XSA_SERVICE_CONTEXT_H
#define XSA_SERVICE_CONTEXT_H

#include "analysis/Problems.h"
#include "rewrite/Rewriter.h"
#include "service/Cache.h"
#include "xtype/Dtd.h"

#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>

namespace xsa {

/// Cumulative session counters shared by all contexts of one session.
/// All members are relaxed atomics; see the file comment for the
/// reasoning behind the memory-order choice.
struct AtomicSessionStats {
  /// Number of actual solver runs (cache misses that went to the BDD
  /// fixpoint) and their cumulative cost. Time is tallied in integer
  /// microseconds because atomic floating-point accumulation is not
  /// universally available; SessionStats converts back to milliseconds.
  std::atomic<size_t> Solves{0};
  std::atomic<size_t> SolverIterations{0};
  std::atomic<size_t> SolverTimeUs{0};
  /// Memoized front-end work. Parser and DTD memos are per-context, so
  /// under parallel dispatch these count the sum over all workers (a DTD
  /// may legitimately compile once per worker that needs it).
  std::atomic<size_t> QueriesParsed{0};
  std::atomic<size_t> QueryCacheHits{0};
  std::atomic<size_t> DtdCompilations{0};
  std::atomic<size_t> DtdCacheHits{0};
  /// Rewrite-engine work (optimize requests and the optimize pre-pass).
  /// Optimizations are memoized per context on (query, dtd) text, like
  /// the parser memo above.
  std::atomic<size_t> QueriesOptimized{0};
  std::atomic<size_t> OptimizeCacheHits{0};
  std::atomic<size_t> RewriteChecks{0};
  std::atomic<size_t> RewritesAccepted{0};
};

/// A single-threaded solver context: factory, parser/DTD memos, Analyzer
/// and raw solver, wired through the session's shared cache and stats.
/// AnalysisSession owns one context per worker (plus one for the serial
/// API); it is also usable standalone with both shared fronts null.
class AnalysisContext {
public:
  /// \p SharedCache and \p SharedStats may be null (uncached / untallied
  /// standalone use); when set they must outlive the context.
  explicit AnalysisContext(const SolverOptions &BaseOpts,
                           ShardedResultCache *SharedCache = nullptr,
                           AtomicSessionStats *SharedStats = nullptr);
  AnalysisContext(const AnalysisContext &) = delete;
  AnalysisContext &operator=(const AnalysisContext &) = delete;

  FormulaFactory &factory() { return FF; }

  /// The context's Analyzer: every decision problem routed through it
  /// consults the shared session cache. Callers may use it directly for
  /// the full §8 interface.
  Analyzer &analyzer() { return *An; }

  /// Cached raw satisfiability under the context options (no single-root
  /// restriction, matching a bare BddSolver).
  SolverResult satisfiable(Formula Psi);

  /// Parses an XPath query, memoized on the source string. Returns null
  /// and sets \p Error on a parse failure (failures are memoized too).
  ExprRef query(const std::string &XPath, std::string &Error);

  /// Loads and compiles a DTD to the Lµ formula holding at the roots of
  /// valid documents, memoized on \p Name — a builtin name (wikipedia,
  /// smil, xhtml), a file path, or "" for no constraint (⊤).
  Formula typeFormula(const std::string &Name, std::string &Error);

  /// typeFormula conjoined with the root restriction of §5.2 — the form
  /// used as the context χ of a query constrained by a schema. "" → ⊤.
  Formula typeContext(const std::string &Name, std::string &Error);

  /// A memoized solver-verified optimization of \p XPath under \p Dtd
  /// (rewrite/Rewriter.h). Error is set (and Result empty) when the
  /// query does not parse or the DTD does not load; failures are
  /// memoized like everything else here. Every proof obligation runs
  /// through this context's Analyzer, so it hits the shared session
  /// cache. Returned as a shared_ptr (not a reference into the memo)
  /// because the memo is flushed wholesale when full — a caller may
  /// safely hold the entry across later optimized() calls.
  struct OptimizeEntry {
    RewriteResult Result;
    std::string Error;
    bool Ok = false;
  };
  std::shared_ptr<const OptimizeEntry> optimized(const std::string &XPath,
                                                 const std::string &Dtd);

  /// When true, runRequest rewrites every query through optimized()
  /// before analysis, so near-duplicate queries canonicalize to more
  /// cache-sharable forms (SessionOptions::Optimize).
  bool optimizePrePass() const { return PrePass; }
  void setOptimizePrePass(bool On) { PrePass = On; }

private:
  /// Bridges the solver's pointer-keyed ResultCache interface to the
  /// session's text-keyed ShardedResultCache. The canonical text of each
  /// canonical formula is memoized (the solver canonicalizes before every
  /// lookup, so warm requests would otherwise re-print per call). Holds
  /// the copied-out result of the latest hit, satisfying the interface's
  /// "valid until the next call" contract; one adapter exists per
  /// context, so the buffer is single-threaded like everything else here.
  class SharedCacheAdapter : public ResultCache {
  public:
    SharedCacheAdapter(FormulaFactory &FF, ShardedResultCache &Shared)
        : FF(FF), Shared(Shared) {}
    const SolverResult *lookup(Formula Canonical, uint32_t OptsKey) override;
    void store(Formula Canonical, uint32_t OptsKey,
               const SolverResult &R) override;

  private:
    const std::string &textFor(Formula Canonical);

    /// Canonical texts are KBs for DTD-constrained formulas; an
    /// unbounded memo would outlive the LRU-bounded entries it keys.
    /// Past this many entries the memo is dropped wholesale (the next
    /// warm request just re-prints once) rather than LRU-tracked.
    static constexpr size_t MaxTextMemo = 4096;

    FormulaFactory &FF;
    ShardedResultCache &Shared;
    std::unordered_map<Formula, std::string> TextMemo;
    SolverResult Hit;
  };

  FormulaFactory FF;
  SolverOptions Opts;
  AtomicSessionStats *Stats; ///< may be null
  std::unique_ptr<SharedCacheAdapter> CacheAdapter;
  std::unique_ptr<Analyzer> An;
  std::unique_ptr<BddSolver> RawSolver;

  struct QueryEntry {
    ExprRef E;
    std::string Error;
  };
  std::unordered_map<std::string, QueryEntry> QueryMemo;
  struct DtdEntry {
    Formula Type = nullptr;    ///< null when loading failed
    Formula Context = nullptr; ///< Type ∧ root restriction, lazily built
    std::string Error;
  };
  std::unordered_map<std::string, DtdEntry> DtdMemo;
  /// Bounded, unlike the memos above: a RewriteResult carries the full
  /// proof trace, so a long-running mostly-distinct --optimize stream
  /// must not accumulate entries forever. Flushed wholesale when full
  /// (see optimized()).
  static constexpr size_t MaxOptimizeMemo = 4096;
  std::unordered_map<std::string, std::shared_ptr<const OptimizeEntry>>
      OptimizeMemo;
  bool PrePass = false;

  DtdEntry &loadDtd(const std::string &Name);
};

} // namespace xsa

#endif // XSA_SERVICE_CONTEXT_H
