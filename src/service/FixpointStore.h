//===- FixpointStore.h - Cross-request fixpoint sharing ----------*- C++ -*-===//
//
// Part of the xsa project (PLDI 2007 XPath/type analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared half of cross-request fixpoint sharing: a sharded,
/// thread-safe store of canonical iterate sequences keyed on
/// (lean signature, solver-options fingerprint). The design follows
/// ShardedResultCache — power-of-two shards, one mutex and one LRU list
/// each, relaxed-atomic counters — but the entries are heavier
/// (sequences of BDD node tables), so:
///
///  * entries are immutable and shared_ptr-owned — a lookup hands out a
///    reference, never a copy, and a concurrent eviction cannot
///    invalidate a seed a worker is replaying;
///  * publish keeps an offered sequence only when it *improves* on the
///    stored one (converged beats any prefix, longer prefix beats
///    shorter), so racing workers converge to the best sequence no
///    matter the interleaving;
///  * a per-entry node budget guards against pathological runs turning
///    the store into a memory sink.
///
/// Sharing is sound and output-invisible because the Upd operator of
/// §7.1 is a function of the lean alone — see the file comment of
/// solver/Pipeline.h and the proof in DESIGN.md. Sharing across
/// *different* variable orders (re-basing a table onto another lean
/// permutation) is a known follow-on; until then distinct signatures
/// simply never meet.
///
//===----------------------------------------------------------------------===//

#ifndef XSA_SERVICE_FIXPOINTSTORE_H
#define XSA_SERVICE_FIXPOINTSTORE_H

#include "service/Cache.h"
#include "solver/BddSolver.h"

#include <atomic>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace xsa {

class SharedFixpointStore {
public:
  /// \p Capacity is the total entry budget (0 disables the store:
  /// lookups miss, publishes are dropped). \p Shards as in
  /// ShardedResultCache. \p MaxEntryNodes bounds one entry's summed
  /// snapshot node count; larger offers are dropped.
  explicit SharedFixpointStore(size_t Capacity = 256, size_t Shards = 8,
                               size_t MaxEntryNodes = size_t(1) << 22);

  /// The best stored sequence for the key, or null on a miss.
  std::shared_ptr<const FixpointSeedData> lookup(const std::string &LeanSig,
                                                 uint32_t OptsKey);

  /// Offers a sequence; keeps it only if it improves on the stored one.
  /// Returns true when the offer was kept.
  bool publish(const std::string &LeanSig, uint32_t OptsKey,
               std::shared_ptr<const FixpointSeedData> Data);

  /// Visits every entry, one shard at a time, most-recently-used first
  /// within a shard (AnalysisSession::saveCache). Entries published
  /// concurrently with the walk may or may not be visited.
  void forEachEntry(
      const std::function<void(const std::string &LeanSig, uint32_t OptsKey,
                               const FixpointSeedData &Data)> &Fn) const;

  /// Hits/Misses count lookups; Insertions counts kept publishes.
  CacheStats stats() const;
  size_t capacity() const { return Capacity; }
  size_t numShards() const { return ShardTable.size(); }
  size_t size() const;
  void clear();

private:
  struct Entry {
    std::string Sig;
    uint32_t Opts;
    std::shared_ptr<const FixpointSeedData> Data;
  };
  struct KeyView {
    std::string_view Sig;
    uint32_t Opts;
  };
  struct KeyHash {
    size_t operator()(const KeyView &K) const {
      return std::hash<std::string_view>()(K.Sig) * 31 + K.Opts;
    }
  };
  struct KeyEq {
    bool operator()(const KeyView &A, const KeyView &B) const {
      return A.Opts == B.Opts && A.Sig == B.Sig;
    }
  };
  struct Shard {
    mutable std::mutex M;
    std::list<Entry> Lru; ///< most-recently-used first
    /// Keys view the list-owned signature strings (stable under splice).
    std::unordered_map<KeyView, std::list<Entry>::iterator, KeyHash, KeyEq>
        Entries;
  };

  Shard &shardFor(const KeyView &K) {
    return *ShardTable[KeyHash()(K) & (ShardTable.size() - 1)];
  }
  const Shard &shardFor(const KeyView &K) const {
    return *ShardTable[KeyHash()(K) & (ShardTable.size() - 1)];
  }

  size_t Capacity;
  size_t ShardCapacity;
  size_t MaxEntryNodes;
  std::vector<std::unique_ptr<Shard>> ShardTable;

  /// Relaxed: independent monotonic counters (see Cache.h).
  std::atomic<size_t> Hits{0}, Misses{0}, Insertions{0}, Evictions{0},
      SizeCount{0};
};

} // namespace xsa

#endif // XSA_SERVICE_FIXPOINTSTORE_H
