//===- FixpointStore.cpp - Cross-request fixpoint sharing ------------------===//

#include "service/FixpointStore.h"

#include "obs/Trace.h"

#include <algorithm>

using namespace xsa;

SharedFixpointStore::SharedFixpointStore(size_t Capacity, size_t Shards,
                                         size_t MaxEntryNodes)
    : Capacity(Capacity), MaxEntryNodes(MaxEntryNodes) {
  // Largest power of two ≤ min(Shards, max(Capacity, 1)), as in
  // ShardedResultCache: never more shards than entries.
  size_t Limit = std::max<size_t>(Capacity, 1);
  size_t N = 1;
  while (N * 2 <= Shards && N * 2 <= Limit)
    N *= 2;
  ShardCapacity = Capacity == 0 ? 0 : std::max<size_t>(1, Capacity / N);
  ShardTable.reserve(N);
  for (size_t I = 0; I < N; ++I)
    ShardTable.push_back(std::make_unique<Shard>());
}

std::shared_ptr<const FixpointSeedData>
SharedFixpointStore::lookup(const std::string &LeanSig, uint32_t OptsKey) {
  Span ProbeSpan("fixstore.probe");
  KeyView K{LeanSig, OptsKey};
  Shard &S = shardFor(K);
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Entries.find(K);
  if (It == S.Entries.end()) {
    Misses.fetch_add(1, std::memory_order_relaxed);
    ProbeSpan.arg("hit", 0);
    return nullptr;
  }
  Hits.fetch_add(1, std::memory_order_relaxed);
  S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
  ProbeSpan.arg("hit", 1);
  ProbeSpan.arg("snapshots", static_cast<double>(It->second->Data
                                                     ? It->second->Data->Snapshots.size()
                                                     : 0));
  return It->second->Data;
}

bool SharedFixpointStore::publish(const std::string &LeanSig, uint32_t OptsKey,
                                  std::shared_ptr<const FixpointSeedData> Data) {
  if (Capacity == 0 || !Data || Data->Snapshots.empty() ||
      Data->totalNodes() > MaxEntryNodes)
    return false;
  Span PublishSpan("fixstore.publish");
  KeyView K{LeanSig, OptsKey};
  Shard &S = shardFor(K);
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Entries.find(K);
  if (It != S.Entries.end()) {
    // Keep the offer only when it improves on the stored sequence:
    // converged beats any prefix, longer prefix beats shorter. Racing
    // publishers therefore converge to the best sequence regardless of
    // arrival order.
    const FixpointSeedData &Old = *It->second->Data;
    bool Improves =
        (Data->Converged && !Old.Converged) ||
        (Data->Converged == Old.Converged &&
         Data->Snapshots.size() > Old.Snapshots.size());
    if (!Improves)
      return false;
    It->second->Data = std::move(Data);
    S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
    Insertions.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  while (S.Entries.size() >= ShardCapacity) {
    // The map key views the list-owned string: erase before pop.
    const Entry &Victim = S.Lru.back();
    S.Entries.erase(KeyView{Victim.Sig, Victim.Opts});
    S.Lru.pop_back();
    Evictions.fetch_add(1, std::memory_order_relaxed);
    SizeCount.fetch_sub(1, std::memory_order_relaxed);
  }
  S.Lru.push_front({LeanSig, OptsKey, std::move(Data)});
  S.Entries.emplace(KeyView{S.Lru.front().Sig, OptsKey}, S.Lru.begin());
  Insertions.fetch_add(1, std::memory_order_relaxed);
  SizeCount.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void SharedFixpointStore::forEachEntry(
    const std::function<void(const std::string &, uint32_t,
                             const FixpointSeedData &)> &Fn) const {
  for (const std::unique_ptr<Shard> &S : ShardTable) {
    std::lock_guard<std::mutex> Lock(S->M);
    for (const Entry &E : S->Lru)
      Fn(E.Sig, E.Opts, *E.Data);
  }
}

CacheStats SharedFixpointStore::stats() const {
  CacheStats S;
  S.Hits = Hits.load(std::memory_order_relaxed);
  S.Misses = Misses.load(std::memory_order_relaxed);
  S.Insertions = Insertions.load(std::memory_order_relaxed);
  S.Evictions = Evictions.load(std::memory_order_relaxed);
  S.Size = SizeCount.load(std::memory_order_relaxed);
  return S;
}

size_t SharedFixpointStore::size() const {
  return SizeCount.load(std::memory_order_relaxed);
}

void SharedFixpointStore::clear() {
  for (const std::unique_ptr<Shard> &S : ShardTable) {
    std::lock_guard<std::mutex> Lock(S->M);
    SizeCount.fetch_sub(S->Entries.size(), std::memory_order_relaxed);
    S->Lru.clear();
    S->Entries.clear();
  }
}
