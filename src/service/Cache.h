//===- Cache.h - LRU semantic result caches ----------------------*- C++ -*-===//
//
// Part of the xsa project (PLDI 2007 XPath/type analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic result caches for the service layer, in two flavours:
///
///  * LruResultCache — the single-threaded implementation of the solver's
///    ResultCache interface. Entries are keyed on (canonical formula,
///    solver-options fingerprint); because canonical formulas are interned
///    in one FormulaFactory, key comparison is pointer equality and
///    α-equivalent queries share an entry.
///
///  * ShardedResultCache — the thread-safe shared front of a parallel
///    AnalysisSession. Worker threads each own a FormulaFactory, so
///    formula pointers cannot cross threads; entries are instead keyed on
///    the *canonical formula text* (FormulaFactory::toString of
///    canonicalize), which is factory-independent: canonicalize renames
///    every binder to a name derived from its binding position, so
///    α-equivalent formulas print identically no matter which worker
///    built them. The table is split into power-of-two shards, each an
///    independently locked LRU, so concurrent workers only contend when
///    they hash to the same shard. Counters are relaxed atomics — they
///    are independent monotonic tallies with no ordering relation to the
///    cached data, and the batch dispatcher's join provides the
///    happens-before edge any reader of a final snapshot needs.
///
/// Both memoize full SolverResults — satisfiability verdict, extracted
/// model tree, and the stats of the run that produced the entry — and
/// keep hit/miss/eviction counters for SessionStats.
///
//===----------------------------------------------------------------------===//

#ifndef XSA_SERVICE_CACHE_H
#define XSA_SERVICE_CACHE_H

#include "solver/BddSolver.h"

#include <atomic>
#include <cstddef>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace xsa {

struct CacheStats {
  size_t Hits = 0;
  size_t Misses = 0;
  size_t Insertions = 0;
  size_t Evictions = 0;
  size_t Size = 0;
};

class LruResultCache : public ResultCache {
public:
  /// \p Capacity 0 disables caching entirely (every lookup misses and
  /// nothing is stored).
  explicit LruResultCache(size_t Capacity = 1024) : Capacity(Capacity) {}

  const SolverResult *lookup(Formula Canonical, uint32_t OptsKey) override;
  void store(Formula Canonical, uint32_t OptsKey,
             const SolverResult &R) override;

  const CacheStats &stats() const { return Stats; }
  size_t capacity() const { return Capacity; }
  size_t size() const { return Entries.size(); }
  void clear();

private:
  using Key = std::pair<Formula, uint32_t>;
  struct KeyHash {
    size_t operator()(const Key &K) const {
      return K.first->hash() * 31 + K.second;
    }
  };
  struct Entry {
    Key K;
    SolverResult Result;
  };

  size_t Capacity;
  /// Most-recently-used first.
  std::list<Entry> Lru;
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> Entries;
  CacheStats Stats;
};

/// Thread-safe sharded LRU keyed on canonical formula text + options
/// fingerprint. See the file comment for the design rationale.
class ShardedResultCache {
public:
  /// \p Capacity 0 disables caching. \p Shards is rounded down to a
  /// power of two and clamped so every shard holds at least one entry;
  /// with more than one shard the capacity is enforced per shard
  /// (total/shards each), so the global bound is approximate — exact
  /// again when Shards == 1.
  explicit ShardedResultCache(size_t Capacity = 1024, size_t Shards = 8);

  /// Copies the entry for (\p Key, \p OptsKey) into \p Out. Returns
  /// false on a miss.
  bool lookup(const std::string &Key, uint32_t OptsKey, SolverResult &Out);

  /// Inserts or refreshes an entry. Concurrent stores of the same key
  /// are idempotent (the solver is deterministic, so both threads carry
  /// the same result; last writer wins).
  void store(const std::string &Key, uint32_t OptsKey, const SolverResult &R);

  /// Visits every entry, one shard at a time, most-recently-used first
  /// within a shard. Used by AnalysisSession::saveCache. Entries stored
  /// concurrently with the walk may or may not be visited.
  void
  forEachEntry(const std::function<void(const std::string &Key,
                                        uint32_t OptsKey,
                                        const SolverResult &R)> &Fn) const;

  CacheStats stats() const;
  size_t capacity() const { return Capacity; }
  size_t numShards() const { return ShardTable.size(); }
  size_t size() const;
  void clear();

private:
  using Key = std::pair<std::string, uint32_t>;
  /// Non-owning key for lookups: canonical texts are long (KBs for
  /// DTD-constrained formulas), so the hot path must not copy them just
  /// to probe the table. The hasher/equality are transparent and hash
  /// through string_view, which the standard guarantees agrees with
  /// hash<string> on equal content.
  struct KeyView {
    std::string_view Text;
    uint32_t Opts;
  };
  struct KeyHash {
    size_t operator()(const KeyView &K) const {
      return std::hash<std::string_view>()(K.Text) * 31 + K.Opts;
    }
  };
  struct KeyEq {
    bool operator()(const KeyView &A, const KeyView &B) const {
      return A.Opts == B.Opts && A.Text == B.Text;
    }
  };
  struct Entry {
    Key K;
    SolverResult Result;
  };
  struct Shard {
    mutable std::mutex M;
    std::list<Entry> Lru; ///< most-recently-used first
    /// Keys are views into the list-owned strings (list nodes are
    /// address-stable under splice), so each canonical text is stored
    /// once per entry, not twice. Map erasure must precede list pop.
    std::unordered_map<KeyView, std::list<Entry>::iterator, KeyHash, KeyEq>
        Entries;
  };

  Shard &shardFor(const KeyView &K) {
    return *ShardTable[KeyHash()(K) & (ShardTable.size() - 1)];
  }

  size_t Capacity;      ///< total requested capacity
  size_t ShardCapacity; ///< enforced per shard
  std::vector<std::unique_ptr<Shard>> ShardTable;

  /// Relaxed: independent monotonic counters (see file comment).
  std::atomic<size_t> Hits{0}, Misses{0}, Insertions{0}, Evictions{0},
      SizeCount{0};
};

/// Thread-safe store of solver-verified optimized query forms, keyed on
/// (query text, DTD name). This is the shared, persistable face of the
/// per-context OptimizeMemo: contexts publish every accepted rewrite
/// here, consult it before re-deriving one (the pre-pass path), and
/// AnalysisSession::saveCache/loadCache carry it across processes so a
/// restarted service skips the proof obligations entirely. Entries are
/// just the optimized concrete syntax — the proofs were discharged by
/// whoever published, exactly the trust already extended to persisted
/// SolverResults. A DTD name is mutable content, though (a .dtd file
/// can change between runs, unlike the canonical-formula result-cache
/// keys that bake the compiled DTD in), so every entry carries a
/// fingerprint of the *compiled* DTD context it was proved under and a
/// lookup under a different content misses rather than resurrecting a
/// stale proof. One mutex, not shards: entries are tiny and the
/// rewriter dominates any contention on this map.
class OptimizeSeedStore {
public:
  /// Entries are bounded like the per-context memo: past MaxEntries the
  /// map is flushed wholesale rather than LRU-tracked.
  static constexpr size_t MaxEntries = 1 << 16;

  /// The stored optimized form of (\p Query, \p Dtd), provided it was
  /// proved under a DTD compiling to \p DtdFp; false otherwise.
  bool lookup(const std::string &Query, const std::string &Dtd,
              uint64_t DtdFp, std::string &OptimizedOut) const;
  void store(const std::string &Query, const std::string &Dtd,
             uint64_t DtdFp, const std::string &Optimized);
  void forEachEntry(const std::function<
                    void(const std::string &Query, const std::string &Dtd,
                         uint64_t DtdFp, const std::string &Optimized)> &Fn)
      const;
  size_t size() const;
  void clear();

private:
  struct Entry {
    std::string Query, Dtd, Optimized;
    uint64_t DtdFp = 0;
  };
  mutable std::mutex M;
  std::unordered_map<std::string, Entry> Map; ///< length-prefixed key
};

/// Thread-safe store of remembered per-lean fixpoint-strategy choices:
/// the shared face of the solver's StrategyMemo that Auto mode consults
/// (service/Context.h adapts it per context). Keyed by lean signature —
/// the same label-abstracted key the fixpoint store uses — so one
/// worker's resolution pins the strategy for every formula with that
/// lean, across threads and (via AnalysisSession::saveCache/loadCache)
/// across processes. Stored values are always concrete strategies,
/// never Auto. One mutex, not shards: a lookup is a small map probe
/// dwarfed by the solver run behind it, and entries are a few bytes.
class StrategyChoiceStore {
public:
  /// Bounded like OptimizeSeedStore: past MaxEntries the map is flushed
  /// wholesale rather than LRU-tracked.
  static constexpr size_t MaxEntries = 1 << 16;

  bool lookup(const std::string &LeanSig, FixpointStrategy &Out) const {
    std::lock_guard<std::mutex> Lock(M);
    auto It = Map.find(LeanSig);
    if (It == Map.end())
      return false;
    Out = It->second;
    return true;
  }

  /// First writer wins: a remembered choice is never overwritten, so
  /// racing workers (and reloaded persistent entries) converge on one
  /// strategy per lean regardless of arrival order.
  void remember(const std::string &LeanSig, FixpointStrategy S) {
    std::lock_guard<std::mutex> Lock(M);
    if (Map.size() >= MaxEntries && !Map.count(LeanSig))
      Map.clear();
    Map.emplace(LeanSig, S);
  }

  void forEachEntry(const std::function<void(const std::string &LeanSig,
                                             FixpointStrategy S)> &Fn) const {
    std::lock_guard<std::mutex> Lock(M);
    for (const auto &[Sig, S] : Map)
      Fn(Sig, S);
  }

  size_t size() const {
    std::lock_guard<std::mutex> Lock(M);
    return Map.size();
  }

  void clear() {
    std::lock_guard<std::mutex> Lock(M);
    Map.clear();
  }

private:
  mutable std::mutex M;
  std::unordered_map<std::string, FixpointStrategy> Map;
};

} // namespace xsa

#endif // XSA_SERVICE_CACHE_H
