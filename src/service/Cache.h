//===- Cache.h - LRU semantic result cache -----------------------*- C++ -*-===//
//
// Part of the xsa project (PLDI 2007 XPath/type analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An LRU-bounded implementation of the solver's ResultCache interface.
/// Entries are keyed on (canonical formula, solver-options fingerprint);
/// because canonical formulas are interned in the session's
/// FormulaFactory, key comparison is pointer equality and α-equivalent
/// queries share one entry. The cache memoizes full SolverResults —
/// satisfiability verdict, extracted model tree, and the stats of the run
/// that produced the entry — and keeps hit/miss/eviction counters for
/// SessionStats.
///
//===----------------------------------------------------------------------===//

#ifndef XSA_SERVICE_CACHE_H
#define XSA_SERVICE_CACHE_H

#include "solver/BddSolver.h"

#include <cstddef>
#include <list>
#include <unordered_map>
#include <utility>

namespace xsa {

struct CacheStats {
  size_t Hits = 0;
  size_t Misses = 0;
  size_t Insertions = 0;
  size_t Evictions = 0;
  size_t Size = 0;
};

class LruResultCache : public ResultCache {
public:
  /// \p Capacity 0 disables caching entirely (every lookup misses and
  /// nothing is stored).
  explicit LruResultCache(size_t Capacity = 1024) : Capacity(Capacity) {}

  const SolverResult *lookup(Formula Canonical, uint32_t OptsKey) override;
  void store(Formula Canonical, uint32_t OptsKey,
             const SolverResult &R) override;

  const CacheStats &stats() const { return Stats; }
  size_t capacity() const { return Capacity; }
  size_t size() const { return Entries.size(); }
  void clear();

private:
  using Key = std::pair<Formula, uint32_t>;
  struct KeyHash {
    size_t operator()(const Key &K) const {
      return K.first->hash() * 31 + K.second;
    }
  };
  struct Entry {
    Key K;
    SolverResult Result;
  };

  size_t Capacity;
  /// Most-recently-used first.
  std::list<Entry> Lru;
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> Entries;
  CacheStats Stats;
};

} // namespace xsa

#endif // XSA_SERVICE_CACHE_H
