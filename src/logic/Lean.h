//===- Lean.h - Fisher-Ladner closure and the Lean (§6.1) --------*- C++ -*-===//
//
// Part of the xsa project (PLDI 2007 XPath/type analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The *Lean* of a formula ψ (§6.1, after Pan–Sattler–Vardi):
///
///   Lean(ψ) = {⟨a⟩⊤ | a ∈ {1,2,1̄,2̄}} ∪ Σ(ψ) ∪ {σx} ∪ {s}
///           ∪ {⟨a⟩φ ∈ cl(ψ)}
///
/// where cl(ψ) is the Fisher–Ladner closure (subformulas, with fixpoints
/// unwound once) and σx is a fresh atomic proposition standing for every
/// label not occurring in ψ. A ψ-type (Hintikka set) is a subset of the
/// Lean satisfying modal consistency, "not both a first and a second
/// child", and "exactly one atomic proposition".
///
/// Lean members are ordered by a breadth-first traversal of ψ, which is
/// the BDD variable-order heuristic of §7.4 (it keeps sister subformulas
/// close). Alternative orders are available for the ablation benchmarks.
///
//===----------------------------------------------------------------------===//

#ifndef XSA_LOGIC_LEAN_H
#define XSA_LOGIC_LEAN_H

#include "logic/Formula.h"
#include "support/DynBitset.h"

#include <unordered_map>
#include <vector>

namespace xsa {

/// How Lean members (and hence BDD variables) are ordered.
enum class LeanOrder {
  BreadthFirst, ///< §7.4 heuristic (default)
  DepthFirst,   ///< ablation: depth-first encounter order
  Reversed,     ///< ablation: breadth-first reversed
};

class Lean {
public:
  /// Computes the Lean of \p Psi (which must be closed and cycle-free).
  static Lean compute(FormulaFactory &FF, Formula Psi,
                      LeanOrder Order = LeanOrder::BreadthFirst);

  /// All lean members in variable order. Atomic propositions appear as
  /// Prop formulas, the start mark as Start, modal members as Exist.
  const std::vector<Formula> &members() const { return Members; }
  size_t size() const { return Members.size(); }

  /// Bit index of ⟨a⟩⊤.
  unsigned diamTopIndex(Program A) const {
    return DiamTopIdx[static_cast<int>(A)];
  }

  /// Bit index of the start proposition s.
  unsigned startIndex() const { return StartIdx; }

  /// Bit index of atomic proposition σ; σ must be in props().
  unsigned propIndex(Symbol S) const { return PropIdx.at(S); }
  bool hasProp(Symbol S) const { return PropIdx.count(S) != 0; }

  /// All atomic propositions (Σ(ψ) followed by σx).
  const std::vector<Symbol> &props() const { return PropSyms; }

  /// The "some other label" proposition σx.
  Symbol otherProp() const { return OtherSym; }

  /// Bit index of a modal lean member ⟨a⟩φ (⊤ child included);
  /// returns ~0u if absent.
  unsigned existIndex(Formula Diamond) const {
    auto It = ExistIdx.find(Diamond);
    return It == ExistIdx.end() ? ~0u : It->second;
  }

  /// Indices of all modal members ⟨a⟩φ with program \p A (including ⟨a⟩⊤).
  std::vector<unsigned> existsOfProgram(Program A) const;

  /// True if bit \p I is a modal member (⟨a⟩φ for some a, including ⟨a⟩⊤).
  bool isExist(unsigned I) const {
    return Members[I]->is(FormulaKind::Exist);
  }

  /// Checks the ψ-type (Hintikka) conditions of §6.1 on a bit vector.
  bool isValidType(const DynBitset &T) const;

  /// The truth-assignment relation φ .∈ t of Figure 15, evaluated on a
  /// ψ-type given as a bit vector over the lean. \p F must be built from
  /// lean members (any formula in cl*(ψ)).
  bool status(FormulaFactory &FF, Formula F, const DynBitset &T) const;

  /// Human-readable description of lean member \p I.
  std::string memberName(FormulaFactory &FF, unsigned I) const;

  /// Canonical lean signature: the ordered canonical texts of all lean
  /// members — binders renamed to their binding positions
  /// (canonicalize) and atomic propositions renamed to their
  /// first-occurrence index over the member list — length-prefix framed
  /// so the concatenation is injective. Members are closed (compute()
  /// steps through fixpoints by unfolding), so the signature is
  /// factory-independent: two leans have equal signatures iff their
  /// member lists agree up to binder names and an order-preserving
  /// relabeling of the alphabet — exactly the condition under which the
  /// solver's §7.1 iterate sequence, which addresses propositions only
  /// through lean indices, is bit-for-bit the same for both. This is
  /// the sharing key of the cross-request fixpoint store
  /// (service/FixpointStore.h).
  std::string signature(FormulaFactory &FF) const;

private:
  std::vector<Formula> Members;
  unsigned DiamTopIdx[4] = {0, 0, 0, 0};
  unsigned StartIdx = 0;
  std::vector<Symbol> PropSyms;
  Symbol OtherSym = 0;
  std::unordered_map<Symbol, unsigned> PropIdx;
  std::unordered_map<Formula, unsigned> ExistIdx;
};

} // namespace xsa

#endif // XSA_LOGIC_LEAN_H
