//===- CycleFree.cpp - Cycle-free formula check (Fig. 3) -------------------===//
//
// A formula is cycle free when every path of every unfolding contains a
// bounded number of modality cycles ⟨a⟩⟨ā⟩ (§4). Unbounded repetition can
// only come from recursion: for each variable X, each "period" — a path
// from an occurrence of X through its definition back to an occurrence of
// X — must be free of modality cycles, *including* the pair formed where
// one period ends and the next begins (loops may alternate, so every
// (last modality, first modality) combination over X's periods must
// compose cleanly).
//
// This refines the presentation of Figure 3: Γ maps each variable to the
// direction of the last modality crossed since the variable's binder or
// last expansion (with a sticky ⊥ when a converse pair is crossed), and
// additionally remembers the first modality of the current period; rule
// Rec resets the expanded variable's entry, and rule NoRec both requires
// a clean direction and records the (first, last) pair for the final
// wrap-around check. On the paper's examples (§4) this accepts and
// rejects exactly as stated, including the mutual-recursion example
// µX = ⟨1⟩(X∨Y), Y = ⟨1̄⟩(Y∨⊤) in X (cycle free: the ⟨1⟩⟨1̄⟩ cycle
// happens once, not once per unfolding).
//
//===----------------------------------------------------------------------===//

#include "logic/CycleFree.h"

#include <cassert>
#include <map>
#include <set>

using namespace xsa;

namespace {

enum class Direction : uint8_t {
  Unknown, // no modality crossed yet
  D1,      // ⟨1⟩
  D2,      // ⟨2⟩
  DP1,     // ⟨1̄⟩
  DP2,     // ⟨2̄⟩
  Bottom,  // converse pair crossed
};

Direction fromProgram(Program P) {
  switch (P) {
  case Program::Child:
    return Direction::D1;
  case Program::Sibling:
    return Direction::D2;
  case Program::ParentInv:
    return Direction::DP1;
  case Program::SiblingInv:
    return Direction::DP2;
  }
  return Direction::Bottom;
}

Program toProgram(Direction D) {
  switch (D) {
  case Direction::D1:
    return Program::Child;
  case Direction::D2:
    return Program::Sibling;
  case Direction::DP1:
    return Program::ParentInv;
  case Direction::DP2:
    return Program::SiblingInv;
  default:
    assert(false && "no program for unknown/bottom");
    return Program::Child;
  }
}

/// The · C ⟨a⟩ operator of §4: ⊥ exactly when the previous modality is
/// the converse of the new one.
Direction compose(Direction D, Program A) {
  if (D == Direction::Bottom)
    return Direction::Bottom;
  if (D == Direction::Unknown)
    return fromProgram(A);
  if (converse(toProgram(D)) == A)
    return Direction::Bottom;
  return fromProgram(A);
}

/// Does the two-modality sequence ⟨l⟩⟨f⟩ contain a cycle?
bool wrapClean(Direction L, Direction F) {
  if (L == Direction::Unknown || F == Direction::Unknown)
    return true;
  return compose(L, toProgram(F)) != Direction::Bottom;
}

struct VarState {
  Direction Dir = Direction::Unknown;   ///< last modality of the period
  Direction First = Direction::Unknown; ///< first modality of the period
};

using Gamma = std::map<Symbol, VarState>;

class Checker {
public:
  bool check(Formula F) {
    Gamma G;
    return judge(F, G);
  }

private:
  std::map<Symbol, Formula> Delta;
  std::set<Symbol> R; ///< variables being expanded on this branch
  std::set<Symbol> I; ///< variables already checked (rule Ign)
  /// (first, last) modalities observed at occurrences, per expanded var.
  std::map<Symbol, std::set<std::pair<Direction, Direction>>> Periods;

  bool judge(Formula F, Gamma &G) {
    switch (F->kind()) {
    case FormulaKind::True:
    case FormulaKind::False:
    case FormulaKind::Prop:
    case FormulaKind::NegProp:
    case FormulaKind::Start:
    case FormulaKind::NegStart:
    case FormulaKind::NegExistTop:
      return true;
    case FormulaKind::And:
    case FormulaKind::Or: {
      // Each branch is a separate path: copy Γ for the left branch.
      Gamma Left(G);
      return judge(F->lhs(), Left) && judge(F->rhs(), G);
    }
    case FormulaKind::Exist: {
      Gamma Composed;
      for (const auto &[Var, St] : G) {
        VarState NS;
        NS.Dir = compose(St.Dir, F->program());
        NS.First = St.First == Direction::Unknown ? fromProgram(F->program())
                                                  : St.First;
        Composed.emplace(Var, NS);
      }
      return judge(F->lhs(), Composed);
    }
    case FormulaKind::Var: {
      Symbol X = F->sym();
      if (I.count(X))
        return true; // rule Ign
      auto GIt = G.find(X);
      if (GIt == G.end())
        return false; // free variable: ill-formed
      if (R.count(X)) {
        // Rule NoRec: the period must be guarded and cycle free inside.
        const VarState &St = GIt->second;
        if (St.Dir == Direction::Unknown || St.Dir == Direction::Bottom)
          return false;
        Periods[X].insert({St.First, St.Dir});
        return true;
      }
      // Rule Rec: expand the definition once, measuring a fresh period.
      auto DIt = Delta.find(X);
      assert(DIt != Delta.end() && "Γ has X but ∆ does not");
      R.insert(X);
      VarState Saved = GIt->second;
      GIt->second = VarState();
      auto SavedPeriods = std::move(Periods[X]);
      Periods[X].clear();
      bool Ok = judge(DIt->second, G);
      if (Ok) {
        // Wrap-around: any period may follow any other.
        const auto &Ps = Periods[X];
        for (const auto &[F1, L1] : Ps) {
          (void)F1;
          for (const auto &[F2, L2] : Ps) {
            (void)L2;
            if (!wrapClean(L1, F2)) {
              Ok = false;
              break;
            }
          }
          if (!Ok)
            break;
        }
      }
      Periods[X] = std::move(SavedPeriods);
      G[X] = Saved;
      R.erase(X);
      return Ok;
    }
    case FormulaKind::Mu: {
      // Save shadowed state.
      std::map<Symbol, Formula> SavedDelta;
      Gamma SavedGamma;
      std::set<Symbol> SavedR, SavedI;
      for (const MuBinding &B : F->bindings()) {
        if (auto It = Delta.find(B.Var); It != Delta.end())
          SavedDelta.emplace(B.Var, It->second);
        if (auto It = G.find(B.Var); It != G.end())
          SavedGamma.emplace(B.Var, It->second);
        if (R.erase(B.Var))
          SavedR.insert(B.Var);
        if (I.erase(B.Var))
          SavedI.insert(B.Var);
        Delta[B.Var] = B.Def;
      }
      bool Ok = true;
      // Check every binding with Γ + X̄ : unknown (the binder opens a
      // fresh period for its variables).
      for (const MuBinding &B : F->bindings()) {
        Gamma G2(G);
        for (const MuBinding &B2 : F->bindings())
          G2[B2.Var] = VarState();
        if (!judge(B.Def, G2)) {
          Ok = false;
          break;
        }
      }
      if (Ok) {
        for (const MuBinding &B : F->bindings())
          I.insert(B.Var);
        Gamma GBody(G);
        for (const MuBinding &B : F->bindings())
          GBody[B.Var] = VarState();
        Ok = judge(F->body(), GBody);
        for (const MuBinding &B : F->bindings())
          I.erase(B.Var);
      }
      // Restore.
      for (const MuBinding &B : F->bindings()) {
        Delta.erase(B.Var);
        G.erase(B.Var);
      }
      for (auto &[K, V] : SavedDelta)
        Delta[K] = V;
      for (auto &[K, V] : SavedGamma)
        G[K] = V;
      for (Symbol S : SavedR)
        R.insert(S);
      for (Symbol S : SavedI)
        I.insert(S);
      return Ok;
    }
    }
    return false;
  }
};

//===----------------------------------------------------------------------===//
// Polynomial graph-based checker
//===----------------------------------------------------------------------===//

/// An edge Y → Z: within Y's definition there is a path from the start
/// to an occurrence of Z whose first/last crossed modalities are First/
/// Last. Epsilon marks a modality-free path (unguarded occurrence);
/// Internal marks a converse pair ⟨a⟩⟨ā⟩ crossed inside the path.
struct PathEdge {
  Symbol From;
  Symbol To;
  Direction First = Direction::Unknown;
  Direction Last = Direction::Unknown;
  bool Internal = false;
  bool epsilon() const { return First == Direction::Unknown; }
};

class GraphChecker {
public:
  bool check(Formula Root) {
    collectBindings(Root);
    for (const auto &[Var, Def] : Bindings)
      summarize(Var, Def);
    return !hasBadCycle();
  }

private:
  std::map<Symbol, Formula> Bindings;
  std::vector<PathEdge> Edges;
  std::map<Symbol, std::vector<size_t>> OutEdges;

  void collectBindings(Formula F) {
    if (!Seen.insert(F).second)
      return;
    switch (F->kind()) {
    case FormulaKind::And:
    case FormulaKind::Or:
      collectBindings(F->lhs());
      collectBindings(F->rhs());
      return;
    case FormulaKind::Exist:
      collectBindings(F->lhs());
      return;
    case FormulaKind::Mu:
      for (const MuBinding &B : F->bindings()) {
        // Fresh-variable discipline: shadowing would conflate loops.
        Bindings.emplace(B.Var, B.Def);
        collectBindings(B.Def);
      }
      collectBindings(F->body());
      return;
    default:
      return;
    }
  }

  /// Walks Y's definition (descending through inner fixpoints' bodies —
  /// their bindings are summarized separately) and emits one edge per
  /// distinct (occurrence, First, Last, Internal) path summary. States
  /// are memoized, so the walk is polynomial in |Def| despite sharing.
  void summarize(Symbol Y, Formula Def) {
    Memo.clear();
    walk(Y, Def, Direction::Unknown, Direction::Unknown, false);
  }

  struct WalkState {
    Formula F;
    Direction First, Last;
    bool Internal;
    bool operator<(const WalkState &O) const {
      return std::tie(F, First, Last, Internal) <
             std::tie(O.F, O.First, O.Last, O.Internal);
    }
  };

  void walk(Symbol Y, Formula F, Direction First, Direction Last,
            bool Internal) {
    if (!Memo.insert({F, First, Last, Internal}).second)
      return;
    switch (F->kind()) {
    case FormulaKind::Var: {
      size_t Idx = Edges.size();
      Edges.push_back({Y, F->sym(), First, Last, Internal});
      OutEdges[Y].push_back(Idx);
      return;
    }
    case FormulaKind::And:
    case FormulaKind::Or:
      walk(Y, F->lhs(), First, Last, Internal);
      walk(Y, F->rhs(), First, Last, Internal);
      return;
    case FormulaKind::Exist: {
      Direction NewLast = compose(Last, F->program());
      bool NewInternal = Internal || NewLast == Direction::Bottom;
      if (NewLast == Direction::Bottom)
        NewLast = fromProgram(F->program()); // keep tracking past the pair
      Direction NewFirst =
          First == Direction::Unknown ? fromProgram(F->program()) : First;
      walk(Y, F->lhs(), NewFirst, NewLast, NewInternal);
      return;
    }
    case FormulaKind::Mu:
      // Inner bindings are separate graph nodes; the path continues
      // through the body.
      walk(Y, F->body(), First, Last, Internal);
      return;
    default:
      return; // atoms end the path
    }
  }

  /// Reachability over all edges / over ε edges only.
  bool reaches(Symbol From, Symbol To, bool EpsilonOnly,
               bool AllowEmpty) const {
    if (AllowEmpty && From == To)
      return true;
    std::set<Symbol> Visited;
    std::vector<Symbol> Stack{From};
    while (!Stack.empty()) {
      Symbol V = Stack.back();
      Stack.pop_back();
      auto It = OutEdges.find(V);
      if (It == OutEdges.end())
        continue;
      for (size_t E : It->second) {
        if (EpsilonOnly && !Edges[E].epsilon())
          continue;
        Symbol T = Edges[E].To;
        if (T == To)
          return true;
        if (Visited.insert(T).second)
          Stack.push_back(T);
      }
    }
    return false;
  }

  bool hasBadCycle() const {
    // (a) An internal converse pair, or an unguarded (ε) step, that can
    // repeat: the edge closes a cycle.
    for (const PathEdge &E : Edges) {
      if (E.Internal && reaches(E.To, E.From, /*EpsilonOnly=*/false,
                                /*AllowEmpty=*/true))
        return true;
      if (E.epsilon() && reaches(E.To, E.From, /*EpsilonOnly=*/true,
                                 /*AllowEmpty=*/true))
        return true;
    }
    // (b) Two modal edges meeting — possibly across ε edges — in a
    // converse pair, on a common cycle.
    for (const PathEdge &E1 : Edges) {
      if (E1.epsilon())
        continue;
      for (const PathEdge &E2 : Edges) {
        if (E2.epsilon())
          continue;
        if (E1.Last == Direction::Unknown || E2.First == Direction::Unknown)
          continue;
        if (wrapClean(E1.Last, E2.First))
          continue;
        // e1 ⟶ε* e2 adjacency and a walk closing the loop.
        if (reaches(E1.To, E2.From, /*EpsilonOnly=*/true, /*AllowEmpty=*/true) &&
            reaches(E2.To, E1.From, /*EpsilonOnly=*/false, /*AllowEmpty=*/true))
          return true;
      }
    }
    return false;
  }

  std::set<Formula> Seen;
  std::set<WalkState> Memo;
};

} // namespace

bool xsa::isCycleFree(Formula F) {
  GraphChecker C;
  return C.check(F);
}

bool xsa::isCycleFreeFig3(Formula F) {
  Checker C;
  return C.check(F);
}
