//===- Lean.cpp - Fisher-Ladner closure and the Lean (§6.1) ----------------===//

#include "logic/Lean.h"

#include <algorithm>
#include <cassert>
#include <deque>

using namespace xsa;

Lean Lean::compute(FormulaFactory &FF, Formula Psi, LeanOrder Order) {
  // Traverse the expanded formula graph collecting, in encounter order,
  // the atomic propositions and the modal subformulas ⟨a⟩φ of cl(ψ).
  // Fixpoints are stepped through via unfold (their one-step unwinding is
  // in the closure); hash consing plus the factory's unfold memo keep the
  // set of visited nodes finite for cycle-free (guarded) formulas.
  // Lean members (propositions and modal subformulas alike) are kept in
  // encounter order: §7.4's locality heuristic — an element name stays
  // next to the modal obligations that mention it, which is what keeps
  // the type-formula BDDs small.
  std::vector<Formula> Mixed; // props (as Prop nodes) and ⟨a⟩φ members
  std::unordered_map<Formula, bool> Visited;
  std::unordered_map<Symbol, bool> PropSeen;
  std::unordered_map<Formula, bool> ExistSeen;

  std::deque<Formula> Queue;
  Queue.push_back(Psi);
  bool Bfs = Order != LeanOrder::DepthFirst;
  while (!Queue.empty()) {
    Formula F;
    if (Bfs) {
      F = Queue.front();
      Queue.pop_front();
    } else {
      F = Queue.back();
      Queue.pop_back();
    }
    if (Visited.count(F))
      continue;
    Visited.emplace(F, true);
    switch (F->kind()) {
    case FormulaKind::True:
    case FormulaKind::False:
    case FormulaKind::Start:
    case FormulaKind::NegStart:
    case FormulaKind::NegExistTop:
      break;
    case FormulaKind::Prop:
    case FormulaKind::NegProp:
      if (!PropSeen.count(F->sym())) {
        PropSeen.emplace(F->sym(), true);
        Mixed.push_back(FF.prop(F->sym()));
      }
      break;
    case FormulaKind::Var:
      assert(false && "lean of a formula with free variables");
      break;
    case FormulaKind::And:
    case FormulaKind::Or:
      Queue.push_back(F->lhs());
      Queue.push_back(F->rhs());
      break;
    case FormulaKind::Exist:
      if (F->lhs() != FF.trueF() && !ExistSeen.count(F)) {
        ExistSeen.emplace(F, true);
        Mixed.push_back(F);
      }
      Queue.push_back(F->lhs());
      break;
    case FormulaKind::Mu:
      Queue.push_back(FF.unfold(F));
      break;
    }
  }

  Lean L;
  auto Add = [&](Formula F) {
    L.Members.push_back(F);
    return static_cast<unsigned>(L.Members.size() - 1);
  };

  // Fixed topological members first: ⟨1⟩⊤ ⟨2⟩⊤ ⟨1̄⟩⊤ ⟨2̄⟩⊤, then s.
  for (int A = 0; A < 4; ++A)
    L.DiamTopIdx[A] =
        Add(FF.diamond(static_cast<Program>(A), FF.trueF()));
  L.StartIdx = Add(FF.start());
  // Then every other member in traversal order.
  if (Order == LeanOrder::Reversed)
    std::reverse(Mixed.begin(), Mixed.end());
  L.OtherSym = internSymbol("#other");
  for (Formula F : Mixed) {
    if (F->is(FormulaKind::Prop)) {
      assert(F->sym() != L.OtherSym && "reserved label #other in a formula");
      L.PropIdx.emplace(F->sym(), Add(F));
      L.PropSyms.push_back(F->sym());
    } else {
      L.ExistIdx.emplace(F, Add(F));
    }
  }
  // The fresh "other name" proposition σx closes the alphabet.
  L.PropIdx.emplace(L.OtherSym, Add(FF.prop(L.OtherSym)));
  L.PropSyms.push_back(L.OtherSym);
  // ⟨a⟩⊤ participate in the exist index too.
  for (int A = 0; A < 4; ++A)
    L.ExistIdx.emplace(L.Members[L.DiamTopIdx[A]], L.DiamTopIdx[A]);
  return L;
}

std::vector<unsigned> Lean::existsOfProgram(Program A) const {
  std::vector<unsigned> R;
  for (unsigned I = 0; I < Members.size(); ++I)
    if (Members[I]->is(FormulaKind::Exist) && Members[I]->program() == A)
      R.push_back(I);
  return R;
}

bool Lean::isValidType(const DynBitset &T) const {
  assert(T.size() == Members.size());
  // Modal consistency: ⟨a⟩φ ∈ t ⇒ ⟨a⟩⊤ ∈ t.
  for (unsigned I = 0; I < Members.size(); ++I) {
    if (!Members[I]->is(FormulaKind::Exist) || !T.test(I))
      continue;
    if (!T.test(DiamTopIdx[static_cast<int>(Members[I]->program())]))
      return false;
  }
  // A node cannot be both a first child and a second child.
  if (T.test(diamTopIndex(Program::ParentInv)) &&
      T.test(diamTopIndex(Program::SiblingInv)))
    return false;
  // Exactly one atomic proposition.
  unsigned NumProps = 0;
  for (Symbol S : PropSyms)
    NumProps += T.test(PropIdx.at(S));
  return NumProps == 1;
}

bool Lean::status(FormulaFactory &FF, Formula F, const DynBitset &T) const {
  switch (F->kind()) {
  case FormulaKind::True:
    return true;
  case FormulaKind::False:
    return false;
  case FormulaKind::Prop: {
    auto It = PropIdx.find(F->sym());
    // A label not in the lean can never be the (single) label of a type.
    return It != PropIdx.end() && T.test(It->second);
  }
  case FormulaKind::NegProp: {
    auto It = PropIdx.find(F->sym());
    return It == PropIdx.end() || !T.test(It->second);
  }
  case FormulaKind::Start:
    return T.test(StartIdx);
  case FormulaKind::NegStart:
    return !T.test(StartIdx);
  case FormulaKind::Var:
    assert(false && "status of an open formula");
    return false;
  case FormulaKind::And:
    return status(FF, F->lhs(), T) && status(FF, F->rhs(), T);
  case FormulaKind::Or:
    return status(FF, F->lhs(), T) || status(FF, F->rhs(), T);
  case FormulaKind::Exist: {
    auto It = ExistIdx.find(F);
    assert(It != ExistIdx.end() && "modal formula outside the lean");
    return T.test(It->second);
  }
  case FormulaKind::NegExistTop:
    return !T.test(DiamTopIdx[static_cast<int>(F->program())]);
  case FormulaKind::Mu:
    return status(FF, FF.unfold(F), T);
  }
  return false;
}

std::string Lean::memberName(FormulaFactory &FF, unsigned I) const {
  return FF.toString(Members[I]);
}

std::string Lean::signature(FormulaFactory &FF) const {
  // Label abstraction: every atomic proposition is replaced by %<n>,
  // where n is its first-occurrence index over the member list. Leans
  // that agree up to an order-preserving relabeling — bench workloads
  // full of same-shaped queries over per-request alphabets are exactly
  // this — then print identical signatures, which is sound because the
  // solver's stage-2 construction (χTypes, the ∆a clauses, the witness
  // conditions) only ever addresses propositions through their lean
  // *index*, never their name: isomorphic leans have literally equal
  // iterate sequences over the shared bit numbering.
  std::unordered_map<Symbol, Symbol> LabelMap;
  std::unordered_map<Formula, Formula> Memo;
  auto MapSym = [&](Symbol S) {
    auto It = LabelMap.find(S);
    if (It != LabelMap.end())
      return It->second;
    Symbol A = internSymbol("%" + std::to_string(LabelMap.size()));
    LabelMap.emplace(S, A);
    return A;
  };
  // Memoization is sound even though abstraction is stateful: the label
  // map only grows, and every symbol inside a memoized node was mapped
  // when that node was first walked.
  auto Abstract = [&](auto &&Self, Formula F) -> Formula {
    auto It = Memo.find(F);
    if (It != Memo.end())
      return It->second;
    Formula R = F;
    switch (F->kind()) {
    case FormulaKind::True:
    case FormulaKind::False:
    case FormulaKind::Start:
    case FormulaKind::NegStart:
    case FormulaKind::NegExistTop:
    case FormulaKind::Var:
      break;
    case FormulaKind::Prop:
      R = FF.prop(MapSym(F->sym()));
      break;
    case FormulaKind::NegProp:
      R = FF.negProp(MapSym(F->sym()));
      break;
    case FormulaKind::And:
      R = FF.conj(Self(Self, F->lhs()), Self(Self, F->rhs()));
      break;
    case FormulaKind::Or:
      R = FF.disj(Self(Self, F->lhs()), Self(Self, F->rhs()));
      break;
    case FormulaKind::Exist:
      R = FF.diamond(F->program(), Self(Self, F->lhs()));
      break;
    case FormulaKind::Mu: {
      std::vector<MuBinding> Bindings;
      Bindings.reserve(F->bindings().size());
      for (const MuBinding &B : F->bindings())
        Bindings.push_back({B.Var, Self(Self, B.Def)});
      R = FF.mu(std::move(Bindings), Self(Self, F->body()));
      break;
    }
    }
    Memo.emplace(F, R);
    return R;
  };
  std::string Sig;
  for (Formula F : Members) {
    std::string Text = FF.toString(FF.canonicalize(Abstract(Abstract, F)));
    Sig += std::to_string(Text.size());
    Sig += ':';
    Sig += Text;
  }
  return Sig;
}
