//===- Parser.cpp - Textual syntax for Lµ ----------------------------------===//

#include "logic/Parser.h"

#include <cctype>

using namespace xsa;

namespace {

class FormulaParser {
public:
  FormulaParser(FormulaFactory &FF, std::string_view In, std::string &Error)
      : FF(FF), In(In), Error(Error) {}

  Formula run() {
    Formula F = parseOr();
    if (!F)
      return nullptr;
    skipWs();
    if (Pos != In.size()) {
      fail("unexpected trailing input");
      return nullptr;
    }
    return F;
  }

private:
  Formula fail(const std::string &Msg) {
    if (Error.empty())
      Error = "parse error at offset " + std::to_string(Pos) + ": " + Msg;
    return nullptr;
  }

  void skipWs() {
    while (Pos < In.size() &&
           std::isspace(static_cast<unsigned char>(In[Pos])))
      ++Pos;
  }

  bool eat(char C) {
    skipWs();
    if (Pos < In.size() && In[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool peekWord(std::string_view W) {
    skipWs();
    if (In.substr(Pos, W.size()) != W)
      return false;
    size_t After = Pos + W.size();
    if (After < In.size() && isNameChar(In[After]))
      return false;
    return true;
  }

  bool eatWord(std::string_view W) {
    if (!peekWord(W))
      return false;
    skipWs();
    Pos += W.size();
    return true;
  }

  static bool isNameStart(char C) {
    return std::isalpha(static_cast<unsigned char>(C)) || C == '_' ||
           C == '#';
  }
  static bool isNameChar(char C) {
    return std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
           C == '-' || C == '.' || C == '#';
  }

  std::string parseName() {
    skipWs();
    if (Pos >= In.size() || !isNameStart(In[Pos]))
      return "";
    size_t Start = Pos;
    ++Pos;
    while (Pos < In.size() && isNameChar(In[Pos]))
      ++Pos;
    return std::string(In.substr(Start, Pos - Start));
  }

  Formula parseOr() {
    Formula L = parseAnd();
    if (!L)
      return nullptr;
    while (eat('|')) {
      Formula R = parseAnd();
      if (!R)
        return nullptr;
      L = FF.disj(L, R);
    }
    return L;
  }

  Formula parseAnd() {
    Formula L = parseUnary();
    if (!L)
      return nullptr;
    while (eat('&')) {
      Formula R = parseUnary();
      if (!R)
        return nullptr;
      L = FF.conj(L, R);
    }
    return L;
  }

  bool parseProgram(Program &P) {
    skipWs();
    bool Converse = false;
    if (Pos < In.size() && In[Pos] == '-') {
      Converse = true;
      ++Pos;
    }
    if (Pos >= In.size() || (In[Pos] != '1' && In[Pos] != '2')) {
      fail("expected modality 1, 2, -1 or -2");
      return false;
    }
    bool IsTwo = In[Pos] == '2';
    ++Pos;
    if (!Converse)
      P = IsTwo ? Program::Sibling : Program::Child;
    else
      P = IsTwo ? Program::SiblingInv : Program::ParentInv;
    return true;
  }

  Formula parseUnary() {
    skipWs();
    if (eat('~')) {
      Formula F = parseUnary();
      if (!F)
        return nullptr;
      if (!FF.isClosed(F))
        return fail("negation of a formula with free variables");
      return FF.negate(F);
    }
    if (eat('<')) {
      Program P;
      if (!parseProgram(P))
        return nullptr;
      if (!eat('>'))
        return fail("expected '>' after modality");
      Formula F = parseUnary();
      if (!F)
        return nullptr;
      return FF.diamond(P, F);
    }
    return parseAtom();
  }

  Formula parseAtom() {
    skipWs();
    if (eat('(')) {
      Formula F = parseOr();
      if (!F)
        return nullptr;
      if (!eat(')'))
        return fail("expected ')'");
      return F;
    }
    if (eat('$')) {
      std::string Name = parseName();
      if (Name.empty())
        return fail("expected variable name after '$'");
      return FF.var(Name);
    }
    if (eatWord("let"))
      return parseLet();
    if (eatWord("mu"))
      return parseMu();
    // Lemma 4.2: least and greatest fixpoints coincide on finite trees
    // for cycle-free formulas, so ν is accepted as a synonym of µ.
    if (eatWord("nu"))
      return parseMu();
    if (peekWord("T")) {
      eatWord("T");
      return FF.trueF();
    }
    if (peekWord("F")) {
      eatWord("F");
      return FF.falseF();
    }
    std::string Name = parseName();
    if (Name.empty())
      return fail("expected a formula");
    if (Name == "#s")
      return FF.start();
    return FF.prop(Name);
  }

  Formula parseLet() {
    std::vector<MuBinding> Bindings;
    for (;;) {
      if (!eat('$'))
        return fail("expected '$' starting a let binding");
      std::string Name = parseName();
      if (Name.empty())
        return fail("expected variable name after '$'");
      if (!eat('='))
        return fail("expected '=' in let binding");
      Formula Def = parseOr();
      if (!Def)
        return nullptr;
      Bindings.push_back({internSymbol(Name), Def});
      if (eat(';'))
        continue;
      break;
    }
    if (!eatWord("in"))
      return fail("expected 'in' after let bindings");
    Formula Body = parseOr();
    if (!Body)
      return nullptr;
    return FF.mu(std::move(Bindings), Body);
  }

  Formula parseMu() {
    if (!eat('$'))
      return fail("expected '$' after 'mu'");
    std::string Name = parseName();
    if (Name.empty())
      return fail("expected variable name after '$'");
    if (!eat('.'))
      return fail("expected '.' after mu variable");
    Formula Def = parseOr();
    if (!Def)
      return nullptr;
    return FF.mu(internSymbol(Name), Def);
  }

  FormulaFactory &FF;
  std::string_view In;
  size_t Pos = 0;
  std::string &Error;
};

} // namespace

Formula xsa::parseFormula(FormulaFactory &FF, std::string_view Input,
                          std::string &Error) {
  Error.clear();
  FormulaParser P(FF, Input, Error);
  return P.run();
}
