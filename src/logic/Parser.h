//===- Parser.h - Textual syntax for Lµ --------------------------*- C++ -*-===//
//
// Part of the xsa project (PLDI 2007 XPath/type analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reader for a textual Lµ syntax modeled on the paper's Figure 14
/// output format:
///
///   φ ::= T | F | name | ~φ | #s | $X
///       | φ & φ | φ | φ | <1>φ | <2>φ | <-1>φ | <-2>φ | (φ)
///       | let $X = φ; ... in φ         n-ary least fixpoint
///       | mu $X . φ                    sugar for let $X = φ in φ
///
/// `~` is general negation, resolved at parse time through the dualities
/// of §4 (the parsed formula is in negation normal form); it can only be
/// applied to closed subformulas.
///
//===----------------------------------------------------------------------===//

#ifndef XSA_LOGIC_PARSER_H
#define XSA_LOGIC_PARSER_H

#include "logic/Formula.h"

#include <string>
#include <string_view>

namespace xsa {

/// Parses \p Input; returns nullptr and fills \p Error on failure.
Formula parseFormula(FormulaFactory &FF, std::string_view Input,
                     std::string &Error);

} // namespace xsa

#endif // XSA_LOGIC_PARSER_H
