//===- Eval.cpp - Direct semantics of Lµ on finite trees -------------------===//

#include "logic/Eval.h"

#include <cassert>
#include <unordered_map>

using namespace xsa;

namespace {

class Evaluator {
public:
  Evaluator(const Document &Doc, FormulaFactory &FF, FixpointSemantics Sem)
      : Doc(Doc), FF(FF), Sem(Sem), N(Doc.size()) {}

  DynBitset eval(Formula F) {
    switch (F->kind()) {
    case FormulaKind::True:
      return all();
    case FormulaKind::False:
      return none();
    case FormulaKind::Prop: {
      DynBitset R = none();
      for (size_t I = 0; I < N; ++I)
        if (Doc.label(static_cast<NodeId>(I)) == F->sym())
          R.set(I);
      return R;
    }
    case FormulaKind::NegProp: {
      DynBitset R = none();
      for (size_t I = 0; I < N; ++I)
        if (Doc.label(static_cast<NodeId>(I)) != F->sym())
          R.set(I);
      return R;
    }
    case FormulaKind::Start: {
      DynBitset R = none();
      if (Doc.markedNode() != InvalidNodeId)
        R.set(Doc.markedNode());
      return R;
    }
    case FormulaKind::NegStart: {
      DynBitset R = all();
      if (Doc.markedNode() != InvalidNodeId)
        R.reset(Doc.markedNode());
      return R;
    }
    case FormulaKind::Var: {
      auto It = Env.find(F->sym());
      assert(It != Env.end() && "unbound recursion variable");
      return It->second;
    }
    case FormulaKind::And:
      return eval(F->lhs()) & eval(F->rhs());
    case FormulaKind::Or:
      return eval(F->lhs()) | eval(F->rhs());
    case FormulaKind::Exist: {
      // n ⊨ ⟨a⟩φ iff n⟨a⟩ is defined and satisfies φ.
      DynBitset Sub = eval(F->lhs());
      DynBitset R = none();
      int A = static_cast<int>(F->program());
      for (size_t I = 0; I < N; ++I) {
        NodeId Target = Doc.follow(static_cast<NodeId>(I), A);
        if (Target != InvalidNodeId && Sub.test(Target))
          R.set(I);
      }
      return R;
    }
    case FormulaKind::NegExistTop: {
      DynBitset R = none();
      int A = static_cast<int>(F->program());
      for (size_t I = 0; I < N; ++I)
        if (Doc.follow(static_cast<NodeId>(I), A) == InvalidNodeId)
          R.set(I);
      return R;
    }
    case FormulaKind::Mu: {
      // Simultaneous n-ary fixpoint: Kleene iteration from ∅ (µ) or from
      // the full node set (ν); finite lattice, so it terminates.
      std::vector<std::pair<Symbol, DynBitset>> Saved;
      for (const MuBinding &B : F->bindings()) {
        auto It = Env.find(B.Var);
        if (It != Env.end())
          Saved.push_back({B.Var, It->second});
        Env[B.Var] =
            Sem == FixpointSemantics::Least ? none() : all();
      }
      for (;;) {
        bool Changed = false;
        for (const MuBinding &B : F->bindings()) {
          DynBitset New = eval(B.Def);
          if (New != Env[B.Var]) {
            Env[B.Var] = std::move(New);
            Changed = true;
          }
        }
        if (!Changed)
          break;
      }
      DynBitset R = eval(F->body());
      for (const MuBinding &B : F->bindings())
        Env.erase(B.Var);
      for (auto &[S, V] : Saved)
        Env[S] = std::move(V);
      return R;
    }
    }
    return none();
  }

private:
  DynBitset all() {
    DynBitset R(N);
    for (size_t I = 0; I < N; ++I)
      R.set(I);
    return R;
  }
  DynBitset none() { return DynBitset(N); }

  const Document &Doc;
  [[maybe_unused]] FormulaFactory &FF;
  FixpointSemantics Sem;
  size_t N;
  std::unordered_map<Symbol, DynBitset> Env;
};

} // namespace

DynBitset xsa::evalFormula(const Document &Doc, FormulaFactory &FF, Formula F,
                           FixpointSemantics Sem) {
  Evaluator E(Doc, FF, Sem);
  return E.eval(F);
}

bool xsa::evalFormulaAt(const Document &Doc, FormulaFactory &FF, Formula F,
                        NodeId N, FixpointSemantics Sem) {
  return evalFormula(Doc, FF, F, Sem).test(N);
}
