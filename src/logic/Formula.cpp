//===- Formula.cpp - Lµ formula construction and transformation -----------===//

#include "logic/Formula.h"

#include <cassert>
#include <sstream>

using namespace xsa;

const char *xsa::programName(Program P) {
  switch (P) {
  case Program::Child:
    return "1";
  case Program::Sibling:
    return "2";
  case Program::ParentInv:
    return "-1";
  case Program::SiblingInv:
    return "-2";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Hash consing
//===----------------------------------------------------------------------===//

static size_t hashCombine(size_t H, size_t V) {
  return H ^ (V + 0x9e3779b97f4a7c15ull + (H << 6) + (H >> 2));
}

static size_t computeHash(const FormulaNode &N) {
  size_t H = static_cast<size_t>(N.kind());
  H = hashCombine(H, static_cast<size_t>(N.program()));
  H = hashCombine(H, N.sym());
  H = hashCombine(H, reinterpret_cast<size_t>(N.lhs()));
  H = hashCombine(H, reinterpret_cast<size_t>(N.rhs()));
  for (const MuBinding &B : N.bindings()) {
    H = hashCombine(H, B.Var);
    H = hashCombine(H, reinterpret_cast<size_t>(B.Def));
  }
  H = hashCombine(H, reinterpret_cast<size_t>(N.body()));
  return H;
}

bool FormulaFactory::NodeEq::operator()(const FormulaNode *A,
                                        const FormulaNode *B) const {
  return A->kind() == B->kind() && A->program() == B->program() &&
         A->sym() == B->sym() && A->lhs() == B->lhs() && A->rhs() == B->rhs() &&
         A->bindings() == B->bindings() && A->body() == B->body();
}

FormulaFactory::FormulaFactory() {
  FormulaNode T;
  T.Kind = FormulaKind::True;
  TrueF = intern(std::move(T));
  FormulaNode F;
  F.Kind = FormulaKind::False;
  FalseF = intern(std::move(F));
  FormulaNode S;
  S.Kind = FormulaKind::Start;
  StartF = intern(std::move(S));
  FormulaNode NS;
  NS.Kind = FormulaKind::NegStart;
  NegStartF = intern(std::move(NS));
}

Formula FormulaFactory::intern(FormulaNode &&N) {
  // Compute size.
  unsigned Size = 1;
  if (N.Lhs)
    Size += N.Lhs->size();
  if (N.Rhs)
    Size += N.Rhs->size();
  for (const MuBinding &B : N.Bindings)
    Size += B.Def->size();
  if (N.Body)
    Size += N.Body->size();
  N.Size = Size;
  N.HashValue = computeHash(N);
  auto It = Unique.find(&N);
  if (It != Unique.end())
    return *It;
  N.Id = static_cast<unsigned>(Arena.size());
  Arena.push_back(std::make_unique<FormulaNode>(std::move(N)));
  Formula Result = Arena.back().get();
  Unique.insert(Result);
  return Result;
}

Formula FormulaFactory::prop(Symbol S) {
  FormulaNode N;
  N.Kind = FormulaKind::Prop;
  N.Sym = S;
  return intern(std::move(N));
}

Formula FormulaFactory::negProp(Symbol S) {
  FormulaNode N;
  N.Kind = FormulaKind::NegProp;
  N.Sym = S;
  return intern(std::move(N));
}

Formula FormulaFactory::var(Symbol S) {
  FormulaNode N;
  N.Kind = FormulaKind::Var;
  N.Sym = S;
  return intern(std::move(N));
}

Formula FormulaFactory::conj(Formula A, Formula B) {
  assert(A && B);
  if (A == TrueF)
    return B;
  if (B == TrueF)
    return A;
  if (A == FalseF || B == FalseF)
    return FalseF;
  if (A == B)
    return A;
  FormulaNode N;
  N.Kind = FormulaKind::And;
  N.Lhs = A;
  N.Rhs = B;
  return intern(std::move(N));
}

Formula FormulaFactory::disj(Formula A, Formula B) {
  assert(A && B);
  if (A == FalseF)
    return B;
  if (B == FalseF)
    return A;
  if (A == TrueF || B == TrueF)
    return TrueF;
  if (A == B)
    return A;
  FormulaNode N;
  N.Kind = FormulaKind::Or;
  N.Lhs = A;
  N.Rhs = B;
  return intern(std::move(N));
}

Formula FormulaFactory::conj(const std::vector<Formula> &Fs) {
  Formula R = TrueF;
  for (Formula F : Fs)
    R = conj(R, F);
  return R;
}

Formula FormulaFactory::disj(const std::vector<Formula> &Fs) {
  Formula R = FalseF;
  for (Formula F : Fs)
    R = disj(R, F);
  return R;
}

Formula FormulaFactory::diamond(Program A, Formula F) {
  assert(F);
  if (F == FalseF)
    return FalseF; // ⟨a⟩⊥ has no witness
  FormulaNode N;
  N.Kind = FormulaKind::Exist;
  N.Prog = A;
  N.Lhs = F;
  return intern(std::move(N));
}

Formula FormulaFactory::negDiamondTop(Program A) {
  FormulaNode N;
  N.Kind = FormulaKind::NegExistTop;
  N.Prog = A;
  return intern(std::move(N));
}

Formula FormulaFactory::mu(std::vector<MuBinding> Bindings, Formula Body) {
  assert(!Bindings.empty() && "fixpoint needs at least one binding");
  FormulaNode N;
  N.Kind = FormulaKind::Mu;
  N.Bindings = std::move(Bindings);
  N.Body = Body;
  return intern(std::move(N));
}

Formula FormulaFactory::mu(Symbol Var, Formula Def) {
  // §4 defines µX.φ as µX = φ in φ; we use the equivalent µX = φ in X,
  // which unfolds identically but keeps the syntactic size linear under
  // nesting (Prop 5.1(3) counts tree size).
  return mu({{Var, Def}}, var(Var));
}

Symbol FormulaFactory::freshVar(std::string_view Prefix) {
  std::string Name = std::string(Prefix) + std::to_string(++FreshCounter);
  return internSymbol(Name);
}

//===----------------------------------------------------------------------===//
// Negation (§4 dualities; valid on finite trees by Lemma 4.2)
//===----------------------------------------------------------------------===//

Formula FormulaFactory::negate(Formula F) {
  std::unordered_set<Symbol> Flipped;
  std::unordered_map<Formula, Formula> Memo;
  return negateRec(F, Flipped, Memo);
}

Formula FormulaFactory::negateRec(Formula F,
                                  std::unordered_set<Symbol> &FlippedVars,
                                  std::unordered_map<Formula, Formula> &Memo) {
  auto It = Memo.find(F);
  if (It != Memo.end())
    return It->second;
  Formula R = nullptr;
  switch (F->kind()) {
  case FormulaKind::True:
    R = FalseF;
    break;
  case FormulaKind::False:
    R = TrueF;
    break;
  case FormulaKind::Prop:
    R = negProp(F->sym());
    break;
  case FormulaKind::NegProp:
    R = prop(F->sym());
    break;
  case FormulaKind::Start:
    R = NegStartF;
    break;
  case FormulaKind::NegStart:
    R = StartF;
    break;
  case FormulaKind::Var:
    // ¬µX̄=φ̄ in ψ = µX̄ = ¬φ̄{X̄/¬X̄} in ¬ψ{X̄/¬X̄}: under the flipped
    // binder, the new variable stands for the negation of the old one.
    assert(FlippedVars.count(F->sym()) &&
           "negation of a free recursion variable");
    R = F;
    break;
  case FormulaKind::And:
    R = disj(negateRec(F->lhs(), FlippedVars, Memo),
             negateRec(F->rhs(), FlippedVars, Memo));
    break;
  case FormulaKind::Or:
    R = conj(negateRec(F->lhs(), FlippedVars, Memo),
             negateRec(F->rhs(), FlippedVars, Memo));
    break;
  case FormulaKind::Exist:
    // ¬⟨a⟩φ = ¬⟨a⟩⊤ ∨ ⟨a⟩¬φ.
    R = disj(negDiamondTop(F->program()),
             diamond(F->program(), negateRec(F->lhs(), FlippedVars, Memo)));
    break;
  case FormulaKind::NegExistTop:
    R = diamond(F->program(), TrueF);
    break;
  case FormulaKind::Mu: {
    std::vector<Symbol> Added;
    for (const MuBinding &B : F->bindings())
      if (FlippedVars.insert(B.Var).second)
        Added.push_back(B.Var);
    std::vector<MuBinding> NewBindings;
    NewBindings.reserve(F->bindings().size());
    for (const MuBinding &B : F->bindings())
      NewBindings.push_back({B.Var, negateRec(B.Def, FlippedVars, Memo)});
    Formula NewBody = negateRec(F->body(), FlippedVars, Memo);
    for (Symbol S : Added)
      FlippedVars.erase(S);
    R = mu(std::move(NewBindings), NewBody);
    break;
  }
  }
  Memo.emplace(F, R);
  return R;
}

//===----------------------------------------------------------------------===//
// Substitution and unfolding
//===----------------------------------------------------------------------===//

Formula FormulaFactory::substitute(
    Formula F, const std::unordered_map<Symbol, Formula> &Map) {
  if (Map.empty())
    return F;
  std::unordered_map<Formula, Formula> Memo;
  return substituteRec(F, Map, Memo);
}

Formula FormulaFactory::substituteRec(
    Formula F, const std::unordered_map<Symbol, Formula> &Map,
    std::unordered_map<Formula, Formula> &Memo) {
  auto It = Memo.find(F);
  if (It != Memo.end())
    return It->second;
  Formula R = F;
  switch (F->kind()) {
  case FormulaKind::True:
  case FormulaKind::False:
  case FormulaKind::Prop:
  case FormulaKind::NegProp:
  case FormulaKind::Start:
  case FormulaKind::NegStart:
  case FormulaKind::NegExistTop:
    break;
  case FormulaKind::Var: {
    auto MI = Map.find(F->sym());
    if (MI != Map.end())
      R = MI->second;
    break;
  }
  case FormulaKind::And:
    R = conj(substituteRec(F->lhs(), Map, Memo),
             substituteRec(F->rhs(), Map, Memo));
    break;
  case FormulaKind::Or:
    R = disj(substituteRec(F->lhs(), Map, Memo),
             substituteRec(F->rhs(), Map, Memo));
    break;
  case FormulaKind::Exist:
    R = diamond(F->program(), substituteRec(F->lhs(), Map, Memo));
    break;
  case FormulaKind::Mu: {
    // Binders shadow: drop re-bound variables from the substitution.
    bool Shadows = false;
    for (const MuBinding &B : F->bindings())
      if (Map.count(B.Var)) {
        Shadows = true;
        break;
      }
    if (Shadows) {
      std::unordered_map<Symbol, Formula> Reduced(Map);
      for (const MuBinding &B : F->bindings())
        Reduced.erase(B.Var);
      R = substitute(F, Reduced); // fresh memo: different environment
      break;
    }
    std::vector<MuBinding> NewBindings;
    NewBindings.reserve(F->bindings().size());
    bool Changed = false;
    for (const MuBinding &B : F->bindings()) {
      Formula D = substituteRec(B.Def, Map, Memo);
      Changed |= D != B.Def;
      NewBindings.push_back({B.Var, D});
    }
    Formula NewBody = substituteRec(F->body(), Map, Memo);
    Changed |= NewBody != F->body();
    if (Changed)
      R = mu(std::move(NewBindings), NewBody);
    break;
  }
  }
  Memo.emplace(F, R);
  return R;
}

Formula FormulaFactory::unfold(Formula MuF) {
  assert(MuF->is(FormulaKind::Mu) && "unfold expects a fixpoint formula");
  auto It = UnfoldMemo.find(MuF);
  if (It != UnfoldMemo.end())
    return It->second;
  // Each bound variable maps to its projection µX̄ = φ̄ in Xk.
  std::unordered_map<Symbol, Formula> Map;
  for (const MuBinding &B : MuF->bindings()) {
    std::vector<MuBinding> Bs(MuF->bindings());
    Map.emplace(B.Var, mu(std::move(Bs), var(B.Var)));
  }
  Formula Target = MuF->body();
  if (Target->is(FormulaKind::Var)) {
    // A projection: step through the binding (one Kleene iteration) so
    // that the expansion makes progress for guarded formulas.
    for (const MuBinding &B : MuF->bindings())
      if (B.Var == Target->sym()) {
        Target = B.Def;
        break;
      }
  }
  Formula R = substitute(Target, Map);
  UnfoldMemo.emplace(MuF, R);
  return R;
}

std::unordered_set<Symbol> FormulaFactory::freeVars(Formula F) {
  std::unordered_set<Symbol> Free;
  std::vector<Symbol> BoundStack;
  // Recursive lambda over the DAG; no memo (bound context varies), fine
  // for the formula sizes we build.
  auto Rec = [&](auto &&Self, Formula G) -> void {
    switch (G->kind()) {
    case FormulaKind::Var:
      for (Symbol S : BoundStack)
        if (S == G->sym())
          return;
      Free.insert(G->sym());
      return;
    case FormulaKind::And:
    case FormulaKind::Or:
      Self(Self, G->lhs());
      Self(Self, G->rhs());
      return;
    case FormulaKind::Exist:
      Self(Self, G->lhs());
      return;
    case FormulaKind::Mu: {
      size_t Before = BoundStack.size();
      for (const MuBinding &B : G->bindings())
        BoundStack.push_back(B.Var);
      for (const MuBinding &B : G->bindings())
        Self(Self, B.Def);
      Self(Self, G->body());
      BoundStack.resize(Before);
      return;
    }
    default:
      return;
    }
  };
  Rec(Rec, F);
  return Free;
}

//===----------------------------------------------------------------------===//
// Canonicalization (α-renaming of bound variables)
//===----------------------------------------------------------------------===//

Formula FormulaFactory::canonicalize(Formula F) {
  // The top-level entry always runs under the empty environment, so a
  // factory-wide memo is sound here (free variables map to themselves).
  auto It = CanonMemo.find(F);
  if (It != CanonMemo.end())
    return It->second;
  std::unordered_map<Symbol, Symbol> Env;
  std::unordered_map<Formula, Formula> Memo;
  Formula R = canonRec(F, 0, Env, Memo);
  CanonMemo.emplace(F, R);
  return R;
}

Formula FormulaFactory::canonRec(
    Formula F, unsigned Depth, const std::unordered_map<Symbol, Symbol> &Env,
    std::unordered_map<Formula, Formula> &Memo) {
  // Like substituteRec, the memo is only valid while the environment is
  // unchanged; entering a µ switches to a fresh memo for its subtree.
  auto It = Memo.find(F);
  if (It != Memo.end())
    return It->second;
  Formula R = F;
  switch (F->kind()) {
  case FormulaKind::True:
  case FormulaKind::False:
  case FormulaKind::Prop:
  case FormulaKind::NegProp:
  case FormulaKind::Start:
  case FormulaKind::NegStart:
  case FormulaKind::NegExistTop:
    break;
  case FormulaKind::Var: {
    auto MI = Env.find(F->sym());
    if (MI != Env.end())
      R = var(MI->second);
    break;
  }
  case FormulaKind::And:
    R = conj(canonRec(F->lhs(), Depth, Env, Memo),
             canonRec(F->rhs(), Depth, Env, Memo));
    break;
  case FormulaKind::Or:
    R = disj(canonRec(F->lhs(), Depth, Env, Memo),
             canonRec(F->rhs(), Depth, Env, Memo));
    break;
  case FormulaKind::Exist:
    R = diamond(F->program(), canonRec(F->lhs(), Depth, Env, Memo));
    break;
  case FormulaKind::Mu: {
    // A binder's canonical name is a function of its position only: the
    // nesting depth of enclosing µs and the index within this µ's
    // binding vector. Nested binders differ in depth, sibling µs in
    // disjoint scopes may share names harmlessly.
    std::unordered_map<Symbol, Symbol> NewEnv(Env);
    std::vector<Symbol> Canon;
    Canon.reserve(F->bindings().size());
    for (size_t I = 0; I < F->bindings().size(); ++I) {
      // '%' cannot occur in a parsed identifier, so canonical names can
      // never capture a free variable of the input.
      Symbol C = internSymbol("%c" + std::to_string(Depth) + "_" +
                              std::to_string(I));
      Canon.push_back(C);
      NewEnv[F->bindings()[I].Var] = C;
    }
    std::unordered_map<Formula, Formula> SubMemo;
    std::vector<MuBinding> NewBindings;
    NewBindings.reserve(F->bindings().size());
    for (size_t I = 0; I < F->bindings().size(); ++I)
      NewBindings.push_back(
          {Canon[I], canonRec(F->bindings()[I].Def, Depth + 1, NewEnv, SubMemo)});
    Formula NewBody = canonRec(F->body(), Depth + 1, NewEnv, SubMemo);
    R = mu(std::move(NewBindings), NewBody);
    break;
  }
  }
  Memo.emplace(F, R);
  return R;
}

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

namespace {

// Precedence levels: Or = 1, And = 2, unary/atomic = 3.
void print(Formula F, int Parent, std::ostringstream &OS) {
  switch (F->kind()) {
  case FormulaKind::True:
    OS << "T";
    return;
  case FormulaKind::False:
    OS << "F";
    return;
  case FormulaKind::Prop:
    OS << symbolName(F->sym());
    return;
  case FormulaKind::NegProp:
    OS << "~" << symbolName(F->sym());
    return;
  case FormulaKind::Start:
    OS << "#s";
    return;
  case FormulaKind::NegStart:
    OS << "~#s";
    return;
  case FormulaKind::Var:
    OS << "$" << symbolName(F->sym());
    return;
  case FormulaKind::And: {
    if (Parent > 2)
      OS << "(";
    print(F->lhs(), 2, OS);
    OS << " & ";
    print(F->rhs(), 2, OS);
    if (Parent > 2)
      OS << ")";
    return;
  }
  case FormulaKind::Or: {
    if (Parent > 1)
      OS << "(";
    print(F->lhs(), 1, OS);
    OS << " | ";
    print(F->rhs(), 1, OS);
    if (Parent > 1)
      OS << ")";
    return;
  }
  case FormulaKind::Exist:
    OS << "<" << programName(F->program()) << ">";
    print(F->lhs(), 3, OS);
    return;
  case FormulaKind::NegExistTop:
    OS << "~<" << programName(F->program()) << ">T";
    return;
  case FormulaKind::Mu: {
    if (Parent > 0)
      OS << "(";
    OS << "let ";
    bool First = true;
    for (const MuBinding &B : F->bindings()) {
      if (!First)
        OS << "; ";
      First = false;
      OS << "$" << symbolName(B.Var) << " = ";
      print(B.Def, 0, OS);
    }
    OS << " in ";
    print(F->body(), 0, OS);
    if (Parent > 0)
      OS << ")";
    return;
  }
  }
}

} // namespace

std::string FormulaFactory::toString(Formula F) {
  std::ostringstream OS;
  print(F, 0, OS);
  return OS.str();
}
