//===- Formula.h - The logic Lµ (§4 of the paper) ----------------*- C++ -*-===//
//
// Part of the xsa project (PLDI 2007 XPath/type analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The logic Lµ: an alternation-free modal µ-calculus with converse,
/// restricted to cycle-free formulas and interpreted over finite focused
/// trees (Figure 1 of the paper):
///
///   φ, ψ ::= ⊤ | σ | ¬σ | s | ¬s | X | φ∨ψ | φ∧ψ
///          | ⟨a⟩φ | ¬⟨a⟩⊤ | µXi = φi in ψ        a ∈ {1, 2, 1̄, 2̄}
///
/// Because least and greatest fixpoints collapse on finite trees for
/// cycle-free formulas (Lemma 4.2), only the n-ary least fixpoint is
/// represented; negation is the syntactic dual of §4 (De Morgan extended to
/// eventualities and fixpoints), so the logic is closed under negation and
/// every formula is kept in negation normal form. An explicit ⊥ is provided
/// for convenience (the paper encodes it as σ∧¬σ).
///
/// Formulas are immutable hash-consed DAG nodes owned by a FormulaFactory;
/// pointer equality is semantic-syntactic equality modulo the factory's
/// smart constructors.
///
//===----------------------------------------------------------------------===//

#ifndef XSA_LOGIC_FORMULA_H
#define XSA_LOGIC_FORMULA_H

#include "support/StringInterner.h"

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace xsa {

/// The four navigation programs, numbered to match Document::follow and
/// FocusedTree::follow.
enum class Program : uint8_t {
  Child = 0,       ///< ⟨1⟩ first child
  Sibling = 1,     ///< ⟨2⟩ next sibling
  ParentInv = 2,   ///< ⟨1̄⟩ parent (from a leftmost sibling)
  SiblingInv = 3,  ///< ⟨2̄⟩ previous sibling
};

/// ā: the converse program (1↔1̄, 2↔2̄).
inline Program converse(Program P) {
  return static_cast<Program>((static_cast<uint8_t>(P) + 2) & 3);
}

/// Printable name of a program: "1", "2", "-1", "-2".
const char *programName(Program P);

enum class FormulaKind : uint8_t {
  True,
  False,
  Prop,        ///< σ
  NegProp,     ///< ¬σ
  Start,       ///< s (the start mark)
  NegStart,    ///< ¬s
  Var,         ///< recursion variable X
  And,
  Or,
  Exist,       ///< ⟨a⟩φ
  NegExistTop, ///< ¬⟨a⟩⊤
  Mu,          ///< µ X̄ = φ̄ in ψ (n-ary least fixpoint)
};

class FormulaNode;
/// Formulas are passed as raw pointers into the owning factory's arena.
using Formula = const FormulaNode *;

/// One binding Xi = φi of an n-ary fixpoint.
struct MuBinding {
  Symbol Var;
  Formula Def;
  bool operator==(const MuBinding &O) const {
    return Var == O.Var && Def == O.Def;
  }
};

/// An immutable hash-consed formula node.
class FormulaNode {
public:
  FormulaKind kind() const { return Kind; }
  bool is(FormulaKind K) const { return Kind == K; }

  /// Label of a Prop/NegProp, or name of a Var.
  Symbol sym() const { return Sym; }

  /// Program of an Exist/NegExistTop.
  Program program() const { return Prog; }

  /// Left operand of And/Or; child of Exist.
  Formula lhs() const { return Lhs; }
  /// Right operand of And/Or.
  Formula rhs() const { return Rhs; }

  /// Bindings and body of a Mu.
  const std::vector<MuBinding> &bindings() const { return Bindings; }
  Formula body() const { return Body; }

  /// Dense id within the owning factory (stable for maps/sorting).
  unsigned id() const { return Id; }

  /// Syntactic size (number of AST nodes; Mu counts bindings + body).
  unsigned size() const { return Size; }

  size_t hash() const { return HashValue; }

private:
  friend class FormulaFactory;

  FormulaKind Kind = FormulaKind::True;
  Program Prog = Program::Child;
  Symbol Sym = 0;
  Formula Lhs = nullptr;
  Formula Rhs = nullptr;
  std::vector<MuBinding> Bindings;
  Formula Body = nullptr;
  unsigned Id = 0;
  unsigned Size = 1;
  size_t HashValue = 0;
};

/// Creates, interns and transforms formulas. All formulas returned by a
/// factory live as long as the factory.
class FormulaFactory {
public:
  FormulaFactory();
  FormulaFactory(const FormulaFactory &) = delete;
  FormulaFactory &operator=(const FormulaFactory &) = delete;

  Formula trueF() { return TrueF; }
  Formula falseF() { return FalseF; }
  Formula prop(Symbol S);
  Formula prop(std::string_view S) { return prop(internSymbol(S)); }
  Formula negProp(Symbol S);
  Formula negProp(std::string_view S) { return negProp(internSymbol(S)); }
  Formula start() { return StartF; }
  Formula negStart() { return NegStartF; }
  Formula var(Symbol S);
  Formula var(std::string_view S) { return var(internSymbol(S)); }

  /// φ∧ψ with unit/absorbing/idempotence simplification.
  Formula conj(Formula A, Formula B);
  /// φ∨ψ with unit/absorbing/idempotence simplification.
  Formula disj(Formula A, Formula B);
  /// n-ary helpers (⊤ for empty conjunction, ⊥ for empty disjunction).
  Formula conj(const std::vector<Formula> &Fs);
  Formula disj(const std::vector<Formula> &Fs);

  /// ⟨a⟩φ (⊥ child collapses to ⊥).
  Formula diamond(Program A, Formula F);
  /// ¬⟨a⟩⊤.
  Formula negDiamondTop(Program A);

  /// µ X̄ = φ̄ in ψ.
  Formula mu(std::vector<MuBinding> Bindings, Formula Body);
  /// Unary sugar: µX.φ, i.e. µX = φ in φ (§4).
  Formula mu(Symbol Var, Formula Def);

  /// A fresh recursion variable with the given prefix (X -> $X17).
  Symbol freshVar(std::string_view Prefix = "X");

  /// Negation by the dualities of §4; the result is in NNF. Only valid
  /// for cycle-free formulas on finite trees (fixpoint collapse).
  Formula negate(Formula F);

  /// Capture-avoiding substitution of variables (binders shadow).
  Formula substitute(Formula F,
                     const std::unordered_map<Symbol, Formula> &Map);

  /// exp(µ X̄ = φ̄ in ψ): replaces each Xk of the body by the projection
  /// µ X̄ = φ̄ in Xk. When the body is itself a bound variable Xj the
  /// unfolding steps through the binding φj (one Kleene step), which keeps
  /// the relation of Fig. 15 terminating for guarded (cycle-free) formulas.
  Formula unfold(Formula Mu);

  /// Free recursion variables of \p F.
  std::unordered_set<Symbol> freeVars(Formula F);
  bool isClosed(Formula F) { return freeVars(F).empty(); }

  /// α-renames every bound recursion variable to a canonical name derived
  /// from its binding position (depth of the enclosing µ and index within
  /// its binding vector), so two formulas that differ only in the names
  /// chosen by freshVar intern to the same node:
  ///
  ///   canonicalize(φ) == canonicalize(ψ)  ⇔  φ ≡α ψ
  ///
  /// (up to the semantics-preserving simplifications of the smart
  /// constructors, which can only merge equivalent formulas). This is the
  /// key for semantic result caching: repeated compilations of the same
  /// XPath/type query produce α-variants (fresh µ-variables each time),
  /// and all of them canonicalize to one representative.
  Formula canonicalize(Formula F);

  /// Hash of the canonical representative; equal for α-equivalent
  /// formulas. Use canonicalize() itself as a map key for exactness.
  size_t canonicalHash(Formula F) { return canonicalize(F)->hash(); }

  /// Pretty-prints in the textual syntax understood by parseFormula.
  std::string toString(Formula F);

  /// Number of distinct nodes created so far.
  size_t numNodes() const { return Arena.size(); }

private:
  Formula intern(FormulaNode &&N);
  Formula negateRec(Formula F,
                    std::unordered_set<Symbol> &FlippedVars,
                    std::unordered_map<Formula, Formula> &Memo);
  Formula substituteRec(Formula F,
                        const std::unordered_map<Symbol, Formula> &Map,
                        std::unordered_map<Formula, Formula> &Memo);
  Formula canonRec(Formula F, unsigned Depth,
                   const std::unordered_map<Symbol, Symbol> &Env,
                   std::unordered_map<Formula, Formula> &Memo);

  struct NodeHash {
    size_t operator()(const FormulaNode *N) const { return N->hash(); }
  };
  struct NodeEq {
    bool operator()(const FormulaNode *A, const FormulaNode *B) const;
  };

  std::vector<std::unique_ptr<FormulaNode>> Arena;
  std::unordered_set<const FormulaNode *, NodeHash, NodeEq> Unique;
  std::unordered_map<Formula, Formula> UnfoldMemo;
  std::unordered_map<Formula, Formula> CanonMemo;
  unsigned FreshCounter = 0;

  Formula TrueF = nullptr;
  Formula FalseF = nullptr;
  Formula StartF = nullptr;
  Formula NegStartF = nullptr;
};

} // namespace xsa

#endif // XSA_LOGIC_FORMULA_H
