//===- CycleFree.h - Cycle-free formula check (Fig. 3) -----------*- C++ -*-===//
//
// Part of the xsa project (PLDI 2007 XPath/type analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implements the inductive relation ∆ ‖ Γ ⊢ᴿᵢ φ of Figure 3, which decides
/// whether a formula is *cycle free*: every path of modalities in every
/// unfolding has a bounded number of modality cycles ⟨a⟩⟨ā⟩. Cycle-freeness
/// is the syntactic restriction under which least and greatest fixpoints
/// collapse on finite trees (Lemma 4.2), making the logic closed under
/// negation; the satisfiability algorithm requires it.
///
//===----------------------------------------------------------------------===//

#ifndef XSA_LOGIC_CYCLEFREE_H
#define XSA_LOGIC_CYCLEFREE_H

#include "logic/Formula.h"

namespace xsa {

/// Returns true iff \p F is cycle free. Polynomial-time: summarizes each
/// fixpoint binding's paths to recursion-variable occurrences as edges of
/// a graph (first modality, last modality, internal-converse-pair flag)
/// and rejects exactly when some cyclic walk contains a converse pair —
/// within an edge, or where two consecutive edges meet — or is entirely
/// modality-free (unguarded recursion). \p F must be closed.
bool isCycleFree(Formula F);

/// The literal inductive judgement of Figure 3 (with the per-variable
/// expansion reset and wrap-around check the examples of §4 require).
/// Exponential on dense recursion graphs — kept as the paper-faithful
/// reference and cross-checked against isCycleFree in the tests.
bool isCycleFreeFig3(Formula F);

} // namespace xsa

#endif // XSA_LOGIC_CYCLEFREE_H
