//===- Eval.h - Direct semantics of Lµ on finite trees -----------*- C++ -*-===//
//
// Part of the xsa project (PLDI 2007 XPath/type analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A direct (non-symbolic) evaluator of Lµ formulas over a concrete
/// Document, computing the set of nodes whose focused tree belongs to the
/// interpretation of Figure 2. The document's mark plays the role of the
/// start mark s.
///
/// This evaluator is *not* the decision procedure — it checks one finite
/// tree. It serves as the semantic ground truth for testing: translation
/// correctness (Prop 5.1), solver soundness (extracted models must satisfy
/// the formula), negation, and the least/greatest fixpoint collapse of
/// Lemma 4.2 (both semantics are implemented).
///
//===----------------------------------------------------------------------===//

#ifndef XSA_LOGIC_EVAL_H
#define XSA_LOGIC_EVAL_H

#include "logic/Formula.h"
#include "support/DynBitset.h"
#include "tree/Document.h"

namespace xsa {

enum class FixpointSemantics {
  Least,    ///< µ: iterate from ∅ (the logic's official semantics)
  Greatest, ///< ν: iterate from all nodes (for Lemma 4.2 tests)
};

/// Returns the bit set of nodes of \p Doc at which the closed formula
/// \p F holds.
DynBitset evalFormula(const Document &Doc, FormulaFactory &FF, Formula F,
                      FixpointSemantics Sem = FixpointSemantics::Least);

/// Convenience: does \p F hold at node \p N of \p Doc?
bool evalFormulaAt(const Document &Doc, FormulaFactory &FF, Formula F,
                   NodeId N, FixpointSemantics Sem = FixpointSemantics::Least);

} // namespace xsa

#endif // XSA_LOGIC_EVAL_H
