//===- KeyEncoding.h - Injective string-key framing --------------*- C++ -*-===//
//
// Part of the xsa project (PLDI 2007 XPath/type analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Length-prefixed framing for compound map keys built from untrusted
/// text. `len:bytes` frames are uniquely decodable, so a concatenation
/// of framed fields is injective for arbitrary field bytes — no
/// reserved separator that input could smuggle in. Used by the batch
/// dedup signature, the optimize memo, and the rewriter's tried-set;
/// every compound text key should go through here so the injectivity
/// argument lives in one place.
///
//===----------------------------------------------------------------------===//

#ifndef XSA_SUPPORT_KEYENCODING_H
#define XSA_SUPPORT_KEYENCODING_H

#include <string>

namespace xsa {

inline void appendLengthPrefixed(std::string &Out, const std::string &Field) {
  Out += std::to_string(Field.size());
  Out += ':';
  Out += Field;
}

inline std::string lengthPrefixedKey(const std::string &A,
                                     const std::string &B) {
  std::string Key;
  Key.reserve(A.size() + B.size() + 8);
  appendLengthPrefixed(Key, A);
  Key += B;
  return Key;
}

} // namespace xsa

#endif // XSA_SUPPORT_KEYENCODING_H
