//===- KeyEncoding.h - Injective string-key framing --------------*- C++ -*-===//
//
// Part of the xsa project (PLDI 2007 XPath/type analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Length-prefixed framing for compound map keys built from untrusted
/// text. `len:bytes` frames are uniquely decodable, so a concatenation
/// of framed fields is injective for arbitrary field bytes — no
/// reserved separator that input could smuggle in. Used by the batch
/// dedup signature, the optimize memo, and the rewriter's tried-set;
/// every compound text key should go through here so the injectivity
/// argument lives in one place.
///
//===----------------------------------------------------------------------===//

#ifndef XSA_SUPPORT_KEYENCODING_H
#define XSA_SUPPORT_KEYENCODING_H

#include <cstdint>
#include <string>

namespace xsa {

/// FNV-1a over the bytes of \p Text. Used where a fingerprint must be
/// stable across processes and toolchains (std::hash makes no such
/// promise) — e.g. the DTD-content fingerprints persisted with
/// optimized query forms.
inline uint64_t fingerprintText(const std::string &Text) {
  uint64_t H = 1469598103934665603ull;
  for (unsigned char C : Text) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

inline void appendLengthPrefixed(std::string &Out, const std::string &Field) {
  Out += std::to_string(Field.size());
  Out += ':';
  Out += Field;
}

inline std::string lengthPrefixedKey(const std::string &A,
                                     const std::string &B) {
  std::string Key;
  Key.reserve(A.size() + B.size() + 8);
  appendLengthPrefixed(Key, A);
  Key += B;
  return Key;
}

} // namespace xsa

#endif // XSA_SUPPORT_KEYENCODING_H
