//===- StringInterner.cpp -------------------------------------------------===//

#include "support/StringInterner.h"

#include <cassert>

using namespace xsa;

Symbol StringInterner::intern(std::string_view S) {
  auto It = Table.find(std::string(S));
  if (It != Table.end())
    return It->second;
  Symbol Sym = static_cast<Symbol>(Names.size());
  Names.emplace_back(S);
  Table.emplace(Names.back(), Sym);
  return Sym;
}

const std::string &StringInterner::name(Symbol Sym) const {
  assert(Sym < Names.size() && "unknown symbol");
  return Names[Sym];
}

Symbol StringInterner::lookup(std::string_view S) const {
  auto It = Table.find(std::string(S));
  return It == Table.end() ? ~0u : It->second;
}

StringInterner &StringInterner::global() {
  static StringInterner G;
  return G;
}
