//===- StringInterner.cpp -------------------------------------------------===//

#include "support/StringInterner.h"

#include <cassert>
#include <mutex>

using namespace xsa;

Symbol StringInterner::intern(std::string_view S) {
  {
    std::shared_lock<std::shared_mutex> Lock(M);
    auto It = Table.find(S);
    if (It != Table.end())
      return It->second;
  }
  std::unique_lock<std::shared_mutex> Lock(M);
  // Re-check: another thread may have interned S between the two locks.
  auto It = Table.find(S);
  if (It != Table.end())
    return It->second;
  Symbol Sym = static_cast<Symbol>(Names.size());
  Names.emplace_back(S);
  // The key views the deque-owned string, which never moves.
  Table.emplace(std::string_view(Names.back()), Sym);
  return Sym;
}

const std::string &StringInterner::name(Symbol Sym) const {
  std::shared_lock<std::shared_mutex> Lock(M);
  assert(Sym < Names.size() && "unknown symbol");
  return Names[Sym];
}

Symbol StringInterner::lookup(std::string_view S) const {
  std::shared_lock<std::shared_mutex> Lock(M);
  auto It = Table.find(S);
  return It == Table.end() ? ~0u : It->second;
}

size_t StringInterner::size() const {
  std::shared_lock<std::shared_mutex> Lock(M);
  return Names.size();
}

StringInterner &StringInterner::global() {
  static StringInterner G;
  return G;
}
