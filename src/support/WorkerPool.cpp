//===- WorkerPool.cpp - Reusable pool of worker threads --------------------===//

#include "support/WorkerPool.h"

#include "obs/Trace.h"

#include <algorithm>

using namespace xsa;

WorkerPool::WorkerPool(size_t Threads) {
  if (Threads == 0) {
    Threads = std::thread::hardware_concurrency();
    if (Threads == 0)
      Threads = 1;
  }
  Workers.reserve(Threads);
  for (size_t I = 0; I < Threads; ++I)
    Workers.emplace_back([this, I] { workerMain(I); });
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> Lock(M);
    ShuttingDown = true;
  }
  WakeWorkers.notify_all();
  for (std::thread &T : Workers)
    T.join();
}

void WorkerPool::runChunks(size_t Worker) {
  // Task parameters (Fn, TaskN, Chunk) were published under M before the
  // wake-up that got us here, so plain reads are ordered.
  for (;;) {
    size_t Begin = Next.fetch_add(Chunk, std::memory_order_relaxed);
    if (Begin >= TaskN)
      return;
    size_t End = std::min(TaskN, Begin + Chunk);
    for (size_t I = Begin; I < End; ++I) {
      try {
        (*Fn)(I, Worker);
      } catch (...) {
        std::lock_guard<std::mutex> Lock(M);
        if (!FirstError)
          FirstError = std::current_exception();
      }
    }
  }
}

void WorkerPool::workerMain(size_t Id) {
  uint64_t Seen = 0;
  std::unique_lock<std::mutex> Lock(M);
  for (;;) {
    WakeWorkers.wait(Lock, [&] { return ShuttingDown || TaskSeq != Seen; });
    if (ShuttingDown)
      return;
    Seen = TaskSeq;
    uint64_t Submitted = SubmitNs;
    Lock.unlock();
    // Queue wait: submit stamp to this worker picking the task up. The
    // stamp is 0 when tracing was off at submit, keeping the disabled
    // path free of clock reads.
    if (Submitted)
      Tracer::global().recordSpanFrom("pool.queue_wait", Submitted);
    runChunks(Id);
    Lock.lock();
    if (--ActiveWorkers == 0)
      TaskDone.notify_all();
  }
}

void WorkerPool::parallelFor(
    size_t N, const std::function<void(size_t, size_t)> &F) {
  if (N == 0)
    return;
  std::lock_guard<std::mutex> Submit(SubmitM);
  std::unique_lock<std::mutex> Lock(M);
  Fn = &F;
  TaskN = N;
  // Chunks of ~1/4 of a fair share balance claim overhead against the
  // tail imbalance a big final chunk would cause.
  Chunk = std::max<size_t>(1, N / (Workers.size() * 4));
  Next.store(0, std::memory_order_relaxed);
  FirstError = nullptr;
  ActiveWorkers = Workers.size();
  SubmitNs = Tracer::global().enabled() ? Tracer::nowNs() : 0;
  ++TaskSeq;
  WakeWorkers.notify_all();
  TaskDone.wait(Lock, [&] { return ActiveWorkers == 0; });
  Fn = nullptr;
  if (FirstError)
    std::rethrow_exception(FirstError);
}
