//===- DynBitset.cpp ------------------------------------------------------===//

#include "support/DynBitset.h"

#include <bit>

using namespace xsa;

size_t DynBitset::count() const {
  size_t N = 0;
  for (uint64_t W : Words)
    N += std::popcount(W);
  return N;
}

bool DynBitset::none() const {
  for (uint64_t W : Words)
    if (W)
      return false;
  return true;
}

bool DynBitset::contains(const DynBitset &Other) const {
  assert(NumBits == Other.NumBits && "width mismatch");
  for (size_t I = 0; I < Words.size(); ++I)
    if ((Other.Words[I] & ~Words[I]) != 0)
      return false;
  return true;
}

DynBitset &DynBitset::operator|=(const DynBitset &O) {
  assert(NumBits == O.NumBits && "width mismatch");
  for (size_t I = 0; I < Words.size(); ++I)
    Words[I] |= O.Words[I];
  return *this;
}

DynBitset &DynBitset::operator&=(const DynBitset &O) {
  assert(NumBits == O.NumBits && "width mismatch");
  for (size_t I = 0; I < Words.size(); ++I)
    Words[I] &= O.Words[I];
  return *this;
}

DynBitset &DynBitset::operator^=(const DynBitset &O) {
  assert(NumBits == O.NumBits && "width mismatch");
  for (size_t I = 0; I < Words.size(); ++I)
    Words[I] ^= O.Words[I];
  return *this;
}

bool DynBitset::operator<(const DynBitset &O) const {
  if (NumBits != O.NumBits)
    return NumBits < O.NumBits;
  for (size_t I = Words.size(); I-- > 0;)
    if (Words[I] != O.Words[I])
      return Words[I] < O.Words[I];
  return false;
}

size_t DynBitset::hash() const {
  size_t H = 1469598103934665603ull;
  for (uint64_t W : Words) {
    H ^= static_cast<size_t>(W);
    H *= 1099511628211ull;
  }
  H ^= NumBits;
  return H;
}
