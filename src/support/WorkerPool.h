//===- WorkerPool.h - Reusable pool of worker threads ------------*- C++ -*-===//
//
// Part of the xsa project (PLDI 2007 XPath/type analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size pool of persistent worker threads with a
/// self-scheduling (chunked work-stealing) parallel-for. Independent jobs
/// are claimed from a shared atomic index in chunks, so fast workers
/// steal the tail of the range from slow ones instead of idling — the
/// classic dynamic-scheduling loop of parallel runtimes. The pool is the
/// dispatch engine of the parallel batch pipeline (service/Batch.h) but
/// has no service dependencies and is reusable anywhere independent
/// index-addressed work needs to be spread over cores.
///
/// Each invocation of parallelFor passes the worker's dense id (0 ..
/// threads()-1) to the callback, which is what lets callers maintain
/// per-worker state (e.g. one AnalysisContext per worker) without any
/// locking of their own.
///
/// parallelFor is a full barrier: all side effects of the callbacks
/// happen-before its return (the completion handshake uses a mutex, so
/// no additional synchronization is needed to read results produced by
/// the workers). One parallelFor may run at a time per pool; concurrent
/// submitters are serialized internally.
///
//===----------------------------------------------------------------------===//

#ifndef XSA_SUPPORT_WORKERPOOL_H
#define XSA_SUPPORT_WORKERPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace xsa {

class WorkerPool {
public:
  /// Spawns \p Threads persistent workers. 0 picks the hardware
  /// concurrency (at least 1).
  explicit WorkerPool(size_t Threads = 0);
  ~WorkerPool();
  WorkerPool(const WorkerPool &) = delete;
  WorkerPool &operator=(const WorkerPool &) = delete;

  size_t threads() const { return Workers.size(); }

  /// Runs Fn(Index, Worker) for every Index in [0, N), spread over the
  /// pool. Blocks until all N calls have returned. Exceptions escaping a
  /// callback are captured and the first one is rethrown here after the
  /// barrier.
  void parallelFor(size_t N,
                   const std::function<void(size_t Index, size_t Worker)> &Fn);

private:
  void workerMain(size_t Id);
  /// Claims and runs chunks of the current task until the range is
  /// exhausted. Runs on the pool's workers; the submitting thread only
  /// blocks in parallelFor, so a Pool(N) occupies N working threads.
  void runChunks(size_t Worker);

  std::vector<std::thread> Workers;

  /// Task state, guarded by M except where noted.
  std::mutex M;
  std::condition_variable WakeWorkers;
  std::condition_variable TaskDone;
  std::mutex SubmitM; ///< serializes concurrent parallelFor calls
  const std::function<void(size_t, size_t)> *Fn = nullptr;
  size_t TaskN = 0;
  size_t Chunk = 1;
  uint64_t TaskSeq = 0;      ///< bumped per parallelFor; workers wait on it
  size_t ActiveWorkers = 0;  ///< workers still inside the current task
  uint64_t SubmitNs = 0;     ///< task submit stamp (0 = tracing off); under M
  std::atomic<size_t> Next{0}; ///< next unclaimed index (lock-free claim)
  std::exception_ptr FirstError;
  bool ShuttingDown = false;
};

} // namespace xsa

#endif // XSA_SUPPORT_WORKERPOOL_H
