//===- DynBitset.h - Dynamic fixed-width bitset ------------------*- C++ -*-===//
//
// Part of the xsa project (PLDI 2007 XPath/type analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact dynamically-sized bitset used to represent ψ-types (Hintikka
/// sets over the Lean, §6.1 of the paper) in the explicit reference solver,
/// and satisfying assignments extracted from BDDs. Width is fixed at
/// construction; all operands of binary operations must have equal width.
///
//===----------------------------------------------------------------------===//

#ifndef XSA_SUPPORT_DYNBITSET_H
#define XSA_SUPPORT_DYNBITSET_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace xsa {

/// Fixed-width bit vector with value semantics, hashing and ordering.
class DynBitset {
public:
  DynBitset() = default;

  /// Creates an all-zero bitset of \p NumBits bits.
  explicit DynBitset(size_t NumBits)
      : NumBits(NumBits), Words((NumBits + 63) / 64, 0) {}

  size_t size() const { return NumBits; }

  bool test(size_t I) const {
    assert(I < NumBits && "bit index out of range");
    return (Words[I / 64] >> (I % 64)) & 1;
  }

  void set(size_t I, bool V = true) {
    assert(I < NumBits && "bit index out of range");
    uint64_t Mask = uint64_t(1) << (I % 64);
    if (V)
      Words[I / 64] |= Mask;
    else
      Words[I / 64] &= ~Mask;
  }

  void reset(size_t I) { set(I, false); }

  /// Number of set bits.
  size_t count() const;

  /// True if no bit is set.
  bool none() const;

  /// True if any bit is set.
  bool any() const { return !none(); }

  /// True if every bit of \p Other that is set is also set here.
  bool contains(const DynBitset &Other) const;

  DynBitset &operator|=(const DynBitset &O);
  DynBitset &operator&=(const DynBitset &O);
  DynBitset &operator^=(const DynBitset &O);

  friend DynBitset operator|(DynBitset A, const DynBitset &B) { return A |= B; }
  friend DynBitset operator&(DynBitset A, const DynBitset &B) { return A &= B; }
  friend DynBitset operator^(DynBitset A, const DynBitset &B) { return A ^= B; }

  bool operator==(const DynBitset &O) const {
    return NumBits == O.NumBits && Words == O.Words;
  }
  bool operator!=(const DynBitset &O) const { return !(*this == O); }
  bool operator<(const DynBitset &O) const; // lexicographic, for std::set

  /// FNV-style hash over the words.
  size_t hash() const;

private:
  size_t NumBits = 0;
  std::vector<uint64_t> Words;
};

struct DynBitsetHash {
  size_t operator()(const DynBitset &B) const { return B.hash(); }
};

} // namespace xsa

#endif // XSA_SUPPORT_DYNBITSET_H
