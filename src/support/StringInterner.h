//===- StringInterner.h - Global string interning ---------------*- C++ -*-===//
//
// Part of the xsa project: reproduction of "Efficient Static Analysis of XML
// Paths and Types" (Genevès, Layaïda & Schmitt, PLDI 2007 / INRIA RR-6590).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interns strings (element names, recursion-variable names) into small
/// integer symbols so that the rest of the system can compare and hash labels
/// in O(1). A single process-wide interner is used: labels flow between
/// XPath expressions, DTDs, logic formulas and trees, and must agree.
///
/// The interner is thread-safe: parallel batch dispatch (see
/// service/Session.h) runs one parser/compiler per worker thread, and all
/// of them intern labels concurrently. Reads (name, lookup) take a shared
/// lock; intern takes a shared lock on its fast path and upgrades to an
/// exclusive lock only for first-time insertions. Symbol values are dense,
/// assigned in insertion order, and never change once published, so a
/// Symbol obtained by any thread is valid everywhere afterwards. Names are
/// stored in a deque, whose elements never move, so the references handed
/// out by name() stay valid for the life of the process even while other
/// threads keep interning.
///
//===----------------------------------------------------------------------===//

#ifndef XSA_SUPPORT_STRINGINTERNER_H
#define XSA_SUPPORT_STRINGINTERNER_H

#include <cstdint>
#include <deque>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace xsa {

/// An interned string. Symbols are dense, starting at 0.
using Symbol = uint32_t;

/// Maps strings to dense integer symbols and back. Safe for concurrent
/// use from multiple threads.
class StringInterner {
public:
  /// Returns the symbol for \p S, interning it on first use.
  Symbol intern(std::string_view S);

  /// Returns the string for a previously interned symbol. The reference
  /// is stable: it survives later interning from any thread.
  const std::string &name(Symbol Sym) const;

  /// Returns the symbol for \p S if already interned, or ~0u otherwise.
  Symbol lookup(std::string_view S) const;

  /// Number of interned symbols.
  size_t size() const;

  /// The process-wide interner shared by all xsa components.
  static StringInterner &global();

private:
  mutable std::shared_mutex M;
  /// Deque, not vector: element addresses are stable across growth, so
  /// name() can return references without holding the lock.
  std::deque<std::string> Names;
  std::unordered_map<std::string_view, Symbol> Table;
};

/// Convenience: intern into the global interner.
inline Symbol internSymbol(std::string_view S) {
  return StringInterner::global().intern(S);
}

/// Convenience: resolve a symbol from the global interner.
inline const std::string &symbolName(Symbol Sym) {
  return StringInterner::global().name(Sym);
}

} // namespace xsa

#endif // XSA_SUPPORT_STRINGINTERNER_H
