//===- StringInterner.h - Global string interning ---------------*- C++ -*-===//
//
// Part of the xsa project: reproduction of "Efficient Static Analysis of XML
// Paths and Types" (Genevès, Layaïda & Schmitt, PLDI 2007 / INRIA RR-6590).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interns strings (element names, recursion-variable names) into small
/// integer symbols so that the rest of the system can compare and hash labels
/// in O(1). A single process-wide interner is used: labels flow between
/// XPath expressions, DTDs, logic formulas and trees, and must agree.
///
//===----------------------------------------------------------------------===//

#ifndef XSA_SUPPORT_STRINGINTERNER_H
#define XSA_SUPPORT_STRINGINTERNER_H

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace xsa {

/// An interned string. Symbols are dense, starting at 0.
using Symbol = uint32_t;

/// Maps strings to dense integer symbols and back.
class StringInterner {
public:
  /// Returns the symbol for \p S, interning it on first use.
  Symbol intern(std::string_view S);

  /// Returns the string for a previously interned symbol.
  const std::string &name(Symbol Sym) const;

  /// Returns the symbol for \p S if already interned, or ~0u otherwise.
  Symbol lookup(std::string_view S) const;

  /// Number of interned symbols.
  size_t size() const { return Names.size(); }

  /// The process-wide interner shared by all xsa components.
  static StringInterner &global();

private:
  std::vector<std::string> Names;
  std::unordered_map<std::string, Symbol> Table;
};

/// Convenience: intern into the global interner.
inline Symbol internSymbol(std::string_view S) {
  return StringInterner::global().intern(S);
}

/// Convenience: resolve a symbol from the global interner.
inline const std::string &symbolName(Symbol Sym) {
  return StringInterner::global().name(Sym);
}

} // namespace xsa

#endif // XSA_SUPPORT_STRINGINTERNER_H
