//===- solver_test.cpp - Satisfiability solvers (§6, §7) ------------------===//
//
// Tests the symbolic solver and the explicit reference solver: known
// (un)satisfiable formulas, soundness (extracted models satisfy the
// formula under the direct semantics), agreement between the two solvers
// on random formulas, the paper's Fig. 18 run, and solver options
// (variable orders, early quantification, early termination).
//
//===----------------------------------------------------------------------===//

#include "logic/CycleFree.h"
#include "logic/Eval.h"
#include "logic/Parser.h"
#include "solver/ExplicitSolver.h"
#include "tree/Xml.h"
#include "xpath/Compile.h"
#include "xpath/Eval.h"
#include "xpath/Parser.h"

#include <gtest/gtest.h>

#include <random>

using namespace xsa;

namespace {

Formula parse(FormulaFactory &FF, const std::string &S) {
  std::string Err;
  Formula F = parseFormula(FF, S, Err);
  EXPECT_NE(F, nullptr) << Err << " in: " << S;
  return F;
}

ExprRef xp(const std::string &S) {
  std::string Err;
  ExprRef E = parseXPath(S, Err);
  EXPECT_NE(E, nullptr) << Err << " in: " << S;
  return E;
}

/// Solves with the BDD solver and, when satisfiable, checks the model
/// against the direct semantics (soundness, Lemma 6.5).
SolverResult solveChecked(FormulaFactory &FF, Formula Psi,
                          SolverOptions Opts = {}) {
  BddSolver Solver(FF, Opts);
  SolverResult R = Solver.solve(Psi);
  if (R.Satisfiable && R.Model) {
    // The plunged formula holds somewhere: ψ itself must hold at some
    // node of the model.
    DynBitset Sat = evalFormula(*R.Model, FF, Psi);
    EXPECT_TRUE(Sat.any()) << "model does not satisfy "
                           << FF.toString(Psi) << "\n"
                           << printXml(*R.Model);
    // Exactly one start mark.
    EXPECT_NE(R.Model->markedNode(), InvalidNodeId);
  }
  return R;
}

TEST(BddSolver, Basics) {
  FormulaFactory FF;
  EXPECT_TRUE(solveChecked(FF, FF.trueF()).Satisfiable);
  EXPECT_FALSE(solveChecked(FF, FF.falseF()).Satisfiable);
  EXPECT_TRUE(solveChecked(FF, FF.prop("a")).Satisfiable);
  EXPECT_FALSE(
      solveChecked(FF, FF.conj(FF.prop("a"), FF.negProp("a"))).Satisfiable);
  EXPECT_TRUE(solveChecked(FF, FF.start()).Satisfiable);
  EXPECT_TRUE(solveChecked(FF, FF.negStart()).Satisfiable);
  EXPECT_FALSE(
      solveChecked(FF, FF.conj(FF.start(), FF.negStart())).Satisfiable);
}

TEST(BddSolver, Modalities) {
  FormulaFactory FF;
  // A node with a b child under an a node.
  EXPECT_TRUE(solveChecked(FF, parse(FF, "a & <1>b")).Satisfiable);
  // A first child cannot also have a previous sibling.
  EXPECT_FALSE(solveChecked(FF, parse(FF, "<-1>a & <-2>b")).Satisfiable);
  // ⟨a⟩⊤ ∧ ¬⟨a⟩⊤ is unsatisfiable.
  EXPECT_FALSE(solveChecked(FF, parse(FF, "<1>T & ~<1>T")).Satisfiable);
  // Deep obligations are satisfiable.
  EXPECT_TRUE(
      solveChecked(FF, parse(FF, "<1>(a & <2>(b & <1>c))")).Satisfiable);
  // Both a leaf and a parent: unsatisfiable.
  EXPECT_FALSE(solveChecked(FF, parse(FF, "~<1>T & <1>a")).Satisfiable);
}

TEST(BddSolver, FixpointFormulas) {
  FormulaFactory FF;
  // Some descendant chain of a's ending with b.
  Formula F = parse(FF, "a & <1>(mu $X . b | <2>$X)");
  EXPECT_TRUE(solveChecked(FF, F).Satisfiable);
  // µX.⟨1⟩X alone is unsatisfiable on finite trees.
  EXPECT_FALSE(solveChecked(FF, parse(FF, "mu $X . <1>$X")).Satisfiable);
  // ... but µX. a | ⟨1⟩X is satisfiable (finite unfolding).
  EXPECT_TRUE(solveChecked(FF, parse(FF, "mu $X . a | <1>$X")).Satisfiable);
}

TEST(BddSolver, StartMarkUniqueness) {
  FormulaFactory FF;
  // "There are two marks in the tree" must be unsatisfiable thanks to
  // the Fig. 16 single-mark discipline: ask for a mark with a marked
  // strict descendant.
  Formula TwoMarks =
      parse(FF, "#s & <1>(mu $X . #s | <1>$X | <2>$X)");
  EXPECT_FALSE(solveChecked(FF, TwoMarks).Satisfiable);
  // A mark plus an unmarked descendant is fine.
  Formula MarkAndChild = parse(FF, "#s & <1>(b & ~#s)");
  EXPECT_TRUE(solveChecked(FF, MarkAndChild).Satisfiable);
}

TEST(BddSolver, ModelExtraction) {
  FormulaFactory FF;
  Formula F = parse(FF, "a & <1>(b & <2>c) & <-1>d");
  SolverResult R = solveChecked(FF, F);
  ASSERT_TRUE(R.Satisfiable);
  ASSERT_TRUE(R.Model.has_value());
  // The model must contain at least d[a[b c]].
  const Document &D = *R.Model;
  bool Found = false;
  for (NodeId N = 0; N < static_cast<NodeId>(D.size()); ++N)
    if (evalFormulaAt(D, FF, F, N))
      Found = true;
  EXPECT_TRUE(Found);
  EXPECT_GE(D.size(), 4u);
}

TEST(BddSolver, ModelIsMinimalDepthForLeafFormulas) {
  FormulaFactory FF;
  SolverResult R = solveChecked(FF, parse(FF, "a & ~<1>T & ~<2>T"));
  ASSERT_TRUE(R.Satisfiable);
  // A single-node model suffices and the reconstruction searches the
  // earliest intermediate set first (§7.2).
  EXPECT_EQ(R.Model->size(), 1u);
  EXPECT_EQ(R.Stats.Iterations, 1u);
}

TEST(BddSolver, XPathEmptinessExamples) {
  FormulaFactory FF;
  // self::a ∩ self::b selects nodes carrying two names at once: empty.
  Formula Empty = compileXPath(FF, xp("self::a & self::b"), FF.trueF());
  EXPECT_FALSE(solveChecked(FF, Empty).Satisfiable);
  Formula NonEmpty = compileXPath(FF, xp("a/b[c]"), FF.trueF());
  EXPECT_TRUE(solveChecked(FF, NonEmpty).Satisfiable);
}

TEST(BddSolver, SingleRootOption) {
  // ⟨2⟩a at the focus of a root requires a top-level sibling: the
  // paper's hedge models allow it, single-rooted document models do not.
  FormulaFactory FF;
  Formula NeedsSibling = parse(FF, "b & ~<-1>T & ~<-2>T & <2>a");
  SolverOptions Hedge;
  SolverResult RH = solveChecked(FF, NeedsSibling, Hedge);
  EXPECT_TRUE(RH.Satisfiable);
  ASSERT_TRUE(RH.Model.has_value());
  EXPECT_GE(RH.Model->roots().size(), 2u);
  SolverOptions Single;
  Single.RequireSingleRoot = true;
  BddSolver SolverS(FF, Single);
  EXPECT_FALSE(SolverS.solve(NeedsSibling).Satisfiable);
  // An ordinary satisfiable formula stays satisfiable with a single root.
  EXPECT_TRUE(SolverS.solve(parse(FF, "a & <1>b")).Satisfiable);
}

TEST(BddSolver, HelperFormulasAreCycleFree) {
  FormulaFactory FF;
  EXPECT_TRUE(isCycleFree(singleMarkFormula(FF)));
  EXPECT_TRUE(isCycleFree(plungeFormula(FF, FF.prop("a"))));
}

//===----------------------------------------------------------------------===//
// Figure 18: e1 = child::c/preceding-sibling::a[child::b],
//            e2 = child::c[child::b]; e1 ⊄ e2 with a depth-3 witness.
//===----------------------------------------------------------------------===//

TEST(BddSolver, Figure18Containment) {
  FormulaFactory FF;
  Formula F1 =
      compileXPath(FF, xp("child::c/prec-sibling::a[child::b]"), FF.trueF());
  Formula F2 = compileXPath(FF, xp("child::c[child::b]"), FF.trueF());
  Formula Psi = FF.conj(F1, FF.negate(F2));
  SolverResult R = solveChecked(FF, Psi);
  EXPECT_TRUE(R.Satisfiable) << "e1 should not be contained in e2";
  ASSERT_TRUE(R.Model.has_value());
  // The paper's counterexample has 4 nodes (root + a[b] + c) arranged
  // over 3 levels of the binary encoding; ours must at least be a valid
  // counterexample: some node selected by e1 and not by e2.
  const Document &D = *R.Model;
  NodeSet Sel1 = evalXPath(D, xp("child::c/prec-sibling::a[child::b]"));
  NodeSet Sel2 = evalXPath(D, xp("child::c[child::b]"));
  bool Diff = false;
  for (NodeId N : Sel1)
    if (!Sel2.count(N))
      Diff = true;
  EXPECT_TRUE(Diff) << printXml(D);
}

TEST(BddSolver, Figure18ReverseHolds) {
  // The other direction e2 ⊆ e1 does not hold either (c[b] selects c
  // nodes, e1 selects a nodes).
  FormulaFactory FF;
  Formula F1 =
      compileXPath(FF, xp("child::c/prec-sibling::a[child::b]"), FF.trueF());
  Formula F2 = compileXPath(FF, xp("child::c[child::b]"), FF.trueF());
  EXPECT_TRUE(solveChecked(FF, FF.conj(F2, FF.negate(F1))).Satisfiable);
  // And a containment that does hold: a[b] ⊆ a.
  Formula G1 = compileXPath(FF, xp("a[b]"), FF.trueF());
  Formula G2 = compileXPath(FF, xp("a"), FF.trueF());
  EXPECT_FALSE(solveChecked(FF, FF.conj(G1, FF.negate(G2))).Satisfiable);
  // Equivalence of syntactically different expressions:
  // a/b[c] ≡ a/b[c] ∪ (a & a)/b[c] trivially; use desc-or-self vs
  // explicit: descendant::a ≡ child::a ∪ child::*/descendant::a.
  Formula H1 = compileXPath(FF, xp("descendant::a"), FF.trueF());
  Formula H2 = compileXPath(FF, xp("a | */descendant::a"), FF.trueF());
  EXPECT_FALSE(solveChecked(FF, FF.conj(H1, FF.negate(H2))).Satisfiable);
  EXPECT_FALSE(solveChecked(FF, FF.conj(H2, FF.negate(H1))).Satisfiable);
}

//===----------------------------------------------------------------------===//
// Options: all solver configurations agree.
//===----------------------------------------------------------------------===//

class SolverOptionsTest : public ::testing::TestWithParam<int> {};

TEST_P(SolverOptionsTest, ConfigurationsAgree) {
  int Config = GetParam();
  SolverOptions Opts;
  Opts.Order = static_cast<LeanOrder>(Config % 3);
  Opts.EarlyQuantification = (Config / 3) % 2 == 0;
  Opts.EarlyTermination = (Config / 6) % 2 == 0;
  FormulaFactory FF;
  struct Case {
    const char *Src;
    bool Sat;
  } Cases[] = {
      {"a & <1>b", true},
      {"<-1>a & <-2>b", false},
      {"a & <1>(mu $X . b | <2>$X)", true},
      {"mu $X . <1>$X", false},
      {"#s & <1>(mu $X . #s | <1>$X | <2>$X)", false},
      {"c & ~<1>T & <-2>(a & <1>b & <-1>#s)", true}, // Fig. 18-like
  };
  for (const Case &C : Cases) {
    SolverResult R = solveChecked(FF, parse(FF, C.Src), Opts);
    EXPECT_EQ(R.Satisfiable, C.Sat) << C.Src << " config " << Config;
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, SolverOptionsTest, ::testing::Range(0, 12));

//===----------------------------------------------------------------------===//
// Differential testing: explicit (Fig. 16) vs symbolic (§7).
//===----------------------------------------------------------------------===//

TEST(ExplicitSolver, AgreesOnCuratedCases) {
  FormulaFactory FF;
  struct Case {
    const char *Src;
    bool Sat;
  } Cases[] = {
      {"a", true},
      {"a & ~a", false},
      {"a & <1>b", true},
      {"<1>T & ~<1>T", false},
      {"<-1>a & <-2>b", false},
      {"a & <1>(b & <2>c)", true},
      {"#s & <1>(b & ~#s)", true},
      {"#s & <1>#s", false},
      {"mu $X . a | <1>$X", true},
      {"mu $X . <1>$X", false},
  };
  for (const Case &C : Cases) {
    Formula F = parse(FF, C.Src);
    ExplicitSolver ES(FF);
    ExplicitSolver::Result ER = ES.solve(F);
    ASSERT_TRUE(ER.Feasible) << C.Src;
    EXPECT_EQ(ER.Satisfiable, C.Sat) << C.Src;
    if (ER.Satisfiable) {
      ASSERT_TRUE(ER.Model.has_value());
      EXPECT_TRUE(evalFormula(*ER.Model, FF, F).any())
          << C.Src << "\n"
          << printXml(*ER.Model);
    }
    SolverResult BR = solveChecked(FF, F);
    EXPECT_EQ(BR.Satisfiable, C.Sat) << C.Src;
  }
}

/// Random small NNF formulas for the differential sweep.
Formula randomFormula(FormulaFactory &FF, std::mt19937 &Rng, int Depth) {
  const char *Labels[] = {"a", "b"};
  switch (Rng() % (Depth <= 0 ? 4 : 8)) {
  case 0:
    return FF.prop(Labels[Rng() % 2]);
  case 1:
    return FF.negProp(Labels[Rng() % 2]);
  case 2:
    return Rng() % 2 ? FF.start() : FF.negStart();
  case 3:
    return FF.negDiamondTop(static_cast<Program>(Rng() % 4));
  case 4:
    return FF.conj(randomFormula(FF, Rng, Depth - 1),
                   randomFormula(FF, Rng, Depth - 1));
  case 5:
    return FF.disj(randomFormula(FF, Rng, Depth - 1),
                   randomFormula(FF, Rng, Depth - 1));
  default:
    return FF.diamond(static_cast<Program>(Rng() % 4),
                      randomFormula(FF, Rng, Depth - 1));
  }
}

class DifferentialSolverTest : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialSolverTest, ExplicitAndSymbolicAgree) {
  std::mt19937 Rng(GetParam());
  FormulaFactory FF;
  for (int Round = 0; Round < 6; ++Round) {
    Formula F = randomFormula(FF, Rng, 3);
    ExplicitSolver ES(FF, /*MaxModalBits=*/18);
    ExplicitSolver::Result ER = ES.solve(F);
    if (!ER.Feasible)
      continue;
    SolverResult BR = solveChecked(FF, F);
    EXPECT_EQ(ER.Satisfiable, BR.Satisfiable) << FF.toString(F);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialSolverTest,
                         ::testing::Range(1, 13));

} // namespace
