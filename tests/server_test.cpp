//===- server_test.cpp - xsolved server tests ------------------------------===//
//
// In-process tests of server/Server.h: an XsolvedServer on an ephemeral
// TCP port, driven by LineClient connections from test threads.
//
// The load-bearing property is the shared-session determinism contract:
// concurrent clients reading through one shared cache receive responses
// byte-identical to a serial `xsolve batch --stable` run of the same
// lines. Admission control (overloaded), deadlines (deadline_exceeded)
// and graceful drain (draining) are exercised deterministically through
// the debugPauseDispatch test hook.
//
//===----------------------------------------------------------------------===//

#include "obs/Log.h"
#include "obs/SlowQuery.h"
#include "server/Client.h"
#include "server/Server.h"
#include "service/Batch.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace xsa;

namespace {

/// A mixed workload as raw protocol lines: containment both ways,
/// overlap, emptiness, plus one malformed request (missing e2) so the
/// error path is part of the byte-identity contract too.
std::vector<std::string> workloadLines(size_t N = 16) {
  std::vector<std::string> Lines;
  for (size_t I = 0; I < N; ++I) {
    std::string A = "a" + std::to_string(I);
    std::string B = "b" + std::to_string(I);
    std::string Id = "q" + std::to_string(I);
    switch (I % 4) {
    case 0:
      Lines.push_back("{\"id\":\"" + Id + "\",\"op\":\"contains\",\"e1\":\"/" +
                      A + "/" + B + "\",\"e2\":\"//" + B + "\"}");
      break;
    case 1:
      Lines.push_back("{\"id\":\"" + Id + "\",\"op\":\"contains\",\"e1\":\"//" +
                      B + "\",\"e2\":\"/" + A + "/" + B + "\"}");
      break;
    case 2:
      Lines.push_back("{\"id\":\"" + Id + "\",\"op\":\"overlap\",\"e1\":\"//" +
                      A + "/" + B + "\",\"e2\":\"//" + B + "\"}");
      break;
    default:
      // Malformed on purpose: containment without e2.
      Lines.push_back("{\"id\":\"" + Id + "\",\"op\":\"contains\",\"e1\":\"/" +
                      A + "\"}");
      break;
    }
  }
  return Lines;
}

/// The serial reference: the same lines through `xsolve batch --stable`
/// on a fresh session.
std::string serialReference(const std::vector<std::string> &Lines) {
  std::string Input;
  for (const std::string &L : Lines)
    Input += L + "\n";
  std::istringstream In(Input);
  std::ostringstream Out;
  AnalysisSession Session;
  runBatchJsonLines(Session, In, Out, nullptr, /*StableOutput=*/true);
  return Out.str();
}

struct ServerFixture {
  explicit ServerFixture(ServerOptions Opts) : Server(std::move(Opts)) {
    std::string Error;
    if (!Server.start(Error))
      ADD_FAILURE() << "server start failed: " << Error;
  }
  ~ServerFixture() { Server.drainAndWait(); }

  LineClient connect() {
    LineClient C;
    std::string Error;
    EXPECT_TRUE(C.connectTcp("127.0.0.1", Server.tcpPort(), Error)) << Error;
    return C;
  }

  XsolvedServer Server;
};

ServerOptions stableServerOptions(size_t Jobs = 2) {
  ServerOptions Opts;
  Opts.TcpPort = 0; // ephemeral
  Opts.DefaultStable = true;
  Opts.Session.Jobs = Jobs;
  return Opts;
}

/// Sends every line, then reads one response per line (the server
/// answers in request order per connection).
std::string runClient(LineClient &C, const std::vector<std::string> &Lines) {
  for (const std::string &L : Lines)
    EXPECT_TRUE(C.sendLine(L));
  std::string Out;
  for (size_t I = 0; I < Lines.size(); ++I) {
    std::string Resp;
    if (!C.recvLine(Resp)) {
      ADD_FAILURE() << "connection closed after " << I << "/" << Lines.size()
                    << " responses";
      break;
    }
    Out += Resp + "\n";
  }
  return Out;
}

} // namespace

TEST(Server, StartPingDrain) {
  ServerFixture F(stableServerOptions(1));
  LineClient C = F.connect();
  ASSERT_TRUE(C.sendLine("{\"id\":\"p\",\"op\":\"ping\"}"));
  std::string Resp;
  ASSERT_TRUE(C.recvLine(Resp));
  EXPECT_EQ(Resp, "{\"id\":\"p\",\"ok\":true,\"op\":\"ping\"}");
  F.Server.drainAndWait();
}

TEST(Server, SingleClientMatchesSerialBatch) {
  std::vector<std::string> Lines = workloadLines();
  std::string Reference = serialReference(Lines);
  ServerFixture F(stableServerOptions(2));
  LineClient C = F.connect();
  EXPECT_EQ(runClient(C, Lines), Reference);
}

TEST(Server, ConcurrentClientsGetByteIdenticalResponses) {
  std::vector<std::string> Lines = workloadLines(24);
  std::string Reference = serialReference(Lines);
  ServerFixture F(stableServerOptions(2));

  // Two clients race the same workload through the shared session. The
  // shared cache means most of one client's requests are answered from
  // the other's solves — and the stable encoding hides exactly that, so
  // both transcripts must equal the serial reference byte for byte.
  std::string Got[2];
  std::thread T[2];
  for (int I = 0; I < 2; ++I)
    T[I] = std::thread([&, I] {
      LineClient C = F.connect();
      Got[I] = runClient(C, Lines);
    });
  for (auto &Th : T)
    Th.join();
  EXPECT_EQ(Got[0], Reference);
  EXPECT_EQ(Got[1], Reference);

  // The shared cache was actually shared: the 24 lines contain 18
  // well-formed requests, so two clients make 36 passes. Racing
  // duplicates may both solve (both legitimately report miss — see the
  // determinism guarantee), so the exact solve count varies, but well
  // under one solve per pass, with the rest answered from the shared
  // cache.
  SessionStats S = F.Server.session().stats();
  EXPECT_GT(S.Cache.Hits, 0u);
  EXPECT_LT(S.Solves, 36u);
}

TEST(Server, PipelinedFloodNeverBlocksTheServer) {
  // Regression: responses used to be sent synchronously by whichever
  // server thread produced them (reader for control ops, dispatcher
  // for analysis responses). A client that pipelines a large file
  // before reading anything fills its own receive buffer, the send
  // then blocked that server thread, the server stopped reading, the
  // client's send blocked in turn — mutual deadlock. Responses now
  // park in a per-connection buffer drained by a writer thread, so
  // this flood must complete.
  ServerFixture F(stableServerOptions(1));
  LineClient C = F.connect();
  // Padded ids make ~7 MB of requests and ~7 MB of echoed responses:
  // comfortably past the kernel socket buffers in both directions.
  const size_t N = 30000;
  const std::string Pad(200, 'x');
  for (size_t I = 0; I < N; ++I)
    ASSERT_TRUE(C.sendLine("{\"id\":\"" + Pad + std::to_string(I) +
                           "\",\"op\":\"ping\"}"));
  for (size_t I = 0; I < N; ++I) {
    std::string Resp;
    ASSERT_TRUE(C.recvLine(Resp)) << "response " << I << " of " << N;
    EXPECT_NE(Resp.find("\"ok\":true"), std::string::npos);
  }
}

TEST(Server, OutboundOverflowDropsOnlyTheGuiltyConnection) {
  // The outbound bound is enforced inside deliver(), under the same
  // lock that inserts the response line — so one response larger than
  // the bound trips the drop deterministically, with no dependence on
  // kernel socket buffer sizes or client pacing.
  ServerOptions Opts = stableServerOptions(1);
  Opts.MaxOutboundBytes = size_t(1) << 12;
  ServerFixture F(Opts);
  LineClient Bad = F.connect();
  // The echoed 8 KiB id makes the response overflow the 4 KiB bound:
  // the server must drop the connection rather than buffer past it.
  ASSERT_TRUE(
      Bad.sendLine("{\"id\":\"" + std::string(8192, 'y') + "\",\"op\":\"ping\"}"));
  std::string Resp;
  EXPECT_FALSE(Bad.recvLine(Resp)) << "oversized response was not dropped";
  // Another tenant is completely unaffected by the dropped flooder.
  LineClient Good = F.connect();
  ASSERT_TRUE(Good.sendLine("{\"id\":\"g\",\"op\":\"ping\"}"));
  ASSERT_TRUE(Good.recvLine(Resp));
  EXPECT_NE(Resp.find("\"ok\":true"), std::string::npos);
}

TEST(Server, DeadlineExpiredInQueueIsRejectedStructurally) {
  ServerFixture F(stableServerOptions(1));
  F.Server.debugPauseDispatch(true);
  LineClient C = F.connect();
  ASSERT_TRUE(C.sendLine("{\"id\":\"d\",\"op\":\"contains\",\"e1\":\"/a/b\","
                         "\"e2\":\"//b\",\"deadline_ms\":1}"));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  F.Server.debugPauseDispatch(false);
  std::string Resp;
  ASSERT_TRUE(C.recvLine(Resp));
  std::string Error;
  JsonRef R = parseJson(Resp, Error);
  ASSERT_NE(R, nullptr) << Error;
  EXPECT_EQ(R->str("id"), "d");
  EXPECT_FALSE(R->get("ok")->asBool());
  EXPECT_EQ(R->get("error")->str("code"), "deadline_exceeded");
  auto Ns = F.Server.namespaceState("default");
  EXPECT_EQ(Ns->DeadlineMisses.load(), 1u);
}

TEST(Server, FullQueueRejectsWithOverloaded) {
  ServerOptions Opts = stableServerOptions(1);
  Opts.QueueLimit = 3;
  ServerFixture F(Opts);
  F.Server.debugPauseDispatch(true);
  LineClient C = F.connect();
  // 8 requests into a paused server with a queue bound of 3: the first
  // 3 are admitted, the next 5 must be rejected immediately — the
  // admission path never blocks the client and never crashes.
  std::vector<std::string> Lines;
  for (int I = 0; I < 8; ++I)
    Lines.push_back("{\"id\":\"o" + std::to_string(I) +
                    "\",\"op\":\"contains\",\"e1\":\"/a/b\",\"e2\":\"//b\"}");
  for (const std::string &L : Lines)
    ASSERT_TRUE(C.sendLine(L));
  // Unpausing early would let the dispatcher free queue slots while the
  // reader is still admitting; wait for all 5 rejections (counted at
  // admission) so the overload split is deterministic.
  auto Ns = F.Server.namespaceState("default");
  for (int I = 0; I < 500 && Ns->Rejections.load() < 5; ++I)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  F.Server.debugPauseDispatch(false);
  size_t Overloaded = 0, Answered = 0;
  for (size_t I = 0; I < Lines.size(); ++I) {
    std::string Resp;
    ASSERT_TRUE(C.recvLine(Resp));
    std::string Error;
    JsonRef R = parseJson(Resp, Error);
    ASSERT_NE(R, nullptr) << Error;
    EXPECT_EQ(R->str("id"), "o" + std::to_string(I)) << "order preserved";
    if (R->get("ok")->asBool())
      ++Answered;
    else if (R->get("error")->str("code") == "overloaded")
      ++Overloaded;
  }
  EXPECT_EQ(Answered, 3u);
  EXPECT_EQ(Overloaded, 5u);
  EXPECT_EQ(Ns->Rejections.load(), 5u);
}

TEST(Server, HigherPriorityJobsDispatchFirst) {
  ServerFixture F(stableServerOptions(1));
  F.Server.debugPauseDispatch(true);
  LineClient C = F.connect();
  // Admitted while paused: a low-priority pair then a high-priority
  // request. On resume the high-priority one must solve first — its
  // distinct query is the only cache miss whose solve precedes the
  // others in the session tally. Responses still arrive in request
  // order (the sequencer reorders delivery, not execution).
  ASSERT_TRUE(C.sendLine("{\"id\":\"lo\",\"op\":\"contains\","
                         "\"e1\":\"/lo1/x\",\"e2\":\"//x\"}"));
  ASSERT_TRUE(C.sendLine("{\"id\":\"hi\",\"op\":\"contains\","
                         "\"e1\":\"/hi1/x\",\"e2\":\"//x\",\"priority\":5}"));
  // Give the reader time to admit both before resuming, so the
  // priority queue actually holds the pair at once.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  F.Server.debugPauseDispatch(false);
  std::string R1, R2;
  ASSERT_TRUE(C.recvLine(R1));
  ASSERT_TRUE(C.recvLine(R2));
  EXPECT_NE(R1.find("\"id\":\"lo\""), std::string::npos);
  EXPECT_NE(R2.find("\"id\":\"hi\""), std::string::npos);
  EXPECT_NE(R1.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(R2.find("\"ok\":true"), std::string::npos);
}

TEST(Server, DrainRejectsNewWorkButFinishesAdmitted) {
  std::string CacheFile =
      ::testing::TempDir() + "/xsolved_drain_cache.json";
  std::remove(CacheFile.c_str());
  ServerOptions Opts = stableServerOptions(2);
  Opts.CacheFile = CacheFile;
  auto F = std::make_unique<ServerFixture>(Opts);
  LineClient C = F->connect();
  std::vector<std::string> Lines = workloadLines(8);
  for (const std::string &L : Lines)
    ASSERT_TRUE(C.sendLine(L));
  F->Server.requestDrain();
  // Everything admitted before the drain is still answered, in order.
  for (size_t I = 0; I < Lines.size(); ++I) {
    std::string Resp;
    ASSERT_TRUE(C.recvLine(Resp)) << "response " << I << " lost in drain";
  }
  // New analysis work on the still-open connection is rejected with the
  // draining code (control responses may take a moment as the reader is
  // fully asynchronous to wait(), so tolerate the shutdown race by
  // accepting either the rejection or a closed connection).
  if (C.sendLine("{\"id\":\"late\",\"op\":\"contains\",\"e1\":\"/a/b\","
                 "\"e2\":\"//b\"}")) {
    std::string Resp;
    if (C.recvLine(Resp)) {
      std::string Error;
      JsonRef R = parseJson(Resp, Error);
      ASSERT_NE(R, nullptr) << Error;
      EXPECT_FALSE(R->get("ok")->asBool());
      EXPECT_EQ(R->get("error")->str("code"), "draining");
    }
  }
  F->Server.wait();
  F.reset(); // destructor re-drains; must be idempotent
  std::ifstream Probe(CacheFile);
  EXPECT_TRUE(Probe.good()) << "drain must persist the cache file";
  std::remove(CacheFile.c_str());
}

TEST(Server, ProtocolHardeningMatchesBatchDriver) {
  ServerOptions Opts = stableServerOptions(1);
  Opts.MaxLineBytes = 128;
  ServerFixture F(Opts);
  LineClient C = F.connect();

  // Malformed JSON: structured bad_request with the line number and the
  // parser's byte offset.
  ASSERT_TRUE(C.sendLine("{\"op\":\"contains\",,}"));
  std::string Resp;
  ASSERT_TRUE(C.recvLine(Resp));
  std::string Error;
  JsonRef R = parseJson(Resp, Error);
  ASSERT_NE(R, nullptr) << Error;
  EXPECT_FALSE(R->get("ok")->asBool());
  EXPECT_EQ(R->get("error")->str("code"), "bad_request");
  EXPECT_EQ(R->get("error")->get("line")->asNumber(), 1);
  EXPECT_GT(R->get("error")->get("byte")->asNumber(), 0);

  // Unknown op.
  ASSERT_TRUE(C.sendLine("{\"id\":\"u\",\"op\":\"frobnicate\"}"));
  ASSERT_TRUE(C.recvLine(Resp));
  R = parseJson(Resp, Error);
  ASSERT_NE(R, nullptr) << Error;
  EXPECT_FALSE(R->get("ok")->asBool());
  EXPECT_EQ(R->get("error")->str("code"), "bad_request");
  EXPECT_NE(R->get("error")->str("message").find("unknown op"),
            std::string::npos);

  // Oversized line: consumed (not buffered), answered structurally, and
  // the connection keeps working afterwards.
  std::string Long = "{\"op\":\"contains\",\"e1\":\"/" +
                     std::string(300, 'a') + "\",\"e2\":\"//b\"}";
  ASSERT_TRUE(C.sendLine(Long));
  ASSERT_TRUE(C.recvLine(Resp));
  R = parseJson(Resp, Error);
  ASSERT_NE(R, nullptr) << Error;
  EXPECT_FALSE(R->get("ok")->asBool());
  EXPECT_NE(R->get("error")->str("message").find("exceeds"),
            std::string::npos);
  ASSERT_TRUE(C.sendLine("{\"id\":\"after\",\"op\":\"ping\"}"));
  ASSERT_TRUE(C.recvLine(Resp));
  EXPECT_NE(Resp.find("\"ok\":true"), std::string::npos);
}

TEST(Server, NamespacesIsolateConfigNotResults) {
  ServerOptions Opts = stableServerOptions(1);
  Opts.DefaultStable = false; // volatile responses carry the strategy used
  ServerFixture F(Opts);

  LineClient A = F.connect();
  ASSERT_TRUE(A.sendLine("{\"op\":\"config\",\"ns\":\"team-a\","
                         "\"fixpoint_strategy\":\"chaining\"}"));
  std::string Resp;
  ASSERT_TRUE(A.recvLine(Resp));
  EXPECT_NE(Resp.find("\"ns\":\"team-a\""), std::string::npos);
  EXPECT_NE(Resp.find("\"fixpoint_strategy\":\"chaining\""),
            std::string::npos);

  // team-a runs chaining; an untouched connection stays on the server
  // default (bfs). Distinct queries so both actually solve.
  ASSERT_TRUE(A.sendLine("{\"id\":\"a\",\"op\":\"contains\","
                         "\"e1\":\"/na1/x\",\"e2\":\"//x\"}"));
  ASSERT_TRUE(A.recvLine(Resp));
  EXPECT_NE(Resp.find("\"strategy\":\"chaining\""), std::string::npos);

  LineClient B = F.connect();
  ASSERT_TRUE(B.sendLine("{\"id\":\"b\",\"op\":\"contains\","
                         "\"e1\":\"/nb1/x\",\"e2\":\"//x\"}"));
  ASSERT_TRUE(B.recvLine(Resp));
  EXPECT_NE(Resp.find("\"strategy\":\"bfs\""), std::string::npos);

  // Per-namespace accounting shows up in the metrics op.
  ASSERT_TRUE(B.sendLine("{\"id\":\"m\",\"op\":\"metrics\"}"));
  ASSERT_TRUE(B.recvLine(Resp));
  std::string Error;
  JsonRef M = parseJson(Resp, Error);
  ASSERT_NE(M, nullptr) << Error;
  JsonRef Namespaces = M->get("namespaces");
  ASSERT_EQ(Namespaces->type(), JsonValue::Type::Object);
  EXPECT_EQ(Namespaces->get("team-a")->get("requests")->asNumber(), 1);
  EXPECT_EQ(Namespaces->get("default")->get("requests")->asNumber(), 1);
}

//===----------------------------------------------------------------------===//
// Observability: request ids, slowlog, status, HTTP endpoints
//===----------------------------------------------------------------------===//

namespace {

/// Routes the process-global event log into its ring only (no sink
/// spam), at Debug so per-request events are on, and clears global
/// recorder state other tests may have left behind. Restores defaults
/// on destruction.
struct ObsCapture {
  ObsCapture() {
    EventLog::Options O;
    O.MinLevel = LogLevel::Debug;
    O.Sink = nullptr;
    EventLog::global().configure(O);
    EventLog::global().clearForTest();
    SlowQueryLog::global().clearForTest();
  }
  ~ObsCapture() {
    EventLog::global().configure(EventLog::Options{});
    EventLog::global().clearForTest();
    SlowQueryLog::global().clearForTest();
  }
};

/// One HTTP exchange over the LineClient's socket. Requests are line
/// framed (sendLine appends the newline); the response is status line +
/// headers + a Content-Length body (every body the server emits is
/// newline-terminated, so line reads reassemble it exactly).
struct HttpResponse {
  std::string Status; ///< e.g. "HTTP/1.1 200 OK"
  std::string Connection;
  std::string Body;
};

bool httpGet(LineClient &C, const std::string &Path, HttpResponse &R) {
  if (!C.sendLine("GET " + Path + " HTTP/1.1") || !C.sendLine(""))
    return false;
  if (!C.recvLine(R.Status))
    return false;
  while (!R.Status.empty() && R.Status.back() == '\r')
    R.Status.pop_back();
  size_t Len = 0;
  std::string L;
  while (C.recvLine(L)) {
    while (!L.empty() && L.back() == '\r')
      L.pop_back();
    if (L.empty())
      break;
    if (L.rfind("Content-Length: ", 0) == 0)
      Len = static_cast<size_t>(std::stoul(L.substr(16)));
    if (L.rfind("Connection: ", 0) == 0)
      R.Connection = L.substr(12);
  }
  R.Body.clear();
  while (R.Body.size() < Len && C.recvLine(L))
    R.Body += L + "\n";
  return R.Body.size() == Len;
}

} // namespace

TEST(Server, RequestIdRoundTripsThroughResponseLogAndSlowlog) {
  ObsCapture Obs;
  ServerOptions Opts = stableServerOptions(1);
  Opts.DefaultStable = false; // volatile responses carry "rid"
  Opts.SlowThresholdMs = 0;   // capture every request
  ServerFixture F(Opts);
  LineClient C = F.connect();

  ASSERT_TRUE(C.sendLine("{\"id\":\"my-req-7\",\"op\":\"contains\","
                         "\"e1\":\"/rt1/x\",\"e2\":\"//x\"}"));
  std::string Resp;
  ASSERT_TRUE(C.recvLine(Resp));
  std::string Error;
  JsonRef R = parseJson(Resp, Error);
  ASSERT_NE(R, nullptr) << Error;
  EXPECT_TRUE(R->get("ok")->asBool());
  // The client-chosen id IS the request id, and it comes back on the
  // response's volatile side.
  EXPECT_EQ(R->str("rid"), "my-req-7");

  // ...and on the slowlog entry, with the per-stage breakdown.
  ASSERT_TRUE(C.sendLine("{\"op\":\"slowlog\"}"));
  ASSERT_TRUE(C.recvLine(Resp));
  JsonRef S = parseJson(Resp, Error);
  ASSERT_NE(S, nullptr) << Error;
  const std::vector<JsonRef> &Entries =
      S->get("slowlog")->get("entries")->items();
  bool SlowlogHasRid = false;
  for (const JsonRef &E : Entries)
    if (E->str("rid") == "my-req-7") {
      SlowlogHasRid = true;
      EXPECT_EQ(E->str("id"), "my-req-7");
      EXPECT_TRUE(E->get("stages")->has("request"));
      EXPECT_GE(E->get("total_ms")->asNumber(),
                E->get("queue_wait_ms")->asNumber());
    }
  EXPECT_TRUE(SlowlogHasRid) << Resp;

  // ...and on every matching log line: with the threshold at 0 the
  // request is both completed (request.done, at Debug) and slow
  // (request.slow, at Warn), and both lines carry its id.
  std::vector<std::string> Events;
  for (const EventLog::Record &Rec : EventLog::global().ring())
    if (Rec.Fields->str("rid") == "my-req-7")
      Events.push_back(Rec.Event);
  EXPECT_NE(std::find(Events.begin(), Events.end(), "request.done"),
            Events.end());
  EXPECT_NE(std::find(Events.begin(), Events.end(), "request.slow"),
            Events.end());
}

TEST(Server, GeneratedRequestIdsNeverReachStableOutput) {
  ObsCapture Obs;
  // Stable server with the recorder capturing EVERYTHING: responses must
  // stay byte-identical to a serial `xsolve batch --stable` run — the
  // whole point of tail-sampling on the volatile side.
  ServerOptions Opts = stableServerOptions(2);
  Opts.SlowThresholdMs = 0;
  std::vector<std::string> Lines = workloadLines();
  std::string Expected = serialReference(Lines);
  ServerFixture F(Opts);
  LineClient C = F.connect();
  EXPECT_EQ(runClient(C, Lines), Expected);

  // The recorder still captured every request, each with a generated
  // "c<conn>-<seq>" rid (no client ids reached the stable encoding, and
  // no id-less request went unlabeled).
  std::vector<SlowQueryRecord> Snap = SlowQueryLog::global().snapshot();
  EXPECT_GE(Snap.size(), Lines.size());
  for (const SlowQueryRecord &Rec : Snap)
    EXPECT_FALSE(Rec.RequestId.empty());
  EXPECT_EQ(Expected.find("\"rid\""), std::string::npos);
}

TEST(Server, DeadlineMissIsCapturedInSlowlog) {
  ObsCapture Obs;
  ServerOptions Opts = stableServerOptions(1);
  Opts.DefaultStable = false;
  Opts.SlowThresholdMs = 1e9; // only tail events (errors) qualify
  ServerFixture F(Opts);
  F.Server.debugPauseDispatch(true);
  LineClient C = F.connect();
  ASSERT_TRUE(C.sendLine("{\"id\":\"dl\",\"op\":\"contains\",\"e1\":\"/dl1/x\","
                         "\"e2\":\"//x\",\"deadline_ms\":1}"));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  F.Server.debugPauseDispatch(false);
  std::string Resp;
  ASSERT_TRUE(C.recvLine(Resp));
  EXPECT_NE(Resp.find("\"code\":\"deadline_exceeded\""), std::string::npos);
  EXPECT_NE(Resp.find("\"rid\":\"dl\""), std::string::npos);

  ASSERT_TRUE(C.sendLine("{\"op\":\"slowlog\"}"));
  ASSERT_TRUE(C.recvLine(Resp));
  std::string Error;
  JsonRef S = parseJson(Resp, Error);
  ASSERT_NE(S, nullptr) << Error;
  bool Found = false;
  for (const JsonRef &E : S->get("slowlog")->get("entries")->items())
    if (E->str("rid") == "dl") {
      Found = true;
      EXPECT_EQ(E->str("code"), "deadline_exceeded");
      EXPECT_FALSE(E->get("ok")->asBool());
      EXPECT_TRUE(E->get("stages")->has("server.queue_wait"));
    }
  EXPECT_TRUE(Found) << Resp;
}

TEST(Server, StatusOpReportsLiveState) {
  ServerFixture F(stableServerOptions(2));
  LineClient C = F.connect();
  ASSERT_TRUE(C.sendLine("{\"id\":\"st\",\"op\":\"status\"}"));
  std::string Resp;
  ASSERT_TRUE(C.recvLine(Resp));
  std::string Error;
  JsonRef R = parseJson(Resp, Error);
  ASSERT_NE(R, nullptr) << Error;
  EXPECT_EQ(R->str("id"), "st");
  EXPECT_TRUE(R->get("ok")->asBool());
  JsonRef S = R->get("status");
  ASSERT_EQ(S->type(), JsonValue::Type::Object);
  EXPECT_EQ(S->str("schema"), "xsa.status/1");
  EXPECT_GE(S->get("uptime_s")->asNumber(), 0);
  EXPECT_FALSE(S->get("draining")->asBool());
  EXPECT_EQ(S->get("jobs")->asNumber(), 2);
  EXPECT_GE(S->get("connections")->asNumber(), 1);
  for (const char *Key : {"queue_depth", "queue_limit", "in_flight", "bdd",
                          "namespaces", "slowlog", "log"})
    EXPECT_TRUE(S->has(Key)) << Key;
  JsonRef Default = S->get("namespaces")->get("default");
  ASSERT_EQ(Default->type(), JsonValue::Type::Object);
  EXPECT_TRUE(Default->has("in_flight"));
  EXPECT_TRUE(Default->has("slow_queries"));
}

TEST(Server, HttpKeepAliveServesSequentialRequestsOnOneConnection) {
  ServerFixture F(stableServerOptions(1));
  LineClient C = F.connect();

  // Two requests over ONE connection — the keep-alive payoff. The
  // second exchange only works if the server kept the socket open.
  HttpResponse H1;
  ASSERT_TRUE(httpGet(C, "/healthz", H1));
  EXPECT_EQ(H1.Status, "HTTP/1.1 200 OK");
  EXPECT_EQ(H1.Connection, "keep-alive");
  EXPECT_EQ(H1.Body, "ok\n");

  HttpResponse H2;
  ASSERT_TRUE(httpGet(C, "/statusz", H2));
  EXPECT_EQ(H2.Status, "HTTP/1.1 200 OK");
  std::string Error;
  JsonRef S = parseJson(H2.Body, Error);
  ASSERT_NE(S, nullptr) << Error;
  EXPECT_EQ(S->str("schema"), "xsa.status/1");

  HttpResponse H3;
  ASSERT_TRUE(httpGet(C, "/slowlog", H3));
  JsonRef Slow = parseJson(H3.Body, Error);
  ASSERT_NE(Slow, nullptr) << Error;
  EXPECT_EQ(Slow->str("schema"), "xsa.slowlog/1");
  EXPECT_TRUE(Slow->has("entries"));

  HttpResponse H4;
  ASSERT_TRUE(httpGet(C, "/nope", H4));
  EXPECT_EQ(H4.Status, "HTTP/1.1 404 Not Found");

  // An analysis connection still works while the scraper idles.
  LineClient A = F.connect();
  ASSERT_TRUE(A.sendLine("{\"id\":\"p\",\"op\":\"ping\"}"));
  std::string Resp;
  ASSERT_TRUE(A.recvLine(Resp));
  EXPECT_NE(Resp.find("\"ok\":true"), std::string::npos);
}

TEST(Server, HttpIdleTimeoutClosesParkedScrapers) {
  ServerOptions Opts = stableServerOptions(1);
  Opts.HttpIdleTimeoutMs = 50;
  ServerFixture F(Opts);
  LineClient C = F.connect();
  HttpResponse H;
  ASSERT_TRUE(httpGet(C, "/healthz", H));
  EXPECT_EQ(H.Connection, "keep-alive");
  // Past the idle timeout the server closes; the next read sees EOF.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  std::string L;
  EXPECT_FALSE(C.recvLine(L));
}

TEST(Server, HttpConnectionCapAnswers503) {
  ServerOptions Opts = stableServerOptions(1);
  Opts.HttpMaxConns = 1;
  ServerFixture F(Opts);
  LineClient First = F.connect();
  HttpResponse H1;
  ASSERT_TRUE(httpGet(First, "/healthz", H1)); // now parked keep-alive
  EXPECT_EQ(H1.Status, "HTTP/1.1 200 OK");
  LineClient Second = F.connect();
  HttpResponse H2;
  ASSERT_TRUE(httpGet(Second, "/healthz", H2));
  EXPECT_EQ(H2.Status, "HTTP/1.1 503 Service Unavailable");
  EXPECT_EQ(H2.Connection, "close");
}
