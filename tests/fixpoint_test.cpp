//===- fixpoint_test.cpp - Cross-request fixpoint sharing ------------------===//
//
// Tests the staged-pipeline sharing machinery end to end: the
// label-abstracted lean signature (same-shaped formulas over different
// alphabets share, different shapes or orders do not), the
// SharedFixpointStore's improvement policy under publishes, and —
// the load-bearing property — that a seeded solver run is
// output-invisible: verdict, iteration count and extracted model are
// those of a cold run, with only the replayed image computations
// skipped.
//
//===----------------------------------------------------------------------===//

#include "logic/Lean.h"
#include "logic/Parser.h"
#include "service/FixpointStore.h"
#include "solver/BddSolver.h"
#include "solver/Pipeline.h"
#include "tree/Xml.h"
#include "xpath/Compile.h"
#include "xpath/Parser.h"

#include <gtest/gtest.h>

#include <map>

using namespace xsa;

namespace {

Formula parse(FormulaFactory &FF, const std::string &S) {
  std::string Err;
  Formula F = parseFormula(FF, S, Err);
  EXPECT_NE(F, nullptr) << Err << " in: " << S;
  return F;
}

Formula compileQuery(FormulaFactory &FF, const std::string &S) {
  std::string Err;
  ExprRef E = parseXPath(S, Err);
  EXPECT_NE(E, nullptr) << Err << " in: " << S;
  return compileXPath(FF, E, FF.trueF());
}

std::string planSignature(FormulaFactory &FF, Formula Psi,
                          const SolverOptions &Opts = {}) {
  Formula Phi = plungeFormula(FF, Psi);
  if (Opts.EnforceSingleMark)
    Phi = FF.conj(singleMarkFormula(FF), Phi);
  LeanPlan Plan(FF, Phi, Opts.Order);
  return Plan.signature();
}

//===----------------------------------------------------------------------===//
// Lean signature
//===----------------------------------------------------------------------===//

TEST(LeanSignature, SameShapeDifferentLabelsShare) {
  FormulaFactory FF;
  // The bench_service-style near-duplicates: one query shape over
  // per-request alphabets.
  EXPECT_EQ(planSignature(FF, compileQuery(FF, "/a1/b1")),
            planSignature(FF, compileQuery(FF, "/a2/b2")));
  EXPECT_EQ(planSignature(FF, parse(FF, "<1>x & <2>y")),
            planSignature(FF, parse(FF, "<1>p & <2>q")));
}

TEST(LeanSignature, DifferentShapesDoNotShare) {
  FormulaFactory FF;
  EXPECT_NE(planSignature(FF, parse(FF, "<1>x & <2>y")),
            planSignature(FF, parse(FF, "<1>x | <2>y")))
      << "the plunge members embed the formula, so ∧ vs ∨ differ";
  EXPECT_NE(planSignature(FF, compileQuery(FF, "/a/b")),
            planSignature(FF, compileQuery(FF, "//a/b")));
}

TEST(LeanSignature, RepeatedLabelsMustCorrespond) {
  FormulaFactory FF;
  // x&x-shape vs x&y-shape: an order-preserving bijection cannot merge
  // two labels into one.
  EXPECT_NE(planSignature(FF, parse(FF, "<1>x & <2>x")),
            planSignature(FF, parse(FF, "<1>x & <2>y")));
  // But consistent renaming of a repeated label shares.
  EXPECT_EQ(planSignature(FF, parse(FF, "<1>x & <2>x")),
            planSignature(FF, parse(FF, "<1>y & <2>y")));
}

TEST(LeanSignature, VariableOrderAndSingleMarkAreVisible) {
  FormulaFactory FF;
  Formula F = compileQuery(FF, "/a/b[c]");
  SolverOptions DepthFirst;
  DepthFirst.Order = LeanOrder::DepthFirst;
  EXPECT_NE(planSignature(FF, F), planSignature(FF, F, DepthFirst));
  SolverOptions NoMark;
  NoMark.EnforceSingleMark = false;
  EXPECT_NE(planSignature(FF, F), planSignature(FF, F, NoMark));
}

TEST(LeanSignature, AlphaRenamedBindersShare) {
  FormulaFactory FF;
  EXPECT_EQ(planSignature(FF, parse(FF, "let $X = a | <1>$X in $X")),
            planSignature(FF, parse(FF, "let $Y = b | <1>$Y in $Y")));
}

//===----------------------------------------------------------------------===//
// SharedFixpointStore
//===----------------------------------------------------------------------===//

std::shared_ptr<FixpointSeedData> makeSeed(size_t Snapshots, bool Converged) {
  auto Data = std::make_shared<FixpointSeedData>();
  Data->Converged = Converged;
  for (size_t I = 0; I < Snapshots; ++I) {
    BddSnapshot S;
    S.Root = 1;
    Data->Snapshots.push_back(S);
  }
  return Data;
}

TEST(SharedFixpointStore, PublishKeepsOnlyImprovements) {
  SharedFixpointStore Store(16, 1);
  EXPECT_EQ(Store.lookup("sig", 0), nullptr);
  EXPECT_TRUE(Store.publish("sig", 0, makeSeed(2, false)));
  EXPECT_FALSE(Store.publish("sig", 0, makeSeed(2, false)))
      << "equal length, not an improvement";
  EXPECT_FALSE(Store.publish("sig", 0, makeSeed(1, false)));
  EXPECT_TRUE(Store.publish("sig", 0, makeSeed(3, false)));
  EXPECT_TRUE(Store.publish("sig", 0, makeSeed(1, true)))
      << "converged beats any prefix";
  EXPECT_FALSE(Store.publish("sig", 0, makeSeed(9, false)))
      << "a prefix never replaces a converged sequence";
  auto Got = Store.lookup("sig", 0);
  ASSERT_NE(Got, nullptr);
  EXPECT_TRUE(Got->Converged);
  EXPECT_EQ(Got->Snapshots.size(), 1u);

  // Distinct options fingerprints do not meet.
  EXPECT_EQ(Store.lookup("sig", 1), nullptr);
  // Empty or oversized offers are dropped.
  EXPECT_FALSE(Store.publish("sig2", 0, makeSeed(0, true)));
  EXPECT_FALSE(Store.publish("sig2", 0, nullptr));
}

TEST(SharedFixpointStore, CapacityEvictsLeastRecentlyUsed) {
  SharedFixpointStore Store(2, 1);
  EXPECT_TRUE(Store.publish("a", 0, makeSeed(1, true)));
  EXPECT_TRUE(Store.publish("b", 0, makeSeed(1, true)));
  EXPECT_NE(Store.lookup("a", 0), nullptr); // a is now most recent
  EXPECT_TRUE(Store.publish("c", 0, makeSeed(1, true))); // evicts b
  EXPECT_EQ(Store.lookup("b", 0), nullptr);
  EXPECT_NE(Store.lookup("a", 0), nullptr);
  CacheStats S = Store.stats();
  EXPECT_EQ(S.Evictions, 1u);
  EXPECT_EQ(Store.size(), 2u);

  // Capacity 0 disables the store.
  SharedFixpointStore Off(0);
  EXPECT_FALSE(Off.publish("a", 0, makeSeed(1, true)));
  EXPECT_EQ(Off.lookup("a", 0), nullptr);
}

TEST(SharedFixpointStore, NodeBudgetDropsOversizedEntries) {
  SharedFixpointStore Store(16, 1, /*MaxEntryNodes=*/2);
  auto Big = std::make_shared<FixpointSeedData>();
  Big->Converged = true;
  BddSnapshot S;
  S.Nodes = {{0, 0, 1}, {1, 0, 1}, {2, 0, 1}};
  S.Root = 2;
  Big->Snapshots.push_back(S);
  EXPECT_FALSE(Store.publish("sig", 0, Big));
  EXPECT_EQ(Store.size(), 0u);
}

//===----------------------------------------------------------------------===//
// Seeded runs are output-invisible
//===----------------------------------------------------------------------===//

/// Minimal always-on bridge from the solver hook to a store (the
/// service wires this through AnalysisContext's adapter).
class StoreCache : public FixpointCache {
public:
  explicit StoreCache(SharedFixpointStore &S) : S(S) {}
  std::shared_ptr<const FixpointSeedData>
  lookup(const std::string &Sig, uint32_t K) override {
    return S.lookup(Sig, K);
  }
  void publish(const std::string &Sig, uint32_t K,
               std::shared_ptr<const FixpointSeedData> D) override {
    S.publish(Sig, K, std::move(D));
  }

private:
  SharedFixpointStore &S;
};

/// Solves \p Text in a fresh factory with \p Store installed (or not)
/// under the given fixpoint scheduling strategy.
SolverResult solveWith(const std::string &Text, FixpointCache *Store,
                       FixpointStrategy Strategy = FixpointStrategy::Bfs,
                       StrategyMemo *Memo = nullptr) {
  FormulaFactory FF;
  std::string Err;
  Formula F = parseFormula(FF, Text, Err);
  EXPECT_NE(F, nullptr) << Err;
  SolverOptions Opts;
  Opts.Fixpoints = Store;
  Opts.Strategy = Strategy;
  Opts.StrategyChoices = Memo;
  BddSolver Solver(FF, Opts);
  return Solver.solve(F);
}

std::string modelXml(const SolverResult &R) {
  return R.Model ? printXml(*R.Model) : std::string();
}

TEST(FixpointSharing, SeededRunMatchesColdRunByteForByte) {
  // Same shape over three alphabets; satisfiable, so models are
  // extracted — the strongest determinism check.
  const char *Variants[] = {"<1>(a & <2>b)", "<1>(p & <2>q)",
                            "<1>(u & <2>w)"};
  std::vector<SolverResult> Cold;
  for (const char *V : Variants)
    Cold.push_back(solveWith(V, nullptr));

  SharedFixpointStore Store;
  StoreCache Cache(Store);
  SolverResult First = solveWith(Variants[0], &Cache);
  EXPECT_EQ(First.Stats.IterationsReplayed, 0u);
  EXPECT_EQ(Store.stats().Insertions, 1u);

  for (size_t I = 1; I < 3; ++I) {
    SolverResult Seeded = solveWith(Variants[I], &Cache);
    EXPECT_GT(Seeded.Stats.IterationsReplayed, 0u)
        << "variant " << I << " must replay the stored sequence";
    EXPECT_EQ(Seeded.Satisfiable, Cold[I].Satisfiable);
    EXPECT_EQ(Seeded.Stats.Iterations, Cold[I].Stats.Iterations)
        << "replay must report the cold-equivalent iteration count";
    EXPECT_EQ(Seeded.Stats.LeanSize, Cold[I].Stats.LeanSize);
    EXPECT_EQ(modelXml(Seeded), modelXml(Cold[I]))
        << "the reconstructed model must not depend on seeding";
  }
}

TEST(FixpointSharing, UnsatisfiableRunsShareConvergedSequences) {
  // Same unsat shape (a node cannot be both first and second child)
  // over two alphabets: the full fixpoint converges, is published, and
  // the second run replays it end to end.
  SharedFixpointStore Store;
  StoreCache Cache(Store);
  SolverResult R1 = solveWith("x & <-1>T & <-2>T", &Cache);
  EXPECT_FALSE(R1.Satisfiable);
  EXPECT_EQ(R1.Stats.IterationsReplayed, 0u);
  auto Entry = Store.lookup(
      [&] {
        FormulaFactory FF;
        std::string Err;
        Formula F = parseFormula(FF, "y & <-1>T & <-2>T", Err);
        Formula Phi = FF.conj(singleMarkFormula(FF), plungeFormula(FF, F));
        LeanPlan Plan(FF, Phi, LeanOrder::BreadthFirst);
        return Plan.signature();
      }(),
      fixpointOptionsKey(SolverOptions{}));
  ASSERT_NE(Entry, nullptr) << "the second alphabet's key must hit";
  EXPECT_TRUE(Entry->Converged);

  SolverResult R2 = solveWith("y & <-1>T & <-2>T", &Cache);
  EXPECT_FALSE(R2.Satisfiable);
  EXPECT_EQ(R2.Stats.Iterations, R1.Stats.Iterations);
  EXPECT_EQ(R2.Stats.IterationsReplayed, R2.Stats.Iterations)
      << "a converged seed serves the whole run";
}

TEST(FixpointSharing, DisabledAdapterSkipsTheStore) {
  // enabled() == false must leave the store untouched (and skip
  // signature work, though that is not observable here).
  class Gate : public FixpointCache {
  public:
    explicit Gate(SharedFixpointStore &S) : S(S) {}
    bool enabled() const override { return false; }
    std::shared_ptr<const FixpointSeedData>
    lookup(const std::string &Sig, uint32_t K) override {
      return S.lookup(Sig, K);
    }
    void publish(const std::string &Sig, uint32_t K,
                 std::shared_ptr<const FixpointSeedData> D) override {
      S.publish(Sig, K, std::move(D));
    }
    SharedFixpointStore &S;
  };
  SharedFixpointStore Store;
  Gate G(Store);
  solveWith("<1>a & <2>b", &G);
  EXPECT_EQ(Store.stats().Insertions, 0u);
  EXPECT_EQ(Store.stats().Misses, 0u);
}

//===----------------------------------------------------------------------===//
// Fixpoint scheduling strategies
//===----------------------------------------------------------------------===//

TEST(FixpointStrategy, VerdictAndModelAreStrategyIndependent) {
  // One SAT formula (model extracted) and one UNSAT formula (full
  // fixpoint), under every concrete strategy: the least fixpoint — and
  // with it the verdict and the reconstructed model — must not depend
  // on the iteration schedule.
  const FixpointStrategy All[] = {FixpointStrategy::Bfs,
                                  FixpointStrategy::Chaining,
                                  FixpointStrategy::Saturation};
  SolverResult SatBase = solveWith("<1>(a & <2>(b & <2>c))", nullptr);
  SolverResult UnsatBase = solveWith("x & <-1>T & <-2>T", nullptr);
  EXPECT_TRUE(SatBase.Satisfiable);
  EXPECT_FALSE(UnsatBase.Satisfiable);
  for (FixpointStrategy S : All) {
    SolverResult Sat = solveWith("<1>(a & <2>(b & <2>c))", nullptr, S);
    EXPECT_TRUE(Sat.Satisfiable) << fixpointStrategyName(S);
    EXPECT_EQ(modelXml(Sat), modelXml(SatBase)) << fixpointStrategyName(S);
    EXPECT_EQ(Sat.Stats.StrategyUsed, S);
    SolverResult Unsat = solveWith("x & <-1>T & <-2>T", nullptr, S);
    EXPECT_FALSE(Unsat.Satisfiable) << fixpointStrategyName(S);
    EXPECT_EQ(Unsat.Stats.StrategyUsed, S);
  }
}

TEST(FixpointStrategy, ChainingCollapsesSiblingRuns) {
  // A sibling chain takes Bfs one round per <2> step; chaining saturates
  // the run within a round, so it converges in strictly fewer rounds
  // (paid for in extra sub-steps). Under Bfs, sub-steps == rounds.
  const char *Chain = "<1>(a & <2>(b & <2>(c & <2>(d & <2>e))))";
  SolverResult Bfs, Chained;
  {
    FormulaFactory FF;
    std::string Err;
    Formula F = parseFormula(FF, Chain, Err);
    SolverOptions Opts;
    Opts.EarlyTermination = false;
    BddSolver Solver(FF, Opts);
    Bfs = Solver.solve(F);
  }
  {
    FormulaFactory FF;
    std::string Err;
    Formula F = parseFormula(FF, Chain, Err);
    SolverOptions Opts;
    Opts.EarlyTermination = false;
    Opts.Strategy = FixpointStrategy::Chaining;
    BddSolver Solver(FF, Opts);
    Chained = Solver.solve(F);
  }
  EXPECT_EQ(Bfs.Satisfiable, Chained.Satisfiable);
  EXPECT_EQ(Bfs.Stats.SubSteps, Bfs.Stats.Iterations);
  EXPECT_LT(Chained.Stats.Iterations, Bfs.Stats.Iterations);
  EXPECT_GE(Chained.Stats.SubSteps, Chained.Stats.Iterations);
}

TEST(FixpointStrategy, ReplayRefusesAMismatchedStrategyKey) {
  // A sequence published under Chaining must never seed a Bfs run: the
  // store keys on fixpointOptionsKey, which embeds the resolved
  // strategy, so the Bfs run cold-misses and publishes its own entry.
  // The shape is UNSAT so no model-extraction fallback publishes a
  // second (Bfs-keyed) sequence behind our back.
  SharedFixpointStore Store;
  StoreCache Cache(Store);
  SolverResult First =
      solveWith("x & <-1>T & <-2>T", &Cache, FixpointStrategy::Chaining);
  EXPECT_FALSE(First.Satisfiable);
  EXPECT_EQ(First.Stats.IterationsReplayed, 0u);
  EXPECT_EQ(Store.stats().Insertions, 1u);

  SolverResult Second =
      solveWith("y & <-1>T & <-2>T", &Cache, FixpointStrategy::Bfs);
  EXPECT_EQ(Second.Stats.IterationsReplayed, 0u)
      << "a chaining-keyed seed must not replay into a bfs run";
  EXPECT_EQ(Store.stats().Insertions, 2u)
      << "the bfs run publishes under its own key";

  // Same shape, same strategy: now it replays end to end.
  SolverResult Third =
      solveWith("z & <-1>T & <-2>T", &Cache, FixpointStrategy::Chaining);
  EXPECT_FALSE(Third.Satisfiable);
  EXPECT_EQ(Third.Stats.IterationsReplayed, Third.Stats.Iterations);
  EXPECT_EQ(Third.Stats.Iterations, First.Stats.Iterations);
}

TEST(FixpointStrategy, ModelFallbackPublishesABfsSequence) {
  // A SAT run under a chained strategy extracts its model from a Bfs
  // fallback loop; that loop shares the store, so one chaining solve
  // leaves both a chaining-keyed and a bfs-keyed sequence behind, and a
  // later Bfs run replays the fallback's work.
  SharedFixpointStore Store;
  StoreCache Cache(Store);
  SolverResult First =
      solveWith("<1>(a & <2>b)", &Cache, FixpointStrategy::Chaining);
  EXPECT_TRUE(First.Satisfiable);
  EXPECT_EQ(Store.stats().Insertions, 2u)
      << "chaining sequence plus the model fallback's bfs sequence";
  SolverResult Second =
      solveWith("<1>(p & <2>q)", &Cache, FixpointStrategy::Bfs);
  EXPECT_GT(Second.Stats.IterationsReplayed, 0u);
}

TEST(FixpointStrategy, SeededChainingRunMatchesColdRun) {
  // The sharing invariant holds per strategy: a chaining run seeded from
  // a chaining-keyed sequence reports cold-equivalent rounds and model.
  const char *Variants[] = {"<1>(a & <2>(b & <2>c))",
                            "<1>(p & <2>(q & <2>r))"};
  SolverResult Cold =
      solveWith(Variants[1], nullptr, FixpointStrategy::Chaining);
  SharedFixpointStore Store;
  StoreCache Cache(Store);
  solveWith(Variants[0], &Cache, FixpointStrategy::Chaining);
  SolverResult Seeded =
      solveWith(Variants[1], &Cache, FixpointStrategy::Chaining);
  EXPECT_GT(Seeded.Stats.IterationsReplayed, 0u);
  EXPECT_EQ(Seeded.Stats.Iterations, Cold.Stats.Iterations);
  EXPECT_EQ(Seeded.Stats.SubSteps, Cold.Stats.SubSteps);
  EXPECT_EQ(modelXml(Seeded), modelXml(Cold));
}

TEST(FixpointStrategy, AutoResolvesThroughTheMemo) {
  class RecordingMemo : public StrategyMemo {
  public:
    bool lookup(const std::string &Sig, FixpointStrategy &Out) override {
      ++Lookups;
      auto It = Map.find(Sig);
      if (It == Map.end())
        return false;
      Out = It->second;
      return true;
    }
    void remember(const std::string &Sig, FixpointStrategy S) override {
      Map.emplace(Sig, S);
    }
    size_t Lookups = 0;
    std::map<std::string, FixpointStrategy> Map;
  };
  RecordingMemo Memo;
  SolverResult R1 =
      solveWith("<1>(a & <2>b)", nullptr, FixpointStrategy::Auto, &Memo);
  EXPECT_NE(R1.Stats.StrategyUsed, FixpointStrategy::Auto)
      << "Auto must resolve to a concrete strategy";
  EXPECT_GE(Memo.Lookups, 1u);
  ASSERT_EQ(Memo.Map.size(), 1u) << "the heuristic choice is remembered";

  // Pin the memo to the other strategies: the remembered choice wins
  // over the heuristic, and the run is keyed/executed accordingly. The
  // model stays that of an unmemoized run of the same formula.
  std::string PqModel = modelXml(solveWith("<1>(p & <2>q)", nullptr));
  for (FixpointStrategy Pinned :
       {FixpointStrategy::Saturation, FixpointStrategy::Bfs}) {
    Memo.Map.begin()->second = Pinned;
    SolverResult R = solveWith("<1>(p & <2>q)", nullptr,
                               FixpointStrategy::Auto, &Memo);
    EXPECT_EQ(R.Stats.StrategyUsed, Pinned);
    EXPECT_EQ(modelXml(R), PqModel);
  }
}

TEST(FixpointStrategy, NamesRoundTrip) {
  const FixpointStrategy All[] = {
      FixpointStrategy::Bfs, FixpointStrategy::Chaining,
      FixpointStrategy::Saturation, FixpointStrategy::Auto};
  for (FixpointStrategy S : All) {
    FixpointStrategy Back;
    ASSERT_TRUE(parseFixpointStrategy(fixpointStrategyName(S), Back));
    EXPECT_EQ(Back, S);
  }
  FixpointStrategy Out;
  EXPECT_FALSE(parseFixpointStrategy("dfs", Out));
  EXPECT_FALSE(parseFixpointStrategy("", Out));
}

} // namespace
