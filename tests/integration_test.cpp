//===- integration_test.cpp - End-to-end scenarios -------------------------===//
//
// Full-pipeline scenarios exercising the public API the way the examples
// and a downstream type checker would: XML in, DTDs parsed from text,
// queries parsed from text, solver verdicts cross-validated with the
// concrete evaluator and validator, counterexamples re-parsed from their
// XML serialization.
//
//===----------------------------------------------------------------------===//

#include "analysis/Problems.h"
#include "logic/CycleFree.h"
#include "logic/Eval.h"
#include "tree/Xml.h"
#include "xpath/Compile.h"
#include "xpath/Eval.h"
#include "xpath/Parser.h"
#include "xtype/BuiltinDtds.h"
#include "xtype/Compile.h"
#include "xtype/Validate.h"

#include <gtest/gtest.h>

using namespace xsa;

namespace {

ExprRef xp(const std::string &S) {
  std::string Err;
  ExprRef E = parseXPath(S, Err);
  EXPECT_NE(E, nullptr) << Err << " in: " << S;
  return E;
}

TEST(Integration, CounterexampleRoundTripsThroughXml) {
  FormulaFactory FF;
  Analyzer An(FF);
  AnalysisResult R =
      An.containment(xp("a/b[c]"), FF.trueF(), xp("a/b[d]"), FF.trueF());
  ASSERT_FALSE(R.Holds);
  ASSERT_TRUE(R.Tree.has_value());
  // Serialize with annotations, re-parse, and re-check the verdict on
  // the reconstructed document.
  std::string Xml = printXml(*R.Tree, R.Target);
  Document D2;
  std::string Err;
  ASSERT_TRUE(parseXml(Xml, D2, Err)) << Err;
  EXPECT_EQ(D2.markedNode(), R.Tree->markedNode());
  NodeSet S1 = evalXPath(D2, xp("a/b[c]"));
  NodeSet S2 = evalXPath(D2, xp("a/b[d]"));
  bool Diff = false;
  for (NodeId N : S1)
    if (!S2.count(N))
      Diff = true;
  EXPECT_TRUE(Diff);
}

TEST(Integration, UserDtdFromTextDrivesTheSolver) {
  // A small recursive document type written by a user, not builtin.
  const char *DtdText = R"dtd(
    <!ENTITY % item "(section | para)">
    <!ELEMENT doc (title, %item;*)>
    <!ELEMENT section (title, %item;*)>
    <!ELEMENT para (#PCDATA)>
    <!ELEMENT title (#PCDATA)>
  )dtd";
  Dtd D;
  std::string Err;
  ASSERT_TRUE(parseDtd(DtdText, D, Err)) << Err;
  D.setRoot("doc");
  FormulaFactory FF;
  Formula T = compileDtd(FF, D);
  EXPECT_TRUE(isCycleFree(T));
  Analyzer An(FF);
  // Sections nest arbitrarily deep; paragraphs never contain anything.
  EXPECT_FALSE(An.emptiness(xp("//section//section//section"), T).Holds);
  EXPECT_TRUE(An.emptiness(xp("//para/*"), T).Holds);
  // Every title is a first child under this DTD.
  EXPECT_TRUE(An.containment(xp("//title"), T,
                             xp("//*[not(prec-sibling::*)]"), T)
                  .Holds);
  // The witness of the nesting query validates against the DTD.
  Formula Rooted = FF.conj(T, rootFormula(FF));
  AnalysisResult R = An.emptiness(xp("//section//section"), Rooted);
  ASSERT_FALSE(R.Holds);
  ASSERT_TRUE(R.Tree.has_value());
  std::string Why;
  EXPECT_TRUE(validate(*R.Tree, D, &Why)) << Why << printXml(*R.Tree);
}

TEST(Integration, WikipediaWitnessesValidate) {
  // Every satisfiable typed query produces a witness that the validator
  // accepts — solver, translation and validator agree end to end.
  FormulaFactory FF;
  Analyzer An(FF);
  Formula Rooted =
      FF.conj(compileDtd(FF, wikipediaDtd()), rootFormula(FF));
  const char *Queries[] = {
      "/self::article/meta/title",
      "//history/edit",
      "//edit/redirect",
      "//meta[status]/history",
      "/self::article/text | /self::article/redirect",
      "//edit[not(text) and not(redirect)]",
      "//interwiki[foll-sibling::history]",
  };
  for (const char *Q : Queries) {
    AnalysisResult R = An.emptiness(xp(Q), Rooted);
    ASSERT_FALSE(R.Holds) << Q;
    ASSERT_TRUE(R.Tree.has_value()) << Q;
    std::string Why;
    EXPECT_TRUE(validate(*R.Tree, wikipediaDtd(), &Why))
        << Q << ": " << Why << "\n"
        << printXml(*R.Tree);
    EXPECT_FALSE(evalXPath(*R.Tree, xp(Q)).empty()) << Q;
  }
}

TEST(Integration, SecurityViewScenario) {
  // §1 cites XML security views: check that a public query cannot reach
  // fields hidden by the view. Hide "status" under edit: the view
  // exposes //history/edit/(text|redirect) only.
  FormulaFactory FF;
  Analyzer An(FF);
  Formula Wiki = compileDtd(FF, wikipediaDtd());
  // The public query surface.
  std::vector<ExprRef> View = {xp("//edit/text"), xp("//edit/redirect")};
  // Audit: does the surface leak status elements?
  for (const ExprRef &E : View) {
    AnalysisResult R = An.overlap(E, Wiki, xp("//status"), Wiki);
    EXPECT_FALSE(R.Holds) << toString(E);
  }
  // A careless addition to the view does leak.
  AnalysisResult Leak = An.overlap(xp("//edit/*"), Wiki, xp("//status"), Wiki);
  EXPECT_TRUE(Leak.Holds);
  ASSERT_TRUE(Leak.Tree.has_value());
}

TEST(Integration, ControlFlowAnalysisScenario) {
  // §1 cites XSLT control-flow analysis [36]: a template matching
  // "edit" is reachable from a template matching "history" iff
  // //history//edit is nonempty under the type — and a template
  // matching "title" is never reachable from "history".
  FormulaFactory FF;
  Analyzer An(FF);
  Formula Wiki = compileDtd(FF, wikipediaDtd());
  EXPECT_FALSE(An.emptiness(xp("//history//edit"), Wiki).Holds);
  EXPECT_TRUE(An.emptiness(xp("//history//title"), Wiki).Holds);
  // All edits are reachable through history (coverage).
  EXPECT_TRUE(An.coverage(xp("//edit"), Wiki, {xp("//history//edit")},
                          {Wiki})
                  .Holds);
}

} // namespace
