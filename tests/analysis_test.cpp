//===- analysis_test.cpp - Decision problems of §8 ------------------------===//
//
// Tests the analyzer API: emptiness, containment, overlap, coverage,
// equivalence and static type checking, with and without type
// constraints, including rows of the paper's Table 2 (small ones; the
// XHTML rows run in the benchmark harness).
//
//===----------------------------------------------------------------------===//

#include "analysis/Problems.h"

#include "tree/Xml.h"
#include "xpath/Eval.h"
#include "xpath/Compile.h"
#include "xpath/Parser.h"
#include "xtype/BuiltinDtds.h"
#include "xtype/Compile.h"
#include "xtype/Validate.h"

#include <gtest/gtest.h>

using namespace xsa;

namespace {

ExprRef xp(const std::string &S) {
  std::string Err;
  ExprRef E = parseXPath(S, Err);
  EXPECT_NE(E, nullptr) << Err << " in: " << S;
  return E;
}

class AnalysisTest : public ::testing::Test {
protected:
  FormulaFactory FF;
  Analyzer An{FF};
  Formula True() { return FF.trueF(); }
};

TEST_F(AnalysisTest, Emptiness) {
  EXPECT_TRUE(An.emptiness(xp("self::a & self::b"), True()).Holds);
  AnalysisResult R = An.emptiness(xp("a/b"), True());
  EXPECT_FALSE(R.Holds);
  ASSERT_TRUE(R.Tree.has_value());
  EXPECT_FALSE(evalXPath(*R.Tree, xp("a/b")).empty());
}

TEST_F(AnalysisTest, EmptinessUnderType) {
  // Under the Wikipedia DTD, the root's title children never exist
  // (title only occurs under meta). Note the paper's absolute paths
  // navigate *to* the root element, so queries are phrased /self::...
  Formula Wiki = compileDtd(FF, wikipediaDtd());
  EXPECT_TRUE(An.emptiness(xp("/self::article/title"), Wiki).Holds);
  EXPECT_FALSE(An.emptiness(xp("/self::article/meta/title"), Wiki).Holds);
  // redirect may appear under article or under edit.
  EXPECT_FALSE(An.emptiness(xp("/self::article/redirect"), Wiki).Holds);
  EXPECT_FALSE(An.emptiness(xp("//history/edit/redirect"), Wiki).Holds);
  EXPECT_TRUE(An.emptiness(xp("//title/status"), Wiki).Holds);
}

TEST_F(AnalysisTest, ContainmentBasics) {
  EXPECT_TRUE(An.containment(xp("a[b]"), True(), xp("a"), True()).Holds);
  EXPECT_FALSE(An.containment(xp("a"), True(), xp("a[b]"), True()).Holds);
  // Miklau-Suciu row 1 of Table 2 (homomorphism incompleteness example):
  // e1 ⊆ e2 and e2 ⊄ e1.
  ExprRef E1 = xp("/a[.//b[c/*//d]/b[c//d]/b[c/d]]");
  ExprRef E2 = xp("/a[.//b[c/*//d]/b[c/d]]");
  EXPECT_TRUE(An.containment(E1, True(), E2, True()).Holds);
  AnalysisResult R = An.containment(E2, True(), E1, True());
  EXPECT_FALSE(R.Holds);
  ASSERT_TRUE(R.Tree.has_value());
  // The counterexample selects through e2 but not e1.
  NodeSet S2 = evalXPath(*R.Tree, E2);
  NodeSet S1 = evalXPath(*R.Tree, E1);
  bool Witness = false;
  for (NodeId N : S2)
    if (!S1.count(N))
      Witness = true;
  EXPECT_TRUE(Witness) << printXml(*R.Tree, R.Target);
}

TEST_F(AnalysisTest, Table2Row2) {
  // e3 = a/b//c/foll-sibling::d/e, e4 = a/b//d[prec-sibling::c]/e:
  // both containments hold (the two are equivalent).
  ExprRef E3 = xp("a/b//c/foll-sibling::d/e");
  ExprRef E4 = xp("a/b//d[prec-sibling::c]/e");
  EXPECT_TRUE(An.containment(E4, True(), E3, True()).Holds);
  EXPECT_TRUE(An.containment(E3, True(), E4, True()).Holds);
  EXPECT_TRUE(An.equivalence(E3, True(), E4, True()).Holds);
}

TEST_F(AnalysisTest, Table2Row3) {
  // e5 = a/c/following::d/e, e6 = a/b[//c]/following::d/e ∩
  // a/d[preceding::c]/e. The paper reports e6 ⊆ e5 and e5 ⊄ e6; under
  // the literal Fig. 21 syntax e6 ⊄ e5 either (e6 only requires a c
  // *descendant* of b — our solver produces a machine-checked
  // counterexample). With e5' = a//c/following::d/e the paper's verdicts
  // hold exactly, so Fig. 21 presumably abbreviates a//c. We assert the
  // machine-checked facts for both readings (see EXPERIMENTS.md).
  ExprRef E5 = xp("a/c/following::d/e");
  ExprRef E5v = xp("a//c/following::d/e");
  ExprRef E6 = xp("a/b[//c]/following::d/e & a/d[preceding::c]/e");
  EXPECT_FALSE(An.containment(E5, True(), E6, True()).Holds);
  AnalysisResult Literal = An.containment(E6, True(), E5, True());
  EXPECT_FALSE(Literal.Holds);
  ASSERT_TRUE(Literal.Tree.has_value());
  // The counterexample is real: concretely selected by e6, not by e5.
  NodeSet S6 = evalXPath(*Literal.Tree, E6);
  NodeSet S5 = evalXPath(*Literal.Tree, E5);
  bool Diff = false;
  for (NodeId N : S6)
    if (!S5.count(N))
      Diff = true;
  EXPECT_TRUE(Diff);
  // The a//c reading reproduces the paper's row: e6 ⊆ e5' and e5' ⊄ e6.
  EXPECT_TRUE(An.containment(E6, True(), E5v, True()).Holds);
  EXPECT_FALSE(An.containment(E5v, True(), E6, True()).Holds);
}

TEST_F(AnalysisTest, Overlap) {
  AnalysisResult R = An.overlap(xp("a[b]"), True(), xp("a[c]"), True());
  EXPECT_TRUE(R.Holds); // a[b c] witnesses both
  ASSERT_TRUE(R.Tree.has_value());
  EXPECT_FALSE(An.overlap(xp("a"), True(), xp("b"), True()).Holds);
  EXPECT_FALSE(
      An.overlap(xp("a[b]"), True(), xp("a[not(b)]"), True()).Holds);
}

TEST_F(AnalysisTest, Coverage) {
  // * is covered by a ∪ (anything not selected by a): here use labels.
  EXPECT_TRUE(An.coverage(xp("a/b"), True(), {xp("*/b"), xp("c")}, {True()})
                  .Holds);
  EXPECT_FALSE(
      An.coverage(xp("*/b"), True(), {xp("a/b")}, {True()}).Holds);
  EXPECT_TRUE(An.coverage(xp("*[b]"), True(),
                          {xp("*[b and c]"), xp("*[b and not(c)]")},
                          {True(), True()})
                  .Holds);
}

TEST_F(AnalysisTest, StaticTypeCheck) {
  // Nodes selected by /article under the Wikipedia DTD are article
  // trees: type check against the same type holds.
  Formula Wiki = compileDtd(FF, wikipediaDtd());
  EXPECT_TRUE(An.staticTypeCheck(xp("/self::article"), Wiki, Wiki).Holds);
  // But arbitrary selected nodes are not articles.
  EXPECT_FALSE(An.staticTypeCheck(xp("//edit"), Wiki, Wiki).Holds);
}

TEST_F(AnalysisTest, ContainmentUnderTypeDiffersFromUntyped) {
  // Untyped: a/d ⊄ a/*[not(b)] fails only if d can be named b — it
  // cannot; actually a/d ⊆ a/*[not(self::b)]... Use a DTD-driven case:
  // under Wikipedia, //edit/text ⊆ //history//text (edit only occurs
  // under history); untyped this fails.
  Formula Wiki = compileDtd(FF, wikipediaDtd());
  ExprRef E1 = xp("//edit/text");
  ExprRef E2 = xp("//history//text");
  EXPECT_FALSE(An.containment(E1, True(), E2, True()).Holds);
  EXPECT_TRUE(An.containment(E1, Wiki, E2, Wiki).Holds);
}

TEST_F(AnalysisTest, SmilTable2Row4) {
  // e7 = *//switch[ancestor::head]//seq//audio[prec-sibling::video]
  // is satisfiable under SMIL 1.0? The paper reports satisfiable.
  // NOTE: our SMIL transcription allows switch under head with nested
  // containers; verify satisfiability and validate the witness.
  // Anchor the type at the document root so the witness is a complete
  // valid SMIL document (§5.2's root restriction).
  Formula Smil = FF.conj(compileDtd(FF, smil10Dtd()), rootFormula(FF));
  ExprRef E7 = xp("*//switch[ancestor::head]//seq//audio[prec-sibling::video]");
  AnalysisResult R = An.emptiness(E7, Smil);
  EXPECT_FALSE(R.Holds) << "e7 should be satisfiable under SMIL 1.0";
  ASSERT_TRUE(R.Tree.has_value());
  std::string Why;
  EXPECT_TRUE(validate(*R.Tree, smil10Dtd(), &Why))
      << Why << "\n"
      << printXml(*R.Tree);
  EXPECT_FALSE(evalXPath(*R.Tree, E7).empty());
}

TEST_F(AnalysisTest, EquivalenceUnderTypeChange) {
  // §8's "XPath equivalence under type constraints": when the input type
  // evolves from T1 to T2, check that query results are stable. Wikipedia
  // vs Wikipedia with a grown content model.
  Dtd Evolved;
  std::string Err;
  const char *Src = R"(
    <!ELEMENT article (meta, (text | redirect), comment*)>
    <!ELEMENT comment (#PCDATA)>
    <!ELEMENT meta (title, status?, interwiki*, history?)>
    <!ELEMENT title (#PCDATA)>
    <!ELEMENT interwiki (#PCDATA)>
    <!ELEMENT status (#PCDATA)>
    <!ELEMENT history (edit)+>
    <!ELEMENT edit (status?, interwiki*, (text | redirect)?)>
    <!ELEMENT redirect EMPTY>
    <!ELEMENT text (#PCDATA)>
  )";
  ASSERT_TRUE(parseDtd(Src, Evolved, Err)) << Err;
  Evolved.setRoot("article");
  Formula T1 = compileDtd(FF, wikipediaDtd());
  Formula T2 = compileDtd(FF, Evolved);
  // T1's language is strictly contained in T2's, so old results are
  // preserved in the forward direction...
  EXPECT_TRUE(An.containment(xp("/self::article/meta/title"), T1,
                             xp("/self::article/meta/title"), T2)
                  .Holds);
  // ...but full equivalence fails: T2 admits documents (with comments)
  // on which the T1 side selects nothing.
  EXPECT_FALSE(An.equivalence(xp("/self::article/meta/title"), T1,
                              xp("/self::article/meta/title"), T2)
                   .Holds);
  // Query rewriting under a fixed type: under T2 the wildcard query can
  // be replaced by an explicit union plus the comment-excluding filter —
  // an equivalence that is false without the type constraint.
  ExprRef Wild = xp("/self::article/*");
  ExprRef Explicit = xp("/self::article/meta | /self::article/text | "
                        "/self::article/redirect | /self::article/comment");
  EXPECT_TRUE(An.equivalence(Wild, T2, Explicit, T2).Holds);
  EXPECT_FALSE(An.equivalence(Wild, FF.trueF(), Explicit, FF.trueF()).Holds);
}

} // namespace
